// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 4), plus ablations of the design decisions called
// out in DESIGN.md. Each benchmark regenerates its experiment and reports
// the headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reprints the paper's results; `cmd/hccmf-bench` renders the full tables.
package hccmf_test

import (
	"testing"

	"hccmf/internal/comm"
	"hccmf/internal/core"
	"hccmf/internal/dataset"
	"hccmf/internal/experiments"
	"hccmf/internal/kernelbench"
	"hccmf/internal/partition"
	"hccmf/internal/related"
)

// --- Hot-path kernel micro-benchmarks (shared with hccmf-bench -json) ---
//
// The workloads live in internal/kernelbench so that `hccmf-bench -json`
// reruns exactly these benchmarks via testing.Benchmark; the numbers in
// BENCH_*.json and a local `go test -bench` run are directly comparable.
// Each reports updates/s, ns/update and allocs/op.

func BenchmarkUpdateOne(b *testing.B)        { kernelbench.UpdateOne(b) }
func BenchmarkFPSGDEpoch(b *testing.B)       { kernelbench.FPSGDEpoch(b) }
func BenchmarkFPSGDEpochTiled(b *testing.B)  { kernelbench.FPSGDEpochTiled(b) }
func BenchmarkBatchedEpoch(b *testing.B)     { kernelbench.BatchedEpoch(b) }
func BenchmarkBatchedEpochSoA(b *testing.B)  { kernelbench.BatchedEpochSoA(b) }
func BenchmarkHogwildEpoch(b *testing.B)     { kernelbench.HogwildEpoch(b) }
func BenchmarkRMSEParallel(b *testing.B)     { kernelbench.RMSEParallel(b) }
func BenchmarkBuildWorkerConfs(b *testing.B) { kernelbench.BuildWorkerConfs(b) }

// --- Ingestion micro-benchmarks (the ingest/v1 group of -json reports) ---
//
// Each parallel parser is paired with its serial reference so the
// allocation-elimination speedup is measurable from one run; reported
// metrics are input MB/s and parsed entries/s.

func BenchmarkIngestReadText(b *testing.B)         { kernelbench.IngestReadText(b) }
func BenchmarkIngestReadTextSerial(b *testing.B)   { kernelbench.IngestReadTextSerial(b) }
func BenchmarkIngestReadMovieLensCSV(b *testing.B) { kernelbench.IngestReadMovieLensCSV(b) }
func BenchmarkIngestReadMovieLensCSVSerial(b *testing.B) {
	kernelbench.IngestReadMovieLensCSVSerial(b)
}
func BenchmarkIngestReadBinary(b *testing.B)       { kernelbench.IngestReadBinary(b) }
func BenchmarkIngestReadBinarySerial(b *testing.B) { kernelbench.IngestReadBinarySerial(b) }
func BenchmarkIngestSortByRow(b *testing.B)        { kernelbench.IngestSortByRow(b) }
func BenchmarkIngestWriteBinary(b *testing.B)      { kernelbench.IngestWriteBinary(b) }

// --- Adaptive scheduling (the schedule/v1 group of -json reports) ---
//
// The straggler pair trains the same throttled 4-worker cluster with the
// static split and with epoch-boundary rebalancing; adaptive must win.

func BenchmarkScheduleResolveStep(b *testing.B)       { kernelbench.ResolveStep(b) }
func BenchmarkScheduleStragglerStatic(b *testing.B)   { kernelbench.StragglerStatic(b) }
func BenchmarkScheduleStragglerAdaptive(b *testing.B) { kernelbench.StragglerAdaptive(b) }

// BenchmarkFigure3a regenerates the motivation study: single-processor
// times versus good and bad collaborations on Netflix. Reported metrics:
// the 6242-2080S collaboration's time and its ratio to the V100's.
func BenchmarkFigure3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		combo := r.Find("6242-2080S").TimeSec
		v100 := r.Find("Tesla V100").TimeSec
		b.ReportMetric(combo, "combo-s")
		b.ReportMetric(combo/v100, "combo/v100")
	}
}

// BenchmarkFigure3b reports the platform economics: the 6242-2080S combo's
// price as a fraction of the V100's (the paper's "less than 1/3" claim).
func BenchmarkFigure3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Find("6242-2080S").PriceUSD, "combo-$")
		b.ReportMetric(r.Find("6242-2080S").PriceUSD/r.Find("Tesla V100").PriceUSD, "price-ratio")
	}
}

// BenchmarkTable2 regenerates the IW-vs-DP0 memory bandwidth table.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[2].DP0GBs, "2080-dp0-GBs")
		b.ReportMetric(r.Rows[2].DP0GBs/r.Rows[2].IWGBs, "2080-dp0/iw")
	}
}

// BenchmarkFigure7Convergence really trains HCC-MF, FPSGD and cuMF_SGD on
// scaled Netflix/R1/R2 instances (Figure 7 a–c). Reported: final RMSEs on
// Netflix.
func BenchmarkFigure7Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7(0.001, 20, 8, 11)
		if err != nil {
			b.Fatal(err)
		}
		c := r.CurvesFor("netflix")
		b.ReportMetric(c.HCC.Final(), "hcc-rmse")
		b.ReportMetric(c.FPSGD.Final(), "fpsgd-rmse")
		b.ReportMetric(c.CuMF.Final(), "cumf-rmse")
	}
}

// BenchmarkFigure7Speed reports the time-to-target speedups of Figure 7
// (d–f): HCC-MF versus cuMF_SGD and FPSGD on R2 (the paper's 2.9x / 3.1x).
func BenchmarkFigure7Speed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7(0.001, 20, 8, 11)
		if err != nil {
			b.Fatal(err)
		}
		c := r.CurvesFor("r2")
		b.ReportMetric(c.SpeedupVsCuMF, "r2-vs-cumf-x")
		b.ReportMetric(c.SpeedupVsFPSGD, "r2-vs-fpsgd-x")
	}
}

// BenchmarkTable4 regenerates the computing-power/utilization table.
// Reported: the four utilization percentages.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(row.Utilization*100, row.Dataset+"-util%")
		}
	}
}

// BenchmarkFigure8 regenerates the partition-strategy study. Reported: the
// DP1-over-DP0 saving on Netflix/4w and the DP2-over-DP1 saving on R1*/4w.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		nf := r.Panel("netflix", 4)
		dp1Save := 1 - nf.Bar(partition.DP1Strategy).Total/nf.Bar(partition.DP0Strategy).Total
		r1 := r.Panel("r1star", 4)
		dp2Save := 1 - r1.Bar(partition.DP2Strategy).Total/r1.Bar(partition.DP1Strategy).Total
		b.ReportMetric(dp1Save*100, "netflix-dp1-save%")
		b.ReportMetric(dp2Save*100, "r1star-dp2-save%")
	}
}

// BenchmarkTable5 regenerates the communication-time table. Reported: the
// COMM Q-only and half-Q speedups on Netflix and the COMM/COMM-P gap.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Cell("COMM", "Q", "netflix").Speedup, "netflix-q-x")
		b.ReportMetric(r.Cell("COMM", "half-Q", "netflix").Speedup, "netflix-halfq-x")
		gap := r.Cell("COMM-P", "P&Q", "netflix").TimeSec / r.Cell("COMM", "P&Q", "netflix").TimeSec
		b.ReportMetric(gap, "commp/comm")
	}
}

// BenchmarkFigure9 regenerates the scaling study. Reported: full-platform
// computing power on Netflix and the last worker's marginal contribution.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		s := r.SeriesFor("netflix")
		last := s.Steps[len(s.Steps)-1]
		b.ReportMetric(last.HCCPower/1e6, "netflix-Mups")
		b.ReportMetric(last.Contribution*100, "last-contrib%")
	}
}

// BenchmarkTable6 regenerates the ML-20m limitation study. Reported: the
// second GPU's speedup (the paper's disappointing 1.24x).
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table6()
		if err != nil {
			b.Fatal(err)
		}
		single := r.Row("HCC", "2080S").Cost
		double := r.Row("HCC", "2080S-2080").Cost
		b.ReportMetric(single/double, "2nd-gpu-x")
	}
}

// BenchmarkRelatedWork quantifies the Section 5 comparisons: DSGD's
// heterogeneity penalty and NOMAD's message-granularity gap.
func BenchmarkRelatedWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RelatedWork()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.HeterogeneityPenalty, "dsgd-penalty-x")
		b.ReportMetric(r.Granularity, "nomad-msg-x")
	}
}

// --- Ablations of DESIGN.md's called-out decisions ---

// BenchmarkAblationClock compares the pure-analytic cost model's epoch
// estimate against the discrete-event simulation — the gap is what
// execution-driven simulation buys (contention, queueing, pipeline
// effects the closed form misses).
func BenchmarkAblationClock(b *testing.B) {
	plat := core.PaperPlatformHetero()
	for i := 0; i < b.N; i++ {
		for _, spec := range []dataset.Spec{dataset.Netflix, dataset.YahooR1} {
			plan, err := core.PlanRun(plat, spec, core.PlanOptions{})
			if err != nil {
				b.Fatal(err)
			}
			sim, err := core.SimulateRun(plat, spec, plan, experiments.Epochs)
			if err != nil {
				b.Fatal(err)
			}
			analytic := plan.Estimate.Total * float64(experiments.Epochs)
			b.ReportMetric(sim.TotalTime/analytic, spec.Name+"-des/model")
		}
	}
}

// BenchmarkAblationLambda sweeps the λ threshold that flips DP1 into DP2
// on the sync-heavy R1* (synchronous transfers). Reported: the 20-epoch
// time at each λ; the paper's λ=10 must not be beaten badly by either
// extreme.
func BenchmarkAblationLambda(b *testing.B) {
	plat := core.PaperPlatformHetero()
	syncOnly := comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 1}
	for i := 0; i < b.N; i++ {
		for _, lambda := range []float64{1, 10, 1000} {
			plan, err := core.PlanRun(plat, dataset.YahooR1Star,
				core.PlanOptions{Lambda: lambda, ForceStrategy: &syncOnly})
			if err != nil {
				b.Fatal(err)
			}
			sim, err := core.SimulateRun(plat, dataset.YahooR1Star, plan, experiments.Epochs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(sim.TotalTime, plan.PartitionStrategy.String()+"-λ"+lambdaLabel(lambda)+"-s")
		}
	}
}

func lambdaLabel(l float64) string {
	switch {
	case l <= 1:
		return "1"
	case l <= 10:
		return "10"
	default:
		return "1000"
	}
}

// BenchmarkAblationStreams sweeps Strategy 3's pipeline depth on the
// comm-bound ML-20m shape: 1 (synchronous) to 8 streams.
func BenchmarkAblationStreams(b *testing.B) {
	plat := core.PaperPlatformHetero().FirstWorkers(3)
	for i := 0; i < b.N; i++ {
		for _, streams := range []int{1, 2, 4, 8} {
			s := comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: streams}
			plan, err := core.PlanRun(plat, dataset.MovieLens20M,
				core.PlanOptions{ForceStrategy: &s})
			if err != nil {
				b.Fatal(err)
			}
			sim, err := core.SimulateRun(plat, dataset.MovieLens20M, plan, experiments.Epochs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(sim.TotalTime, "streams"+itoa(streams)+"-s")
		}
	}
}

// BenchmarkAblationStrategyChoice compares the planner's automatic
// strategy selection against the naive baseline across all presets: the
// planner must never lose.
func BenchmarkAblationStrategyChoice(b *testing.B) {
	plat := core.PaperPlatformHetero()
	naive := comm.Strategy{Encoding: comm.FP32, Streams: 1}
	for i := 0; i < b.N; i++ {
		for _, spec := range []dataset.Spec{dataset.Netflix, dataset.YahooR1, dataset.MovieLens20M} {
			auto, err := hccTotal(plat, spec, core.PlanOptions{})
			if err != nil {
				b.Fatal(err)
			}
			base, err := hccTotal(plat, spec, core.PlanOptions{ForceStrategy: &naive})
			if err != nil {
				b.Fatal(err)
			}
			if auto >= base {
				b.Fatalf("%s: planner (%v) lost to naive (%v)", spec.Name, auto, base)
			}
			b.ReportMetric(base/auto, spec.Name+"-x")
		}
	}
}

func hccTotal(plat core.Platform, spec dataset.Spec, opts core.PlanOptions) (float64, error) {
	plan, err := core.PlanRun(plat, spec, opts)
	if err != nil {
		return 0, err
	}
	sim, err := core.SimulateRun(plat, spec, plan, experiments.Epochs)
	if err != nil {
		return 0, err
	}
	return sim.TotalTime, nil
}

// BenchmarkAblationGrid quantifies Section 3.3's grid choice: the
// exclusive block grid's per-epoch feature traffic versus the row grid's
// Q-only traffic on the Netflix shape, per worker count.
func BenchmarkAblationGrid(b *testing.B) {
	const m, n, k = 480190, 17771, 128
	for i := 0; i < b.N; i++ {
		for _, p := range []int{2, 4} {
			grid, err := related.BlockGridTraffic(m, n, k, p+1)
			if err != nil {
				b.Fatal(err)
			}
			row, err := related.RowGridQOnlyTraffic(n, k, p)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(grid)/float64(row), "p"+itoa(p)+"-blockgrid-x")
		}
	}
}

func itoa(v int) string {
	if v >= 10 {
		return string(rune('0'+v/10)) + string(rune('0'+v%10))
	}
	return string(rune('0' + v))
}
