// Package hccmf is a Go reproduction of "A Novel Multi-CPU/GPU
// Collaborative Computing Framework for SGD-based Matrix Factorization"
// (Huang et al., ICPP 2021).
//
// The implementation lives under internal/: the HCC-MF framework itself in
// internal/core (planner, simulated platform runner, end-to-end Run), its
// substrates in one package per subsystem (sparse matrices, dataset
// generators, SGD kernels, FP16 codecs, the discrete-event simulator,
// device/bus calibration models, the cost model, partition strategies, the
// COMM communication layer, the parameter-server runtime, baselines,
// metrics and tracing), and the paper's evaluation in
// internal/experiments. Executables are under cmd/ and runnable examples
// under examples/. The benchmark harness in bench_test.go regenerates
// every table and figure of the paper's Section 4.
package hccmf
