// Communication strategies: sweep the paper's three optimisations —
// "Transmitting Q matrix only", "Transmitting FP16 data", and asynchronous
// computing-transmission — on the communication-heavy Yahoo R1 shape, and
// verify with real training that FP16 transport does not hurt convergence.
//
//	go run ./examples/commstrategies
package main

import (
	"fmt"
	"log"

	"hccmf/internal/comm"
	"hccmf/internal/core"
	"hccmf/internal/dataset"
)

func main() {
	spec := dataset.YahooR1
	plat := core.PaperPlatformOverall()

	fmt.Printf("Communication strategies on %s (m=%d, n=%d — huge feature matrices)\n\n",
		spec.Name, spec.M, spec.N)

	strategies := []comm.Strategy{
		{Encoding: comm.FP32, Streams: 1},              // naive P&Q
		{QOnly: true, Encoding: comm.FP32, Streams: 1}, // Strategy 1
		{QOnly: true, Encoding: comm.FP16, Streams: 1}, // + Strategy 2
		{QOnly: true, Encoding: comm.FP16, Streams: 4}, // + Strategy 3
	}

	fmt.Printf("%-18s %12s %14s %12s\n", "strategy", "run time(s)", "bus/worker(GB)", "utilization")
	var naive float64
	for i, s := range strategies {
		s := s
		res, err := core.Run(core.RunConfig{
			Spec: spec, Platform: plat, Epochs: 20,
			Plan: core.PlanOptions{ForceStrategy: &s},
		})
		if err != nil {
			log.Fatal(err)
		}
		plan := res.Plan
		perWorker := float64(s.RunBytes(plan.K, plan.M, plan.N, plan.M/len(plan.Platform.Workers), 20)) / 1e9
		if i == 0 {
			naive = res.Sim.TotalTime
		}
		fmt.Printf("%-18s %12.3f %14.2f %11.0f%%   (%.1fx vs naive)\n",
			s, res.Sim.TotalTime, perWorker, res.Utilization*100, naive/res.Sim.TotalTime)
	}

	// Does the FP16 wire format cost accuracy? Train for real both ways.
	fmt.Println("\nReal-training check: FP32 vs FP16 transport on a scaled instance")
	for _, enc := range []comm.Encoding{comm.FP32, comm.FP16} {
		s := comm.Strategy{QOnly: true, Encoding: enc, Streams: 1}
		res, err := core.Run(core.RunConfig{
			Spec: spec, Platform: plat, Epochs: 15,
			Plan:             core.PlanOptions{ForceStrategy: &s},
			MaterializeScale: 0.001,
			RealK:            8,
			Seed:             9,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s transport: final RMSE %.5f\n", enc, res.FinalRMSE)
	}
	fmt.Println("\nRating scales are coarse (the paper's Strategy 2 argument), so half\nprecision on the wire leaves convergence intact.")
}
