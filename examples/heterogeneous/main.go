// Heterogeneous platform study: build custom multi-CPU/GPU platforms and
// compare the three data partition strategies on each — DP0's proportional
// split, DP1's load-balance compensation (Algorithm 1), and DP2's
// synchronization-hiding stagger.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"hccmf/internal/bus"
	"hccmf/internal/comm"
	"hccmf/internal/core"
	"hccmf/internal/dataset"
	"hccmf/internal/device"
	"hccmf/internal/partition"
)

func main() {
	// A deliberately lopsided platform: one strong GPU, one mid CPU, one
	// weak CPU.
	plat := core.Platform{
		Server: device.Xeon6242(16),
		Workers: []core.WorkerSpec{
			{Device: device.RTX2080Super(), Bus: bus.PCIe3x16},
			{Device: device.Xeon6242(24), Bus: bus.UPI},
			{Device: device.Xeon6242(8), Bus: bus.UPI},
		},
	}

	fmt.Println("Partition strategies on a lopsided 1-GPU/2-CPU platform")
	for _, study := range []struct {
		spec  dataset.Spec
		plat  core.Platform
		note  string
		force *comm.Strategy
	}{
		{spec: dataset.Netflix, plat: plat, note: "custom lopsided platform"},
		// R1* is sync-heavy: run it on the paper's 4-worker platform with
		// synchronous transfers so DP2 has end-of-epoch syncs to hide (the
		// planner would otherwise pick async streams).
		{spec: dataset.YahooR1Star, plat: core.PaperPlatformHetero(),
			note:  "paper 4-worker platform, synchronous transfers",
			force: &comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 1}},
	} {
		fmt.Printf("\n== %s (%dx%d, %d ratings) — %s\n",
			study.spec.Name, study.spec.M, study.spec.N, study.spec.NNZ, study.note)
		for _, ps := range []partition.Strategy{
			partition.DP0Strategy, partition.DP1Strategy, partition.DP2Strategy,
		} {
			ps := ps
			res, err := core.Run(core.RunConfig{
				Spec:     study.spec,
				Platform: study.plat,
				Epochs:   20,
				Plan:     core.PlanOptions{ForcePartition: &ps, ForceStrategy: study.force},
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-4s: %7.3fs for 20 epochs  shares=%v  (planner settled on %s)\n",
				ps, res.Sim.TotalTime, roundShares(res.Plan.Partition), res.Plan.PartitionStrategy)
		}
	}
	fmt.Println("\nDP1 narrows the makespan by rebalancing CPU↔GPU load;")
	fmt.Println("DP2 additionally staggers finish times when sync cost is material (R1*).")
}

func roundShares(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = float64(int(v*1000+0.5)) / 1000
	}
	return out
}
