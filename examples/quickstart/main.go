// Quickstart: train a matrix-factorization model with HCC-MF on a small
// synthetic dataset and watch the held-out RMSE converge.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hccmf/internal/core"
	"hccmf/internal/dataset"
)

func main() {
	// A Netflix-shaped problem, shrunk 500x so it trains in seconds. The
	// framework still plans (grid, communication strategy, partition) for
	// the full-size shape and reports the simulated multi-CPU/GPU wall
	// clock alongside the real convergence.
	res, err := core.Run(core.RunConfig{
		Spec:             dataset.Netflix,
		Platform:         core.PaperPlatformOverall(),
		Epochs:           20,
		MaterializeScale: 0.002,
		RealK:            16,
		Seed:             42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("HCC-MF quickstart — Netflix-shaped synthetic data")
	fmt.Printf("plan: %v\n\n", res.Plan)
	fmt.Printf("%6s %12s %10s\n", "epoch", "sim-time(s)", "test-RMSE")
	for _, p := range res.Curve.Points {
		fmt.Printf("%6d %12.4f %10.5f\n", p.Epoch, p.Time, p.RMSE)
	}
	fmt.Printf("\nsimulated full-size run: %.3fs — %.3g updates/s (%.0f%% of the platform's ideal)\n",
		res.Sim.TotalTime, res.Power, res.Utilization*100)
	fmt.Printf("bus traffic during training: %.2f MiB\n",
		float64(res.CommStats.BusBytes)/(1<<20))
}
