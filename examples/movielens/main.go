// MovieLens: train HCC-MF on a real MovieLens archive if you have one, or
// on a synthetic ML-20m-shaped instance otherwise — and compare the plain
// factor model against the bias-augmented variant.
//
//	go run ./examples/movielens [path/to/ratings.csv | path/to/u.data]
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"hccmf/internal/core"
	"hccmf/internal/dataset"
	"hccmf/internal/mf"
	"hccmf/internal/sparse"
)

func main() {
	var ratings *sparse.COO
	source := "synthetic ml-20m (0.2% scale)"
	if len(os.Args) > 1 {
		path := os.Args[1]
		m, err := loadMovieLens(path)
		if err != nil {
			log.Fatalf("loading %s: %v", path, err)
		}
		ratings = m
		source = path
	} else {
		ds, err := dataset.Generate(dataset.MovieLens20M.MustScaled(0.002), 7)
		if err != nil {
			log.Fatal(err)
		}
		merged := ds.Train.Clone()
		merged.Entries = append(merged.Entries, ds.Test.Entries...)
		ratings = merged
	}
	fmt.Printf("MovieLens study — %s: %d users × %d items, %d ratings\n\n",
		source, ratings.Rows, ratings.Cols, ratings.NNZ())

	train, test, err := ratings.SplitTrainTest(sparse.NewRand(11), 0.1)
	if err != nil {
		log.Fatal(err)
	}
	spec := dataset.Spec{
		Name: "ml-20m", // reuse the calibrated device rates for this shape
		M:    ratings.Rows, N: ratings.Cols, NNZ: int64(ratings.NNZ()),
		Rank:   16,
		Params: dataset.MovieLens20M.Params,
	}

	// 1) HCC-MF on the simulated platform (plain factors).
	res, err := core.Run(core.RunConfig{
		Spec:     spec,
		Platform: core.PaperPlatformOverall(),
		Epochs:   20,
		RealK:    16,
		Data:     &dataset.Dataset{Spec: spec, Train: train, Test: test},
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HCC-MF (plain):   final test RMSE %.4f  (plan: %v)\n",
		res.FinalRMSE, res.Plan.Strategy)

	// 2) The bias-augmented model, trained serially for comparison.
	h := mf.HyperParams{Gamma: spec.Params.Gamma,
		Lambda1: spec.Params.Lambda1, Lambda2: spec.Params.Lambda2}
	biased := mf.NewBiasedFactorsInit(train.Rows, train.Cols, 16,
		train.MeanRating(), sparse.NewRand(12))
	for e := 0; e < 20; e++ {
		biased.Epoch(train.Entries, h)
	}
	fmt.Printf("Biased MF:        final test RMSE %.4f  (μ + b_u + b_i + p·q)\n",
		biased.RMSE(test.Entries))

	fmt.Println("\nML-20m is the paper's limitation case: near-square, so feature")
	fmt.Printf("traffic rivals compute (nnz/(m+n) = %.0f) and utilization is only %.0f%%.\n",
		spec.DimRatio(), res.Utilization*100)
}

func loadMovieLens(path string) (*sparse.COO, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		m, _, err := dataset.ReadMovieLensCSV(f)
		return m, err
	}
	m, _, err := dataset.ReadMovieLensUData(f)
	return m, err
}
