// Limitation study (paper Section 4.6): on near-square matrices like
// MovieLens-20m, the feature matrices are huge relative to the rating
// count, communication rivals computation, and adding processors stops
// paying. This example quantifies where collaboration stops helping.
//
//	go run ./examples/limitation
package main

import (
	"fmt"
	"log"

	"hccmf/internal/core"
	"hccmf/internal/costmodel"
	"hccmf/internal/dataset"
)

func main() {
	fmt.Println("When does multi-CPU/GPU collaboration stop paying?")
	fmt.Println()
	fmt.Printf("%-10s %14s %12s %12s %12s %10s\n",
		"dataset", "nnz/(m+n)", "1 worker(s)", "4 workers(s)", "speedup", "util@4")
	plat := core.PaperPlatformHetero()
	for _, spec := range []dataset.Spec{
		dataset.YahooR2, dataset.Netflix, dataset.YahooR1, dataset.MovieLens20M,
	} {
		single, err := core.Run(core.RunConfig{
			Spec: spec, Platform: plat.FirstWorkers(1), Epochs: 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		full, err := core.Run(core.RunConfig{
			Spec: spec, Platform: plat, Epochs: 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14.0f %12.3f %12.3f %11.2fx %9.0f%%\n",
			spec.Name, spec.DimRatio(),
			single.Sim.TotalTime, full.Sim.TotalTime,
			single.Sim.TotalTime/full.Sim.TotalTime,
			full.Utilization*100)
	}

	fmt.Println("\nThe paper's diagnostic: when nnz/(m+n) falls under ~10³, communication")
	fmt.Println("overhead is the same order as computation and speedups flatten out.")

	// Make the diagnostic concrete with the cost model.
	fmt.Println("\nCost-model view (one 2080S worker, half of the data):")
	for _, spec := range []dataset.Spec{dataset.YahooR2, dataset.MovieLens20M} {
		prob := costmodel.Problem{M: spec.M, N: spec.N, NNZ: spec.NNZ, K: 128}
		w := costmodel.Worker{
			Name: "2080S", Rate: 354261902, BusBW: 16e9,
			CommBytes: float64(prob.K) * float64(prob.N) * 2, // half-Q
			Streams:   1,
		}
		ratio := costmodel.CommComputeRatio(w, 0.5, spec.NNZ)
		fmt.Printf("  %-10s comm/compute = %.3f\n", spec.Name, ratio)
	}
}
