// Package kernelbench defines the hot-path kernel micro-benchmarks shared
// by the `go test -bench` wrappers (bench_test.go at the repo root) and
// `hccmf-bench -json`, which runs them through testing.Benchmark to fill
// the report's kernel section. Keeping a single definition of each workload
// makes the numbers recorded in BENCH_*.json directly comparable with local
// `go test -bench` runs: same matrix shape, same seeds, same engines.
//
// Workloads are deliberately laptop-sized (2000×1000, 200k ratings, k=32)
// so the whole suite runs in seconds; the quantities of interest —
// ns/update, updates/s, allocs/op — are per-update and transfer to the
// full-size problems.
package kernelbench

import (
	"testing"

	"hccmf/internal/core"
	"hccmf/internal/dataset"
	"hccmf/internal/mf"
	"hccmf/internal/raceflag"
	"hccmf/internal/sparse"
)

// Benchmark workload shape. One epoch touches NNZ ratings; every epoch-level
// benchmark below therefore performs exactly NNZ updates per op.
const (
	Rows = 2000
	Cols = 1000
	NNZ  = 200_000
	K    = 32
)

// Hyper is the fixed hyper-parameter set every kernel benchmark trains with.
var Hyper = mf.HyperParams{Gamma: 0.005, Lambda1: 0.01, Lambda2: 0.01}

// Matrix builds the deterministic benchmark rating matrix (uniform random
// coordinates, ratings in [1,5), fixed seed).
func Matrix() *sparse.COO {
	rng := sparse.NewRand(1)
	m := sparse.NewCOO(Rows, Cols, NNZ)
	for i := 0; i < NNZ; i++ {
		m.Add(int32(rng.Intn(Rows)), int32(rng.Intn(Cols)), 1+4*rng.Float32())
	}
	return m
}

// Factors builds the benchmark factor matrices matching Matrix.
func Factors(m *sparse.COO) *mf.Factors {
	return mf.NewFactorsInit(m.Rows, m.Cols, K, m.MeanRating(), sparse.NewRand(2))
}

// ReportUpdates attaches the throughput metrics shared by every kernel
// benchmark: updates/s and ns/update, derived from updates-per-op.
func ReportUpdates(b *testing.B, perOp int) {
	sec := b.Elapsed().Seconds()
	if sec <= 0 {
		return
	}
	total := float64(perOp) * float64(b.N)
	b.ReportMetric(total/sec, "updates/s")
	b.ReportMetric(sec*1e9/total, "ns/update")
}

// UpdateOne benchmarks the single-rating SGD kernel at k=K.
func UpdateOne(b *testing.B) {
	p := make([]float32, K)
	q := make([]float32, K)
	for i := range p {
		p[i], q[i] = 0.3, 0.4
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mf.UpdateOne(p, q, 3.5, Hyper)
	}
	ReportUpdates(b, 1)
}

func epochBench(b *testing.B, e mf.Engine) {
	m := Matrix()
	f := Factors(m)
	b.SetBytes(int64(m.NNZ()) * int64(mf.UpdateBytes(K)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Epoch(f, m, Hyper)
	}
	ReportUpdates(b, m.NNZ())
}

// FPSGDEpoch benchmarks one block-scheduled epoch (4 threads).
func FPSGDEpoch(b *testing.B) {
	epochBench(b, &mf.FPSGD{Threads: 4})
}

// FPSGDEpochTiled benchmarks the fast-math FPSGD epoch: cache-blocked Q
// tiles and the reordered-accumulation kernel. Not race-gated — the block
// scheduler keeps concurrent sweeps row/column-disjoint in this mode too.
func FPSGDEpochTiled(b *testing.B) {
	epochBench(b, &mf.FPSGD{Threads: 4, FastMath: true})
}

// BatchedEpoch benchmarks one cuMF_SGD-style batched epoch (8 groups).
func BatchedEpoch(b *testing.B) {
	if raceflag.Enabled {
		b.Skip("batched kernel is intentionally lock-free; skipped under -race")
	}
	epochBench(b, &mf.Batched{Groups: 8, BatchSize: 4096})
}

// BatchedEpochSoA benchmarks the fast-math batched epoch: per-group SoA
// mini-batch staging with batch-end write-back.
func BatchedEpochSoA(b *testing.B) {
	if raceflag.Enabled {
		b.Skip("batched kernel is intentionally lock-free; skipped under -race")
	}
	epochBench(b, &mf.Batched{Groups: 8, BatchSize: 4096, FastMath: true})
}

// HogwildEpoch benchmarks one lock-free Hogwild epoch (4 threads).
func HogwildEpoch(b *testing.B) {
	if raceflag.Enabled {
		b.Skip("hogwild kernel is intentionally lock-free; skipped under -race")
	}
	epochBench(b, &mf.Hogwild{Threads: 4})
}

// RMSEParallel benchmarks the chunked parallel evaluator (4 workers).
func RMSEParallel(b *testing.B) {
	m := Matrix()
	f := Factors(m)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += mf.RMSEParallel(f, m.Entries, 4)
	}
	_ = sink
	ReportUpdates(b, m.NNZ())
}

// BuildWorkerConfs benchmarks the planner→worker sharding step: CSR
// indexing, row-grid cutting and per-worker shard construction for the
// paper's 4-worker platform.
func BuildWorkerConfs(b *testing.B) {
	m := Matrix()
	plat := core.PaperPlatformOverall()
	spec := dataset.Spec{
		Name: "kernelbench", M: Rows, N: Cols, NNZ: NNZ, Rank: K,
		Params: dataset.Params{Gamma: 0.005, Lambda1: 0.01, Lambda2: 0.01},
	}
	plan, err := core.PlanRun(plat, spec, core.PlanOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildWorkerConfs(plan.Platform, plan, m, core.Tuning{HostCap: 4}); err != nil {
			b.Fatal(err)
		}
	}
	ReportUpdates(b, m.NNZ())
}
