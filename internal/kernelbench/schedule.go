package kernelbench

import (
	"testing"
	"time"

	"hccmf/internal/comm"
	"hccmf/internal/mf"
	"hccmf/internal/obs"
	"hccmf/internal/ps"
	"hccmf/internal/schedule"
	"hccmf/internal/sparse"
)

// ScheduleSchema tags the adaptive-scheduling benchmark group embedded in
// the report (the Schedule field). The group's headline comparison is
// StragglerStatic vs StragglerAdaptive: the same cluster with one slow
// worker, trained with the planner's static split and with epoch-boundary
// rebalancing. Adaptive must beat static — that gap is the feature, and
// diffing it across PRs catches a scheduler that silently stops firing.
const ScheduleSchema = "hccmf-bench/schedule/v1"

// Schedule benchmark workload: a small 4-worker cluster where worker 0 is
// throttled to simulate a slow device. The throttle is proportional to the
// worker's shard size, so re-sharding away from the straggler genuinely
// shortens the epoch barrier — exactly the heterogeneous-device effect the
// rebalancer exists for.
const (
	schedRows   = 400
	schedCols   = 200
	schedNNZ    = 20_000
	schedK      = 8
	schedEpochs = 10
	// stragglerPerEntry is the straggler's simulated per-entry cost; at the
	// initial quarter share (~5k entries) it dominates the epoch by ~100×
	// over the un-throttled workers' real compute.
	stragglerPerEntry = 2 * time.Microsecond
)

// throttledEngine wraps an engine with a sleep proportional to the shard
// it was asked to train, simulating a device whose throughput is a fixed
// factor below the rest of the platform.
type throttledEngine struct {
	inner    mf.Engine
	perEntry time.Duration
}

func (e throttledEngine) Name() string { return "throttled+" + e.inner.Name() }

func (e throttledEngine) Epoch(f *mf.Factors, train *sparse.COO, h mf.HyperParams) {
	e.inner.Epoch(f, train, h)
	time.Sleep(time.Duration(len(train.Entries)) * e.perEntry)
}

// scheduleProblem builds the fixed straggler cluster. Worker 0 carries the
// throttled engine; the initial split is the equal one a rate-blind
// planner would cut.
func scheduleProblem(b *testing.B, adaptive bool) *ps.Cluster {
	b.Helper()
	rng := sparse.NewRand(5)
	full := sparse.NewCOO(schedRows, schedCols, schedNNZ)
	for i := 0; i < schedNNZ; i++ {
		full.Add(int32(rng.Intn(schedRows)), int32(rng.Intn(schedCols)), 1+4*rng.Float32())
	}
	csr := sparse.NewCSRFromCOO(full)
	weights := []float64{0.25, 0.25, 0.25, 0.25}
	slices, err := sparse.CutRowGrid(csr, weights)
	if err != nil {
		b.Fatal(err)
	}
	confs := make([]ps.WorkerConf, len(slices))
	for i, sl := range slices {
		shard := sparse.NewCOO(schedRows, schedCols, int(sl.NNZ))
		for _, e := range full.Entries {
			if int(e.U) >= sl.Lo && int(e.U) < sl.Hi {
				shard.Entries = append(shard.Entries, e)
			}
		}
		var engine mf.Engine = mf.Serial{}
		if i == 0 {
			engine = throttledEngine{inner: mf.Serial{}, perEntry: stragglerPerEntry}
		}
		confs[i] = ps.WorkerConf{
			Name:   string(rune('a'+i)) + "-worker",
			Engine: engine,
			Shard:  shard,
			RowLo:  sl.Lo, RowHi: sl.Hi,
			Weight: weights[i],
		}
	}
	cfg := ps.Config{
		M: schedRows, N: schedCols, K: schedK,
		Hyper:      mf.HyperParams{Gamma: 0.01, Lambda1: 0.005, Lambda2: 0.005},
		Transport:  comm.MustNew(comm.Spec{Kind: comm.KindShared, Workers: 4}),
		Strategy:   comm.Strategy{Encoding: comm.FP32, Streams: 1},
		MeanRating: full.MeanRating(),
		Seed:       7,
		// Both modes carry the observer so the span overhead is symmetric;
		// only the adaptive one acts on the measurements.
		Obs: obs.NewObserver(0, nil),
	}
	if adaptive {
		cfg.Schedule = schedule.Config{
			Policy:     schedule.Throughput,
			Hysteresis: 0.10,
			MinEpochs:  1,
			MinShare:   0.02,
		}
	}
	c, err := ps.New(cfg, confs)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func stragglerBench(b *testing.B, adaptive bool) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The cluster is rebuilt per op: re-sharding mutates the assignment,
		// and each op must start from the same static split.
		b.StopTimer()
		c := scheduleProblem(b, adaptive)
		b.StartTimer()
		if err := c.Train(schedEpochs, nil); err != nil {
			b.Fatal(err)
		}
		if adaptive && len(c.Rebalances()) == 0 {
			b.Fatal("adaptive straggler run performed no rebalances")
		}
	}
	ReportUpdates(b, schedNNZ*schedEpochs)
}

// StragglerStatic trains the straggler cluster on the planner's static
// split for the whole run — the paper's one-shot calibration behaviour.
func StragglerStatic(b *testing.B) { stragglerBench(b, false) }

// StragglerAdaptive trains the same cluster with epoch-boundary
// rebalancing: the re-solve moves load off the throttled worker as soon as
// the measured gain clears hysteresis.
func StragglerAdaptive(b *testing.B) { stragglerBench(b, true) }

// ResolveStep benchmarks the pure re-solve on a 4-worker measurement — the
// per-barrier cost every adaptive epoch pays even when hysteresis keeps
// the split.
func ResolveStep(b *testing.B) {
	shares := []float64{0.25, 0.25, 0.25, 0.25}
	seconds := []float64{0.080, 0.021, 0.019, 0.020}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := schedule.Resolve(shares, seconds); err != nil {
			b.Fatal(err)
		}
	}
}

// ScheduleSuite lists the scheduling benchmarks in report order.
func ScheduleSuite() []Bench {
	return []Bench{
		{"ResolveStep", ResolveStep},
		{"StragglerStatic", StragglerStatic},
		{"StragglerAdaptive", StragglerAdaptive},
	}
}

// CollectSchedule runs the scheduling group count times per benchmark and
// aggregates the means, mirroring Collect.
func CollectSchedule(count int) []Result {
	if count < 1 {
		count = 1
	}
	var out []Result
	for _, bm := range ScheduleSuite() {
		out = append(out, collectOne(bm, count))
	}
	return out
}
