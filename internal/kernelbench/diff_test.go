package kernelbench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baseReport() Report {
	return Report{
		Schema: Schema, Count: 3,
		Workload: Workload{Rows: 512, Cols: 256, NNZ: 1 << 14, K: 16},
		Kernels: []Result{
			{Name: "UpdateOne", NsPerOp: 100, NsPerUpdate: 100},
			{Name: "FPSGDEpoch", NsPerOp: 4e6, NsPerUpdate: 250},
			{Name: "HogwildEpoch", NsPerOp: 3e6, NsPerUpdate: 180},
		},
		Ingest: []Result{
			{Name: "ParseText", NsPerOp: 2e6, MBPerSec: 400},
		},
	}
}

// TestDiffFlagsSyntheticSlowdown is the acceptance gate: a 2x slowdown on
// one kernel must be flagged at the 15% threshold, and nothing else.
func TestDiffFlagsSyntheticSlowdown(t *testing.T) {
	base := baseReport()
	cand := baseReport()
	cand.Kernels[1].NsPerUpdate *= 2 // FPSGDEpoch 250 → 500 ns/update
	deltas := Diff(base, cand, 0.15)
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Name != "FPSGDEpoch" {
		t.Fatalf("regressions = %+v, want exactly FPSGDEpoch", regs)
	}
	if regs[0].Ratio != 2 || regs[0].Metric != "ns/update" {
		t.Fatalf("delta = %+v, want ratio 2 on ns/update", regs[0])
	}
	out := FormatDeltas(deltas)
	if !strings.Contains(out, "REGRESS") || !strings.Contains(out, "FPSGDEpoch") {
		t.Fatalf("formatted report missing the flag:\n%s", out)
	}
}

// TestDiffToleratesNoise: a 5% drift stays under the 15% threshold.
func TestDiffToleratesNoise(t *testing.T) {
	base := baseReport()
	cand := baseReport()
	for i := range cand.Kernels {
		cand.Kernels[i].NsPerUpdate *= 1.05
		cand.Kernels[i].NsPerOp *= 1.05
	}
	if regs := Regressions(Diff(base, cand, 0.15)); len(regs) != 0 {
		t.Fatalf("5%% drift flagged: %+v", regs)
	}
}

// TestDiffIgnoresImprovements: a 10x speedup must never flag.
func TestDiffIgnoresImprovements(t *testing.T) {
	base := baseReport()
	cand := baseReport()
	for i := range cand.Kernels {
		cand.Kernels[i].NsPerUpdate /= 10
	}
	if regs := Regressions(Diff(base, cand, 0.15)); len(regs) != 0 {
		t.Fatalf("improvement flagged: %+v", regs)
	}
}

// TestDiffSkipsUnpairedAndSkipped: renamed kernels and race-mode skips
// drop out of the comparison instead of flagging.
func TestDiffSkipsUnpairedAndSkipped(t *testing.T) {
	base := baseReport()
	cand := baseReport()
	cand.Kernels[0].Name = "UpdateOneRenamed"
	cand.Kernels[2].Skipped = true
	cand.Kernels[2].NsPerUpdate = 0
	deltas := Diff(base, cand, 0.15)
	for _, d := range deltas {
		if d.Name == "UpdateOne" || d.Name == "UpdateOneRenamed" || d.Name == "HogwildEpoch" {
			t.Fatalf("unpaired/skipped kernel compared: %+v", d)
		}
	}
	// Ingest group still pairs (falls back to ns/op — no ns/update there).
	var sawIngest bool
	for _, d := range deltas {
		if d.Group == "ingest" && d.Name == "ParseText" {
			sawIngest = true
			if d.Metric != "ns/op" {
				t.Fatalf("ingest metric = %q, want ns/op fallback", d.Metric)
			}
		}
	}
	if !sawIngest {
		t.Fatal("ingest group not diffed")
	}
}

// TestLoadReportBareAndWrapped covers both on-disk shapes: the raw
// `hccmf-bench -json` output and the checked-in comparison wrapper whose
// `after` member is the baseline.
func TestLoadReportBareAndWrapped(t *testing.T) {
	dir := t.TempDir()
	rep := baseReport()
	rep.GoVersion = "go1.22"

	bare := filepath.Join(dir, "bare.json")
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bare, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(bare)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Kernels) != 3 {
		t.Fatalf("bare load = %+v", got)
	}

	wrapped := filepath.Join(dir, "BENCH_0001.json")
	wbuf, err := json.Marshal(map[string]any{
		"schema": ComparisonSchema,
		"notes":  "synthetic",
		"before": map[string]any{"schema": Schema},
		"after":  rep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wrapped, wbuf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = LoadReport(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if got.GoVersion != "go1.22" || len(got.Kernels) != 3 {
		t.Fatalf("wrapped load = %+v", got)
	}

	if _, err := LoadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(`{"schema":"nope/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(badPath); err == nil {
		t.Fatal("unknown schema loaded")
	}
}

// TestLatestBaseline picks the lexically newest BENCH_*.json.
func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_0003.json", "BENCH_0010.json", "BENCH_0004.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LatestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_0010.json" {
		t.Fatalf("latest = %s, want BENCH_0010.json", got)
	}
	if _, err := LatestBaseline(t.TempDir()); err == nil {
		t.Fatal("empty dir yielded a baseline")
	}
}

// TestLoadCheckedInBaselines proves the real repo documents load — the
// contract the CI benchdiff job relies on.
func TestLoadCheckedInBaselines(t *testing.T) {
	root := filepath.Join("..", "..")
	latest, err := LatestBaseline(root)
	if err != nil {
		t.Skipf("no checked-in baselines: %v", err)
	}
	rep, err := LoadReport(latest)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || len(rep.Kernels) == 0 {
		t.Fatalf("checked-in baseline %s loaded as %+v", latest, rep)
	}
	// Self-diff must be all-zeros change, no flags.
	if regs := Regressions(Diff(rep, rep, 0.15)); len(regs) != 0 {
		t.Fatalf("self-diff flagged regressions: %+v", regs)
	}
}

// TestNormalizeCancelsAmbientDrift: a uniform 60% machine-wide slowdown
// must not flag anything after median normalization, while a kernel that
// additionally doubled still must.
func TestNormalizeCancelsAmbientDrift(t *testing.T) {
	base := baseReport()
	cand := baseReport()
	for i := range cand.Kernels {
		cand.Kernels[i].NsPerUpdate *= 1.6
		cand.Kernels[i].NsPerOp *= 1.6
	}
	cand.Ingest[0].NsPerOp *= 1.6
	deltas := Diff(base, cand, 0.5)
	if regs := Regressions(deltas); len(regs) == 0 {
		t.Fatal("raw 60% drift not flagged at the 50% threshold — test premise broken")
	}
	m := MedianRatio(deltas)
	if m < 1.59 || m > 1.61 {
		t.Fatalf("MedianRatio = %v, want ~1.6", m)
	}
	if regs := Regressions(Normalize(deltas, m, 0.5)); len(regs) != 0 {
		t.Fatalf("uniform drift still flagged after normalization: %+v", regs)
	}

	// The same drift plus one genuine 2x regression: only that kernel flags.
	cand.Kernels[0].NsPerUpdate *= 2 // UpdateOne: 1.6 ambient × 2 real
	deltas = Diff(base, cand, 0.5)
	norm := Normalize(deltas, MedianRatio(deltas), 0.5)
	regs := Regressions(norm)
	if len(regs) != 1 || regs[0].Name != "UpdateOne" {
		t.Fatalf("normalized regressions = %+v, want exactly UpdateOne", regs)
	}
}

// TestMedianRatioEdges: empty input and even-length lists.
func TestMedianRatioEdges(t *testing.T) {
	if m := MedianRatio(nil); m != 1 {
		t.Fatalf("MedianRatio(nil) = %v, want 1", m)
	}
	ds := []Delta{{Ratio: 1}, {Ratio: 3}}
	if m := MedianRatio(ds); m != 2 {
		t.Fatalf("even-length median = %v, want 2", m)
	}
	if regs := Regressions(Normalize(ds, 0, 0.5)); len(regs) != 1 {
		t.Fatalf("Normalize with m<=0 must fall back to raw ratios: %+v", regs)
	}
}
