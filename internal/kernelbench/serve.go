package kernelbench

import (
	"fmt"
	"sort"
	"time"

	"hccmf/internal/mf"
	"hccmf/internal/recommend"
	"hccmf/internal/sparse"
)

// Serving benchmark group. Where the kernel and ingest groups time
// training-side hot loops, this group times the query side: top-N requests
// against an in-process recommend.Service over the same Rows×Cols×K
// workload. hccmf-loadgen reports the same ServeResult shape measured over
// HTTP against a live hccmf-serve, so in-process and end-to-end numbers
// diff with the same tooling.

// ServeSchema tags the serving benchmark group embedded in the report's
// Serve field, versioned separately like IngestSchema.
const ServeSchema = "hccmf-bench/serve/v1"

// ServeResult is one serving scenario's latency/throughput summary.
// Percentiles are exact (nearest-rank over all recorded samples), in
// microseconds: serving latencies sit in the µs-to-ms range where ns are
// noise and seconds lose precision.
type ServeResult struct {
	Name     string  `json:"name"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	QPS      float64 `json:"qps"`
	P50us    float64 `json:"p50_us"`
	P99us    float64 `json:"p99_us"`
	MeanUs   float64 `json:"mean_us"`
}

// Percentile returns the exact q-quantile of sorted (ascending) by the
// nearest-rank method. Zero on an empty slice.
func Percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	idx := int(q*float64(len(sorted))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// SummarizeServe aggregates raw per-request latencies into a ServeResult.
// latencies may arrive unsorted; elapsed is the wall time of the whole run
// (QPS accounts for concurrency, so it is requests/elapsed, not
// 1/mean-latency).
func SummarizeServe(name string, latencies []time.Duration, errors int64, elapsed time.Duration) ServeResult {
	res := ServeResult{
		Name:     name,
		Requests: int64(len(latencies)),
		Errors:   errors,
	}
	if len(latencies) == 0 {
		return res
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	const us = float64(time.Microsecond)
	res.MeanUs = float64(sum) / float64(len(sorted)) / us
	res.P50us = float64(Percentile(sorted, 0.50)) / us
	res.P99us = float64(Percentile(sorted, 0.99)) / us
	if elapsed > 0 {
		res.QPS = float64(len(latencies)) / elapsed.Seconds()
	}
	return res
}

// Serving scenario sizes. TopN requests ask for serveN items; the batch
// scenario scores serveBatch users per request. Request counts are per
// Collect run (multiplied by count).
const (
	serveN        = 10
	serveBatch    = 32
	serveSingles  = 2000
	serveBatchReq = 200
)

// CollectServe measures the serving scenarios against an in-process
// Service on a seeded synthetic Rows×Cols×K model: single-user requests
// (shard-parallel scoring) and batch requests (user-parallel scoring).
func CollectServe(count int) ([]ServeResult, error) {
	if count < 1 {
		count = 1
	}
	model := mf.NewFactorsInit(Rows, Cols, K, 3.5, sparse.NewRand(11))
	svc, err := recommend.NewService(model, Rows, Cols, recommend.ServiceConfig{MaxN: serveN})
	if err != nil {
		return nil, fmt.Errorf("kernelbench: serve harness: %w", err)
	}
	defer svc.Close()

	buf := make([]recommend.Item, 0, serveN)
	singles := make([]time.Duration, 0, count*serveSingles)
	start := time.Now()
	for i := 0; i < count*serveSingles; i++ {
		u := int32(i % Rows)
		t0 := time.Now()
		if _, err := svc.TopNInto(u, serveN, buf); err != nil {
			return nil, fmt.Errorf("kernelbench: serve TopN user %d: %w", u, err)
		}
		singles = append(singles, time.Since(t0))
	}
	singleElapsed := time.Since(start)

	users := make([]int32, serveBatch)
	bufs := make([][]recommend.Item, serveBatch)
	for i := range bufs {
		bufs[i] = make([]recommend.Item, 0, serveN)
	}
	batches := make([]time.Duration, 0, count*serveBatchReq)
	start = time.Now()
	for i := 0; i < count*serveBatchReq; i++ {
		for j := range users {
			users[j] = int32((i*serveBatch + j) % Rows)
		}
		t0 := time.Now()
		if err := svc.TopNBatch(users, serveN, bufs); err != nil {
			return nil, fmt.Errorf("kernelbench: serve TopNBatch request %d: %w", i, err)
		}
		batches = append(batches, time.Since(t0))
	}
	batchElapsed := time.Since(start)

	return []ServeResult{
		SummarizeServe(fmt.Sprintf("TopN%d", serveN), singles, 0, singleElapsed),
		SummarizeServe(fmt.Sprintf("TopN%dBatch%d", serveN, serveBatch), batches, 0, batchElapsed),
	}, nil
}
