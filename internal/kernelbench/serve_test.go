package kernelbench

import (
	"testing"
	"time"
)

func TestPercentileNearestRank(t *testing.T) {
	var empty []time.Duration
	if got := Percentile(empty, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, 1}, {0.1, 1}, {0.5, 5}, {0.9, 9}, {0.99, 10}, {1, 10},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.q); got != c.want {
			t.Errorf("p%g = %v, want %v", c.q*100, got, c.want)
		}
	}
	one := []time.Duration{7}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := Percentile(one, q); got != 7 {
			t.Errorf("single-sample p%g = %v", q*100, got)
		}
	}
}

func TestSummarizeServe(t *testing.T) {
	// Unsorted on purpose: Summarize must sort before ranking.
	lat := []time.Duration{
		3 * time.Microsecond, 1 * time.Microsecond, 2 * time.Microsecond, 100 * time.Microsecond,
	}
	res := SummarizeServe("s", lat, 1, 2*time.Millisecond)
	if res.Requests != 4 || res.Errors != 1 {
		t.Fatalf("counts: %+v", res)
	}
	if res.P50us != 2 {
		t.Fatalf("p50 = %v, want 2", res.P50us)
	}
	if res.P99us != 100 {
		t.Fatalf("p99 = %v, want 100", res.P99us)
	}
	if want := (3.0 + 1 + 2 + 100) / 4; res.MeanUs != want {
		t.Fatalf("mean = %v, want %v", res.MeanUs, want)
	}
	if want := 4.0 / 0.002; res.QPS != want {
		t.Fatalf("qps = %v, want %v", res.QPS, want)
	}
	if e := SummarizeServe("empty", nil, 0, time.Second); e.Requests != 0 || e.QPS != 0 {
		t.Fatalf("empty summary: %+v", e)
	}
}

func TestDiffServeGroup(t *testing.T) {
	base := Report{Serve: []ServeResult{
		{Name: "TopN10", P99us: 40, QPS: 1000},
		{Name: "Gone", P99us: 10},
	}}
	cand := Report{Serve: []ServeResult{
		{Name: "TopN10", P99us: 50, QPS: 900},
		{Name: "New", P99us: 10},
	}}
	deltas := Diff(base, cand, 0.15)
	if len(deltas) != 1 {
		t.Fatalf("deltas = %+v, want exactly the shared scenario", deltas)
	}
	d := deltas[0]
	if d.Group != "serve" || d.Metric != "p99_us" || d.Name != "TopN10" {
		t.Fatalf("delta shape: %+v", d)
	}
	if !d.Regressed || d.Ratio != 1.25 {
		t.Fatalf("50 vs 40 p99 must regress at 15%%: %+v", d)
	}
	// Within threshold: no flag.
	cand.Serve[0].P99us = 44
	if ds := Diff(base, cand, 0.15); ds[0].Regressed {
		t.Fatalf("44 vs 40 flagged: %+v", ds[0])
	}
}

// TestCollectServeSmoke runs the in-process harness at its smallest size
// and sanity-checks the two scenarios' summaries.
func TestCollectServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serve harness issues thousands of requests")
	}
	results, err := CollectServe(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("scenarios = %d, want 2", len(results))
	}
	if results[0].Name != "TopN10" || results[1].Name != "TopN10Batch32" {
		t.Fatalf("scenario names: %+v", results)
	}
	for _, r := range results {
		if r.Requests == 0 || r.Errors != 0 {
			t.Fatalf("%s: %+v", r.Name, r)
		}
		if r.QPS <= 0 || r.P50us <= 0 || r.P99us < r.P50us || r.MeanUs <= 0 {
			t.Fatalf("%s: implausible summary %+v", r.Name, r)
		}
	}
}
