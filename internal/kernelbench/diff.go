package kernelbench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ComparisonSchema tags the checked-in before/after comparison documents
// (BENCH_*.json). A comparison wraps two kernel reports; for diffing
// purposes its `after` member is the baseline.
const ComparisonSchema = "hccmf-bench/kernel-comparison/v1"

// Delta is one kernel's change between a baseline and a candidate report.
// Ratio is candidate/baseline of the chosen metric, so >1 means slower.
type Delta struct {
	Name      string  `json:"name"`
	Group     string  `json:"group"`  // "kernel", "ingest", "serve" or "schedule"
	Metric    string  `json:"metric"` // "ns/update", "ns/op" or "p99_us"
	Base      float64 `json:"base"`
	Candidate float64 `json:"candidate"`
	Ratio     float64 `json:"ratio"`
	Regressed bool    `json:"regressed"`
}

// Diff compares a candidate report against a baseline, kernel by kernel.
// A kernel regresses when its candidate time exceeds the baseline by more
// than threshold (0.15 = 15% slower). Kernels present in only one report
// or skipped in either are left out — renames and race-mode skips are not
// regressions. Faster-than-baseline results never flag.
func Diff(base, cand Report, threshold float64) []Delta {
	var deltas []Delta
	deltas = append(deltas, diffGroup("kernel", base.Kernels, cand.Kernels, threshold)...)
	deltas = append(deltas, diffGroup("ingest", base.Ingest, cand.Ingest, threshold)...)
	deltas = append(deltas, diffServe(base.Serve, cand.Serve, threshold)...)
	deltas = append(deltas, diffGroup("schedule", base.Schedule, cand.Schedule, threshold)...)
	return deltas
}

// diffServe compares the serving group on tail latency: the ratio is
// candidate/baseline p99 in µs, so like the time-based groups >1 means
// slower. QPS and p50 ride along in the reports for human reading; p99 is
// the regression gate because it is the serving SLO number.
func diffServe(base, cand []ServeResult, threshold float64) []Delta {
	byName := make(map[string]ServeResult, len(base))
	for _, r := range base {
		byName[r.Name] = r
	}
	var deltas []Delta
	for _, c := range cand {
		b, ok := byName[c.Name]
		if !ok || b.P99us <= 0 || c.P99us <= 0 {
			continue
		}
		d := Delta{
			Name: c.Name, Group: "serve", Metric: "p99_us",
			Base: b.P99us, Candidate: c.P99us, Ratio: c.P99us / b.P99us,
		}
		d.Regressed = d.Ratio > 1+threshold
		deltas = append(deltas, d)
	}
	return deltas
}

func diffGroup(group string, base, cand []Result, threshold float64) []Delta {
	byName := make(map[string]Result, len(base))
	for _, r := range base {
		byName[r.Name] = r
	}
	var deltas []Delta
	for _, c := range cand {
		b, ok := byName[c.Name]
		if !ok || b.Skipped || c.Skipped {
			continue
		}
		metric, bv, cv := pickMetric(b, c)
		if bv <= 0 || cv <= 0 {
			continue
		}
		d := Delta{
			Name: c.Name, Group: group, Metric: metric,
			Base: bv, Candidate: cv, Ratio: cv / bv,
		}
		d.Regressed = d.Ratio > 1+threshold
		deltas = append(deltas, d)
	}
	return deltas
}

// pickMetric chooses the per-update time when both reports carry it (the
// normalized number that survives workload-size changes) and falls back to
// raw ns/op otherwise.
func pickMetric(b, c Result) (string, float64, float64) {
	if b.NsPerUpdate > 0 && c.NsPerUpdate > 0 {
		return "ns/update", b.NsPerUpdate, c.NsPerUpdate
	}
	return "ns/op", b.NsPerOp, c.NsPerOp
}

// MedianRatio returns the median candidate/baseline ratio across deltas,
// or 1 when the list is empty. On a shared machine the whole suite drifts
// together (another tenant, thermal throttling); the median tracks that
// ambient shift because a genuine regression moves only its own kernels,
// not the middle of the distribution.
func MedianRatio(deltas []Delta) float64 {
	if len(deltas) == 0 {
		return 1
	}
	rs := make([]float64, len(deltas))
	for i, d := range deltas {
		rs[i] = d.Ratio
	}
	sort.Float64s(rs)
	if n := len(rs); n%2 == 1 {
		return rs[n/2]
	} else {
		return (rs[n/2-1] + rs[n/2]) / 2
	}
}

// Normalize divides every delta's ratio by m (a MedianRatio) and re-flags
// regressions against threshold, cancelling a uniform machine-wide
// slowdown so only relative movement gates. The blind spot is a change
// that slows *every* benchmark equally — the equivalence and selection
// unit tests cover that case, not the bench gate. Base/Candidate keep
// their measured values; only Ratio and Regressed are rescaled.
func Normalize(deltas []Delta, m, threshold float64) []Delta {
	if m <= 0 {
		m = 1
	}
	out := append([]Delta(nil), deltas...)
	for i := range out {
		out[i].Ratio /= m
		out[i].Regressed = out[i].Ratio > 1+threshold
	}
	return out
}

// Regressions filters a delta list down to the flagged entries.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// FormatDeltas renders the comparison as an aligned table, slowest change
// first, flagged rows marked with "REGRESS".
func FormatDeltas(deltas []Delta) string {
	sorted := append([]Delta(nil), deltas...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Ratio > sorted[j].Ratio })
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-18s %-10s %14s %14s %8s\n",
		"group", "name", "metric", "base", "candidate", "change")
	for _, d := range sorted {
		mark := ""
		if d.Regressed {
			mark = "  REGRESS"
		}
		fmt.Fprintf(&sb, "%-8s %-18s %-10s %14.1f %14.1f %+7.1f%%%s\n",
			d.Group, d.Name, d.Metric, d.Base, d.Candidate, (d.Ratio-1)*100, mark)
	}
	return sb.String()
}

// LoadReport reads a benchmark report from path, accepting either a bare
// kernel report (hccmf-bench/kernel/v1, what `hccmf-bench -json` writes)
// or a checked-in comparison document (BENCH_*.json), whose `after` member
// is unwrapped as the baseline.
func LoadReport(path string) (Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var sniff struct {
		Schema string          `json:"schema"`
		After  json.RawMessage `json:"after"`
	}
	if err := json.Unmarshal(buf, &sniff); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	switch sniff.Schema {
	case Schema:
		var rep Report
		if err := json.Unmarshal(buf, &rep); err != nil {
			return Report{}, fmt.Errorf("%s: %w", path, err)
		}
		return rep, nil
	case ComparisonSchema:
		if len(sniff.After) == 0 {
			return Report{}, fmt.Errorf("%s: comparison document has no after report", path)
		}
		var rep Report
		if err := json.Unmarshal(sniff.After, &rep); err != nil {
			return Report{}, fmt.Errorf("%s: after: %w", path, err)
		}
		if rep.Schema != Schema {
			return Report{}, fmt.Errorf("%s: after schema %q, want %q", path, rep.Schema, Schema)
		}
		return rep, nil
	default:
		return Report{}, fmt.Errorf("%s: unknown schema %q", path, sniff.Schema)
	}
}

// LatestBaseline returns the newest checked-in BENCH_*.json in dir. The
// files carry a zero-padded sequence number, so lexical order is creation
// order.
func LatestBaseline(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("no BENCH_*.json baselines in %s", dir)
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}
