package kernelbench

import (
	"runtime"
	"testing"

	"hccmf/internal/raceflag"
)

// Schema tags the JSON document emitted by `hccmf-bench -json`. The field
// set is pinned by TestReportSchemaStable; bump the version when it
// changes so downstream consumers (BENCH_*.json diffs) can tell.
const Schema = "hccmf-bench/kernel/v1"

// IngestSchema tags the ingestion benchmark group embedded in the same
// document (the Ingest field). Versioned separately from the kernel group
// so either suite can evolve without invalidating the other's diffs.
const IngestSchema = "hccmf-bench/ingest/v1"

// Workload records the fixed benchmark problem shape inside the report so
// a checked-in document is self-describing.
type Workload struct {
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	NNZ  int `json:"nnz"`
	K    int `json:"k"`
}

// Result is one kernel's aggregated measurement. Times and rates are means
// over the report's Count runs; Iterations sums the runs' b.N. AllocsPerOp
// and BytesPerOp deliberately have no omitempty: 0 allocs is the headline
// claim, so it must appear explicitly.
type Result struct {
	Name          string  `json:"name"`
	Skipped       bool    `json:"skipped,omitempty"`
	Iterations    int     `json:"iterations,omitempty"`
	NsPerOp       float64 `json:"ns_per_op,omitempty"`
	NsPerUpdate   float64 `json:"ns_per_update,omitempty"`
	UpdatesPerSec float64 `json:"updates_per_sec,omitempty"`
	MBPerSec      float64 `json:"mb_per_sec,omitempty"`
	EntriesPerSec float64 `json:"entries_per_sec,omitempty"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
}

// Report is the full document `hccmf-bench -json` writes.
type Report struct {
	Schema     string   `json:"schema"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Count      int      `json:"count"`
	Race       bool     `json:"race,omitempty"`
	Workload   Workload `json:"workload"`
	Kernels    []Result `json:"kernels"`
	// IngestSchema and Ingest carry the ingestion benchmark group
	// (IngestSuite); both are omitted from kernel-only documents.
	IngestSchema string   `json:"ingest_schema,omitempty"`
	Ingest       []Result `json:"ingest,omitempty"`
	// ServeSchema and Serve carry the serving benchmark group — written by
	// Collect (in-process harness) and by hccmf-loadgen (over HTTP).
	ServeSchema string        `json:"serve_schema,omitempty"`
	Serve       []ServeResult `json:"serve,omitempty"`
	// ScheduleSchema and Schedule carry the adaptive-scheduling group
	// (ScheduleSuite): the static-vs-adaptive straggler comparison and the
	// re-solve micro-benchmark.
	ScheduleSchema string   `json:"schedule_schema,omitempty"`
	Schedule       []Result `json:"schedule,omitempty"`
}

// Bench is one named kernel micro-benchmark of the suite.
type Bench struct {
	Name string
	Fn   func(b *testing.B)
}

// Suite lists the kernel micro-benchmarks in report order. The names match
// the Benchmark* wrappers in bench_test.go minus the prefix, so `go test
// -bench` output and `hccmf-bench -json` documents line up.
func Suite() []Bench {
	return []Bench{
		{"UpdateOne", UpdateOne},
		{"FPSGDEpoch", FPSGDEpoch},
		{"FPSGDEpochTiled", FPSGDEpochTiled},
		{"BatchedEpoch", BatchedEpoch},
		{"BatchedEpochSoA", BatchedEpochSoA},
		{"HogwildEpoch", HogwildEpoch},
		{"RMSEParallel", RMSEParallel},
		{"BuildWorkerConfs", BuildWorkerConfs},
	}
}

// Collect runs the whole suite count times per kernel (testing.Benchmark
// with its default 1s target per run) and aggregates the means. Averaging
// over a few runs is deliberate: single runs on a busy host are noisy,
// and the checked-in BENCH_*.json numbers should be reproducible.
func Collect(count int) Report {
	if count < 1 {
		count = 1
	}
	rep := Report{
		Schema:     Schema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Count:      count,
		Race:       raceflag.Enabled,
		Workload:   Workload{Rows: Rows, Cols: Cols, NNZ: NNZ, K: K},
	}
	for _, bm := range Suite() {
		rep.Kernels = append(rep.Kernels, collectOne(bm, count))
	}
	rep.IngestSchema = IngestSchema
	for _, bm := range IngestSuite() {
		rep.Ingest = append(rep.Ingest, collectOne(bm, count))
	}
	// The serving harness cannot fail on the fixed workload; if it somehow
	// does, the group is omitted rather than poisoning the whole report.
	if serve, err := CollectServe(count); err == nil {
		rep.ServeSchema = ServeSchema
		rep.Serve = serve
	}
	rep.ScheduleSchema = ScheduleSchema
	rep.Schedule = CollectSchedule(count)
	return rep
}

// collectOne aggregates count testing.Benchmark runs of one kernel. A
// benchmark that skips itself (the lock-free engines under -race) yields
// b.N == 0 and is reported as Skipped.
func collectOne(bm Bench, count int) Result {
	res := Result{Name: bm.Name}
	runs := 0
	for i := 0; i < count; i++ {
		r := testing.Benchmark(bm.Fn)
		if r.N == 0 {
			continue
		}
		runs++
		res.Iterations += r.N
		res.NsPerOp += float64(r.NsPerOp())
		res.NsPerUpdate += r.Extra["ns/update"]
		res.UpdatesPerSec += r.Extra["updates/s"]
		res.MBPerSec += r.Extra["MB/s"]
		res.EntriesPerSec += r.Extra["entries/s"]
		res.AllocsPerOp += r.AllocsPerOp()
		res.BytesPerOp += r.AllocedBytesPerOp()
	}
	if runs == 0 {
		return Result{Name: bm.Name, Skipped: true}
	}
	n := float64(runs)
	res.NsPerOp /= n
	res.NsPerUpdate /= n
	res.UpdatesPerSec /= n
	res.MBPerSec /= n
	res.EntriesPerSec /= n
	res.AllocsPerOp /= int64(runs)
	res.BytesPerOp /= int64(runs)
	return res
}
