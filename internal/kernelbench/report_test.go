package kernelbench

import (
	"encoding/json"
	"testing"
)

// TestReportSchemaStable pins the JSON field set of the -json document.
// BENCH_*.json files are diffed across PRs, so renaming a field is a
// schema change: bump Schema and update this golden together.
func TestReportSchemaStable(t *testing.T) {
	rep := Report{
		Schema:     Schema,
		GoVersion:  "go1.24.0",
		GOMAXPROCS: 1,
		Count:      3,
		Workload:   Workload{Rows: Rows, Cols: Cols, NNZ: NNZ, K: K},
		Kernels: []Result{{
			Name: "UpdateOne", Iterations: 100, NsPerOp: 42,
			NsPerUpdate: 42, UpdatesPerSec: 2.38e7,
		}},
	}
	got, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"schema":"hccmf-bench/kernel/v1","go_version":"go1.24.0",` +
		`"gomaxprocs":1,"count":3,` +
		`"workload":{"rows":2000,"cols":1000,"nnz":200000,"k":32},` +
		`"kernels":[{"name":"UpdateOne","iterations":100,"ns_per_op":42,` +
		`"ns_per_update":42,"updates_per_sec":23800000,` +
		`"allocs_per_op":0,"bytes_per_op":0}]}`
	if string(got) != want {
		t.Fatalf("schema drifted:\n got %s\nwant %s", got, want)
	}
}

// TestIngestSchemaStable pins the ingest group's field set the same way:
// the throughput metrics are MB/s and entries/s, and the kernel-only
// fields stay omitted for ingest results.
func TestIngestSchemaStable(t *testing.T) {
	rep := Report{
		Schema:       Schema,
		GoVersion:    "go1.24.0",
		GOMAXPROCS:   1,
		Count:        3,
		Workload:     Workload{Rows: Rows, Cols: Cols, NNZ: NNZ, K: K},
		IngestSchema: IngestSchema,
		Ingest: []Result{{
			Name: "ReadText", Iterations: 10, NsPerOp: 1e6,
			MBPerSec: 350, EntriesPerSec: 4.2e7,
		}},
	}
	got, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"schema":"hccmf-bench/kernel/v1","go_version":"go1.24.0",` +
		`"gomaxprocs":1,"count":3,` +
		`"workload":{"rows":2000,"cols":1000,"nnz":200000,"k":32},` +
		`"kernels":null,` +
		`"ingest_schema":"hccmf-bench/ingest/v1",` +
		`"ingest":[{"name":"ReadText","iterations":10,"ns_per_op":1000000,` +
		`"mb_per_sec":350,"entries_per_sec":42000000,` +
		`"allocs_per_op":0,"bytes_per_op":0}]}`
	if string(got) != want {
		t.Fatalf("ingest schema drifted:\n got %s\nwant %s", got, want)
	}
}

// TestServeSchemaStable pins the serving group's field set: exact
// nearest-rank percentiles in microseconds plus throughput. Requests and
// Errors have no omitempty — 0 errors is the claim being recorded.
func TestServeSchemaStable(t *testing.T) {
	rep := Report{
		Schema:      Schema,
		GoVersion:   "go1.24.0",
		GOMAXPROCS:  1,
		Count:       3,
		Workload:    Workload{Rows: Rows, Cols: Cols, NNZ: NNZ, K: K},
		ServeSchema: ServeSchema,
		Serve: []ServeResult{{
			Name: "TopN10", Requests: 2000, QPS: 50000,
			P50us: 18, P99us: 41, MeanUs: 20,
		}},
	}
	got, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"schema":"hccmf-bench/kernel/v1","go_version":"go1.24.0",` +
		`"gomaxprocs":1,"count":3,` +
		`"workload":{"rows":2000,"cols":1000,"nnz":200000,"k":32},` +
		`"kernels":null,` +
		`"serve_schema":"hccmf-bench/serve/v1",` +
		`"serve":[{"name":"TopN10","requests":2000,"errors":0,"qps":50000,` +
		`"p50_us":18,"p99_us":41,"mean_us":20}]}`
	if string(got) != want {
		t.Fatalf("serve schema drifted:\n got %s\nwant %s", got, want)
	}
}

// TestScheduleSchemaStable pins the schedule group's field set: the
// straggler pair reports ns/update like the kernel group (its unit of
// work is SGD updates through a re-shardable cluster), so the same
// Result shape rides under the schedule keys.
func TestScheduleSchemaStable(t *testing.T) {
	rep := Report{
		Schema:         Schema,
		GoVersion:      "go1.24.0",
		GOMAXPROCS:     1,
		Count:          3,
		Workload:       Workload{Rows: Rows, Cols: Cols, NNZ: NNZ, K: K},
		ScheduleSchema: ScheduleSchema,
		Schedule: []Result{{
			Name: "StragglerAdaptive", Iterations: 50, NsPerOp: 2.7e7,
			NsPerUpdate: 137, UpdatesPerSec: 7.3e6,
		}},
	}
	got, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"schema":"hccmf-bench/kernel/v1","go_version":"go1.24.0",` +
		`"gomaxprocs":1,"count":3,` +
		`"workload":{"rows":2000,"cols":1000,"nnz":200000,"k":32},` +
		`"kernels":null,` +
		`"schedule_schema":"hccmf-bench/schedule/v1",` +
		`"schedule":[{"name":"StragglerAdaptive","iterations":50,` +
		`"ns_per_op":27000000,"ns_per_update":137,"updates_per_sec":7300000,` +
		`"allocs_per_op":0,"bytes_per_op":0}]}`
	if string(got) != want {
		t.Fatalf("schedule schema drifted:\n got %s\nwant %s", got, want)
	}
}

// TestCollectOneAggregates checks run aggregation and skip handling with a
// synthetic benchmark (the real suite is exercised by bench_test.go and
// verify.sh's bench smoke step).
func TestCollectOneAggregates(t *testing.T) {
	bench := Bench{Name: "synthetic", Fn: func(b *testing.B) {
		for i := 0; i < b.N; i++ {
		}
		ReportUpdates(b, 1)
	}}
	res := collectOne(bench, 2)
	if res.Skipped {
		t.Fatal("synthetic benchmark reported as skipped")
	}
	if res.Iterations == 0 || res.UpdatesPerSec <= 0 {
		t.Fatalf("no aggregation happened: %+v", res)
	}
	if res.AllocsPerOp != 0 {
		t.Fatalf("empty loop allocated: %+v", res)
	}

	skip := Bench{Name: "skipper", Fn: func(b *testing.B) { b.Skip("nope") }}
	if res := collectOne(skip, 2); !res.Skipped {
		t.Fatalf("skipping benchmark not marked Skipped: %+v", res)
	}
}
