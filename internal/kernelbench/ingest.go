package kernelbench

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"hccmf/internal/dataset"
	"hccmf/internal/sparse"
)

// Ingestion micro-benchmarks: the parallel zero-copy pipeline of
// internal/dataset and the grid sort of internal/sparse, measured on the
// same 2000×1000/200k matrix as the kernel suite rendered as a text file,
// a MovieLens-style ratings.csv, and the binary format. Each parallel
// path is paired with its serial reference benchmark so a single report
// carries both sides of the comparison recorded in BENCH_*.json.

// IngestWorkers is the worker count the parallel read benchmarks run
// with. Fixed (rather than GOMAXPROCS) so reports from different hosts
// measure the same configuration.
const IngestWorkers = 8

var (
	ingestOnce sync.Once
	ingestText []byte // WriteText rendering of Matrix()
	ingestCSV  []byte // ratings.csv rendering of Matrix()
	ingestBin  []byte // WriteBinary rendering of Matrix()
)

// ingestInit renders the shared input buffers once; every benchmark
// parses from memory so the numbers measure parsing, not disk.
func ingestInit() {
	ingestOnce.Do(func() {
		m := Matrix()
		var tb, bb bytes.Buffer
		err1 := dataset.WriteText(&tb, m)
		err2 := dataset.WriteBinary(&bb, m)
		if err1 != nil || err2 != nil {
			// lint:invariant bytes.Buffer writes cannot fail; an error here means the writers themselves are broken.
			panic(fmt.Sprint("kernelbench: rendering ingest fixtures: ", err1, err2))
		}
		ingestText, ingestBin = tb.Bytes(), bb.Bytes()
		var cb bytes.Buffer
		cb.WriteString("userId,movieId,rating,timestamp\n")
		for i, e := range m.Entries {
			fmt.Fprintf(&cb, "%d,%d,%g,%d\n", e.U+1, e.I+1, e.V, i)
		}
		ingestCSV = cb.Bytes()
	})
}

// ReportIngest attaches the throughput metrics shared by every ingest
// benchmark: input MB/s and parsed entries/s.
func ReportIngest(b *testing.B, inputBytes, entries int) {
	sec := b.Elapsed().Seconds()
	if sec <= 0 {
		return
	}
	n := float64(b.N)
	b.ReportMetric(float64(inputBytes)*n/sec/1e6, "MB/s")
	b.ReportMetric(float64(entries)*n/sec, "entries/s")
}

func benchReadText(b *testing.B, workers int) {
	ingestInit()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.ReadTextWorkers(bytes.NewReader(ingestText), workers); err != nil {
			b.Fatal(err)
		}
	}
	ReportIngest(b, len(ingestText), NNZ)
}

// IngestReadText benchmarks the chunked parallel text parser.
func IngestReadText(b *testing.B) { benchReadText(b, IngestWorkers) }

// IngestReadTextSerial benchmarks the bufio.Scanner reference parser.
func IngestReadTextSerial(b *testing.B) { benchReadText(b, 1) }

func benchReadCSV(b *testing.B, workers int) {
	ingestInit()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dataset.ReadMovieLensCSVWorkers(bytes.NewReader(ingestCSV), workers); err != nil {
			b.Fatal(err)
		}
	}
	ReportIngest(b, len(ingestCSV), NNZ)
}

// IngestReadMovieLensCSV benchmarks the two-phase parallel CSV loader.
func IngestReadMovieLensCSV(b *testing.B) { benchReadCSV(b, IngestWorkers) }

// IngestReadMovieLensCSVSerial benchmarks the serial reference loader.
func IngestReadMovieLensCSVSerial(b *testing.B) { benchReadCSV(b, 1) }

// IngestReadBinary benchmarks the 64 KiB block binary reader.
func IngestReadBinary(b *testing.B) {
	ingestInit()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.ReadBinary(bytes.NewReader(ingestBin)); err != nil {
			b.Fatal(err)
		}
	}
	ReportIngest(b, len(ingestBin), NNZ)
}

// IngestReadBinarySerial benchmarks the per-record reference reader.
func IngestReadBinarySerial(b *testing.B) {
	ingestInit()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.ReadBinarySerial(bytes.NewReader(ingestBin)); err != nil {
			b.Fatal(err)
		}
	}
	ReportIngest(b, len(ingestBin), NNZ)
}

// IngestSortByRow benchmarks the stable counting sort on the unsorted
// benchmark matrix; each op restores the shuffled order first so every
// iteration sorts the same permutation.
func IngestSortByRow(b *testing.B) {
	m := Matrix()
	shuffled := append([]sparse.Rating(nil), m.Entries...)
	entryBytes := NNZ * 12 // Rating is two int32 + one float32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(m.Entries, shuffled)
		m.SortByRow()
	}
	ReportIngest(b, entryBytes, NNZ)
}

// IngestWriteBinary benchmarks the block binary writer.
func IngestWriteBinary(b *testing.B) {
	ingestInit()
	m := Matrix()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dataset.WriteBinary(io.Discard, m); err != nil {
			b.Fatal(err)
		}
	}
	ReportIngest(b, len(ingestBin), NNZ)
}

// IngestSuite lists the ingestion benchmarks in report order. Names match
// the BenchmarkIngest* wrappers in bench_test.go minus the prefix.
func IngestSuite() []Bench {
	return []Bench{
		{"ReadText", IngestReadText},
		{"ReadTextSerial", IngestReadTextSerial},
		{"ReadMovieLensCSV", IngestReadMovieLensCSV},
		{"ReadMovieLensCSVSerial", IngestReadMovieLensCSVSerial},
		{"ReadBinary", IngestReadBinary},
		{"ReadBinarySerial", IngestReadBinarySerial},
		{"SortByRow", IngestSortByRow},
		{"WriteBinary", IngestWriteBinary},
	}
}
