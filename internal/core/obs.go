package core

import (
	"hccmf/internal/obs"
)

// attachSimObs lands the simulated-platform results on the observer: the
// headline gauges (total time, computing power, utilization — the Table 4
// quantities), per-worker phase totals from the trace collector, the
// busy/idle utilization bands derived from the timeline, and the timeline
// itself replayed as ProcSim trace events so a Chrome trace export shows
// the simulated schedule next to real execution.
func attachSimObs(o *obs.Observer, res *Result) {
	if o == nil || res.Sim == nil {
		return
	}
	reg := o.Registry
	reg.Gauge("sim/total_seconds", "simulated wall clock of the whole run").Set(res.Sim.TotalTime)
	reg.Gauge("sim/power_updates_per_sec", "achieved computing power (Eq. 8)").Set(res.Power)
	reg.Gauge("sim/ideal_power_updates_per_sec", "sum of standalone device rates").Set(res.IdealPower)
	reg.Gauge("sim/utilization", "achieved/ideal power ratio (Table 4)").Set(res.Utilization)
	if res.Sim.Trace != nil {
		for _, row := range res.Sim.Trace.Rows() {
			prefix := "sim/worker/" + row.Worker + "/"
			reg.Gauge(prefix+"pull_seconds", "cumulative simulated pull time").Set(row.Pull)
			reg.Gauge(prefix+"compute_seconds", "cumulative simulated compute time").Set(row.Compute)
			reg.Gauge(prefix+"push_seconds", "cumulative simulated push time").Set(row.Push)
			reg.Gauge(prefix+"sync_seconds", "cumulative simulated sync time").Set(row.Sync)
		}
	}
	for _, band := range obs.TimelineBands(res.Sim.Timeline, res.Sim.TotalTime) {
		reg.Gauge("sim/worker/"+band.Worker+"/busy_fraction",
			"fraction of the simulated run the worker was busy").Set(band.Utilization)
	}
	for _, ev := range obs.TimelineEvents(res.Sim.Timeline) {
		o.Tracer.Emit(ev)
	}
}
