package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hccmf/internal/dataset"
	"hccmf/internal/obs"
)

// TestObservedRunEndToEnd drives an instrumented real-training run and
// checks that every layer reported: engine counters, ps phase histograms,
// comm transfer counters, sim gauges, and both exporters produce valid
// documents containing real and simulated events.
func TestObservedRunEndToEnd(t *testing.T) {
	skipRealTrainingUnderRace(t)
	o := obs.NewObserver(1<<12, nil)
	var progressed int
	res, err := Run(RunConfig{
		Spec:             dataset.Netflix,
		Platform:         PaperPlatformOverall(),
		Epochs:           5,
		MaterializeScale: 0.002,
		RealK:            8,
		Seed:             3,
		Obs:              o,
		OnEpoch: func(epoch, total int, rmse, simSeconds float64) {
			if epoch != progressed || total != 5 || rmse <= 0 || simSeconds <= 0 {
				t.Errorf("OnEpoch(%d, %d, %v, %v) out of order or empty", epoch, total, rmse, simSeconds)
			}
			progressed++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if progressed != 5 {
		t.Fatalf("OnEpoch fired %d times, want 5", progressed)
	}

	workers := len(res.Plan.Partition)
	if got := o.Run.Epochs.Value(); got != int64(5*workers) {
		t.Fatalf("engine epochs = %d, want %d (5 epochs × %d workers)", got, 5*workers, workers)
	}
	if o.Run.Updates.Value() == 0 {
		t.Fatal("no updates counted")
	}
	if got := o.Run.BusBytes.Value(); got != res.CommStats.BusBytes {
		t.Fatalf("observed bus bytes %d != CommStats %d", got, res.CommStats.BusBytes)
	}
	if o.Run.Transfers.Value() == 0 || o.Run.TransferErrors.Value() != 0 {
		t.Fatalf("transfers = %d, errors = %d", o.Run.Transfers.Value(), o.Run.TransferErrors.Value())
	}
	if got := o.Run.EpochSeconds.Count(); got != 5 {
		t.Fatalf("cluster epochs observed = %d, want 5", got)
	}
	if got := o.Run.EvalSeconds.Count(); got != 6 { // initial + per-epoch
		t.Fatalf("evals observed = %d, want 6", got)
	}
	for p, h := range o.Run.Phase {
		if h.Count() == 0 {
			t.Fatalf("phase %d histogram empty", p)
		}
	}

	// Sim gauges attached.
	snap := o.Registry.Snapshot()
	names := map[string]bool{}
	for _, m := range snap {
		names[m.Name] = true
	}
	for _, want := range []string{
		"sim/total_seconds", "sim/power_updates_per_sec", "sim/utilization",
	} {
		if !names[want] {
			t.Fatalf("missing gauge %q in snapshot", want)
		}
	}
	var busyBands, phaseTotals int
	for name := range names {
		if strings.HasSuffix(name, "/busy_fraction") {
			busyBands++
		}
		if strings.HasSuffix(name, "/compute_seconds") {
			phaseTotals++
		}
	}
	if busyBands == 0 || phaseTotals == 0 {
		t.Fatalf("per-worker sim gauges missing (bands=%d, phase totals=%d)", busyBands, phaseTotals)
	}

	// Both exporters must emit valid documents with both time domains.
	var metricsBuf bytes.Buffer
	if err := o.WriteJSON(&metricsBuf); err != nil {
		t.Fatal(err)
	}
	var doc obs.Document
	if err := json.Unmarshal(metricsBuf.Bytes(), &doc); err != nil {
		t.Fatalf("metrics export invalid: %v", err)
	}
	if doc.Schema != obs.Schema || len(doc.Metrics) == 0 {
		t.Fatalf("metrics document = %+v", doc)
	}
	events := o.Tracer.Events()
	tracks := obs.Tracks(events)
	var haveReal, haveSim bool
	for _, tr := range tracks {
		if strings.HasPrefix(tr, obs.ProcReal+"/") {
			haveReal = true
		}
		if strings.HasPrefix(tr, obs.ProcSim+"/") {
			haveSim = true
		}
	}
	if !haveReal || !haveSim {
		t.Fatalf("trace missing a time domain: tracks = %v", tracks)
	}
	var traceBuf bytes.Buffer
	if err := obs.WriteChromeTrace(&traceBuf, events); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(traceBuf.Bytes()) {
		t.Fatal("chrome trace export is not valid JSON")
	}
}

// TestUnobservedRunUnchanged pins the nil-observer path: no Obs, no
// OnEpoch, same results as before the instrumentation existed.
func TestUnobservedRunUnchanged(t *testing.T) {
	skipRealTrainingUnderRace(t)
	run := func(o *obs.Observer) *Result {
		res, err := Run(RunConfig{
			Spec:             dataset.Netflix,
			Platform:         PaperPlatformOverall(),
			Epochs:           5,
			MaterializeScale: 0.002,
			RealK:            8,
			Seed:             3,
			Obs:              o,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	observed := run(obs.NewObserver(256, nil))
	if plain.FinalRMSE != observed.FinalRMSE {
		t.Fatalf("observation changed the result: %v vs %v", plain.FinalRMSE, observed.FinalRMSE)
	}
	if plain.CommStats != observed.CommStats {
		t.Fatalf("observation changed comm accounting: %+v vs %+v", plain.CommStats, observed.CommStats)
	}
}
