// Package core is HCC-MF itself: the heterogeneous multi-CPU/GPU
// collaborative computing framework for SGD-based matrix factorization.
// It composes the substrates — device/bus models, the time-cost model,
// the DP0/DP1/DP2 partition strategies, the COMM communication layer, the
// parameter-server runtime and the discrete-event platform simulator —
// behind a single Run entry point that plans a training job the way the
// paper's DataManager does and executes it on both the simulated platform
// (for timing) and the real parameter server (for convergence).
package core

import (
	"errors"
	"fmt"

	"hccmf/internal/bus"
	"hccmf/internal/device"
)

// WorkerSpec binds a processor to the channel that connects it to the
// parameter server.
type WorkerSpec struct {
	Device *device.Device
	Bus    bus.Type
	// TimeShared marks the special worker that time-shares the server's
	// own CPU (created when asynchronous computing-transmission is off —
	// Section 3.5).
	TimeShared bool
}

// Name reports the worker's display name.
func (w WorkerSpec) Name() string {
	if w.TimeShared {
		return w.Device.Name + "*"
	}
	return w.Device.Name
}

// Platform is one multi-CPU/GPU machine: the CPU that acts as parameter
// server plus the worker processors and their interconnects.
type Platform struct {
	Server  *device.Device
	Workers []WorkerSpec
}

// Validate checks platform invariants.
func (p Platform) Validate() error {
	if p.Server == nil {
		return errors.New("core: platform has no server CPU")
	}
	if len(p.Workers) == 0 {
		return errors.New("core: platform has no workers")
	}
	for i, w := range p.Workers {
		if w.Device == nil {
			return fmt.Errorf("core: worker %d has no device", i)
		}
		if w.TimeShared && w.Device.Kind != device.CPU {
			return fmt.Errorf("core: worker %d time-shares the server but is a %v", i, w.Device.Kind)
		}
	}
	return nil
}

// Rates reports each worker's standalone update rate for the dataset.
func (p Platform) Rates(dataset string) []float64 {
	out := make([]float64, len(p.Workers))
	for i, w := range p.Workers {
		out[i] = w.Device.UpdateRate(dataset)
	}
	return out
}

// IsCPU reports, per worker, whether it is a CPU (Algorithm 1 groups
// workers this way).
func (p Platform) IsCPU() []bool {
	out := make([]bool, len(p.Workers))
	for i, w := range p.Workers {
		out[i] = w.Device.Kind == device.CPU
	}
	return out
}

// PaperPlatformOverall reproduces the paper's overall-performance
// configuration (Section 4.1): server on CPU_0, with workers
// 6242-24T (CPU_1 over UPI), 6242-16T (time-sharing CPU_0),
// RTX 2080 and RTX 2080 Super on their own PCIe x16 slots.
func PaperPlatformOverall() Platform {
	return Platform{
		Server: device.Xeon6242(16),
		Workers: []WorkerSpec{
			{Device: device.RTX2080Super(), Bus: bus.PCIe3x16},
			{Device: device.Xeon6242(24), Bus: bus.UPI},
			{Device: device.RTX2080(), Bus: bus.PCIe3x16},
			{Device: device.Xeon6242(16), Bus: bus.Local, TimeShared: true},
		},
	}
}

// PaperPlatformHetero is the configuration of the partition and
// communication experiments: CPU_0 weakened to 10 threads ("6242l") to
// increase heterogeneity. Worker order matches the stacking order of
// Figure 9: 2080S, 6242, 2080, 6242l.
func PaperPlatformHetero() Platform {
	return Platform{
		Server: device.Xeon6242(10),
		Workers: []WorkerSpec{
			{Device: device.RTX2080Super(), Bus: bus.PCIe3x16},
			{Device: device.Xeon6242(24), Bus: bus.UPI},
			{Device: device.RTX2080(), Bus: bus.PCIe3x16},
			{Device: device.Xeon6242(10), Bus: bus.Local, TimeShared: true},
		},
	}
}

// FirstWorkers returns a copy of the platform restricted to its first n
// workers — the paper's "3 workers" runs drop the time-shared CPU, and
// Figure 9 adds workers one by one in stacking order.
func (p Platform) FirstWorkers(n int) Platform {
	if n < 1 {
		n = 1
	}
	if n > len(p.Workers) {
		n = len(p.Workers)
	}
	out := Platform{Server: p.Server, Workers: make([]WorkerSpec, n)}
	copy(out.Workers, p.Workers[:n])
	return out
}

// SinglePlatform wraps one device as the only worker (used for the
// Figure 3 standalone baselines): a GPU still talks over PCIe, a CPU is
// local.
func SinglePlatform(d *device.Device) Platform {
	b := bus.Local
	if d.Kind == device.GPU {
		b = bus.PCIe3x16
	}
	return Platform{
		Server:  device.Xeon6242(16),
		Workers: []WorkerSpec{{Device: d, Bus: b}},
	}
}
