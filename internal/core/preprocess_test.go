package core

import (
	"strings"
	"testing"

	"hccmf/internal/dataset"
)

func TestEstimatePreprocessComposition(t *testing.T) {
	plat := PaperPlatformHetero()
	plan, err := PlanRun(plat, dataset.Netflix, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimatePreprocess(plat, dataset.Netflix, plan)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"shuffle": est.Shuffle, "sort": est.Sort,
		"partition": est.Partition, "distribute": est.Distribute,
	} {
		if v <= 0 {
			t.Fatalf("%s stage = %v", name, v)
		}
	}
	// Stage ratios follow the pass counts: sort = 2×shuffle = 4×partition.
	if est.Sort <= est.Shuffle || est.Shuffle <= est.Partition {
		t.Fatalf("pass ordering broken: %v", est)
	}
	if est.Total() <= est.Sort {
		t.Fatal("total must exceed any stage")
	}
	if s := est.String(); !strings.Contains(s, "total=") {
		t.Fatalf("String = %q", s)
	}
}

func TestEstimatePreprocessOncePerJobIsCheap(t *testing.T) {
	// The paper's framing: preprocessing is once per job and should cost
	// only a few epochs' worth of time on Netflix.
	plat := PaperPlatformHetero()
	plan, err := PlanRun(plat, dataset.Netflix, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimatePreprocess(plat, dataset.Netflix, plan)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SimulateRun(plat, dataset.Netflix, plan, 20)
	if err != nil {
		t.Fatal(err)
	}
	if est.Total() > sim.TotalTime {
		t.Fatalf("preprocessing %v exceeds a whole 20-epoch run %v", est.Total(), sim.TotalTime)
	}
}

func TestEstimatePreprocessUsesEffectivePlatform(t *testing.T) {
	// Async plans drop the time-shared worker; the estimate must follow
	// the plan's platform, not the caller's.
	plat := PaperPlatformHetero()
	plan, err := PlanRun(plat, dataset.YahooR1, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Platform.Workers) != 3 {
		t.Fatal("expected async plan with 3 workers")
	}
	if _, err := EstimatePreprocess(plat, dataset.YahooR1, plan); err != nil {
		t.Fatalf("estimate rejected effective platform: %v", err)
	}
}

func TestEstimatePreprocessValidation(t *testing.T) {
	plat := PaperPlatformHetero()
	plan, err := PlanRun(plat, dataset.Netflix, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bad := plan
	bad.Partition = []float64{1}
	bad.Platform = Platform{}
	if _, err := EstimatePreprocess(plat, dataset.Netflix, bad); err == nil {
		t.Fatal("mismatched partition accepted")
	}
	if _, err := EstimatePreprocess(Platform{}, dataset.Netflix, Plan{}); err == nil {
		t.Fatal("invalid platform accepted")
	}
}
