package core

import (
	"fmt"

	"hccmf/internal/comm"
	"hccmf/internal/costmodel"
	"hccmf/internal/dataset"
	"hccmf/internal/partition"
	"hccmf/internal/sparse"
)

// Plan is the DataManager's decision for one training job: grid
// orientation, communication strategy, partition and the cost-model
// estimate that justified them.
type Plan struct {
	// Platform is the *effective* platform: when Strategy 3 (async
	// streams) is active the server CPU stops time-sharing as a worker
	// (Section 3.5), so the time-shared worker is dropped here.
	Platform Platform
	// Grid is the chosen grid orientation.
	Grid sparse.GridKind
	// Transposed reports whether the problem was transposed so that the
	// grid dimension is the longer one (n > m input).
	Transposed bool
	// M, N are the effective (possibly transposed) dimensions.
	M, N int
	// K is the latent dimension.
	K int
	// Strategy is the chosen communication configuration.
	Strategy comm.Strategy
	// Partition holds each worker's data share (sums to 1).
	Partition []float64
	// PartitionStrategy records which DP produced the partition.
	PartitionStrategy partition.Strategy
	// ExposedSyncs is the t of Eq. 3 under this plan.
	ExposedSyncs int
	// TransportFactor inflates simulated transfer times to model a slower
	// transport implementation (1 = COMM shared memory; the COMM-P
	// message baseline calibrates to ~6.6 from Table 5).
	TransportFactor float64
	// Estimate is the cost model's view of one epoch under the plan.
	Estimate costmodel.Estimate
}

// PlanOptions tunes planning.
type PlanOptions struct {
	// K is the latent dimension (default 128, cuMF_SGD's configuration).
	K int
	// Lambda is the sync-hiding threshold (default costmodel.DefaultLambda).
	Lambda float64
	// Streams is the async pipeline depth Strategy 3 may use (default 4).
	Streams int
	// ForceStrategy, when non-nil, bypasses strategy selection (the
	// communication experiments sweep it explicitly).
	ForceStrategy *comm.Strategy
	// ForcePartition, when non-zero, stops partition refinement at the
	// given strategy (DP0/DP1/DP2 comparisons in Figure 8).
	ForcePartition *partition.Strategy
	// ForceShares, when non-nil, bypasses partitioning entirely with the
	// given shares (the "unbalanced data" misconfiguration of Figure 3).
	ForceShares []float64
	// TransportFactor models the transport implementation's slowdown
	// relative to COMM (0 or 1 = COMM; Table 5's COMM-P is ~6.6).
	TransportFactor float64
}

func (o *PlanOptions) defaults() {
	if o.K <= 0 {
		o.K = 128
	}
	if o.Lambda <= 0 {
		o.Lambda = costmodel.DefaultLambda
	}
	if o.Streams <= 0 {
		o.Streams = 4
	}
}

// PlanRun makes every decision the paper's DataManager makes before
// training starts: grid orientation (Section 3.3), communication strategy
// (Section 3.4), and the data partition — DP0, refined to DP1 via
// Algorithm 1 against the calibrated load-dependent device model, then
// restaggered to DP2 when the cost model says synchronisation cannot be
// ignored (Eq. 5).
func PlanRun(plat Platform, spec dataset.Spec, opts PlanOptions) (Plan, error) {
	if err := plat.Validate(); err != nil {
		return Plan{}, err
	}
	opts.defaults()

	plan := Plan{K: opts.K, M: spec.M, N: spec.N, Grid: sparse.PreferredGrid(spec.M, spec.N)}
	if plan.Grid == sparse.ColGrid {
		// Work on the transpose so the rest of the pipeline always sees a
		// row grid with m ≥ n.
		plan.Transposed = true
		plan.M, plan.N = spec.N, spec.M
	}

	// Communication strategy.
	if opts.ForceStrategy != nil {
		plan.Strategy = *opts.ForceStrategy
	} else {
		plan.Strategy = comm.Choose(opts.K, plan.M, plan.N, spec.NNZ, opts.Streams)
	}

	// With async computing-transmission the server synchronises
	// mid-stream, so its CPU can no longer time-share as a worker
	// (Section 3.5): drop time-shared workers from the effective platform.
	plan.Platform = plat
	if plan.Strategy.Streams > 1 {
		kept := Platform{Server: plat.Server}
		for _, w := range plat.Workers {
			if !w.TimeShared {
				kept.Workers = append(kept.Workers, w)
			}
		}
		if len(kept.Workers) > 0 {
			plan.Platform = kept
		}
	}
	plat = plan.Platform

	plan.TransportFactor = opts.TransportFactor
	if plan.TransportFactor < 1 {
		plan.TransportFactor = 1
	}
	if opts.ForceShares != nil {
		if len(opts.ForceShares) != len(plat.Workers) {
			return Plan{}, fmt.Errorf("core: %d forced shares for %d workers",
				len(opts.ForceShares), len(plat.Workers))
		}
		plan.Partition = append([]float64(nil), opts.ForceShares...)
		plan.PartitionStrategy = partition.DP0Strategy
		plan.ExposedSyncs = len(plat.Workers)
		prob := costmodel.Problem{M: plan.M, N: plan.N, NNZ: spec.NNZ, K: opts.K}
		est, err := costmodel.EpochTime(prob, costServer(plat),
			plan.costWorkers(plat, spec), plan.Partition, plan.ExposedSyncs, opts.Lambda)
		if err != nil {
			return Plan{}, err
		}
		plan.Estimate = est
		return plan, nil
	}

	// Partition: DP0 from standalone rates.
	rates := plat.Rates(spec.Name)
	x0, err := partition.DP0(rates)
	if err != nil {
		return Plan{}, err
	}
	plan.Partition = x0
	plan.PartitionStrategy = partition.DP0Strategy

	// DP1 balances on the *total* per-worker time it can observe — compute
	// plus the transfer cost the worker cannot hide (workers without copy
	// engines expose their full pull+push; async workers expose
	// 1/streams of it). Without the comm term, a copy-engine-less CPU
	// sharing a comm-heavy job becomes the straggler DP0 cannot see.
	measure := plan.analyticMeasure(plat, spec, true)
	computeOnly := plan.analyticMeasure(plat, spec, false)
	stopAt := partition.DP2Strategy
	if opts.ForcePartition != nil {
		stopAt = *opts.ForcePartition
	}

	if stopAt >= partition.DP1Strategy {
		x1, _, err := partition.DP1(x0, measure(x0), plat.IsCPU(), measure, partition.DP1Options{})
		if err != nil {
			return Plan{}, err
		}
		plan.Partition = x1
		plan.PartitionStrategy = partition.DP1Strategy
	}

	// Cost-model check: does synchronisation matter?
	prob := costmodel.Problem{M: plan.M, N: plan.N, NNZ: spec.NNZ, K: opts.K}
	workers := plan.costWorkers(plat, spec)
	plan.ExposedSyncs = len(workers)
	est, err := costmodel.EpochTime(prob, costServer(plat),
		workers, plan.Partition, plan.ExposedSyncs, opts.Lambda)
	if err != nil {
		return Plan{}, err
	}
	plan.Estimate = est

	// DP2 staggering only helps the synchronous mode, where every worker's
	// sync queues behind the slowest finisher. With async streams
	// (Strategy 3) synchronisation already interleaves with other streams'
	// compute mid-epoch (Figure 6), so the partition stays balanced and
	// only the trailing sync is exposed.
	if plan.Strategy.Streams > 1 {
		plan.ExposedSyncs = 1
		est, err = costmodel.EpochTime(prob, costServer(plat),
			workers, plan.Partition, plan.ExposedSyncs, opts.Lambda)
		if err != nil {
			return Plan{}, err
		}
		plan.Estimate = est
		return plan, nil
	}

	if stopAt >= partition.DP2Strategy && !est.SyncHidden {
		syncOne := est.SyncTotal / float64(len(workers))
		// DP2's linear rescaling assumes time ∝ share, which holds for the
		// compute term only.
		x2, err := partition.DP2(plan.Partition, computeOnly(plan.Partition), syncOne)
		if err != nil {
			return Plan{}, err
		}
		plan.Partition = x2
		plan.PartitionStrategy = partition.DP2Strategy
		plan.ExposedSyncs = 1
		est, err = costmodel.EpochTime(prob, costServer(plat),
			workers, plan.Partition, plan.ExposedSyncs, opts.Lambda)
		if err != nil {
			return Plan{}, err
		}
		plan.Estimate = est
	}
	return plan, nil
}

// costWorkers converts the platform into the cost model's worker profiles
// under the plan's strategy. Per-direction payload is the steady-state
// (mid-training) pull volume; owned rows are approximated by the share.
func (p Plan) costWorkers(plat Platform, spec dataset.Spec) []costmodel.Worker {
	out := make([]costmodel.Worker, len(plat.Workers))
	bytesPer := p.Strategy.Encoding.BytesPerParam()
	for i, w := range plat.Workers {
		payload := float64(p.Strategy.PullParams(p.K, p.M, p.N, 1, 2) * int64(bytesPer))
		out[i] = costmodel.Worker{
			Name:      w.Name(),
			Rate:      w.Device.UpdateRate(spec.Name),
			BusBW:     w.Bus.Bandwidth(),
			CommBytes: payload,
			Streams:   p.Strategy.EffectiveStreams(w.Device.HasCopyEngine),
		}
	}
	return out
}

// analyticMeasure builds DP1's feedback function from the calibrated
// load-dependent device model: compute time = x·nnz / EffectiveRate(x),
// plus — when includeComm is set — the per-epoch transfer time the worker
// cannot hide under the plan's strategy.
func (p Plan) analyticMeasure(plat Platform, spec dataset.Spec, includeComm bool) partition.MeasureFunc {
	bytesPer := p.Strategy.Encoding.BytesPerParam()
	payload := float64(p.Strategy.PullParams(p.K, p.M, p.N, 1, 2) * int64(bytesPer))
	return func(x []float64) []float64 {
		t := make([]float64, len(x))
		for i, w := range plat.Workers {
			t[i] = x[i] * float64(spec.NNZ) / w.Device.EffectiveRate(spec.Name, x[i])
			if includeComm {
				streams := p.Strategy.EffectiveStreams(w.Device.HasCopyEngine)
				t[i] += 2 * payload / w.Bus.Bandwidth() / float64(streams)
				if streams == 1 && p.Strategy.Streams > 1 {
					// In an async-mode run a synchronous worker (no copy
					// engine) also exposes its end-of-epoch sync while the
					// async workers hide theirs mid-stream; charging it
					// here makes DP1 shrink the worker until its sync
					// overlaps the others' remaining compute.
					t[i] += 3 * payload / plat.Server.MemBandwidth
				}
			}
		}
		return t
	}
}

// String summarises the plan.
func (p Plan) String() string {
	return fmt.Sprintf("grid=%v strategy=%v partition=%v(%s) syncs=%d est=%.4fs",
		p.Grid, p.Strategy, p.Partition, p.PartitionStrategy, p.ExposedSyncs, p.Estimate.Total)
}
