package core

import (
	"fmt"

	"hccmf/internal/bus"
	"hccmf/internal/costmodel"
	"hccmf/internal/dataset"
	"hccmf/internal/simengine"
	"hccmf/internal/trace"
)

// SimResult is the simulated-platform view of a training run.
type SimResult struct {
	// TotalTime is the simulated wall clock of the whole run in seconds.
	TotalTime float64
	// EpochTimes records each epoch's end-to-end simulated duration.
	EpochTimes []float64
	// Trace holds cumulative per-worker pull/compute/push/sync times.
	Trace *trace.Collector
	// Timeline records every phase span — the Figure 5 timing-sequence
	// data, renderable with Timeline.Gantt.
	Timeline *trace.Timeline
}

// SimulateRun executes the planned training job on the simulated
// multi-CPU/GPU platform: every worker is a simengine process (or several,
// one per async stream) that pulls over its own channel, computes at its
// calibrated rate, pushes, and has its push folded by the server's
// serialised sync thread. Epochs are bulk-synchronous. The run produces
// the timing data behind Figures 3, 7(d–f), 8, 9 and Tables 4–6.
func SimulateRun(plat Platform, spec dataset.Spec, plan Plan, epochs int) (*SimResult, error) {
	if len(plan.Platform.Workers) > 0 {
		plat = plan.Platform // the planner may have dropped time-shared workers
	}
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	if epochs <= 0 {
		return nil, fmt.Errorf("core: epochs = %d", epochs)
	}
	if len(plan.Partition) != len(plat.Workers) {
		return nil, fmt.Errorf("core: plan has %d shares for %d workers",
			len(plan.Partition), len(plat.Workers))
	}

	sim := simengine.New()
	collector := trace.NewCollector()
	timeline := trace.NewTimeline()
	syncRes := sim.NewResource(1)

	// Total parties at the epoch barrier: every stream of every worker.
	totalStreams := 0
	streamsOf := make([]int, len(plat.Workers))
	for i, w := range plat.Workers {
		s := plan.Strategy.EffectiveStreams(w.Device.HasCopyEngine)
		streamsOf[i] = s
		totalStreams += s
	}
	barrier := sim.NewBarrier(totalStreams)
	epochEnds := make([]float64, 0, epochs)

	bytesPer := int64(plan.Strategy.Encoding.BytesPerParam())
	serverBW := plat.Server.MemBandwidth
	transport := plan.TransportFactor
	if transport < 1 {
		transport = 1
	}

	// Collaboration efficiency: every additional worker adds the framework
	// costs the paper's Figure 9 exposes — epoch barriers, task dispatch,
	// and the shuffled-access cache penalty of a shared global model. A
	// single-worker HCC run matches its standalone baseline (the paper's
	// Table 6 shows identical totals), and the penalty saturates at the
	// calibrated 7% for the full 4-worker platform.
	efficiency := efficiencyFor(len(plat.Workers))

	for wi, w := range plat.Workers {
		wi, w := wi, w
		share := plan.Partition[wi]
		streams := streamsOf[wi]
		name := w.Name()
		channel := bus.NewChannel(sim, name+"/"+w.Bus.String(), w.Bus)
		// Compute is serialised within a worker (one GPU, one CPU worker
		// pool); only transfers overlap via the copy engine. The copy
		// engine itself is also a serial device: concurrent streams queue
		// their DMAs, which is what lets the first chunk arrive after
		// payload/streams instead of the whole payload time.
		computeRes := sim.NewResource(1)
		copyRes := sim.NewResource(1)

		computeTotal := share * float64(spec.NNZ) /
			(w.Device.EffectiveRate(spec.Name, clampShare(share)) * efficiency)
		ownedRows := int(share*float64(plan.M) + 0.5)

		for sj := 0; sj < streams; sj++ {
			sj := sj
			recordEpochEnd := wi == 0 && sj == 0
			sim.Go(fmt.Sprintf("%s.s%d", name, sj), func(p *simengine.Proc) {
				for e := 0; e < epochs; e++ {
					pullBytes := plan.Strategy.PullParams(plan.K, plan.M, plan.N, e, epochs) * bytesPer
					pushBytes := plan.Strategy.PushParams(plan.K, plan.M, plan.N, ownedRows, e, epochs) * bytesPer
					// A slower transport (COMM-P's extra copies and
					// kernel crossings) shows up as proportionally more
					// time on the channel.
					chunkPull := float64(pullBytes) * transport / float64(streams)
					chunkPush := float64(pushBytes) * transport / float64(streams)
					chunkCompute := computeTotal / float64(streams)

					t0 := sim.Now()
					copyRes.Acquire(p)
					channel.Link.Transfer(p, chunkPull)
					copyRes.Release()
					collector.Add(name, trace.Pull, sim.Now()-t0)
					timeline.Add(name, trace.Pull, t0, sim.Now())

					computeRes.Acquire(p)
					t0 = sim.Now()
					p.Delay(chunkCompute)
					collector.Add(name, trace.Compute, sim.Now()-t0)
					timeline.Add(name, trace.Compute, t0, sim.Now())
					computeRes.Release()

					t0 = sim.Now()
					copyRes.Acquire(p)
					channel.Link.Transfer(p, chunkPush)
					copyRes.Release()
					collector.Add(name, trace.Push, sim.Now()-t0)
					timeline.Add(name, trace.Push, t0, sim.Now())

					// Server sync: serialised multiply-add over the pushed
					// payload, 3 memory operations per parameter (Eq. 3).
					syncRes.Acquire(p)
					t0 = sim.Now()
					p.Delay(3 * chunkPush / serverBW)
					collector.Add(name, trace.Sync, sim.Now()-t0)
					timeline.Add(name, trace.Sync, t0, sim.Now())
					syncRes.Release()

					barrier.Arrive(p)
					if recordEpochEnd {
						epochEnds = append(epochEnds, sim.Now())
					}
				}
			})
		}
	}
	sim.Run()

	res := &SimResult{
		TotalTime:  sim.Now(),
		EpochTimes: make([]float64, len(epochEnds)),
		Trace:      collector,
		Timeline:   timeline,
	}
	prev := 0.0
	for i, end := range epochEnds {
		res.EpochTimes[i] = end - prev
		prev = end
	}
	return res, nil
}

// collabOverheadShare is the asymptotic per-worker throughput loss in
// collaborative mode; eff(p) = 1 − share·(p−1)/p gives eff(1)=1 (Table 6's
// single-worker equality) and eff(4)=0.93, which lands the Netflix and R2
// utilizations in the paper's 86–88% band (Table 4).
const collabOverheadShare = 0.0933

// efficiencyFor reports the collaborative throughput retention for a
// platform of p workers.
func efficiencyFor(p int) float64 {
	if p <= 1 {
		return 1
	}
	return 1 - collabOverheadShare*float64(p-1)/float64(p)
}

func clampShare(x float64) float64 {
	if x <= 0 {
		return 1e-9
	}
	if x > 1 {
		return 1
	}
	return x
}

// SimulateStandalone reports the simulated time for a single device to
// train the whole dataset alone (no communication, no sync) — the
// baselines of Figure 3 and the "computing power" denominators of
// Table 4 / Figure 9.
func SimulateStandalone(d deviceRater, spec dataset.Spec, epochs int) float64 {
	return float64(spec.NNZ) * float64(epochs) / d.UpdateRate(spec.Name)
}

// deviceRater is the slice of device.Device the standalone estimate needs.
type deviceRater interface {
	UpdateRate(dataset string) float64
}

// costServer builds the cost model's server profile for the platform.
func costServer(plat Platform) costmodel.Server {
	return costmodel.Server{MemBW: plat.Server.MemBandwidth}
}
