package core

import (
	"math"
	"testing"

	"hccmf/internal/comm"
	"hccmf/internal/dataset"
	"hccmf/internal/device"
	"hccmf/internal/partition"
	"hccmf/internal/trace"
)

func simulate(t *testing.T, plat Platform, spec dataset.Spec, opts PlanOptions, epochs int) (*SimResult, Plan) {
	t.Helper()
	plan, err := PlanRun(plat, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SimulateRun(plat, spec, plan, epochs)
	if err != nil {
		t.Fatal(err)
	}
	return sim, plan
}

func TestSimulateDeterministic(t *testing.T) {
	a, _ := simulate(t, PaperPlatformHetero(), dataset.Netflix, PlanOptions{}, 5)
	b, _ := simulate(t, PaperPlatformHetero(), dataset.Netflix, PlanOptions{}, 5)
	if a.TotalTime != b.TotalTime {
		t.Fatalf("nondeterministic simulation: %v vs %v", a.TotalTime, b.TotalTime)
	}
	for i := range a.EpochTimes {
		if a.EpochTimes[i] != b.EpochTimes[i] {
			t.Fatal("epoch times differ between identical runs")
		}
	}
}

func TestSimulateEpochTimesSumToTotal(t *testing.T) {
	sim, _ := simulate(t, PaperPlatformHetero(), dataset.Netflix, PlanOptions{}, 20)
	if len(sim.EpochTimes) != 20 {
		t.Fatalf("epoch times = %d", len(sim.EpochTimes))
	}
	var sum float64
	for _, e := range sim.EpochTimes {
		if e <= 0 {
			t.Fatalf("non-positive epoch time %v", e)
		}
		sum += e
	}
	if math.Abs(sum-sim.TotalTime) > 1e-9*sim.TotalTime {
		t.Fatalf("epoch times sum %v != total %v", sum, sim.TotalTime)
	}
}

func TestSimulateDP1BeatsDP0(t *testing.T) {
	// Figure 8(a–d): on Netflix and R2 the DP1 partition ends the epoch
	// earlier than DP0.
	for _, spec := range []dataset.Spec{dataset.Netflix, dataset.YahooR2} {
		dp0 := partition.DP0Strategy
		s0, _ := simulate(t, PaperPlatformHetero(), spec, PlanOptions{ForcePartition: &dp0}, 20)
		s1, _ := simulate(t, PaperPlatformHetero(), spec, PlanOptions{}, 20)
		if s1.TotalTime >= s0.TotalTime {
			t.Fatalf("%s: DP1 total %v not better than DP0 %v", spec.Name, s1.TotalTime, s0.TotalTime)
		}
		saving := 1 - s1.TotalTime/s0.TotalTime
		if saving < 0.02 || saving > 0.3 {
			t.Fatalf("%s: DP1 saving %.1f%% outside the paper's ~10%% band", spec.Name, saving*100)
		}
	}
}

func TestSimulateDP2BeatsDP1OnSyncHeavy(t *testing.T) {
	// Figure 8(e–f): with synchronous transfers on R1*, DP2's staggered
	// finish times beat DP1's balanced ones.
	sync := comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 1}
	dp1 := partition.DP1Strategy
	s1, p1 := simulate(t, PaperPlatformHetero(), dataset.YahooR1Star,
		PlanOptions{ForceStrategy: &sync, ForcePartition: &dp1}, 20)
	s2, p2 := simulate(t, PaperPlatformHetero(), dataset.YahooR1Star,
		PlanOptions{ForceStrategy: &sync}, 20)
	if p1.PartitionStrategy != partition.DP1Strategy || p2.PartitionStrategy != partition.DP2Strategy {
		t.Fatalf("strategies = %v, %v", p1.PartitionStrategy, p2.PartitionStrategy)
	}
	if s2.TotalTime >= s1.TotalTime {
		t.Fatalf("DP2 total %v not better than DP1 %v", s2.TotalTime, s1.TotalTime)
	}
}

func TestSimulateMoreWorkersFaster(t *testing.T) {
	// Figure 9: computing power grows as workers are added.
	plat := PaperPlatformHetero()
	prev := math.Inf(1)
	for n := 1; n <= 4; n++ {
		sim, _ := simulate(t, plat.FirstWorkers(n), dataset.Netflix, PlanOptions{}, 20)
		if sim.TotalTime >= prev {
			t.Fatalf("adding worker %d did not help: %v ≥ %v", n, sim.TotalTime, prev)
		}
		prev = sim.TotalTime
	}
}

func TestSimulateSingleWorkerMatchesStandalone(t *testing.T) {
	// Table 6: an HCC run with one worker costs about the same as the
	// standalone baseline (communication is tiny on Netflix shapes).
	d := device.RTX2080Super()
	sim, _ := simulate(t, SinglePlatform(d), dataset.Netflix, PlanOptions{}, 20)
	standalone := SimulateStandalone(d, dataset.Netflix, 20)
	if sim.TotalTime < standalone {
		t.Fatalf("collaborative single worker faster than standalone: %v < %v", sim.TotalTime, standalone)
	}
	if sim.TotalTime > standalone*1.10 {
		t.Fatalf("single-worker overhead too large: %v vs %v", sim.TotalTime, standalone)
	}
}

func TestSimulateTraceConsistent(t *testing.T) {
	sim, plan := simulate(t, PaperPlatformHetero(), dataset.Netflix, PlanOptions{}, 20)
	rows := sim.Trace.Rows()
	if len(rows) != len(plan.Platform.Workers) {
		t.Fatalf("trace rows = %d, workers = %d", len(rows), len(plan.Platform.Workers))
	}
	for _, r := range rows {
		if r.Compute <= 0 {
			t.Fatalf("worker %s has no compute time", r.Worker)
		}
		if r.Pull <= 0 || r.Push <= 0 || r.Sync <= 0 {
			t.Fatalf("worker %s missing phases: %+v", r.Worker, r)
		}
		// Per-worker cumulative total cannot exceed the run duration.
		if r.Total() > sim.TotalTime*1.0001 {
			t.Fatalf("worker %s total %v exceeds run %v", r.Worker, r.Total(), sim.TotalTime)
		}
	}
	// Compute dominates on Netflix (the paper's whole premise).
	if sim.Trace.PhaseTotal(trace.Compute) < 10*sim.Trace.PhaseTotal(trace.Pull) {
		t.Fatal("netflix compute should dwarf communication")
	}
}

func TestSimulateAsyncStreamsReduceExposedComm(t *testing.T) {
	// Strategy 3 on a comm-heavy problem: async streams must shorten the
	// run versus the same plan with synchronous transfers.
	syncStrat := comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 1}
	asyncStrat := comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 4}
	plat := PaperPlatformHetero().FirstWorkers(3) // copy-engine workers only
	s1, _ := simulate(t, plat, dataset.MovieLens20M, PlanOptions{ForceStrategy: &syncStrat}, 20)
	s4, _ := simulate(t, plat, dataset.MovieLens20M, PlanOptions{ForceStrategy: &asyncStrat}, 20)
	if s4.TotalTime >= s1.TotalTime {
		t.Fatalf("async %v not faster than sync %v", s4.TotalTime, s1.TotalTime)
	}
}

func TestSimulateValidation(t *testing.T) {
	plan, err := PlanRun(PaperPlatformHetero(), dataset.Netflix, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateRun(PaperPlatformHetero(), dataset.Netflix, plan, 0); err == nil {
		t.Fatal("zero epochs accepted")
	}
	bad := plan
	bad.Partition = []float64{1}
	bad.Platform = Platform{}
	if _, err := SimulateRun(PaperPlatformHetero(), dataset.Netflix, bad, 5); err == nil {
		t.Fatal("mismatched partition accepted")
	}
}

func TestSimulateStandaloneFormula(t *testing.T) {
	d := device.RTX2080()
	got := SimulateStandalone(d, dataset.Netflix, 20)
	want := float64(dataset.Netflix.NNZ) * 20 / d.UpdateRate("netflix")
	if got != want {
		t.Fatalf("standalone = %v, want %v", got, want)
	}
	// Paper: modified cuMF_SGD trains 20 Netflix epochs in ~2.25s on 2080.
	if got < 1.8 || got > 2.6 {
		t.Fatalf("2080 standalone %vs outside the paper's ~2.2s", got)
	}
}
