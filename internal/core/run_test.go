package core

import (
	"testing"

	"hccmf/internal/dataset"
	"hccmf/internal/device"
	"hccmf/internal/mf"
	"hccmf/internal/raceflag"
)

// skipRealTrainingUnderRace: real runs drive GPU workers through the
// batched Hogwild-style engine, whose lock-free updates are intentional
// (see internal/raceflag).
func skipRealTrainingUnderRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("real training uses intentionally lock-free kernels; skipped under -race")
	}
}

func TestRunSimulationOnly(t *testing.T) {
	res, err := Run(RunConfig{
		Spec:     dataset.Netflix,
		Platform: PaperPlatformOverall(),
		Epochs:   20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve != nil {
		t.Fatal("simulation-only run produced a convergence curve")
	}
	// Table 4 headline: Netflix utilization in the ~86% band.
	if res.Utilization < 0.80 || res.Utilization > 0.95 {
		t.Fatalf("netflix utilization = %v, want paper's ~0.86 band", res.Utilization)
	}
	if res.Power <= 0 || res.IdealPower <= res.Power {
		t.Fatalf("power accounting wrong: %v / %v", res.Power, res.IdealPower)
	}
}

func TestRunWithRealTraining(t *testing.T) {
	skipRealTrainingUnderRace(t)
	res, err := Run(RunConfig{
		Spec:             dataset.Netflix,
		Platform:         PaperPlatformOverall(),
		Epochs:           15,
		MaterializeScale: 0.002,
		RealK:            8,
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve == nil || len(res.Curve.Points) != 16 { // epoch 0 + 15
		t.Fatalf("curve missing or wrong length: %+v", res.Curve)
	}
	first, last := res.Curve.Points[0], res.Curve.Points[len(res.Curve.Points)-1]
	if last.RMSE >= first.RMSE {
		t.Fatalf("real training did not converge: %v → %v", first.RMSE, last.RMSE)
	}
	if res.CommStats.BusBytes <= 0 {
		t.Fatal("no communication accounted")
	}
	// Time axis must be the simulated clock, monotonically increasing.
	for i := 1; i < len(res.Curve.Points); i++ {
		if res.Curve.Points[i].Time <= res.Curve.Points[i-1].Time {
			t.Fatal("curve time axis not increasing")
		}
	}
	if res.FinalRMSE != last.RMSE {
		t.Fatal("FinalRMSE mismatch")
	}
}

func TestRunRealTrainingTransposedDataset(t *testing.T) {
	skipRealTrainingUnderRace(t)
	// A wider-than-tall dataset exercises the transpose path end to end.
	wide := dataset.Spec{
		Name: "wide", M: 300, N: 4000, NNZ: 60000,
		RatingMin: 1, RatingMax: 5, RatingStep: 0.5, Rank: 8,
		NoiseStd: 0.3, ZipfTheta: 0.5,
		Params: dataset.Params{Gamma: 0.01, Lambda1: 0.01, Lambda2: 0.01},
	}
	res, err := Run(RunConfig{
		Spec:             wide,
		Platform:         PaperPlatformOverall().FirstWorkers(2),
		Epochs:           10,
		MaterializeScale: 1,
		RealK:            8,
		Seed:             5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.Transposed {
		t.Fatal("wide dataset not transposed")
	}
	if res.Curve.Final() >= res.Curve.Points[0].RMSE {
		t.Fatal("transposed training did not converge")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{Spec: dataset.Netflix, Platform: PaperPlatformOverall()}); err == nil {
		t.Fatal("zero epochs accepted")
	}
	if _, err := Run(RunConfig{Spec: dataset.Netflix, Platform: Platform{}, Epochs: 5}); err == nil {
		t.Fatal("invalid platform accepted")
	}
}

func TestEngineForMapping(t *testing.T) {
	if _, ok := EngineFor(device.RTX2080()).(mf.Batched); !ok {
		t.Fatal("GPU should map to the batched engine")
	}
	if _, ok := EngineFor(device.Xeon6242(24)).(*mf.FPSGD); !ok {
		t.Fatal("CPU should map to FPSGD")
	}
	fp := EngineFor(device.Xeon6242(24)).(*mf.FPSGD)
	if fp.Threads > 8 {
		t.Fatalf("host thread cap not applied: %d", fp.Threads)
	}
}
