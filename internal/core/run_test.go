package core

import (
	"math"
	"strings"
	"testing"

	"hccmf/internal/comm"
	"hccmf/internal/dataset"
	"hccmf/internal/device"
	"hccmf/internal/mf"
	"hccmf/internal/raceflag"
	"hccmf/internal/sparse"
)

// skipRealTrainingUnderRace: real runs drive GPU workers through the
// batched Hogwild-style engine, whose lock-free updates are intentional
// (see internal/raceflag).
func skipRealTrainingUnderRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("real training uses intentionally lock-free kernels; skipped under -race")
	}
}

func TestRunSimulationOnly(t *testing.T) {
	res, err := Run(RunConfig{
		Spec:     dataset.Netflix,
		Platform: PaperPlatformOverall(),
		Epochs:   20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve != nil {
		t.Fatal("simulation-only run produced a convergence curve")
	}
	// Table 4 headline: Netflix utilization in the ~86% band.
	if res.Utilization < 0.80 || res.Utilization > 0.95 {
		t.Fatalf("netflix utilization = %v, want paper's ~0.86 band", res.Utilization)
	}
	if res.Power <= 0 || res.IdealPower <= res.Power {
		t.Fatalf("power accounting wrong: %v / %v", res.Power, res.IdealPower)
	}
}

func TestRunWithRealTraining(t *testing.T) {
	skipRealTrainingUnderRace(t)
	res, err := Run(RunConfig{
		Spec:             dataset.Netflix,
		Platform:         PaperPlatformOverall(),
		Epochs:           15,
		MaterializeScale: 0.002,
		RealK:            8,
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve == nil || len(res.Curve.Points) != 16 { // epoch 0 + 15
		t.Fatalf("curve missing or wrong length: %+v", res.Curve)
	}
	first, last := res.Curve.Points[0], res.Curve.Points[len(res.Curve.Points)-1]
	if last.RMSE >= first.RMSE {
		t.Fatalf("real training did not converge: %v → %v", first.RMSE, last.RMSE)
	}
	if res.CommStats.BusBytes <= 0 {
		t.Fatal("no communication accounted")
	}
	// Time axis must be the simulated clock, monotonically increasing.
	for i := 1; i < len(res.Curve.Points); i++ {
		if res.Curve.Points[i].Time <= res.Curve.Points[i-1].Time {
			t.Fatal("curve time axis not increasing")
		}
	}
	if res.FinalRMSE != last.RMSE {
		t.Fatal("FinalRMSE mismatch")
	}
}

func TestRunRealTrainingTransposedDataset(t *testing.T) {
	skipRealTrainingUnderRace(t)
	// A wider-than-tall dataset exercises the transpose path end to end.
	wide := dataset.Spec{
		Name: "wide", M: 300, N: 4000, NNZ: 60000,
		RatingMin: 1, RatingMax: 5, RatingStep: 0.5, Rank: 8,
		NoiseStd: 0.3, ZipfTheta: 0.5,
		Params: dataset.Params{Gamma: 0.01, Lambda1: 0.01, Lambda2: 0.01},
	}
	res, err := Run(RunConfig{
		Spec:             wide,
		Platform:         PaperPlatformOverall().FirstWorkers(2),
		Epochs:           10,
		MaterializeScale: 1,
		RealK:            8,
		Seed:             5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.Transposed {
		t.Fatal("wide dataset not transposed")
	}
	if res.Curve.Final() >= res.Curve.Points[0].RMSE {
		t.Fatal("transposed training did not converge")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{Spec: dataset.Netflix, Platform: PaperPlatformOverall()}); err == nil {
		t.Fatal("zero epochs accepted")
	}
	if _, err := Run(RunConfig{Spec: dataset.Netflix, Platform: Platform{}, Epochs: 5}); err == nil {
		t.Fatal("invalid platform accepted")
	}
	// MaterializeScale outside [0, 1] used to be silently ignored (> 1
	// trained full-size; Spec.Scaled would panic on it elsewhere). It must
	// be a descriptive error now.
	for _, scale := range []float64{1.5, 2, -0.1} {
		_, err := Run(RunConfig{
			Spec: dataset.Netflix, Platform: PaperPlatformOverall(),
			Epochs: 5, MaterializeScale: scale,
		})
		if err == nil {
			t.Fatalf("MaterializeScale %v accepted", scale)
		}
		if !strings.Contains(err.Error(), "MaterializeScale") {
			t.Fatalf("MaterializeScale %v: undescriptive error %v", scale, err)
		}
	}
	// Out-of-range fault rates must be a descriptive error at Run, not a
	// panic from the transport wrapper deep inside runReal.
	for _, rate := range []float64{1.5, -0.2} {
		_, err := Run(RunConfig{
			Spec: dataset.Netflix, Platform: PaperPlatformOverall(),
			Epochs: 5, MaterializeScale: 0.002,
			Resilience: Resilience{Fault: comm.FaultSpec{Transient: rate}},
		})
		if err == nil || !strings.Contains(err.Error(), "fault rate") {
			t.Fatalf("fault rate %v: want descriptive error, got %v", rate, err)
		}
	}
}

// A run under seeded fault injection with retries must complete with no
// run-level error, account its retries, and converge like the fault-free
// run.
func TestRunSurvivesInjectedFaults(t *testing.T) {
	skipRealTrainingUnderRace(t)
	run := func(rate float64) *Result {
		res, err := Run(RunConfig{
			Spec:             dataset.Netflix,
			Platform:         PaperPlatformOverall(),
			Epochs:           10,
			MaterializeScale: 0.002,
			RealK:            8,
			Seed:             3,
			Resilience: Resilience{
				Fault:          comm.FaultSpec{Transient: rate, Seed: 77},
				Retry:          comm.RetryPolicy{Attempts: 10},
				EvictOnFailure: true,
			},
		})
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		return res
	}
	base := run(0)
	faulted := run(0.10)
	if faulted.CommStats.Retries == 0 {
		t.Fatal("no retries accounted at 10% fault rate")
	}
	if len(faulted.Evictions) != 0 {
		t.Fatalf("unexpected evictions: %+v", faulted.Evictions)
	}
	if diff := math.Abs(faulted.FinalRMSE-base.FinalRMSE) / base.FinalRMSE; diff > 0.02 {
		t.Fatalf("faulted RMSE %v vs fault-free %v (%.1f%% off)",
			faulted.FinalRMSE, base.FinalRMSE, diff*100)
	}
}

func TestEngineForMapping(t *testing.T) {
	if _, ok := EngineFor(device.RTX2080(), Tuning{}).(*mf.Batched); !ok {
		t.Fatal("GPU should map to the batched engine")
	}
	if _, ok := EngineFor(device.Xeon6242(24), Tuning{}).(*mf.FPSGD); !ok {
		t.Fatal("CPU should map to FPSGD")
	}
	fp := EngineFor(device.Xeon6242(24), Tuning{}).(*mf.FPSGD)
	if fp.Threads > defaultHostCap {
		t.Fatalf("default host thread cap not applied: %d", fp.Threads)
	}
	// An explicit HostCap lifts the default cap (benchmarks run un-capped).
	fp = EngineFor(device.Xeon6242(24), Tuning{HostCap: 16}).(*mf.FPSGD)
	if fp.Threads != 16 {
		t.Fatalf("HostCap 16 not honoured: %d threads", fp.Threads)
	}
	// FastMath tuning reaches both engine kinds.
	if !EngineFor(device.RTX2080(), Tuning{FastMath: true}).(*mf.Batched).FastMath {
		t.Fatal("FastMath not propagated to the batched engine")
	}
	if !EngineFor(device.Xeon6242(24), Tuning{FastMath: true}).(*mf.FPSGD).FastMath {
		t.Fatal("FastMath not propagated to FPSGD")
	}
}

func TestBuildWorkerConfsFastMathSortsShards(t *testing.T) {
	spec := dataset.Spec{
		Name: "fm-sort", M: 400, N: 300, NNZ: 20_000, Rank: 8,
		Params: dataset.Params{Gamma: 0.005, Lambda1: 0.01, Lambda2: 0.01},
	}
	ds, err := dataset.Generate(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	plat := PaperPlatformOverall()
	plan, err := PlanRun(plat, spec, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]sparse.Rating(nil), ds.Train.Entries...)
	confs, err := BuildWorkerConfs(plan.Platform, plan, ds.Train, Tuning{FastMath: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, conf := range confs {
		e := conf.Shard.Entries
		for i := 1; i < len(e); i++ {
			if e[i].U < e[i-1].U || (e[i].U == e[i-1].U && e[i].I < e[i-1].I) {
				t.Fatalf("worker %s: shard not (row, col)-sorted at %d", conf.Name, i)
			}
		}
	}
	// Shards are views over a fresh backing array; the caller's entry order
	// must be untouched.
	for i := range before {
		if ds.Train.Entries[i] != before[i] {
			t.Fatalf("FastMath shard sort mutated the input matrix at %d", i)
		}
	}
}

func TestTuningDefaults(t *testing.T) {
	var z Tuning
	if z.hostCap() != defaultHostCap {
		t.Fatalf("zero Tuning hostCap = %d, want %d", z.hostCap(), defaultHostCap)
	}
	if n := z.evalThreads(); n < 1 || n > defaultHostCap {
		t.Fatalf("zero Tuning evalThreads = %d, want within [1,%d]", n, defaultHostCap)
	}
	if n := (Tuning{EvalThreads: 9}).evalThreads(); n != 9 {
		t.Fatalf("explicit EvalThreads = %d, want 9", n)
	}
}
