package core

import (
	"testing"

	"hccmf/internal/comm"
	"hccmf/internal/dataset"
	"hccmf/internal/trace"
)

// The simulated execution must reproduce the structure of the paper's
// Figure 5 timing sequences.

func TestTimelineSyncsAreSerialised(t *testing.T) {
	// The server has one sync thread: no two sync spans may overlap.
	sync := comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 1}
	sim, _ := simulate(t, PaperPlatformHetero(), dataset.YahooR1Star,
		PlanOptions{ForceStrategy: &sync}, 5)
	var syncs []trace.Span
	for _, s := range sim.Timeline.Spans() {
		if s.Phase == trace.Sync {
			syncs = append(syncs, s)
		}
	}
	if len(syncs) < 10 {
		t.Fatalf("only %d sync spans", len(syncs))
	}
	for i := range syncs {
		for j := i + 1; j < len(syncs); j++ {
			a, b := syncs[i], syncs[j]
			if a.Start < b.End && b.Start < a.End {
				t.Fatalf("sync spans overlap: %+v and %+v", a, b)
			}
		}
	}
}

func TestTimelineDP2HidesSyncUnderCompute(t *testing.T) {
	// Figure 5's right diagram: under DP2, earlier workers' syncs run
	// while the last worker still computes.
	syncStrat := comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 1}
	sim, plan := simulate(t, PaperPlatformHetero(), dataset.YahooR1Star,
		PlanOptions{ForceStrategy: &syncStrat}, 3)
	if plan.PartitionStrategy.String() != "DP2" {
		t.Fatalf("expected DP2 plan, got %v", plan.PartitionStrategy)
	}
	spans := sim.Timeline.Spans()
	hidden := 0
	for _, s := range spans {
		if s.Phase != trace.Sync {
			continue
		}
		for _, c := range spans {
			if c.Phase == trace.Compute && c.Worker != s.Worker &&
				c.Start < s.End && s.Start < c.End {
				hidden++
				break
			}
		}
	}
	if hidden == 0 {
		t.Fatal("no sync span overlapped another worker's compute — DP2 hides nothing")
	}
}

func TestTimelinePhasesOrderedWithinWorker(t *testing.T) {
	// Within a worker and epoch the sequence is pull → compute → push →
	// sync; spans of one worker never overlap each other (synchronous
	// mode).
	sim, plan := simulate(t, PaperPlatformHetero(), dataset.Netflix, PlanOptions{}, 4)
	if plan.Strategy.Streams != 1 {
		t.Fatal("expected synchronous plan for netflix")
	}
	byWorker := map[string][]trace.Span{}
	for _, s := range sim.Timeline.Spans() {
		byWorker[s.Worker] = append(byWorker[s.Worker], s)
	}
	wantCycle := []trace.Phase{trace.Pull, trace.Compute, trace.Push, trace.Sync}
	for w, spans := range byWorker {
		for i := 1; i < len(spans); i++ {
			if spans[i].Start < spans[i-1].End-1e-12 {
				t.Fatalf("worker %s spans overlap: %+v then %+v", w, spans[i-1], spans[i])
			}
		}
		for i, s := range spans {
			if s.Phase != wantCycle[i%4] {
				t.Fatalf("worker %s span %d is %v, want %v", w, i, s.Phase, wantCycle[i%4])
			}
		}
		if len(spans) != 4*4 {
			t.Fatalf("worker %s has %d spans, want 16", w, len(spans))
		}
	}
}

func TestTimelineEndMatchesTotal(t *testing.T) {
	sim, _ := simulate(t, PaperPlatformHetero(), dataset.Netflix, PlanOptions{}, 3)
	if end := sim.Timeline.End(); end > sim.TotalTime+1e-9 || end < sim.TotalTime*0.95 {
		t.Fatalf("timeline end %v vs total %v", end, sim.TotalTime)
	}
}
