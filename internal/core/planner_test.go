package core

import (
	"math"
	"strings"
	"testing"

	"hccmf/internal/comm"
	"hccmf/internal/dataset"
	"hccmf/internal/partition"
	"hccmf/internal/sparse"
)

func planFor(t *testing.T, spec dataset.Spec, opts PlanOptions) Plan {
	t.Helper()
	plan, err := PlanRun(PaperPlatformHetero(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func sumShares(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

func TestPlanNetflixMatchesPaperChoices(t *testing.T) {
	plan := planFor(t, dataset.Netflix, PlanOptions{})
	if plan.Grid != sparse.RowGrid || plan.Transposed {
		t.Fatalf("netflix grid = %v transposed=%v", plan.Grid, plan.Transposed)
	}
	if !plan.Strategy.QOnly {
		t.Fatal("netflix must use Q-only")
	}
	if plan.Strategy.Streams != 1 {
		t.Fatal("netflix must stay synchronous")
	}
	if plan.PartitionStrategy != partition.DP1Strategy {
		t.Fatalf("netflix partition = %v, want DP1 (sync hidden)", plan.PartitionStrategy)
	}
	if !plan.Estimate.SyncHidden {
		t.Fatalf("netflix sync ratio %v should clear λ", plan.Estimate.SyncRatio)
	}
	if math.Abs(sumShares(plan.Partition)-1) > 1e-9 {
		t.Fatalf("shares sum to %v", sumShares(plan.Partition))
	}
}

func TestPlanR2StaysSynchronousDP1(t *testing.T) {
	plan := planFor(t, dataset.YahooR2, PlanOptions{})
	if plan.PartitionStrategy != partition.DP1Strategy || plan.Strategy.Streams != 1 {
		t.Fatalf("r2 plan = %v", plan)
	}
	if len(plan.Platform.Workers) != 4 {
		t.Fatal("r2 must keep the time-shared worker")
	}
}

func TestPlanR1UsesAsyncAndDropsTimeShared(t *testing.T) {
	plan := planFor(t, dataset.YahooR1, PlanOptions{})
	if plan.Strategy.Streams <= 1 {
		t.Fatal("r1 must enable async streams")
	}
	if len(plan.Platform.Workers) != 3 {
		t.Fatalf("async plan kept %d workers, want 3 (time-shared dropped)", len(plan.Platform.Workers))
	}
	if plan.ExposedSyncs != 1 {
		t.Fatalf("async plan exposes %d syncs, want 1", plan.ExposedSyncs)
	}
	if len(plan.Partition) != 3 {
		t.Fatalf("partition has %d shares for 3 workers", len(plan.Partition))
	}
}

func TestPlanSyncHeavySynchronousChoosesDP2(t *testing.T) {
	// Force a synchronous strategy on a sync-heavy problem: the planner
	// must fall through to DP2.
	force := comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 1}
	plan := planFor(t, dataset.YahooR1, PlanOptions{ForceStrategy: &force})
	if plan.PartitionStrategy != partition.DP2Strategy {
		t.Fatalf("sync-heavy synchronous run used %v, want DP2", plan.PartitionStrategy)
	}
	if plan.ExposedSyncs != 1 {
		t.Fatalf("DP2 exposes %d syncs", plan.ExposedSyncs)
	}
	if math.Abs(sumShares(plan.Partition)-1) > 1e-9 {
		t.Fatal("DP2 shares unnormalised")
	}
}

func TestPlanTransposesWideMatrix(t *testing.T) {
	wide := dataset.Spec{
		Name: "wide", M: 1000, N: 50000, NNZ: 2000000,
		RatingMin: 1, RatingMax: 5, RatingStep: 1, Rank: 8, ZipfTheta: 0.5,
		Params: dataset.Params{Gamma: 0.005, Lambda1: 0.01, Lambda2: 0.01},
	}
	plan := planFor(t, wide, PlanOptions{})
	if !plan.Transposed || plan.Grid != sparse.ColGrid {
		t.Fatalf("wide matrix plan: grid=%v transposed=%v", plan.Grid, plan.Transposed)
	}
	if plan.M != 50000 || plan.N != 1000 {
		t.Fatalf("effective dims = %dx%d", plan.M, plan.N)
	}
}

func TestPlanForcePartitionStopsAtDP0(t *testing.T) {
	dp0 := partition.DP0Strategy
	plan := planFor(t, dataset.Netflix, PlanOptions{ForcePartition: &dp0})
	if plan.PartitionStrategy != partition.DP0Strategy {
		t.Fatalf("forced DP0 produced %v", plan.PartitionStrategy)
	}
	// DP0 must be exactly proportional to standalone rates.
	rates := plan.Platform.Rates("netflix")
	var sum float64
	for _, r := range rates {
		sum += r
	}
	for i, x := range plan.Partition {
		if math.Abs(x-rates[i]/sum) > 1e-12 {
			t.Fatalf("DP0 share %d = %v, want %v", i, x, rates[i]/sum)
		}
	}
}

func TestPlanForceStrategyRespected(t *testing.T) {
	force := comm.Strategy{Encoding: comm.FP32, Streams: 1} // naive P&Q
	plan := planFor(t, dataset.Netflix, PlanOptions{ForceStrategy: &force})
	if plan.Strategy.QOnly || plan.Strategy.Encoding != comm.FP32 {
		t.Fatalf("forced strategy ignored: %v", plan.Strategy)
	}
}

func TestPlanDP1BalancesBetterThanDP0(t *testing.T) {
	// The cost-model Estimate uses load-independent calibration rates and
	// cannot see the imbalance DP1 fixes; judge the partitions by the
	// load-dependent analytic measure the planner itself used.
	dp0 := partition.DP0Strategy
	p0 := planFor(t, dataset.Netflix, PlanOptions{ForcePartition: &dp0})
	p1 := planFor(t, dataset.Netflix, PlanOptions{})
	measure := p1.analyticMeasure(p1.Platform, dataset.Netflix, true)
	if maxOf(measure(p1.Partition)) >= maxOf(measure(p0.Partition)) {
		t.Fatalf("DP1 makespan %v not better than DP0 %v",
			maxOf(measure(p1.Partition)), maxOf(measure(p0.Partition)))
	}
}

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func TestPlanString(t *testing.T) {
	plan := planFor(t, dataset.Netflix, PlanOptions{})
	s := plan.String()
	if !strings.Contains(s, "DP1") || !strings.Contains(s, "row-grid") {
		t.Fatalf("String = %q", s)
	}
}

func TestPlanInvalidPlatform(t *testing.T) {
	if _, err := PlanRun(Platform{}, dataset.Netflix, PlanOptions{}); err == nil {
		t.Fatal("invalid platform accepted")
	}
}
