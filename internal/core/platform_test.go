package core

import (
	"testing"

	"hccmf/internal/bus"
	"hccmf/internal/device"
)

func TestPaperPlatformsValid(t *testing.T) {
	for _, p := range []Platform{PaperPlatformOverall(), PaperPlatformHetero()} {
		if err := p.Validate(); err != nil {
			t.Fatalf("paper platform invalid: %v", err)
		}
		if len(p.Workers) != 4 {
			t.Fatalf("paper platform has %d workers", len(p.Workers))
		}
	}
}

func TestPaperPlatformHeteroUsesWeakenedCPU(t *testing.T) {
	p := PaperPlatformHetero()
	if p.Server.Threads != 10 {
		t.Fatalf("hetero server threads = %d, want 10", p.Server.Threads)
	}
	last := p.Workers[len(p.Workers)-1]
	if !last.TimeShared || last.Device.Threads != 10 {
		t.Fatalf("time-shared worker = %+v", last)
	}
	if last.Bus != bus.Local {
		t.Fatal("time-shared worker must use the local bus")
	}
}

func TestWorkerSpecName(t *testing.T) {
	w := WorkerSpec{Device: device.RTX2080()}
	if w.Name() != "2080" {
		t.Fatalf("Name = %q", w.Name())
	}
	ts := WorkerSpec{Device: device.Xeon6242(10), TimeShared: true}
	if ts.Name() != "6242l-10T*" {
		t.Fatalf("time-shared Name = %q", ts.Name())
	}
}

func TestValidateCatchesBadPlatforms(t *testing.T) {
	if err := (Platform{}).Validate(); err == nil {
		t.Fatal("empty platform accepted")
	}
	if err := (Platform{Server: device.Xeon6242(16)}).Validate(); err == nil {
		t.Fatal("worker-less platform accepted")
	}
	p := Platform{Server: device.Xeon6242(16), Workers: []WorkerSpec{{}}}
	if err := p.Validate(); err == nil {
		t.Fatal("nil worker device accepted")
	}
	p = Platform{Server: device.Xeon6242(16), Workers: []WorkerSpec{
		{Device: device.RTX2080(), TimeShared: true},
	}}
	if err := p.Validate(); err == nil {
		t.Fatal("GPU time-sharing the server accepted")
	}
}

func TestFirstWorkers(t *testing.T) {
	p := PaperPlatformHetero()
	p3 := p.FirstWorkers(3)
	if len(p3.Workers) != 3 {
		t.Fatalf("FirstWorkers(3) has %d", len(p3.Workers))
	}
	for _, w := range p3.Workers {
		if w.TimeShared {
			t.Fatal("3-worker platform should drop the time-shared worker")
		}
	}
	if len(p.FirstWorkers(0).Workers) != 1 {
		t.Fatal("FirstWorkers(0) should clamp to 1")
	}
	if len(p.FirstWorkers(99).Workers) != 4 {
		t.Fatal("FirstWorkers beyond length should clamp")
	}
	// Mutating the copy must not touch the original.
	p3.Workers[0] = WorkerSpec{Device: device.TeslaV100(), Bus: bus.PCIe3x16}
	if p.Workers[0].Device.Name == "V100" {
		t.Fatal("FirstWorkers shares backing array")
	}
}

func TestSinglePlatform(t *testing.T) {
	g := SinglePlatform(device.RTX2080())
	if g.Workers[0].Bus != bus.PCIe3x16 {
		t.Fatal("GPU should attach via PCIe")
	}
	c := SinglePlatform(device.Xeon6242(24))
	if c.Workers[0].Bus != bus.Local {
		t.Fatal("CPU should be local")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRatesAndIsCPU(t *testing.T) {
	p := PaperPlatformOverall()
	rates := p.Rates("netflix")
	if len(rates) != 4 || rates[0] != 1052866849 {
		t.Fatalf("Rates = %v", rates)
	}
	isCPU := p.IsCPU()
	want := []bool{false, true, false, true}
	for i := range want {
		if isCPU[i] != want[i] {
			t.Fatalf("IsCPU = %v", isCPU)
		}
	}
}
