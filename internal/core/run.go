package core

import (
	"fmt"
	"runtime"
	"time"

	"hccmf/internal/comm"
	"hccmf/internal/dataset"
	"hccmf/internal/device"
	"hccmf/internal/metrics"
	"hccmf/internal/mf"
	"hccmf/internal/obs"
	"hccmf/internal/ps"
	"hccmf/internal/schedule"
	"hccmf/internal/sparse"
)

// RunConfig configures one end-to-end HCC-MF training run.
type RunConfig struct {
	// Spec is the (full-size) dataset whose shape drives planning and
	// simulated timing.
	Spec dataset.Spec
	// Platform is the machine to run on.
	Platform Platform
	// Epochs is the training length (the paper reports 20 for timing
	// tables and 100 for convergence curves).
	Epochs int
	// Plan tunes the planner.
	Plan PlanOptions
	// MaterializeScale, when > 0, also runs *real* training on a dataset
	// scaled by this factor, producing an RMSE convergence curve whose
	// time axis is the simulated clock. 0 skips real execution (timing
	// studies only need the simulator).
	MaterializeScale float64
	// Data, when non-nil, supplies the training/test split directly
	// (e.g. loaded from a ratings file) instead of generating a scaled
	// synthetic instance; it implies real execution regardless of
	// MaterializeScale. Spec must still describe the data's shape for
	// planning.
	Data *dataset.Dataset
	// RealK overrides the latent dimension of the real training run
	// (default: Plan.K, which can be slow on laptop-scale tests).
	RealK int
	// Transport is the communication implementation for real execution.
	// When nil, one is built from TransportSpec through the comm registry
	// and closed when the run finishes.
	Transport comm.Transport
	// TransportSpec selects the transport by registry kind when Transport
	// is nil: Kind "" or comm.KindShared is shared memory, comm.KindMessage
	// the ps-lite message path, and any registered wire transport (e.g.
	// "tcp" with Addr set) trains against a remote parameter server. The
	// run fills Workers and the factor dims; everything else (Addr,
	// OpTimeout) is the caller's.
	TransportSpec comm.Spec
	// LRSchedule, when non-nil, applies a per-epoch learning-rate schedule
	// to the real training run (e.g. mf.InverseDecay).
	LRSchedule mf.Schedule
	// Schedule configures adaptive epoch-boundary rescheduling of the
	// real training run (internal/schedule): Policy Throughput re-solves
	// the data partition from measured per-worker epoch seconds at every
	// sync barrier and re-shards when the predicted makespan gain clears
	// Hysteresis. The zero value keeps the planner's static split.
	Schedule schedule.Config
	// Seed drives dataset generation and factor initialisation.
	Seed uint64
	// Resilience is the run's fault-tolerance policy: injected faults,
	// retry budget, and eviction. The zero value is a failure-free run with
	// no retries where any transfer error aborts.
	Resilience Resilience
	// Tuning bounds host-side parallelism. The zero value keeps the
	// historical defaults (engine threads and evaluation capped at 4).
	Tuning Tuning
	// Obs, when non-nil, instruments the run (see internal/obs): the real-
	// execution cluster reports phase spans and run metrics through it,
	// transfers are counted via a comm.Observed wrap, engines report epoch
	// throughput, and the simulated results land as gauges plus ProcSim
	// trace events.
	Obs *obs.Observer
	// OnEpoch, when non-nil, is called after every real-execution epoch
	// with the 0-based epoch index, the planned total, the epoch's held-out
	// RMSE, and the cumulative simulated seconds (the curve's time axis).
	// It runs on the training goroutine; keep it fast.
	OnEpoch func(epoch, total int, rmse, simSeconds float64)
}

// Resilience is the fault-tolerance policy of a run, layered outside-in:
// Fault injects failures on the raw link, Retry absorbs them above it, and
// eviction catches whatever the retry budget cannot.
type Resilience struct {
	// Fault, when active, wraps the real-execution transport with seeded
	// fault injection (chaos testing the PS runtime against a lossy link).
	Fault comm.FaultSpec
	// Retry, when enabled (Attempts > 1), wraps the transport with capped
	// exponential backoff; retries are accounted in CommStats.Retries.
	Retry comm.RetryPolicy
	// EvictOnFailure lets the cluster evict a worker whose transfers fail
	// even after retries, reassigning its rows to survivors instead of
	// aborting the run. Evictions are recorded in Result.Evictions.
	EvictOnFailure bool
}

// Tuning bounds the host-side parallelism of real execution. Zero values
// select the defaults that were previously hard-coded.
type Tuning struct {
	// HostCap caps per-engine thread/group counts (default 4) so
	// laptop-scale real runs do not oversubscribe the host. Benchmarks set
	// it to the machine size to run un-capped.
	HostCap int
	// EvalThreads is the evaluation (RMSE) parallelism; default
	// min(GOMAXPROCS, HostCap).
	EvalThreads int
	// FastMath opts every worker engine into the versioned fast-math mode
	// (DESIGN.md §16): reordered-accumulation kernels, SoA mini-batch
	// staging on the batched engine, cache-blocked Q tiles on FPSGD, and
	// column-sorted shard traversal. Training results leave the default
	// bit-exact contract and follow the fast-math goldens instead. Off by
	// default.
	FastMath bool
}

// hostCap resolves the effective engine-thread cap.
func (t Tuning) hostCap() int {
	if t.HostCap > 0 {
		return t.HostCap
	}
	return defaultHostCap
}

// evalThreads resolves the effective evaluation parallelism.
func (t Tuning) evalThreads() int {
	if t.EvalThreads > 0 {
		return t.EvalThreads
	}
	n := runtime.GOMAXPROCS(0)
	if cap := t.hostCap(); n > cap {
		n = cap
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Result is everything a run produces.
type Result struct {
	// Plan is the DataManager's decision record.
	Plan Plan
	// Sim holds simulated timing (total, per-epoch, per-phase trace).
	Sim *SimResult
	// Power is the achieved "computing power" (Eq. 8) on the simulated
	// clock; IdealPower sums the standalone device rates; Utilization is
	// their ratio (Table 4).
	Power, IdealPower, Utilization float64
	// Curve is the real-execution convergence trajectory (nil when
	// MaterializeScale was 0).
	Curve *metrics.Curve
	// FinalRMSE is the last point of Curve (0 without real execution).
	FinalRMSE float64
	// CommStats accounts real-execution transfers (zero without real
	// execution).
	CommStats comm.TransferStats
	// Evictions records workers removed mid-run by fault tolerance
	// (empty on a fault-free run).
	Evictions []ps.Eviction
	// Rebalances records the adaptive scheduler's re-shards (empty on a
	// static run).
	Rebalances []ps.Rebalance
	// Model is the trained factor model (nil without real execution). Its
	// orientation matches TrainedData (transposed when the plan was).
	Model *mf.Factors
	// TrainedData is the materialised dataset the model was trained on
	// (plan orientation), for seen-item exclusion and evaluation.
	TrainedData *dataset.Dataset
}

// Run plans, simulates and (optionally) really trains one job.
func Run(cfg RunConfig) (*Result, error) {
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("core: epochs = %d", cfg.Epochs)
	}
	if cfg.MaterializeScale < 0 || cfg.MaterializeScale > 1 {
		return nil, fmt.Errorf("core: MaterializeScale = %v, want 0 (simulate only) or a shrink factor in (0,1]",
			cfg.MaterializeScale)
	}
	if err := cfg.Resilience.Fault.Validate(); err != nil {
		return nil, err
	}
	plan, err := PlanRun(cfg.Platform, cfg.Spec, cfg.Plan)
	if err != nil {
		return nil, err
	}
	sim, err := SimulateRun(cfg.Platform, cfg.Spec, plan, cfg.Epochs)
	if err != nil {
		return nil, err
	}

	res := &Result{Plan: plan, Sim: sim}
	res.Power = metrics.ComputingPower(cfg.Spec.NNZ, cfg.Epochs, sim.TotalTime)
	res.IdealPower = metrics.IdealPower(cfg.Platform.Rates(cfg.Spec.Name))
	res.Utilization = metrics.Utilization(res.Power, res.IdealPower)
	attachSimObs(cfg.Obs, res)

	if cfg.MaterializeScale > 0 || cfg.Data != nil {
		if err := runReal(cfg, plan, sim, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// runReal executes the plan on the real parameter server with a
// materialised (scaled) dataset and attaches the convergence curve.
func runReal(cfg RunConfig, plan Plan, sim *SimResult, res *Result) error {
	spec := cfg.Spec
	ds := cfg.Data
	if ds == nil {
		if cfg.MaterializeScale < 1 {
			var err error
			spec, err = spec.Scaled(cfg.MaterializeScale)
			if err != nil {
				return err
			}
		}
		var err error
		ds, err = dataset.Generate(spec, cfg.Seed)
		if err != nil {
			return err
		}
	}
	train, test := ds.Train, ds.Test
	if plan.Transposed {
		train = train.Transpose()
		test = test.Transpose()
	}

	k := cfg.RealK
	if k <= 0 {
		k = plan.K
	}
	transport := cfg.Transport
	if transport == nil {
		spec := cfg.TransportSpec
		spec.Workers = len(cfg.Platform.Workers)
		spec.M, spec.N, spec.K = train.Rows, train.Cols, k
		built, err := comm.New(spec)
		if err != nil {
			return err
		}
		transport = built
		// The run owns what it built; a wire transport drops its pooled
		// connections here. In-process transports make this a no-op.
		defer func() { _ = comm.CloseTransport(built) }()
	}
	// The fault-tolerance stack wraps outside-in: faults are injected on
	// the raw link, retries absorb them above, eviction (in ps) catches
	// whatever the retry budget cannot.
	if cfg.Resilience.Fault.Active() {
		faulty, err := comm.NewFaulty(transport, cfg.Resilience.Fault)
		if err != nil {
			return err
		}
		transport = faulty
	}
	if cfg.Resilience.Retry.Enabled() {
		transport = comm.NewRetrying(transport, cfg.Resilience.Retry)
	}
	// The observation wrap goes outside retrying so one observation is one
	// logical transfer, retries already folded into its stats. Counters live
	// here only — ps.account keeps feeding CommStats independently.
	if run := cfg.Obs.RunMetrics(); run != nil {
		var now func() time.Time
		if clock := run.Clock(); clock != nil {
			now = func() time.Time { return time.Unix(0, int64(clock()*1e9)) }
		}
		transport = comm.NewObserved(transport, now, func(op string, st comm.TransferStats, seconds float64, failed bool) {
			run.CountTransfer(obs.TransferSample{
				BusBytes:   st.BusBytes,
				WireBytes:  st.WireBytes,
				Copies:     st.Copies,
				Retries:    st.Retries,
				Frames:     st.Frames,
				Handshakes: st.Handshakes,
				Seconds:    seconds,
				Failed:     failed,
			})
		})
	}

	confs, err := BuildWorkerConfs(plan.Platform, plan, train, cfg.Tuning)
	if err != nil {
		return err
	}
	for _, conf := range confs {
		if m, ok := conf.Engine.(mf.Metered); ok {
			m.SetMetrics(cfg.Obs.RunMetrics().EngineMetrics())
		}
	}
	cluster, err := ps.New(ps.Config{
		M: train.Rows, N: train.Cols, K: k,
		Hyper: mf.HyperParams{
			Gamma:   spec.Params.Gamma,
			Lambda1: spec.Params.Lambda1,
			Lambda2: spec.Params.Lambda2,
		},
		Transport:      transport,
		Strategy:       plan.Strategy,
		MeanRating:     train.MeanRating(),
		Seed:           cfg.Seed + 1,
		LRSchedule:     cfg.LRSchedule,
		Schedule:       cfg.Schedule,
		EvictOnFailure: cfg.Resilience.EvictOnFailure,
		Obs:            cfg.Obs,
	}, confs)
	if err != nil {
		return err
	}

	threads := cfg.Tuning.evalThreads()
	evaluate := func(model *mf.Factors) float64 {
		span := cfg.Obs.Span(obs.ProcReal, "server", "core", "eval")
		rmse := mf.RMSEParallel(model, test.Entries, threads)
		cfg.Obs.RunMetrics().ObserveEval(span.End())
		return rmse
	}
	curve := &metrics.Curve{Label: "HCC-MF/" + spec.Name}
	curve.Append(0, 0, evaluate(cluster.Snapshot()))
	cum := 0.0
	err = cluster.Train(cfg.Epochs, func(e int, model *mf.Factors) {
		if e < len(sim.EpochTimes) {
			cum += sim.EpochTimes[e]
		}
		rmse := evaluate(model)
		curve.Append(e+1, cum, rmse)
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(e, cfg.Epochs, rmse, cum)
		}
	})
	if err != nil {
		return err
	}
	res.Curve = curve
	res.FinalRMSE = curve.Final()
	res.CommStats = cluster.CommStats()
	res.Evictions = cluster.Evictions()
	res.Rebalances = cluster.Rebalances()
	res.Model = cluster.Snapshot()
	res.TrainedData = &dataset.Dataset{Spec: spec, Train: train, Test: test}
	return nil
}

// BuildWorkerConfs cuts the row grid by the plan's shares and binds each
// slice to its worker's execution engine. Shards are capacity-capped views
// over one shared row-major backing array (sparse.RowShards), not per-
// worker copies.
func BuildWorkerConfs(plat Platform, plan Plan, train *sparse.COO, tuning Tuning) ([]ps.WorkerConf, error) {
	slices, shards, err := sparse.RowShards(train, plan.Partition)
	if err != nil {
		return nil, err
	}
	if tuning.FastMath {
		// Prefetch-friendly traversal: order each shard row-major with
		// ascending columns inside a row, so sweeps walk Q forward. Shards
		// share a fresh backing array cut by RowShards, so the in-place sort
		// never touches the caller's entry order.
		for _, sh := range shards {
			sparse.SortRatings(sh.Entries, sh.Rows, sh.Cols)
		}
	}
	confs := make([]ps.WorkerConf, len(slices))
	for i, sl := range slices {
		confs[i] = ps.WorkerConf{
			Name:   plat.Workers[i].Name(),
			Engine: EngineFor(plat.Workers[i].Device, tuning),
			Shard:  shards[i],
			RowLo:  sl.Lo, RowHi: sl.Hi,
			Weight: plan.Partition[i],
		}
	}
	return confs, nil
}

// defaultHostCap is the default engine-thread/evaluation cap (see Tuning).
const defaultHostCap = 4

// EngineFor picks the execution engine matching a device's character:
// CPUs run the FPSGD block-scheduled kernel, GPUs the cuMF_SGD-style
// batched kernel. The tuning's host cap bounds thread/group counts.
func EngineFor(d *device.Device, tuning Tuning) mf.Engine {
	cap := tuning.hostCap()
	switch d.Kind {
	case device.GPU:
		return &mf.Batched{Groups: cap, BatchSize: 1 << 14, FastMath: tuning.FastMath}
	default:
		threads := d.Threads
		if threads > cap {
			threads = cap
		}
		return &mf.FPSGD{Threads: threads, FastMath: tuning.FastMath}
	}
}
