package core

import (
	"fmt"

	"hccmf/internal/dataset"
)

// PreprocessEstimate is the simulated cost of the paper's pre-training
// workflow (Figure 4, steps ① to ③): the server shuffles the rating
// matrix, block-sorts it by row for cache locality, cuts the row grid, and
// distributes every worker's shard and initial feature rows over its
// channel. Preprocessing runs once per job, which is why the paper treats
// it separately from the epoch loop.
type PreprocessEstimate struct {
	// Shuffle is the Fisher-Yates pass over the triplets.
	Shuffle float64
	// Sort is the block sort by row (the cache-hit-rate trick the paper
	// adds to cuMF_SGD's grid problem).
	Sort float64
	// Partition is the grid cut: a counting pass plus the prefix walk.
	Partition float64
	// Distribute is the initial shard + feature copy to the workers,
	// channels in parallel (the slowest worker gates it).
	Distribute float64
}

// Total sums the stages.
func (p PreprocessEstimate) Total() float64 {
	return p.Shuffle + p.Sort + p.Partition + p.Distribute
}

// String renders the stage breakdown.
func (p PreprocessEstimate) String() string {
	return fmt.Sprintf("shuffle=%.4fs sort=%.4fs partition=%.4fs distribute=%.4fs total=%.4fs",
		p.Shuffle, p.Sort, p.Partition, p.Distribute, p.Total())
}

// tripleBytes is the in-memory size of one rating triplet (u, i int32 +
// float32 rating).
const tripleBytes = 12

// EstimatePreprocess models the pre-training stages on the server's memory
// system and the workers' channels. All server-side stages are
// bandwidth-bound passes over the nnz triplets:
//
//   - shuffle: one read + one write pass (Fisher-Yates touches every slot);
//   - sort: a 4-pass radix-style block sort (the paper sorts within
//     blocks, not globally, so comparison log-factors do not apply);
//   - partition: one counting pass plus a negligible prefix walk.
//
// Distribution moves each worker's shard plus its initial P rows and the
// initial Q over its own channel; channels run in parallel (Figure 2), so
// the slowest worker gates the stage.
func EstimatePreprocess(plat Platform, spec dataset.Spec, plan Plan) (PreprocessEstimate, error) {
	if len(plan.Platform.Workers) > 0 {
		plat = plan.Platform
	}
	if err := plat.Validate(); err != nil {
		return PreprocessEstimate{}, err
	}
	if len(plan.Partition) != len(plat.Workers) {
		return PreprocessEstimate{}, fmt.Errorf("core: plan has %d shares for %d workers",
			len(plan.Partition), len(plat.Workers))
	}
	bw := plat.Server.MemBandwidth
	nnzBytes := float64(spec.NNZ) * tripleBytes

	est := PreprocessEstimate{
		Shuffle:   2 * nnzBytes / bw,
		Sort:      4 * nnzBytes / bw,
		Partition: nnzBytes / bw,
	}
	bytesPer := float64(plan.Strategy.Encoding.BytesPerParam())
	for i, w := range plat.Workers {
		share := plan.Partition[i]
		shard := share * nnzBytes
		// Initial features: the worker's P rows plus the full Q.
		features := (share*float64(plan.M) + float64(plan.N)) * float64(plan.K) * bytesPer
		t := (shard + features) / w.Bus.Bandwidth()
		if t > est.Distribute {
			est.Distribute = t
		}
	}
	return est, nil
}
