package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestTimelineAddAndSpans(t *testing.T) {
	tl := NewTimeline()
	tl.Add("b", Compute, 1, 3)
	tl.Add("a", Pull, 0, 1)
	tl.Add("a", Compute, 1, 2)
	spans := tl.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d", len(spans))
	}
	// Ordered by (worker, start).
	if spans[0].Worker != "a" || spans[0].Phase != Pull {
		t.Fatalf("spans[0] = %+v", spans[0])
	}
	if spans[2].Worker != "b" {
		t.Fatalf("spans[2] = %+v", spans[2])
	}
	if spans[0].Duration() != 1 {
		t.Fatalf("duration = %v", spans[0].Duration())
	}
}

func TestTimelineAddValidation(t *testing.T) {
	tl := NewTimeline()
	defer func() {
		if recover() == nil {
			t.Fatal("negative span did not panic")
		}
	}()
	tl.Add("w", Pull, 2, 1)
}

func TestTimelineWindowClips(t *testing.T) {
	tl := NewTimeline()
	tl.Add("w", Compute, 0, 10)
	tl.Add("w", Push, 12, 14)
	win := tl.Window(5, 13)
	if len(win) != 2 {
		t.Fatalf("window = %d spans", len(win))
	}
	if win[0].Start != 5 || win[0].End != 10 {
		t.Fatalf("clipped span = %+v", win[0])
	}
	if win[1].Start != 12 || win[1].End != 13 {
		t.Fatalf("clipped span = %+v", win[1])
	}
	if len(tl.Window(20, 30)) != 0 {
		t.Fatal("out-of-range window not empty")
	}
}

func TestTimelineEnd(t *testing.T) {
	tl := NewTimeline()
	if tl.End() != 0 {
		t.Fatal("empty End != 0")
	}
	tl.Add("w", Pull, 0, 2)
	tl.Add("w", Sync, 5, 7.5)
	if tl.End() != 7.5 {
		t.Fatalf("End = %v", tl.End())
	}
}

func TestGanttRendersPhases(t *testing.T) {
	tl := NewTimeline()
	tl.Add("worker0", Pull, 0, 1)
	tl.Add("worker0", Compute, 1, 8)
	tl.Add("worker0", Push, 8, 9)
	tl.Add("worker0", Sync, 9, 10)
	out := tl.Gantt(0, 10, 20)
	if !strings.Contains(out, "worker0") {
		t.Fatalf("missing worker row:\n%s", out)
	}
	row := rowOf(t, out, "worker0")
	for _, glyph := range []string{"<", "#", ">", "S"} {
		if !strings.Contains(row, glyph) {
			t.Fatalf("row missing %q:\n%s", glyph, out)
		}
	}
	// Compute dominates: most cells are '#'.
	if strings.Count(row, "#") < 10 {
		t.Fatalf("compute underdrawn:\n%s", out)
	}
}

func TestGanttTinySpanStaysVisible(t *testing.T) {
	tl := NewTimeline()
	tl.Add("w", Compute, 0, 100)
	tl.Add("w", Sync, 100, 100.0001)
	out := tl.Gantt(0, 100.0001, 50)
	if !strings.Contains(rowOf(t, out, "w"), "S") {
		t.Fatalf("sub-cell sync invisible:\n%s", out)
	}
}

func TestGanttEmptyAndDegenerate(t *testing.T) {
	tl := NewTimeline()
	if out := tl.Gantt(5, 5, 40); out != "" {
		t.Fatalf("degenerate window output %q", out)
	}
	if out := tl.Gantt(0, 10, 40); !strings.Contains(out, "timeline") {
		t.Fatalf("empty timeline still needs a header: %q", out)
	}
}

func TestGanttMinWidthClamp(t *testing.T) {
	tl := NewTimeline()
	tl.Add("w", Pull, 0, 1)
	out := tl.Gantt(0, 1, 1)
	row := rowOf(t, out, "w")
	if len(row) < 10 {
		t.Fatalf("width not clamped: %q", row)
	}
}

func TestTimelineConcurrentAdds(t *testing.T) {
	tl := NewTimeline()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tl.Add("w", Compute, float64(i), float64(i)+0.5)
			}
		}(w)
	}
	wg.Wait()
	if got := len(tl.Spans()); got != 4000 {
		t.Fatalf("spans = %d", got)
	}
}

func rowOf(t *testing.T, gantt, worker string) string {
	t.Helper()
	for _, line := range strings.Split(gantt, "\n") {
		if strings.HasPrefix(line, worker) {
			return line
		}
	}
	t.Fatalf("no row for %q in:\n%s", worker, gantt)
	return ""
}
