package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Span is one contiguous interval a worker spent in a phase — the raw
// material of the paper's Figure 5 timing-sequence diagrams.
type Span struct {
	Worker string
	Phase  Phase
	Start  float64
	End    float64
}

// Duration reports the span length.
func (s Span) Duration() float64 { return s.End - s.Start }

// Timeline records spans; safe for concurrent use.
type Timeline struct {
	mu    sync.Mutex
	spans []Span
}

// NewTimeline creates an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Add records one span. Panics on a negative interval.
func (t *Timeline) Add(worker string, p Phase, start, end float64) {
	if end < start {
		// lint:invariant spans record simulator output; an end before its start means the engine emitted a corrupt event.
		panic(fmt.Sprintf("trace: span ends (%v) before it starts (%v)", end, start))
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Worker: worker, Phase: p, Start: start, End: end})
	t.mu.Unlock()
}

// Spans returns a copy of all spans ordered by (worker, start).
func (t *Timeline) Spans() []Span {
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Worker != out[j].Worker {
			return out[i].Worker < out[j].Worker
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// Window returns the spans overlapping [from, to), clipped to it.
func (t *Timeline) Window(from, to float64) []Span {
	var out []Span
	for _, s := range t.Spans() {
		if s.End <= from || s.Start >= to {
			continue
		}
		if s.Start < from {
			s.Start = from
		}
		if s.End > to {
			s.End = to
		}
		out = append(out, s)
	}
	return out
}

// phaseGlyph is the Gantt fill character per phase.
func phaseGlyph(p Phase) byte {
	switch p {
	case Pull:
		return '<'
	case Compute:
		return '#'
	case Push:
		return '>'
	case Sync:
		return 'S'
	default:
		return '?'
	}
}

// Gantt renders the timeline's [from, to) window as an ASCII chart with
// one row per worker and `width` columns — the textual equivalent of the
// paper's Figure 5 (`<` pull, `#` compute, `>` push, `S` sync). Later
// spans overwrite earlier ones in a cell; sub-cell spans still paint one
// cell so short transfers stay visible.
func (t *Timeline) Gantt(from, to float64, width int) string {
	if width < 10 {
		width = 10
	}
	if to <= from {
		return ""
	}
	spans := t.Window(from, to)
	rows := map[string][]byte{}
	var workers []string
	scale := float64(width) / (to - from)
	for _, s := range spans {
		row, ok := rows[s.Worker]
		if !ok {
			row = []byte(strings.Repeat(".", width))
			rows[s.Worker] = row
			workers = append(workers, s.Worker)
		}
		lo := int((s.Start - from) * scale)
		hi := int((s.End - from) * scale)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		for i := lo; i < hi; i++ {
			row[i] = phaseGlyph(s.Phase)
		}
	}
	sort.Strings(workers)
	var b strings.Builder
	fmt.Fprintf(&b, "timeline %.4fs .. %.4fs   (< pull, # compute, > push, S sync)\n", from, to)
	for _, w := range workers {
		fmt.Fprintf(&b, "%-16s |%s|\n", w, rows[w])
	}
	return b.String()
}

// End reports the latest span end (0 when empty).
func (t *Timeline) End() float64 {
	var end float64
	t.mu.Lock()
	for _, s := range t.spans {
		if s.End > end {
			end = s.End
		}
	}
	t.mu.Unlock()
	return end
}
