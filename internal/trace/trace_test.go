package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{Pull: "pull", Compute: "computing", Push: "push", Sync: "sync"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Phase(%d).String() = %q, want %q", int(p), p.String(), s)
		}
	}
	if Phase(9).String() != "Phase(9)" {
		t.Error("unknown phase string wrong")
	}
}

func TestAddAndGet(t *testing.T) {
	c := NewCollector()
	c.Add("gpu0", Pull, 1.5)
	c.Add("gpu0", Pull, 0.5)
	c.Add("gpu0", Compute, 3)
	c.Add("cpu1", Sync, 0.25)
	if got := c.Get("gpu0", Pull); got != 2 {
		t.Fatalf("Get(gpu0,pull) = %v", got)
	}
	if got := c.Get("gpu0", Push); got != 0 {
		t.Fatalf("Get(gpu0,push) = %v", got)
	}
	if got := c.Get("unknown", Pull); got != 0 {
		t.Fatalf("Get(unknown) = %v", got)
	}
}

func TestAddValidation(t *testing.T) {
	c := NewCollector()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative duration did not panic")
			}
		}()
		c.Add("w", Pull, -1)
	}()
	defer func() {
		if recover() == nil {
			t.Error("bad phase did not panic")
		}
	}()
	c.Add("w", Phase(7), 1)
}

func TestTotals(t *testing.T) {
	c := NewCollector()
	c.Add("a", Pull, 1)
	c.Add("a", Compute, 2)
	c.Add("b", Pull, 3)
	if got := c.PhaseTotal(Pull); got != 4 {
		t.Fatalf("PhaseTotal(pull) = %v", got)
	}
	if got := c.WorkerTotal("a"); got != 3 {
		t.Fatalf("WorkerTotal(a) = %v", got)
	}
	if got := c.WorkerTotal("zzz"); got != 0 {
		t.Fatalf("WorkerTotal(zzz) = %v", got)
	}
}

func TestRowsSortedAndComplete(t *testing.T) {
	c := NewCollector()
	c.Add("z", Pull, 1)
	c.Add("a", Push, 2)
	c.Add("m", Sync, 3)
	rows := c.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Worker != "a" || rows[1].Worker != "m" || rows[2].Worker != "z" {
		t.Fatalf("rows not sorted: %+v", rows)
	}
	if rows[0].Push != 2 || rows[0].Total() != 2 {
		t.Fatalf("row a = %+v", rows[0])
	}
}

func TestWorkersFirstReportOrder(t *testing.T) {
	c := NewCollector()
	c.Add("w2", Pull, 1)
	c.Add("w1", Pull, 1)
	c.Add("w2", Push, 1)
	ws := c.Workers()
	if len(ws) != 2 || ws[0] != "w2" || ws[1] != "w1" {
		t.Fatalf("Workers = %v", ws)
	}
}

func TestFormatContainsData(t *testing.T) {
	c := NewCollector()
	c.Add("gpu0", Compute, 1.2345)
	out := c.Format()
	if !strings.Contains(out, "gpu0") || !strings.Contains(out, "1.2345") {
		t.Fatalf("Format output missing data:\n%s", out)
	}
	if !strings.Contains(out, "pull(s)") {
		t.Fatal("Format missing header")
	}
}

func TestReset(t *testing.T) {
	c := NewCollector()
	c.Add("w", Pull, 1)
	c.Reset()
	if c.Get("w", Pull) != 0 || len(c.Workers()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestConcurrentAdds(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add("shared", Compute, 0.001)
			}
		}()
	}
	wg.Wait()
	got := c.Get("shared", Compute)
	if got < 7.99 || got > 8.01 {
		t.Fatalf("concurrent total = %v, want 8", got)
	}
}
