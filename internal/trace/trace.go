// Package trace collects the per-phase timing statistics HCC-MF reports:
// for each worker, the cumulative simulated time spent in pull, computing,
// push, and (server-side) sync across a training run — the raw data behind
// the paper's Figure 8 bars and Table 5/6 rows.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Phase labels one segment of the epoch loop.
type Phase int

const (
	// Pull is the worker's feature download.
	Pull Phase = iota
	// Compute is the worker's SGD pass over its shard.
	Compute
	// Push is the worker's feature upload.
	Push
	// Sync is the server folding a worker's push into the global model.
	Sync
	numPhases int = iota
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case Pull:
		return "pull"
	case Compute:
		return "computing"
	case Push:
		return "push"
	case Sync:
		return "sync"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Collector accumulates per-worker, per-phase durations. It is safe for
// concurrent use (real-execution workers report from their own
// goroutines).
type Collector struct {
	mu      sync.Mutex
	workers []string
	byPhase map[string]*[4]float64
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{byPhase: make(map[string]*[4]float64)}
}

// Add records d seconds of the phase for the worker.
func (c *Collector) Add(worker string, p Phase, d float64) {
	if d < 0 {
		// lint:invariant durations come from the simulated clock; negative means the engine broke.
		panic(fmt.Sprintf("trace: negative duration %v", d))
	}
	if int(p) < 0 || int(p) >= numPhases {
		// lint:invariant Phase is a closed enum; an unknown value is a missed switch arm.
		panic(fmt.Sprintf("trace: unknown phase %d", int(p)))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	row, ok := c.byPhase[worker]
	if !ok {
		row = new([4]float64)
		c.byPhase[worker] = row
		c.workers = append(c.workers, worker)
	}
	row[p] += d
}

// Get reports the accumulated time of a worker's phase.
func (c *Collector) Get(worker string, p Phase) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if row, ok := c.byPhase[worker]; ok {
		return row[p]
	}
	return 0
}

// Workers lists workers in first-report order.
func (c *Collector) Workers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.workers))
	copy(out, c.workers)
	return out
}

// PhaseTotal sums a phase across all workers.
func (c *Collector) PhaseTotal(p Phase) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum float64
	for _, row := range c.byPhase {
		sum += row[p]
	}
	return sum
}

// WorkerTotal sums all phases for one worker.
func (c *Collector) WorkerTotal(worker string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	row, ok := c.byPhase[worker]
	if !ok {
		return 0
	}
	var sum float64
	for _, v := range row {
		sum += v
	}
	return sum
}

// Row is one worker's line in a report.
type Row struct {
	Worker  string
	Pull    float64
	Compute float64
	Push    float64
	Sync    float64
}

// Total reports the row sum.
func (r Row) Total() float64 { return r.Pull + r.Compute + r.Push + r.Sync }

// Rows returns every worker's row, sorted by worker name for stable
// reports.
func (c *Collector) Rows() []Row {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Row, 0, len(c.workers))
	for _, w := range c.workers {
		row := c.byPhase[w]
		out = append(out, Row{Worker: w, Pull: row[Pull], Compute: row[Compute],
			Push: row[Push], Sync: row[Sync]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// Format renders a fixed-width table of all rows (Figure 8 style).
func (c *Collector) Format() string {
	rows := c.Rows()
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %10s %10s %10s %10s\n",
		"worker", "pull(s)", "comp(s)", "push(s)", "sync(s)", "total(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %10.4f %10.4f %10.4f %10.4f %10.4f\n",
			r.Worker, r.Pull, r.Compute, r.Push, r.Sync, r.Total())
	}
	return b.String()
}

// Reset clears all accumulated data.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers = c.workers[:0]
	c.byPhase = make(map[string]*[4]float64)
}
