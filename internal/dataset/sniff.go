package dataset

import (
	"fmt"
	"io"
	"os"

	"hccmf/internal/sparse"
)

// Format sniffing. The CLIs used to "try binary first, fall back to text
// on any error", which turned a truncated or corrupt binary file into a
// nonsense text-parse error ("bad header \"HCMF...\"") that masked the
// real problem. The shared helpers here decide the format from the magic
// alone: a file that starts with the block-binary magic IS binary, and
// every subsequent decode error propagates untouched; only files whose
// first bytes don't match are handed to the text parser. hccmf-train,
// hccmf-recommend and hccmf-serve all load ratings through this path.

// SniffBinary reports whether rs begins with the block-binary magic
// ("HCMF"). It reads at most 4 bytes and always seeks back to the start,
// so the subsequent full read sees the whole stream. Inputs shorter than
// the magic are not binary.
func SniffBinary(rs io.ReadSeeker) (bool, error) {
	var magic [4]byte
	_, err := io.ReadFull(rs, magic[:])
	if _, serr := rs.Seek(0, io.SeekStart); serr != nil {
		return false, serr
	}
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return false, nil
		}
		return false, err
	}
	return string(magic[:]) == binaryMagic, nil
}

// ReadAuto reads a ratings matrix in whichever format rs carries: the
// magic selects ReadBinary (whose decode errors — truncation, bad
// version, out-of-range records — propagate as binary errors), anything
// else goes to the text parser with the given worker count.
func ReadAuto(rs io.ReadSeeker, workers int) (*sparse.COO, error) {
	bin, err := SniffBinary(rs)
	if err != nil {
		return nil, err
	}
	if bin {
		return ReadBinary(rs)
	}
	return ReadTextWorkers(rs, workers)
}

// ReadRatingsFile opens path and reads it with ReadAuto, wrapping errors
// with the file name.
func ReadRatingsFile(path string, workers int) (*sparse.COO, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := ReadAuto(f, workers)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}
