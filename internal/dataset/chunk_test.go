package dataset

import (
	"math"
	"strconv"
	"testing"

	"hccmf/internal/sparse"
)

// The fast scalar parsers must be bit-identical to strconv on everything
// they accept. These tests hammer them far harder than the fixtures: the
// float path in particular must survive the double-rounding corner, so it
// is checked against ParseFloat(s, 32) over random float32 renderings and
// random digit strings.

func TestParseFloat32FastMatchesStrconv(t *testing.T) {
	check := func(s string) {
		t.Helper()
		got, ok := parseFloat32Fast([]byte(s))
		if !ok {
			return // fallback path; strconv handles it by construction
		}
		want, err := strconv.ParseFloat(s, 32)
		if err != nil {
			t.Fatalf("fast path accepted %q, strconv rejects: %v", s, err)
		}
		if math.Float32bits(got) != math.Float32bits(float32(want)) {
			t.Fatalf("%q: fast %v (%#x), strconv %v (%#x)",
				s, got, math.Float32bits(got), float32(want), math.Float32bits(float32(want)))
		}
	}

	// Shortest representations of random float32s across many magnitudes.
	rng := sparse.NewRand(41)
	for i := 0; i < 500_000; i++ {
		f := float32(rng.Float64()) * float32pow10[rng.Intn(11)]
		check(strconv.FormatFloat(float64(f), 'g', -1, 32))
		check(strconv.FormatFloat(float64(f), 'f', rng.Intn(10), 32))
	}
	// Random raw digit strings, point in a random spot.
	buf := make([]byte, 0, 20)
	for i := 0; i < 500_000; i++ {
		buf = buf[:0]
		n := 1 + rng.Intn(17)
		dot := rng.Intn(n + 1)
		for j := 0; j < n; j++ {
			if j == dot {
				buf = append(buf, '.')
			}
			buf = append(buf, byte('0'+rng.Intn(10)))
		}
		check(string(buf))
	}
	// Hand-picked shapes: midpoint-adjacent, long zeros, degenerate forms.
	for _, s := range []string{
		"0", "0.0", "1", "4.5", "3.4028235", "0.000001", "16777216", "16777217",
		"8388608", "8388607", "9999999999999999", "1.00000017", "2.0000002",
		"0.1", "0.2", "0.3", "123456789012345", "000000000000001", "1.", ".5",
		"1..2", "", "-1", "+1", "1e5", "inf", "NaN", "0x1p4",
	} {
		check(s)
	}
}

func TestParseDigitsMatchesStrconv(t *testing.T) {
	for _, s := range []string{
		"0", "7", "042", "999999999", "1000000000", "2147483647", "2147483648",
		"", "-3", "+3", " 3", "3 ", "12a", "999999999999999999", "9223372036854775807",
	} {
		b := []byte(s)
		want32, werr := strconv.ParseInt(s, 10, 32)
		got32, gerr := parseI32(b)
		if (werr == nil) != (gerr == nil) || (werr == nil && got32 != int32(want32)) {
			t.Fatalf("parseI32(%q) = %d,%v; strconv = %d,%v", s, got32, gerr, want32, werr)
		}
		want64, werr := strconv.ParseInt(s, 10, 64)
		got64, gerr := parseI64(b)
		if (werr == nil) != (gerr == nil) || (werr == nil && got64 != want64) {
			t.Fatalf("parseI64(%q) = %d,%v; strconv = %d,%v", s, got64, gerr, want64, werr)
		}
	}
}

func TestASCIIFields3MatchesNextField(t *testing.T) {
	for _, s := range []string{
		"a b c", "a  b\tc", "a b", "a", "", "a b c d", "a b c ", " a b c",
		"1 2 3.5", "x\vy\fz", "a b c d", "π 2 3", "a b c",
	} {
		in := []byte(s)
		f0, f1, f2, exact, ascii := asciiFields3(in)
		var fr []byte
		w0, fr := nextField(in)
		w1, fr := nextField(fr)
		w2, fr := nextField(fr)
		extra, _ := nextField(fr)
		wantExact := w2 != nil && extra == nil
		if !ascii {
			continue // caller falls back to nextField; nothing to compare
		}
		if exact != wantExact {
			t.Fatalf("%q: exact %v, want %v", s, exact, wantExact)
		}
		if string(f0) != string(w0) || string(f1) != string(w1) || string(f2) != string(w2) {
			t.Fatalf("%q: fields %q,%q,%q want %q,%q,%q", s, f0, f1, f2, w0, w1, w2)
		}
	}
}
