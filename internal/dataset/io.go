package dataset

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"runtime"
	"strconv"
	"strings"
	"unsafe"

	"hccmf/internal/parallel"
	"hccmf/internal/sparse"
)

// Text format: a header line "m n nnz" followed by one "user item rating"
// triple per line (0-based indexes). Lines starting with '%' or '#' are
// comments. This is compatible with the common MF benchmark layout and a
// strict subset of MatrixMarket coordinate bodies.
//
// Readers come in two flavours: a serial reference implementation
// (bufio.Scanner, one line at a time) and a parallel pipeline that cuts
// the input into ~1 MiB chunks at newline boundaries and parses each chunk
// on a worker with zero-copy byte-slice field scanning. The two are
// byte-identical in accepted entries, entry order, and error messages
// (enforced by equivalence tests and a fuzz target); the parallel path is
// the default because it is faster even at one worker.

// WriteText writes the matrix in the text triple format. Lines are
// rendered with strconv.Append* into a reused block buffer — the output is
// byte-identical to the previous fmt.Fprintf("%d %d %g\n") rendering.
func WriteText(w io.Writer, m *sparse.COO) error {
	buf := make([]byte, 0, ioWriteBlock)
	buf = strconv.AppendInt(buf, int64(m.Rows), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(m.Cols), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(m.NNZ()), 10)
	buf = append(buf, '\n')
	for _, e := range m.Entries {
		if len(buf) > ioWriteBlock-64 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
		buf = strconv.AppendInt(buf, int64(e.U), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(e.I), 10)
		buf = append(buf, ' ')
		// fmt's %g on a float32 operand is AppendFloat('g', -1, 32).
		buf = strconv.AppendFloat(buf, float64(e.V), 'g', -1, 32)
		buf = append(buf, '\n')
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadText parses the text triple format with GOMAXPROCS parse workers.
func ReadText(r io.Reader) (*sparse.COO, error) {
	return ReadTextWorkers(r, runtime.GOMAXPROCS(0))
}

// ReadTextWorkers parses the text triple format with the given number of
// parse workers. workers <= 1 runs the serial reference parser; any other
// count runs the chunked parallel pipeline, whose output — entries, entry
// order, and error messages — is byte-identical to the serial path.
func ReadTextWorkers(r io.Reader, workers int) (*sparse.COO, error) {
	if workers <= 1 {
		return readTextSerial(r)
	}
	buf, err := readAllBytes(r)
	if err != nil {
		return nil, err
	}
	return parseTextParallel(buf, workers, ioChunkSize)
}

// headerCapHint bounds the Entries capacity pre-allocated from an
// untrusted header, so a file declaring an absurd nnz cannot force a huge
// allocation before a single triple is parsed.
const headerCapHint = 1 << 20

// readTextSerial is the serial reference parser. Its behaviour defines the
// format; the parallel pipeline must match it bit for bit.
func readTextSerial(r io.Reader) (*sparse.COO, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var m *sparse.COO
	declaredNNZ := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '%' || line[0] == '#' {
			continue
		}
		fields := strings.Fields(line)
		if m == nil {
			if len(fields) != 3 {
				return nil, fmt.Errorf("dataset: line %d: header wants 'm n nnz', got %q", lineNo, line)
			}
			rows, err1 := strconv.Atoi(fields[0])
			cols, err2 := strconv.Atoi(fields[1])
			nnz, err3 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("dataset: line %d: bad header %q", lineNo, line)
			}
			declaredNNZ = nnz
			m = sparse.NewCOO(rows, cols, min(max(nnz, 0), headerCapHint))
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("dataset: line %d: want 'u i r', got %q", lineNo, line)
		}
		u, err1 := strconv.ParseInt(fields[0], 10, 32)
		i, err2 := strconv.ParseInt(fields[1], 10, 32)
		v, err3 := strconv.ParseFloat(fields[2], 32)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("dataset: line %d: bad triple %q", lineNo, line)
		}
		if err := m.Append(int32(u), int32(i), float32(v)); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("dataset: empty input")
	}
	if m.NNZ() != declaredNNZ {
		return nil, errNNZMismatch(declaredNNZ, m.NNZ())
	}
	return m, nil
}

// errNNZMismatch is the error both text readers return when the header's
// declared entry count disagrees with the triples actually present (the
// binary reader enforces its count by construction).
func errNNZMismatch(declared, got int) error {
	return fmt.Errorf("dataset: header declares %d entries, file has %d", declared, got)
}

// chunkResult is one chunk's parse output. Errors are recorded as a
// chunk-relative line number plus a deferred formatter, because a worker
// does not know how many lines precede its chunk; the sequential merge
// adds the offsets and reports the first error in input order — the same
// error, with the same text, the serial parser would have stopped at.
type chunkResult struct {
	entries []sparse.Rating
	lines   int                  // lines consumed in this chunk
	errLine int                  // chunk-relative 1-based line of the first error; 0 = none
	mkErr   func(line int) error // formats the error once the absolute line is known
	rawErr  error                // line-number-free error (e.g. bufio.ErrTooLong), reported verbatim
}

// fail records the first error of a chunk and stops its parse loop.
func (c *chunkResult) fail(relLine int, mk func(line int) error) {
	c.errLine = relLine
	c.mkErr = mk
}

// parseTextParallel is the chunked pipeline behind ReadTextWorkers. The
// header is located sequentially (it is within the first few lines), the
// remainder is cut into chunkSize chunks at newline boundaries, chunks are
// parsed concurrently, and the per-chunk entry slices are concatenated in
// chunk order — so entry order matches the serial parser exactly.
// chunkSize is a parameter so tests can force many tiny chunks.
func parseTextParallel(buf []byte, workers, chunkSize int) (*sparse.COO, error) {
	rows, cols, nnz, rest, headerLines, err := parseTextHeader(buf)
	if err != nil {
		return nil, err
	}
	chunks := splitChunks(rest, chunkSize)
	results := make([]chunkResult, len(chunks))
	parallel.Chunks(len(chunks), 1, workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			results[j] = parseTriples(chunks[j], rows, cols)
		}
	})

	line := headerLines
	total := 0
	for j := range results {
		res := &results[j]
		if res.errLine > 0 {
			return nil, res.mkErr(line + res.errLine)
		}
		if res.rawErr != nil {
			return nil, res.rawErr
		}
		line += res.lines
		total += len(res.entries)
	}
	if total != nnz {
		return nil, errNNZMismatch(nnz, total)
	}
	m := sparse.NewCOO(rows, cols, total)
	for j := range results {
		m.Entries = append(m.Entries, results[j].entries...)
	}
	return m, nil
}

// parseTextHeader scans the prologue of buf for the "m n nnz" header,
// skipping comments and blank lines, and returns the parsed dimensions,
// the unconsumed remainder, and the number of lines consumed.
func parseTextHeader(buf []byte) (rows, cols, nnz int, rest []byte, lines int, err error) {
	for len(buf) > 0 {
		var line []byte
		line, buf = nextLine(buf)
		lines++
		if len(line) >= maxLineBytes {
			return 0, 0, 0, nil, 0, bufio.ErrTooLong
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 || trimmed[0] == '%' || trimmed[0] == '#' {
			continue
		}
		f0, fr := nextField(trimmed)
		f1, fr := nextField(fr)
		f2, fr := nextField(fr)
		if extra, _ := nextField(fr); f2 == nil || extra != nil {
			return 0, 0, 0, nil, 0, fmt.Errorf("dataset: line %d: header wants 'm n nnz', got %q", lines, trimmed)
		}
		var e1, e2, e3 error
		rows, e1 = strconv.Atoi(bstr(f0))
		cols, e2 = strconv.Atoi(bstr(f1))
		nnz, e3 = strconv.Atoi(bstr(f2))
		if e1 != nil || e2 != nil || e3 != nil {
			return 0, 0, 0, nil, 0, fmt.Errorf("dataset: line %d: bad header %q", lines, trimmed)
		}
		return rows, cols, nnz, buf, lines, nil
	}
	return 0, 0, 0, nil, 0, fmt.Errorf("dataset: empty input")
}

// parseTriples parses one chunk of "u i r" lines with the zero-copy field
// scanner. Entries are appended to a chunk-local slice; on the first bad
// line the chunk stops and records a deferred error.
func parseTriples(chunk []byte, rows, cols int) chunkResult {
	var res chunkResult
	// The shortest meaningful line ("0 0 1\n") is six bytes; /8 slightly
	// undershoots so the common real-world line lengths rarely regrow.
	res.entries = make([]sparse.Rating, 0, len(chunk)/8)
	for len(chunk) > 0 {
		var line []byte
		line, chunk = nextLine(chunk)
		res.lines++
		if len(line) >= maxLineBytes {
			res.rawErr = bufio.ErrTooLong
			return res
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 || trimmed[0] == '%' || trimmed[0] == '#' {
			continue
		}
		if u, i, v, ok := parseTripleFast(trimmed); ok {
			if err := sparse.CheckRange(u, i, rows, cols); err != nil {
				res.fail(res.lines, func(line int) error {
					return fmt.Errorf("dataset: line %d: %v", line, err)
				})
				return res
			}
			res.entries = append(res.entries, sparse.Rating{U: u, I: i, V: v})
			continue
		}
		f0, f1, f2, exact, ascii := asciiFields3(trimmed)
		if !ascii {
			var fr []byte
			f0, fr = nextField(trimmed)
			f1, fr = nextField(fr)
			f2, fr = nextField(fr)
			extra, _ := nextField(fr)
			exact = f2 != nil && extra == nil
		}
		if !exact {
			res.fail(res.lines, func(line int) error {
				return fmt.Errorf("dataset: line %d: want 'u i r', got %q", line, trimmed)
			})
			return res
		}
		u, e1 := parseI32(f0)
		i, e2 := parseI32(f1)
		v, e3 := parseF32(f2)
		if e1 != nil || e2 != nil || e3 != nil {
			res.fail(res.lines, func(line int) error {
				return fmt.Errorf("dataset: line %d: bad triple %q", line, trimmed)
			})
			return res
		}
		if err := sparse.CheckRange(u, i, rows, cols); err != nil {
			res.fail(res.lines, func(line int) error {
				return fmt.Errorf("dataset: line %d: %v", line, err)
			})
			return res
		}
		res.entries = append(res.entries, sparse.Rating{U: u, I: i, V: v})
	}
	return res
}

// Binary format: magic "HCMF", version u32, rows/cols u64, nnz u64, then
// nnz records of (u int32, i int32, v float32), little endian. ~3x smaller
// and far faster to load than the text form. Records move through 64 KiB
// blocks with batched binary.LittleEndian access, not per-record reads.

const (
	binaryMagic   = "HCMF"
	binaryVersion = 1

	recordSize = 12
	// ioWriteBlock is the block-I/O buffer size: 64 KiB rounded down to a
	// whole number of records (5461 records = 65532 bytes).
	ioWriteBlock = (64 << 10) / recordSize * recordSize
)

// ratingWireLayout reports whether sparse.Rating's in-memory layout is
// bit-identical to the on-disk record (little-endian u, i, v at offsets
// 0/4/8 in 12 bytes), which lets ReadBinary decode whole blocks with one
// copy instead of per-field shifts. False on big-endian hosts or if the
// struct layout ever changes; the per-record decode loop remains as the
// portable path.
var ratingWireLayout = func() bool {
	var x uint16 = 1
	littleEndian := *(*byte)(unsafe.Pointer(&x)) == 1
	var e sparse.Rating
	return littleEndian &&
		unsafe.Sizeof(e) == recordSize &&
		unsafe.Offsetof(e.U) == 0 && unsafe.Offsetof(e.I) == 4 && unsafe.Offsetof(e.V) == 8
}()

// WriteBinary writes the compact binary format through a 64 KiB block
// buffer: records are encoded with batched little-endian stores and
// flushed a block at a time.
func WriteBinary(w io.Writer, m *sparse.COO) error {
	buf := make([]byte, 0, ioWriteBlock)
	buf = append(buf, binaryMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, binaryVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Rows))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Cols))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.NNZ()))
	for _, e := range m.Entries {
		if len(buf)+recordSize > ioWriteBlock {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
		off := len(buf)
		buf = buf[:off+recordSize]
		binary.LittleEndian.PutUint32(buf[off:], uint32(e.U))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(e.I))
		binary.LittleEndian.PutUint32(buf[off+8:], math.Float32bits(e.V))
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinary parses the compact binary format, pulling records through a
// 64 KiB block buffer instead of one 12-byte read per record. Accepted
// inputs and error messages are identical to ReadBinarySerial.
func ReadBinary(r io.Reader) (*sparse.COO, error) {
	rows, cols, nnz, err := readBinaryHeader(r)
	if err != nil {
		return nil, err
	}
	m := sparse.NewCOO(rows, cols, int(nnz))
	block := make([]byte, ioWriteBlock)
	var done uint64
	for done < nnz {
		want := int(min(nnz-done, uint64(len(block)/recordSize))) * recordSize
		n, err := io.ReadFull(r, block[:want])
		full := n / recordSize
		if ratingWireLayout && full > 0 {
			// The record bytes are exactly the in-memory layout of
			// sparse.Rating on little-endian hosts: bulk-copy the block into
			// the entries array, then range-check the decoded coordinates.
			base := len(m.Entries)
			m.Entries = m.Entries[:base+full]
			dst := unsafe.Slice((*byte)(unsafe.Pointer(&m.Entries[base])), full*recordSize)
			copy(dst, block[:full*recordSize])
			for k := 0; k < full; k++ {
				e := m.Entries[base+k]
				if rerr := sparse.CheckRange(e.U, e.I, rows, cols); rerr != nil {
					return nil, fmt.Errorf("dataset: record %d: %v", done+uint64(k), rerr)
				}
			}
		} else {
			for k := 0; k < full; k++ {
				rec := block[k*recordSize : k*recordSize+recordSize]
				u := int32(binary.LittleEndian.Uint32(rec[0:]))
				i := int32(binary.LittleEndian.Uint32(rec[4:]))
				v := math.Float32frombits(binary.LittleEndian.Uint32(rec[8:]))
				if rerr := sparse.CheckRange(u, i, rows, cols); rerr != nil {
					return nil, fmt.Errorf("dataset: record %d: %v", done+uint64(k), rerr)
				}
				m.Entries = append(m.Entries, sparse.Rating{U: u, I: i, V: v})
			}
		}
		if err != nil {
			// Normalise to what a per-record reader would have seen: the
			// record after the last complete one got either a partial read
			// (unexpected EOF) or nothing at all (EOF).
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				if n%recordSize == 0 {
					err = io.EOF
				} else {
					err = io.ErrUnexpectedEOF
				}
			}
			return nil, fmt.Errorf("dataset: record %d: %w", done+uint64(full), err)
		}
		done += uint64(full)
	}
	return m, nil
}

// ReadBinarySerial is the per-record reference reader, retained as the
// equivalence oracle for ReadBinary and the ingest benchmark baseline.
func ReadBinarySerial(r io.Reader) (*sparse.COO, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	rows, cols, nnz, err := readBinaryHeader(br)
	if err != nil {
		return nil, err
	}
	m := sparse.NewCOO(rows, cols, int(nnz))
	rec := make([]byte, recordSize)
	for c := uint64(0); c < nnz; c++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("dataset: record %d: %w", c, err)
		}
		u := int32(binary.LittleEndian.Uint32(rec[0:]))
		i := int32(binary.LittleEndian.Uint32(rec[4:]))
		v := math.Float32frombits(binary.LittleEndian.Uint32(rec[8:]))
		if err := m.Append(u, i, v); err != nil {
			return nil, fmt.Errorf("dataset: record %d: %v", c, err)
		}
	}
	return m, nil
}

// readBinaryHeader reads and validates the magic and fixed header.
func readBinaryHeader(r io.Reader) (rows, cols int, nnz uint64, err error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return 0, 0, 0, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return 0, 0, 0, fmt.Errorf("dataset: bad magic %q", magic)
	}
	hdr := make([]byte, 4+8+8+8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, 0, fmt.Errorf("dataset: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != binaryVersion {
		return 0, 0, 0, fmt.Errorf("dataset: unsupported version %d", v)
	}
	rows = int(binary.LittleEndian.Uint64(hdr[4:]))
	cols = int(binary.LittleEndian.Uint64(hdr[12:]))
	nnz = binary.LittleEndian.Uint64(hdr[20:])
	if rows < 0 || cols < 0 || nnz > 1<<34 {
		return 0, 0, 0, fmt.Errorf("dataset: implausible header rows=%d cols=%d nnz=%d", rows, cols, nnz)
	}
	return rows, cols, nnz, nil
}
