package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"hccmf/internal/sparse"
)

// Text format: a header line "m n nnz" followed by one "user item rating"
// triple per line (0-based indexes). Lines starting with '%' or '#' are
// comments. This is compatible with the common MF benchmark layout and a
// strict subset of MatrixMarket coordinate bodies.

// WriteText writes the matrix in the text triple format.
func WriteText(w io.Writer, m *sparse.COO) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for _, e := range m.Entries {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.U, e.I, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text triple format.
func ReadText(r io.Reader) (*sparse.COO, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var m *sparse.COO
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '%' || line[0] == '#' {
			continue
		}
		fields := strings.Fields(line)
		if m == nil {
			if len(fields) != 3 {
				return nil, fmt.Errorf("dataset: line %d: header wants 'm n nnz', got %q", lineNo, line)
			}
			rows, err1 := strconv.Atoi(fields[0])
			cols, err2 := strconv.Atoi(fields[1])
			nnz, err3 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("dataset: line %d: bad header %q", lineNo, line)
			}
			m = sparse.NewCOO(rows, cols, nnz)
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("dataset: line %d: want 'u i r', got %q", lineNo, line)
		}
		u, err1 := strconv.ParseInt(fields[0], 10, 32)
		i, err2 := strconv.ParseInt(fields[1], 10, 32)
		v, err3 := strconv.ParseFloat(fields[2], 32)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("dataset: line %d: bad triple %q", lineNo, line)
		}
		if err := m.Append(int32(u), int32(i), float32(v)); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("dataset: empty input")
	}
	return m, nil
}

// Binary format: magic "HCMF", version u32, rows/cols u64, nnz u64, then
// nnz records of (u int32, i int32, v float32), little endian. ~3x smaller
// and ~20x faster to load than the text form.

const (
	binaryMagic   = "HCMF"
	binaryVersion = 1
)

// WriteBinary writes the compact binary format.
func WriteBinary(w io.Writer, m *sparse.COO) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := make([]byte, 4+8+8+8)
	binary.LittleEndian.PutUint32(hdr[0:], binaryVersion)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(m.Rows))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(m.Cols))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(m.NNZ()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, 12)
	for _, e := range m.Entries {
		binary.LittleEndian.PutUint32(rec[0:], uint32(e.U))
		binary.LittleEndian.PutUint32(rec[4:], uint32(e.I))
		binary.LittleEndian.PutUint32(rec[8:], math.Float32bits(e.V))
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the compact binary format.
func ReadBinary(r io.Reader) (*sparse.COO, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	hdr := make([]byte, 4+8+8+8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != binaryVersion {
		return nil, fmt.Errorf("dataset: unsupported version %d", v)
	}
	rows := int(binary.LittleEndian.Uint64(hdr[4:]))
	cols := int(binary.LittleEndian.Uint64(hdr[12:]))
	nnz := binary.LittleEndian.Uint64(hdr[20:])
	if rows < 0 || cols < 0 || nnz > 1<<34 {
		return nil, fmt.Errorf("dataset: implausible header rows=%d cols=%d nnz=%d", rows, cols, nnz)
	}
	m := sparse.NewCOO(rows, cols, int(nnz))
	rec := make([]byte, 12)
	for c := uint64(0); c < nnz; c++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("dataset: record %d: %w", c, err)
		}
		u := int32(binary.LittleEndian.Uint32(rec[0:]))
		i := int32(binary.LittleEndian.Uint32(rec[4:]))
		v := math.Float32frombits(binary.LittleEndian.Uint32(rec[8:]))
		if err := m.Append(u, i, v); err != nil {
			return nil, fmt.Errorf("dataset: record %d: %v", c, err)
		}
	}
	return m, nil
}
