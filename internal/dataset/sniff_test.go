package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hccmf/internal/sparse"
)

func sniffMatrix(t *testing.T) *sparse.COO {
	t.Helper()
	m := sparse.NewCOO(4, 5, 3)
	m.Add(0, 1, 3.5)
	m.Add(2, 4, 1)
	m.Add(3, 0, 5)
	return m
}

func TestReadAutoBinary(t *testing.T) {
	m := sniffMatrix(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAuto(bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != m.NNZ() || got.Rows != m.Rows || got.Cols != m.Cols {
		t.Fatalf("binary round-trip lost shape: %dx%d nnz %d", got.Rows, got.Cols, got.NNZ())
	}
}

func TestReadAutoText(t *testing.T) {
	m := sniffMatrix(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAuto(bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != m.NNZ() {
		t.Fatalf("text round-trip lost entries: %d", got.NNZ())
	}
}

// TestReadAutoCorruptBinaryPropagates is the regression test for the
// silent-fallback bug: a truncated binary file must surface a binary
// decode error, not be re-parsed as text into a nonsense header error.
func TestReadAutoCorruptBinaryPropagates(t *testing.T) {
	m := sniffMatrix(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-5] // cut into the last record
	_, err := ReadAuto(bytes.NewReader(truncated), 2)
	if err == nil {
		t.Fatal("truncated binary accepted")
	}
	if !strings.Contains(err.Error(), "record") {
		t.Fatalf("truncation surfaced as %q, want a binary record error", err)
	}
	if strings.Contains(err.Error(), "header") {
		t.Fatalf("truncation fell back to the text parser: %q", err)
	}

	// A bad version is likewise a binary error, never a text parse.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[4] = 0xFF // version field
	_, err = ReadAuto(bytes.NewReader(bad), 2)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version surfaced as %v, want an unsupported-version error", err)
	}
}

func TestSniffBinaryShortAndEmptyInputs(t *testing.T) {
	for _, in := range []string{"", "HC", "1 1 0\n"} {
		bin, err := SniffBinary(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if bin {
			t.Fatalf("%q sniffed as binary", in)
		}
	}
	bin, err := SniffBinary(strings.NewReader("HCMF garbage"))
	if err != nil || !bin {
		t.Fatalf("magic-prefixed input not sniffed as binary: %v %v", bin, err)
	}
	// The sniff must leave the reader rewound: text after a negative sniff
	// parses from byte 0.
	r := strings.NewReader("2 2 1\n0 0 1\n")
	if _, err := SniffBinary(r); err != nil {
		t.Fatal(err)
	}
	if m, err := ReadTextWorkers(r, 1); err != nil || m.NNZ() != 1 {
		t.Fatalf("reader not rewound after sniff: %v %v", m, err)
	}
}

func TestReadRatingsFileWrapsPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ratings.bin")
	m := sniffMatrix(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes()[:buf.Len()-3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadRatingsFile(path, 2)
	if err == nil || !strings.Contains(err.Error(), "ratings.bin") {
		t.Fatalf("error %v does not name the file", err)
	}
	good := filepath.Join(dir, "ratings.txt")
	var tbuf bytes.Buffer
	if err := WriteText(&tbuf, m); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, tbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRatingsFile(good, 2)
	if err != nil || got.NNZ() != m.NNZ() {
		t.Fatalf("text file read failed: %v %v", got, err)
	}
}
