package dataset

import (
	"strings"
	"testing"
)

const csvSample = `userId,movieId,rating,timestamp
1,296,5.0,1147880044
1,306,3.5,1147868817
2,296,4.0,1147868828
3,5952,4.0,1147869100
`

const uDataSample = "196\t242\t3\t881250949\n186\t302\t3\t891717742\n196\t302\t4\t881250949\n"

func TestReadMovieLensCSV(t *testing.T) {
	m, maps, err := ReadMovieLensCSV(strings.NewReader(csvSample))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 3 || m.NNZ() != 4 {
		t.Fatalf("shape = %dx%d/%d", m.Rows, m.Cols, m.NNZ())
	}
	// User 1 and user 2 both rated movie 296 — same dense column.
	col296 := maps.ItemIndex[296]
	seen := 0
	for _, e := range m.Entries {
		if e.I == col296 {
			seen++
		}
	}
	if seen != 2 {
		t.Fatalf("movie 296 has %d ratings, want 2", seen)
	}
	if maps.Users[maps.UserIndex[3]] != 3 {
		t.Fatal("id maps do not invert")
	}
	if m.Entries[0].V != 5.0 {
		t.Fatalf("rating = %v", m.Entries[0].V)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadMovieLensUData(t *testing.T) {
	m, maps, err := ReadMovieLensUData(strings.NewReader(uDataSample))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 2 || m.NNZ() != 3 {
		t.Fatalf("shape = %dx%d/%d", m.Rows, m.Cols, m.NNZ())
	}
	if _, ok := maps.UserIndex[196]; !ok {
		t.Fatal("user 196 missing")
	}
}

func TestReadMovieLensErrors(t *testing.T) {
	cases := []string{
		"",                             // empty
		"not,a,header\n1,2,3.0,4\n",    // bad header
		"userId,movieId,rating\na,b\n", // short record
		"userId,movieId,rating\nx,y,z\n",
	}
	for _, in := range cases {
		if _, _, err := ReadMovieLensCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadMovieLensCSV(%q) succeeded", in)
		}
	}
	if _, _, err := ReadMovieLensUData(strings.NewReader("1 2\n")); err == nil {
		t.Error("short u.data record accepted")
	}
}

func TestReadMovieLensSkipsBlankLines(t *testing.T) {
	in := "userId,movieId,rating,timestamp\n\n1,10,4.0,0\n\n"
	m, _, err := ReadMovieLensCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
}

func TestReadMovieLensDensification(t *testing.T) {
	// Ids are huge and sparse; dense indexes must stay compact.
	in := "userId,movieId,rating,timestamp\n900000,7777777,3.0,0\n900001,7777777,2.0,0\n"
	m, maps, err := ReadMovieLensCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 1 {
		t.Fatalf("densification failed: %dx%d", m.Rows, m.Cols)
	}
	if maps.Items[0] != 7777777 {
		t.Fatal("item map wrong")
	}
}
