package dataset_test

import (
	"fmt"

	"hccmf/internal/dataset"
)

// Materialising a laptop-scale instance of a paper dataset.
func ExampleGenerate() {
	spec := dataset.Netflix.MustScaled(0.001) // 1/1000th of the published shape
	ds, err := dataset.Generate(spec, 42)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d×%d\n", spec.Name, spec.M, spec.N)
	fmt.Printf("train+test ratings: %d\n", ds.Train.NNZ()+ds.Test.NNZ())
	// Output:
	// netflix@0.001: 480×17
	// train+test ratings: 8160
}

// The paper's communication diagnostic: datasets with small nnz/(m+n) are
// the ones collaboration cannot accelerate (Section 4.6).
func ExampleSpec_DimRatio() {
	for _, s := range []dataset.Spec{dataset.Netflix, dataset.MovieLens20M} {
		fmt.Printf("%-8s nnz/(m+n) = %.0f\n", s.Name, s.DimRatio())
	}
	// Output:
	// netflix  nnz/(m+n) = 199
	// ml-20m   nnz/(m+n) = 74
}
