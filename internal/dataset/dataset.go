// Package dataset provides the rating datasets used in the paper's
// evaluation (Table 3). The originals (Netflix, Yahoo! Music R1/R2,
// MovieLens-20m) are either proprietary or too large to ship, so this
// package regenerates synthetic equivalents with the exact published
// dimensions and nnz, skewed popularity distributions, and ratings sampled
// from a planted low-rank model plus noise — which preserves both the
// timing behaviour (a function of m, n, nnz only) and the convergence
// behaviour (SGD can actually drive RMSE down against a planted factor
// structure, as on the real data).
package dataset

import (
	"fmt"

	"hccmf/internal/sparse"
)

// Params carries the SGD hyper-parameters the paper fixes per dataset
// (Table 3): regularisers λ1, λ2 and the learning rate γ=0.005.
type Params struct {
	Lambda1 float32
	Lambda2 float32
	Gamma   float32
}

// Spec describes one dataset preset: published shape plus generation knobs.
type Spec struct {
	Name string
	M    int   // users (rows)
	N    int   // items (columns)
	NNZ  int64 // published number of ratings

	RatingMin  float32 // lowest possible rating
	RatingMax  float32 // highest possible rating
	RatingStep float32 // granularity of the rating scale

	Rank      int     // planted latent rank used for generation
	NoiseStd  float64 // observation noise on top of the planted model
	ZipfTheta float64 // item-popularity skew exponent (0 = uniform)

	Params Params
}

// The paper's dataset table (Table 3), γ = 0.005 throughout.
var (
	// Netflix: 480190×17771, 99,072,112 ratings on a 1–5 scale.
	Netflix = Spec{
		Name: "netflix", M: 480190, N: 17771, NNZ: 99072112,
		RatingMin: 1, RatingMax: 5, RatingStep: 1,
		Rank: 16, NoiseStd: 0.45, ZipfTheta: 0.9,
		Params: Params{Lambda1: 0.01, Lambda2: 0.01, Gamma: 0.005},
	}
	// YahooR1: Yahoo! Music R1, 1948883×1101750, 115,579,437 ratings,
	// 0–100 scale.
	YahooR1 = Spec{
		Name: "r1", M: 1948883, N: 1101750, NNZ: 115579437,
		RatingMin: 0, RatingMax: 100, RatingStep: 1,
		Rank: 16, NoiseStd: 12, ZipfTheta: 0.8,
		Params: Params{Lambda1: 1, Lambda2: 1, Gamma: 0.005},
	}
	// YahooR1Star: R1 densified with uniformly added entries to
	// 199,999,997 ratings (the paper's R1* used to stress partitioning).
	YahooR1Star = Spec{
		Name: "r1star", M: 1948883, N: 1101750, NNZ: 199999997,
		RatingMin: 0, RatingMax: 100, RatingStep: 1,
		Rank: 16, NoiseStd: 12, ZipfTheta: 0.3,
		Params: Params{Lambda1: 1, Lambda2: 1, Gamma: 0.005},
	}
	// YahooR2: Yahoo! Music R2, 1000000×136736, 383,838,609 ratings,
	// 1–5 scale.
	YahooR2 = Spec{
		Name: "r2", M: 1000000, N: 136736, NNZ: 383838609,
		RatingMin: 1, RatingMax: 5, RatingStep: 0.5,
		Rank: 16, NoiseStd: 0.5, ZipfTheta: 0.8,
		Params: Params{Lambda1: 0.01, Lambda2: 0.01, Gamma: 0.005},
	}
	// MovieLens20M: 138494×131263, 20,000,260 ratings, 0.5–5 scale. The
	// near-square shape makes it the paper's limitation case (Section 4.6).
	MovieLens20M = Spec{
		Name: "ml-20m", M: 138494, N: 131263, NNZ: 20000260,
		RatingMin: 0.5, RatingMax: 5, RatingStep: 0.5,
		Rank: 16, NoiseStd: 0.5, ZipfTheta: 0.9,
		Params: Params{Lambda1: 0.01, Lambda2: 0.01, Gamma: 0.005},
	}
)

// Presets lists every built-in spec by name.
var Presets = map[string]Spec{
	Netflix.Name:      Netflix,
	YahooR1.Name:      YahooR1,
	YahooR1Star.Name:  YahooR1Star,
	YahooR2.Name:      YahooR2,
	MovieLens20M.Name: MovieLens20M,
}

// Lookup resolves a preset by name.
func Lookup(name string) (Spec, error) {
	s, ok := Presets[name]
	if !ok {
		return Spec{}, fmt.Errorf("dataset: unknown preset %q", name)
	}
	return s, nil
}

// Scaled returns a copy of the spec shrunk by factor f (0 < f ≤ 1) along
// every axis, keeping the density profile. Used to materialise datasets
// that actually fit in test memory while the full-size spec still drives
// the simulated-platform timing. The factor arrives from CLI flags
// (hccmf-datagen -scale) and RunConfig.MaterializeScale, so a bad value
// is a returned error, not a panic.
func (s Spec) Scaled(f float64) (Spec, error) {
	if f <= 0 || f > 1 {
		return Spec{}, fmt.Errorf("dataset: scale factor %v out of (0,1]", f)
	}
	out := s
	out.Name = fmt.Sprintf("%s@%.4g", s.Name, f)
	out.M = max(int(float64(s.M)*f), out.Rank+1)
	out.N = max(int(float64(s.N)*f), out.Rank+1)
	out.NNZ = int64(float64(s.NNZ) * f)
	if maxNNZ := int64(out.M) * int64(out.N); out.NNZ > maxNNZ {
		out.NNZ = maxNNZ
	}
	if out.NNZ < 1 {
		out.NNZ = 1
	}
	return out, nil
}

// MustScaled is Scaled that panics on a bad factor, for tests and
// examples that pass a literal in-range constant.
func (s Spec) MustScaled(f float64) Spec {
	out, err := s.Scaled(f)
	if err != nil {
		panic(err)
	}
	return out
}

// Density reports nnz/(m·n).
func (s Spec) Density() float64 {
	return float64(s.NNZ) / (float64(s.M) * float64(s.N))
}

// DimRatio reports nnz/(m+n), the quantity the paper uses to predict
// whether communication drowns computation (Section 3.4: trouble when
// nnz/(m+n) < 1000).
func (s Spec) DimRatio() float64 {
	return float64(s.NNZ) / float64(s.M+s.N)
}

// Dataset is a materialised dataset: a training split, a held-out test
// split, and the generating spec.
type Dataset struct {
	Spec  Spec
	Train *sparse.COO
	Test  *sparse.COO
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
