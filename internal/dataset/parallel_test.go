package dataset

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"hccmf/internal/sparse"
)

// The parallel ingestion pipeline's contract is byte-identical behaviour
// with the serial reference paths: same entries in the same order, same
// IDMaps, and the same error text at the same line numbers, regardless of
// where chunk boundaries fall. These tests drive the internal parallel
// entry points with tiny chunk sizes so that multi-chunk splits, malformed
// lines mid-chunk, and inputs smaller than one chunk are all exercised
// even on small fixtures.

func textFixture(t *testing.T) []byte {
	t.Helper()
	spec := Netflix.MustScaled(0.0005)
	d := MustGenerate(spec, 5)
	var buf bytes.Buffer
	if err := WriteText(&buf, d.Train); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSplitChunksProperties(t *testing.T) {
	inputs := [][]byte{
		nil,
		[]byte(""),
		[]byte("\n"),
		[]byte("no newline at all"),
		[]byte("a\nb\nc\n"),
		[]byte("a\nb\nc"), // unterminated final line
		bytes.Repeat([]byte("line of text\n"), 100),
		append(bytes.Repeat([]byte("x"), 50), '\n'), // one long line
	}
	for _, in := range inputs {
		for _, target := range []int{1, 2, 7, 16, 1 << 20} {
			chunks := splitChunks(in, target)
			var cat []byte
			for k, c := range chunks {
				if len(c) == 0 {
					t.Fatalf("target %d: empty chunk %d of %q", target, k, in)
				}
				if k < len(chunks)-1 && c[len(c)-1] != '\n' {
					t.Fatalf("target %d: chunk %d of %q does not end at a newline: %q", target, k, in, c)
				}
				cat = append(cat, c...)
			}
			if !bytes.Equal(cat, in) {
				t.Fatalf("target %d: concatenation mismatch: %q != %q", target, cat, in)
			}
		}
	}
}

func TestReadTextParallelEquivalence(t *testing.T) {
	text := textFixture(t)
	want, err := readTextSerial(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	// Chunk sizes: smaller than a line, a handful of lines, larger than
	// the whole input (single chunk).
	for _, chunkSize := range []int{3, 64, 4096, len(text) + 1} {
		for _, workers := range []int{2, 4, 8} {
			got, err := parseTextParallel(text, workers, chunkSize)
			if err != nil {
				t.Fatalf("chunk %d workers %d: %v", chunkSize, workers, err)
			}
			if got.Rows != want.Rows || got.Cols != want.Cols {
				t.Fatalf("chunk %d: shape %dx%d, want %dx%d", chunkSize, got.Rows, got.Cols, want.Rows, want.Cols)
			}
			if !reflect.DeepEqual(got.Entries, want.Entries) {
				t.Fatalf("chunk %d workers %d: entries differ", chunkSize, workers)
			}
		}
	}
	// The public entry point agrees too.
	got, err := ReadTextWorkers(bytes.NewReader(text), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Entries, want.Entries) {
		t.Fatal("ReadTextWorkers(4) disagrees with serial")
	}
}

func TestReadTextParallelErrorsMatchSerial(t *testing.T) {
	cases := []string{
		"",                                      // empty
		"1 2\n",                                 // short header
		"a b c\n",                               // non-numeric header
		"2 2 1\n0 1\n",                          // short triple
		"2 2 1\nx y z\n",                        // non-numeric triple
		"2 2 1\n5 0 1\n",                        // out-of-range row
		"2 2 1\n0 1 2 3 4\n",                    // long triple
		"% only a comment\n",                    // no header
		"2 2 2\n0 1 3\n",                        // header nnz too large
		"2 2 0\n0 1 3\n",                        // header nnz too small
		"2 2 1\n0 1 3\n0 0 1\n0 1 2\n",          // extra triples
		"% c\n\n2 2 3\n0 0 1\n0 1 bad\n1 1 2\n", // malformed mid-stream
		"3 3 4\n0 0 1\n1 1 1\n2 2 1\n9 9 9\n",   // range error on last line
		"2 2 1\n\n\n# c\n0 1 3.5\n",             // accepted: blank/comment noise
	}
	for _, in := range cases {
		sm, serr := readTextSerial(strings.NewReader(in))
		for _, chunkSize := range []int{2, 5, 1 << 20} {
			pm, perr := parseTextParallel([]byte(in), 4, chunkSize)
			if (serr == nil) != (perr == nil) {
				t.Fatalf("%q chunk %d: serial err %v, parallel err %v", in, chunkSize, serr, perr)
			}
			if serr != nil {
				if serr.Error() != perr.Error() {
					t.Fatalf("%q chunk %d: error text differs:\n serial:   %q\n parallel: %q",
						in, chunkSize, serr, perr)
				}
				continue
			}
			if !reflect.DeepEqual(sm.Entries, pm.Entries) {
				t.Fatalf("%q chunk %d: entries differ", in, chunkSize)
			}
		}
	}
}

func TestReadTextValidatesHeaderNNZ(t *testing.T) {
	// The satellite fix: a header whose nnz disagrees with the actual
	// triple count must be a descriptive error on every path.
	in := "2 2 3\n0 1 2.5\n"
	want := `dataset: header declares 3 entries, file has 1`
	if _, err := readTextSerial(strings.NewReader(in)); err == nil || err.Error() != want {
		t.Fatalf("serial: err %v, want %q", err, want)
	}
	if _, err := parseTextParallel([]byte(in), 4, 4); err == nil || err.Error() != want {
		t.Fatalf("parallel: err %v, want %q", err, want)
	}
	if _, err := ReadText(strings.NewReader(in)); err == nil || err.Error() != want {
		t.Fatalf("ReadText: err %v, want %q", err, want)
	}
}

func mlCSVFixture() []byte {
	// Sparse, shuffled, repeating ids exercise the densification order.
	var buf bytes.Buffer
	buf.WriteString("userId,movieId,rating,timestamp\n")
	rng := sparse.NewRand(13)
	for i := 0; i < 4000; i++ {
		u := 1000 + rng.Intn(200)*7
		it := 50 + rng.Intn(300)*3
		fmt.Fprintf(&buf, "%d,%d,%.1f,%d\n", u, it, 0.5+float64(rng.Intn(9))*0.5, i)
	}
	return buf.Bytes()
}

func TestMovieLensCSVParallelEquivalence(t *testing.T) {
	csv := mlCSVFixture()
	wantM, wantMaps, err := readMovieLensSerial(bytes.NewReader(csv), ',', true)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunkSize := range []int{16, 512, len(csv) + 1} {
		gotM, gotMaps, err := parseMovieLensParallel(csv, ',', true, 4, chunkSize)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunkSize, err)
		}
		if gotM.Rows != wantM.Rows || gotM.Cols != wantM.Cols {
			t.Fatalf("chunk %d: shape %dx%d, want %dx%d", chunkSize, gotM.Rows, gotM.Cols, wantM.Rows, wantM.Cols)
		}
		if !reflect.DeepEqual(gotM.Entries, wantM.Entries) {
			t.Fatalf("chunk %d: entries differ", chunkSize)
		}
		if !reflect.DeepEqual(gotMaps, wantMaps) {
			t.Fatalf("chunk %d: IDMaps differ", chunkSize)
		}
	}
	gotM, gotMaps, err := ReadMovieLensCSVWorkers(bytes.NewReader(csv), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotM.Entries, wantM.Entries) || !reflect.DeepEqual(gotMaps, wantMaps) {
		t.Fatal("ReadMovieLensCSVWorkers(4) disagrees with serial")
	}
}

func TestMovieLensUDataParallelEquivalence(t *testing.T) {
	var buf bytes.Buffer
	rng := sparse.NewRand(17)
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&buf, "%d\t%d\t%d\t%d\n", 1+rng.Intn(50), 1+rng.Intn(80), 1+rng.Intn(5), i)
	}
	udata := buf.Bytes()
	wantM, wantMaps, err := readMovieLensSerial(bytes.NewReader(udata), '\t', false)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunkSize := range []int{8, 256, len(udata) + 1} {
		gotM, gotMaps, err := parseMovieLensParallel(udata, '\t', false, 3, chunkSize)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunkSize, err)
		}
		if !reflect.DeepEqual(gotM.Entries, wantM.Entries) || !reflect.DeepEqual(gotMaps, wantMaps) {
			t.Fatalf("chunk %d: parallel u.data load disagrees with serial", chunkSize)
		}
	}
}

func TestMovieLensParallelErrorsMatchSerial(t *testing.T) {
	cases := []struct {
		in        string
		sep       rune
		hasHeader bool
	}{
		{"", ',', true},
		{"not a header\n1,2,3\n", ',', true},
		{"userId,movieId,rating\n", ',', true},                        // header only: no ratings
		{"userId,movieId,rating\n1,2\n", ',', true},                   // short record
		{"userId,movieId,rating\nx,y,z\n", ',', true},                 // non-numeric
		{"userId,movieId,rating\n1,2,3\n4,5,bad\n6,7,1\n", ',', true}, // mid-stream
		{"\nuserId,movieId,rating\n1,2,3\n", ',', true},               // blank line 1: no header skip
		{"1\t2\n", '\t', false},
		{"1\t2\t3\n4\tbad\t5\n", '\t', false},
		{"", '\t', false},
	}
	for _, tc := range cases {
		_, _, serr := readMovieLensSerial(strings.NewReader(tc.in), tc.sep, tc.hasHeader)
		for _, chunkSize := range []int{3, 1 << 20} {
			_, _, perr := parseMovieLensParallel([]byte(tc.in), tc.sep, tc.hasHeader, 4, chunkSize)
			if (serr == nil) != (perr == nil) {
				t.Fatalf("%q chunk %d: serial err %v, parallel err %v", tc.in, chunkSize, serr, perr)
			}
			if serr != nil && serr.Error() != perr.Error() {
				t.Fatalf("%q chunk %d: error text differs:\n serial:   %q\n parallel: %q",
					tc.in, chunkSize, serr, perr)
			}
		}
	}
}

func TestReadBinaryBlockEquivalence(t *testing.T) {
	spec := Netflix.MustScaled(0.0005)
	d := MustGenerate(spec, 23)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d.Train); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	want, err := ReadBinarySerial(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != want.Rows || got.Cols != want.Cols || !reflect.DeepEqual(got.Entries, want.Entries) {
		t.Fatal("block reader disagrees with per-record reader")
	}

	// Truncations: mid-record, at a record boundary, inside the header.
	for _, cut := range []int{len(data) - 5, len(data) - recordSize, len(data) - 2*recordSize - 7, 30, 10, 3} {
		_, serr := ReadBinarySerial(bytes.NewReader(data[:cut]))
		_, perr := ReadBinary(bytes.NewReader(data[:cut]))
		if serr == nil || perr == nil {
			t.Fatalf("cut %d: truncation accepted (serial %v, block %v)", cut, serr, perr)
		}
		if serr.Error() != perr.Error() {
			t.Fatalf("cut %d: error text differs:\n serial: %q\n block:  %q", cut, serr, perr)
		}
	}
}

func TestWriteTextMatchesFmtRendering(t *testing.T) {
	m := sparse.NewCOO(10, 10, 0)
	m.Add(0, 1, 4.5)
	m.Add(3, 2, -0.125)
	m.Add(9, 9, 1e-7)
	m.Add(5, 0, 3)
	m.Add(7, 4, 2.0000002) // needs float32 shortest-representation digits
	var got bytes.Buffer
	if err := WriteText(&got, m); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	fmt.Fprintf(&want, "%d %d %d\n", m.Rows, m.Cols, m.NNZ())
	for _, e := range m.Entries {
		fmt.Fprintf(&want, "%d %d %g\n", e.U, e.I, e.V)
	}
	if got.String() != want.String() {
		t.Fatalf("WriteText drifted from the fmt rendering:\n got: %q\nwant: %q", got.String(), want.String())
	}
}

func TestWriteBinaryBlockBoundary(t *testing.T) {
	// A matrix whose record stream crosses several 64 KiB blocks and ends
	// exactly at a block boundary must round-trip.
	perBlock := ioWriteBlock / recordSize
	n := perBlock*2 - 1 // header consumes part of block 1, so stream ends mid/edge
	m := sparse.NewCOO(1000, 1000, n)
	rng := sparse.NewRand(3)
	for i := 0; i < n; i++ {
		m.Add(int32(rng.Intn(1000)), int32(rng.Intn(1000)), rng.Float32())
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Entries, m.Entries) {
		t.Fatal("multi-block round trip changed entries")
	}
}
