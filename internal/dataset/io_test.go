package dataset

import (
	"bytes"
	"strings"
	"testing"

	"hccmf/internal/sparse"
)

func newTestRand(seed uint64) *sparse.Rand { return sparse.NewRand(seed) }

func smallMatrix() *sparse.COO {
	m := sparse.NewCOO(3, 4, 4)
	m.Add(0, 1, 4.5)
	m.Add(1, 3, 2)
	m.Add(2, 0, 5)
	m.Add(2, 2, 1.5)
	return m
}

func TestTextRoundTrip(t *testing.T) {
	m := smallMatrix()
	var buf bytes.Buffer
	if err := WriteText(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() {
		t.Fatalf("shape changed: %dx%d/%d", back.Rows, back.Cols, back.NNZ())
	}
	for i := range m.Entries {
		if back.Entries[i] != m.Entries[i] {
			t.Fatalf("entry %d: %v != %v", i, back.Entries[i], m.Entries[i])
		}
	}
}

func TestReadTextSkipsComments(t *testing.T) {
	in := "% comment\n# another\n2 2 1\n\n0 1 3.5\n"
	m, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 1 || m.Entries[0].V != 3.5 {
		t.Fatalf("parsed %+v", m.Entries)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",                   // empty
		"1 2\n",              // short header
		"a b c\n",            // non-numeric header
		"2 2 1\n0 1\n",       // short triple
		"2 2 1\nx y z\n",     // non-numeric triple
		"2 2 1\n5 0 1\n",     // out of range row
		"2 2 1\n0 1 2 3 4\n", // long triple
		"% only a comment\n", // no header
		"2 2 2\n0 1 3\n",     // header declares more entries than present
		"2 2 0\n0 1 3\n",     // header declares fewer entries than present
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("ReadText(%q) succeeded, want error", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	m := smallMatrix()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != m.Rows || back.Cols != m.Cols {
		t.Fatalf("shape changed")
	}
	for i := range m.Entries {
		if back.Entries[i] != m.Entries[i] {
			t.Fatalf("entry %d: %v != %v", i, back.Entries[i], m.Entries[i])
		}
	}
}

func TestBinaryRoundTripLarge(t *testing.T) {
	spec := Netflix.MustScaled(0.001)
	d := MustGenerate(spec, 11)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d.Train); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != d.Train.NNZ() {
		t.Fatalf("nnz %d != %d", back.NNZ(), d.Train.NNZ())
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadBinary(strings.NewReader("XXXX")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Valid magic, truncated header.
	if _, err := ReadBinary(strings.NewReader("HCMF\x01\x00")); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Truncated records.
	m := smallMatrix()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated records accepted")
	}
}

func TestReadBinaryRejectsWrongVersion(t *testing.T) {
	m := smallMatrix()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version byte
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestTextBinaryAgree(t *testing.T) {
	spec := MovieLens20M.MustScaled(0.002)
	d := MustGenerate(spec, 21)
	var tb, bb bytes.Buffer
	if err := WriteText(&tb, d.Train); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bb, d.Train); err != nil {
		t.Fatal(err)
	}
	fromText, err := ReadText(&tb)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadBinary(&bb)
	if err != nil {
		t.Fatal(err)
	}
	if fromText.NNZ() != fromBin.NNZ() {
		t.Fatalf("text %d entries, binary %d", fromText.NNZ(), fromBin.NNZ())
	}
	for i := range fromText.Entries {
		a, b := fromText.Entries[i], fromBin.Entries[i]
		if a.U != b.U || a.I != b.I {
			t.Fatalf("entry %d coordinates differ: %v vs %v", i, a, b)
		}
		// Text goes through %g so only ~7 significant digits survive.
		if diff := a.V - b.V; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("entry %d values differ: %v vs %v", i, a.V, b.V)
		}
	}
}
