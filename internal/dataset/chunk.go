package dataset

import (
	"bytes"
	"io"
	"math"
	"os"
	"strconv"
	"unicode"
	"unicode/utf8"
	"unsafe"
)

// Chunked zero-copy scanning primitives shared by the parallel text and
// MovieLens parsers. The input is loaded as one byte buffer, cut into
// ~ioChunkSize pieces at newline boundaries, and each chunk is parsed by a
// worker with byte-slice field scanning — no bufio.Scanner tokens, no
// strings.Fields allocations. Fields are handed to strconv through an
// unsafe zero-copy string view, so the steady-state parse loop does not
// allocate at all.

// ioChunkSize is the target byte size of one parser chunk. ~1 MiB keeps
// per-chunk bookkeeping negligible while giving even modest files enough
// chunks to spread across workers.
const ioChunkSize = 1 << 20

// maxLineBytes mirrors the 1 MiB bufio.Scanner buffer of the serial
// parsers: lines at or beyond this length are rejected with the scanner's
// own bufio.ErrTooLong, keeping the parallel paths' accept/reject behaviour
// identical to the serial reference.
const maxLineBytes = 1 << 20

// splitChunks cuts buf into chunks of roughly target bytes, extending each
// chunk to the next newline so no line is ever split across chunks. The
// concatenation of the returned chunks is exactly buf, chunks are never
// empty, and every chunk except possibly the last ends with '\n'.
func splitChunks(buf []byte, target int) [][]byte {
	if target < 1 {
		target = 1
	}
	chunks := make([][]byte, 0, len(buf)/target+1)
	for len(buf) > 0 {
		if len(buf) <= target {
			chunks = append(chunks, buf)
			break
		}
		cut := target
		nl := bytes.IndexByte(buf[cut:], '\n')
		if nl < 0 {
			chunks = append(chunks, buf)
			break
		}
		cut += nl + 1
		chunks = append(chunks, buf[:cut])
		buf = buf[cut:]
	}
	return chunks
}

// nextLine splits buf into its first line (without the trailing '\n') and
// the remainder after the newline. The final line of a buffer may lack a
// terminator. A trailing '\r' is NOT stripped here — the parsers TrimSpace
// every line anyway, and keeping the raw length makes the maxLineBytes
// check agree exactly with bufio.Scanner's buffer-full accounting.
func nextLine(buf []byte) (line, rest []byte) {
	if nl := bytes.IndexByte(buf, '\n'); nl >= 0 {
		return buf[:nl], buf[nl+1:]
	}
	return buf, nil
}

// asciiSpace marks the ASCII whitespace bytes, the same set strings.Fields
// uses for its fast path.
var asciiSpace = [256]uint8{'\t': 1, '\n': 1, '\v': 1, '\f': 1, '\r': 1, ' ': 1}

// nextField returns the first whitespace-separated field of s and the rest
// of s after it, splitting exactly like strings.Fields (Unicode whitespace
// included). A nil field means no field remains.
func nextField(s []byte) (field, rest []byte) {
	i := 0
	for i < len(s) {
		if c := s[i]; c < utf8.RuneSelf {
			if asciiSpace[c] == 0 {
				break
			}
			i++
		} else {
			r, size := utf8.DecodeRune(s[i:])
			if !unicode.IsSpace(r) {
				break
			}
			i += size
		}
	}
	if i == len(s) {
		return nil, nil
	}
	start := i
	for i < len(s) {
		if c := s[i]; c < utf8.RuneSelf {
			if asciiSpace[c] != 0 {
				break
			}
			i++
		} else {
			r, size := utf8.DecodeRune(s[i:])
			if unicode.IsSpace(r) {
				break
			}
			i += size
		}
	}
	return s[start:i], s[i:]
}

// bstr reinterprets b as a string without copying. The view must not
// outlive b, and b must not be mutated while the view is live; the parsers
// only pass it to strconv, which retains nothing on success (the error
// path copies into a NumError, which the callers discard in favour of
// their own messages).
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// asciiFields3 splits a line into exactly three whitespace-separated
// fields with a pure byte-table scan — the hot-path form of three
// nextField calls plus an extra-field check. ascii reports whether the
// whole line is ASCII; when false the caller must fall back to the
// Unicode-aware nextField path (a byte ≥ 0x80 could be UTF-8 whitespace).
// exact reports whether the line holds exactly three fields.
func asciiFields3(s []byte) (f0, f1, f2 []byte, exact, ascii bool) {
	i, n := 0, len(s)
	for f := 0; f < 3; f++ {
		for i < n && asciiSpace[s[i]] != 0 {
			i++
		}
		start := i
		for i < n {
			c := s[i]
			if c >= utf8.RuneSelf {
				return nil, nil, nil, false, false
			}
			if asciiSpace[c] != 0 {
				break
			}
			i++
		}
		if i == start {
			return f0, f1, f2, false, true // fewer than three fields
		}
		switch f {
		case 0:
			f0 = s[start:i]
		case 1:
			f1 = s[start:i]
		case 2:
			f2 = s[start:i]
		}
	}
	for i < n {
		c := s[i]
		if c >= utf8.RuneSelf {
			return nil, nil, nil, false, false
		}
		if asciiSpace[c] == 0 {
			return f0, f1, f2, false, true // a fourth field
		}
		i++
	}
	return f0, f1, f2, true, true
}

// parseDigits32 is the fast path for unsigned decimal int32 fields: pure
// digit strings of at most nine digits (so the value always fits). ok is
// false for anything else — signs, overflow-length, stray bytes — which
// the caller sends through strconv for identical accept/reject behaviour.
func parseDigits32(b []byte) (int32, bool) {
	if len(b) == 0 || len(b) > 9 {
		return 0, false
	}
	var v int32
	for _, c := range b {
		d := c - '0'
		if d > 9 {
			return 0, false
		}
		v = v*10 + int32(d)
	}
	return v, true
}

// parseDigits64 is parseDigits32 for int64 fields (≤ 18 digits).
func parseDigits64(b []byte) (int64, bool) {
	if len(b) == 0 || len(b) > 18 {
		return 0, false
	}
	var v int64
	for _, c := range b {
		d := c - '0'
		if d > 9 {
			return 0, false
		}
		v = v*10 + int64(d)
	}
	return v, true
}

// parseI32 parses a base-10 int32 field: digit fast path first, strconv
// for everything else, so results and errors match ParseInt exactly.
func parseI32(b []byte) (int32, error) {
	if v, ok := parseDigits32(b); ok {
		return v, nil
	}
	v, err := strconv.ParseInt(bstr(b), 10, 32)
	return int32(v), err
}

// parseI64 is parseI32 for 64-bit ids.
func parseI64(b []byte) (int64, error) {
	if v, ok := parseDigits64(b); ok {
		return v, nil
	}
	return strconv.ParseInt(bstr(b), 10, 64)
}

// pow10f64 holds the exactly-representable float64 powers of ten.
var pow10f64 = [23]float64{
	1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// float32pow10 holds the exactly-representable float32 powers of ten, the
// same table strconv's atof32exact divides by.
var float32pow10 = [11]float32{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}

// foldDecimal converts an unsigned decimal mantissa with frac fractional
// digits (frac == -1 for integers) bit-identically to ParseFloat(s, 32).
//
// Two tiers, both producing correctly rounded results:
//
//   - value < 2^23 with ≤ 10 fractional digits: float32(mant) divided by
//     an exact float32 power of ten — exact operands, one correctly
//     rounded operation; this mirrors strconv's own atof32exact path.
//   - ≤ 15 digits: float64(mant) / 10^frac is the correctly rounded
//     float64 of the exact decimal (both operands exact, one division).
//     Rounding that float64 down to float32 is correct unless it lands
//     exactly on a float32 rounding midpoint (low 29 mantissa bits equal
//     100…0), where double rounding could break ties the wrong way —
//     those rare cases return ok=false and go through strconv.
//
// Everything else — no digits, a trailing '.', > 15 digits (mant may have
// wrapped) — is rejected for the strconv fallback, never mis-converted.
func foldDecimal(mant uint64, digits, frac int) (float32, bool) {
	if digits == 0 || digits > 15 || frac == 0 {
		return 0, false
	}
	if mant < 1<<23 && frac <= 10 {
		f := float32(mant)
		if frac > 0 {
			f /= float32pow10[frac]
		}
		return f, true
	}
	f := float64(mant)
	if frac > 0 {
		f /= pow10f64[frac]
	}
	if bits := math.Float64bits(f); bits&(1<<29-1) == 1<<28 {
		return 0, false // exactly a float32 midpoint: ambiguous under double rounding
	}
	return float32(f), true
}

// parseFloat32Fast converts unsigned plain-decimal fields — `d+` or
// `d+.d+`, no sign, no exponent — bit-identically to ParseFloat(s, 32)
// via foldDecimal. Anything else (signs, exponents, hex, inf/NaN) returns
// ok=false for the strconv fallback.
func parseFloat32Fast(b []byte) (float32, bool) {
	if len(b) == 0 || len(b) > 16 {
		return 0, false
	}
	var mant uint64
	digits, frac := 0, -1
	for _, c := range b {
		if c == '.' {
			if frac >= 0 {
				return 0, false
			}
			frac = 0
			continue
		}
		d := c - '0'
		if d > 9 {
			return 0, false
		}
		mant = mant*10 + uint64(d)
		digits++
		if frac >= 0 {
			frac++
		}
	}
	return foldDecimal(mant, digits, frac)
}

// parseTripleFast is the fused scanner+parser for the dominant text line
// shape: `d+[ \t]+d+[ \t]+d+(.d+)?` with nothing after the rating — one
// flat pass, no field slicing. ok=false sends the line to the general
// field-scanner path, so anything irregular (signs, extra fields, exotic
// whitespace, long digit runs, ambiguous float rounding) is parsed with
// byte-exact strings.Fields/strconv semantics instead.
func parseTripleFast(s []byte) (u, i int32, v float32, ok bool) {
	n := len(s)
	pos, start := 0, 0
	for pos < n {
		d := s[pos] - '0'
		if d > 9 {
			break
		}
		u = u*10 + int32(d)
		pos++
	}
	if pos == start || pos-start > 9 || pos >= n || (s[pos] != ' ' && s[pos] != '\t') {
		return 0, 0, 0, false
	}
	for pos < n && (s[pos] == ' ' || s[pos] == '\t') {
		pos++
	}
	start = pos
	for pos < n {
		d := s[pos] - '0'
		if d > 9 {
			break
		}
		i = i*10 + int32(d)
		pos++
	}
	if pos == start || pos-start > 9 || pos >= n || (s[pos] != ' ' && s[pos] != '\t') {
		return 0, 0, 0, false
	}
	for pos < n && (s[pos] == ' ' || s[pos] == '\t') {
		pos++
	}
	var mant uint64
	digits, frac := 0, -1
	for pos < n {
		c := s[pos]
		if c == '.' {
			if frac >= 0 {
				return 0, 0, 0, false
			}
			frac = 0
			pos++
			continue
		}
		d := c - '0'
		if d > 9 {
			break
		}
		mant = mant*10 + uint64(d)
		digits++
		if frac >= 0 {
			frac++
		}
		pos++
	}
	if pos != n {
		return 0, 0, 0, false // a fourth field, or a stray byte in the rating
	}
	v, ok = foldDecimal(mant, digits, frac)
	if !ok {
		return 0, 0, 0, false
	}
	return u, i, v, true
}

// parseWS3Fast is parseTripleFast for MovieLens u.data lines: int64 ids,
// and anything after the rating is ignored as long as it is separated by
// whitespace (the timestamp column).
func parseWS3Fast(s []byte) (a, b int64, v float32, ok bool) {
	n := len(s)
	pos, start := 0, 0
	for pos < n {
		d := s[pos] - '0'
		if d > 9 {
			break
		}
		a = a*10 + int64(d)
		pos++
	}
	if pos == start || pos-start > 18 || pos >= n || (s[pos] != ' ' && s[pos] != '\t') {
		return 0, 0, 0, false
	}
	for pos < n && (s[pos] == ' ' || s[pos] == '\t') {
		pos++
	}
	start = pos
	for pos < n {
		d := s[pos] - '0'
		if d > 9 {
			break
		}
		b = b*10 + int64(d)
		pos++
	}
	if pos == start || pos-start > 18 || pos >= n || (s[pos] != ' ' && s[pos] != '\t') {
		return 0, 0, 0, false
	}
	for pos < n && (s[pos] == ' ' || s[pos] == '\t') {
		pos++
	}
	var mant uint64
	digits, frac := 0, -1
	for pos < n {
		c := s[pos]
		if c == '.' {
			if frac >= 0 {
				return 0, 0, 0, false
			}
			frac = 0
			pos++
			continue
		}
		d := c - '0'
		if d > 9 {
			break
		}
		mant = mant*10 + uint64(d)
		digits++
		if frac >= 0 {
			frac++
		}
		pos++
	}
	// The rating must end the line or be followed by whitespace (extra
	// fields are ignored by the u.data format).
	if pos < n && s[pos] != ' ' && s[pos] != '\t' {
		return 0, 0, 0, false
	}
	v, ok = foldDecimal(mant, digits, frac)
	if !ok {
		return 0, 0, 0, false
	}
	return a, b, v, true
}

// parseCSV3Fast is the fused parser for ratings.csv lines: three
// comma-separated fields (int64, int64, plain decimal), any further
// comma-separated columns ignored.
func parseCSV3Fast(s []byte) (a, b int64, v float32, ok bool) {
	n := len(s)
	pos, start := 0, 0
	for pos < n {
		d := s[pos] - '0'
		if d > 9 {
			break
		}
		a = a*10 + int64(d)
		pos++
	}
	if pos == start || pos-start > 18 || pos >= n || s[pos] != ',' {
		return 0, 0, 0, false
	}
	pos++
	start = pos
	for pos < n {
		d := s[pos] - '0'
		if d > 9 {
			break
		}
		b = b*10 + int64(d)
		pos++
	}
	if pos == start || pos-start > 18 || pos >= n || s[pos] != ',' {
		return 0, 0, 0, false
	}
	pos++
	var mant uint64
	digits, frac := 0, -1
	for pos < n {
		c := s[pos]
		if c == '.' {
			if frac >= 0 {
				return 0, 0, 0, false
			}
			frac = 0
			pos++
			continue
		}
		d := c - '0'
		if d > 9 {
			break
		}
		mant = mant*10 + uint64(d)
		digits++
		if frac >= 0 {
			frac++
		}
		pos++
	}
	// The rating field must run to the end of the line or to the comma
	// starting the ignored remainder (e.g. the timestamp column).
	if pos < n && s[pos] != ',' {
		return 0, 0, 0, false
	}
	v, ok = foldDecimal(mant, digits, frac)
	if !ok {
		return 0, 0, 0, false
	}
	return a, b, v, true
}

// parseF32 parses a float32 rating field: plain-decimal fast path first,
// strconv for everything else, so results and errors match ParseFloat
// exactly.
func parseF32(b []byte) (float32, error) {
	if v, ok := parseFloat32Fast(b); ok {
		return v, nil
	}
	v, err := strconv.ParseFloat(bstr(b), 32)
	return float32(v), err
}

// readAllBytes slurps r. Ingestion parses from one contiguous buffer so
// chunk boundaries can be cut without copying; when the source exposes
// its size (bytes.Reader/Buffer, regular files) the buffer is allocated
// once instead of doubling through io.ReadAll.
func readAllBytes(r io.Reader) ([]byte, error) {
	hint := 0
	switch v := r.(type) {
	case interface{ Len() int }:
		hint = v.Len()
	case *os.File:
		if st, err := v.Stat(); err == nil && st.Mode().IsRegular() {
			if sz := st.Size(); sz > 0 && sz < 1<<40 {
				hint = int(sz)
			}
		}
	}
	buf := make([]byte, 0, hint+512)
	for {
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return nil, err
		}
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
	}
}
