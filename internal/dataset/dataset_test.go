package dataset

import (
	"math"
	"testing"
)

func TestPresetsMatchPaperTable3(t *testing.T) {
	cases := []struct {
		name string
		m, n int
		nnz  int64
	}{
		{"netflix", 480190, 17771, 99072112},
		{"r1", 1948883, 1101750, 115579437},
		{"r1star", 1948883, 1101750, 199999997},
		{"r2", 1000000, 136736, 383838609},
		{"ml-20m", 138494, 131263, 20000260},
	}
	for _, c := range cases {
		s, err := Lookup(c.name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", c.name, err)
		}
		if s.M != c.m || s.N != c.n || s.NNZ != c.nnz {
			t.Errorf("%s: got (%d,%d,%d), want (%d,%d,%d)", c.name, s.M, s.N, s.NNZ, c.m, c.n, c.nnz)
		}
		if s.Params.Gamma != 0.005 {
			t.Errorf("%s: gamma = %v, want 0.005", c.name, s.Params.Gamma)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup of unknown preset succeeded")
	}
}

func TestLambdasMatchPaper(t *testing.T) {
	if Netflix.Params.Lambda1 != 0.01 {
		t.Errorf("netflix λ = %v, want 0.01", Netflix.Params.Lambda1)
	}
	if YahooR1.Params.Lambda1 != 1 {
		t.Errorf("r1 λ = %v, want 1", YahooR1.Params.Lambda1)
	}
	if YahooR2.Params.Lambda1 != 0.01 {
		t.Errorf("r2 λ = %v, want 0.01", YahooR2.Params.Lambda1)
	}
}

func TestScaled(t *testing.T) {
	s := Netflix.MustScaled(0.01)
	if s.M != 4801 || s.N != 177 {
		t.Fatalf("scaled dims = (%d,%d)", s.M, s.N)
	}
	// 1% of nnz would be 990721, but the shrunken 4801×177 matrix only has
	// 849777 cells, so the clamp to dense capacity must kick in.
	if s.NNZ != int64(s.M)*int64(s.N) {
		t.Fatalf("scaled nnz = %d, want dense clamp %d", s.NNZ, int64(s.M)*int64(s.N))
	}
	s2 := Netflix.MustScaled(0.1)
	if s2.NNZ != 9907211 {
		t.Fatalf("scaled(0.1) nnz = %d, want 9907211", s2.NNZ)
	}
	if s.Params != Netflix.Params {
		t.Fatal("scaling changed hyper-parameters")
	}
}

func TestScaledClampsToDense(t *testing.T) {
	s := YahooR2.MustScaled(0.0001) // would be denser than full
	if s.NNZ > int64(s.M)*int64(s.N) {
		t.Fatalf("scaled nnz %d exceeds dense capacity %d", s.NNZ, int64(s.M)*int64(s.N))
	}
}

func TestScaledRejectsBadFactor(t *testing.T) {
	for _, f := range []float64{0, -1, 1.5} {
		if _, err := Netflix.Scaled(f); err == nil {
			t.Fatalf("Scaled(%v) did not error", f)
		}
	}
	// MustScaled trades the error for a panic, by name.
	defer func() {
		if recover() == nil {
			t.Fatal("MustScaled(0) did not panic")
		}
	}()
	Netflix.MustScaled(0)
}

func TestDensityAndDimRatio(t *testing.T) {
	d := Netflix.Density()
	want := float64(Netflix.NNZ) / (float64(Netflix.M) * float64(Netflix.N))
	if math.Abs(d-want) > 1e-15 {
		t.Fatalf("Density = %v, want %v", d, want)
	}
	// The paper's limitation analysis: ML-20m has a small nnz/(m+n).
	if MovieLens20M.DimRatio() > 100 {
		t.Fatalf("ml-20m DimRatio = %v, expected < 100", MovieLens20M.DimRatio())
	}
	if Netflix.DimRatio() < 190 {
		t.Fatalf("netflix DimRatio = %v, expected ~199", Netflix.DimRatio())
	}
}

func TestGenerateSmall(t *testing.T) {
	spec := Netflix.MustScaled(0.002)
	d, err := Generate(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := d.Train.NNZ() + d.Test.NNZ()
	if int64(total) != spec.NNZ {
		t.Fatalf("generated %d entries, want %d", total, spec.NNZ)
	}
	if err := d.Train.Validate(); err != nil {
		t.Fatalf("train invalid: %v", err)
	}
	if err := d.Test.Validate(); err != nil {
		t.Fatalf("test invalid: %v", err)
	}
	testFrac := float64(d.Test.NNZ()) / float64(total)
	if testFrac < 0.07 || testFrac > 0.13 {
		t.Fatalf("test fraction %v, want ~0.1", testFrac)
	}
}

func TestGenerateRatingsInScale(t *testing.T) {
	spec := YahooR2.MustScaled(0.0005)
	d := MustGenerate(spec, 7)
	for _, e := range d.Train.Entries {
		if e.V < spec.RatingMin || e.V > spec.RatingMax {
			t.Fatalf("rating %v outside [%v,%v]", e.V, spec.RatingMin, spec.RatingMax)
		}
		// Quantised to the step grid.
		steps := float64(e.V-spec.RatingMin) / float64(spec.RatingStep)
		if math.Abs(steps-math.Round(steps)) > 1e-4 {
			t.Fatalf("rating %v not on step grid %v", e.V, spec.RatingStep)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Netflix.MustScaled(0.001)
	a := MustGenerate(spec, 99)
	b := MustGenerate(spec, 99)
	if a.Train.NNZ() != b.Train.NNZ() {
		t.Fatal("same-seed generation differs in train size")
	}
	for i := range a.Train.Entries {
		if a.Train.Entries[i] != b.Train.Entries[i] {
			t.Fatal("same-seed generation produced different entries")
		}
	}
	c := MustGenerate(spec, 100)
	same := true
	for i := 0; i < 100 && i < len(a.Train.Entries); i++ {
		if a.Train.Entries[i] != c.Train.Entries[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical entry prefix")
	}
}

func TestGeneratePopularitySkew(t *testing.T) {
	spec := Netflix.MustScaled(0.005)
	d := MustGenerate(spec, 3)
	counts := d.Train.ColCounts()
	// With theta=0.9 the most popular ~1% of items should hold far more
	// than 1% of ratings.
	top := spec.N / 100
	if top < 1 {
		top = 1
	}
	// counts is indexed by item id; the zipf sampler makes low ids popular.
	var topSum, total int
	for i, c := range counts {
		total += c
		if i < top {
			topSum += c
		}
	}
	frac := float64(topSum) / float64(total)
	if frac < 0.05 {
		t.Fatalf("top 1%% of items hold only %.3f of ratings; skew missing", frac)
	}
}

func TestGenerateRejectsOversized(t *testing.T) {
	if _, err := Generate(YahooR2, 1); err == nil {
		t.Fatal("full-size R2 generation should refuse (needs >4GiB)")
	}
}

func TestGenerateRejectsBadSpec(t *testing.T) {
	bad := Spec{Name: "bad", M: 0, N: 10, NNZ: 5, Rank: 4}
	if _, err := Generate(bad, 1); err == nil {
		t.Fatal("zero-row spec accepted")
	}
	bad = Spec{Name: "bad", M: 10, N: 10, NNZ: 5, Rank: 0}
	if _, err := Generate(bad, 1); err == nil {
		t.Fatal("zero-rank spec accepted")
	}
}

func TestZipfSamplerUniformFallback(t *testing.T) {
	rngSeed := uint64(5)
	z := newZipfSampler(newTestRand(rngSeed), 10, 0)
	var hist [10]int
	for i := 0; i < 10000; i++ {
		hist[z.Next()]++
	}
	for i, c := range hist {
		if c < 700 || c > 1300 {
			t.Fatalf("uniform fallback bucket %d has %d/10000 draws", i, c)
		}
	}
}

func TestZipfSamplerSkew(t *testing.T) {
	z := newZipfSampler(newTestRand(5), 1000, 0.99)
	var first10 int
	const n = 20000
	for i := 0; i < n; i++ {
		if z.Next() < 10 {
			first10++
		}
	}
	if frac := float64(first10) / n; frac < 0.2 {
		t.Fatalf("zipf(0.99): first 10 of 1000 ids drew %.3f of samples, want > 0.2", frac)
	}
}

func TestZipfSamplerSingleItem(t *testing.T) {
	z := newZipfSampler(newTestRand(1), 1, 0.9)
	for i := 0; i < 10; i++ {
		if z.Next() != 0 {
			t.Fatal("n=1 sampler returned non-zero index")
		}
	}
}
