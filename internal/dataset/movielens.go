package dataset

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"

	"hccmf/internal/parallel"
	"hccmf/internal/sparse"
)

// MovieLens loaders: the reproduction generates ML-20m-shaped synthetic
// data by default, but users with the real archives can train on them
// directly. Two formats are supported:
//
//   - ratings.csv (ML-20m/25m): header "userId,movieId,rating,timestamp",
//     comma-separated.
//   - u.data (ML-100k): "user \t item \t rating \t timestamp".
//
// MovieLens ids are sparse and 1-based; the loader densifies them and
// returns the id maps so predictions can be translated back.
//
// Like the text reader, each loader has a serial reference path and a
// chunked parallel path. Densification is deterministic in both: dense
// indexes are assigned in first-appearance input order, so the parallel
// loader runs in two phases — workers emit original ids plus triples
// indexed by chunk-local id tables, then a sequential merge walks chunks
// in input order and assigns global dense indexes. The resulting COO and
// IDMaps are identical to the serial loader's.

// IDMaps records the original-id ↔ dense-index correspondence of a loaded
// dataset.
type IDMaps struct {
	// UserIndex maps original user id → dense row.
	UserIndex map[int64]int32
	// ItemIndex maps original item id → dense column.
	ItemIndex map[int64]int32
	// Users and Items invert the maps: Users[row] = original user id.
	Users []int64
	Items []int64
}

// ReadMovieLensCSV parses a ratings.csv stream with GOMAXPROCS workers.
func ReadMovieLensCSV(r io.Reader) (*sparse.COO, *IDMaps, error) {
	return ReadMovieLensCSVWorkers(r, runtime.GOMAXPROCS(0))
}

// ReadMovieLensCSVWorkers parses a ratings.csv stream with the given
// worker count; workers <= 1 runs the serial reference path.
func ReadMovieLensCSVWorkers(r io.Reader, workers int) (*sparse.COO, *IDMaps, error) {
	return readMovieLens(r, ',', true, workers)
}

// ReadMovieLensUData parses a u.data stream with GOMAXPROCS workers.
func ReadMovieLensUData(r io.Reader) (*sparse.COO, *IDMaps, error) {
	return ReadMovieLensUDataWorkers(r, runtime.GOMAXPROCS(0))
}

// ReadMovieLensUDataWorkers parses a u.data stream with the given worker
// count; workers <= 1 runs the serial reference path.
func ReadMovieLensUDataWorkers(r io.Reader, workers int) (*sparse.COO, *IDMaps, error) {
	return readMovieLens(r, '\t', false, workers)
}

func readMovieLens(r io.Reader, sep rune, hasHeader bool, workers int) (*sparse.COO, *IDMaps, error) {
	if workers <= 1 {
		return readMovieLensSerial(r, sep, hasHeader)
	}
	buf, err := readAllBytes(r)
	if err != nil {
		return nil, nil, err
	}
	return parseMovieLensParallel(buf, sep, hasHeader, workers, ioChunkSize)
}

// readMovieLensSerial is the serial reference loader.
func readMovieLensSerial(r io.Reader, sep rune, hasHeader bool) (*sparse.COO, *IDMaps, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	maps := &IDMaps{
		UserIndex: make(map[int64]int32),
		ItemIndex: make(map[int64]int32),
	}
	type triple struct {
		u, i int32
		v    float32
	}
	var triples []triple
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if hasHeader && lineNo == 1 {
			if !strings.Contains(strings.ToLower(line), "userid") {
				return nil, nil, fmt.Errorf("dataset: line 1: expected ratings.csv header, got %q", line)
			}
			continue
		}
		fields := splitSep(line, sep)
		if len(fields) < 3 {
			return nil, nil, fmt.Errorf("dataset: line %d: want ≥3 fields, got %q", lineNo, line)
		}
		uid, err1 := strconv.ParseInt(fields[0], 10, 64)
		iid, err2 := strconv.ParseInt(fields[1], 10, 64)
		rating, err3 := strconv.ParseFloat(fields[2], 32)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, nil, fmt.Errorf("dataset: line %d: bad record %q", lineNo, line)
		}
		triples = append(triples, triple{
			u: maps.denseUser(uid),
			i: maps.denseItem(iid),
			v: float32(rating),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(triples) == 0 {
		return nil, nil, fmt.Errorf("dataset: no ratings found")
	}
	m := sparse.NewCOO(len(maps.Users), len(maps.Items), len(triples))
	for _, t := range triples {
		m.Add(t.u, t.i, t.v)
	}
	return m, maps, nil
}

func splitSep(line string, sep rune) []string {
	if sep == '\t' {
		return strings.Fields(line) // u.data sometimes uses spaces
	}
	return strings.Split(line, string(sep))
}

// mlTriple is one parsed rating whose ids point into the chunk-local id
// tables (phase one of the deterministic densification).
type mlTriple struct {
	u, i int32
	v    float32
}

// mlChunkResult is one chunk's phase-one output: triples over chunk-local
// dense ids, the original ids in chunk-local first-appearance order, and
// the same deferred error bookkeeping as the text parser.
type mlChunkResult struct {
	triples []mlTriple
	users   []int64 // original user ids, local first-appearance order
	items   []int64
	lines   int
	errLine int
	mkErr   func(line int) error
	rawErr  error
}

// parseMovieLensParallel is the chunked two-phase loader. Phase one parses
// chunks concurrently with chunk-local id tables; phase two walks chunks
// in input order, folds each local table into the global IDMaps (assigning
// dense indexes in global first-appearance order — chunk order preserves
// input order, and local first-appearance order preserves in-chunk order),
// and remaps triples through a local→global index array. Per-rating map
// lookups happen only in phase one, on the workers.
func parseMovieLensParallel(buf []byte, sep rune, hasHeader bool, workers, chunkSize int) (*sparse.COO, *IDMaps, error) {
	prologueLines := 0
	if hasHeader && len(buf) > 0 {
		var line []byte
		line, buf = nextLine(buf)
		prologueLines = 1
		if len(line) >= maxLineBytes {
			return nil, nil, bufio.ErrTooLong
		}
		trimmed := bytes.TrimSpace(line)
		// A blank first line is not a header — it is just skipped, exactly
		// like the serial loop's empty-line continue.
		if len(trimmed) > 0 && !bytes.Contains(bytes.ToLower(trimmed), []byte("userid")) {
			return nil, nil, fmt.Errorf("dataset: line 1: expected ratings.csv header, got %q", trimmed)
		}
	}

	chunks := splitChunks(buf, chunkSize)
	results := make([]mlChunkResult, len(chunks))
	parallel.Chunks(len(chunks), 1, workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			results[j] = parseMovieLensChunk(chunks[j], sep)
		}
	})

	line := prologueLines
	total := 0
	for j := range results {
		res := &results[j]
		if res.errLine > 0 {
			return nil, nil, res.mkErr(line + res.errLine)
		}
		if res.rawErr != nil {
			return nil, nil, res.rawErr
		}
		line += res.lines
		total += len(res.triples)
	}
	if total == 0 {
		return nil, nil, fmt.Errorf("dataset: no ratings found")
	}

	maps := &IDMaps{
		UserIndex: make(map[int64]int32),
		ItemIndex: make(map[int64]int32),
	}
	for j := range results {
		res := &results[j]
		localU := make([]int32, len(res.users))
		for k, id := range res.users {
			localU[k] = maps.denseUser(id)
		}
		localI := make([]int32, len(res.items))
		for k, id := range res.items {
			localI[k] = maps.denseItem(id)
		}
		// Stash the translations for the final build pass.
		res.users = nil
		res.items = nil
		for k := range res.triples {
			res.triples[k].u = localU[res.triples[k].u]
			res.triples[k].i = localI[res.triples[k].i]
		}
	}
	m := sparse.NewCOO(len(maps.Users), len(maps.Items), total)
	for j := range results {
		for _, t := range results[j].triples {
			m.Add(t.u, t.i, t.v)
		}
	}
	return m, maps, nil
}

// idTable is an open-addressing int64→int32 table for chunk-local id
// densification. It replaces map[int64]int32 on the per-rating hot path:
// no hash interface, no bucket indirection, no per-insert allocation —
// one multiply, one probe chain over flat arrays.
type idTable struct {
	keys    []int64 // power-of-two length; 0 marks an empty slot
	vals    []int32
	n       int
	hasZero bool // id 0 cannot use the empty-slot sentinel, so it lives here
	zeroVal int32
}

func newIDTable(capHint int) *idTable {
	size := 1 << 10
	for size < capHint*2 {
		size <<= 1
	}
	return &idTable{keys: make([]int64, size), vals: make([]int32, size)}
}

func idHash(id int64) uint64 {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return h ^ h>>32
}

// lookupOrAdd returns the value stored for id; when absent it stores next
// and reports added=true.
func (t *idTable) lookupOrAdd(id int64, next int32) (val int32, added bool) {
	if id == 0 {
		if t.hasZero {
			return t.zeroVal, false
		}
		t.hasZero = true
		t.zeroVal = next
		return next, true
	}
	mask := uint64(len(t.keys) - 1)
	for i := idHash(id) & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case id:
			return t.vals[i], false
		case 0:
			t.keys[i] = id
			t.vals[i] = next
			t.n++
			if t.n*4 > len(t.keys)*3 {
				t.grow()
			}
			return next, true
		}
	}
}

func (t *idTable) grow() {
	oldK, oldV := t.keys, t.vals
	t.keys = make([]int64, len(oldK)*2)
	t.vals = make([]int32, len(oldK)*2)
	mask := uint64(len(t.keys) - 1)
	for j, k := range oldK {
		if k == 0 {
			continue
		}
		i := idHash(k) & mask
		for t.keys[i] != 0 {
			i = (i + 1) & mask
		}
		t.keys[i] = k
		t.vals[i] = oldV[j]
	}
}

// parseMovieLensChunk is the phase-one worker: zero-copy field extraction
// plus chunk-local densification.
func parseMovieLensChunk(chunk []byte, sep rune) mlChunkResult {
	var res mlChunkResult
	res.triples = make([]mlTriple, 0, len(chunk)/12)
	uIndex := newIDTable(len(chunk) / 256)
	iIndex := newIDTable(len(chunk) / 256)
	for len(chunk) > 0 {
		var line []byte
		line, chunk = nextLine(chunk)
		res.lines++
		if len(line) >= maxLineBytes {
			res.rawErr = bufio.ErrTooLong
			return res
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			continue
		}
		var uid, iid int64
		var rating float32
		var fast bool
		if sep == ',' {
			uid, iid, rating, fast = parseCSV3Fast(trimmed)
		} else {
			uid, iid, rating, fast = parseWS3Fast(trimmed)
		}
		if fast {
			u, added := uIndex.lookupOrAdd(uid, int32(len(res.users)))
			if added {
				res.users = append(res.users, uid)
			}
			i, added := iIndex.lookupOrAdd(iid, int32(len(res.items)))
			if added {
				res.items = append(res.items, iid)
			}
			res.triples = append(res.triples, mlTriple{u: u, i: i, v: rating})
			continue
		}
		f0, f1, f2, ok := splitSepBytes(trimmed, sep)
		if !ok {
			res.errLine = res.lines
			res.mkErr = func(line int) error {
				return fmt.Errorf("dataset: line %d: want ≥3 fields, got %q", line, trimmed)
			}
			return res
		}
		uid, e1 := parseI64(f0)
		iid, e2 := parseI64(f1)
		rating, e3 := parseF32(f2)
		if e1 != nil || e2 != nil || e3 != nil {
			res.errLine = res.lines
			res.mkErr = func(line int) error {
				return fmt.Errorf("dataset: line %d: bad record %q", line, trimmed)
			}
			return res
		}
		u, added := uIndex.lookupOrAdd(uid, int32(len(res.users)))
		if added {
			res.users = append(res.users, uid)
		}
		i, added := iIndex.lookupOrAdd(iid, int32(len(res.items)))
		if added {
			res.items = append(res.items, iid)
		}
		res.triples = append(res.triples, mlTriple{u: u, i: i, v: rating})
	}
	return res
}

// splitSepBytes extracts the first three fields of a record line, matching
// splitSep's behaviour: comma records are strings.Split fields (empty
// fields preserved, extras ignored), tab records are whitespace fields.
// ok is false when fewer than three fields are present.
func splitSepBytes(trimmed []byte, sep rune) (f0, f1, f2 []byte, ok bool) {
	if sep == '\t' {
		if a0, a1, a2, _, ascii := asciiFields3(trimmed); ascii {
			return a0, a1, a2, a2 != nil
		}
		var rest []byte
		f0, rest = nextField(trimmed)
		f1, rest = nextField(rest)
		f2, _ = nextField(rest)
		return f0, f1, f2, f2 != nil
	}
	c1 := bytes.IndexByte(trimmed, ',')
	if c1 < 0 {
		return nil, nil, nil, false
	}
	f0 = trimmed[:c1]
	rest := trimmed[c1+1:]
	c2 := bytes.IndexByte(rest, ',')
	if c2 < 0 {
		return nil, nil, nil, false
	}
	f1 = rest[:c2]
	f2 = rest[c2+1:]
	if c3 := bytes.IndexByte(f2, ','); c3 >= 0 {
		f2 = f2[:c3]
	}
	return f0, f1, f2, true
}

func (m *IDMaps) denseUser(id int64) int32 {
	if idx, ok := m.UserIndex[id]; ok {
		return idx
	}
	idx := int32(len(m.Users))
	m.UserIndex[id] = idx
	m.Users = append(m.Users, id)
	return idx
}

func (m *IDMaps) denseItem(id int64) int32 {
	if idx, ok := m.ItemIndex[id]; ok {
		return idx
	}
	idx := int32(len(m.Items))
	m.ItemIndex[id] = idx
	m.Items = append(m.Items, id)
	return idx
}
