package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hccmf/internal/sparse"
)

// MovieLens loaders: the reproduction generates ML-20m-shaped synthetic
// data by default, but users with the real archives can train on them
// directly. Two formats are supported:
//
//   - ratings.csv (ML-20m/25m): header "userId,movieId,rating,timestamp",
//     comma-separated.
//   - u.data (ML-100k): "user \t item \t rating \t timestamp".
//
// MovieLens ids are sparse and 1-based; the loader densifies them and
// returns the id maps so predictions can be translated back.

// IDMaps records the original-id ↔ dense-index correspondence of a loaded
// dataset.
type IDMaps struct {
	// UserIndex maps original user id → dense row.
	UserIndex map[int64]int32
	// ItemIndex maps original item id → dense column.
	ItemIndex map[int64]int32
	// Users and Items invert the maps: Users[row] = original user id.
	Users []int64
	Items []int64
}

// ReadMovieLensCSV parses a ratings.csv stream.
func ReadMovieLensCSV(r io.Reader) (*sparse.COO, *IDMaps, error) {
	return readMovieLens(r, ',', true)
}

// ReadMovieLensUData parses a u.data stream.
func ReadMovieLensUData(r io.Reader) (*sparse.COO, *IDMaps, error) {
	return readMovieLens(r, '\t', false)
}

func readMovieLens(r io.Reader, sep rune, hasHeader bool) (*sparse.COO, *IDMaps, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	maps := &IDMaps{
		UserIndex: make(map[int64]int32),
		ItemIndex: make(map[int64]int32),
	}
	type triple struct {
		u, i int32
		v    float32
	}
	var triples []triple
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if hasHeader && lineNo == 1 {
			if !strings.Contains(strings.ToLower(line), "userid") {
				return nil, nil, fmt.Errorf("dataset: line 1: expected ratings.csv header, got %q", line)
			}
			continue
		}
		fields := splitSep(line, sep)
		if len(fields) < 3 {
			return nil, nil, fmt.Errorf("dataset: line %d: want ≥3 fields, got %q", lineNo, line)
		}
		uid, err1 := strconv.ParseInt(fields[0], 10, 64)
		iid, err2 := strconv.ParseInt(fields[1], 10, 64)
		rating, err3 := strconv.ParseFloat(fields[2], 32)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, nil, fmt.Errorf("dataset: line %d: bad record %q", lineNo, line)
		}
		triples = append(triples, triple{
			u: maps.denseUser(uid),
			i: maps.denseItem(iid),
			v: float32(rating),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(triples) == 0 {
		return nil, nil, fmt.Errorf("dataset: no ratings found")
	}
	m := sparse.NewCOO(len(maps.Users), len(maps.Items), len(triples))
	for _, t := range triples {
		m.Add(t.u, t.i, t.v)
	}
	return m, maps, nil
}

func splitSep(line string, sep rune) []string {
	if sep == '\t' {
		return strings.Fields(line) // u.data sometimes uses spaces
	}
	return strings.Split(line, string(sep))
}

func (m *IDMaps) denseUser(id int64) int32 {
	if idx, ok := m.UserIndex[id]; ok {
		return idx
	}
	idx := int32(len(m.Users))
	m.UserIndex[id] = idx
	m.Users = append(m.Users, id)
	return idx
}

func (m *IDMaps) denseItem(id int64) int32 {
	if idx, ok := m.ItemIndex[id]; ok {
		return idx
	}
	idx := int32(len(m.Items))
	m.ItemIndex[id] = idx
	m.Items = append(m.Items, id)
	return idx
}
