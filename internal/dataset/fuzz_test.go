package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets double as robustness tests: `go test` runs the seed corpus,
// `go test -fuzz=FuzzReadText` explores further. The property under fuzz
// is "never panic, and anything accepted round-trips cleanly".

func FuzzReadText(f *testing.F) {
	f.Add("2 2 1\n0 1 3.5\n")
	f.Add("% comment\n3 4 2\n0 0 1\n2 3 5\n")
	f.Add("")
	f.Add("1 1\n")
	f.Add("a b c\n")
	f.Add("2 2 1\n9 9 9\n")
	f.Add("9999999 9999999 1\n0 0 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadText(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted invalid matrix: %v", err)
		}
		// Anything accepted must survive a write/read round trip.
		var buf bytes.Buffer
		if err := WriteText(&buf, m); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.NNZ() != m.NNZ() || back.Rows != m.Rows || back.Cols != m.Cols {
			t.Fatalf("round trip changed shape")
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a valid file and truncations/corruptions of it.
	m := smallMatrix()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:4])
	f.Add([]byte("HCMF"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	corrupt[5] ^= 0xff
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, input []byte) {
		m, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted invalid matrix: %v", err)
		}
	})
}

// FuzzSplitChunks checks the chunk splitter's three invariants for
// arbitrary inputs and chunk targets: chunks concatenate back to the
// input, no chunk is empty, and every chunk except the last ends at a
// newline (so no line is ever split across workers).
func FuzzSplitChunks(f *testing.F) {
	f.Add([]byte("a\nb\nc\n"), 2)
	f.Add([]byte("no newline"), 3)
	f.Add([]byte(""), 1)
	f.Add([]byte("\n\n\n"), 1)
	f.Add(bytes.Repeat([]byte("0 1 2.5\n"), 64), 16)
	f.Fuzz(func(t *testing.T, input []byte, target int) {
		if target > 1<<24 {
			target = 1 << 24
		}
		chunks := splitChunks(input, target)
		var cat []byte
		for k, c := range chunks {
			if len(c) == 0 {
				t.Fatalf("empty chunk %d", k)
			}
			if k < len(chunks)-1 && c[len(c)-1] != '\n' {
				t.Fatalf("chunk %d does not end at a newline", k)
			}
			cat = append(cat, c...)
		}
		if !bytes.Equal(cat, input) {
			t.Fatalf("chunks do not concatenate to the input")
		}
	})
}

// FuzzReadTextEquivalence holds the parallel parser to the serial
// reference on arbitrary inputs: same accept/reject decision, same error
// text, same entries — with a tiny chunk size so even short fuzz inputs
// span multiple chunks.
func FuzzReadTextEquivalence(f *testing.F) {
	f.Add("2 2 1\n0 1 3.5\n")
	f.Add("% c\n3 4 2\n0 0 1\n2 3 5\n")
	f.Add("2 2 9\n0 0 1\n")
	f.Add("2 2 1\nbad line\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		sm, serr := readTextSerial(strings.NewReader(input))
		pm, perr := parseTextParallel([]byte(input), 4, 7)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("serial err %v, parallel err %v", serr, perr)
		}
		if serr != nil {
			if serr.Error() != perr.Error() {
				t.Fatalf("error text differs: %q vs %q", serr, perr)
			}
			return
		}
		if sm.Rows != pm.Rows || sm.Cols != pm.Cols || len(sm.Entries) != len(pm.Entries) {
			t.Fatalf("shape differs: %dx%d/%d vs %dx%d/%d",
				sm.Rows, sm.Cols, len(sm.Entries), pm.Rows, pm.Cols, len(pm.Entries))
		}
		for i := range sm.Entries {
			if sm.Entries[i] != pm.Entries[i] {
				t.Fatalf("entry %d differs: %v vs %v", i, sm.Entries[i], pm.Entries[i])
			}
		}
	})
}

func FuzzReadMovieLensCSV(f *testing.F) {
	f.Add("userId,movieId,rating,timestamp\n1,296,5.0,1147880044\n")
	f.Add("userId,movieId,rating\nx,y,z\n")
	f.Add("")
	f.Add("userId,movieId,rating,timestamp\n-1,-2,3.0,0\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, maps, err := ReadMovieLensCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted invalid matrix: %v", err)
		}
		if len(maps.Users) != m.Rows || len(maps.Items) != m.Cols {
			t.Fatalf("id maps inconsistent with matrix dims")
		}
	})
}
