package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets double as robustness tests: `go test` runs the seed corpus,
// `go test -fuzz=FuzzReadText` explores further. The property under fuzz
// is "never panic, and anything accepted round-trips cleanly".

func FuzzReadText(f *testing.F) {
	f.Add("2 2 1\n0 1 3.5\n")
	f.Add("% comment\n3 4 2\n0 0 1\n2 3 5\n")
	f.Add("")
	f.Add("1 1\n")
	f.Add("a b c\n")
	f.Add("2 2 1\n9 9 9\n")
	f.Add("9999999 9999999 1\n0 0 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadText(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted invalid matrix: %v", err)
		}
		// Anything accepted must survive a write/read round trip.
		var buf bytes.Buffer
		if err := WriteText(&buf, m); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.NNZ() != m.NNZ() || back.Rows != m.Rows || back.Cols != m.Cols {
			t.Fatalf("round trip changed shape")
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a valid file and truncations/corruptions of it.
	m := smallMatrix()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:4])
	f.Add([]byte("HCMF"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	corrupt[5] ^= 0xff
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, input []byte) {
		m, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted invalid matrix: %v", err)
		}
	})
}

func FuzzReadMovieLensCSV(f *testing.F) {
	f.Add("userId,movieId,rating,timestamp\n1,296,5.0,1147880044\n")
	f.Add("userId,movieId,rating\nx,y,z\n")
	f.Add("")
	f.Add("userId,movieId,rating,timestamp\n-1,-2,3.0,0\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, maps, err := ReadMovieLensCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted invalid matrix: %v", err)
		}
		if len(maps.Users) != m.Rows || len(maps.Items) != m.Cols {
			t.Fatalf("id maps inconsistent with matrix dims")
		}
	})
}
