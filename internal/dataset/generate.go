package dataset

import (
	"fmt"
	"math"

	"hccmf/internal/sparse"
)

// Generate materialises a dataset from a spec: it plants a rank-Rank factor
// model (P*, Q* with positive-mean entries so ratings land inside the
// scale), samples NNZ (user, item) pairs with Zipf-skewed item popularity
// and mildly skewed user activity, computes the planted rating plus
// Gaussian noise, clamps and quantises it to the rating scale, shuffles,
// and splits 90/10 into train/test.
//
// Generation is deterministic per (spec, seed).
func Generate(spec Spec, seed uint64) (*Dataset, error) {
	if spec.M <= 0 || spec.N <= 0 || spec.NNZ <= 0 {
		return nil, fmt.Errorf("dataset: invalid spec %+v", spec)
	}
	if spec.Rank <= 0 {
		return nil, fmt.Errorf("dataset: spec %q has no planted rank", spec.Name)
	}
	est := spec.NNZ * 12 // bytes per Rating entry
	if est > 4<<30 {
		return nil, fmt.Errorf("dataset: %q needs ~%d MiB to materialise; use Scaled() first",
			spec.Name, est>>20)
	}
	rng := sparse.NewRand(seed)

	// Planted factors. Entry scale chosen so that p·q has mean ≈ mid-scale
	// and stddev ≈ quarter-scale.
	mid := float64(spec.RatingMin+spec.RatingMax) / 2
	spread := float64(spec.RatingMax-spec.RatingMin) / 4
	base := math.Sqrt(mid / float64(spec.Rank))
	dev := math.Sqrt(spread / float64(spec.Rank))
	pf := plantFactor(rng, spec.M, spec.Rank, base, dev)
	qf := plantFactor(rng, spec.N, spec.Rank, base, dev)

	itemSampler := newZipfSampler(rng, spec.N, spec.ZipfTheta)
	userSampler := newZipfSampler(rng, spec.M, spec.ZipfTheta/2)

	all := sparse.NewCOO(spec.M, spec.N, int(spec.NNZ))
	for c := int64(0); c < spec.NNZ; c++ {
		u := userSampler.Next()
		i := itemSampler.Next()
		var dot float64
		pu := pf[u*spec.Rank : (u+1)*spec.Rank]
		qi := qf[i*spec.Rank : (i+1)*spec.Rank]
		for f := 0; f < spec.Rank; f++ {
			dot += float64(pu[f]) * float64(qi[f])
		}
		r := dot + spec.NoiseStd*rng.NormFloat64()
		all.Add(int32(u), int32(i), quantise(r, spec))
	}
	all.Shuffle(rng)
	train, test, err := all.SplitTrainTest(rng, 0.1)
	if err != nil {
		return nil, err
	}
	return &Dataset{Spec: spec, Train: train, Test: test}, nil
}

// MustGenerate is Generate that panics on error, for examples and tests.
func MustGenerate(spec Spec, seed uint64) *Dataset {
	d, err := Generate(spec, seed)
	if err != nil {
		panic(err)
	}
	return d
}

func plantFactor(rng *sparse.Rand, n, k int, base, dev float64) []float32 {
	f := make([]float32, n*k)
	for i := range f {
		f[i] = float32(base + dev*rng.NormFloat64())
	}
	return f
}

func quantise(r float64, spec Spec) float32 {
	if r < float64(spec.RatingMin) {
		r = float64(spec.RatingMin)
	}
	if r > float64(spec.RatingMax) {
		r = float64(spec.RatingMax)
	}
	step := float64(spec.RatingStep)
	if step > 0 {
		r = math.Round(r/step) * step
	}
	return float32(r)
}

// zipfSampler draws indexes in [0, n) with probability ∝ 1/(rank+1)^theta
// using inverse-CDF sampling over a precomputed cumulative table for small
// n, or the rejection-free approximation of Gray et al. for large n.
//
// For theta = 0 it degenerates to a uniform sampler.
type zipfSampler struct {
	rng   *sparse.Rand
	n     int
	theta float64
	// Gray approximation constants.
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

func newZipfSampler(rng *sparse.Rand, n int, theta float64) *zipfSampler {
	z := &zipfSampler{rng: rng, n: n, theta: theta}
	if theta <= 0 || n <= 1 {
		return z
	}
	if theta >= 1 {
		theta = 0.999 // Gray's closed form needs theta < 1
		z.theta = theta
	}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaApprox(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// Next draws the next index. The skewed branch follows the standard YCSB
// ScrambledZipfian construction (without the scramble: HCC-MF wants the
// head-heavy rows contiguous so grids see realistic imbalance).
func (z *zipfSampler) Next() int {
	if z.theta <= 0 || z.n <= 1 {
		return z.rng.Intn(maxInt(z.n, 1))
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	idx := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if idx >= z.n {
		idx = z.n - 1
	}
	if idx < 0 {
		idx = 0
	}
	return idx
}

// zetaStatic computes the exact generalised harmonic number H_{n,theta}.
func zetaStatic(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// zetaApprox approximates H_{n,theta} with the Euler-Maclaurin integral
// bound for large n (exact summation of 2M terms, analytic tail beyond).
func zetaApprox(n int, theta float64) float64 {
	const exact = 1 << 21
	if n <= exact {
		return zetaStatic(n, theta)
	}
	head := zetaStatic(exact, theta)
	// ∫_{exact}^{n} x^-theta dx
	tail := (math.Pow(float64(n), 1-theta) - math.Pow(float64(exact), 1-theta)) / (1 - theta)
	return head + tail
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
