// Package baselines provides the single-processor comparators the paper
// evaluates HCC-MF against: FPSGD (Chin et al., the multicore CPU
// state of the art) and cuMF_SGD (Xie et al., the GPU state of the art) —
// specifically the paper's *modified* versions (AVX/AVX512 kernels, block
// sorting), whose measured throughputs are what the device calibration
// tables carry. A baseline couples a device profile (for simulated time)
// with a real execution engine (for convergence curves).
package baselines

import (
	"fmt"

	"hccmf/internal/dataset"
	"hccmf/internal/device"
	"hccmf/internal/metrics"
	"hccmf/internal/mf"
	"hccmf/internal/sparse"
)

// Standalone is one single-processor baseline.
type Standalone struct {
	// Name labels result rows ("FPSGD", "CuMF_SGD").
	Name string
	// Device supplies the calibrated throughput for simulated timing.
	Device *device.Device
	// Engine executes real epochs for convergence studies.
	Engine mf.Engine
}

// FPSGD is the paper's modified FPSGD baseline on a Xeon 6242 with the
// given thread count.
func FPSGD(threads int) Standalone {
	hostThreads := threads
	if hostThreads > 4 {
		hostThreads = 4 // cap real execution to the test host
	}
	return Standalone{
		Name:   "FPSGD",
		Device: device.Xeon6242(threads),
		Engine: &mf.FPSGD{Threads: hostThreads},
	}
}

// CuMFSGD is the paper's modified cuMF_SGD baseline on the given GPU
// (panics when handed a CPU profile).
func CuMFSGD(d *device.Device) Standalone {
	if d.Kind != device.GPU {
		// lint:invariant baseline wiring is experiment code, not user config; handing a CPU profile to cuMF_SGD is a broken experiment definition.
		panic(fmt.Sprintf("baselines: cuMF_SGD needs a GPU, got %v", d))
	}
	return Standalone{
		Name:   "CuMF_SGD",
		Device: d,
		Engine: &mf.Batched{Groups: 4, BatchSize: 1 << 14},
	}
}

// SimTime reports the simulated wall clock for the baseline to train the
// full-size dataset for the given epochs: pure compute at the calibrated
// standalone rate (the single-processor systems keep data resident, so no
// per-epoch transfer cost applies).
func (s Standalone) SimTime(spec dataset.Spec, epochs int) float64 {
	if epochs <= 0 {
		// lint:invariant epoch counts reaching SimTime are experiment-table constants; TrainCurve, the user-facing path, returns an error instead.
		panic(fmt.Sprintf("baselines: epochs = %d", epochs))
	}
	return float64(spec.NNZ) * float64(epochs) / s.Device.UpdateRate(spec.Name)
}

// TrainCurve really trains a scaled instance of the dataset and returns
// the convergence curve with the *simulated* full-size clock as its time
// axis — the construction behind Figure 7(d–f).
func (s Standalone) TrainCurve(spec dataset.Spec, scale float64, epochs, k int, seed uint64) (*metrics.Curve, error) {
	if epochs <= 0 || k <= 0 {
		return nil, fmt.Errorf("baselines: epochs=%d k=%d", epochs, k)
	}
	runSpec := spec
	if scale > 0 && scale < 1 {
		var err error
		runSpec, err = spec.Scaled(scale)
		if err != nil {
			return nil, err
		}
	}
	ds, err := dataset.Generate(runSpec, seed)
	if err != nil {
		return nil, err
	}
	rng := sparse.NewRand(seed + 1)
	f := mf.NewFactorsInit(ds.Train.Rows, ds.Train.Cols, k, ds.Train.MeanRating(), rng)
	h := mf.HyperParams{
		Gamma:   runSpec.Params.Gamma,
		Lambda1: runSpec.Params.Lambda1,
		Lambda2: runSpec.Params.Lambda2,
	}
	epochTime := s.SimTime(spec, 1)
	curve := &metrics.Curve{Label: s.Name + "/" + spec.Name}
	// Epoch 0: the untrained model, so descent is measured from a
	// deterministic anchor (parallel engines make epoch-level RMSE mildly
	// schedule-dependent).
	curve.Append(0, 0, mf.RMSEParallel(f, ds.Test.Entries, 4))
	for e := 1; e <= epochs; e++ {
		s.Engine.Epoch(f, ds.Train, h)
		curve.Append(e, float64(e)*epochTime, mf.RMSEParallel(f, ds.Test.Entries, 4))
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("baselines: %s diverged: %v", s.Name, err)
	}
	return curve, nil
}
