package baselines

import (
	"testing"

	"hccmf/internal/dataset"
	"hccmf/internal/device"
	"hccmf/internal/raceflag"
)

func TestFPSGDProfile(t *testing.T) {
	b := FPSGD(16)
	if b.Name != "FPSGD" || b.Device.Kind != device.CPU {
		t.Fatalf("FPSGD profile wrong: %+v", b)
	}
	// Real engine must be capped for the test host.
	if b.Engine == nil {
		t.Fatal("no engine")
	}
}

func TestCuMFSGDRequiresGPU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CuMFSGD(CPU) did not panic")
		}
	}()
	CuMFSGD(device.Xeon6242(16))
}

func TestSimTimeMatchesPaperFootnote(t *testing.T) {
	// Footnote 1: modified cuMF_SGD trains Netflix 20 epochs in ~2.25s on
	// the RTX 2080, and modified FPSGD (AVX512) in ~5.5s on the 6242.
	cu := CuMFSGD(device.RTX2080())
	if got := cu.SimTime(dataset.Netflix, 20); got < 1.9 || got > 2.5 {
		t.Fatalf("cuMF 2080 Netflix 20 epochs = %vs, paper ~2.25s", got)
	}
	fp := FPSGD(24)
	if got := fp.SimTime(dataset.Netflix, 20); got < 4.5 || got > 7.5 {
		t.Fatalf("FPSGD 6242 Netflix 20 epochs = %vs, paper ~5.5s", got)
	}
}

func TestSimTimeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero epochs did not panic")
		}
	}()
	FPSGD(16).SimTime(dataset.Netflix, 0)
}

func TestTrainCurveConverges(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("the cuMF-style batched engine is intentionally lock-free; skipped under -race")
	}
	for _, b := range []Standalone{FPSGD(16), CuMFSGD(device.RTX2080Super())} {
		curve, err := b.TrainCurve(dataset.Netflix, 0.002, 12, 8, 5)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if len(curve.Points) != 13 { // epoch 0 anchor + 12 epochs
			t.Fatalf("%s: %d points", b.Name, len(curve.Points))
		}
		first, last := curve.Points[0].RMSE, curve.Final()
		if last >= first {
			t.Fatalf("%s did not converge: %v → %v", b.Name, first, last)
		}
		// Time axis is the simulated full-size clock, anchored at 0.
		if curve.Points[0].Time != 0 || curve.Points[0].Epoch != 0 {
			t.Fatalf("%s missing epoch-0 anchor: %+v", b.Name, curve.Points[0])
		}
		wantEpoch := b.SimTime(dataset.Netflix, 1)
		if curve.Points[1].Time != wantEpoch {
			t.Fatalf("%s time axis = %v, want %v", b.Name, curve.Points[1].Time, wantEpoch)
		}
	}
}

func TestTrainCurveGPUFasterClock(t *testing.T) {
	// Same convergence work, but the GPU's simulated clock runs ~3x faster
	// — the Figure 7(d) separation.
	fp := FPSGD(24)
	cu := CuMFSGD(device.RTX2080Super())
	if cu.SimTime(dataset.Netflix, 20) >= fp.SimTime(dataset.Netflix, 20)/2 {
		t.Fatal("GPU baseline not meaningfully faster than CPU baseline")
	}
}

func TestTrainCurveValidation(t *testing.T) {
	if _, err := FPSGD(16).TrainCurve(dataset.Netflix, 0.001, 0, 8, 1); err == nil {
		t.Fatal("zero epochs accepted")
	}
	if _, err := FPSGD(16).TrainCurve(dataset.Netflix, 0.001, 5, 0, 1); err == nil {
		t.Fatal("zero k accepted")
	}
}
