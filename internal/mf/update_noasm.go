//go:build !amd64 || noasm

package mf

// haveVec: no hand-written vector kernel on this architecture (or the
// assembly path was disabled with -tags noasm); the kernel table falls
// back to the unrolled Go kernels for k ∈ {32, 64, 128} and the fused
// 8-wide kernel otherwise. CI exercises this file on amd64 via the noasm
// matrix leg, so the portable path cannot rot between architecture ports.
const haveVec = false

// vecImpl names the vector backend in KernelName output.
const vecImpl = "portable"

// updateOneVec falls back to the portable fused kernel. Same bit-exact
// results as the amd64 SSE kernel (both match referenceUpdateOne).
//
// lint:hotpath
func updateOneVec(p, q []float32, r float32, h HyperParams) float32 {
	return updateOneGeneric(p, q, r, h)
}

// updateOneFastVec falls back to the portable fast-math kernel, which
// mirrors the amd64 accumulator order exactly — fast-math goldens hold on
// every architecture.
//
// lint:hotpath
func updateOneFastVec(p, q []float32, r float32, h HyperParams) float32 {
	return updateOneFastGeneric(p, q, r, h)
}
