package mf

import (
	"math"
	"runtime"
	"sync"

	"hccmf/internal/sparse"
)

// RMSE computes the root mean squared error of the model's predictions
// over the given entries. An empty entry set yields 0.
func RMSE(f *Factors, entries []sparse.Rating) float64 {
	if len(entries) == 0 {
		return 0
	}
	return math.Sqrt(sumSqErr(f, entries) / float64(len(entries)))
}

// sumSqErr accumulates Σ(r − p·q)² over entries. It is the shared inner
// loop of RMSE and the parallel evaluator workers: row slicing is inlined
// (as in TrainEntries) so the flat P/Q base pointers and K stay in
// registers, and the dot product uses Dot's exact partial-sum order so the
// result is bit-identical to calling f.Predict per entry.
//
// lint:hotpath
func sumSqErr(f *Factors, entries []sparse.Rating) float64 {
	k := f.K
	fp, fq := f.P, f.Q
	var sum float64
	for idx := range entries {
		e := entries[idx]
		po := int(e.U) * k
		qo := int(e.I) * k
		p := fp[po : po+k]
		q := fq[qo : qo+k : qo+k]
		var s0, s1, s2, s3 float32
		for len(p) >= 4 && len(q) >= 4 {
			s0 += p[0] * q[0]
			s1 += p[1] * q[1]
			s2 += p[2] * q[2]
			s3 += p[3] * q[3]
			p = p[4:]
			q = q[4:]
		}
		for i := 0; i < len(p) && i < len(q); i++ {
			s0 += p[i] * q[i]
		}
		d := float64(e.V - (s0 + s1 + s2 + s3))
		sum += d * d
	}
	return sum
}

// RMSEParallel computes RMSE with up to workers chunks evaluated
// concurrently. Results are identical to RMSE up to float64 summation
// order: the chunking math and the final left-to-right fold are unchanged
// from the seed implementation, so the reported value is bit-identical for
// a given (n, workers).
//
// Evaluation runs on a lazily started package-level evaluator pool and a
// reused partial-sum buffer, so warm calls allocate nothing. The pool's
// mutex serialises concurrent RMSEParallel calls; every current caller
// (per-epoch observers, benchmarks) evaluates sequentially anyway.
//
// lint:hotpath
func RMSEParallel(f *Factors, entries []sparse.Rating, workers int) float64 {
	n := len(entries)
	if n == 0 {
		return 0
	}
	if workers < 2 || n < 1<<14 {
		return RMSE(f, entries)
	}
	chunk := (n + workers - 1) / workers
	nchunks := (n + chunk - 1) / chunk

	rmseEval.once.Do(startRMSEEval)
	rmseEval.mu.Lock()
	defer rmseEval.mu.Unlock()
	sums := rmseSums(nchunks)
	for w := 0; w*chunk < n; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		rmseEval.wg.Add(1)
		rmseEval.tasks <- rmseTask{
			f: f, entries: entries[lo:hi], out: &sums[w], wg: &rmseEval.wg,
		}
	}
	rmseEval.wg.Wait()
	var total float64
	for _, s := range sums {
		total += s
	}
	return math.Sqrt(total / float64(n))
}

// rmseTask is one chunk of a parallel RMSE evaluation; the worker writes
// the chunk's squared-error sum to out (exclusively owned per task) before
// signalling wg.
type rmseTask struct {
	f       *Factors
	entries []sparse.Rating
	out     *float64
	wg      *sync.WaitGroup
}

// rmseEval is the package-level evaluator pool: started once, reused by
// every RMSEParallel call so warm evaluations are allocation-free.
var rmseEval struct {
	once  sync.Once
	mu    sync.Mutex
	tasks chan rmseTask
	sums  []float64
	wg    sync.WaitGroup
}

func startRMSEEval() {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	rmseEval.tasks = make(chan rmseTask, workers)
	// Pre-size the partial-sum buffer for the common case (nchunks ≤ the
	// caller's worker count ≤ this pool size) so steady-state RMSEParallel
	// calls stay off the allocator entirely.
	rmseEval.sums = make([]float64, workers)
	for i := 0; i < workers; i++ {
		go rmseEvalWorker(rmseEval.tasks)
	}
}

// rmseSums returns the shared partial-sum buffer sized to n, growing it for
// callers that request more chunks than startRMSEEval provisioned. Callers
// hold rmseEval.mu.
func rmseSums(n int) []float64 {
	if cap(rmseEval.sums) < n {
		rmseEval.sums = make([]float64, n)
	}
	return rmseEval.sums[:n]
}

// rmseEvalWorker drains evaluation chunks for the lifetime of the process.
// Each task's out pointer is owned exclusively by that task; wg.Wait in
// RMSEParallel orders the reads.
//
// lint:hotpath
func rmseEvalWorker(tasks <-chan rmseTask) {
	for t := range tasks {
		*t.out = sumSqErr(t.f, t.entries)
		t.wg.Done()
	}
}

// Loss computes the full regularised objective
// Σ(r−p·q)² + λ1‖P‖² + λ2‖Q‖², which SGD minimises. Used by tests to
// assert monotone-ish descent.
func Loss(f *Factors, entries []sparse.Rating, h HyperParams) float64 {
	var sum float64
	for _, e := range entries {
		d := float64(e.V - f.Predict(e.U, e.I))
		sum += d * d
	}
	var pn, qn float64
	for _, v := range f.P {
		pn += float64(v) * float64(v)
	}
	for _, v := range f.Q {
		qn += float64(v) * float64(v)
	}
	return sum + float64(h.Lambda1)*pn + float64(h.Lambda2)*qn
}
