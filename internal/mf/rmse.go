package mf

import (
	"math"
	"sync"

	"hccmf/internal/sparse"
)

// RMSE computes the root mean squared error of the model's predictions
// over the given entries. An empty entry set yields 0.
func RMSE(f *Factors, entries []sparse.Rating) float64 {
	if len(entries) == 0 {
		return 0
	}
	var sum float64
	for _, e := range entries {
		d := float64(e.V - f.Predict(e.U, e.I))
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(entries)))
}

// RMSEParallel computes RMSE with up to workers goroutines. Results are
// identical to RMSE up to float64 summation order.
func RMSEParallel(f *Factors, entries []sparse.Rating, workers int) float64 {
	n := len(entries)
	if n == 0 {
		return 0
	}
	if workers < 2 || n < 1<<14 {
		return RMSE(f, entries)
	}
	chunk := (n + workers - 1) / workers
	sums := make([]float64, (n+chunk-1)/chunk)
	var wg sync.WaitGroup
	for w := 0; w*chunk < n; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var s float64
			for _, e := range entries[lo:hi] {
				d := float64(e.V - f.Predict(e.U, e.I))
				s += d * d
			}
			// lint:allow raceguard — each goroutine owns sums[w] exclusively; wg.Wait orders the reads.
			sums[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	var total float64
	for _, s := range sums {
		total += s
	}
	return math.Sqrt(total / float64(n))
}

// Loss computes the full regularised objective
// Σ(r−p·q)² + λ1‖P‖² + λ2‖Q‖², which SGD minimises. Used by tests to
// assert monotone-ish descent.
func Loss(f *Factors, entries []sparse.Rating, h HyperParams) float64 {
	var sum float64
	for _, e := range entries {
		d := float64(e.V - f.Predict(e.U, e.I))
		sum += d * d
	}
	var pn, qn float64
	for _, v := range f.P {
		pn += float64(v) * float64(v)
	}
	for _, v := range f.Q {
		qn += float64(v) * float64(v)
	}
	return sum + float64(h.Lambda1)*pn + float64(h.Lambda2)*qn
}
