package mf

import "hccmf/internal/sparse"

// Fast-math SoA mini-batch staging (DESIGN.md §16) — the CPU rendition of
// cuMF_SGD's batched kernel design. A plain batched sweep touches one P
// row and one Q row per rating, so the Q side of the working set is a
// random walk over the whole N×k matrix. The SoA loop instead splits each
// group's chunk into three passes:
//
//  1. stage: walk the chunk once, copy each distinct item's Q row into a
//     dense per-group scratch block (first-touch slot order) and decompose
//     the ratings into structure-of-arrays form — u[], slot[], v[] — so
//     the sweep reads three flat streams instead of a strided struct walk;
//  2. sweep: run the fast-math kernel against P and the STAGED rows —
//     repeated items (the common case: popular items dominate mini-
//     batches) hit the same hot scratch row instead of a far Q row;
//  3. write-back: copy the staged rows to Q once, at batch end — the
//     batch-boundary synchronisation point, exactly where cuMF_SGD's
//     kernel launch ends.
//
// Staging is value-preserving — the same update sequence runs on the same
// values, only at a different address — so a single-group batch is
// bit-identical to an in-place fast-math sweep (pinned by
// TestBatchedSoAMatchesInPlaceFastMath). With multiple groups the
// write-back replaces per-update races with per-batch last-writer-wins on
// the few items shared between groups; like Hogwild/Batched, those races
// are intentional and the engine stays gated behind raceflag under -race.
// The whole path lives behind Batched.FastMath because the fast-math
// kernel inside it reorders accumulation anyway.

// soaScratch is one group's reusable staging area. itemGen/itemSlot form a
// generation-stamped slot map over the item space (O(1) reset per chunk:
// bump gen), items/qrows the dense staged rows, and u/slot/v the SoA
// decomposition of the chunk.
type soaScratch struct {
	itemGen  []uint32
	itemSlot []int32
	gen      uint32
	items    []int32
	qrows    []float32
	u        []int32
	slot     []int32
	v        []float32
}

// prepare sizes the scratch for chunks of up to chunk entries over an item
// space of cols at dimension k. Setup path, not hot: it allocates only
// when the geometry first appears or grows.
func (s *soaScratch) prepare(cols, k, chunk int) {
	if len(s.itemGen) < cols {
		s.itemGen = make([]uint32, cols)
		s.itemSlot = make([]int32, cols)
		s.gen = 0
	}
	maxRows := chunk
	if cols < maxRows {
		maxRows = cols
	}
	if cap(s.items) < maxRows {
		s.items = make([]int32, maxRows)
	}
	if cap(s.qrows) < maxRows*k {
		s.qrows = make([]float32, maxRows*k)
	}
	if cap(s.u) < chunk {
		s.u = make([]int32, chunk)
		s.slot = make([]int32, chunk)
		s.v = make([]float32, chunk)
	}
}

// trainEntriesSoA sweeps one group chunk through the three-pass SoA loop
// described above. The caller (Batched.launch) guarantees s was prepared
// for at least (len(entries), f.N, f.K).
//
// lint:hotpath
func trainEntriesSoA(f *Factors, entries []sparse.Rating, h HyperParams, s *soaScratch) {
	n := len(entries)
	if n == 0 {
		return
	}
	k := f.K
	s.gen++
	if s.gen == 0 {
		// uint32 wrap: one stamp clear per 4G chunks keeps stale stamps from
		// aliasing the new generation.
		clear(s.itemGen)
		s.gen = 1
	}
	gen := s.gen
	itemGen, itemSlot := s.itemGen, s.itemSlot
	u, slot, v := s.u[:n], s.slot[:n], s.v[:n]
	items, qrows := s.items, s.qrows
	fq := f.Q

	// Pass 1: stage Q rows (first touch) and decompose to SoA.
	nuniq := int32(0)
	for idx := 0; idx < n; idx++ {
		e := entries[idx]
		i := e.I
		sl := itemSlot[i]
		if itemGen[i] != gen {
			itemGen[i] = gen
			sl = nuniq
			itemSlot[i] = sl
			items[sl] = i
			copy(qrows[int(sl)*k:int(sl)*k+k], fq[int(i)*k:int(i)*k+k])
			nuniq++
		}
		u[idx] = e.U
		slot[idx] = sl
		v[idx] = e.V
	}

	// Pass 2: fast-math sweep against the staged rows.
	p := f.P
	for idx := 0; idx < n; idx++ {
		po := int(u[idx]) * k
		qo := int(slot[idx]) * k
		updateOneFastVec(p[po:po+k], qrows[qo:qo+k:qo+k], v[idx], h)
	}

	// Pass 3: write-back at batch end.
	for sl := int32(0); sl < nuniq; sl++ {
		it := int(items[sl])
		copy(fq[it*k:it*k+k], qrows[int(sl)*k:int(sl)*k+k])
	}
}
