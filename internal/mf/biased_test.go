package mf

import (
	"math"
	"testing"

	"hccmf/internal/sparse"
)

// biasedSet generates ratings dominated by user/item offsets, where the
// biased model should clearly beat the plain one.
func biasedSet(t testing.TB, rows, cols, nnz int, seed uint64) *sparse.COO {
	t.Helper()
	rng := sparse.NewRand(seed)
	bu := make([]float32, rows)
	bi := make([]float32, cols)
	for i := range bu {
		bu[i] = 2 * (rng.Float32() - 0.5) // ±1 user effects
	}
	for i := range bi {
		bi[i] = 2 * (rng.Float32() - 0.5)
	}
	m := sparse.NewCOO(rows, cols, nnz)
	for c := 0; c < nnz; c++ {
		u, i := rng.Intn(rows), rng.Intn(cols)
		r := 3 + bu[u] + bi[i] + 0.1*(rng.Float32()-0.5)
		m.Add(int32(u), int32(i), r)
	}
	m.Shuffle(rng)
	return m
}

func TestBiasedPredictComposition(t *testing.T) {
	b := &BiasedFactors{
		Factors: NewFactors(2, 2, 2),
		Mu:      3,
		BU:      []float32{0.5, 0},
		BI:      []float32{0, -0.25},
	}
	copy(b.PRow(0), []float32{1, 2})
	copy(b.QRow(1), []float32{3, 1})
	// 3 + 0.5 + (−0.25) + (1·3 + 2·1) = 8.25
	if got := b.Predict(0, 1); got != 8.25 {
		t.Fatalf("Predict = %v, want 8.25", got)
	}
}

func TestBiasedUpdateReducesError(t *testing.T) {
	rng := sparse.NewRand(3)
	b := NewBiasedFactorsInit(4, 4, 4, 3, rng)
	h := HyperParams{Gamma: 0.1, Lambda1: 0.01, Lambda2: 0.01}
	const r = 4.5
	before := math.Abs(float64(r - b.Predict(1, 2)))
	for i := 0; i < 60; i++ {
		b.UpdateOne(1, 2, r, h)
	}
	after := math.Abs(float64(r - b.Predict(1, 2)))
	if after >= before || after > 0.05 {
		t.Fatalf("residual %v → %v", before, after)
	}
}

func TestBiasedBeatsPlainOnBiasDominatedData(t *testing.T) {
	m := biasedSet(t, 150, 100, 6000, 7)
	rng1, rng2 := sparse.NewRand(1), sparse.NewRand(1)
	h := HyperParams{Gamma: 0.02, Lambda1: 0.02, Lambda2: 0.02}
	const k, epochs = 4, 30

	plain := NewFactorsInit(m.Rows, m.Cols, k, m.MeanRating(), rng1)
	for e := 0; e < epochs; e++ {
		TrainEntries(plain, m.Entries, h)
	}
	biased := NewBiasedFactorsInit(m.Rows, m.Cols, k, m.MeanRating(), rng2)
	for e := 0; e < epochs; e++ {
		biased.Epoch(m.Entries, h)
	}
	plainRMSE := RMSE(plain, m.Entries)
	biasedRMSE := biased.RMSE(m.Entries)
	if biasedRMSE >= plainRMSE {
		t.Fatalf("biased (%v) not better than plain (%v) on bias-dominated data",
			biasedRMSE, plainRMSE)
	}
	if biasedRMSE > 0.2 {
		t.Fatalf("biased model converged poorly: %v", biasedRMSE)
	}
}

func TestBiasedEpochAndValidate(t *testing.T) {
	m := biasedSet(t, 50, 40, 1000, 9)
	b := NewBiasedFactorsInit(m.Rows, m.Cols, 4, m.MeanRating(), sparse.NewRand(2))
	h := HyperParams{Gamma: 0.02, Lambda1: 0.01, Lambda2: 0.01}
	before := b.RMSE(m.Entries)
	for e := 0; e < 10; e++ {
		b.Epoch(m.Entries, h)
	}
	if after := b.RMSE(m.Entries); after >= before {
		t.Fatalf("RMSE rose: %v → %v", before, after)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	b.BU[0] = float32(math.NaN())
	if err := b.Validate(); err == nil {
		t.Fatal("NaN bias not detected")
	}
	b.BU[0] = 0
	b.BI[1] = float32(math.Inf(1))
	if err := b.Validate(); err == nil {
		t.Fatal("Inf bias not detected")
	}
}

func TestBiasedRMSEEmpty(t *testing.T) {
	b := NewBiasedFactorsInit(2, 2, 2, 3, sparse.NewRand(1))
	if b.RMSE(nil) != 0 {
		t.Fatal("empty RMSE != 0")
	}
}
