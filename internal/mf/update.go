package mf

import "hccmf/internal/sparse"

// HyperParams are the SGD hyper-parameters: learning rate γ and the L2
// regularisers λ1 (on P) and λ2 (on Q) from the paper's loss
//
//	Σ (r_uv − p_u·q_v)² + λ1‖P‖² + λ2‖Q‖².
type HyperParams struct {
	Gamma   float32
	Lambda1 float32
	Lambda2 float32
}

// UpdateOne applies one SGD step for the rating r at (p, q):
//
//	e  = r − p·q
//	p += γ(e·q − λ1·p)
//	q += γ(e·p − λ2·q)
//
// using the pre-update value of p in q's gradient (the standard
// simultaneous update). It returns the signed prediction error e.
func UpdateOne(p, q []float32, r float32, h HyperParams) float32 {
	e := r - Dot(p, q)
	ge := h.Gamma * e
	gl1 := h.Gamma * h.Lambda1
	gl2 := h.Gamma * h.Lambda2
	n := len(p)
	i := 0
	for ; i+4 <= n; i += 4 {
		p0, q0 := p[i], q[i]
		p1, q1 := p[i+1], q[i+1]
		p2, q2 := p[i+2], q[i+2]
		p3, q3 := p[i+3], q[i+3]
		p[i] = p0 + ge*q0 - gl1*p0
		q[i] = q0 + ge*p0 - gl2*q0
		p[i+1] = p1 + ge*q1 - gl1*p1
		q[i+1] = q1 + ge*p1 - gl2*q1
		p[i+2] = p2 + ge*q2 - gl1*p2
		q[i+2] = q2 + ge*p2 - gl2*q2
		p[i+3] = p3 + ge*q3 - gl1*p3
		q[i+3] = q3 + ge*p3 - gl2*q3
	}
	for ; i < n; i++ {
		p0, q0 := p[i], q[i]
		p[i] = p0 + ge*q0 - gl1*p0
		q[i] = q0 + ge*p0 - gl2*q0
	}
	return e
}

// UpdatesPerEntryFLOPs reports the floating-point operations one UpdateOne
// performs for dimension k: 2k for the dot product, ~5k for the two factor
// updates. Used by the cost model's "7k/Pi" term.
func UpdatesPerEntryFLOPs(k int) int { return 7 * k }

// UpdateBytes reports the bytes of memory traffic one update generates for
// dimension k under the paper's model: p and q are each read twice and
// written once (16k bytes for FP32 vectors of length k at 4 bytes ×
// (2 reads + 1 write) rounded the paper's way) plus the 4-byte rating —
// the (16k + 4) factor in Eq. 2.
func UpdateBytes(k int) int { return 16*k + 4 }

// TrainEntries runs one in-order SGD pass over entries against f.
// It is the inner loop shared by the serial engine and each FPSGD block
// task; callers own any required synchronisation.
func TrainEntries(f *Factors, entries []sparse.Rating, h HyperParams) {
	for _, e := range entries {
		UpdateOne(f.PRow(e.U), f.QRow(e.I), e.V, h)
	}
}
