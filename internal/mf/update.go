package mf

import "hccmf/internal/sparse"

// HyperParams are the SGD hyper-parameters: learning rate γ and the L2
// regularisers λ1 (on P) and λ2 (on Q) from the paper's loss
//
//	Σ (r_uv − p_u·q_v)² + λ1‖P‖² + λ2‖Q‖².
type HyperParams struct {
	Gamma   float32
	Lambda1 float32
	Lambda2 float32
}

// UpdateOne applies one SGD step for the rating r at (p, q):
//
//	e  = r − p·q
//	p += γ(e·q − λ1·p)
//	q += γ(e·p − λ2·q)
//
// using the pre-update value of p in q's gradient (the standard
// simultaneous update). It returns the signed prediction error e.
//
// UpdateOne dispatches to the best default-mode kernel for the build
// architecture (updateOneVec: the SSE kernel on amd64, the fused Go kernel
// elsewhere). Every default-mode kernel is pinned bit-identical to
// referenceUpdateOne — the memory-layout pass is not allowed to move the
// convergence trajectory — by the kernel-equivalence sweep in
// kernel_equiv_test.go. The reordered-accumulation variant lives behind
// UpdateOneFastMath (DESIGN.md §16).
//
// lint:hotpath
func UpdateOne(p, q []float32, r float32, h HyperParams) float32 {
	return updateOneVec(p, q[:len(p)], r, h)
}

// UpdateOneFastMath is the explicitly versioned fast-math kernel: the same
// SGD step as UpdateOne, but the dot product folds into eight partial sums
// (s_j accumulates elements j, j+8, j+16, …; a four-wide remainder folds
// into s0..s3, the scalar tail into s0; reduction is ((s0+s4 + s1+s5) +
// s2+s6) + s3+s7). The wider accumulation breaks bit-identity with
// referenceUpdateOne — results differ in the last ulps — in exchange for a
// deeper dependency chain split. The order above IS the contract: it is
// identical on every architecture (asm and Go implementations are pinned
// against referenceFastUpdateOne and each other), so fast-math runs are
// still deterministic and reproducible, just under their own golden
// results. Off every default path; engines opt in via their FastMath
// field, surfaced as `hccmf-train -fast-math`.
//
// lint:hotpath
func UpdateOneFastMath(p, q []float32, r float32, h HyperParams) float32 {
	return updateOneFastVec(p, q[:len(p)], r, h)
}

// updateOneGeneric is the portable fused kernel (PR 3): dot product fused
// with the update sweep, both passes advancing the slice headers eight
// elements at a time so the constant indices 0..7 are trivially in bounds
// and the compiler emits no per-element bounds checks (verified with
// -d=ssa/check_bce).
//
// The floating-point evaluation order is identical to Dot followed by the
// rolled update loop: the dot folds elements into the same four partial
// sums in the same sequence (s0 gets elements 0,4,8,…; s1 gets 1,5,9,…;
// …), and the update writes are element-independent, so results are
// bit-identical to the unfused kernel — locked in by
// TestUpdateOneMatchesReference.
//
// lint:hotpath
func updateOneGeneric(p, q []float32, r float32, h HyperParams) float32 {
	n := len(p)
	q = q[:n]
	var s0, s1, s2, s3 float32
	pp, qq := p, q
	for len(pp) >= 8 && len(qq) >= 8 {
		s0 += pp[0] * qq[0]
		s1 += pp[1] * qq[1]
		s2 += pp[2] * qq[2]
		s3 += pp[3] * qq[3]
		s0 += pp[4] * qq[4]
		s1 += pp[5] * qq[5]
		s2 += pp[6] * qq[6]
		s3 += pp[7] * qq[7]
		pp = pp[8:]
		qq = qq[8:]
	}
	for len(pp) >= 4 && len(qq) >= 4 {
		s0 += pp[0] * qq[0]
		s1 += pp[1] * qq[1]
		s2 += pp[2] * qq[2]
		s3 += pp[3] * qq[3]
		pp = pp[4:]
		qq = qq[4:]
	}
	for i := 0; i < len(pp) && i < len(qq); i++ {
		s0 += pp[i] * qq[i]
	}
	e := r - (s0 + s1 + s2 + s3)
	ge := h.Gamma * e
	gl1 := h.Gamma * h.Lambda1
	gl2 := h.Gamma * h.Lambda2
	pp, qq = p, q
	for len(pp) >= 8 && len(qq) >= 8 {
		p0, q0 := pp[0], qq[0]
		p1, q1 := pp[1], qq[1]
		p2, q2 := pp[2], qq[2]
		p3, q3 := pp[3], qq[3]
		pp[0] = p0 + ge*q0 - gl1*p0
		qq[0] = q0 + ge*p0 - gl2*q0
		pp[1] = p1 + ge*q1 - gl1*p1
		qq[1] = q1 + ge*p1 - gl2*q1
		pp[2] = p2 + ge*q2 - gl1*p2
		qq[2] = q2 + ge*p2 - gl2*q2
		pp[3] = p3 + ge*q3 - gl1*p3
		qq[3] = q3 + ge*p3 - gl2*q3
		p4, q4 := pp[4], qq[4]
		p5, q5 := pp[5], qq[5]
		p6, q6 := pp[6], qq[6]
		p7, q7 := pp[7], qq[7]
		pp[4] = p4 + ge*q4 - gl1*p4
		qq[4] = q4 + ge*p4 - gl2*q4
		pp[5] = p5 + ge*q5 - gl1*p5
		qq[5] = q5 + ge*p5 - gl2*q5
		pp[6] = p6 + ge*q6 - gl1*p6
		qq[6] = q6 + ge*p6 - gl2*q6
		pp[7] = p7 + ge*q7 - gl1*p7
		qq[7] = q7 + ge*p7 - gl2*q7
		pp = pp[8:]
		qq = qq[8:]
	}
	for i := 0; i < len(pp) && i < len(qq); i++ {
		p0, q0 := pp[i], qq[i]
		pp[i] = p0 + ge*q0 - gl1*p0
		qq[i] = q0 + ge*p0 - gl2*q0
	}
	return e
}

// updateOneFastGeneric is the portable fast-math kernel. It mirrors the
// amd64 two-register SSE dot lane for lane — s0..s3 are the lanes of the
// first accumulator (elements 8i+0..3), s4..s7 the second (elements
// 8i+4..7), the four-wide remainder folds into s0..s3, the scalar tail
// into s0, and the reduction is the lanewise fold s_j+s_{j+4} followed by
// the ordered horizontal sum — so fast-math results are identical across
// architectures. The update sweep is element-independent and unchanged
// from updateOneGeneric.
//
// lint:hotpath
func updateOneFastGeneric(p, q []float32, r float32, h HyperParams) float32 {
	n := len(p)
	q = q[:n]
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	pp, qq := p, q
	for len(pp) >= 8 && len(qq) >= 8 {
		s0 += pp[0] * qq[0]
		s1 += pp[1] * qq[1]
		s2 += pp[2] * qq[2]
		s3 += pp[3] * qq[3]
		s4 += pp[4] * qq[4]
		s5 += pp[5] * qq[5]
		s6 += pp[6] * qq[6]
		s7 += pp[7] * qq[7]
		pp = pp[8:]
		qq = qq[8:]
	}
	if len(pp) >= 4 && len(qq) >= 4 {
		s0 += pp[0] * qq[0]
		s1 += pp[1] * qq[1]
		s2 += pp[2] * qq[2]
		s3 += pp[3] * qq[3]
		pp = pp[4:]
		qq = qq[4:]
	}
	for i := 0; i < len(pp) && i < len(qq); i++ {
		s0 += pp[i] * qq[i]
	}
	t0 := s0 + s4
	t1 := s1 + s5
	t2 := s2 + s6
	t3 := s3 + s7
	e := r - (t0 + t1 + t2 + t3)
	ge := h.Gamma * e
	gl1 := h.Gamma * h.Lambda1
	gl2 := h.Gamma * h.Lambda2
	pp, qq = p, q
	for len(pp) >= 4 && len(qq) >= 4 {
		p0, q0 := pp[0], qq[0]
		p1, q1 := pp[1], qq[1]
		p2, q2 := pp[2], qq[2]
		p3, q3 := pp[3], qq[3]
		pp[0] = p0 + ge*q0 - gl1*p0
		qq[0] = q0 + ge*p0 - gl2*q0
		pp[1] = p1 + ge*q1 - gl1*p1
		qq[1] = q1 + ge*p1 - gl2*q1
		pp[2] = p2 + ge*q2 - gl1*p2
		qq[2] = q2 + ge*p2 - gl2*q2
		pp[3] = p3 + ge*q3 - gl1*p3
		qq[3] = q3 + ge*p3 - gl2*q3
		pp = pp[4:]
		qq = qq[4:]
	}
	for i := 0; i < len(pp) && i < len(qq); i++ {
		p0, q0 := pp[i], qq[i]
		pp[i] = p0 + ge*q0 - gl1*p0
		qq[i] = q0 + ge*p0 - gl2*q0
	}
	return e
}

// UpdatesPerEntryFLOPs reports the floating-point operations one UpdateOne
// performs for dimension k: 2k for the dot product, ~5k for the two factor
// updates. Used by the cost model's "7k/Pi" term.
func UpdatesPerEntryFLOPs(k int) int { return 7 * k }

// UpdateBytes reports the bytes of memory traffic one update generates for
// dimension k under the paper's model: p and q are each read twice and
// written once (16k bytes for FP32 vectors of length k at 4 bytes ×
// (2 reads + 1 write) rounded the paper's way) plus the 4-byte rating —
// the (16k + 4) factor in Eq. 2.
func UpdateBytes(k int) int { return 16*k + 4 }

// TrainEntries runs one in-order SGD pass over entries against f.
// It is the inner loop shared by the serial engine and each FPSGD block
// task; callers own any required synchronisation. The sweep dispatches
// through the default-mode kernel table (kernelIDFor); engines that sweep
// every epoch select their kernel once at Init via sweeper.kernel and call
// trainEntriesKernel directly.
func TrainEntries(f *Factors, entries []sparse.Rating, h HyperParams) {
	trainEntriesKernel(f, entries, h, kernelIDFor(f.K, false))
}
