package mf

import "hccmf/internal/sparse"

// HyperParams are the SGD hyper-parameters: learning rate γ and the L2
// regularisers λ1 (on P) and λ2 (on Q) from the paper's loss
//
//	Σ (r_uv − p_u·q_v)² + λ1‖P‖² + λ2‖Q‖².
type HyperParams struct {
	Gamma   float32
	Lambda1 float32
	Lambda2 float32
}

// UpdateOne applies one SGD step for the rating r at (p, q):
//
//	e  = r − p·q
//	p += γ(e·q − λ1·p)
//	q += γ(e·p − λ2·q)
//
// using the pre-update value of p in q's gradient (the standard
// simultaneous update). It returns the signed prediction error e.
//
// The dot product is fused into the kernel rather than delegated to Dot,
// and both passes walk the vectors by advancing the slice headers eight
// elements at a time: with `len(pp) >= 8` as the loop condition the
// constant indices 0..7 are trivially in bounds, so the compiler emits no
// per-element bounds checks (verified with -d=ssa/check_bce).
//
// The floating-point evaluation order is identical to Dot followed by the
// rolled update loop: the dot still folds elements into the same four
// partial sums in the same sequence (s0 gets elements 0,4,8,…; s1 gets
// 1,5,9,…; …), and the update writes are element-independent, so results
// are bit-identical to the unfused kernel — locked in by
// TestUpdateOneMatchesReference.
//
// lint:hotpath
func UpdateOne(p, q []float32, r float32, h HyperParams) float32 {
	n := len(p)
	q = q[:n]
	var s0, s1, s2, s3 float32
	pp, qq := p, q
	for len(pp) >= 8 && len(qq) >= 8 {
		s0 += pp[0] * qq[0]
		s1 += pp[1] * qq[1]
		s2 += pp[2] * qq[2]
		s3 += pp[3] * qq[3]
		s0 += pp[4] * qq[4]
		s1 += pp[5] * qq[5]
		s2 += pp[6] * qq[6]
		s3 += pp[7] * qq[7]
		pp = pp[8:]
		qq = qq[8:]
	}
	for len(pp) >= 4 && len(qq) >= 4 {
		s0 += pp[0] * qq[0]
		s1 += pp[1] * qq[1]
		s2 += pp[2] * qq[2]
		s3 += pp[3] * qq[3]
		pp = pp[4:]
		qq = qq[4:]
	}
	for i := 0; i < len(pp) && i < len(qq); i++ {
		s0 += pp[i] * qq[i]
	}
	e := r - (s0 + s1 + s2 + s3)
	ge := h.Gamma * e
	gl1 := h.Gamma * h.Lambda1
	gl2 := h.Gamma * h.Lambda2
	pp, qq = p, q
	for len(pp) >= 8 && len(qq) >= 8 {
		p0, q0 := pp[0], qq[0]
		p1, q1 := pp[1], qq[1]
		p2, q2 := pp[2], qq[2]
		p3, q3 := pp[3], qq[3]
		pp[0] = p0 + ge*q0 - gl1*p0
		qq[0] = q0 + ge*p0 - gl2*q0
		pp[1] = p1 + ge*q1 - gl1*p1
		qq[1] = q1 + ge*p1 - gl2*q1
		pp[2] = p2 + ge*q2 - gl1*p2
		qq[2] = q2 + ge*p2 - gl2*q2
		pp[3] = p3 + ge*q3 - gl1*p3
		qq[3] = q3 + ge*p3 - gl2*q3
		p4, q4 := pp[4], qq[4]
		p5, q5 := pp[5], qq[5]
		p6, q6 := pp[6], qq[6]
		p7, q7 := pp[7], qq[7]
		pp[4] = p4 + ge*q4 - gl1*p4
		qq[4] = q4 + ge*p4 - gl2*q4
		pp[5] = p5 + ge*q5 - gl1*p5
		qq[5] = q5 + ge*p5 - gl2*q5
		pp[6] = p6 + ge*q6 - gl1*p6
		qq[6] = q6 + ge*p6 - gl2*q6
		pp[7] = p7 + ge*q7 - gl1*p7
		qq[7] = q7 + ge*p7 - gl2*q7
		pp = pp[8:]
		qq = qq[8:]
	}
	for i := 0; i < len(pp) && i < len(qq); i++ {
		p0, q0 := pp[i], qq[i]
		pp[i] = p0 + ge*q0 - gl1*p0
		qq[i] = q0 + ge*p0 - gl2*q0
	}
	return e
}

// UpdatesPerEntryFLOPs reports the floating-point operations one UpdateOne
// performs for dimension k: 2k for the dot product, ~5k for the two factor
// updates. Used by the cost model's "7k/Pi" term.
func UpdatesPerEntryFLOPs(k int) int { return 7 * k }

// UpdateBytes reports the bytes of memory traffic one update generates for
// dimension k under the paper's model: p and q are each read twice and
// written once (16k bytes for FP32 vectors of length k at 4 bytes ×
// (2 reads + 1 write) rounded the paper's way) plus the 4-byte rating —
// the (16k + 4) factor in Eq. 2.
func UpdateBytes(k int) int { return 16*k + 4 }

// TrainEntries runs one in-order SGD pass over entries against f.
// It is the inner loop shared by the serial engine and each FPSGD block
// task; callers own any required synchronisation. Row slicing is inlined
// (rather than going through PRow/QRow) so the flat P/Q base pointers and
// K stay in registers across the sweep.
//
// lint:hotpath
func TrainEntries(f *Factors, entries []sparse.Rating, h HyperParams) {
	k := f.K
	p, q := f.P, f.Q
	for idx := range entries {
		e := entries[idx]
		po := int(e.U) * k
		qo := int(e.I) * k
		UpdateOne(p[po:po+k], q[qo:qo+k], e.V, h)
	}
}
