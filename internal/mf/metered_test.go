package mf

import (
	"testing"

	"hccmf/internal/obs"
)

// TestMeteredEnginesReport verifies the pool engines implement Metered and
// feed the counters: one Epoch call is one engine epoch and len(entries)
// updates. Skipped under -race: the engine set includes Hogwild, whose
// lock-free updates are intentionally racy (see internal/raceflag).
func TestMeteredEnginesReport(t *testing.T) {
	skipLockFreeUnderRace(t)
	f, m, h := allocModel(t, 1<<10)
	o := obs.NewObserver(64, nil)
	engines := []Engine{
		&FPSGD{Threads: 2},
		&Hogwild{Threads: 2},
		&Batched{Groups: 2, BatchSize: 256},
	}
	epochs := 0
	for _, e := range engines {
		mtd, ok := e.(Metered)
		if !ok {
			t.Fatalf("%s does not implement Metered", e.Name())
		}
		mtd.SetMetrics(o.RunMetrics().EngineMetrics())
		e.Epoch(f, m, h)
		epochs++
		if got := o.Run.Epochs.Value(); got != int64(epochs) {
			t.Fatalf("after %s: epochs = %d, want %d", e.Name(), got, epochs)
		}
		if got := o.Run.Updates.Value(); got != int64(epochs*m.NNZ()) {
			t.Fatalf("after %s: updates = %d, want %d", e.Name(), got, epochs*m.NNZ())
		}
	}
	if got := o.Run.EngineEpochSeconds.Count(); got != int64(epochs) {
		t.Fatalf("engine epoch observations = %d, want %d", got, epochs)
	}
	// Detaching stops the flow.
	mtd := engines[0].(Metered)
	mtd.SetMetrics(nil)
	engines[0].Epoch(f, m, h)
	if got := o.Run.Epochs.Value(); got != int64(epochs) {
		t.Fatalf("detached engine still reported: epochs = %d", got)
	}
}

// Instrumented steady-state guards: attaching live metrics (counters, the
// epoch histogram, and a real wall clock) must not put the engines back on
// the allocator. This is the contract that makes always-on observability
// safe — see the design notes in internal/obs.

func TestInstrumentedFPSGDEpochZeroAllocs(t *testing.T) {
	skipAllocGuardUnderRace(t)
	f, m, h := allocModel(t, 1<<14)
	o := obs.NewObserver(1<<10, nil)
	e := &FPSGD{Threads: 4}
	e.SetMetrics(o.RunMetrics().EngineMetrics())
	assertZeroAllocs(t, "FPSGD.Epoch(instrumented)", func() {
		e.Epoch(f, m, h)
	})
	if o.Run.Epochs.Value() == 0 || o.Run.Updates.Value() == 0 {
		t.Fatal("instrumentation recorded nothing")
	}
}

func TestInstrumentedHogwildEpochZeroAllocs(t *testing.T) {
	skipAllocGuardUnderRace(t)
	f, m, h := allocModel(t, 1<<14)
	o := obs.NewObserver(1<<10, nil)
	e := &Hogwild{Threads: 4}
	e.SetMetrics(o.RunMetrics().EngineMetrics())
	assertZeroAllocs(t, "Hogwild.Epoch(instrumented)", func() {
		e.Epoch(f, m, h)
	})
	if o.Run.EngineEpochSeconds.Count() == 0 {
		t.Fatal("instrumentation recorded nothing")
	}
}
