//go:build !noasm

// SSE update kernels (DESIGN.md §16). Go has no float32 auto-vectorizer,
// and the scalar fused kernel is compute-port-bound on this sweep, so the
// amd64 hot path hand-vectorizes the SGD step with baseline SSE (MOVUPS /
// MULPS / ADDPS — no CPUID gate needed on amd64, SSE2 is architectural).
//
// updateOneVec is bit-identical to the scalar kernels for EVERY k:
//
//   - The packed dot accumulates into one XMM register whose four lanes
//     are exactly the scalar kernel's four partial sums (lane j gets
//     elements j, j+4, j+8, …); the scalar tail adds into lane 0, which is
//     where the scalar kernel's tail goes (s0).
//   - The horizontal reduction is the ordered fold ((s0+s1)+s2)+s3 via
//     SHUFPS lane extracts + ADDSS — NOT HADDPS, whose pairing would
//     change the summation order.
//   - The update pass is element-independent, and IEEE-754 add/mul are
//     commutative on the bit level, so ADDPS(ge*q, p) equals the scalar
//     p + ge*q exactly.
//
// updateOneFastVec is the explicitly versioned fast-math variant: the dot
// runs 8 elements per iteration into TWO accumulator registers (X0 lanes
// take elements 8i+0..3, X12 lanes 8i+4..7), the four-wide remainder folds
// into X0, the scalar tail into lane 0, then ADDPS folds the accumulators
// lanewise before the same ordered reduction. That order is mirrored
// exactly by updateOneFastGeneric, so fast-math results are identical
// across architectures — but NOT to referenceUpdateOne.
//
// ABI0 frame (asmdecl-checked): p_base+0 p_len+8 p_cap+16 / q_base+24
// q_len+32 q_cap+40 / r+48 / h_Gamma+52 h_Lambda1+56 h_Lambda2+60 /
// ret+64 → $0-68. Callers guarantee len(q) >= len(p); only p_len drives
// the loops.

#include "textflag.h"

// func updateOneVec(p, q []float32, r float32, h HyperParams) float32
TEXT ·updateOneVec(SB), NOSPLIT, $0-68
	MOVQ  p_base+0(FP), SI
	MOVQ  q_base+24(FP), DI
	MOVQ  p_len+8(FP), CX
	XORPS X0, X0
	MOVQ  CX, BX
	SHRQ  $2, BX
	JZ    dottail

dotloop:
	MOVUPS (SI), X1
	MOVUPS (DI), X2
	MULPS  X2, X1
	ADDPS  X1, X0
	ADDQ   $16, SI
	ADDQ   $16, DI
	DECQ   BX
	JNZ    dotloop

dottail:
	MOVQ CX, BX
	ANDQ $3, BX
	JZ   reduce

dottailloop:
	MOVSS (SI), X1
	MULSS (DI), X1
	ADDSS X1, X0
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  BX
	JNZ   dottailloop

reduce:
	// Ordered fold ((s0+s1)+s2)+s3, then e = r - dot and the three
	// broadcast coefficients ge, γλ1, γλ2.
	MOVAPS X0, X3
	MOVAPS X0, X1
	SHUFPS $0x1, X1, X1
	ADDSS  X1, X3
	MOVAPS X0, X1
	SHUFPS $0x2, X1, X1
	ADDSS  X1, X3
	MOVAPS X0, X1
	SHUFPS $0x3, X1, X1
	ADDSS  X1, X3
	MOVSS  r+48(FP), X4
	SUBSS  X3, X4
	MOVSS  h_Gamma+52(FP), X5
	MOVAPS X5, X10
	MOVAPS X5, X11
	MULSS  X4, X5
	MULSS  h_Lambda1+56(FP), X10
	MULSS  h_Lambda2+60(FP), X11
	SHUFPS $0x0, X5, X5
	SHUFPS $0x0, X10, X10
	SHUFPS $0x0, X11, X11
	MOVQ   p_base+0(FP), SI
	MOVQ   q_base+24(FP), DI
	MOVQ   CX, BX
	SHRQ   $2, BX
	JZ     updtail

updloop:
	// p' = (p + ge*q) - gl1*p ; q' = (q + ge*p) - gl2*q, four lanes at a
	// time with the pre-update p in q's gradient.
	MOVUPS (SI), X1
	MOVUPS (DI), X2
	MOVAPS X2, X6
	MULPS  X5, X6
	ADDPS  X1, X6
	MOVAPS X1, X7
	MULPS  X10, X7
	SUBPS  X7, X6
	MOVAPS X1, X8
	MULPS  X5, X8
	ADDPS  X2, X8
	MOVAPS X2, X9
	MULPS  X11, X9
	SUBPS  X9, X8
	MOVUPS X6, (SI)
	MOVUPS X8, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	DECQ   BX
	JNZ    updloop

updtail:
	MOVQ CX, BX
	ANDQ $3, BX
	JZ   done

updtailloop:
	MOVSS  (SI), X1
	MOVSS  (DI), X2
	MOVAPS X2, X6
	MULSS  X5, X6
	ADDSS  X1, X6
	MOVAPS X1, X7
	MULSS  X10, X7
	SUBSS  X7, X6
	MOVAPS X1, X8
	MULSS  X5, X8
	ADDSS  X2, X8
	MOVAPS X2, X9
	MULSS  X11, X9
	SUBSS  X9, X8
	MOVSS  X6, (SI)
	MOVSS  X8, (DI)
	ADDQ   $4, SI
	ADDQ   $4, DI
	DECQ   BX
	JNZ    updtailloop

done:
	MOVSS X4, ret+64(FP)
	RET

// func updateOneFastVec(p, q []float32, r float32, h HyperParams) float32
TEXT ·updateOneFastVec(SB), NOSPLIT, $0-68
	MOVQ  p_base+0(FP), SI
	MOVQ  q_base+24(FP), DI
	MOVQ  p_len+8(FP), CX
	XORPS X0, X0
	XORPS X12, X12
	MOVQ  CX, BX
	SHRQ  $3, BX
	JZ    fquad

floop8:
	MOVUPS (SI), X1
	MOVUPS (DI), X2
	MULPS  X2, X1
	ADDPS  X1, X0
	MOVUPS 16(SI), X1
	MOVUPS 16(DI), X2
	MULPS  X2, X1
	ADDPS  X1, X12
	ADDQ   $32, SI
	ADDQ   $32, DI
	DECQ   BX
	JNZ    floop8

fquad:
	MOVQ   CX, BX
	ANDQ   $4, BX
	JZ     ftail
	MOVUPS (SI), X1
	MOVUPS (DI), X2
	MULPS  X2, X1
	ADDPS  X1, X0
	ADDQ   $16, SI
	ADDQ   $16, DI

ftail:
	MOVQ CX, BX
	ANDQ $3, BX
	JZ   ffold

ftailloop:
	MOVSS (SI), X1
	MULSS (DI), X1
	ADDSS X1, X0
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  BX
	JNZ   ftailloop

ffold:
	// Lanewise fold s_j += s_{j+4}, then the same ordered reduction and
	// update sweep as updateOneVec.
	ADDPS  X12, X0
	MOVAPS X0, X3
	MOVAPS X0, X1
	SHUFPS $0x1, X1, X1
	ADDSS  X1, X3
	MOVAPS X0, X1
	SHUFPS $0x2, X1, X1
	ADDSS  X1, X3
	MOVAPS X0, X1
	SHUFPS $0x3, X1, X1
	ADDSS  X1, X3
	MOVSS  r+48(FP), X4
	SUBSS  X3, X4
	MOVSS  h_Gamma+52(FP), X5
	MOVAPS X5, X10
	MOVAPS X5, X11
	MULSS  X4, X5
	MULSS  h_Lambda1+56(FP), X10
	MULSS  h_Lambda2+60(FP), X11
	SHUFPS $0x0, X5, X5
	SHUFPS $0x0, X10, X10
	SHUFPS $0x0, X11, X11
	MOVQ   p_base+0(FP), SI
	MOVQ   q_base+24(FP), DI
	MOVQ   CX, BX
	SHRQ   $2, BX
	JZ     fupdtail

fupdloop:
	MOVUPS (SI), X1
	MOVUPS (DI), X2
	MOVAPS X2, X6
	MULPS  X5, X6
	ADDPS  X1, X6
	MOVAPS X1, X7
	MULPS  X10, X7
	SUBPS  X7, X6
	MOVAPS X1, X8
	MULPS  X5, X8
	ADDPS  X2, X8
	MOVAPS X2, X9
	MULPS  X11, X9
	SUBPS  X9, X8
	MOVUPS X6, (SI)
	MOVUPS X8, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	DECQ   BX
	JNZ    fupdloop

fupdtail:
	MOVQ CX, BX
	ANDQ $3, BX
	JZ   fdone

fupdtailloop:
	MOVSS  (SI), X1
	MOVSS  (DI), X2
	MOVAPS X2, X6
	MULSS  X5, X6
	ADDSS  X1, X6
	MOVAPS X1, X7
	MULSS  X10, X7
	SUBSS  X7, X6
	MOVAPS X1, X8
	MULSS  X5, X8
	ADDSS  X2, X8
	MOVAPS X2, X9
	MULSS  X11, X9
	SUBSS  X9, X8
	MOVSS  X6, (SI)
	MOVSS  X8, (DI)
	ADDQ   $4, SI
	ADDQ   $4, DI
	DECQ   BX
	JNZ    fupdtailloop

fdone:
	MOVSS X4, ret+64(FP)
	RET
