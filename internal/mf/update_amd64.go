//go:build amd64 && !noasm

package mf

// haveVec reports that updateOneVec is backed by a real vector kernel, so
// kernelIDFor prefers it over the unrolled Go kernels (it wins at every k
// on this sweep — the scalar kernels are compute-port-bound, not
// instruction-count-bound).
const haveVec = true

// vecImpl names the vector backend in KernelName output.
const vecImpl = "sse2"

// updateOneVec is the SSE kernel in update_amd64.s: one SGD step,
// bit-identical to updateOneGeneric/referenceUpdateOne for every k (see
// the .s file for the lane argument). Callers must guarantee
// len(q) >= len(p): the assembly reads p's length only. UpdateOne and
// trainEntriesKernel establish that with a q[:len(p)] reslice / a
// three-index slice.
//
//go:noescape
func updateOneVec(p, q []float32, r float32, h HyperParams) float32

// updateOneFastVec is the fast-math SSE kernel in update_amd64.s: the
// two-accumulator (8-wide) dot whose summation order matches
// updateOneFastGeneric exactly, not referenceUpdateOne. Same
// len(q) >= len(p) contract as updateOneVec.
//
//go:noescape
func updateOneFastVec(p, q []float32, r float32, h HyperParams) float32
