package mf

import (
	"runtime/debug"
	"testing"

	"hccmf/internal/raceflag"
	"hccmf/internal/sparse"
)

// Steady-state allocation guards: after one warm-up epoch (which may build
// grids, schedulers and worker pools), the hot training and evaluation
// paths must not allocate at all. Regressions here are exactly the GC
// pressure the kernel performance pass removed, so they fail loudly.
//
// The race detector instruments memory operations and changes allocation
// behaviour, so these run only in normal builds (see package raceflag).

func skipAllocGuardUnderRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("allocation guards measure normal builds; -race changes allocation behaviour")
	}
}

func allocModel(t *testing.T, nnz int) (*Factors, *sparse.COO, HyperParams) {
	t.Helper()
	m := trainSet(t, 200, 100, nnz, 11)
	f := NewFactorsInit(m.Rows, m.Cols, 16, m.MeanRating(), sparse.NewRand(1))
	h := HyperParams{Gamma: 0.005, Lambda1: 0.01, Lambda2: 0.01}
	return f, m, h
}

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	// A GC cycle clears the runtime's parked-goroutine (sudog) caches, so a
	// collection mid-measurement makes the worker pools' channel parks
	// re-allocate a few runtime objects that are not the code's doing.
	// Disable GC for the measurement window to keep the guard deterministic.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	fn() // warm-up: first call may build caches and pools
	// The runtime grows its parked-goroutine capacity whenever a measurement
	// hits a new peak of simultaneous parks — a one-time fill, not a per-op
	// cost. Retrying separates the two: capacity fill reaches 0 once the
	// peak is covered, a genuine per-op allocation stays ≥1 every attempt.
	var avg float64
	for attempt := 0; attempt < 5; attempt++ {
		if avg = testing.AllocsPerRun(10, fn); avg == 0 {
			return
		}
	}
	t.Fatalf("%s: %v allocs/op in steady state, want 0", name, avg)
}

func TestUpdateOneZeroAllocs(t *testing.T) {
	skipAllocGuardUnderRace(t)
	f, _, h := allocModel(t, 1<<10)
	p := f.P[:f.K]
	q := f.Q[:f.K]
	assertZeroAllocs(t, "UpdateOne", func() {
		UpdateOne(p, q, 3.5, h)
	})
}

func TestFPSGDEpochZeroAllocs(t *testing.T) {
	skipAllocGuardUnderRace(t)
	f, m, h := allocModel(t, 1<<14)
	e := &FPSGD{Threads: 4}
	assertZeroAllocs(t, "FPSGD.Epoch", func() {
		e.Epoch(f, m, h)
	})
}

func TestBatchedEpochZeroAllocs(t *testing.T) {
	skipAllocGuardUnderRace(t)
	f, m, h := allocModel(t, 1<<14)
	e := &Batched{Groups: 4, BatchSize: 4096}
	assertZeroAllocs(t, "Batched.Epoch", func() {
		e.Epoch(f, m, h)
	})
}

func TestFPSGDFastMathEpochZeroAllocs(t *testing.T) {
	skipAllocGuardUnderRace(t)
	f, m, h := allocModel(t, 1<<14)
	e := &FPSGD{Threads: 4, FastMath: true}
	assertZeroAllocs(t, "FPSGD.Epoch(fast-math)", func() {
		e.Epoch(f, m, h)
	})
}

func TestBatchedSoAEpochZeroAllocs(t *testing.T) {
	skipAllocGuardUnderRace(t)
	f, m, h := allocModel(t, 1<<14)
	e := &Batched{Groups: 4, BatchSize: 4096, FastMath: true}
	assertZeroAllocs(t, "Batched.Epoch(soa)", func() {
		e.Epoch(f, m, h)
	})
}

func TestHogwildEpochZeroAllocs(t *testing.T) {
	skipAllocGuardUnderRace(t)
	f, m, h := allocModel(t, 1<<14)
	e := &Hogwild{Threads: 4}
	assertZeroAllocs(t, "Hogwild.Epoch", func() {
		e.Epoch(f, m, h)
	})
}

func TestRMSEParallelZeroAllocs(t *testing.T) {
	skipAllocGuardUnderRace(t)
	// Large enough to clear the serial-fallback threshold (1<<14 entries)
	// so the persistent evaluator pool is actually exercised.
	f, m, _ := allocModel(t, 1<<15)
	assertZeroAllocs(t, "RMSEParallel", func() {
		RMSEParallel(f, m.Entries, 4)
	})
}
