package mf

import (
	"hash/fnv"
	"math"
	"testing"

	"hccmf/internal/sparse"
)

// referenceUpdateOne is the unfused seed kernel: Dot, then the update
// sweep. The fused UpdateOne must match it bit for bit — the performance
// pass is not allowed to move the convergence trajectory (ISSUE 3
// acceptance: Figure 7 curves unchanged at fixed seed).
func referenceUpdateOne(p, q []float32, r float32, h HyperParams) float32 {
	e := r - Dot(p, q)
	ge := h.Gamma * e
	gl1 := h.Gamma * h.Lambda1
	gl2 := h.Gamma * h.Lambda2
	for i := range p {
		p0, q0 := p[i], q[i]
		p[i] = p0 + ge*q0 - gl1*p0
		q[i] = q0 + ge*p0 - gl2*q0
	}
	return e
}

func randVec(rng *sparse.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = rng.Float32()*2 - 1
	}
	return v
}

func TestUpdateOneMatchesReference(t *testing.T) {
	rng := sparse.NewRand(99)
	h := HyperParams{Gamma: 0.01, Lambda1: 0.02, Lambda2: 0.03}
	// Cover the unrolled body and every remainder tail, plus large k.
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 32, 33, 128} {
		for trial := 0; trial < 20; trial++ {
			p1, q1 := randVec(rng, k), randVec(rng, k)
			p2 := append([]float32(nil), p1...)
			q2 := append([]float32(nil), q1...)
			r := rng.Float32() * 5
			e1 := UpdateOne(p1, q1, r, h)
			e2 := referenceUpdateOne(p2, q2, r, h)
			if e1 != e2 {
				t.Fatalf("k=%d: error %v != reference %v", k, e1, e2)
			}
			for i := range p1 {
				if p1[i] != p2[i] || q1[i] != q2[i] {
					t.Fatalf("k=%d: factor %d diverged: p %v/%v q %v/%v",
						k, i, p1[i], p2[i], q1[i], q2[i])
				}
			}
		}
	}
}

// referenceFastUpdateOne is the rolled form of the fast-math accumulation
// contract (see UpdateOneFastMath): eight partial sums with element j
// folding into s(j mod 8) across full 8-element rounds, a single 4-wide
// remainder round into s0..s3, the scalar tail into s0, the lanewise fold
// t_j = s_j + s_{j+4}, and the ordered final reduction. Both fast-math
// implementations (SSE and the mirrored Go kernel) must match it bit for
// bit, which is what makes fast-math cross-architecture deterministic.
func referenceFastUpdateOne(p, q []float32, r float32, h HyperParams) float32 {
	var s [8]float32
	n := len(p)
	i := 0
	for ; i+8 <= n; i += 8 {
		for j := 0; j < 8; j++ {
			s[j] += p[i+j] * q[i+j]
		}
	}
	if n-i >= 4 {
		for j := 0; j < 4; j++ {
			s[j] += p[i+j] * q[i+j]
		}
		i += 4
	}
	for ; i < n; i++ {
		s[0] += p[i] * q[i]
	}
	t0 := s[0] + s[4]
	t1 := s[1] + s[5]
	t2 := s[2] + s[6]
	t3 := s[3] + s[7]
	e := r - (((t0 + t1) + t2) + t3)
	ge := h.Gamma * e
	gl1 := h.Gamma * h.Lambda1
	gl2 := h.Gamma * h.Lambda2
	for i := range p {
		p0, q0 := p[i], q[i]
		p[i] = p0 + ge*q0 - gl1*p0
		q[i] = q0 + ge*p0 - gl2*q0
	}
	return e
}

// kernelVariant names one single-rating kernel implementation and the
// dimensions it supports.
type kernelVariant struct {
	name     string
	fn       func(p, q []float32, r float32, h HyperParams) float32
	ref      func(p, q []float32, r float32, h HyperParams) float32
	supports func(k int) bool
}

func kernelVariants() []kernelVariant {
	any := func(int) bool { return true }
	return []kernelVariant{
		{"UpdateOne", UpdateOne, referenceUpdateOne, any},
		{"updateOneGeneric", updateOneGeneric, referenceUpdateOne, any},
		{"updateOneVec", func(p, q []float32, r float32, h HyperParams) float32 {
			return updateOneVec(p, q, r, h)
		}, referenceUpdateOne, any},
		{"updateOneK32", updateOneK32, referenceUpdateOne, func(k int) bool { return k == 32 }},
		{"updateOneK64", updateOneK64, referenceUpdateOne, func(k int) bool { return k == 64 }},
		{"updateOneK128", updateOneK128, referenceUpdateOne, func(k int) bool { return k == 128 }},
		{"UpdateOneFastMath", UpdateOneFastMath, referenceFastUpdateOne, any},
		{"updateOneFastGeneric", updateOneFastGeneric, referenceFastUpdateOne, any},
	}
}

// TestKernelVariantsMatchReference sweeps every kernel implementation —
// generic, vector, each unrolled specialization, and both fast-math
// implementations — across k = 1..160 (every remainder shape, including
// non-multiples of 4 and 8) and pins each bit-for-bit to its reference
// accumulation order.
func TestKernelVariantsMatchReference(t *testing.T) {
	h := HyperParams{Gamma: 0.01, Lambda1: 0.02, Lambda2: 0.03}
	for _, v := range kernelVariants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			rng := sparse.NewRand(99)
			for k := 1; k <= 160; k++ {
				if !v.supports(k) {
					continue
				}
				for trial := 0; trial < 8; trial++ {
					p1, q1 := randVec(rng, k), randVec(rng, k)
					p2 := append([]float32(nil), p1...)
					q2 := append([]float32(nil), q1...)
					r := rng.Float32() * 5
					e1 := v.fn(p1, q1, r, h)
					e2 := v.ref(p2, q2, r, h)
					if e1 != e2 {
						t.Fatalf("k=%d trial %d: error %v != reference %v", k, trial, e1, e2)
					}
					for i := range p1 {
						if p1[i] != p2[i] || q1[i] != q2[i] {
							t.Fatalf("k=%d trial %d: factor %d diverged: p %v/%v q %v/%v",
								k, trial, i, p1[i], p2[i], q1[i], q2[i])
						}
					}
				}
			}
		})
	}
}

// TestTrainEntriesKernelMatchesReference pins every trainEntriesKernel
// dispatch case to a per-entry reference sweep at its kernel's dimension.
func TestTrainEntriesKernelMatchesReference(t *testing.T) {
	h := HyperParams{Gamma: 0.01, Lambda1: 0.005, Lambda2: 0.005}
	cases := []struct {
		name string
		id   kernelID
		k    int
		ref  func(p, q []float32, r float32, h HyperParams) float32
	}{
		{"generic", kernGeneric, 24, referenceUpdateOne},
		{"vec", kernVec, 24, referenceUpdateOne},
		{"k32", kernK32, 32, referenceUpdateOne},
		{"k64", kernK64, 64, referenceUpdateOne},
		{"k128", kernK128, 128, referenceUpdateOne},
		{"fast", kernFast, 24, referenceFastUpdateOne},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m := trainSet(t, 40, 30, 2000, 21)
			f1 := NewFactorsInit(m.Rows, m.Cols, tc.k, m.MeanRating(), sparse.NewRand(4))
			f2 := f1.Clone()
			trainEntriesKernel(f1, m.Entries, h, tc.id)
			for _, e := range m.Entries {
				tc.ref(f2.PRow(e.U), f2.QRow(e.I), e.V, h)
			}
			for i := range f1.P {
				if f1.P[i] != f2.P[i] {
					t.Fatalf("P[%d] diverged: %v != %v", i, f1.P[i], f2.P[i])
				}
			}
			for i := range f1.Q {
				if f1.Q[i] != f2.Q[i] {
					t.Fatalf("Q[%d] diverged: %v != %v", i, f1.Q[i], f2.Q[i])
				}
			}
		})
	}
}

// TestKernelIDForSelection pins the selection table: fast-math always picks
// the fast kernel; otherwise the build's vector kernel wins when present,
// and the unrolled specializations cover 32/64/128 on portable builds.
func TestKernelIDForSelection(t *testing.T) {
	for _, k := range []int{8, 32, 64, 128, 129} {
		if got := kernelIDFor(k, true); got != kernFast {
			t.Fatalf("kernelIDFor(%d, fast) = %v, want kernFast", k, got)
		}
	}
	for _, tc := range []struct {
		k    int
		want kernelID
	}{
		{32, kernK32}, {64, kernK64}, {128, kernK128}, {8, kernGeneric}, {129, kernGeneric},
	} {
		want := tc.want
		if haveVec {
			want = kernVec
		}
		if got := kernelIDFor(tc.k, false); got != want {
			t.Fatalf("kernelIDFor(%d, false) = %v, want %v", tc.k, got, want)
		}
	}
}

// fastMathGoldens pins the fast-math training trajectory: FNV-1a over the
// factor bits after three kernFast sweeps of a fixed problem, per
// dimension. Fast-math reorders accumulation relative to the default
// kernels, but it is its own versioned contract — the SSE kernel and the
// mirrored Go kernel implement the same order, so these goldens hold on
// every architecture. A change here is a fast-math contract break and
// needs a version bump, not a golden refresh.
var fastMathGoldens = map[int]uint64{
	16: 0xc0f91605993472bd,
	24: 0xd5506b97c298d992,
	32: 0xbc5775ad99b8a34a,
}

func fastMathFingerprint(f *Factors) uint64 {
	hsh := fnv.New64a()
	var buf [4]byte
	for _, v := range f.P {
		bits := math.Float32bits(v)
		buf[0], buf[1], buf[2], buf[3] = byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24)
		hsh.Write(buf[:])
	}
	for _, v := range f.Q {
		bits := math.Float32bits(v)
		buf[0], buf[1], buf[2], buf[3] = byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24)
		hsh.Write(buf[:])
	}
	return hsh.Sum64()
}

func TestFastMathGoldenBits(t *testing.T) {
	h := HyperParams{Gamma: 0.005, Lambda1: 0.01, Lambda2: 0.01}
	for k, want := range fastMathGoldens {
		m := trainSet(t, 60, 40, 3000, 33)
		f := NewFactorsInit(m.Rows, m.Cols, k, m.MeanRating(), sparse.NewRand(7))
		for epoch := 0; epoch < 3; epoch++ {
			trainEntriesKernel(f, m.Entries, h, kernFast)
		}
		if got := fastMathFingerprint(f); got != want {
			t.Fatalf("k=%d: fast-math fingerprint %#x, want %#x (fast-math contract break?)", k, got, want)
		}
	}
}

// TestBatchedSoAMatchesInPlaceFastMath pins the SoA staging loop's
// value-preservation claim: a single-group fast-math Batched epoch (every
// batch staged through scratch, written back at batch end) is bit-identical
// to the plain in-place fast-math sweep over the same entry order.
func TestBatchedSoAMatchesInPlaceFastMath(t *testing.T) {
	m := trainSet(t, 80, 50, 4000, 17)
	h := HyperParams{Gamma: 0.005, Lambda1: 0.01, Lambda2: 0.01}
	f1 := NewFactorsInit(m.Rows, m.Cols, 16, m.MeanRating(), sparse.NewRand(9))
	f2 := f1.Clone()
	e := &Batched{Groups: 1, BatchSize: 512, FastMath: true}
	for epoch := 0; epoch < 2; epoch++ {
		e.Epoch(f1, m, h)
		trainEntriesKernel(f2, m.Entries, h, kernFast)
	}
	for i := range f1.P {
		if f1.P[i] != f2.P[i] {
			t.Fatalf("P[%d] diverged: %v != %v", i, f1.P[i], f2.P[i])
		}
	}
	for i := range f1.Q {
		if f1.Q[i] != f2.Q[i] {
			t.Fatalf("Q[%d] diverged: %v != %v", i, f1.Q[i], f2.Q[i])
		}
	}
}

// TestTrainEntriesMatchesRowViews pins TrainEntries' inlined row indexing
// to the PRow/QRow path it replaced.
func TestTrainEntriesMatchesRowViews(t *testing.T) {
	m := trainSet(t, 40, 30, 2000, 21)
	h := HyperParams{Gamma: 0.01, Lambda1: 0.005, Lambda2: 0.005}
	f1 := NewFactorsInit(m.Rows, m.Cols, 8, m.MeanRating(), sparse.NewRand(4))
	f2 := f1.Clone()
	TrainEntries(f1, m.Entries, h)
	for _, e := range m.Entries {
		UpdateOne(f2.PRow(e.U), f2.QRow(e.I), e.V, h)
	}
	for i := range f1.P {
		if f1.P[i] != f2.P[i] {
			t.Fatalf("P[%d] diverged: %v != %v", i, f1.P[i], f2.P[i])
		}
	}
	for i := range f1.Q {
		if f1.Q[i] != f2.Q[i] {
			t.Fatalf("Q[%d] diverged: %v != %v", i, f1.Q[i], f2.Q[i])
		}
	}
}
