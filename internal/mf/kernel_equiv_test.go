package mf

import (
	"testing"

	"hccmf/internal/sparse"
)

// referenceUpdateOne is the unfused seed kernel: Dot, then the update
// sweep. The fused UpdateOne must match it bit for bit — the performance
// pass is not allowed to move the convergence trajectory (ISSUE 3
// acceptance: Figure 7 curves unchanged at fixed seed).
func referenceUpdateOne(p, q []float32, r float32, h HyperParams) float32 {
	e := r - Dot(p, q)
	ge := h.Gamma * e
	gl1 := h.Gamma * h.Lambda1
	gl2 := h.Gamma * h.Lambda2
	for i := range p {
		p0, q0 := p[i], q[i]
		p[i] = p0 + ge*q0 - gl1*p0
		q[i] = q0 + ge*p0 - gl2*q0
	}
	return e
}

func randVec(rng *sparse.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = rng.Float32()*2 - 1
	}
	return v
}

func TestUpdateOneMatchesReference(t *testing.T) {
	rng := sparse.NewRand(99)
	h := HyperParams{Gamma: 0.01, Lambda1: 0.02, Lambda2: 0.03}
	// Cover the unrolled body and every remainder tail, plus large k.
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 32, 33, 128} {
		for trial := 0; trial < 20; trial++ {
			p1, q1 := randVec(rng, k), randVec(rng, k)
			p2 := append([]float32(nil), p1...)
			q2 := append([]float32(nil), q1...)
			r := rng.Float32() * 5
			e1 := UpdateOne(p1, q1, r, h)
			e2 := referenceUpdateOne(p2, q2, r, h)
			if e1 != e2 {
				t.Fatalf("k=%d: error %v != reference %v", k, e1, e2)
			}
			for i := range p1 {
				if p1[i] != p2[i] || q1[i] != q2[i] {
					t.Fatalf("k=%d: factor %d diverged: p %v/%v q %v/%v",
						k, i, p1[i], p2[i], q1[i], q2[i])
				}
			}
		}
	}
}

// TestTrainEntriesMatchesRowViews pins TrainEntries' inlined row indexing
// to the PRow/QRow path it replaced.
func TestTrainEntriesMatchesRowViews(t *testing.T) {
	m := trainSet(t, 40, 30, 2000, 21)
	h := HyperParams{Gamma: 0.01, Lambda1: 0.005, Lambda2: 0.005}
	f1 := NewFactorsInit(m.Rows, m.Cols, 8, m.MeanRating(), sparse.NewRand(4))
	f2 := f1.Clone()
	TrainEntries(f1, m.Entries, h)
	for _, e := range m.Entries {
		UpdateOne(f2.PRow(e.U), f2.QRow(e.I), e.V, h)
	}
	for i := range f1.P {
		if f1.P[i] != f2.P[i] {
			t.Fatalf("P[%d] diverged: %v != %v", i, f1.P[i], f2.P[i])
		}
	}
	for i := range f1.Q {
		if f1.Q[i] != f2.Q[i] {
			t.Fatalf("Q[%d] diverged: %v != %v", i, f1.Q[i], f2.Q[i])
		}
	}
}
