package mf

import (
	"math"
	"testing"

	"hccmf/internal/sparse"
)

func TestConstantSchedule(t *testing.T) {
	s := Constant{Rate: 0.005}
	for _, e := range []int{0, 1, 100} {
		if s.Gamma(e) != 0.005 {
			t.Fatalf("Gamma(%d) = %v", e, s.Gamma(e))
		}
	}
	if s.Name() != "const(0.005)" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestInverseDecayMonotone(t *testing.T) {
	s := InverseDecay{Gamma0: 0.01, Beta: 0.3}
	if s.Gamma(0) != 0.01 {
		t.Fatalf("Gamma(0) = %v, want γ0", s.Gamma(0))
	}
	prev := s.Gamma(0)
	for e := 1; e < 50; e++ {
		g := s.Gamma(e)
		if g >= prev {
			t.Fatalf("decay not monotone at epoch %d: %v ≥ %v", e, g, prev)
		}
		prev = g
	}
	// Closed form at t=4: γ0/(1+β·8).
	want := 0.01 / (1 + 0.3*math.Pow(4, 1.5))
	if got := float64(s.Gamma(4)); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Gamma(4) = %v, want %v", got, want)
	}
	if s.Gamma(-3) != s.Gamma(0) {
		t.Fatal("negative epoch not clamped")
	}
}

func TestBoldDriver(t *testing.T) {
	b := &BoldDriver{Rate: 0.01}
	if b.Gamma(0) != 0.01 {
		t.Fatal("initial rate wrong")
	}
	b.Observe(100) // first observation: no change
	if b.Rate != 0.01 {
		t.Fatalf("rate changed on first observation: %v", b.Rate)
	}
	b.Observe(90) // improvement → grow 1.05
	if math.Abs(float64(b.Rate)-0.0105) > 1e-6 {
		t.Fatalf("rate after improvement = %v", b.Rate)
	}
	b.Observe(95) // regression → halve
	if math.Abs(float64(b.Rate)-0.00525) > 1e-6 {
		t.Fatalf("rate after regression = %v", b.Rate)
	}
}

func TestRunScheduledConvergesAndDecays(t *testing.T) {
	m := trainSet(t, 80, 60, 4000, 41)
	rng := sparse.NewRand(1)
	mk := func() (*Trainer, *Factors) {
		tr := &Trainer{Engine: Serial{}, Train: m,
			Hyper: HyperParams{Gamma: 0.02, Lambda1: 0.005, Lambda2: 0.005}}
		return tr, NewFactorsInit(m.Rows, m.Cols, 8, m.MeanRating(), sparse.NewRand(2))
	}
	_ = rng

	trC, fC := mk()
	trC.RunScheduled(fC, 25, Constant{Rate: 0.02})
	trD, fD := mk()
	trD.RunScheduled(fD, 25, InverseDecay{Gamma0: 0.02, Beta: 0.1})
	trB, fB := mk()
	trB.RunScheduled(fB, 25, &BoldDriver{Rate: 0.02})

	for name, f := range map[string]*Factors{"const": fC, "decay": fD, "bold": fB} {
		if err := f.Validate(); err != nil {
			t.Fatalf("%s produced non-finite factors: %v", name, err)
		}
		if rmse := RMSE(f, m.Entries); rmse > 0.4 {
			t.Fatalf("%s schedule converged poorly: %v", name, rmse)
		}
	}
	if trC.Epochs() != 25 {
		t.Fatalf("epochs = %d", trC.Epochs())
	}
}
