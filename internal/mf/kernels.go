package mf

import "hccmf/internal/sparse"

//go:generate go run ./internal/genkspec -out update_kspec.go

// Kernel selection (DESIGN.md §16). Every engine resolves its update
// kernel ONCE — at engine Init via sweeper.kernel, since k is fixed for a
// training run — and sweeps through trainEntriesKernel, whose dispatch
// switch sits outside the entry loop so each specialized loop makes direct
// (not indirect) calls with a constant dimension the compiler can fold
// into addressing.
//
// The table, best-first per build:
//
//	fast-math        → kernFast     updateOneFastVec (SSE 8-accumulator on
//	                                 amd64, mirrored Go kernel elsewhere)
//	amd64            → kernVec      updateOneVec (SSE, bit-identical to
//	                                 referenceUpdateOne for every k)
//	k ∈ {32,64,128}  → kernK*       fully unrolled Go kernels (generated,
//	                                 see internal/genkspec)
//	otherwise        → kernGeneric  updateOneGeneric (fused 8-wide)
//
// Default-mode kernels (everything but kernFast) are pinned bit-identical
// to referenceUpdateOne by the k=8..160 sweep in kernel_equiv_test.go.
type kernelID uint8

const (
	kernGeneric kernelID = iota
	kernK32
	kernK64
	kernK128
	kernVec
	kernFast
)

// kernelIDFor picks the kernel for dimension k. Fast-math always selects
// the reordered-accumulation kernel; otherwise the vector kernel wins
// where the build has one (it beats the unrolled Go kernels at every k),
// and the unrolled kernels cover the common dimensions on portable builds.
func kernelIDFor(k int, fastMath bool) kernelID {
	if fastMath {
		return kernFast
	}
	if haveVec {
		return kernVec
	}
	switch k {
	case 32:
		return kernK32
	case 64:
		return kernK64
	case 128:
		return kernK128
	}
	return kernGeneric
}

// KernelName reports the human-readable name of the kernel kernelIDFor
// selects for (k, fastMath) on this build — for run banners and reports.
func KernelName(k int, fastMath bool) string {
	switch kernelIDFor(k, fastMath) {
	case kernFast:
		return "fastmath-8acc-" + vecImpl
	case kernVec:
		return "vec-" + vecImpl
	case kernK32:
		return "unrolled-k32"
	case kernK64:
		return "unrolled-k64"
	case kernK128:
		return "unrolled-k128"
	default:
		return "generic-8wide"
	}
}

// trainEntriesKernel sweeps entries through the selected kernel. Each case
// is its own loop so the kernel call is direct and, for the unrolled
// kernels, the row stride is a constant. Row slicing is inlined (rather
// than going through PRow/QRow) so the flat P/Q base pointers and K stay
// in registers across the sweep; the three-index q slice caps the view so
// the kernels' q[:len(p)] guard is free.
//
// lint:hotpath
func trainEntriesKernel(f *Factors, entries []sparse.Rating, h HyperParams, id kernelID) {
	p, q := f.P, f.Q
	switch id {
	case kernVec:
		k := f.K
		for idx := range entries {
			e := entries[idx]
			po := int(e.U) * k
			qo := int(e.I) * k
			updateOneVec(p[po:po+k], q[qo:qo+k:qo+k], e.V, h)
		}
	case kernFast:
		k := f.K
		for idx := range entries {
			e := entries[idx]
			po := int(e.U) * k
			qo := int(e.I) * k
			updateOneFastVec(p[po:po+k], q[qo:qo+k:qo+k], e.V, h)
		}
	case kernK32:
		for idx := range entries {
			e := entries[idx]
			po := int(e.U) * 32
			qo := int(e.I) * 32
			updateOneK32(p[po:po+32], q[qo:qo+32:qo+32], e.V, h)
		}
	case kernK64:
		for idx := range entries {
			e := entries[idx]
			po := int(e.U) * 64
			qo := int(e.I) * 64
			updateOneK64(p[po:po+64], q[qo:qo+64:qo+64], e.V, h)
		}
	case kernK128:
		for idx := range entries {
			e := entries[idx]
			po := int(e.U) * 128
			qo := int(e.I) * 128
			updateOneK128(p[po:po+128], q[qo:qo+128:qo+128], e.V, h)
		}
	default:
		k := f.K
		for idx := range entries {
			e := entries[idx]
			po := int(e.U) * k
			qo := int(e.I) * k
			updateOneGeneric(p[po:po+k], q[qo:qo+k:qo+k], e.V, h)
		}
	}
}
