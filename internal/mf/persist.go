package mf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Model persistence: a trained factor model is the product HCC-MF exists
// to produce, so it needs a durable format. The layout is little-endian:
//
//	magic "HCMM" | version u32 | m u64 | n u64 | k u64 | P floats | Q floats
//
// Biased models append | mu f32 | BU floats | BI floats and use version 2.

const (
	factorsMagic   = "HCMM"
	factorsVersion = 1
	biasedVersion  = 2
)

// WriteFactors serialises a plain factor model.
func WriteFactors(w io.Writer, f *Factors) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := writeHeader(bw, factorsVersion, f); err != nil {
		return err
	}
	if err := writeFloats(bw, f.P); err != nil {
		return err
	}
	if err := writeFloats(bw, f.Q); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadFactors deserialises a plain factor model.
func ReadFactors(r io.Reader) (*Factors, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	version, f, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if version != factorsVersion {
		return nil, fmt.Errorf("mf: model version %d is not a plain factor model", version)
	}
	if err := readFloats(br, f.P); err != nil {
		return nil, err
	}
	if err := readFloats(br, f.Q); err != nil {
		return nil, err
	}
	return f, f.Validate()
}

// WriteBiasedFactors serialises a biased model.
func WriteBiasedFactors(w io.Writer, b *BiasedFactors) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := writeHeader(bw, biasedVersion, b.Factors); err != nil {
		return err
	}
	if err := writeFloats(bw, b.P); err != nil {
		return err
	}
	if err := writeFloats(bw, b.Q); err != nil {
		return err
	}
	var mu [4]byte
	binary.LittleEndian.PutUint32(mu[:], math.Float32bits(b.Mu))
	if _, err := bw.Write(mu[:]); err != nil {
		return err
	}
	if err := writeFloats(bw, b.BU); err != nil {
		return err
	}
	if err := writeFloats(bw, b.BI); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBiasedFactors deserialises a biased model.
func ReadBiasedFactors(r io.Reader) (*BiasedFactors, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	version, f, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if version != biasedVersion {
		return nil, fmt.Errorf("mf: model version %d is not a biased model", version)
	}
	if err := readFloats(br, f.P); err != nil {
		return nil, err
	}
	if err := readFloats(br, f.Q); err != nil {
		return nil, err
	}
	b := &BiasedFactors{
		Factors: f,
		BU:      make([]float32, f.M),
		BI:      make([]float32, f.N),
	}
	var mu [4]byte
	if _, err := io.ReadFull(br, mu[:]); err != nil {
		return nil, fmt.Errorf("mf: reading mu: %w", err)
	}
	b.Mu = math.Float32frombits(binary.LittleEndian.Uint32(mu[:]))
	if err := readFloats(br, b.BU); err != nil {
		return nil, err
	}
	if err := readFloats(br, b.BI); err != nil {
		return nil, err
	}
	return b, b.Validate()
}

func writeHeader(w io.Writer, version uint32, f *Factors) error {
	if _, err := io.WriteString(w, factorsMagic); err != nil {
		return err
	}
	hdr := make([]byte, 4+8+8+8)
	binary.LittleEndian.PutUint32(hdr[0:], version)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(f.M))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(f.N))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(f.K))
	_, err := w.Write(hdr)
	return err
}

func readHeader(r io.Reader) (uint32, *Factors, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return 0, nil, fmt.Errorf("mf: reading magic: %w", err)
	}
	if string(magic) != factorsMagic {
		return 0, nil, fmt.Errorf("mf: bad model magic %q", magic)
	}
	hdr := make([]byte, 4+8+8+8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, fmt.Errorf("mf: reading header: %w", err)
	}
	version := binary.LittleEndian.Uint32(hdr[0:])
	m := binary.LittleEndian.Uint64(hdr[4:])
	n := binary.LittleEndian.Uint64(hdr[12:])
	k := binary.LittleEndian.Uint64(hdr[20:])
	const limit = 1 << 32
	if m == 0 || n == 0 || k == 0 || m > limit || n > limit || k > 4096 {
		return 0, nil, fmt.Errorf("mf: implausible model dims m=%d n=%d k=%d", m, n, k)
	}
	if m*k > limit || n*k > limit {
		return 0, nil, fmt.Errorf("mf: model too large: %d×%d, k=%d", m, n, k)
	}
	return version, NewFactors(int(m), int(n), int(k)), nil
}

func writeFloats(w io.Writer, v []float32) error {
	buf := make([]byte, 4*4096)
	for len(v) > 0 {
		chunk := len(v)
		if chunk > 4096 {
			chunk = 4096
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v[i]))
		}
		if _, err := w.Write(buf[:4*chunk]); err != nil {
			return err
		}
		v = v[chunk:]
	}
	return nil
}

func readFloats(r io.Reader, v []float32) error {
	buf := make([]byte, 4*4096)
	for len(v) > 0 {
		chunk := len(v)
		if chunk > 4096 {
			chunk = 4096
		}
		if _, err := io.ReadFull(r, buf[:4*chunk]); err != nil {
			return fmt.Errorf("mf: reading floats: %w", err)
		}
		for i := 0; i < chunk; i++ {
			v[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		v = v[chunk:]
	}
	return nil
}
