package mf

import (
	"math"
	"testing"

	"hccmf/internal/sparse"
)

func TestRMSEKnownValue(t *testing.T) {
	f := NewFactors(2, 2, 1)
	f.P[0], f.P[1] = 1, 2
	f.Q[0], f.Q[1] = 1, 1
	entries := []sparse.Rating{
		{U: 0, I: 0, V: 2}, // predict 1, err 1
		{U: 1, I: 1, V: 0}, // predict 2, err -2
	}
	want := math.Sqrt((1.0 + 4.0) / 2.0)
	if got := RMSE(f, entries); math.Abs(got-want) > 1e-9 {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
}

func TestRMSEEmpty(t *testing.T) {
	f := NewFactors(1, 1, 1)
	if got := RMSE(f, nil); got != 0 {
		t.Fatalf("RMSE(empty) = %v", got)
	}
	if got := RMSEParallel(f, nil, 4); got != 0 {
		t.Fatalf("RMSEParallel(empty) = %v", got)
	}
}

func TestRMSEParallelMatchesSerial(t *testing.T) {
	rng := sparse.NewRand(17)
	const rows, cols = 100, 100
	f := NewFactorsInit(rows, cols, 8, 3, rng)
	entries := make([]sparse.Rating, 50000)
	for i := range entries {
		entries[i] = sparse.Rating{
			U: int32(rng.Intn(rows)), I: int32(rng.Intn(cols)),
			V: 1 + 4*rng.Float32(),
		}
	}
	want := RMSE(f, entries)
	for _, workers := range []int{1, 2, 3, 8} {
		got := RMSEParallel(f, entries, workers)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("workers=%d: %v != %v", workers, got, want)
		}
	}
}

func TestRMSEParallelSmallInputUsesSerialPath(t *testing.T) {
	f := NewFactors(2, 2, 1)
	entries := []sparse.Rating{{U: 0, I: 0, V: 1}}
	if got, want := RMSEParallel(f, entries, 8), RMSE(f, entries); got != want {
		t.Fatalf("small-input parallel RMSE %v != %v", got, want)
	}
}

func TestLossIncludesRegularisation(t *testing.T) {
	f := NewFactors(1, 1, 2)
	f.P[0], f.P[1] = 1, 1
	f.Q[0], f.Q[1] = 1, 1
	entries := []sparse.Rating{{U: 0, I: 0, V: 2}} // perfect prediction
	h := HyperParams{Lambda1: 0.5, Lambda2: 0.25}
	// residual² = 0, λ1·|P|² = 0.5*2 = 1, λ2·|Q|² = 0.25*2 = 0.5
	if got := Loss(f, entries, h); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("Loss = %v, want 1.5", got)
	}
}

func BenchmarkUpdateOneK32(b *testing.B) {
	p := make([]float32, 32)
	q := make([]float32, 32)
	for i := range p {
		p[i], q[i] = 0.3, 0.4
	}
	h := HyperParams{Gamma: 0.005, Lambda1: 0.01, Lambda2: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UpdateOne(p, q, 3.5, h)
	}
}

func BenchmarkDotK32(b *testing.B) {
	p := make([]float32, 32)
	q := make([]float32, 32)
	for i := range p {
		p[i], q[i] = 0.3, 0.4
	}
	var sink float32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += Dot(p, q)
	}
	_ = sink
}

func BenchmarkEpochSerial(b *testing.B)  { benchEpoch(b, Serial{}) }
func BenchmarkEpochHogwild(b *testing.B) { benchEpoch(b, &Hogwild{Threads: 4}) }
func BenchmarkEpochFPSGD(b *testing.B)   { benchEpoch(b, &FPSGD{Threads: 4}) }
func BenchmarkEpochBatched(b *testing.B) { benchEpoch(b, &Batched{Groups: 8, BatchSize: 4096}) }

func benchEpoch(b *testing.B, e Engine) {
	m := trainSet(b, 2000, 1000, 200000, 1)
	f := NewFactorsInit(m.Rows, m.Cols, 32, m.MeanRating(), sparse.NewRand(1))
	h := HyperParams{Gamma: 0.005, Lambda1: 0.01, Lambda2: 0.01}
	b.SetBytes(int64(m.NNZ()) * int64(UpdateBytes(32)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Epoch(f, m, h)
	}
}
