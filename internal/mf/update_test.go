package mf

import (
	"math"
	"testing"

	"hccmf/internal/sparse"
)

func TestUpdateOneReducesError(t *testing.T) {
	p := []float32{0.5, 0.5}
	q := []float32{0.5, 0.5}
	h := HyperParams{Gamma: 0.1, Lambda1: 0, Lambda2: 0}
	const r = 3.0
	before := math.Abs(float64(r - Dot(p, q)))
	for i := 0; i < 50; i++ {
		UpdateOne(p, q, r, h)
	}
	after := math.Abs(float64(r - Dot(p, q)))
	if after >= before {
		t.Fatalf("error did not shrink: %v → %v", before, after)
	}
	if after > 0.01 {
		t.Fatalf("did not converge to rating: residual %v", after)
	}
}

func TestUpdateOneReturnsError(t *testing.T) {
	p := []float32{1, 0}
	q := []float32{1, 0}
	h := HyperParams{Gamma: 0}
	if e := UpdateOne(p, q, 5, h); e != 4 {
		t.Fatalf("returned error = %v, want 4", e)
	}
}

func TestUpdateOneMatchesScalarReference(t *testing.T) {
	// The unrolled kernel must match a plain scalar implementation for
	// every vector length (tail handling).
	for k := 1; k <= 19; k++ {
		rng := sparse.NewRand(uint64(k))
		p := make([]float32, k)
		q := make([]float32, k)
		for i := range p {
			p[i] = rng.Float32()
			q[i] = rng.Float32()
		}
		pr := append([]float32(nil), p...)
		qr := append([]float32(nil), q...)
		h := HyperParams{Gamma: 0.01, Lambda1: 0.02, Lambda2: 0.03}
		const r = 3.5

		UpdateOne(p, q, r, h)

		// Reference: simultaneous update with pre-update values.
		e := r - Dot(pr, qr)
		for i := range pr {
			p0, q0 := pr[i], qr[i]
			pr[i] = p0 + h.Gamma*(e*q0-h.Lambda1*p0)
			qr[i] = q0 + h.Gamma*(e*p0-h.Lambda2*q0)
		}
		for i := range p {
			if math.Abs(float64(p[i]-pr[i])) > 1e-6 {
				t.Fatalf("k=%d: P[%d] = %v, want %v", k, i, p[i], pr[i])
			}
			if math.Abs(float64(q[i]-qr[i])) > 1e-6 {
				t.Fatalf("k=%d: Q[%d] = %v, want %v", k, i, q[i], qr[i])
			}
		}
	}
}

func TestUpdateOneRegularisationShrinks(t *testing.T) {
	// With rating 0 and pure regularisation pressure, norms must shrink.
	p := []float32{1, 1, 1, 1}
	q := []float32{0, 0, 0, 0}
	h := HyperParams{Gamma: 0.1, Lambda1: 0.5, Lambda2: 0.5}
	UpdateOne(p, q, 0, h)
	for i := range p {
		if p[i] >= 1 {
			t.Fatalf("λ1 did not shrink p: %v", p)
		}
	}
}

func TestUpdateBytesMatchesPaperModel(t *testing.T) {
	if got := UpdateBytes(128); got != 16*128+4 {
		t.Fatalf("UpdateBytes(128) = %d", got)
	}
	if got := UpdatesPerEntryFLOPs(32); got != 224 {
		t.Fatalf("FLOPs(32) = %d", got)
	}
}

func TestTrainEntriesLowersRMSE(t *testing.T) {
	rng := sparse.NewRand(8)
	m := sparse.NewCOO(50, 40, 500)
	for c := 0; c < 500; c++ {
		m.Add(int32(rng.Intn(50)), int32(rng.Intn(40)), 1+4*rng.Float32())
	}
	f := NewFactorsInit(50, 40, 8, m.MeanRating(), rng)
	h := HyperParams{Gamma: 0.01, Lambda1: 0.01, Lambda2: 0.01}
	before := RMSE(f, m.Entries)
	for ep := 0; ep < 30; ep++ {
		TrainEntries(f, m.Entries, h)
	}
	after := RMSE(f, m.Entries)
	if after >= before {
		t.Fatalf("training RMSE rose: %v → %v", before, after)
	}
}

func TestLossDecreasesUnderSGD(t *testing.T) {
	rng := sparse.NewRand(9)
	m := sparse.NewCOO(30, 30, 300)
	for c := 0; c < 300; c++ {
		m.Add(int32(rng.Intn(30)), int32(rng.Intn(30)), 1+4*rng.Float32())
	}
	f := NewFactorsInit(30, 30, 4, m.MeanRating(), rng)
	h := HyperParams{Gamma: 0.005, Lambda1: 0.01, Lambda2: 0.01}
	prev := Loss(f, m.Entries, h)
	for ep := 0; ep < 10; ep++ {
		TrainEntries(f, m.Entries, h)
		cur := Loss(f, m.Entries, h)
		if cur > prev*1.05 {
			t.Fatalf("epoch %d: loss rose %v → %v", ep, prev, cur)
		}
		prev = cur
	}
}
