package mf

import (
	"math"
	"testing"
	"testing/quick"

	"hccmf/internal/sparse"
)

func TestNewFactorsShape(t *testing.T) {
	f := NewFactors(5, 3, 4)
	if len(f.P) != 20 || len(f.Q) != 12 {
		t.Fatalf("P/Q lengths = %d/%d", len(f.P), len(f.Q))
	}
}

func TestNewFactorsPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFactors(0,1,1) did not panic")
		}
	}()
	NewFactors(0, 1, 1)
}

func TestNewFactorsInitNearMean(t *testing.T) {
	rng := sparse.NewRand(3)
	const mean = 4.0
	f := NewFactorsInit(200, 200, 16, mean, rng)
	var sum float64
	cnt := 0
	for u := int32(0); u < 200; u += 10 {
		for i := int32(0); i < 200; i += 10 {
			sum += float64(f.Predict(u, i))
			cnt++
		}
	}
	avg := sum / float64(cnt)
	if avg < 0.5*mean || avg > 2*mean {
		t.Fatalf("initial mean prediction %v too far from %v", avg, mean)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewFactorsInitNonPositiveMean(t *testing.T) {
	f := NewFactorsInit(4, 4, 2, -1, sparse.NewRand(1))
	if err := f.Validate(); err != nil {
		t.Fatalf("init with negative mean produced %v", err)
	}
}

func TestPRowQRowViews(t *testing.T) {
	f := NewFactors(3, 3, 2)
	f.PRow(1)[0] = 7
	if f.P[2] != 7 {
		t.Fatal("PRow is not a view into P")
	}
	f.QRow(2)[1] = 9
	if f.Q[5] != 9 {
		t.Fatal("QRow is not a view into Q")
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	rng := sparse.NewRand(5)
	f := NewFactorsInit(4, 4, 3, 2, rng)
	c := f.Clone()
	c.P[0] = 42
	if f.P[0] == 42 {
		t.Fatal("Clone shares storage")
	}
	g := NewFactors(4, 4, 3)
	g.CopyFrom(f)
	for i := range f.P {
		if g.P[i] != f.P[i] {
			t.Fatal("CopyFrom did not copy P")
		}
	}
}

func TestCopyFromShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom with wrong shape did not panic")
		}
	}()
	NewFactors(2, 2, 2).CopyFrom(NewFactors(3, 2, 2))
}

func TestValidateDetectsNaN(t *testing.T) {
	f := NewFactors(2, 2, 2)
	if err := f.Validate(); err != nil {
		t.Fatalf("zeroed factors invalid: %v", err)
	}
	f.P[1] = float32(math.NaN())
	if err := f.Validate(); err == nil {
		t.Fatal("NaN in P not detected")
	}
	f.P[1] = 0
	f.Q[3] = float32(math.Inf(1))
	if err := f.Validate(); err == nil {
		t.Fatal("Inf in Q not detected")
	}
}

func TestDotMatchesNaive(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%37) + 1
		rng := sparse.NewRand(seed)
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = rng.Float32()*2 - 1
			b[i] = rng.Float32()*2 - 1
		}
		var naive float64
		for i := range a {
			naive += float64(a[i]) * float64(b[i])
		}
		got := float64(Dot(a, b))
		return math.Abs(got-naive) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDotEmptyAndSingle(t *testing.T) {
	if Dot(nil, nil) != 0 {
		t.Fatal("Dot(nil,nil) != 0")
	}
	if Dot([]float32{2}, []float32{3}) != 6 {
		t.Fatal("Dot single element wrong")
	}
	if got := Dot([]float32{1, 2, 3, 4, 5}, []float32{1, 1, 1, 1, 1}); got != 15 {
		t.Fatalf("Dot 5-elem = %v, want 15", got)
	}
}

func TestPredict(t *testing.T) {
	f := NewFactors(2, 2, 2)
	copy(f.PRow(0), []float32{1, 2})
	copy(f.QRow(1), []float32{3, 4})
	if got := f.Predict(0, 1); got != 11 {
		t.Fatalf("Predict = %v, want 11", got)
	}
}
