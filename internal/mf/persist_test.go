package mf

import (
	"bytes"
	"strings"
	"testing"

	"hccmf/internal/sparse"
)

func TestFactorsRoundTrip(t *testing.T) {
	f := NewFactorsInit(37, 23, 8, 3.7, sparse.NewRand(5))
	var buf bytes.Buffer
	if err := WriteFactors(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFactors(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.M != f.M || back.N != f.N || back.K != f.K {
		t.Fatalf("dims changed: %dx%d k=%d", back.M, back.N, back.K)
	}
	for i := range f.P {
		if back.P[i] != f.P[i] {
			t.Fatalf("P[%d] changed", i)
		}
	}
	for i := range f.Q {
		if back.Q[i] != f.Q[i] {
			t.Fatalf("Q[%d] changed", i)
		}
	}
}

func TestBiasedFactorsRoundTrip(t *testing.T) {
	b := NewBiasedFactorsInit(20, 15, 4, 3.5, sparse.NewRand(6))
	b.BU[3], b.BI[7] = 0.25, -0.5
	var buf bytes.Buffer
	if err := WriteBiasedFactors(&buf, b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBiasedFactors(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Mu != b.Mu || back.BU[3] != 0.25 || back.BI[7] != -0.5 {
		t.Fatalf("bias terms changed: mu=%v bu=%v bi=%v", back.Mu, back.BU[3], back.BI[7])
	}
	// Predictions identical.
	for u := int32(0); u < 20; u += 5 {
		for i := int32(0); i < 15; i += 5 {
			if back.Predict(u, i) != b.Predict(u, i) {
				t.Fatalf("prediction changed at (%d,%d)", u, i)
			}
		}
	}
}

func TestReadFactorsRejectsCorruption(t *testing.T) {
	f := NewFactorsInit(5, 5, 2, 3, sparse.NewRand(1))
	var buf bytes.Buffer
	if err := WriteFactors(&buf, f); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	if _, err := ReadFactors(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadFactors(strings.NewReader("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadFactors(bytes.NewReader(valid[:20])); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := ReadFactors(bytes.NewReader(valid[:len(valid)-5])); err == nil {
		t.Error("truncated floats accepted")
	}
	// Version cross-loading is refused in both directions.
	if _, err := ReadBiasedFactors(bytes.NewReader(valid)); err == nil {
		t.Error("plain model accepted as biased")
	}
	b := NewBiasedFactorsInit(5, 5, 2, 3, sparse.NewRand(1))
	var bbuf bytes.Buffer
	if err := WriteBiasedFactors(&bbuf, b); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFactors(bytes.NewReader(bbuf.Bytes())); err == nil {
		t.Error("biased model accepted as plain")
	}
	// Implausible dims rejected.
	hacked := append([]byte(nil), valid...)
	for i := 8; i < 16; i++ {
		hacked[i] = 0xff
	}
	if _, err := ReadFactors(bytes.NewReader(hacked)); err == nil {
		t.Error("implausible dims accepted")
	}
}

func TestPersistRejectsNaNModels(t *testing.T) {
	f := NewFactorsInit(4, 4, 2, 3, sparse.NewRand(1))
	var buf bytes.Buffer
	if err := WriteFactors(&buf, f); err != nil {
		t.Fatal(err)
	}
	// Corrupt one float to NaN in the payload region.
	raw := buf.Bytes()
	off := len(raw) - 4
	raw[off], raw[off+1], raw[off+2], raw[off+3] = 0x00, 0x00, 0xc0, 0x7f
	if _, err := ReadFactors(bytes.NewReader(raw)); err == nil {
		t.Error("NaN payload accepted")
	}
}
