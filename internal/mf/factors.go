// Package mf implements SGD-based matrix factorization: the latent factor
// model R ≈ P·Qᵀ, the stochastic gradient update rule with L2
// regularisation (the loss in the paper's Figure 1), and several execution
// engines — serial SGD, lock-free Hogwild!, FPSGD-style exclusive block
// scheduling for multicore CPUs, and the batched kernel that mirrors
// cuMF_SGD's GPU execution shape. HCC-MF workers run these kernels over
// their data shards.
package mf

import (
	"fmt"
	"math"

	"hccmf/internal/sparse"
)

// Factors holds the user matrix P (m×k) and item matrix Q (n×k) in flat
// row-major storage. Row u of P is P[u*K : (u+1)*K].
type Factors struct {
	M, N, K int
	P       []float32
	Q       []float32
}

// NewFactors allocates zeroed factor matrices.
func NewFactors(m, n, k int) *Factors {
	if m <= 0 || n <= 0 || k <= 0 {
		// lint:invariant dims are validated by ps.Config (m/n/k > 0) and the planner before factors are allocated; failing here is a broken plan.
		panic(fmt.Sprintf("mf: invalid factor dims m=%d n=%d k=%d", m, n, k))
	}
	return &Factors{M: m, N: n, K: k,
		P: make([]float32, m*k), Q: make([]float32, n*k)}
}

// NewFactorsInit allocates factors initialised so that the initial
// prediction p·q is distributed around meanRating: every entry is
// sqrt(meanRating/k) scaled by a uniform factor in [0.5, 1.5). This is the
// standard warm init used by LIBMF/FPSGD and keeps early epochs stable on
// 100-point scales.
func NewFactorsInit(m, n, k int, meanRating float64, rng *sparse.Rand) *Factors {
	f := NewFactors(m, n, k)
	if meanRating <= 0 {
		meanRating = 1
	}
	base := float32(math.Sqrt(meanRating / float64(k)))
	for i := range f.P {
		f.P[i] = base * (0.5 + rng.Float32())
	}
	for i := range f.Q {
		f.Q[i] = base * (0.5 + rng.Float32())
	}
	return f
}

// Clone deep-copies the factors.
func (f *Factors) Clone() *Factors {
	out := NewFactors(f.M, f.N, f.K)
	copy(out.P, f.P)
	copy(out.Q, f.Q)
	return out
}

// PRow returns row u of P as a slice view.
func (f *Factors) PRow(u int32) []float32 {
	return f.P[int(u)*f.K : (int(u)+1)*f.K]
}

// QRow returns row i of Q as a slice view.
func (f *Factors) QRow(i int32) []float32 {
	return f.Q[int(i)*f.K : (int(i)+1)*f.K]
}

// Predict computes the model's rating estimate for (u, i).
func (f *Factors) Predict(u, i int32) float32 {
	return Dot(f.PRow(u), f.QRow(i))
}

// CopyFrom copies the contents of src (same shape required).
func (f *Factors) CopyFrom(src *Factors) {
	if f.M != src.M || f.N != src.N || f.K != src.K {
		// lint:invariant Factors shapes are fixed at construction; copying between mismatched shapes is a programmer bug.
		panic("mf: CopyFrom shape mismatch")
	}
	copy(f.P, src.P)
	copy(f.Q, src.Q)
}

// Validate reports the first non-finite factor entry, if any.
func (f *Factors) Validate() error {
	for i, v := range f.P {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return fmt.Errorf("mf: P[%d] is non-finite (%v)", i, v)
		}
	}
	for i, v := range f.Q {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return fmt.Errorf("mf: Q[%d] is non-finite (%v)", i, v)
		}
	}
	return nil
}

// Dot computes the inner product of two equal-length vectors with 4-way
// manual unrolling — the scalar stand-in for the paper's AVX512F inner
// product kernel.
func Dot(a, b []float32) float32 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float32
	// Advancing the slice headers (rather than indexing with i) lets the
	// compiler prove the constant indices in bounds and drop every
	// per-element bounds check; the accumulator order is unchanged.
	for len(a) >= 4 && len(b) >= 4 {
		s0 += a[0] * b[0]
		s1 += a[1] * b[1]
		s2 += a[2] * b[2]
		s3 += a[3] * b[3]
		a = a[4:]
		b = b[4:]
	}
	for i := 0; i < len(a) && i < len(b); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}
