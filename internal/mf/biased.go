package mf

import (
	"math"

	"hccmf/internal/sparse"
)

// BiasedFactors is the bias-augmented factor model used by most production
// recommenders (and by the MF variants the paper's introduction cites as
// the motivation for fast MF training):
//
//	r̂(u,i) = μ + b_u + b_i + p_u·q_i
//
// where μ is the global mean, b_u/b_i are user/item offsets, and p·q the
// interaction term. Biases soak up the large per-user/per-item effects so
// the latent factors model only interactions — typically worth a few
// percent of RMSE on skewed rating data.
type BiasedFactors struct {
	*Factors
	// Mu is the global rating mean.
	Mu float32
	// BU and BI are per-user and per-item bias terms.
	BU []float32
	BI []float32
}

// NewBiasedFactorsInit builds a biased model: biases start at zero, the
// interaction factors small (most of the initial prediction comes from μ).
func NewBiasedFactorsInit(m, n, k int, meanRating float64, rng *sparse.Rand) *BiasedFactors {
	b := &BiasedFactors{
		Factors: NewFactors(m, n, k),
		Mu:      float32(meanRating),
		BU:      make([]float32, m),
		BI:      make([]float32, n),
	}
	// Small symmetric init: interactions start near zero.
	scale := float32(0.1 / math.Sqrt(float64(k)))
	for i := range b.P {
		b.P[i] = scale * (rng.Float32() - 0.5)
	}
	for i := range b.Q {
		b.Q[i] = scale * (rng.Float32() - 0.5)
	}
	return b
}

// Predict computes μ + b_u + b_i + p·q.
func (b *BiasedFactors) Predict(u, i int32) float32 {
	return b.Mu + b.BU[u] + b.BI[i] + Dot(b.PRow(u), b.QRow(i))
}

// UpdateOne applies one biased SGD step: with e = r − r̂,
//
//	b_u += γ(e − λ1·b_u)    b_i += γ(e − λ2·b_i)
//	p   += γ(e·q − λ1·p)    q   += γ(e·p − λ2·q)
//
// and returns e.
func (b *BiasedFactors) UpdateOne(u, i int32, r float32, h HyperParams) float32 {
	e := r - b.Predict(u, i)
	b.BU[u] += h.Gamma * (e - h.Lambda1*b.BU[u])
	b.BI[i] += h.Gamma * (e - h.Lambda2*b.BI[i])
	p, q := b.PRow(u), b.QRow(i)
	ge := h.Gamma * e
	gl1 := h.Gamma * h.Lambda1
	gl2 := h.Gamma * h.Lambda2
	for f := range p {
		p0, q0 := p[f], q[f]
		p[f] = p0 + ge*q0 - gl1*p0
		q[f] = q0 + ge*p0 - gl2*q0
	}
	return e
}

// Epoch runs one in-order SGD pass over the entries.
func (b *BiasedFactors) Epoch(entries []sparse.Rating, h HyperParams) {
	for _, e := range entries {
		b.UpdateOne(e.U, e.I, e.V, h)
	}
}

// RMSE evaluates the biased model on the entries.
func (b *BiasedFactors) RMSE(entries []sparse.Rating) float64 {
	if len(entries) == 0 {
		return 0
	}
	var sum float64
	for _, e := range entries {
		d := float64(e.V - b.Predict(e.U, e.I))
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(entries)))
}

// Validate reports the first non-finite parameter, if any.
func (b *BiasedFactors) Validate() error {
	if err := b.Factors.Validate(); err != nil {
		return err
	}
	for _, v := range b.BU {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return errNonFinite("BU")
		}
	}
	for _, v := range b.BI {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return errNonFinite("BI")
		}
	}
	return nil
}

type biasedErr string

func (e biasedErr) Error() string { return string(e) }

func errNonFinite(field string) error {
	return biasedErr("mf: non-finite value in " + field)
}
