package mf

import (
	"runtime"
	"sync"

	"hccmf/internal/obs"
	"hccmf/internal/sparse"
)

// This file implements the persistent sweep-worker pool behind the FPSGD,
// Hogwild and Batched engines. The seed engines spawned fresh goroutine
// closures every epoch (and, for Batched, every simulated kernel launch),
// which put a closure + stack allocation on the steady-state training path.
// The pool spawns its workers once, hands them sweepTask values over a
// buffered channel (a by-value send: no allocation), and joins each epoch
// with a WaitGroup owned by the engine struct. After the first epoch the
// engines allocate nothing.
//
// Concurrency notes: the workers race on the shared *Factors exactly the
// way the seed closures did — Hogwild and Batched sweeps are intentionally
// lock-free (see raceflag), FPSGD tasks are made row/column-disjoint by the
// blockScheduler carried inside the task. Tests gate the racy engines on
// raceflag.Enabled, and the raceguard analyzer treats `go sweepWorker(...)`
// like a goroutine literal; this file is inside the raceflag quarantine on
// purpose.

// sweepTask is one unit of sweep work. Exactly one of sched/entries is set:
// a scheduler task loops acquiring disjoint blocks from the carried grid
// until the epoch is drained (FPSGD); an entries task sweeps the given
// contiguous run once (Hogwild chunk, Batched group). kern is the kernel
// the launching engine selected at Init (sweeper.kernel); soa, when
// non-nil, routes the entries sweep through the fast-math SoA mini-batch
// staging loop instead of the in-place kernel sweep.
type sweepTask struct {
	f       *Factors
	h       HyperParams
	entries []sparse.Rating
	sched   *blockScheduler
	grid    *sparse.BlockGridded
	soa     *soaScratch
	kern    kernelID
	wg      *sync.WaitGroup
}

// sweepWorker drains tasks until the pool's channel is closed by the
// finalizer. It is a top-level function (not a closure) so starting it
// allocates only its goroutine, once, at pool construction.
//
// lint:hotpath
func sweepWorker(tasks <-chan sweepTask) {
	for t := range tasks {
		switch {
		case t.sched != nil:
			for {
				idx, ok := t.sched.acquire()
				if !ok {
					break
				}
				trainEntriesKernel(t.f, t.grid.Blocks[idx].Entries, t.h, t.kern)
				t.sched.release(idx)
			}
		case t.soa != nil:
			trainEntriesSoA(t.f, t.entries, t.h, t.soa)
		default:
			trainEntriesKernel(t.f, t.entries, t.h, t.kern)
		}
		t.wg.Done()
	}
}

// sweepPool is a fixed-size set of sweep workers bound to one tasks channel.
type sweepPool struct {
	tasks chan sweepTask
}

func newSweepPool(workers int) *sweepPool {
	p := &sweepPool{tasks: make(chan sweepTask, workers)}
	for i := 0; i < workers; i++ {
		go sweepWorker(p.tasks)
	}
	// Workers hold only the channel, not the pool, so an abandoned pool is
	// collectable; closing the channel lets its workers exit.
	runtime.SetFinalizer(p, closeSweepPool)
	return p
}

func closeSweepPool(p *sweepPool) { close(p.tasks) }

// sweeper is the reusable engine state embedded in each parallel engine:
// the lazily built worker pool, the epoch-join WaitGroup and the selected
// update kernel. Engines embed it by value, which is why Hogwild and
// Batched moved to pointer receivers in this pass. An engine value must
// not run concurrent Epochs (true of every call site: one engine per
// worker, one epoch at a time).
type sweeper struct {
	pool *sweepPool
	size int
	wg   sync.WaitGroup
	// kern caches the kernelIDFor selection — made once at engine Init in
	// practice, since (k, fast-math) never changes across a training run.
	kern     kernelID
	kernSet  bool
	kernK    int
	kernFast bool
	// metrics is the optional observability bundle installed by SetMetrics
	// (see metered.go); nil keeps the epoch hooks inert.
	metrics *obs.EngineMetrics
}

// ensure returns the engine's pool, (re)building it when the requested
// worker count changes. Steady state — same worker count every epoch — is
// allocation-free.
func (s *sweeper) ensure(workers int) *sweepPool {
	if s.pool == nil || s.size != workers {
		s.pool = newSweepPool(workers)
		s.size = workers
	}
	return s.pool
}

// kernel returns the engine's update kernel, selecting it on the first
// epoch (engine Init) and reusing the cached choice for the run's
// remainder.
func (s *sweeper) kernel(k int, fastMath bool) kernelID {
	if !s.kernSet || s.kernK != k || s.kernFast != fastMath {
		s.kern = kernelIDFor(k, fastMath)
		s.kernK = k
		s.kernFast = fastMath
		s.kernSet = true
	}
	return s.kern
}
