package mf

import (
	"fmt"
	"math"

	"hccmf/internal/sparse"
)

// Schedule produces the learning rate for a given 0-based epoch. The
// paper's experiments fix γ = 0.005, but cuMF_SGD's reference
// implementation decays the rate, and decaying schedules are what
// production deployments of SGD-MF run; both are provided.
type Schedule interface {
	// Gamma reports the learning rate for the epoch.
	Gamma(epoch int) float32
	// Name identifies the schedule in reports.
	Name() string
}

// Constant is the paper's fixed learning rate.
type Constant struct {
	Rate float32
}

// Gamma implements Schedule.
func (c Constant) Gamma(int) float32 { return c.Rate }

// Name implements Schedule.
func (c Constant) Name() string { return fmt.Sprintf("const(%g)", c.Rate) }

// InverseDecay is cuMF_SGD's schedule: γ_t = γ0 / (1 + β·t^1.5).
type InverseDecay struct {
	Gamma0 float32
	Beta   float32
}

// Gamma implements Schedule.
func (d InverseDecay) Gamma(epoch int) float32 {
	if epoch < 0 {
		epoch = 0
	}
	t := float64(epoch)
	return d.Gamma0 / float32(1+float64(d.Beta)*math.Pow(t, 1.5))
}

// Name implements Schedule.
func (d InverseDecay) Name() string {
	return fmt.Sprintf("inverse(%g,%g)", d.Gamma0, d.Beta)
}

// BoldDriver adapts the rate to observed loss: grow slowly while the loss
// falls, cut sharply when it rises. Feed it the objective after each epoch
// via Observe.
type BoldDriver struct {
	// Rate is the current learning rate (set to the initial rate).
	Rate float32
	// Grow is the multiplicative increase on improvement (default 1.05).
	Grow float32
	// Shrink is the multiplicative cut on regression (default 0.5).
	Shrink float32

	prevLoss float64
	seen     bool
}

// Gamma implements Schedule.
func (b *BoldDriver) Gamma(int) float32 { return b.Rate }

// Name implements Schedule.
func (b *BoldDriver) Name() string { return "bold-driver" }

// Observe updates the rate from the post-epoch loss.
func (b *BoldDriver) Observe(loss float64) {
	grow := b.Grow
	if grow <= 1 {
		grow = 1.05
	}
	shrink := b.Shrink
	if shrink <= 0 || shrink >= 1 {
		shrink = 0.5
	}
	if b.seen && loss > b.prevLoss {
		b.Rate *= shrink
	} else if b.seen {
		b.Rate *= grow
	}
	b.prevLoss = loss
	b.seen = true
}

// Cache-blocked Q-tile traversal for FPSGD's fast-math mode (DESIGN.md
// §16). An FPSGD block already confines a sweep's P rows to one block-row
// and its Q rows to one block-column, but a block-column of Q is still far
// larger than L2 on real matrices; the row-sorted traversal streams P
// nicely while revisiting Q rows long after they were evicted. tileOrder
// reorders a block's entries into column tiles sized so a tile's Q rows
// fit the budget, (row, col) within each tile: every Q row is loaded into
// cache at most once per tile instead of once per touching row segment.
// Traversal order changes the update sequence, so this lives behind
// FPSGD.FastMath with its own goldens; default mode keeps the row sort.

// tileBytesDefault is a conservative per-core slice of L2 (typical
// client/server cores have 0.5–2 MiB per core); the Q tile must share the
// cache with the streaming P rows and the entry stream itself.
const tileBytesDefault = 256 << 10

// tileBudget reports the engine's Q-tile byte budget.
func (fp *FPSGD) tileBudget() int {
	if fp.TileBytes > 0 {
		return fp.TileBytes
	}
	return tileBytesDefault
}

// tileCols reports how many consecutive columns fit one Q tile of the
// given byte budget at factor dimension k (4 bytes per float32), never
// less than one column.
func tileCols(k, budget int) int {
	if k <= 0 {
		return 1
	}
	tc := budget / (4 * k)
	if tc < 1 {
		tc = 1
	}
	return tc
}

// tileOrder reorders entries in place into (tile, row, col) order, where
// tile = (col − colLo) / tileCols(k, budget), and returns the tile count.
// Cold path — it runs once per grid build, so it allocates its scratch
// locally. The reorder is a stable counting scatter over a (row, col)
// sort, i.e. an LSD radix pass with the tile index as the most significant
// digit, so within each tile entries remain (row, col)-sorted — the same
// P-streaming order the default traversal has, just confined to the tile.
func tileOrder(entries []sparse.Rating, colLo, k, budget int) int {
	sortEntriesByRow(entries)
	tc := tileCols(k, budget)
	if len(entries) == 0 {
		return 0
	}
	maxTile := 0
	for i := range entries {
		t := (int(entries[i].I) - colLo) / tc
		if t > maxTile {
			maxTile = t
		}
	}
	ntiles := maxTile + 1
	if ntiles == 1 {
		return 1
	}
	counts := make([]int, ntiles+1)
	for i := range entries {
		counts[(int(entries[i].I)-colLo)/tc+1]++
	}
	for t := 1; t <= ntiles; t++ {
		counts[t] += counts[t-1]
	}
	tmp := make([]sparse.Rating, len(entries))
	for i := range entries {
		t := (int(entries[i].I) - colLo) / tc
		tmp[counts[t]] = entries[i]
		counts[t]++
	}
	copy(entries, tmp)
	return ntiles
}

// RunScheduled executes n epochs with a per-epoch learning rate from the
// schedule, holding the regularisers fixed. BoldDriver schedules are fed
// the training loss after each epoch.
func (t *Trainer) RunScheduled(f *Factors, n int, s Schedule) {
	for i := 0; i < n; i++ {
		h := t.Hyper
		h.Gamma = s.Gamma(t.epochs)
		t.Engine.Epoch(f, t.Train, h)
		t.epochs++
		if bd, ok := s.(*BoldDriver); ok {
			bd.Observe(Loss(f, t.Train.Entries, t.Hyper))
		}
	}
}
