package mf

import (
	"fmt"
	"math"
)

// Schedule produces the learning rate for a given 0-based epoch. The
// paper's experiments fix γ = 0.005, but cuMF_SGD's reference
// implementation decays the rate, and decaying schedules are what
// production deployments of SGD-MF run; both are provided.
type Schedule interface {
	// Gamma reports the learning rate for the epoch.
	Gamma(epoch int) float32
	// Name identifies the schedule in reports.
	Name() string
}

// Constant is the paper's fixed learning rate.
type Constant struct {
	Rate float32
}

// Gamma implements Schedule.
func (c Constant) Gamma(int) float32 { return c.Rate }

// Name implements Schedule.
func (c Constant) Name() string { return fmt.Sprintf("const(%g)", c.Rate) }

// InverseDecay is cuMF_SGD's schedule: γ_t = γ0 / (1 + β·t^1.5).
type InverseDecay struct {
	Gamma0 float32
	Beta   float32
}

// Gamma implements Schedule.
func (d InverseDecay) Gamma(epoch int) float32 {
	if epoch < 0 {
		epoch = 0
	}
	t := float64(epoch)
	return d.Gamma0 / float32(1+float64(d.Beta)*math.Pow(t, 1.5))
}

// Name implements Schedule.
func (d InverseDecay) Name() string {
	return fmt.Sprintf("inverse(%g,%g)", d.Gamma0, d.Beta)
}

// BoldDriver adapts the rate to observed loss: grow slowly while the loss
// falls, cut sharply when it rises. Feed it the objective after each epoch
// via Observe.
type BoldDriver struct {
	// Rate is the current learning rate (set to the initial rate).
	Rate float32
	// Grow is the multiplicative increase on improvement (default 1.05).
	Grow float32
	// Shrink is the multiplicative cut on regression (default 0.5).
	Shrink float32

	prevLoss float64
	seen     bool
}

// Gamma implements Schedule.
func (b *BoldDriver) Gamma(int) float32 { return b.Rate }

// Name implements Schedule.
func (b *BoldDriver) Name() string { return "bold-driver" }

// Observe updates the rate from the post-epoch loss.
func (b *BoldDriver) Observe(loss float64) {
	grow := b.Grow
	if grow <= 1 {
		grow = 1.05
	}
	shrink := b.Shrink
	if shrink <= 0 || shrink >= 1 {
		shrink = 0.5
	}
	if b.seen && loss > b.prevLoss {
		b.Rate *= shrink
	} else if b.seen {
		b.Rate *= grow
	}
	b.prevLoss = loss
	b.seen = true
}

// RunScheduled executes n epochs with a per-epoch learning rate from the
// schedule, holding the regularisers fixed. BoldDriver schedules are fed
// the training loss after each epoch.
func (t *Trainer) RunScheduled(f *Factors, n int, s Schedule) {
	for i := 0; i < n; i++ {
		h := t.Hyper
		h.Gamma = s.Gamma(t.epochs)
		t.Engine.Epoch(f, t.Train, h)
		t.epochs++
		if bd, ok := s.(*BoldDriver); ok {
			bd.Observe(Loss(f, t.Train.Entries, t.Hyper))
		}
	}
}
