package mf

import "hccmf/internal/sparse"

// Engine is one SGD execution strategy. An Engine runs full epochs over a
// training set against shared factors; how it parallelises (or doesn't) is
// the strategy.
type Engine interface {
	// Name identifies the engine in reports ("serial", "hogwild", ...).
	Name() string
	// Epoch performs one full pass over train, updating f in place.
	Epoch(f *Factors, train *sparse.COO, h HyperParams)
}

// Trainer binds an engine to fixed data and hyper-parameters and tracks
// epoch count; the examples and baselines drive training through it.
type Trainer struct {
	Engine Engine
	Train  *sparse.COO
	Test   *sparse.COO
	Hyper  HyperParams

	epochs int
}

// Run executes n epochs.
func (t *Trainer) Run(f *Factors, n int) {
	for i := 0; i < n; i++ {
		t.Engine.Epoch(f, t.Train, t.Hyper)
		t.epochs++
	}
}

// Epochs reports how many epochs have run.
func (t *Trainer) Epochs() int { return t.epochs }

// TestRMSE evaluates on the held-out split (or the training split if no
// test data was provided).
func (t *Trainer) TestRMSE(f *Factors) float64 {
	if t.Test != nil && t.Test.NNZ() > 0 {
		return RMSE(f, t.Test.Entries)
	}
	return RMSE(f, t.Train.Entries)
}
