package mf

import (
	"strings"
	"testing"

	"hccmf/internal/raceflag"
	"hccmf/internal/sparse"
)

// skipLockFreeUnderRace skips tests whose subject is deliberately
// unsynchronised (Hogwild-family kernels); see package raceflag.
func skipLockFreeUnderRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("lock-free SGD is intentionally racy; skipped under -race")
	}
}

// trainSet builds a synthetic low-rank matrix so that every engine has
// structure to recover.
func trainSet(t testing.TB, rows, cols, nnz int, seed uint64) *sparse.COO {
	t.Helper()
	rng := sparse.NewRand(seed)
	const k = 4
	pf := make([]float32, rows*k)
	qf := make([]float32, cols*k)
	for i := range pf {
		pf[i] = 0.5 + rng.Float32()
	}
	for i := range qf {
		qf[i] = 0.5 + rng.Float32()
	}
	m := sparse.NewCOO(rows, cols, nnz)
	for c := 0; c < nnz; c++ {
		u := rng.Intn(rows)
		i := rng.Intn(cols)
		var dot float32
		for f := 0; f < k; f++ {
			dot += pf[u*k+f] * qf[i*k+f]
		}
		m.Add(int32(u), int32(i), dot+0.1*(rng.Float32()-0.5))
	}
	m.Shuffle(rng)
	return m
}

func runEngine(t *testing.T, e Engine, m *sparse.COO, epochs int) float64 {
	t.Helper()
	rng := sparse.NewRand(1)
	f := NewFactorsInit(m.Rows, m.Cols, 8, m.MeanRating(), rng)
	h := HyperParams{Gamma: 0.01, Lambda1: 0.005, Lambda2: 0.005}
	before := RMSE(f, m.Entries)
	for i := 0; i < epochs; i++ {
		e.Epoch(f, m, h)
	}
	after := RMSE(f, m.Entries)
	if err := f.Validate(); err != nil {
		t.Fatalf("%s produced non-finite factors: %v", e.Name(), err)
	}
	if after >= before {
		t.Fatalf("%s: RMSE rose %v → %v", e.Name(), before, after)
	}
	return after
}

func TestSerialEngineConverges(t *testing.T) {
	m := trainSet(t, 80, 60, 4000, 2)
	rmse := runEngine(t, Serial{}, m, 25)
	if rmse > 0.3 {
		t.Fatalf("serial RMSE after 25 epochs = %v", rmse)
	}
}

func TestHogwildEngineConverges(t *testing.T) {
	skipLockFreeUnderRace(t)
	m := trainSet(t, 80, 60, 4000, 3)
	rmse := runEngine(t, &Hogwild{Threads: 4}, m, 25)
	if rmse > 0.35 {
		t.Fatalf("hogwild RMSE after 25 epochs = %v", rmse)
	}
}

func TestHogwildSingleThreadMatchesSerial(t *testing.T) {
	m := trainSet(t, 40, 30, 1000, 4)
	rng := sparse.NewRand(1)
	f1 := NewFactorsInit(m.Rows, m.Cols, 4, m.MeanRating(), rng)
	f2 := f1.Clone()
	h := HyperParams{Gamma: 0.01, Lambda1: 0.005, Lambda2: 0.005}
	Serial{}.Epoch(f1, m, h)
	(&Hogwild{Threads: 1}).Epoch(f2, m, h)
	for i := range f1.P {
		if f1.P[i] != f2.P[i] {
			t.Fatal("1-thread Hogwild diverged from serial")
		}
	}
}

func TestHogwildZeroThreadsDefaultsToOne(t *testing.T) {
	m := trainSet(t, 20, 20, 200, 5)
	runEngine(t, &Hogwild{Threads: 0}, m, 5)
}

func TestFPSGDEngineConverges(t *testing.T) {
	m := trainSet(t, 80, 60, 4000, 6)
	rmse := runEngine(t, &FPSGD{Threads: 4}, m, 25)
	if rmse > 0.35 {
		t.Fatalf("fpsgd RMSE after 25 epochs = %v", rmse)
	}
}

func TestFPSGDTinyMatrixFallsBack(t *testing.T) {
	// 2×2 matrix cannot host a 5×5 grid; engine must fall back to serial.
	m := sparse.NewCOO(2, 2, 4)
	m.Add(0, 0, 1)
	m.Add(0, 1, 2)
	m.Add(1, 0, 3)
	m.Add(1, 1, 4)
	runEngine(t, &FPSGD{Threads: 4}, m, 40)
}

func TestFPSGDGridCacheReused(t *testing.T) {
	m := trainSet(t, 50, 50, 1000, 7)
	e := &FPSGD{Threads: 2}
	f := NewFactorsInit(50, 50, 4, m.MeanRating(), sparse.NewRand(2))
	h := HyperParams{Gamma: 0.01}
	e.Epoch(f, m, h)
	g1 := e.grid
	e.Epoch(f, m, h)
	if e.grid != g1 {
		t.Fatal("grid rebuilt for identical matrix")
	}
	m2 := trainSet(t, 50, 50, 1000, 8)
	e.Epoch(f, m2, h)
	if e.grid == g1 {
		t.Fatal("grid not rebuilt for new matrix")
	}
}

func TestBatchedEngineConverges(t *testing.T) {
	skipLockFreeUnderRace(t)
	m := trainSet(t, 80, 60, 4000, 9)
	rmse := runEngine(t, &Batched{Groups: 8, BatchSize: 512}, m, 25)
	if rmse > 0.35 {
		t.Fatalf("batched RMSE after 25 epochs = %v", rmse)
	}
}

func TestBatchedWholeEpochBatch(t *testing.T) {
	skipLockFreeUnderRace(t)
	m := trainSet(t, 40, 40, 800, 10)
	runEngine(t, &Batched{Groups: 4, BatchSize: 0}, m, 10)
}

func TestEngineNames(t *testing.T) {
	cases := []struct {
		e    Engine
		want string
	}{
		{Serial{}, "serial"},
		{&Hogwild{Threads: 4}, "hogwild-4"},
		{&FPSGD{Threads: 8}, "fpsgd-8"},
		{&Batched{Groups: 128}, "batched-128"},
	}
	for _, c := range cases {
		if got := c.e.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestTrainerRunAndRMSE(t *testing.T) {
	m := trainSet(t, 60, 50, 2000, 11)
	rng := sparse.NewRand(3)
	train, test, err := m.SplitTrainTest(rng, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trainer{
		Engine: Serial{},
		Train:  train,
		Test:   test,
		Hyper:  HyperParams{Gamma: 0.01, Lambda1: 0.005, Lambda2: 0.005},
	}
	f := NewFactorsInit(m.Rows, m.Cols, 8, m.MeanRating(), rng)
	before := tr.TestRMSE(f)
	tr.Run(f, 20)
	if tr.Epochs() != 20 {
		t.Fatalf("Epochs = %d, want 20", tr.Epochs())
	}
	after := tr.TestRMSE(f)
	if after >= before {
		t.Fatalf("test RMSE rose: %v → %v", before, after)
	}
}

func TestTrainerNoTestFallsBackToTrain(t *testing.T) {
	m := trainSet(t, 20, 20, 200, 12)
	tr := &Trainer{Engine: Serial{}, Train: m, Hyper: HyperParams{Gamma: 0.01}}
	f := NewFactorsInit(20, 20, 4, m.MeanRating(), sparse.NewRand(1))
	if got, want := tr.TestRMSE(f), RMSE(f, m.Entries); got != want {
		t.Fatalf("fallback RMSE = %v, want %v", got, want)
	}
}

// blockScheduler invariants under concurrency.
func TestBlockSchedulerExclusivity(t *testing.T) {
	const nside = 5
	s := newBlockScheduler(nside, nside)
	type token struct{ br, bc int }
	acquired := make(chan token, nside*nside)
	done := make(chan struct{})
	go func() {
		rows := map[int]int{}
		cols := map[int]int{}
		for tok := range acquired {
			if tok.br >= 0 {
				rows[tok.br]++
				cols[tok.bc]++
				if rows[tok.br] > 1 || cols[tok.bc] > 1 {
					t.Error("two in-flight blocks share a row or column")
				}
			} else {
				rows[-tok.br-1]--
				cols[-tok.bc-1]--
			}
		}
		close(done)
	}()

	var count int
	countCh := make(chan int, 8)
	for w := 0; w < 8; w++ {
		go func() {
			local := 0
			for {
				idx, ok := s.acquire()
				if !ok {
					countCh <- local
					return
				}
				br, bc := idx/nside, idx%nside
				acquired <- token{br, bc}
				local++
				acquired <- token{-br - 1, -bc - 1}
				s.release(idx)
			}
		}()
	}
	for w := 0; w < 8; w++ {
		count += <-countCh
	}
	close(acquired)
	<-done
	if count != nside*nside {
		t.Fatalf("processed %d blocks, want %d", count, nside*nside)
	}
}

func TestSortEntriesByRow(t *testing.T) {
	rng := sparse.NewRand(13)
	entries := make([]sparse.Rating, 500)
	for i := range entries {
		entries[i] = sparse.Rating{U: int32(rng.Intn(40)), I: int32(rng.Intn(40)), V: 1}
	}
	sortEntriesByRow(entries)
	for i := 1; i < len(entries); i++ {
		if lessByRow(entries[i], entries[i-1]) {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestEngineNamesAreDistinct(t *testing.T) {
	names := []string{Serial{}.Name(), (&Hogwild{Threads: 2}).Name(),
		(&FPSGD{Threads: 2}).Name(), (&Batched{Groups: 2}).Name()}
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if strings.EqualFold(names[i], names[j]) {
				t.Fatalf("duplicate engine name %q", names[i])
			}
		}
	}
}
