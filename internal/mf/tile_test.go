package mf

import (
	"testing"

	"hccmf/internal/sparse"
)

// tileOrder invariants: the reorder is a permutation, tile indices are
// non-decreasing across the slice, and entries within one tile keep the
// (row, col) order the default traversal has.
func TestTileOrderInvariants(t *testing.T) {
	rng := sparse.NewRand(31)
	const colLo, cols, k = 100, 400, 32
	entries := make([]sparse.Rating, 3000)
	for i := range entries {
		entries[i] = sparse.Rating{
			U: int32(rng.Intn(200)),
			I: int32(colLo + rng.Intn(cols)),
			V: rng.Float32(),
		}
	}
	// Budget sized to force several tiles: 40 columns per tile → 10 tiles.
	budget := 40 * 4 * k
	want := append([]sparse.Rating(nil), entries...)
	ntiles := tileOrder(entries, colLo, k, budget)
	if wantTiles := (cols + 39) / 40; ntiles != wantTiles {
		t.Fatalf("ntiles = %d, want %d", ntiles, wantTiles)
	}

	// Permutation: the reorder must preserve the entry multiset exactly.
	// (The row sort inside tileOrder is not stable for duplicate (U, I)
	// keys, so a positional comparison against a reference sort would
	// over-constrain it.)
	tc := tileCols(k, budget)
	key := func(e sparse.Rating) (int, int32, int32) {
		return (int(e.I) - colLo) / tc, e.U, e.I
	}
	seen := make(map[sparse.Rating]int, len(want))
	for _, e := range want {
		seen[e]++
	}
	for _, e := range entries {
		seen[e]--
		if seen[e] < 0 {
			t.Fatalf("entry %+v appears more often after tileOrder", e)
		}
	}
	for e, n := range seen {
		if n != 0 {
			t.Fatalf("entry %+v lost by tileOrder", e)
		}
	}

	// Tile-monotone and (row, col)-sorted within each tile, checked directly.
	for i := 1; i < len(entries); i++ {
		tp, up, ip := key(entries[i-1])
		tn, un, in := key(entries[i])
		if tn < tp {
			t.Fatalf("tile order broken at %d: %d after %d", i, tn, tp)
		}
		if tn == tp && (un < up || (un == up && in < ip)) {
			t.Fatalf("(row,col) order broken inside tile %d at %d", tn, i)
		}
	}
}

func TestTileOrderSingleTileKeepsRowSort(t *testing.T) {
	rng := sparse.NewRand(32)
	entries := make([]sparse.Rating, 300)
	for i := range entries {
		entries[i] = sparse.Rating{U: int32(rng.Intn(50)), I: int32(rng.Intn(50)), V: 1}
	}
	want := append([]sparse.Rating(nil), entries...)
	sortEntriesByRow(want)
	if n := tileOrder(entries, 0, 8, tileBytesDefault); n != 1 {
		t.Fatalf("ntiles = %d, want 1 (50 cols fit one default tile)", n)
	}
	for i := range entries {
		if entries[i] != want[i] {
			t.Fatalf("single-tile order diverged from row sort at %d", i)
		}
	}
}

func TestTileColsBounds(t *testing.T) {
	if tc := tileCols(32, tileBytesDefault); tc != tileBytesDefault/(4*32) {
		t.Fatalf("tileCols(32, default) = %d", tc)
	}
	if tc := tileCols(1<<20, 1); tc != 1 {
		t.Fatalf("tileCols tiny budget = %d, want 1", tc)
	}
	if tc := tileCols(0, 1024); tc != 1 {
		t.Fatalf("tileCols k=0 = %d, want 1", tc)
	}
}

// Fast-math engine convergence: the reordered kernels and traversals must
// still descend. These mirror the default-mode convergence tests.

func TestFPSGDFastMathConverges(t *testing.T) {
	m := trainSet(t, 80, 60, 4000, 14)
	rmse := runEngine(t, &FPSGD{Threads: 4, FastMath: true}, m, 25)
	if rmse > 0.35 {
		t.Fatalf("fast-math fpsgd RMSE after 25 epochs = %v", rmse)
	}
}

func TestBatchedFastMathConverges(t *testing.T) {
	skipLockFreeUnderRace(t)
	m := trainSet(t, 80, 60, 4000, 15)
	rmse := runEngine(t, &Batched{Groups: 8, BatchSize: 512, FastMath: true}, m, 25)
	if rmse > 0.35 {
		t.Fatalf("fast-math batched RMSE after 25 epochs = %v", rmse)
	}
}

func TestHogwildFastMathConverges(t *testing.T) {
	skipLockFreeUnderRace(t)
	m := trainSet(t, 80, 60, 4000, 16)
	rmse := runEngine(t, &Hogwild{Threads: 4, FastMath: true}, m, 25)
	if rmse > 0.35 {
		t.Fatalf("fast-math hogwild RMSE after 25 epochs = %v", rmse)
	}
}

// The grid cache must be invalidated when the engine flips traversal mode
// or the factor dimension changes under tiling.
func TestFPSGDGridCacheTiledKey(t *testing.T) {
	m := trainSet(t, 50, 50, 1000, 18)
	e := &FPSGD{Threads: 2}
	f := NewFactorsInit(50, 50, 4, m.MeanRating(), sparse.NewRand(2))
	h := HyperParams{Gamma: 0.01}
	e.Epoch(f, m, h)
	g1 := e.grid
	e.FastMath = true
	e.Epoch(f, m, h)
	if e.grid == g1 {
		t.Fatal("grid not rebuilt after switching to tiled traversal")
	}
	g2 := e.grid
	f8 := NewFactorsInit(50, 50, 8, m.MeanRating(), sparse.NewRand(2))
	e.Epoch(f8, m, h)
	if e.grid == g2 {
		t.Fatal("tiled grid not rebuilt for a new factor dimension")
	}
}
