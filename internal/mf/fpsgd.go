package mf

import (
	"fmt"
	"sync"

	"hccmf/internal/sparse"
)

// FPSGD is the cache-friendly block-scheduled SGD engine of Chin et al.
// (the paper's reference [2], "fast parallel SGD"). The rating matrix is
// tiled into a (Threads+1)×(Threads+1) block grid; a scheduler hands each
// worker thread a *free* block — one sharing no block-row or block-column
// with any in-flight block — so threads never touch the same P or Q rows
// and no per-update locking is needed. Within an epoch every block is
// processed exactly once.
type FPSGD struct {
	// Threads is the number of worker threads (≥1).
	Threads int
	// GridExtra widens the grid to (Threads+1+GridExtra) per side; larger
	// grids give the scheduler more freedom at the cost of smaller blocks.
	GridExtra int
	// FastMath opts the engine into the versioned fast-math mode
	// (DESIGN.md §16): the 8-accumulator kernel plus a cache-blocked block
	// traversal — each grid block's entries are reordered into L2-sized
	// column tiles (see tileOrder in schedule.go) so the Q rows a sweep
	// touches stay resident across the tile. Off by default; default mode
	// keeps the bit-exact row-sorted traversal.
	FastMath bool
	// TileBytes bounds the Q-tile footprint used by the fast-math block
	// traversal; 0 selects tileBytesDefault (a conservative per-core L2
	// share). Ignored unless FastMath is set.
	TileBytes int

	mu    sync.Mutex
	grid  *sparse.BlockGridded
	src   *sparse.COO // grid cache key
	nside int
	gridK int             // factor dimension the cached grid was tiled for
	tiled bool            // whether the cached grid's blocks are tile-ordered
	sched *blockScheduler // reused across epochs, reset() each time
	sweeper
}

// Name implements Engine.
func (fp *FPSGD) Name() string {
	if fp.FastMath {
		return fmt.Sprintf("fpsgd-%d-tiled", fp.Threads)
	}
	return fmt.Sprintf("fpsgd-%d", fp.Threads)
}

// Epoch implements Engine.
//
// lint:hotpath
func (fp *FPSGD) Epoch(f *Factors, train *sparse.COO, h HyperParams) {
	start := fp.metrics.EpochStart()
	fp.epoch(f, train, h)
	fp.metrics.EpochDone(start, int64(len(train.Entries)))
}

// lint:hotpath
func (fp *FPSGD) epoch(f *Factors, train *sparse.COO, h HyperParams) {
	threads := fp.Threads
	if threads < 1 {
		threads = 1
	}
	nside := threads + 1 + fp.GridExtra
	if nside > train.Rows {
		nside = train.Rows
	}
	if nside > train.Cols {
		nside = train.Cols
	}
	if nside < 1 {
		nside = 1
	}
	kern := fp.kernel(f.K, fp.FastMath)
	grid := fp.cachedGrid(train, nside, f.K)
	if grid == nil || threads == 1 || nside < 2 {
		trainEntriesKernel(f, train.Entries, h, kern)
		return
	}

	sched := fp.scheduler(grid)
	pool := fp.ensure(threads)
	fp.wg.Add(threads)
	for w := 0; w < threads; w++ {
		// Concurrent kernel sweeps never share a factor row: the
		// blockScheduler carried in the task hands out row- and
		// column-disjoint blocks; joined by fp.wg.Wait.
		pool.tasks <- sweepTask{f: f, h: h, sched: sched, grid: grid, wg: &fp.wg, kern: kern}
	}
	fp.wg.Wait()
}

// scheduler returns the epoch block scheduler, reusing the previous epoch's
// allocation when the grid shape is unchanged.
func (fp *FPSGD) scheduler(grid *sparse.BlockGridded) *blockScheduler {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.sched != nil && fp.sched.nbr == grid.NBR && fp.sched.nbc == grid.NBC {
		fp.sched.reset()
		return fp.sched
	}
	fp.sched = newBlockScheduler(grid.NBR, grid.NBC)
	return fp.sched
}

// cachedGrid reuses the block grid across epochs as long as the engine
// trains the same matrix with the same grid side, factor dimension and
// traversal mode. Grid construction is a per-matrix setup cost, so the
// (cold) tile reorder happens here, not per epoch.
func (fp *FPSGD) cachedGrid(train *sparse.COO, nside, k int) *sparse.BlockGridded {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.grid != nil && fp.src == train && fp.nside == nside &&
		fp.tiled == fp.FastMath && (!fp.tiled || fp.gridK == k) {
		return fp.grid
	}
	g, err := sparse.NewBlockGrid(train, nside, nside)
	if err != nil {
		return nil
	}
	if fp.FastMath {
		// Cache-blocked traversal: order each block's entries into L2-sized
		// column tiles, (row, col) within a tile, so a sweep's Q working set
		// stays tile-resident (DESIGN.md §16).
		budget := fp.TileBytes
		if budget <= 0 {
			budget = tileBytesDefault
		}
		for i := range g.Blocks {
			colLo, _ := g.ColRange(g.Blocks[i].BC)
			tileOrder(g.Blocks[i].Entries, colLo, k, budget)
		}
	} else {
		// Sort blocks by row for cache locality, as the paper's modified
		// baseline does ("block sorting by row").
		for i := range g.Blocks {
			sortEntriesByRow(g.Blocks[i].Entries)
		}
	}
	fp.grid, fp.src, fp.nside = g, train, nside
	fp.tiled, fp.gridK = fp.FastMath, k
	return g
}

func sortEntriesByRow(entries []sparse.Rating) {
	// Insertion-friendly small slices dominate; stdlib sort is fine here
	// because grids are rebuilt once per matrix, not per epoch.
	if len(entries) < 2 {
		return
	}
	quickSortByRow(entries)
}

func quickSortByRow(e []sparse.Rating) {
	for len(e) > 12 {
		p := partitionByRow(e)
		if p < len(e)-p {
			quickSortByRow(e[:p])
			e = e[p:]
		} else {
			quickSortByRow(e[p:])
			e = e[:p]
		}
	}
	for i := 1; i < len(e); i++ {
		for j := i; j > 0 && lessByRow(e[j], e[j-1]); j-- {
			e[j], e[j-1] = e[j-1], e[j]
		}
	}
}

func partitionByRow(e []sparse.Rating) int {
	pivot := e[len(e)/2]
	i, j := 0, len(e)-1
	for {
		for lessByRow(e[i], pivot) {
			i++
		}
		for lessByRow(pivot, e[j]) {
			j--
		}
		if i >= j {
			return j + 1
		}
		e[i], e[j] = e[j], e[i]
		i++
		j--
	}
}

func lessByRow(a, b sparse.Rating) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.I < b.I
}

// blockScheduler hands out grid blocks so that no two in-flight blocks
// share a block-row or block-column, and every block runs exactly once per
// epoch. acquire blocks until a free block exists or the epoch is done.
type blockScheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	nbr     int
	nbc     int
	done    []bool
	rowBusy []bool
	colBusy []bool
	left    int
}

func newBlockScheduler(nbr, nbc int) *blockScheduler {
	s := &blockScheduler{
		nbr: nbr, nbc: nbc,
		done:    make([]bool, nbr*nbc),
		rowBusy: make([]bool, nbr),
		colBusy: make([]bool, nbc),
		left:    nbr * nbc,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// acquire returns the index of a free, not-yet-done block, or ok=false when
// the epoch has completed.
func (s *blockScheduler) acquire() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.left == 0 {
			return 0, false
		}
		for br := 0; br < s.nbr; br++ {
			if s.rowBusy[br] {
				continue
			}
			for bc := 0; bc < s.nbc; bc++ {
				if s.colBusy[bc] {
					continue
				}
				idx := br*s.nbc + bc
				if s.done[idx] {
					continue
				}
				s.done[idx] = true
				s.rowBusy[br] = true
				s.colBusy[bc] = true
				s.left--
				return idx, true
			}
		}
		// All remaining blocks conflict with in-flight ones; wait for a
		// release.
		s.cond.Wait()
	}
}

// reset rewinds the scheduler for another epoch over the same grid shape,
// reusing its slices.
func (s *blockScheduler) reset() {
	s.mu.Lock()
	for i := range s.done {
		s.done[i] = false
	}
	for i := range s.rowBusy {
		s.rowBusy[i] = false
	}
	for i := range s.colBusy {
		s.colBusy[i] = false
	}
	s.left = len(s.done)
	s.mu.Unlock()
}

// release frees the row/column of a completed block.
func (s *blockScheduler) release(idx int) {
	s.mu.Lock()
	s.rowBusy[idx/s.nbc] = false
	s.colBusy[idx%s.nbc] = false
	s.mu.Unlock()
	s.cond.Broadcast()
}
