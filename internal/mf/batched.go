package mf

import (
	"fmt"

	"hccmf/internal/sparse"
)

// Batched mirrors the execution shape of cuMF_SGD (the paper's reference
// [27]): the entry stream is processed in large batches — one batch per
// simulated kernel launch — and within a batch a fixed pool of "thread
// group" goroutines (warps) sweep disjoint contiguous runs Hogwild-style.
// The batch boundary is a barrier, matching the GPU's kernel-launch
// synchronisation; within a batch there is no locking, matching cuMF_SGD's
// lock-free warp design. Like Hogwild, the intra-batch races are
// intentional: tests consult raceflag.Enabled to stay off these paths
// under -race, and the raceguard analyzer keeps the quarantine tight.
type Batched struct {
	// Groups is the number of concurrent thread groups (≥1). On the real
	// GPU this is blocks×warps; here each group is a pool worker.
	Groups int
	// BatchSize is the number of ratings consumed per simulated kernel
	// launch; 0 selects the whole epoch as one batch.
	BatchSize int
	// FastMath opts the engine into the versioned fast-math mode
	// (DESIGN.md §16): group sweeps run the SoA mini-batch staging loop
	// (see soa.go) with the 8-accumulator kernel. Results leave the
	// default bit-exact contract — they follow the fast-math goldens
	// instead. Off by default.
	FastMath bool

	sweeper
	// soa holds one staging scratch per group when FastMath is on.
	soa []*soaScratch
}

// Name implements Engine.
func (bt *Batched) Name() string {
	if bt.FastMath {
		return fmt.Sprintf("batched-%d-soa", bt.Groups)
	}
	return fmt.Sprintf("batched-%d", bt.Groups)
}

// Epoch implements Engine.
//
// lint:hotpath
func (bt *Batched) Epoch(f *Factors, train *sparse.COO, h HyperParams) {
	start := bt.metrics.EpochStart()
	bt.epoch(f, train, h)
	bt.metrics.EpochDone(start, int64(len(train.Entries)))
}

// lint:hotpath
func (bt *Batched) epoch(f *Factors, train *sparse.COO, h HyperParams) {
	groups := bt.Groups
	if groups < 1 {
		groups = 1
	}
	n := len(train.Entries)
	batch := bt.BatchSize
	if batch <= 0 || batch > n {
		batch = n
	}
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		bt.launch(f, train.Entries[lo:hi], h, groups)
	}
}

// launch is one simulated kernel launch over a batch. The group sweeps run
// on the engine's persistent worker pool; the wg.Wait is the kernel-launch
// barrier. Under FastMath each group stages its chunk through its own SoA
// scratch; a single-group launch runs the staging loop inline, which keeps
// Groups=1 fast-math runs deterministic (the golden-results configuration).
//
// lint:hotpath
func (bt *Batched) launch(f *Factors, entries []sparse.Rating, h HyperParams, groups int) {
	n := len(entries)
	kern := bt.kernel(f.K, bt.FastMath)
	if groups == 1 || n < 4*groups {
		if bt.FastMath {
			bt.soaEnsure(1, f, n)
			trainEntriesSoA(f, entries, h, bt.soa[0])
		} else {
			trainEntriesKernel(f, entries, h, kern)
		}
		return
	}
	chunk := (n + groups - 1) / groups
	pool := bt.ensure(groups)
	if bt.FastMath {
		bt.soaEnsure(groups, f, chunk)
	}
	g := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		t := sweepTask{f: f, h: h, entries: entries[lo:hi], wg: &bt.wg, kern: kern}
		if bt.FastMath {
			t.soa = bt.soa[g]
		}
		bt.wg.Add(1)
		pool.tasks <- t
		g++
	}
	bt.wg.Wait()
}

// soaEnsure sizes one SoA scratch per group for chunks of up to chunk
// entries. Setup path: it allocates only when the group count or batch
// geometry first appears or grows; steady-state launches reuse everything.
func (bt *Batched) soaEnsure(groups int, f *Factors, chunk int) {
	for len(bt.soa) < groups {
		bt.soa = append(bt.soa, new(soaScratch))
	}
	for g := 0; g < groups; g++ {
		bt.soa[g].prepare(f.N, f.K, chunk)
	}
}
