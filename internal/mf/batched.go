package mf

import (
	"fmt"

	"hccmf/internal/sparse"
)

// Batched mirrors the execution shape of cuMF_SGD (the paper's reference
// [27]): the entry stream is processed in large batches — one batch per
// simulated kernel launch — and within a batch a fixed pool of "thread
// group" goroutines (warps) sweep disjoint contiguous runs Hogwild-style.
// The batch boundary is a barrier, matching the GPU's kernel-launch
// synchronisation; within a batch there is no locking, matching cuMF_SGD's
// lock-free warp design. Like Hogwild, the intra-batch races are
// intentional: tests consult raceflag.Enabled to stay off these paths
// under -race, and the raceguard analyzer keeps the quarantine tight.
type Batched struct {
	// Groups is the number of concurrent thread groups (≥1). On the real
	// GPU this is blocks×warps; here each group is a pool worker.
	Groups int
	// BatchSize is the number of ratings consumed per simulated kernel
	// launch; 0 selects the whole epoch as one batch.
	BatchSize int

	sweeper
}

// Name implements Engine.
func (bt *Batched) Name() string { return fmt.Sprintf("batched-%d", bt.Groups) }

// Epoch implements Engine.
//
// lint:hotpath
func (bt *Batched) Epoch(f *Factors, train *sparse.COO, h HyperParams) {
	start := bt.metrics.EpochStart()
	bt.epoch(f, train, h)
	bt.metrics.EpochDone(start, int64(len(train.Entries)))
}

// lint:hotpath
func (bt *Batched) epoch(f *Factors, train *sparse.COO, h HyperParams) {
	groups := bt.Groups
	if groups < 1 {
		groups = 1
	}
	n := len(train.Entries)
	batch := bt.BatchSize
	if batch <= 0 || batch > n {
		batch = n
	}
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		bt.launch(f, train.Entries[lo:hi], h, groups)
	}
}

// launch is one simulated kernel launch over a batch. The group sweeps run
// on the engine's persistent worker pool; the wg.Wait is the kernel-launch
// barrier.
//
// lint:hotpath
func (bt *Batched) launch(f *Factors, entries []sparse.Rating, h HyperParams, groups int) {
	n := len(entries)
	if groups == 1 || n < 4*groups {
		TrainEntries(f, entries, h)
		return
	}
	chunk := (n + groups - 1) / groups
	pool := bt.ensure(groups)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		bt.wg.Add(1)
		pool.tasks <- sweepTask{f: f, h: h, entries: entries[lo:hi], wg: &bt.wg}
	}
	bt.wg.Wait()
}
