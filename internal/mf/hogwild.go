package mf

import (
	"fmt"

	"hccmf/internal/sparse"
)

// Hogwild is the lock-free asynchronous SGD engine of Niu et al. (the
// paper's reference [21]): Threads goroutines update the shared factors
// with no synchronisation at all. On sparse data conflicting updates are
// rare enough that convergence survives; HCC-MF relies on the same argument
// for its intra-worker asynchrony. The races here are the algorithm, not a
// bug: tests gate these paths on raceflag.Enabled and fall back to the
// serial variant under -race, and raceguard (hccmf-vet) keeps every other
// concurrent write path in this package out of this quarantine.
type Hogwild struct {
	// Threads is the number of concurrent updaters (≥1).
	Threads int
	// FastMath selects the reordered-accumulation fast-math kernel
	// (DESIGN.md §16) for the chunk sweeps. Off by default.
	FastMath bool

	sweeper
}

// Name implements Engine.
func (hw *Hogwild) Name() string { return fmt.Sprintf("hogwild-%d", hw.Threads) }

// Epoch implements Engine. Each pool worker sweeps a contiguous chunk of
// the (pre-shuffled) entry stream; races on hot rows are tolerated by
// design. The chunk sweeps run on the engine's persistent worker pool, so
// steady-state epochs allocate nothing.
//
// lint:hotpath
func (hw *Hogwild) Epoch(f *Factors, train *sparse.COO, h HyperParams) {
	start := hw.metrics.EpochStart()
	hw.epoch(f, train, h)
	hw.metrics.EpochDone(start, int64(len(train.Entries)))
}

// lint:hotpath
func (hw *Hogwild) epoch(f *Factors, train *sparse.COO, h HyperParams) {
	threads := hw.Threads
	if threads < 1 {
		threads = 1
	}
	n := len(train.Entries)
	kern := hw.kernel(f.K, hw.FastMath)
	if threads == 1 || n < 4*threads {
		trainEntriesKernel(f, train.Entries, h, kern)
		return
	}
	chunk := (n + threads - 1) / threads
	pool := hw.ensure(threads)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		hw.wg.Add(1)
		pool.tasks <- sweepTask{f: f, h: h, entries: train.Entries[lo:hi], wg: &hw.wg, kern: kern}
	}
	hw.wg.Wait()
}
