package mf

import "hccmf/internal/obs"

// Metered is the optional engine capability of reporting epoch progress
// into an observability bundle. The pool engines (FPSGD, Hogwild, Batched)
// implement it through the embedded sweeper; Serial stays stateless and
// unmetered. Callers attach instruments with a type assertion:
//
//	if m, ok := engine.(Metered); ok {
//		m.SetMetrics(run.EngineMetrics())
//	}
//
// A nil bundle (the default) keeps every hook a free no-op call, which is
// how the instrumented engines preserve their 0 allocs/op steady state —
// see the alloc guards in alloc_test.go.
type Metered interface {
	SetMetrics(*obs.EngineMetrics)
}

// SetMetrics installs (or, with nil, removes) the engine's metrics bundle.
// Not safe to call concurrently with Epoch.
func (s *sweeper) SetMetrics(m *obs.EngineMetrics) { s.metrics = m }
