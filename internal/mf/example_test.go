package mf_test

import (
	"fmt"

	"hccmf/internal/mf"
	"hccmf/internal/sparse"
)

// Training a tiny rating matrix with the serial SGD engine.
func Example() {
	// Three users, two items, five observed ratings.
	m := sparse.NewCOO(3, 2, 5)
	m.Add(0, 0, 5)
	m.Add(0, 1, 1)
	m.Add(1, 0, 4)
	m.Add(2, 0, 5)
	m.Add(2, 1, 2)

	f := mf.NewFactorsInit(3, 2, 4, m.MeanRating(), sparse.NewRand(1))
	h := mf.HyperParams{Gamma: 0.05, Lambda1: 0.01, Lambda2: 0.01}
	for epoch := 0; epoch < 200; epoch++ {
		mf.Serial{}.Epoch(f, m, h)
	}
	fmt.Printf("user0/item0: %.1f (rated 5)\n", f.Predict(0, 0))
	fmt.Printf("user0/item1: %.1f (rated 1)\n", f.Predict(0, 1))
	fmt.Printf("train RMSE: %.2f\n", mf.RMSE(f, m.Entries))
	// Output:
	// user0/item0: 5.0 (rated 5)
	// user0/item1: 1.0 (rated 1)
	// train RMSE: 0.01
}

// The cuMF_SGD-style inverse-decay learning-rate schedule.
func ExampleInverseDecay() {
	s := mf.InverseDecay{Gamma0: 0.01, Beta: 0.3}
	for _, epoch := range []int{0, 1, 4, 16} {
		fmt.Printf("epoch %2d: γ = %.5f\n", epoch, s.Gamma(epoch))
	}
	// Output:
	// epoch  0: γ = 0.01000
	// epoch  1: γ = 0.00769
	// epoch  4: γ = 0.00294
	// epoch 16: γ = 0.00050
}
