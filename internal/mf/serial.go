package mf

import "hccmf/internal/sparse"

// Serial is the reference single-threaded SGD engine: one in-order pass
// over the training entries per epoch. It is the correctness baseline every
// parallel engine is validated against.
type Serial struct{}

// Name implements Engine.
func (Serial) Name() string { return "serial" }

// Epoch implements Engine.
func (Serial) Epoch(f *Factors, train *sparse.COO, h HyperParams) {
	TrainEntries(f, train.Entries, h)
}
