//go:build !race

// Package raceflag exposes whether the race detector is compiled in.
// See race_on.go for why HCC-MF needs to know.
package raceflag

// Enabled reports whether the binary was built with -race.
const Enabled = false
