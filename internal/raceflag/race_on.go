//go:build race

// Package raceflag exposes whether the race detector is compiled in.
// HCC-MF's Hogwild-style kernels are *intentionally* lock-free: concurrent
// unsynchronised float32 updates are the algorithm (Niu et al., HOGWILD!,
// the paper's reference [21]), and the rare lost update is the accepted
// cost of asynchrony. Those code paths are undefined behaviour under the
// Go race detector by construction, so tests exercising them consult this
// flag and fall back to single-threaded variants under -race.
package raceflag

// Enabled reports whether the binary was built with -race.
const Enabled = true
