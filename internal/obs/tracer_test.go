package obs

import (
	"strings"
	"sync"
	"testing"
)

// fakeClock is a deterministic manual clock for tracer tests.
type fakeClock struct {
	mu  sync.Mutex
	now float64
}

func (c *fakeClock) read() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d float64) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func TestTracerSpanAndInstant(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(8, clk.read)
	sp := tr.Span(ProcReal, "gpu0", "ps", "pull")
	clk.advance(0.5)
	if d := sp.EndArg("bytes", 1024); d != 0.5 {
		t.Fatalf("span duration = %v, want 0.5", d)
	}
	clk.advance(0.25)
	tr.Instant(ProcReal, "server", "ps", "evict", "epoch", 3)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Name != "pull" || evs[0].Start != 0 || evs[0].End != 0.5 ||
		evs[0].ArgName != "bytes" || evs[0].Arg != 1024 {
		t.Fatalf("span event = %+v", evs[0])
	}
	if evs[1].Name != "evict" || evs[1].Start != 0.75 || evs[1].End != 0.75 || evs[1].Arg != 3 {
		t.Fatalf("instant event = %+v", evs[1])
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", tr.Dropped())
	}
}

func TestTracerRingWraps(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(4, clk.read)
	for i := 0; i < 10; i++ {
		clk.advance(1)
		tr.Instant(ProcReal, "w", "t", "tick", "i", float64(i))
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d, want ring capacity 4", len(evs))
	}
	// Oldest surviving first: ticks 6, 7, 8, 9.
	for i, ev := range evs {
		if want := float64(6 + i); ev.Arg != want {
			t.Fatalf("event %d arg = %v, want %v", i, ev.Arg, want)
		}
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Span(ProcReal, "w", "c", "n")
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
	tr.Instant(ProcReal, "w", "c", "n", "", 0)
	tr.Emit(Event{})
	if tr.Events() != nil || tr.Dropped() != 0 || tr.Now() != 0 {
		t.Fatal("nil tracer must read as empty")
	}
}

func TestTracerConcurrentRecording(t *testing.T) {
	tr := NewTracer(1<<12, WallClock())
	var wg sync.WaitGroup
	const goroutines, each = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Span(ProcReal, "w", "c", "op").End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Events()) + int(tr.Dropped()); got != goroutines*each {
		t.Fatalf("recorded+dropped = %d, want %d", got, goroutines*each)
	}
}

func TestTracks(t *testing.T) {
	evs := []Event{
		{Proc: ProcSim, Track: "b"},
		{Proc: ProcReal, Track: "a"},
		{Proc: ProcSim, Track: "b"},
		{Proc: ProcReal, Track: "c"},
	}
	got := Tracks(evs)
	want := []string{"real/a", "real/c", "sim/b"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("tracks = %v, want %v", got, want)
	}
}

func TestWallClockMonotone(t *testing.T) {
	clk := WallClock()
	a := clk()
	b := clk()
	if a < 0 || b < a {
		t.Fatalf("wall clock not monotone: %v then %v", a, b)
	}
}
