package obs

import "testing"

// Wire-level instruments move only for transfers that produced frames:
// shared-memory traffic keeps comm/net_seconds and the wire counters at
// zero, wire traffic feeds them — and retries are part of one sample, so
// nothing is double-counted.
func TestCountTransferGatesWireInstruments(t *testing.T) {
	r := NewRegistry()
	m := NewRunMetrics(r)

	m.CountTransfer(TransferSample{BusBytes: 100, Copies: 1, Retries: 2})
	if m.WireBytes.Value() != 0 || m.Frames.Value() != 0 || m.Handshakes.Value() != 0 {
		t.Fatalf("in-process transfer moved wire counters: wire=%d frames=%d hs=%d",
			m.WireBytes.Value(), m.Frames.Value(), m.Handshakes.Value())
	}
	if m.NetSeconds.Count() != 0 {
		t.Fatal("in-process transfer fed comm/net_seconds")
	}

	m.CountTransfer(TransferSample{
		BusBytes: 100, WireBytes: 148, Copies: 3, Retries: 1,
		Frames: 2, Handshakes: 1, Seconds: 0.25, Failed: false,
	})
	if m.BusBytes.Value() != 200 {
		t.Fatalf("BusBytes = %d, want 200", m.BusBytes.Value())
	}
	if m.WireBytes.Value() != 148 || m.Frames.Value() != 2 || m.Handshakes.Value() != 1 {
		t.Fatalf("wire counters = %d/%d/%d", m.WireBytes.Value(), m.Frames.Value(), m.Handshakes.Value())
	}
	if m.NetSeconds.Count() != 1 || m.NetSeconds.Sum() != 0.25 {
		t.Fatalf("net_seconds count=%d sum=%v", m.NetSeconds.Count(), m.NetSeconds.Sum())
	}
	if m.Retries.Value() != 3 || m.Transfers.Value() != 2 {
		t.Fatalf("retries=%d transfers=%d", m.Retries.Value(), m.Transfers.Value())
	}

	m.CountTransfer(TransferSample{Failed: true})
	if m.TransferErrors.Value() != 1 {
		t.Fatalf("errors = %d", m.TransferErrors.Value())
	}
}
