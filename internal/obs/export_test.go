package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestBucketJSONRoundTrip(t *testing.T) {
	for _, b := range []Bucket{
		{UpperBound: 0.5, Count: 3},
		{UpperBound: math.Inf(1), Count: 7},
	} {
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		var back Bucket
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != b {
			t.Fatalf("round trip %s: got %+v, want %+v", data, back, b)
		}
	}
	if !strings.Contains(string(mustMarshal(t, Bucket{UpperBound: math.Inf(1)})), `"+Inf"`) {
		t.Fatal("+Inf bound must marshal as the string \"+Inf\"")
	}
	var b Bucket
	if err := json.Unmarshal([]byte(`{"le":"-Inf","count":1}`), &b); err == nil {
		t.Fatal("unexpected string bound must be rejected")
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDocumentSchemaStable pins the hccmf-obs/v1 field set: consumers
// (benchdiff-style tooling, checked-in artifacts) key on these names.
func TestDocumentSchemaStable(t *testing.T) {
	o := NewObserver(16, func() float64 { return 0 })
	o.Run.Updates.Add(10)
	o.Registry.Gauge("sim/total_seconds", "").Set(12.5)
	o.Tracer.Instant(ProcReal, "server", "ps", "evict", "epoch", 1)

	var buf bytes.Buffer
	if err := o.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("document is not valid JSON: %v", err)
	}
	if doc["schema"] != Schema {
		t.Fatalf("schema = %v, want %q", doc["schema"], Schema)
	}
	for _, key := range []string{"go_version", "gomaxprocs", "metrics", "events"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("document missing %q: %s", key, buf.Bytes())
		}
	}
	metrics, ok := doc["metrics"].([]any)
	if !ok || len(metrics) == 0 {
		t.Fatalf("metrics = %v", doc["metrics"])
	}
	// The updates counter must survive export with its value.
	found := false
	for _, m := range metrics {
		mm := m.(map[string]any)
		if mm["name"] == "train/updates_total" {
			found = true
			if mm["kind"] != "counter" || mm["value"] != 10.0 {
				t.Fatalf("updates metric = %v", mm)
			}
		}
	}
	if !found {
		t.Fatal("train/updates_total missing from export")
	}
	// Round-trip: the document must parse back into the typed form.
	var typed Document
	if err := json.Unmarshal(buf.Bytes(), &typed); err != nil {
		t.Fatalf("typed round trip: %v", err)
	}
	if typed.Events != 1 {
		t.Fatalf("events = %d, want 1", typed.Events)
	}
}

func TestNilObserverDocument(t *testing.T) {
	var o *Observer
	doc := o.Document()
	if doc.Schema != Schema || doc.Metrics != nil || doc.Events != 0 {
		t.Fatalf("nil observer document = %+v", doc)
	}
	var buf bytes.Buffer
	if err := o.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("nil observer export is not valid JSON")
	}
}

func TestRegistryFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("c/total", "").Add(5)
	r.Gauge("g", "").Set(0.25)
	MustHistogram(r, "h", "", []float64{1, 2}).Observe(1.5)
	out := r.Format()
	for _, want := range []string{"c/total", "g", "h", "count 1", "mean 1.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
