package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
)

// Schema tags the versioned JSON metrics document WriteJSON emits. The
// field set is pinned by TestDocumentSchemaStable; bump the version when
// it changes so checked-in documents stay diffable.
const Schema = "hccmf-obs/v1"

// Document is the full metrics export.
type Document struct {
	Schema     string           `json:"schema"`
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Metrics    []MetricSnapshot `json:"metrics"`
	// Events and DroppedEvents describe the tracer ring at export time
	// (both 0 when the run had no tracer).
	Events        int   `json:"events,omitempty"`
	DroppedEvents int64 `json:"dropped_events,omitempty"`
}

// Document assembles the export for an observer (nil-safe: a nil observer
// yields an empty, still-valid document).
func (o *Observer) Document() Document {
	doc := Document{
		Schema:     Schema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if o == nil {
		return doc
	}
	doc.Metrics = o.Registry.Snapshot()
	if o.Tracer != nil {
		doc.Events = len(o.Tracer.Events())
		doc.DroppedEvents = o.Tracer.Dropped()
	}
	return doc
}

// MarshalJSON renders +Inf bucket bounds as the string "+Inf" (bare JSON
// numbers cannot carry infinities).
func (b Bucket) MarshalJSON() ([]byte, error) {
	type finite struct {
		UpperBound float64 `json:"le"`
		Count      int64   `json:"count"`
	}
	if math.IsInf(b.UpperBound, 1) {
		return json.Marshal(struct {
			UpperBound string `json:"le"`
			Count      int64  `json:"count"`
		}{"+Inf", b.Count})
	}
	return json.Marshal(finite{b.UpperBound, b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		UpperBound json.RawMessage `json:"le"`
		Count      int64           `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	var s string
	if err := json.Unmarshal(raw.UpperBound, &s); err == nil {
		if s != "+Inf" {
			return fmt.Errorf("obs: bucket bound %q", s)
		}
		b.UpperBound = math.Inf(1)
		return nil
	}
	return json.Unmarshal(raw.UpperBound, &b.UpperBound)
}

// WriteJSON writes the observer's metrics document to w.
func (o *Observer) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(o.Document(), "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// WriteMetricsFile writes the hccmf-obs/v1 metrics document to path — the
// CLI entry point behind -metrics-out.
//
// lint:allow nilobs o.WriteJSON is a method value whose chain (WriteJSON -> Document) is nil-guarded; the analyzer cannot follow method values.
func (o *Observer) WriteMetricsFile(path string) error {
	return writeFile(path, o.WriteJSON)
}

// WriteTraceFile writes the recorded events as a Chrome trace_event
// document to path — the CLI entry point behind -trace-out.
func (o *Observer) WriteTraceFile(path string) error {
	var events []Event
	if o != nil {
		events = o.Tracer.Events()
	}
	return writeFile(path, func(w io.Writer) error { return WriteChromeTrace(w, events) })
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
