package obs

import (
	"encoding/json"
	"io"
	"sort"

	"hccmf/internal/trace"
)

// Chrome trace_event export: the JSON Object Format of the Trace Event
// specification, loadable in chrome://tracing and Perfetto. Every Event
// becomes a complete ("ph":"X") event; instants (Start == End) become
// "ph":"i". Processes group the time domains (ProcReal wall-clock seconds,
// ProcSim simengine seconds — see Event.Proc), tracks become named
// threads, and timestamps are microseconds as the format requires.

// TraceSchema tags the exported document in otherData.
const TraceSchema = "hccmf-obs/trace/v1"

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// WriteChromeTrace writes events as a Chrome trace_event JSON document.
// Process and thread ids are assigned deterministically (sorted proc and
// track names), so identical event sets yield byte-identical documents —
// pinned by the golden test.
func WriteChromeTrace(w io.Writer, events []Event) error {
	procs := map[string]int{}
	tids := map[[2]string]int{}
	var procNames []string
	trackNames := map[string][]string{}
	for _, ev := range events {
		if _, ok := procs[ev.Proc]; !ok {
			procs[ev.Proc] = 0
			procNames = append(procNames, ev.Proc)
		}
		key := [2]string{ev.Proc, ev.Track}
		if _, ok := tids[key]; !ok {
			tids[key] = 0
			trackNames[ev.Proc] = append(trackNames[ev.Proc], ev.Track)
		}
	}
	sort.Strings(procNames)
	doc := chromeDoc{
		TraceEvents:     []chromeEvent{},
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"schema": TraceSchema},
	}
	for pi, proc := range procNames {
		procs[proc] = pi + 1
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pi + 1,
			Args: map[string]any{"name": proc},
		})
		tracks := trackNames[proc]
		sort.Strings(tracks)
		for ti, track := range tracks {
			tids[[2]string{proc, track}] = ti + 1
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pi + 1, TID: ti + 1,
				Args: map[string]any{"name": track},
			})
		}
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			TS:   ev.Start * 1e6,
			PID:  procs[ev.Proc],
			TID:  tids[[2]string{ev.Proc, ev.Track}],
		}
		if ev.End > ev.Start {
			d := (ev.End - ev.Start) * 1e6
			ce.Ph, ce.Dur = "X", &d
		} else {
			ce.Ph, ce.S = "i", "t"
		}
		if ev.ArgName != "" {
			ce.Args = map[string]any{ev.ArgName: ev.Arg}
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}
	buf, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// TimelineEvents converts a simulated-platform timeline (trace.Timeline
// spans, simengine seconds) into ProcSim events, so simengine runs export
// to the same Chrome trace as real execution — as a separate process,
// because the time domains differ.
func TimelineEvents(tl *trace.Timeline) []Event {
	if tl == nil {
		return nil
	}
	spans := tl.Spans()
	out := make([]Event, 0, len(spans))
	for _, s := range spans {
		out = append(out, Event{
			Proc:  ProcSim,
			Track: s.Worker,
			Cat:   "simengine",
			Name:  s.Phase.String(),
			Start: s.Start,
			End:   s.End,
		})
	}
	return out
}

// Band is one worker's busy/idle decomposition over a timeline — the
// utilization-band view of the paper's Figure 5: Busy is the union of the
// worker's spans (overlapping async streams are not double-counted),
// Compute the union of its compute spans, Idle the remainder of [0, End].
type Band struct {
	Worker string `json:"worker"`
	// Busy is seconds covered by at least one span.
	Busy float64 `json:"busy"`
	// Compute is seconds covered by at least one compute span.
	Compute float64 `json:"compute"`
	// Idle is End minus Busy.
	Idle float64 `json:"idle"`
	// Utilization is Busy/End — the per-device analogue of the Table 4
	// metric (metrics.Utilization reports the cluster-level actual/ideal).
	Utilization float64 `json:"utilization"`
}

// TimelineBands decomposes a timeline into per-worker utilization bands
// over [0, end] (end ≤ 0 uses the timeline's own end). Workers are sorted
// by name.
func TimelineBands(tl *trace.Timeline, end float64) []Band {
	if tl == nil {
		return nil
	}
	if end <= 0 {
		end = tl.End()
	}
	if end <= 0 {
		return nil
	}
	type intervals struct{ all, compute [][2]float64 }
	byWorker := map[string]*intervals{}
	var workers []string
	for _, s := range tl.Spans() {
		iv, ok := byWorker[s.Worker]
		if !ok {
			iv = &intervals{}
			byWorker[s.Worker] = iv
			workers = append(workers, s.Worker)
		}
		iv.all = append(iv.all, [2]float64{s.Start, s.End})
		if s.Phase == trace.Compute {
			iv.compute = append(iv.compute, [2]float64{s.Start, s.End})
		}
	}
	sort.Strings(workers)
	out := make([]Band, 0, len(workers))
	for _, w := range workers {
		iv := byWorker[w]
		busy := unionLength(iv.all)
		b := Band{
			Worker:      w,
			Busy:        busy,
			Compute:     unionLength(iv.compute),
			Idle:        end - busy,
			Utilization: busy / end,
		}
		if b.Idle < 0 {
			b.Idle = 0
		}
		out = append(out, b)
	}
	return out
}

// unionLength measures the total length covered by a set of intervals.
func unionLength(ivs [][2]float64) float64 {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
	total := 0.0
	curLo, curHi := ivs[0][0], ivs[0][1]
	for _, iv := range ivs[1:] {
		if iv[0] > curHi {
			total += curHi - curLo
			curLo, curHi = iv[0], iv[1]
			continue
		}
		if iv[1] > curHi {
			curHi = iv[1]
		}
	}
	return total + (curHi - curLo)
}
