package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Event is one traced interval (or instant, when Start == End) on a named
// track. Proc groups tracks into Chrome-trace processes, which is how the
// two time domains stay apart: "real" events carry wall-clock seconds,
// "sim" events carry simengine seconds.
type Event struct {
	// Proc is the process group ("real", "sim").
	Proc string
	// Track is the row the event renders on (worker name, "server").
	Track string
	// Cat is the subsystem category ("ps", "mf", "comm", "simengine").
	Cat string
	// Name is the event label ("pull", "epoch", "evict", ...).
	Name string
	// Start and End are seconds on the event's clock domain.
	Start, End float64
	// Arg is an optional numeric payload, labelled by ArgName
	// ("bytes", "epoch", ...). ArgName == "" means no payload.
	ArgName string
	Arg     float64
}

// Duration reports End-Start.
func (e Event) Duration() float64 { return e.End - e.Start }

// ProcReal and ProcSim are the two process groups HCC-MF emits: real
// execution on the wall clock, and the simulated platform on simengine's
// virtual clock. Chrome trace export keeps them as separate processes so
// the differing time domains cannot be misread as one axis.
const (
	ProcReal = "real"
	ProcSim  = "sim"
)

// WallClock returns a monotonic wall-clock reading in seconds since the
// returned function was created. It is the only wall-clock source the
// instrumentation layers use: simulated-platform packages receive it (or a
// virtual clock) via Tracer injection and never read time themselves —
// the simtime analyzer enforces that they cannot even name this function.
func WallClock() func() float64 {
	start := time.Now()
	return func() float64 { return time.Since(start).Seconds() }
}

// Tracer records events into a fixed-capacity ring buffer: recording is
// one mutex-guarded struct store, no allocation, and when the buffer wraps
// the oldest events are overwritten (Dropped counts them). That bounds
// memory on arbitrarily long runs and keeps instrumented hot loops off the
// allocator.
type Tracer struct {
	clock func() float64

	mu      sync.Mutex
	ring    []Event
	next    int   // next write slot
	filled  bool  // ring has wrapped at least once
	dropped int64 // events overwritten by wrapping
}

// DefaultTraceCapacity bounds a tracer's event memory: 1<<16 events is
// ~6 MiB and covers hundreds of epochs of per-worker phase spans.
const DefaultTraceCapacity = 1 << 16

// NewTracer creates a tracer with the given ring capacity (≤0 selects
// DefaultTraceCapacity) reading the given clock (nil selects WallClock).
func NewTracer(capacity int, clock func() float64) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if clock == nil {
		clock = WallClock()
	}
	return &Tracer{clock: clock, ring: make([]Event, capacity)}
}

// Now reads the tracer's clock (0 on nil).
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// record stores one event in the ring.
func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	if t.filled {
		t.dropped++
	}
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	t.mu.Unlock()
}

// Emit records a fully specified event (explicit times — the entry point
// for replaying simulated timelines). No-op on nil.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.record(ev)
}

// Instant records a zero-duration marker (retry, eviction) at the current
// clock reading, with an optional numeric payload.
func (t *Tracer) Instant(proc, track, cat, name, argName string, arg float64) {
	if t == nil {
		return
	}
	now := t.clock()
	t.record(Event{Proc: proc, Track: track, Cat: cat, Name: name,
		Start: now, End: now, ArgName: argName, Arg: arg})
}

// Span starts an interval at the current clock reading. The returned Span
// is a value (no allocation); call End (or EndArg) to record it.
func (t *Tracer) Span(proc, track, cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, proc: proc, track: track, cat: cat, name: name, start: t.clock()}
}

// Span is an open interval handle. The zero value is inert: End on a span
// from a nil tracer records nothing and reports 0.
type Span struct {
	t     *Tracer
	proc  string
	track string
	cat   string
	name  string
	start float64
}

// End records the span and reports its duration in clock seconds.
func (s Span) End() float64 { return s.EndArg("", 0) }

// EndArg is End with a numeric payload attached (e.g. bytes moved).
func (s Span) EndArg(argName string, arg float64) float64 {
	if s.t == nil {
		return 0
	}
	end := s.t.clock()
	s.t.record(Event{Proc: s.proc, Track: s.track, Cat: s.cat, Name: s.name,
		Start: s.start, End: end, ArgName: argName, Arg: arg})
	return end - s.start
}

// Events returns a copy of the recorded events in chronological recording
// order (oldest surviving event first). Nil tracers return nil.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.filled {
		out := make([]Event, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dropped reports how many events the ring has overwritten (0 on nil).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Tracks lists the distinct (proc, track) pairs of the given events in
// first-appearance order — the row inventory of an export.
func Tracks(events []Event) []string {
	seen := map[string]bool{}
	var out []string
	for _, ev := range events {
		key := ev.Proc + "/" + ev.Track
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

// String renders an event for debugging.
func (e Event) String() string {
	return fmt.Sprintf("%s/%s %s.%s [%.6f,%.6f)", e.Proc, e.Track, e.Cat, e.Name, e.Start, e.End)
}
