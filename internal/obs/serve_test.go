package obs

import (
	"math"
	"testing"
)

func TestLatencyBucketsAscending(t *testing.T) {
	if _, err := newHistogram(LatencyBuckets); err != nil {
		t.Fatal(err)
	}
	if LatencyBuckets[0] != 1e-6 || LatencyBuckets[len(LatencyBuckets)-1] != 10 {
		t.Fatalf("bucket range moved: [%g, %g]", LatencyBuckets[0], LatencyBuckets[len(LatencyBuckets)-1])
	}
}

func TestHistogramQuantile(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v", got)
	}
	h := MustHistogram(NewRegistry(), "h", "", []float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v", got)
	}
	// 100 samples in (1,2], 0 elsewhere: every quantile interpolates
	// inside the (1,2] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got != 1.5 {
		t.Fatalf("p50 of uniform bucket = %v, want 1.5", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Fatalf("p100 = %v, want bucket upper bound 2", got)
	}
	if got := h.Quantile(0); got < 1 || got > 2 {
		t.Fatalf("p0 = %v, want inside (1,2]", got)
	}

	// Mixed distribution: 90 in (0,1], 10 in (2,4]. p50 lands in the
	// first bucket, p99 in the last.
	h2 := MustHistogram(NewRegistry(), "h", "", []float64{1, 2, 4})
	for i := 0; i < 90; i++ {
		h2.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(3)
	}
	if got := h2.Quantile(0.5); got <= 0 || got > 1 {
		t.Fatalf("p50 = %v, want inside (0,1]", got)
	}
	if got := h2.Quantile(0.99); got <= 2 || got > 4 {
		t.Fatalf("p99 = %v, want inside (2,4]", got)
	}
	// Rank 50 of 100 falls 50/90 of the way through the first bucket.
	if got, want := h2.Quantile(0.5), 1.0*(50.0/90.0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("p50 interpolation = %v, want %v", got, want)
	}

	// Overflow samples report the last finite bound.
	h3 := MustHistogram(NewRegistry(), "h", "", []float64{1})
	h3.Observe(100)
	if got := h3.Quantile(0.5); got != 1 {
		t.Fatalf("overflow quantile = %v, want last bound 1", got)
	}
}

func TestServeMetrics(t *testing.T) {
	r := NewRegistry()
	now := 0.0
	m := NewServeMetrics(r).WithClock(func() float64 { now += 0.001; return now })

	start := m.RequestStart()
	m.RequestDone(start, 3, false)
	start = m.RequestStart()
	m.RequestDone(start, 1, true)

	if got := m.Requests.Value(); got != 2 {
		t.Fatalf("requests = %d", got)
	}
	if got := m.UsersScored.Value(); got != 4 {
		t.Fatalf("users scored = %d", got)
	}
	if got := m.Errors.Value(); got != 1 {
		t.Fatalf("errors = %d", got)
	}
	if got := m.RequestSeconds.Count(); got != 2 {
		t.Fatalf("latency samples = %d", got)
	}
	m.CountReload(2)
	if got := m.Reloads.Value(); got != 1 {
		t.Fatalf("reloads = %d", got)
	}
	if got := m.ModelGeneration.Value(); got != 2 {
		t.Fatalf("generation gauge = %v", got)
	}
}

func TestServeMetricsNilSafe(t *testing.T) {
	var m *ServeMetrics
	start := m.RequestStart()
	m.RequestDone(start, 5, true) // must not panic
	m.CountReload(3)
	m = m.WithClock(func() float64 { return 0 })
	if m != nil {
		t.Fatal("WithClock materialised a nil bundle")
	}

	// Clock-less bundle counts but does not time.
	r := NewRegistry()
	m2 := NewServeMetrics(r)
	m2.RequestDone(m2.RequestStart(), 1, false)
	if got := m2.Requests.Value(); got != 1 {
		t.Fatalf("requests = %d", got)
	}
	if got := m2.RequestSeconds.Count(); got != 0 {
		t.Fatalf("clock-less bundle recorded %d latency samples", got)
	}
}
