package obs

import "math"

// Serving-side instruments. The training layers report through RunMetrics;
// the hccmf-serve daemon and hccmf-loadgen report through ServeMetrics —
// request counters, a latency histogram fine-grained enough for p50/p99
// readouts, and reload accounting. Like every obs bundle, all methods are
// nil-receiver safe so uninstrumented services pay nothing.

// LatencyBuckets is the default bound set for request-latency histograms:
// log-spaced from 1µs to 10s. DurationBuckets starts at 10µs, which is too
// coarse for in-memory top-N scoring; serving latencies need resolution in
// the single-microsecond range.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation inside the owning bucket, the
// standard Prometheus-style histogram_quantile estimate. Samples in the
// +Inf overflow bucket are attributed to the last finite bound. Returns 0
// on a nil or empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= target {
			if i >= len(h.bounds) {
				// Overflow bucket: the last finite bound is the best
				// statement the histogram can make.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (target - float64(cum)) / float64(c)
			return lo + (hi-lo)*math.Min(math.Max(frac, 0), 1)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// ServeMetrics is the standard instrument set of a serving process.
type ServeMetrics struct {
	// Requests counts top-N requests; UsersScored counts the users they
	// covered (a batch request scores many); Errors counts failed requests.
	Requests    *Counter
	UsersScored *Counter
	Errors      *Counter
	// RequestSeconds distributes per-request latency (LatencyBuckets).
	RequestSeconds *Histogram
	// Reloads counts model reloads; ModelGeneration is the current model
	// generation (1 = the model loaded at startup).
	Reloads         *Counter
	ModelGeneration *Gauge

	// clock times requests (nil disables timing).
	clock func() float64
}

// NewServeMetrics registers the serving instruments on r.
func NewServeMetrics(r *Registry) *ServeMetrics {
	return &ServeMetrics{
		Requests:        r.Counter("serve/requests_total", "top-N requests handled"),
		UsersScored:     r.Counter("serve/users_scored_total", "users scored across all requests"),
		Errors:          r.Counter("serve/errors_total", "requests that failed"),
		RequestSeconds:  MustHistogram(r, "serve/request_seconds", "per-request latency", LatencyBuckets),
		Reloads:         r.Counter("serve/reloads_total", "model reloads applied"),
		ModelGeneration: r.Gauge("serve/model_generation", "current model generation (1 = startup model)"),
	}
}

// WithClock sets the clock request timing uses and returns m (nil passes
// through).
func (m *ServeMetrics) WithClock(clock func() float64) *ServeMetrics {
	if m != nil {
		m.clock = clock
	}
	return m
}

// RequestStart reads the serve clock (0 when timing is disabled).
func (m *ServeMetrics) RequestStart() float64 {
	if m == nil || m.clock == nil {
		return 0
	}
	return m.clock()
}

// RequestDone records one finished request: the users it scored, whether
// it failed, and (when the clock is enabled) its latency.
func (m *ServeMetrics) RequestDone(start float64, users int, failed bool) {
	if m == nil {
		return
	}
	m.Requests.Inc()
	m.UsersScored.Add(int64(users))
	if failed {
		m.Errors.Inc()
	}
	if m.clock != nil {
		m.RequestSeconds.Observe(m.clock() - start)
	}
}

// CountReload records one applied model reload and the new generation.
func (m *ServeMetrics) CountReload(generation int64) {
	if m == nil {
		return
	}
	m.Reloads.Inc()
	m.ModelGeneration.Set(float64(generation))
}
