// Package obs is HCC-MF's observability layer: a typed metrics registry
// (counters, gauges, fixed-bucket histograms), a structured span tracer,
// and exporters (human report, versioned JSON, Chrome trace_event). It is
// the runtime lens on the quantities the paper's evaluation tables report —
// updates/s, per-phase time, utilization — while a run is in flight.
//
// Design constraints, in order:
//
//   - Zero dependencies: stdlib only, like the rest of the module.
//   - Allocation-conscious hot path: metric updates are single atomic
//     operations (histograms add one bounded bucket scan), and span
//     recording writes into a preallocated ring buffer, so instrumented
//     steady-state training epochs stay 0 allocs/op (enforced by the
//     AllocsPerRun guards in internal/mf).
//   - Snapshot-on-read: collection never blocks writers; exporters take a
//     point-in-time copy under the registry lock while the atomic cells
//     keep absorbing updates.
//   - Clock injection: obs owns the wall clock (WallClock). Simulated-
//     platform packages (ps, comm — see the simtime analyzer) never read
//     time directly; they record against whatever clock the Tracer was
//     built with, so the determinism invariant of DESIGN.md §8 holds.
//
// All metric and span methods are nil-receiver safe: uninstrumented runs
// pass nil bundles and the call sites stay unconditional.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64, updated with one atomic add.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver or negative n
// (counters are monotone; deltas come from instrumented code, not users).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 cell holding the latest value of some level quantity
// (simulated seconds, utilization, busy fraction).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reports the last stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Bounds are inclusive upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
// Observe is lock-free: one bounded scan to find the bucket, one atomic
// bucket increment, one atomic count increment and a CAS loop for the sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// newHistogram validates bounds (the Registry is the only constructor).
func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bucket bound")
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	for i, b := range own {
		if math.IsNaN(b) {
			return nil, fmt.Errorf("obs: histogram bound %d is NaN", i)
		}
		if i > 0 && own[i-1] >= b {
			return nil, fmt.Errorf("obs: histogram bounds not ascending at %d (%v >= %v)", i, own[i-1], b)
		}
	}
	return &Histogram{bounds: own, counts: make([]atomic.Int64, len(own)+1)}, nil
}

// Observe records one sample. NaN samples are dropped (they would poison
// the sum); +Inf lands in the overflow bucket. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the running total of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean reports Sum/Count (0 when empty).
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// DurationBuckets is the default bound set for second-valued histograms:
// roughly logarithmic from 10µs to 5 minutes, wide enough for both kernel
// epochs and full-run evaluation passes.
var DurationBuckets = []float64{
	1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// metric is one registered instrument.
type metric struct {
	name, help string
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
}

func (m *metric) kind() string {
	switch {
	case m.counter != nil:
		return "counter"
	case m.gauge != nil:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry is a name-keyed set of instruments. Registration takes the
// lock; the returned handles are lock-free. Registering a name twice
// returns the existing instrument (so layers can share counters), but a
// kind mismatch panics: two subsystems fighting over one name with
// different types is a wiring bug, never runtime input.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	ordered []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func (r *Registry) lookup(name, help, kind string) *metric {
	m, ok := r.byName[name]
	if !ok {
		m = &metric{name: name, help: help}
		r.byName[name] = m
		r.ordered = append(r.ordered, m)
		return m
	}
	if m.kind() != kind {
		// lint:invariant re-registering a metric name as a different kind is instrumentation wiring broken at build time, never data-dependent.
		panic(fmt.Sprintf("obs: metric %q already registered as %s, requested %s", name, m.kind(), kind))
	}
	return m
}

// Counter registers (or retrieves) the named counter. On a nil Registry
// it returns a nil *Counter, itself a no-op — an uninstrumented run needs
// no branches at the call sites.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name, help, "counter")
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge registers (or retrieves) the named gauge. On a nil Registry it
// returns a nil *Gauge, itself a no-op.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name, help, "gauge")
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// Histogram registers (or retrieves) the named histogram with the given
// ascending bucket bounds (DurationBuckets is the usual choice). A second
// registration ignores bounds and returns the existing histogram. On a
// nil Registry it returns a nil *Histogram, itself a no-op.
func (r *Registry) Histogram(name, help string, bounds []float64) (*Histogram, error) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name, help, "histogram")
	if m.hist == nil {
		h, err := newHistogram(bounds)
		if err != nil {
			return nil, err
		}
		m.hist = h
	}
	return m.hist, nil
}

// MustHistogram is Histogram for static bound sets known good at compile
// time (DurationBuckets and friends).
func MustHistogram(r *Registry, name, help string, bounds []float64) *Histogram {
	h, err := r.Histogram(name, help, bounds)
	if err != nil {
		// lint:invariant bounds passed here are package-level constants already validated by tests; failure is a build-time bug.
		panic(err)
	}
	return h
}

// Bucket is one histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound; +Inf for the
	// overflow bucket (marshalled as the string "+Inf", see export.go).
	UpperBound float64 `json:"le"`
	// Count is the number of samples in this bucket (not cumulative).
	Count int64 `json:"count"`
}

// MetricSnapshot is one instrument's point-in-time state.
type MetricSnapshot struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Help string `json:"help,omitempty"`
	// Value carries counter and gauge readings.
	Value float64 `json:"value,omitempty"`
	// Count/Sum/Buckets carry histogram readings.
	Count   int64    `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns every instrument's current state, sorted by name. The
// copy is taken under the registry lock but reads the atomic cells without
// stopping writers, so a snapshot is a consistent *per-metric* view.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := make([]*metric, len(r.ordered))
	copy(metrics, r.ordered)
	r.mu.Unlock()

	out := make([]MetricSnapshot, 0, len(metrics))
	for _, m := range metrics {
		s := MetricSnapshot{Name: m.name, Kind: m.kind(), Help: m.help}
		switch {
		case m.counter != nil:
			s.Value = float64(m.counter.Value())
		case m.gauge != nil:
			s.Value = m.gauge.Value()
		case m.hist != nil:
			s.Count = m.hist.Count()
			s.Sum = m.hist.Sum()
			s.Buckets = make([]Bucket, len(m.hist.counts))
			for i := range m.hist.counts {
				ub := math.Inf(1)
				if i < len(m.hist.bounds) {
					ub = m.hist.bounds[i]
				}
				s.Buckets[i] = Bucket{UpperBound: ub, Count: m.hist.counts[i].Load()}
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Format renders the snapshot as a human-readable report, one instrument
// per line (histograms add count/mean and non-empty buckets).
func (r *Registry) Format() string {
	var b strings.Builder
	for _, s := range r.Snapshot() {
		switch s.Kind {
		case "counter":
			fmt.Fprintf(&b, "%-44s %14.0f\n", s.Name, s.Value)
		case "gauge":
			fmt.Fprintf(&b, "%-44s %14.6g\n", s.Name, s.Value)
		case "histogram":
			mean := 0.0
			if s.Count > 0 {
				mean = s.Sum / float64(s.Count)
			}
			fmt.Fprintf(&b, "%-44s count %-8d sum %-12.6g mean %.6g\n", s.Name, s.Count, s.Sum, mean)
			for _, bk := range s.Buckets {
				if bk.Count == 0 {
					continue
				}
				fmt.Fprintf(&b, "  %-42s le %-10.4g %d\n", "", bk.UpperBound, bk.Count)
			}
		}
	}
	return b.String()
}
