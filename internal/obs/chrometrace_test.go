package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hccmf/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is a fixed mixed-domain event set: real-execution spans and
// instants plus a simulated-timeline span.
func goldenEvents() []Event {
	return []Event{
		{Proc: ProcReal, Track: "gpu0", Cat: "ps", Name: "pull", Start: 0, End: 0.001, ArgName: "bytes", Arg: 4096},
		{Proc: ProcReal, Track: "gpu0", Cat: "ps", Name: "compute", Start: 0.001, End: 0.005},
		{Proc: ProcReal, Track: "server", Cat: "ps", Name: "sync", Start: 0.005, End: 0.006, ArgName: "epoch", Arg: 0},
		{Proc: ProcReal, Track: "server", Cat: "ps", Name: "evict", Start: 0.0065, End: 0.0065, ArgName: "epoch", Arg: 1},
		{Proc: ProcSim, Track: "cpu0", Cat: "simengine", Name: "computing", Start: 0, End: 2.5},
	}
}

// TestChromeTraceGolden pins the exported document byte for byte: the
// format is consumed by external tools (Perfetto), so accidental drift is
// a break, not a refactor.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrometrace.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden (run with -update to accept):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestChromeTraceWellFormed checks the structural invariants Perfetto
// relies on: valid JSON, microsecond timestamps, metadata naming every
// pid/tid, X events with durations and i events without.
func TestChromeTraceWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.OtherData["schema"] != TraceSchema {
		t.Fatalf("schema = %q, want %q", doc.OtherData["schema"], TraceSchema)
	}
	named := map[[2]int]bool{}
	var xs, is, ms int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			ms++
			named[[2]int{ev.PID, ev.TID}] = true
		case "X":
			xs++
			if ev.Dur == nil || *ev.Dur <= 0 {
				t.Fatalf("X event %q without positive dur", ev.Name)
			}
		case "i":
			is++
			if ev.Dur != nil {
				t.Fatalf("instant %q carries dur", ev.Name)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if xs != 4 || is != 1 {
		t.Fatalf("got %d X and %d i events, want 4 and 1", xs, is)
	}
	if ms != 5 { // 2 process_name + 3 thread_name
		t.Fatalf("got %d metadata events, want 5", ms)
	}
	// The pull span is 1ms = 1000µs.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "pull" {
			if math.Abs(*ev.Dur-1000) > 1e-9 {
				t.Fatalf("pull dur = %vµs, want 1000µs", *ev.Dur)
			}
			if ev.Args["bytes"] != 4096.0 {
				t.Fatalf("pull args = %v", ev.Args)
			}
		}
	}
}

func TestTimelineEvents(t *testing.T) {
	tl := trace.NewTimeline()
	tl.Add("w0", trace.Pull, 0, 1)
	tl.Add("w0", trace.Compute, 1, 3)
	evs := TimelineEvents(tl)
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	for _, ev := range evs {
		if ev.Proc != ProcSim || ev.Cat != "simengine" || ev.Track != "w0" {
			t.Fatalf("event = %+v", ev)
		}
	}
	if TimelineEvents(nil) != nil {
		t.Fatal("nil timeline must yield nil events")
	}
}

func TestTimelineBands(t *testing.T) {
	tl := trace.NewTimeline()
	// w0: pull [0,1), compute [1,3), push [3,4) → busy 4 of 5.
	tl.Add("w0", trace.Pull, 0, 1)
	tl.Add("w0", trace.Compute, 1, 3)
	tl.Add("w0", trace.Push, 3, 4)
	// w1: two overlapping compute spans (async streams) [0,2) and [1,3):
	// union is 3, not 4 — overlap must not double-count.
	tl.Add("w1", trace.Compute, 0, 2)
	tl.Add("w1", trace.Compute, 1, 3)
	bands := TimelineBands(tl, 5)
	if len(bands) != 2 {
		t.Fatalf("bands = %d, want 2", len(bands))
	}
	w0, w1 := bands[0], bands[1]
	if w0.Worker != "w0" || w0.Busy != 4 || w0.Compute != 2 || w0.Idle != 1 || w0.Utilization != 0.8 {
		t.Fatalf("w0 band = %+v", w0)
	}
	if w1.Worker != "w1" || w1.Busy != 3 || w1.Compute != 3 || w1.Idle != 2 || w1.Utilization != 0.6 {
		t.Fatalf("w1 band = %+v", w1)
	}
	// end ≤ 0 falls back to the timeline's own end (3 for w1's last span →
	// overall 4 from w0's push).
	bands = TimelineBands(tl, 0)
	if bands[0].Utilization != 1 {
		t.Fatalf("w0 utilization over timeline end = %v, want 1", bands[0].Utilization)
	}
	if TimelineBands(nil, 1) != nil || TimelineBands(trace.NewTimeline(), 0) != nil {
		t.Fatal("empty inputs must yield nil bands")
	}
}

func TestUnionLength(t *testing.T) {
	cases := []struct {
		ivs  [][2]float64
		want float64
	}{
		{nil, 0},
		{[][2]float64{{0, 1}}, 1},
		{[][2]float64{{0, 1}, {2, 3}}, 2},
		{[][2]float64{{0, 2}, {1, 3}}, 3},
		{[][2]float64{{1, 3}, {0, 2}, {2, 2.5}}, 3},
		{[][2]float64{{0, 5}, {1, 2}}, 5},
	}
	for i, c := range cases {
		if got := unionLength(c.ivs); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("case %d: unionLength = %v, want %v", i, got, c.want)
		}
	}
}
