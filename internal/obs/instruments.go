package obs

import "hccmf/internal/trace"

// Observer bundles the instruments one training/simulation run reports
// through: a registry for metrics, a tracer for events, and the pre-built
// RunMetrics the runtime layers update. A nil *Observer (and every bundle
// reached through it) disables instrumentation with no call-site branching
// — all methods are nil-safe.
type Observer struct {
	Registry *Registry
	Tracer   *Tracer
	Run      *RunMetrics
}

// NewObserver builds a registry, a tracer of the given capacity reading
// clock (nil → WallClock), and the standard run metric set.
func NewObserver(traceCapacity int, clock func() float64) *Observer {
	if clock == nil {
		clock = WallClock()
	}
	reg := NewRegistry()
	return &Observer{
		Registry: reg,
		Tracer:   NewTracer(traceCapacity, clock),
		Run:      NewRunMetrics(reg).WithClock(clock),
	}
}

// Span opens a tracer span; inert on a nil observer.
func (o *Observer) Span(proc, track, cat, name string) Span {
	if o == nil {
		return Span{}
	}
	return o.Tracer.Span(proc, track, cat, name)
}

// Instant records a zero-duration marker; no-op on a nil observer.
func (o *Observer) Instant(proc, track, cat, name, argName string, arg float64) {
	if o == nil {
		return
	}
	o.Tracer.Instant(proc, track, cat, name, argName, arg)
}

// RunMetrics reaches the run bundle (nil on a nil observer — every method
// of the nil bundle is itself a no-op).
func (o *Observer) RunMetrics() *RunMetrics {
	if o == nil {
		return nil
	}
	return o.Run
}

// RunMetrics is the standard instrument set of one end-to-end run, shared
// across the layers: mf engines bump the update/epoch counters, ps feeds
// the phase and epoch histograms, the comm observer feeds the transfer
// counters, and core sets the sim gauges.
type RunMetrics struct {
	// Updates counts applied rating updates; Epochs counts engine epochs.
	Updates *Counter
	Epochs  *Counter
	// EpochSeconds and EvalSeconds distribute per-epoch training and RMSE
	// evaluation wall time.
	EpochSeconds *Histogram
	EvalSeconds  *Histogram
	// EngineEpochSeconds distributes individual engine Epoch calls (one
	// worker's local pass), as opposed to the cluster-wide EpochSeconds.
	EngineEpochSeconds *Histogram
	// Phase distributes per-worker phase wall time, indexed by trace.Phase
	// (pull, compute, push, sync).
	Phase [4]*Histogram
	// Transfer accounting (mirrors comm.TransferStats, plus attempt and
	// failure counts the stats struct does not carry). BusBytes stays the
	// logical payload volume on every transport; the wire-level counters
	// (frames, handshakes, octets) move only when a transfer actually
	// crossed a socket.
	BusBytes       *Counter
	Copies         *Counter
	Retries        *Counter
	Transfers      *Counter
	TransferErrors *Counter
	WireBytes      *Counter
	Frames         *Counter
	Handshakes     *Counter
	// NetSeconds distributes wire operation latency; it is fed only for
	// transfers that produced frames, so in-process runs leave it empty.
	NetSeconds *Histogram
	// Evictions counts workers removed by fault tolerance.
	Evictions *Counter
	// Rebalances counts adaptive epoch-boundary re-shards, and
	// ScheduleGain holds the rebalancer's latest predicted relative
	// makespan gain (the value the hysteresis threshold gates on).
	Rebalances   *Counter
	ScheduleGain *Gauge

	// clock times engine epochs (nil disables engine-side timing).
	clock func() float64
}

// NewRunMetrics registers the standard run instruments on r.
func NewRunMetrics(r *Registry) *RunMetrics {
	m := &RunMetrics{
		Updates:            r.Counter("train/updates_total", "rating updates applied by all engines"),
		Epochs:             r.Counter("train/engine_epochs_total", "engine Epoch calls completed"),
		EpochSeconds:       MustHistogram(r, "train/epoch_seconds", "cluster epoch wall time", DurationBuckets),
		EvalSeconds:        MustHistogram(r, "train/eval_seconds", "held-out RMSE evaluation wall time", DurationBuckets),
		EngineEpochSeconds: MustHistogram(r, "train/engine_epoch_seconds", "single-engine local epoch wall time", DurationBuckets),
		BusBytes:           r.Counter("comm/bus_bytes_total", "payload bytes crossing the worker-server channel"),
		Copies:             r.Counter("comm/copies_total", "end-to-end memory copies of transfer payloads"),
		Retries:            r.Counter("comm/retries_total", "failed transfer attempts absorbed by retry"),
		Transfers:          r.Counter("comm/transfers_total", "pull/push operations completed"),
		TransferErrors:     r.Counter("comm/transfer_errors_total", "pull/push operations that failed after retries"),
		WireBytes:          r.Counter("comm/wire_bytes_total", "octets actually crossing the network, headers included"),
		Frames:             r.Counter("comm/frames_total", "hccmf-wire frames sent and received"),
		Handshakes:         r.Counter("comm/handshakes_total", "connections dialled and handshaken"),
		NetSeconds:         MustHistogram(r, "comm/net_seconds", "wire operation latency", DurationBuckets),
		Evictions:          r.Counter("ps/evictions_total", "workers evicted by fault tolerance"),
		Rebalances:         r.Counter("schedule/rebalances_total", "adaptive epoch-boundary re-shards performed"),
		ScheduleGain:       r.Gauge("schedule/predicted_gain", "latest predicted relative makespan gain of a re-solve"),
	}
	for p := trace.Pull; p <= trace.Sync; p++ {
		m.Phase[p] = MustHistogram(r, "ps/phase_seconds/"+p.String(),
			"per-worker "+p.String()+" phase wall time", DurationBuckets)
	}
	return m
}

// WithClock sets the clock engine-side timing uses and returns m (nil
// passes through).
func (m *RunMetrics) WithClock(clock func() float64) *RunMetrics {
	if m != nil {
		m.clock = clock
	}
	return m
}

// ObserveEpoch feeds one cluster-wide epoch duration; no-op on nil.
func (m *RunMetrics) ObserveEpoch(seconds float64) {
	if m == nil {
		return
	}
	m.EpochSeconds.Observe(seconds)
}

// ObserveEval feeds one RMSE evaluation duration; no-op on nil.
func (m *RunMetrics) ObserveEval(seconds float64) {
	if m == nil {
		return
	}
	m.EvalSeconds.Observe(seconds)
}

// CountEviction accounts one evicted worker; no-op on nil.
func (m *RunMetrics) CountEviction() {
	if m == nil {
		return
	}
	m.Evictions.Inc()
}

// CountRebalance accounts one adaptive re-shard; no-op on nil.
func (m *RunMetrics) CountRebalance() {
	if m == nil {
		return
	}
	m.Rebalances.Inc()
}

// SetScheduleGain records the rebalancer's latest predicted gain; no-op
// on nil.
func (m *RunMetrics) SetScheduleGain(gain float64) {
	if m == nil {
		return
	}
	m.ScheduleGain.Set(gain)
}

// ObservePhase feeds one phase duration; no-op on nil or out-of-range p.
func (m *RunMetrics) ObservePhase(p trace.Phase, seconds float64) {
	if m == nil || p < trace.Pull || p > trace.Sync {
		return
	}
	m.Phase[p].Observe(seconds)
}

// TransferSample is one observed logical transfer, retries already folded
// in by the observation point (outside comm.Retrying) so nothing is
// double-counted. It mirrors comm.TransferStats field by field without
// importing it — obs stays dependency-free below trace.
type TransferSample struct {
	// BusBytes is the logical payload volume (params × encoding width).
	BusBytes int64
	// WireBytes is the octets that actually crossed a socket (0 in-process).
	WireBytes  int64
	Copies     int
	Retries    int
	Frames     int
	Handshakes int
	// Seconds is the observed operation latency (0 when the observer has no
	// clock).
	Seconds float64
	// Failed marks a transfer that erred even after retries.
	Failed bool
}

// CountTransfer accounts one completed pull/push/sync. The wire histogram
// moves only when the transfer produced frames, so shared-memory runs keep
// comm/net_seconds empty. No-op on nil.
func (m *RunMetrics) CountTransfer(s TransferSample) {
	if m == nil {
		return
	}
	m.BusBytes.Add(s.BusBytes)
	m.Copies.Add(int64(s.Copies))
	m.Retries.Add(int64(s.Retries))
	m.Transfers.Inc()
	if s.Failed {
		m.TransferErrors.Inc()
	}
	if s.Frames > 0 {
		m.WireBytes.Add(s.WireBytes)
		m.Frames.Add(int64(s.Frames))
		m.Handshakes.Add(int64(s.Handshakes))
		m.NetSeconds.Observe(s.Seconds)
	}
}

// Clock exposes the observer clock (seconds); nil when timing is disabled.
func (m *RunMetrics) Clock() func() float64 {
	if m == nil {
		return nil
	}
	return m.clock
}

// EngineMetrics is the slice of RunMetrics the mf engines see: update and
// epoch counters and the engine epoch histogram. The engines call
// EpochStart/EpochDone around each local pass; with a nil bundle both are
// free function calls that touch nothing.
type EngineMetrics struct {
	updates *Counter
	epochs  *Counter
	seconds *Histogram
	clock   func() float64
}

// EngineMetrics derives the engine bundle (nil in → nil out).
func (m *RunMetrics) EngineMetrics() *EngineMetrics {
	if m == nil {
		return nil
	}
	return &EngineMetrics{updates: m.Updates, epochs: m.Epochs, seconds: m.EngineEpochSeconds, clock: m.clock}
}

// EpochStart reads the engine clock (0 when timing is disabled).
func (m *EngineMetrics) EpochStart() float64 {
	if m == nil || m.clock == nil {
		return 0
	}
	return m.clock()
}

// EpochDone records one finished engine epoch: the updates applied and,
// when the clock is enabled, the epoch duration.
func (m *EngineMetrics) EpochDone(start float64, updates int64) {
	if m == nil {
		return
	}
	m.updates.Add(updates)
	m.epochs.Inc()
	if m.clock != nil {
		m.seconds.Observe(m.clock() - start)
	}
}
