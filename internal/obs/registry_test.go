package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a/total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	c.Add(-5) // negative deltas are dropped: counters are monotone
	if got := c.Value(); got != 42 {
		t.Fatalf("counter after negative add = %d, want 42", got)
	}
	if same := r.Counter("a/total", "help"); same != c {
		t.Fatal("re-registration did not return the existing counter")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	g.Set(3)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	var m *RunMetrics
	m.CountTransfer(TransferSample{BusBytes: 10, Copies: 1, Retries: 1, Frames: 2, Failed: true})
	m.ObservePhase(0, 1)
	if m.Clock() != nil {
		t.Fatal("nil metrics must yield a nil clock")
	}
	var em *EngineMetrics
	em.EpochDone(em.EpochStart(), 10)
	var o *Observer
	o.Span(ProcReal, "w", "c", "n").End()
	o.Instant(ProcReal, "w", "c", "n", "", 0)
	if o.RunMetrics() != nil {
		t.Fatal("nil observer must yield nil run metrics")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h, err := r.Histogram("h", "", []float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Bounds are inclusive upper bounds: a sample exactly on a bound lands
	// in that bound's bucket, not the next.
	for _, v := range []float64{0, 1} { // → bucket le=1
		h.Observe(v)
	}
	h.Observe(1.5)         // → le=2
	h.Observe(2)           // → le=2
	h.Observe(4)           // → le=4
	h.Observe(4.0001)      // → +Inf
	h.Observe(math.Inf(1)) // → +Inf
	h.Observe(math.NaN())  // dropped
	h.Observe(-math.Pi)    // negative values land in the first bucket
	if got := h.Count(); got != 8 {
		t.Fatalf("count = %d, want 8 (NaN must be dropped)", got)
	}
	wantBuckets := []int64{3, 2, 1, 2}
	for i, want := range wantBuckets {
		if got := h.counts[i].Load(); got != want {
			t.Fatalf("bucket %d = %d, want %d", i, got, want)
		}
	}
	wantSum := 0 + 1 + 1.5 + 2 + 4 + 4.0001 - math.Pi
	if got := h.Sum(); !math.IsInf(got, 1) {
		t.Fatalf("sum = %v, want +Inf (an observed +Inf flows into the sum); finite part would be %v", got, wantSum)
	}
}

func TestHistogramFiniteSumAndMean(t *testing.T) {
	r := NewRegistry()
	h := MustHistogram(r, "h", "", []float64{10})
	for _, v := range []float64{1, 2, 3} {
		h.Observe(v)
	}
	if got := h.Sum(); math.Abs(got-6) > 1e-12 {
		t.Fatalf("sum = %v, want 6", got)
	}
	if got := h.Mean(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("mean = %v, want 2", got)
	}
}

func TestHistogramBadBounds(t *testing.T) {
	r := NewRegistry()
	for i, bounds := range [][]float64{
		nil,
		{},
		{1, 1},
		{2, 1},
		{1, math.NaN()},
	} {
		if _, err := r.Histogram("bad", "", bounds); err == nil {
			t.Fatalf("case %d: bounds %v accepted, want error", i, bounds)
		}
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering counter name as gauge must panic (wiring bug)")
		}
	}()
	r.Gauge("x", "")
}

func TestSnapshotSortedAndIsolated(t *testing.T) {
	r := NewRegistry()
	r.Gauge("z", "").Set(1)
	r.Counter("a", "").Add(2)
	MustHistogram(r, "m", "", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Name != "a" || snap[1].Name != "m" || snap[2].Name != "z" {
		t.Fatalf("snapshot order = %+v, want a, m, z", snap)
	}
	if snap[0].Kind != "counter" || snap[0].Value != 2 {
		t.Fatalf("counter snapshot = %+v", snap[0])
	}
	if snap[1].Kind != "histogram" || snap[1].Count != 1 || len(snap[1].Buckets) != 2 {
		t.Fatalf("histogram snapshot = %+v", snap[1])
	}
	// Mutations after the snapshot must not show in the copy.
	r.Counter("a", "").Add(100)
	if snap[0].Value != 2 {
		t.Fatal("snapshot aliased live counter state")
	}
}

// TestConcurrentHammering drives every instrument kind from many
// goroutines; run under -race (verify.sh does) this doubles as the data-
// race proof for the atomic hot path, and the totals prove no update was
// lost.
func TestConcurrentHammering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := MustHistogram(r, "h", "", []float64{0.25, 0.5, 0.75})
	const (
		goroutines = 16
		perG       = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Set(float64(w))
				h.Observe(float64(i%4) * 0.25)
				if i%64 == 0 {
					r.Snapshot() // snapshot-on-read must not block or race writers
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	var bucketSum int64
	for i := range h.counts {
		bucketSum += h.counts[i].Load()
	}
	if bucketSum != goroutines*perG {
		t.Fatalf("bucket total = %d, want %d", bucketSum, goroutines*perG)
	}
	wantSum := float64(goroutines) * (0 + 0.25 + 0.5 + 0.75) * perG / 4
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v (CAS accumulation lost updates)", got, wantSum)
	}
}
