package fp16

import (
	"fmt"

	"hccmf/internal/parallel"
)

// EncodeSlice compresses src into dst (as raw binary16 bits). dst must have
// len(src) elements. It is the single-threaded codec; the paper's CPU codec
// uses AVX lanes plus threads, which EncodeSliceParallel models with
// goroutines.
func EncodeSlice(dst []Bits16, src []float32) {
	if len(dst) != len(src) {
		// lint:invariant paired-slice length mismatch is a caller bug on the hot encode path; the contract mirrors the builtin copy.
		panic(fmt.Sprintf("fp16: EncodeSlice length mismatch dst=%d src=%d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = FromFloat32(v)
	}
}

// DecodeSlice expands src into dst. dst must have len(src) elements.
func DecodeSlice(dst []float32, src []Bits16) {
	if len(dst) != len(src) {
		// lint:invariant see EncodeSlice: length contract mirrors the builtin copy.
		panic(fmt.Sprintf("fp16: DecodeSlice length mismatch dst=%d src=%d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = v.ToFloat32()
	}
}

// minParallelChunk keeps tiny conversions on one goroutine; below this size
// the spawn overhead dominates any speedup.
const minParallelChunk = 1 << 14

// EncodeSliceParallel converts src→dst using up to workers goroutines,
// mirroring the multi-threaded AVX conversion in the paper's COMM module.
func EncodeSliceParallel(dst []Bits16, src []float32, workers int) {
	if len(dst) != len(src) {
		// lint:invariant see EncodeSlice: length contract mirrors the builtin copy.
		panic(fmt.Sprintf("fp16: EncodeSliceParallel length mismatch dst=%d src=%d", len(dst), len(src)))
	}
	parallelChunks(len(src), workers, func(lo, hi int) {
		EncodeSlice(dst[lo:hi], src[lo:hi])
	})
}

// DecodeSliceParallel converts src→dst using up to workers goroutines.
func DecodeSliceParallel(dst []float32, src []Bits16, workers int) {
	if len(dst) != len(src) {
		// lint:invariant see EncodeSlice: length contract mirrors the builtin copy.
		panic(fmt.Sprintf("fp16: DecodeSliceParallel length mismatch dst=%d src=%d", len(dst), len(src)))
	}
	parallelChunks(len(src), workers, func(lo, hi int) {
		DecodeSlice(dst[lo:hi], src[lo:hi])
	})
}

// parallelChunks fans fn out over the shared helper, which clamps the
// worker count to ceil(n/minParallelChunk): a conversion barely above the
// inline threshold no longer spawns `workers` goroutines for sub-threshold
// slivers of work.
func parallelChunks(n, workers int, fn func(lo, hi int)) {
	parallel.Chunks(n, minParallelChunk, workers, fn)
}

// RoundTripError returns the absolute error introduced by one FP32→FP16→FP32
// round trip of v. The partition planner uses it in sanity checks that the
// half-Q strategy keeps errors below the rating step size.
func RoundTripError(v float32) float32 {
	r := FromFloat32(v).ToFloat32()
	d := v - r
	if d < 0 {
		return -d
	}
	return d
}
