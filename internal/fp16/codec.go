package fp16

import (
	"fmt"
	"sync"
)

// EncodeSlice compresses src into dst (as raw binary16 bits). dst must have
// len(src) elements. It is the single-threaded codec; the paper's CPU codec
// uses AVX lanes plus threads, which EncodeSliceParallel models with
// goroutines.
func EncodeSlice(dst []Bits16, src []float32) {
	if len(dst) != len(src) {
		// lint:invariant paired-slice length mismatch is a caller bug on the hot encode path; the contract mirrors the builtin copy.
		panic(fmt.Sprintf("fp16: EncodeSlice length mismatch dst=%d src=%d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = FromFloat32(v)
	}
}

// DecodeSlice expands src into dst. dst must have len(src) elements.
func DecodeSlice(dst []float32, src []Bits16) {
	if len(dst) != len(src) {
		// lint:invariant see EncodeSlice: length contract mirrors the builtin copy.
		panic(fmt.Sprintf("fp16: DecodeSlice length mismatch dst=%d src=%d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = v.ToFloat32()
	}
}

// minParallelChunk keeps tiny conversions on one goroutine; below this size
// the spawn overhead dominates any speedup.
const minParallelChunk = 1 << 14

// EncodeSliceParallel converts src→dst using up to workers goroutines,
// mirroring the multi-threaded AVX conversion in the paper's COMM module.
func EncodeSliceParallel(dst []Bits16, src []float32, workers int) {
	if len(dst) != len(src) {
		// lint:invariant see EncodeSlice: length contract mirrors the builtin copy.
		panic(fmt.Sprintf("fp16: EncodeSliceParallel length mismatch dst=%d src=%d", len(dst), len(src)))
	}
	parallelChunks(len(src), workers, func(lo, hi int) {
		EncodeSlice(dst[lo:hi], src[lo:hi])
	})
}

// DecodeSliceParallel converts src→dst using up to workers goroutines.
func DecodeSliceParallel(dst []float32, src []Bits16, workers int) {
	if len(dst) != len(src) {
		// lint:invariant see EncodeSlice: length contract mirrors the builtin copy.
		panic(fmt.Sprintf("fp16: DecodeSliceParallel length mismatch dst=%d src=%d", len(dst), len(src)))
	}
	parallelChunks(len(src), workers, func(lo, hi int) {
		DecodeSlice(dst[lo:hi], src[lo:hi])
	})
}

func parallelChunks(n, workers int, fn func(lo, hi int)) {
	if workers < 1 {
		workers = 1
	}
	if n < minParallelChunk || workers == 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// RoundTripError returns the absolute error introduced by one FP32→FP16→FP32
// round trip of v. The partition planner uses it in sanity checks that the
// half-Q strategy keeps errors below the rating step size.
func RoundTripError(v float32) float32 {
	r := FromFloat32(v).ToFloat32()
	d := v - r
	if d < 0 {
		return -d
	}
	return d
}
