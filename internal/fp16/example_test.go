package fp16_test

import (
	"fmt"

	"hccmf/internal/fp16"
)

// Compressing a feature vector for the wire (communication Strategy 2):
// rating-scale values survive the round trip within the scale's step.
func ExampleFromFloat32() {
	ratings := []float32{1, 2.5, 3.5, 5}
	for _, r := range ratings {
		h := fp16.FromFloat32(r)
		fmt.Printf("%g → %#04x → %g\n", r, uint16(h), h.ToFloat32())
	}
	// Output:
	// 1 → 0x3c00 → 1
	// 2.5 → 0x4100 → 2.5
	// 3.5 → 0x4300 → 3.5
	// 5 → 0x4500 → 5
}

func ExampleEncodeSlice() {
	src := []float32{0.5, -1, 65504}
	wire := make([]fp16.Bits16, len(src))
	fp16.EncodeSlice(wire, src)
	back := make([]float32, len(src))
	fp16.DecodeSlice(back, wire)
	fmt.Println(back)
	// Output:
	// [0.5 -1 65504]
}
