package fp16

import (
	"math"
	"testing"
)

// FuzzConversionInvariants checks, for arbitrary float32 inputs, the IEEE
// invariants the codec must preserve: classification is stable, round
// trips are idempotent, and the result is the nearest representable half
// (|err| ≤ half the local ulp) for in-range finite values.
func FuzzConversionInvariants(f *testing.F) {
	f.Add(uint32(0))
	f.Add(math.Float32bits(1))
	f.Add(math.Float32bits(65504))
	f.Add(math.Float32bits(65520))
	f.Add(math.Float32bits(5.9604645e-08))
	f.Add(math.Float32bits(float32(math.Inf(1))))
	f.Add(uint32(0x7fc00000)) // NaN
	f.Add(uint32(0x80000001)) // -min subnormal
	f.Fuzz(func(t *testing.T, bits uint32) {
		v := math.Float32frombits(bits)
		h := FromFloat32(v)
		back := h.ToFloat32()

		switch {
		case math.IsNaN(float64(v)):
			if !h.IsNaN() || !math.IsNaN(float64(back)) {
				t.Fatalf("NaN lost: %#08x → %#04x → %v", bits, h, back)
			}
			return
		case math.IsInf(float64(v), 0):
			if !h.IsInf() || back != v {
				t.Fatalf("Inf lost: %v → %#04x → %v", v, h, back)
			}
			return
		}
		// Idempotence: converting the rounded value changes nothing.
		if h2 := FromFloat32(back); h2 != h {
			t.Fatalf("not idempotent: %v → %#04x, %v → %#04x", v, h, back, h2)
		}
		// Sign is preserved (including signed zero).
		if math.Signbit(float64(v)) != math.Signbit(float64(back)) && back == back {
			// Exception: values that overflow to ±Inf keep their sign too,
			// and underflow keeps the sign by construction — so any
			// mismatch is a bug.
			t.Fatalf("sign flipped: %v → %v", v, back)
		}
		// For in-range values the absolute error is bounded by half the
		// fp16 ulp at that magnitude.
		av := math.Abs(float64(v))
		if av <= 65504 && av >= 6.103515625e-05 {
			exp := math.Floor(math.Log2(av))
			ulp := math.Ldexp(1, int(exp)-10)
			if err := math.Abs(float64(back) - float64(v)); err > ulp/2*(1+1e-9) {
				t.Fatalf("error %v exceeds half-ulp %v for %v", err, ulp/2, v)
			}
		}
	})
}
