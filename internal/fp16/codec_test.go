package fp16

import (
	"testing"
)

func TestEncodeDecodeSlice(t *testing.T) {
	src := []float32{0, 1, -1, 0.5, 3.5, 100, -65504}
	enc := make([]Bits16, len(src))
	EncodeSlice(enc, src)
	dec := make([]float32, len(src))
	DecodeSlice(dec, enc)
	for i := range src {
		if dec[i] != src[i] {
			t.Fatalf("index %d: %v → %v", i, src[i], dec[i])
		}
	}
}

func TestEncodeSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	EncodeSlice(make([]Bits16, 2), make([]float32, 3))
}

func TestDecodeSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	DecodeSlice(make([]float32, 1), make([]Bits16, 2))
}

func TestParallelMatchesSerial(t *testing.T) {
	const n = 100000
	src := make([]float32, n)
	for i := range src {
		src[i] = float32(i%1000)/13.0 - 30
	}
	serial := make([]Bits16, n)
	EncodeSlice(serial, src)

	for _, workers := range []int{0, 1, 2, 4, 7, 64} {
		par := make([]Bits16, n)
		EncodeSliceParallel(par, src, workers)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d index %d: %#04x != %#04x", workers, i, par[i], serial[i])
			}
		}
		dec := make([]float32, n)
		DecodeSliceParallel(dec, par, workers)
		for i := range dec {
			if dec[i] != serial[i].ToFloat32() {
				t.Fatalf("decode workers=%d index %d mismatch", workers, i)
			}
		}
	}
}

func TestParallelSmallInput(t *testing.T) {
	src := []float32{1, 2, 3}
	dst := make([]Bits16, 3)
	EncodeSliceParallel(dst, src, 8)
	if dst[0] != 0x3c00 || dst[1] != 0x4000 {
		t.Fatalf("small parallel encode wrong: %v", dst)
	}
}

func TestParallelLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("parallel length mismatch did not panic")
		}
	}()
	EncodeSliceParallel(make([]Bits16, 1), make([]float32, 2), 4)
}

func TestRoundTripErrorRatingScale(t *testing.T) {
	// 5-point scale with 0.5 steps: all representable values must survive
	// well under the 0.25 half-step discrimination threshold.
	for v := float32(0); v <= 5; v += 0.5 {
		if e := RoundTripError(v); e > 0.01 {
			t.Fatalf("rating %v loses %v through fp16", v, e)
		}
	}
	// 100-point scale with 1-point steps.
	for v := float32(0); v <= 100; v += 1 {
		if e := RoundTripError(v); e > 0.5 {
			t.Fatalf("rating %v loses %v through fp16", v, e)
		}
	}
}

func BenchmarkEncodeSlice(b *testing.B) {
	const n = 1 << 16
	src := make([]float32, n)
	for i := range src {
		src[i] = float32(i) * 0.001
	}
	dst := make([]Bits16, n)
	b.SetBytes(n * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeSlice(dst, src)
	}
}

func BenchmarkDecodeSlice(b *testing.B) {
	const n = 1 << 16
	src := make([]Bits16, n)
	for i := range src {
		src[i] = Bits16(i)
		if src[i].IsNaN() {
			src[i] = 0
		}
	}
	dst := make([]float32, n)
	b.SetBytes(n * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodeSlice(dst, src)
	}
}
