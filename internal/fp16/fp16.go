// Package fp16 implements IEEE 754-2008 binary16 ("half precision")
// conversion. HCC-MF's "Transmitting FP16 Data" communication strategy
// (paper Section 3.4, Strategy 2) compresses feature matrices to half
// precision before they cross the worker↔server bus, halving traffic
// without hurting the convergence of bounded-scale rating data.
//
// The scalar conversions implement round-to-nearest-even, gradual underflow
// to subnormals, NaN payload preservation (quieting), and overflow to
// infinity — the same semantics as hardware F16C/cvt instructions, so the
// simulated transport behaves like the paper's AVX-accelerated codec.
package fp16

import "math"

// Bits16 is a raw IEEE 754 binary16 value: 1 sign, 5 exponent, 10 mantissa
// bits.
type Bits16 uint16

const (
	signMask16 = 0x8000
	expMask16  = 0x7c00
	manMask16  = 0x03ff

	expBias16 = 15
	expBias32 = 127
)

// FromFloat32 converts an FP32 value to FP16 with round-to-nearest-even.
func FromFloat32(f float32) Bits16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & signMask16
	exp := int32(b>>23) & 0xff
	man := b & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if man == 0 {
			return Bits16(sign | expMask16)
		}
		// Quiet the NaN and keep the top payload bits; ensure a non-zero
		// mantissa so the result stays a NaN.
		payload := uint16(man>>13) & manMask16
		return Bits16(sign | expMask16 | 0x0200 | payload)
	case exp == 0 && man == 0: // signed zero
		return Bits16(sign)
	}

	// Unbiased exponent of the FP32 value. Subnormal FP32 inputs are far
	// below the FP16 subnormal range, so they flush to signed zero via the
	// shift path below.
	e := exp - expBias32 + expBias16
	switch {
	case e >= 0x1f: // overflow → infinity
		return Bits16(sign | expMask16)
	case e >= 1: // normal range
		// 23-bit mantissa → 10-bit with round-to-nearest-even.
		m := man >> 13
		round := man & 0x1fff
		if round > 0x1000 || (round == 0x1000 && m&1 == 1) {
			m++
			if m == 0x400 { // mantissa overflowed into exponent
				m = 0
				e++
				if e >= 0x1f {
					return Bits16(sign | expMask16)
				}
			}
		}
		return Bits16(sign | uint16(e)<<10 | uint16(m))
	case e >= -10: // subnormal range: shift the implicit bit in
		m := man | 0x800000
		shift := uint32(14 - e)
		sub := m >> shift
		rem := m & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && sub&1 == 1) {
			sub++ // may carry into the smallest normal, which is fine
		}
		return Bits16(sign | uint16(sub))
	default: // underflow → signed zero
		return Bits16(sign)
	}
}

// ToFloat32 converts an FP16 value to FP32 exactly (every binary16 value is
// representable in binary32).
func (h Bits16) ToFloat32() float32 {
	sign := uint32(h&signMask16) << 16
	exp := uint32(h>>10) & 0x1f
	man := uint32(h & manMask16)

	switch {
	case exp == 0x1f: // Inf or NaN
		if man == 0 {
			return math.Float32frombits(sign | 0x7f800000)
		}
		return math.Float32frombits(sign | 0x7f800000 | 0x400000 | man<<13)
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: normalise the mantissa.
		e := int32(0)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= manMask16
		exp32 := uint32(e + 1 - expBias16 + expBias32)
		return math.Float32frombits(sign | exp32<<23 | man<<13)
	default:
		exp32 := exp - expBias16 + expBias32
		return math.Float32frombits(sign | exp32<<23 | man<<13)
	}
}

// IsNaN reports whether h encodes a NaN.
func (h Bits16) IsNaN() bool {
	return h&expMask16 == expMask16 && h&manMask16 != 0
}

// IsInf reports whether h encodes ±infinity.
func (h Bits16) IsInf() bool {
	return h&expMask16 == expMask16 && h&manMask16 == 0
}

// MaxValue is the largest finite FP16 value (65504).
const MaxValue = 65504.0
