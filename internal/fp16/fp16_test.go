package fp16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits Bits16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},                // max finite
		{-65504, 0xfbff},               //
		{5.9604644775390625e-08, 0x01}, // smallest subnormal
		{6.103515625e-05, 0x0400},      // smallest normal
		{0.333251953125, 0x3555},       // nearest half to 1/3
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.bits {
			t.Errorf("FromFloat32(%v) = %#04x, want %#04x", c.f, got, c.bits)
		}
		if back := c.bits.ToFloat32(); back != c.f {
			t.Errorf("ToFloat32(%#04x) = %v, want %v", c.bits, back, c.f)
		}
	}
}

func TestInfinityHandling(t *testing.T) {
	posInf := float32(math.Inf(1))
	negInf := float32(math.Inf(-1))
	if got := FromFloat32(posInf); got != 0x7c00 {
		t.Fatalf("FromFloat32(+Inf) = %#04x", got)
	}
	if got := FromFloat32(negInf); got != 0xfc00 {
		t.Fatalf("FromFloat32(-Inf) = %#04x", got)
	}
	if !Bits16(0x7c00).IsInf() || !Bits16(0xfc00).IsInf() {
		t.Fatal("IsInf false for infinity encodings")
	}
	if v := Bits16(0x7c00).ToFloat32(); !math.IsInf(float64(v), 1) {
		t.Fatalf("ToFloat32(+Inf bits) = %v", v)
	}
	if v := Bits16(0xfc00).ToFloat32(); !math.IsInf(float64(v), -1) {
		t.Fatalf("ToFloat32(-Inf bits) = %v", v)
	}
}

func TestOverflowToInfinity(t *testing.T) {
	if got := FromFloat32(65520); got != 0x7c00 {
		// 65520 rounds to 65536 which overflows binary16.
		t.Fatalf("FromFloat32(65520) = %#04x, want +Inf", got)
	}
	if got := FromFloat32(1e10); got != 0x7c00 {
		t.Fatalf("FromFloat32(1e10) = %#04x, want +Inf", got)
	}
	if got := FromFloat32(-1e10); got != 0xfc00 {
		t.Fatalf("FromFloat32(-1e10) = %#04x, want -Inf", got)
	}
	// 65519.996… rounds down to 65504, staying finite.
	if got := FromFloat32(65519); got != 0x7bff {
		t.Fatalf("FromFloat32(65519) = %#04x, want 0x7bff", got)
	}
}

func TestNaNHandling(t *testing.T) {
	nan := float32(math.NaN())
	h := FromFloat32(nan)
	if !h.IsNaN() {
		t.Fatalf("FromFloat32(NaN) = %#04x, not NaN", h)
	}
	if v := h.ToFloat32(); !math.IsNaN(float64(v)) {
		t.Fatalf("NaN did not survive round trip: %v", v)
	}
	if h.IsInf() {
		t.Fatal("NaN classified as Inf")
	}
}

func TestUnderflowToZero(t *testing.T) {
	if got := FromFloat32(1e-10); got != 0 {
		t.Fatalf("FromFloat32(1e-10) = %#04x, want +0", got)
	}
	if got := FromFloat32(-1e-10); got != 0x8000 {
		t.Fatalf("FromFloat32(-1e-10) = %#04x, want -0", got)
	}
	// FP32 subnormals are below FP16 range entirely.
	tiny := math.Float32frombits(1)
	if got := FromFloat32(tiny); got != 0 {
		t.Fatalf("FromFloat32(min subnormal fp32) = %#04x, want 0", got)
	}
}

func TestSubnormalRange(t *testing.T) {
	// 2^-24 is the smallest positive subnormal.
	v := float32(math.Ldexp(1, -24))
	if got := FromFloat32(v); got != 0x0001 {
		t.Fatalf("FromFloat32(2^-24) = %#04x, want 0x0001", got)
	}
	// Half of it rounds to even → zero.
	if got := FromFloat32(v / 2); got != 0x0000 {
		t.Fatalf("FromFloat32(2^-25) = %#04x, want 0x0000 (ties-to-even)", got)
	}
	// 1.5× the smallest subnormal rounds to 2 ulps.
	if got := FromFloat32(v * 1.5); got != 0x0002 {
		t.Fatalf("FromFloat32(1.5*2^-24) = %#04x, want 0x0002", got)
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly between 1.0 and the next half (1+2^-10);
	// ties-to-even keeps the even mantissa (1.0).
	v := float32(1 + math.Ldexp(1, -11))
	if got := FromFloat32(v); got != 0x3c00 {
		t.Fatalf("tie at 1+2^-11 = %#04x, want 0x3c00", got)
	}
	// (1+2^-10) + 2^-11 ties up to 1+2^-9 (even mantissa 2).
	v = float32(1 + math.Ldexp(1, -10) + math.Ldexp(1, -11))
	if got := FromFloat32(v); got != 0x3c02 {
		t.Fatalf("tie at 1+3*2^-11 = %#04x, want 0x3c02", got)
	}
	// Just above the tie rounds up.
	v = float32(1 + math.Ldexp(1, -11) + math.Ldexp(1, -20))
	if got := FromFloat32(v); got != 0x3c01 {
		t.Fatalf("above tie = %#04x, want 0x3c01", got)
	}
}

func TestMantissaCarryIntoExponent(t *testing.T) {
	// 2047/1024 ≈ 1.9990 is the largest half below 2; halfway above it
	// carries into the exponent → exactly 2.
	v := float32(2 - math.Ldexp(1, -11)) // 1.99951171875
	if got := FromFloat32(v); got != 0x4000 {
		t.Fatalf("carry case = %#04x, want 0x4000 (2.0)", got)
	}
}

func TestRoundTripAllFiniteBits(t *testing.T) {
	// Exhaustive: every finite binary16 value must round-trip exactly
	// through float32.
	for b := 0; b < 1<<16; b++ {
		h := Bits16(b)
		if h.IsNaN() {
			continue
		}
		f := h.ToFloat32()
		if back := FromFloat32(f); back != h {
			t.Fatalf("bits %#04x → %v → %#04x", b, f, back)
		}
	}
}

func TestIsNaNIsInfClassification(t *testing.T) {
	if Bits16(0x3c00).IsNaN() || Bits16(0x3c00).IsInf() {
		t.Fatal("1.0 misclassified")
	}
	if !Bits16(0x7e00).IsNaN() {
		t.Fatal("canonical qNaN not detected")
	}
	if Bits16(0x7e00).IsInf() {
		t.Fatal("qNaN classified as Inf")
	}
}

// Property: round-tripped values never move by more than half an FP16 ulp
// for in-range rating-scale values.
func TestRoundTripErrorBoundProperty(t *testing.T) {
	f := func(raw uint32) bool {
		// Map to the rating range [0, 100] used by 100-point scales.
		v := float32(raw%10001) / 100.0
		err := RoundTripError(v)
		// FP16 has 11 bits of significand: relative error ≤ 2^-11.
		bound := float32(math.Ldexp(1, -11))*v + 1e-7
		return err <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: conversion is monotone on finite positive values.
func TestMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		fa := Bits16(a & 0x7bff).ToFloat32() // mask to finite positives
		fb := Bits16(b & 0x7bff).ToFloat32()
		if fa > fb {
			fa, fb = fb, fa
		}
		return FromFloat32(fa).ToFloat32() <= FromFloat32(fb).ToFloat32()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
