package partition

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// simMeasure builds a MeasureFunc for workers whose throughput is
// rate[i]·(1+bias[i]·x) — the mild load-dependent bandwidth effect
// (Table 2) that DP0 cannot see and DP1 compensates for.
func simMeasure(nnz float64, rates, bias []float64) MeasureFunc {
	return func(x []float64) []float64 {
		t := make([]float64, len(x))
		for i := range x {
			eff := rates[i] * (1 + bias[i]*x[i])
			t[i] = x[i] * nnz / eff
		}
		return t
	}
}

func TestDP0Proportional(t *testing.T) {
	x, err := DP0([]float64{100, 300})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-0.25) > 1e-12 || math.Abs(x[1]-0.75) > 1e-12 {
		t.Fatalf("DP0 = %v", x)
	}
}

func TestDP0EqualComputeTimes(t *testing.T) {
	rates := []float64{348790567, 918333483, 1052866849}
	x, err := DP0(rates)
	if err != nil {
		t.Fatal(err)
	}
	const nnz = 99072112.0
	t0 := x[0] * nnz / rates[0]
	for i := 1; i < len(x); i++ {
		ti := x[i] * nnz / rates[i]
		if math.Abs(ti-t0) > 1e-9 {
			t.Fatalf("DP0 compute times unequal: %v vs %v", t0, ti)
		}
	}
}

func TestDP0Errors(t *testing.T) {
	if _, err := DP0(nil); err == nil {
		t.Fatal("empty rates accepted")
	}
	if _, err := DP0([]float64{1, 0}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := DP0([]float64{1, -2}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if DP0Strategy.String() != "DP0" || DP1Strategy.String() != "DP1" || DP2Strategy.String() != "DP2" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(7).String() != "Strategy(7)" {
		t.Fatal("unknown strategy string wrong")
	}
}

func TestDP1BalancesHeterogeneousBias(t *testing.T) {
	// CPU slows down with load (negative bias), GPUs speed up slightly —
	// the Table 2 effect. DP0 leaves a gap; DP1 must close it to <10%.
	rates := []float64{3.5e8, 9.2e8, 1.05e9}
	bias := []float64{-0.5, 0.15, 0.15}
	isCPU := []bool{true, false, false}
	const nnz = 99072112.0
	measure := simMeasure(nnz, rates, bias)

	x0, err := DP0(rates)
	if err != nil {
		t.Fatal(err)
	}
	t0 := measure(x0)
	cpu0, gpu0 := groupAverages(t0, isCPU)
	if relGap(cpu0, gpu0) < 0.05 {
		t.Skipf("bias too weak to create imbalance: %v", relGap(cpu0, gpu0))
	}

	x1, t1, err := DP1(x0, t0, isCPU, measure, DP1Options{})
	if err != nil {
		t.Fatal(err)
	}
	cpu1, gpu1 := groupAverages(t1, isCPU)
	if g := relGap(cpu1, gpu1); g > 0.1 {
		t.Fatalf("DP1 left gap %v > 0.1 (times %v)", g, t1)
	}
	var sum float64
	for _, v := range x1 {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("DP1 partition sums to %v", sum)
	}
	// The slowed-down CPU must have shed load relative to DP0.
	if x1[0] >= x0[0] {
		t.Fatalf("overloaded CPU kept share %v ≥ DP0 share %v", x1[0], x0[0])
	}
}

func TestDP1ReducesMakespan(t *testing.T) {
	rates := []float64{2e8, 9e8}
	bias := []float64{-0.6, 0.1}
	isCPU := []bool{true, false}
	const nnz = 1e8
	measure := simMeasure(nnz, rates, bias)
	x0, _ := DP0(rates)
	t0 := measure(x0)
	x1, t1, err := DP1(x0, t0, isCPU, measure, DP1Options{})
	if err != nil {
		t.Fatal(err)
	}
	if maxOf(t1) >= maxOf(t0) {
		t.Fatalf("DP1 makespan %v did not improve on DP0 %v (x=%v)", maxOf(t1), maxOf(t0), x1)
	}
}

func TestDP1HomogeneousNoop(t *testing.T) {
	x0 := []float64{0.5, 0.5}
	t0 := []float64{1, 1}
	x, tt, err := DP1(x0, t0, []bool{false, false}, nil, DP1Options{})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 0.5 || x[1] != 0.5 || tt[0] != 1 {
		t.Fatalf("homogeneous DP1 changed partition: %v %v", x, tt)
	}
}

func TestDP1AlreadyBalancedStops(t *testing.T) {
	calls := 0
	measure := func(x []float64) []float64 {
		calls++
		return []float64{1, 1}
	}
	x, _, err := DP1([]float64{0.5, 0.5}, []float64{1, 1.05}, []bool{true, false}, measure, DP1Options{})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("balanced input still re-measured %d times", calls)
	}
	if x[0] != 0.5 {
		t.Fatalf("balanced input changed: %v", x)
	}
}

func TestDP1Validation(t *testing.T) {
	if _, _, err := DP1(nil, nil, nil, nil, DP1Options{}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, _, err := DP1([]float64{1}, []float64{1, 2}, []bool{true}, nil, DP1Options{}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	bad := func(x []float64) []float64 { return []float64{1} }
	if _, _, err := DP1([]float64{0.5, 0.5}, []float64{9, 1}, []bool{true, false}, bad, DP1Options{}); err == nil {
		t.Fatal("measure returning wrong length accepted")
	}
	if _, _, err := DP1([]float64{0.5, 0.5}, []float64{0, 1}, []bool{true, false},
		func(x []float64) []float64 { return x }, DP1Options{}); err == nil {
		t.Fatal("non-positive measured time accepted")
	}
}

func TestDP2StaggersFinishTimes(t *testing.T) {
	// Balanced: all compute times 10s; syncTime 1s; 4 workers.
	x1 := []float64{0.25, 0.25, 0.25, 0.25}
	t1 := []float64{10, 10, 10, 10}
	const sync = 1.0
	x2, err := DP2(x1, t1, sync)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range x2 {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("DP2 sums to %v", sum)
	}
	// New compute times are proportional to new shares (same rates), so
	// consecutive gaps should be ≈ syncTime (up to renormalisation).
	nt := make([]float64, 4)
	for i := range nt {
		nt[i] = t1[i] * x2[i] / x1[i]
	}
	for i := 1; i < 4; i++ {
		gap := nt[i] - nt[i-1]
		if math.Abs(gap-sync) > 0.05*sync {
			t.Fatalf("gap %d = %v, want ≈ %v (times %v)", i, gap, sync, nt)
		}
	}
}

func TestDP2ZeroSyncIsIdentity(t *testing.T) {
	x1 := []float64{0.3, 0.7}
	x2, err := DP2(x1, []float64{5, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if math.Abs(x2[i]-x1[i]) > 1e-12 {
			t.Fatalf("DP2 with zero sync changed partition: %v", x2)
		}
	}
}

func TestDP2NeverStarvesWorker(t *testing.T) {
	// Sync interval much larger than compute: the floor must hold.
	x1 := []float64{0.5, 0.5}
	t1 := []float64{1, 1}
	x2, err := DP2(x1, t1, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x2 {
		if v <= 0 {
			t.Fatalf("worker %d starved: %v", i, x2)
		}
	}
}

func TestDP2Validation(t *testing.T) {
	if _, err := DP2(nil, nil, 1); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := DP2([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Fatal("mismatch accepted")
	}
	if _, err := DP2([]float64{1}, []float64{1}, -1); err == nil {
		t.Fatal("negative sync accepted")
	}
	if _, err := DP2([]float64{1}, []float64{0}, 1); err == nil {
		t.Fatal("zero time accepted")
	}
}

// The DP2 offset assignment is explicitly capped: the greedy path handles
// platforms past the exhaustive bound, and past the hard cap DP2 reports
// a descriptive error instead of silently degrading.
func TestDP2WorkerCountCap(t *testing.T) {
	build := func(p int) ([]float64, []float64) {
		x := make([]float64, p)
		ts := make([]float64, p)
		for i := range x {
			x[i] = 1 / float64(p)
			ts[i] = 1 + 0.01*float64(i)
		}
		return x, ts
	}
	// Just past the exhaustive bound: the greedy path must still produce a
	// valid distribution.
	x1, t1 := build(ExhaustiveAssignmentMax + 1)
	x2, err := DP2(x1, t1, 0.01)
	if err != nil {
		t.Fatalf("greedy path failed at p=%d: %v", ExhaustiveAssignmentMax+1, err)
	}
	var sum float64
	for i, v := range x2 {
		if v <= 0 {
			t.Fatalf("worker %d starved by greedy assignment: %v", i, x2)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("greedy shares sum %v", sum)
	}
	// At the cap: still fine.
	x1, t1 = build(MaxAssignmentWorkers)
	if _, err := DP2(x1, t1, 0.01); err != nil {
		t.Fatalf("p = cap rejected: %v", err)
	}
	// Past the cap: a descriptive error naming the bound.
	x1, t1 = build(MaxAssignmentWorkers + 1)
	_, err = DP2(x1, t1, 0.01)
	if err == nil {
		t.Fatalf("p = %d accepted past the cap", MaxAssignmentWorkers+1)
	}
	if !strings.Contains(err.Error(), "cap") || !strings.Contains(err.Error(), "129") {
		t.Fatalf("cap error not descriptive: %v", err)
	}
}

// Property: DP0 always returns a valid distribution for positive rates.
func TestDP0DistributionProperty(t *testing.T) {
	f := func(a, b, c uint16) bool {
		rates := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		x, err := DP0(rates)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range x {
			if v <= 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
