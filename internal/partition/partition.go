// Package partition implements HCC-MF's data partition strategies
// (paper Section 3.3):
//
//   - DP0 — the basic strategy from Theorem 1/Eq. 6: shares proportional
//     to each worker's standalone throughput, equalising compute time
//     under the constant-bandwidth assumption.
//   - DP1 — "data partition with heterogeneous load balance": Algorithm 1's
//     compensation loop, which re-measures per-worker compute times and
//     shifts load between the CPU group and the GPU group until their
//     average times agree within 10%.
//   - DP2 — "data partition with hidden synchronization": starting from a
//     balanced partition, worker finish times are staggered by one
//     synchronisation interval each, so the server folds worker i's push
//     while worker i+1 is still computing and only the last sync is
//     exposed.
package partition

import (
	"errors"
	"fmt"
)

// Strategy names the partition strategies for reports and planners.
type Strategy int

const (
	// DP0Strategy is the basic Eq. 6 proportional split.
	DP0Strategy Strategy = iota
	// DP1Strategy is DP0 plus Algorithm 1 compensation.
	DP1Strategy
	// DP2Strategy staggers finish times to hide synchronisation.
	DP2Strategy
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case DP0Strategy:
		return "DP0"
	case DP1Strategy:
		return "DP1"
	case DP2Strategy:
		return "DP2"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// DP0 returns the basic partition of Eq. 6: x_i ∝ rate_i, which equalises
// compute time when throughput is load-independent.
func DP0(rates []float64) ([]float64, error) {
	if len(rates) == 0 {
		return nil, errors.New("partition: no workers")
	}
	var sum float64
	for i, r := range rates {
		if r <= 0 {
			return nil, fmt.Errorf("partition: rate[%d] = %v, must be positive", i, r)
		}
		sum += r
	}
	x := make([]float64, len(rates))
	for i, r := range rates {
		x[i] = r / sum
	}
	return x, nil
}

// MeasureFunc runs (or simulates) one training epoch under partition x and
// returns each worker's measured compute time. DP1 calls it to drive
// Algorithm 1's feedback loop.
type MeasureFunc func(x []float64) []float64

// DP1Options tunes the compensation loop.
type DP1Options struct {
	// Tolerance is the relative CPU/GPU average-time gap below which the
	// loop stops; the paper uses 0.1.
	Tolerance float64
	// MaxIters bounds the loop; the paper observes one iteration usually
	// suffices.
	MaxIters int
}

func (o *DP1Options) defaults() {
	if o.Tolerance <= 0 {
		o.Tolerance = 0.1
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 8
	}
}

// DP1 runs Algorithm 1: starting from partition x0 with measured compute
// times t0, it transfers load between the CPU group and the GPU group until
// their average compute times are balanced. isCPU marks the CPU workers.
// It returns the final partition and the compute times measured for it.
func DP1(x0, t0 []float64, isCPU []bool, measure MeasureFunc, opts DP1Options) ([]float64, []float64, error) {
	p := len(x0)
	if p == 0 {
		return nil, nil, errors.New("partition: no workers")
	}
	if len(t0) != p || len(isCPU) != p {
		return nil, nil, fmt.Errorf("partition: inconsistent inputs x=%d t=%d cpu=%d", p, len(t0), len(isCPU))
	}
	opts.defaults()
	for i, ti := range t0 {
		if ti <= 0 {
			return nil, nil, fmt.Errorf("partition: measured time t[%d]=%v, must be positive", i, ti)
		}
	}

	var c, g int
	for _, b := range isCPU {
		if b {
			c++
		} else {
			g++
		}
	}
	if c == 0 || g == 0 {
		// Homogeneous worker set: Algorithm 1's CPU/GPU averaging is
		// undefined; DP0's proportional split is already balanced.
		return clone(x0), clone(t0), nil
	}

	x := clone(x0)
	t := clone(t0)
	for iter := 0; iter < opts.MaxIters; iter++ {
		avgCPU, avgGPU := groupAverages(t, isCPU)
		if relGap(avgCPU, avgGPU) <= opts.Tolerance {
			break
		}
		l := -1.0
		if avgCPU > avgGPU {
			l = 1.0
		}
		dT := l * (avgCPU - avgGPU) / float64(c+g)
		for i := range x {
			if t[i] <= 0 {
				return nil, nil, fmt.Errorf("partition: measured time t[%d]=%v", i, t[i])
			}
			if isCPU[i] {
				// Lines 5–7: CPUs shed (or gain) g·ΔT of time.
				x[i] = x[i] * (t[i] - l*float64(g)*dT) / t[i]
			} else {
				// Lines 8–10: GPUs absorb (or shed) c·ΔT of time.
				x[i] = x[i] * (t[i] + l*float64(c)*dT) / t[i]
			}
			if x[i] < 0 {
				x[i] = 0
			}
		}
		if err := normalise(x); err != nil {
			return nil, nil, err
		}
		t = measure(x)
		if len(t) != p {
			return nil, nil, fmt.Errorf("partition: measure returned %d times for %d workers", len(t), p)
		}
	}
	return x, t, nil
}

// DP2 staggers a balanced partition so that consecutive workers finish one
// syncTime apart (Eq. 7): with the balanced time as the median, the i-th
// finisher targets T_med + (i − (p−1)/2)·syncTime. The earliest finishers'
// pushes are folded by the server while later workers still compute, so
// only the final worker's sync is exposed.
//
// Which worker receives which offset is a free choice in the paper; DP2
// picks the assignment that keeps Σx closest to 1, because the final
// renormalisation otherwise stretches every worker — including the longest
// one — and eats the savings. The share change of giving worker i offset o
// is o·x_i/t_i, so the assignment minimises |Σ o_perm(i)·(x_i/t_i)|
// (exhaustively for ≤8 workers, greedily beyond).
func DP2(x1, t1 []float64, syncTime float64) ([]float64, error) {
	p := len(x1)
	if p == 0 {
		return nil, errors.New("partition: no workers")
	}
	if len(t1) != p {
		return nil, fmt.Errorf("partition: %d times for %d workers", len(t1), p)
	}
	if syncTime < 0 {
		return nil, fmt.Errorf("partition: negative sync time %v", syncTime)
	}
	for i, ti := range t1 {
		if ti <= 0 {
			return nil, fmt.Errorf("partition: measured time t[%d]=%v", i, ti)
		}
	}
	mid := float64(p-1) / 2
	offsets := make([]float64, p)
	for i := range offsets {
		offsets[i] = (float64(i) - mid) * syncTime
	}
	weights := make([]float64, p) // share moved per second of offset
	for i := range weights {
		weights[i] = x1[i] / t1[i]
	}
	perm, err := bestOffsetAssignment(offsets, weights)
	if err != nil {
		return nil, err
	}

	x := make([]float64, p)
	for i := range x {
		target := t1[i] + offsets[perm[i]]
		if target < 0.1*t1[i] {
			// Never starve a worker below 10% of its balanced load: if the
			// stagger would, the sync interval is too large relative to
			// compute and DP2 is the wrong strategy anyway.
			target = 0.1 * t1[i]
		}
		x[i] = x1[i] * target / t1[i]
	}
	if err := normalise(x); err != nil {
		return nil, err
	}
	return x, nil
}

// Worker-count bounds of the offset assignment search. The exhaustive
// search enumerates p! permutations — 8! = 40320 scores is instant, 12!
// would be half a billion — so it is capped explicitly rather than by
// whatever the caller happens to pass.
const (
	// ExhaustiveAssignmentMax is the largest worker count solved by full
	// permutation search; beyond it the greedy pairing takes over.
	ExhaustiveAssignmentMax = 8
	// MaxAssignmentWorkers bounds the assignment outright. The paper's
	// platforms top out at 4 workers and the greedy path is linear-ish,
	// but a runaway caller (a worker list built from bad input) should
	// get an error, not a silent O(p log p) answer of unknowable quality.
	MaxAssignmentWorkers = 128
)

// bestOffsetAssignment returns perm such that worker i takes
// offsets[perm[i]], minimising |Σ offsets[perm[i]]·weights[i]|.
// Exhaustive for p ≤ ExhaustiveAssignmentMax, greedy up to
// MaxAssignmentWorkers, an error beyond.
func bestOffsetAssignment(offsets, weights []float64) ([]int, error) {
	p := len(offsets)
	if p > MaxAssignmentWorkers {
		return nil, fmt.Errorf(
			"partition: %d workers exceed the DP2 offset-assignment cap of %d (exhaustive search stops at %d, greedy pairing at %d); split the platform or use DP1",
			p, MaxAssignmentWorkers, ExhaustiveAssignmentMax, MaxAssignmentWorkers)
	}
	perm := make([]int, p)
	for i := range perm {
		perm[i] = i
	}
	if p > ExhaustiveAssignmentMax {
		// Greedy for large p: heaviest weights take the smallest |offset|.
		byWeight := make([]iwPair, p)
		for i, w := range weights {
			byWeight[i] = iwPair{i, w}
		}
		sortByAbsDesc(byWeight)
		byOff := make([]int, p)
		for i := range byOff {
			byOff[i] = i
		}
		sortOffsetsByAbs(byOff, offsets)
		for rank, e := range byWeight {
			perm[e.idx] = byOff[rank]
		}
		return perm, nil
	}
	best := make([]int, p)
	copy(best, perm)
	bestScore := permScore(perm, offsets, weights)
	permute(perm, 0, func(cand []int) {
		if s := permScore(cand, offsets, weights); s < bestScore {
			bestScore = s
			copy(best, cand)
		}
	})
	return best, nil
}

func permScore(perm []int, offsets, weights []float64) float64 {
	var sum float64
	for i, o := range perm {
		sum += offsets[o] * weights[i]
	}
	if sum < 0 {
		return -sum
	}
	return sum
}

func permute(a []int, k int, visit func([]int)) {
	if k == len(a) {
		visit(a)
		return
	}
	for i := k; i < len(a); i++ {
		a[k], a[i] = a[i], a[k]
		permute(a, k+1, visit)
		a[k], a[i] = a[i], a[k]
	}
}

type iwPair struct {
	idx int
	w   float64
}

func sortByAbsDesc(v []iwPair) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && abs(v[j].w) > abs(v[j-1].w); j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func sortOffsetsByAbs(idx []int, offsets []float64) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && abs(offsets[idx[j]]) < abs(offsets[idx[j-1]]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

func groupAverages(t []float64, isCPU []bool) (avgCPU, avgGPU float64) {
	var sc, sg float64
	var nc, ng int
	for i, ti := range t {
		if isCPU[i] {
			sc += ti
			nc++
		} else {
			sg += ti
			ng++
		}
	}
	if nc > 0 {
		avgCPU = sc / float64(nc)
	}
	if ng > 0 {
		avgGPU = sg / float64(ng)
	}
	return avgCPU, avgGPU
}

func relGap(a, b float64) float64 {
	min := a
	if b < min {
		min = b
	}
	if min <= 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / min
}

func normalise(x []float64) error {
	var sum float64
	for _, v := range x {
		sum += v
	}
	if sum <= 0 {
		return errors.New("partition: degenerate partition (all shares zero)")
	}
	for i := range x {
		x[i] /= sum
	}
	return nil
}
