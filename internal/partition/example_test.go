package partition_test

import (
	"fmt"

	"hccmf/internal/partition"
)

// DP0 splits data proportionally to standalone throughput (Eq. 6): a GPU
// three times faster than a CPU receives three times the rows.
func ExampleDP0() {
	shares, err := partition.DP0([]float64{300e6, 900e6})
	if err != nil {
		panic(err)
	}
	fmt.Printf("cpu %.2f, gpu %.2f\n", shares[0], shares[1])
	// Output:
	// cpu 0.25, gpu 0.75
}

// DP2 staggers balanced finish times by one synchronization interval so
// the server folds early finishers while later ones still compute.
func ExampleDP2() {
	balanced := []float64{0.5, 0.5}
	times := []float64{10, 10} // both workers take 10s
	shares, err := partition.DP2(balanced, times, 2 /* sync takes 2s */)
	if err != nil {
		panic(err)
	}
	fmt.Printf("early %.2f, late %.2f\n", shares[0], shares[1])
	// Output:
	// early 0.45, late 0.55
}
