package lint

// seededRandOK are the selectors on package math/rand that do not touch
// the package-global, implicitly seeded generator: constructors and type
// names. Everything else reached through the package identifier draws
// from (or reseeds) global state and breaks bit-reproducibility.
var seededRandOK = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"Rand":       true,
	"Source":     true,
	"Source64":   true,
	"Zipf":       true,
	"PCG":        true,
	"ChaCha8":    true,
}

// SeededRand forbids math/rand's top-level, globally seeded functions
// (rand.Intn, rand.Float64, rand.Perm, rand.Shuffle, rand.Seed, ...) in
// non-test code. Every run of this reproduction must be bit-identical
// from its seed, so randomness comes from an explicitly seeded generator
// (sparse.Rand or a *rand.Rand) threaded through config. math/rand/v2 is
// held to the same rule. Test files are exempt.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "forbid global math/rand top-level functions in non-test code; " +
		"randomness must come from an explicitly seeded generator threaded through config",
	Run: runSeededRand,
}

func runSeededRand(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		for _, path := range []string{"math/rand", "math/rand/v2"} {
			name := ImportName(f, path)
			if name == "" {
				continue
			}
			forEachPkgSelector(f, name, func(sel selRef) {
				if seededRandOK[sel.name] {
					return
				}
				pass.Reportf(f, sel.pos,
					"global %s.%s uses math/rand's implicit shared state; use an explicitly seeded *rand.Rand (or sparse.Rand) from config",
					name, sel.name)
			})
		}
	}
	return nil
}
