package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// schemaLitRe matches HCC-MF's versioned wire-schema tags:
// "hccmf-obs/v1", "hccmf-bench/kernel/v1", "hccmf-vet/v1", ...
var schemaLitRe = regexp.MustCompile(`^hccmf-[a-z0-9]+(/[a-z0-9-]+)*/v[0-9]+$`)

// SchemaConst pins every versioned schema string to a single declared
// constant. The tags name on-disk and on-wire formats that external
// tooling diffs (hccmf-benchdiff, CI artifacts); a second spelling —
// an inline literal in an exporter, or a duplicate constant in another
// package — is how two writers drift apart while both "pass" their own
// tests. Policed module-wide through the cross-package index:
//
//   - a string literal matching hccmf-*/vN outside a top-level const
//     declaration is a finding, naming the constant to use;
//   - the same schema string declared as a constant in two places is a
//     finding on every declaration after the canonical (first by import
//     path, then name).
//
// Test files are exempt: golden tests pin the literal bytes on purpose,
// so a schema change breaks a test instead of silently re-tagging data.
var SchemaConst = &Analyzer{
	Name: "schemaconst",
	Doc: "versioned schema strings (hccmf-*/vN) must be referenced via a single declared " +
		"constant; inline literals and duplicate declarations are findings",
	Run: runSchemaConst,
}

// schemaDecl is one constant declaration whose value is a schema string.
type schemaDecl struct {
	pkg  *Package
	name string
	pos  token.Position
}

// schemaIndex is the module-wide map from schema string to its
// declarations, plus the set of literal positions that are declarations
// (so the per-package walk can tell a const's own literal from an inline
// use).
type schemaIndex struct {
	decls    map[string][]schemaDecl
	declPos  map[token.Position]bool
	declDup  map[token.Position]bool // non-canonical declarations
	constFor map[string]string       // schema -> "pkg.ConstName" label of the canonical decl
}

// schemaIndexOf builds (once per Module) the cross-package constant index.
func schemaIndexOf(mod *Module) *schemaIndex {
	if mod.schemaIdx != nil {
		return mod.schemaIdx
	}
	idx := &schemaIndex{
		decls:    map[string][]schemaDecl{},
		declPos:  map[token.Position]bool{},
		declDup:  map[token.Position]bool{},
		constFor: map[string]string{},
	}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			if pkg.IsTestFile(f) {
				continue
			}
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, v := range vs.Values {
						lit, ok := v.(*ast.BasicLit)
						if !ok || lit.Kind != token.STRING || i >= len(vs.Names) {
							continue
						}
						val := strings.Trim(lit.Value, "`\"")
						if !schemaLitRe.MatchString(val) {
							continue
						}
						pos := pkg.Fset.Position(lit.Pos())
						idx.decls[val] = append(idx.decls[val], schemaDecl{pkg: pkg, name: vs.Names[i].Name, pos: pos})
						idx.declPos[pos] = true
					}
				}
			}
		}
	}
	for val, decls := range idx.decls {
		sort.Slice(decls, func(i, j int) bool {
			if decls[i].pkg.ImportPath != decls[j].pkg.ImportPath {
				return decls[i].pkg.ImportPath < decls[j].pkg.ImportPath
			}
			return decls[i].name < decls[j].name
		})
		idx.constFor[val] = decls[0].pkg.Name + "." + decls[0].name
		for _, d := range decls[1:] {
			idx.declDup[d.pos] = true
		}
	}
	mod.schemaIdx = idx
	return idx
}

func runSchemaConst(pass *Pass) error {
	idx := schemaIndexOf(pass.Module)
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			val := strings.Trim(lit.Value, "`\"")
			if !schemaLitRe.MatchString(val) {
				return true
			}
			pos := pass.Pkg.Fset.Position(lit.Pos())
			switch {
			case idx.declDup[pos]:
				pass.ReportRangef(f, lit,
					"schema %q is already declared as %s; keep a single constant per schema",
					val, idx.constFor[val])
			case idx.declPos[pos]:
				// The canonical declaration itself.
			case idx.constFor[val] != "":
				pass.ReportRangef(f, lit,
					"inline schema literal %q; reference the declared constant %s",
					val, idx.constFor[val])
			default:
				pass.ReportRangef(f, lit,
					"inline schema literal %q; declare it once as a named constant and reference that",
					val)
			}
			return true
		})
	}
	return nil
}
