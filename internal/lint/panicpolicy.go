package lint

import (
	"go/ast"
	"unicode"
	"unicode/utf8"
)

// PanicPolicy flags panic(...) inside exported functions and methods of
// library packages (anything but package main). The project precedent is
// PR 1's MaterializeScale fix: user-reachable misuse gets a descriptive
// error, not a crash. A panic survives review only as a documented
// internal invariant:
//
//	// lint:invariant <one line on why reaching this is a programmer bug>
//
// placed in the declaration's doc comment or on/above the panic itself.
// Must* helpers (MustGenerate, ...) are exempt by stdlib convention —
// their name is the documentation that they trade errors for panics.
// Test files are exempt.
var PanicPolicy = &Analyzer{
	Name: "panicpolicy",
	Doc: "flag panic(...) in exported API of library packages unless justified " +
		"with a lint:invariant comment; user-reachable failures must return errors",
	Run: runPanicPolicy,
}

func runPanicPolicy(pass *Pass) error {
	if pass.Pkg.Name == "main" {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !isExportedName(fd.Name.Name) || isMustName(fd.Name.Name) {
				continue
			}
			if pass.HasInvariantComment(f, fd.Pos(), fd.Doc) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					if !pass.HasInvariantComment(f, call.Pos(), nil) {
						pass.Reportf(f, call.Pos(),
							"panic in exported %s.%s; return a descriptive error, or justify with // lint:invariant",
							pass.Pkg.Name, fd.Name.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}

func isExportedName(name string) bool {
	r, _ := utf8.DecodeRuneInString(name)
	return unicode.IsUpper(r)
}

// isMustName reports the stdlib Must* convention: "Must" followed by an
// upper-case rune ("MustGenerate"), or exactly "Must".
func isMustName(name string) bool {
	if name == "Must" {
		return true
	}
	if len(name) <= 4 || name[:4] != "Must" {
		return false
	}
	r, _ := utf8.DecodeRuneInString(name[4:])
	return unicode.IsUpper(r)
}
