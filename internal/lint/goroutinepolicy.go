package lint

import (
	"go/ast"
	"go/token"
)

// GoroutinePolicy requires every `go` statement in library code to be
// provably joined, so no code path can leak a goroutine per call — the
// goroutine-per-user shape the serving layer's batch path was rebuilt to
// eliminate. Accepted join shapes, checked syntactically:
//
//   - the spawning function joins: its body contains a .Wait() call
//     (WaitGroup discipline), a channel receive, or a select statement
//     that collects the goroutine's completion;
//   - the goroutine is a persistent pool worker: `go worker(ch)` on a
//     named function (same package or `pkg.Worker` across packages via
//     the module index) whose body drains a channel-typed parameter —
//     the pool shape of internal/mf, internal/recommend and friends,
//     joined collectively by closing the channel.
//
// Anything else — in particular a bare `go func(){...}()` whose
// completion nobody observes — is a finding. A deliberate fire-and-forget
// goroutine carries a `lint:allow goroutinepolicy <reason>` annotation.
// Package main and test files are exempt (daemons own their lifetime;
// tests have the race detector and t.Cleanup).
var GoroutinePolicy = &Analyzer{
	Name: "goroutinepolicy",
	Doc: "require goroutines in library code to be joined (WaitGroup/channel collection) " +
		"or to be pool workers draining a channel; no leaked goroutine-per-call paths",
	Run: runGoroutinePolicy,
}

func runGoroutinePolicy(pass *Pass) error {
	if pass.Pkg.Name == "main" {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var joined *bool // lazily computed per enclosing function
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if joined == nil {
					j := hasJoinEvidence(fd.Body)
					joined = &j
				}
				if *joined || poolWorkerTarget(pass, f, g) {
					return true
				}
				pass.ReportRangef(f, g,
					"goroutine in %s is not provably joined (no WaitGroup.Wait, channel receive or pool-worker drain in scope); "+
						"join it or justify with lint:allow goroutinepolicy",
					fd.Name.Name)
				return true
			})
		}
	}
	return nil
}

// hasJoinEvidence reports whether the function body observes goroutine
// completion: a .Wait() call, a channel receive, or a select statement.
func hasJoinEvidence(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		}
		return !found
	})
	return found
}

// poolWorkerTarget reports whether the go statement launches a named
// function (resolved same-package or cross-package through the module
// index) that drains a channel-typed parameter — the persistent
// worker-pool shape, joined by closing the channel.
func poolWorkerTarget(pass *Pass, f *ast.File, g *ast.GoStmt) bool {
	var ref *FuncRef
	switch fun := g.Call.Fun.(type) {
	case *ast.Ident:
		if obj := fun.Obj; obj != nil && obj.Kind != ast.Fun && obj.Kind != ast.Bad {
			return false
		}
		ref = pass.Pkg.Func(fun.Name)
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		if p := pass.Module.ImportedPackage(f, id.Name); p != nil {
			ref = p.Func(fun.Sel.Name)
		}
	}
	if ref == nil {
		return false
	}
	return drainsChannelParam(ref.Decl)
}

// drainsChannelParam reports whether the function ranges over (or
// receives from) one of its own channel-typed parameters.
func drainsChannelParam(fd *ast.FuncDecl) bool {
	chans := map[string]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if _, ok := field.Type.(*ast.ChanType); !ok {
				continue
			}
			for _, name := range field.Names {
				chans[name.Name] = true
			}
		}
	}
	if len(chans) == 0 {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if id, ok := n.X.(*ast.Ident); ok && chans[id.Name] {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			if id, ok := n.X.(*ast.Ident); ok && chans[id.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}
