package lint

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline is the ratchet: a multiset of findings the tree is known (and
// tolerated) to contain. hccmf-vet fails only on findings NOT in the
// baseline, so the suite can grow a new analyzer without first paying
// down every pre-existing hit — while any NEW violation, of any analyzer,
// fails CI immediately. Shrinking the baseline is always safe; growing it
// is a reviewed decision (regenerate with -write-baseline and defend the
// diff).
//
// Keys deliberately exclude line numbers: a finding is identified by
// (analyzer, slash-cleaned file, message), counted with multiplicity, so
// pure refactors that move a tolerated finding up or down a file do not
// churn the baseline. Two identical findings in one file occupy two
// baseline slots — fixing one and adding another elsewhere in the file
// still ratchets.
type Baseline struct {
	counts map[string]int
}

// baselineKey renders the line-insensitive identity of a finding.
func baselineKey(d Diagnostic) string {
	return d.Analyzer + "\t" + filepath.ToSlash(d.Pos.Filename) + "\t" + d.Message
}

// NewBaseline records the given findings as tolerated.
func NewBaseline(diags []Diagnostic) *Baseline {
	b := &Baseline{counts: map[string]int{}}
	for _, d := range diags {
		b.counts[baselineKey(d)]++
	}
	return b
}

// Len returns the number of tolerated finding slots.
func (b *Baseline) Len() int {
	n := 0
	for _, c := range b.counts {
		n += c
	}
	return n
}

// Filter splits findings into fresh (not covered by the baseline — these
// fail the run) and baselined (tolerated). Each baseline slot absorbs at
// most one finding; order within the input decides which duplicates are
// absorbed, which is irrelevant because duplicates share an identity.
func (b *Baseline) Filter(diags []Diagnostic) (fresh, baselined []Diagnostic) {
	remaining := make(map[string]int, len(b.counts))
	for k, c := range b.counts {
		remaining[k] = c
	}
	for _, d := range diags {
		k := baselineKey(d)
		if remaining[k] > 0 {
			remaining[k]--
			baselined = append(baselined, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	return fresh, baselined
}

// FormatBaseline renders findings as baseline file content: a comment
// header, then one tab-separated "analyzer\tfile\tmessage" line per
// tolerated finding, sorted for stable diffs.
func FormatBaseline(diags []Diagnostic) string {
	lines := make([]string, 0, len(diags))
	for _, d := range diags {
		lines = append(lines, baselineKey(d))
	}
	sort.Strings(lines)
	var sb strings.Builder
	sb.WriteString("# hccmf-vet baseline: tolerated pre-existing findings (analyzer\\tfile\\tmessage).\n")
	sb.WriteString("# New findings not listed here fail the run. Regenerate with: hccmf-vet -write-baseline lint.baseline ./...\n")
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteString("\n")
	}
	return sb.String()
}

// ParseBaseline reads baseline file content. Blank lines and #-comments
// are skipped; anything else must have the three tab-separated fields.
func ParseBaseline(r io.Reader) (*Baseline, error) {
	b := &Baseline{counts: map[string]int{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		if strings.Count(line, "\t") != 2 {
			return nil, fmt.Errorf("baseline line %d: want 3 tab-separated fields (analyzer\\tfile\\tmessage), got %q", lineno, line)
		}
		b.counts[line]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}
