package lint

import (
	"path/filepath"
	"sort"
)

// VetSchema tags hccmf-vet's machine-readable output, versioned like
// every other schema the module emits so CI consumers can dispatch on it.
const VetSchema = "hccmf-vet/v1"

// Finding is one diagnostic in the machine-readable document.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	// Baselined marks findings tolerated by the ratchet: present in the
	// committed baseline, reported for visibility, not failing the run.
	Baselined bool `json:"baselined,omitempty"`
}

// Document is the top-level JSON shape hccmf-vet -json emits.
type Document struct {
	Schema    string         `json:"schema"`
	Analyzers []string       `json:"analyzers"`
	Findings  []Finding      `json:"findings"`
	Counts    map[string]int `json:"counts"`
	// Fresh is the number of non-baselined findings — the exit-code signal.
	Fresh int `json:"fresh"`
	// Baselined is the number of tolerated findings.
	Baselined int `json:"baselined"`
}

// NewDocument assembles the machine-readable document from a run's
// analyzer set and its fresh/baselined finding split. Counts is keyed by
// analyzer name over ALL findings (fresh + baselined), so the summary
// reflects the tree's total debt, and carries a zero entry for every
// analyzer that ran clean.
func NewDocument(analyzers []*Analyzer, fresh, baselined []Diagnostic) *Document {
	doc := &Document{
		Schema:    VetSchema,
		Counts:    map[string]int{},
		Findings:  []Finding{},
		Fresh:     len(fresh),
		Baselined: len(baselined),
	}
	for _, a := range analyzers {
		doc.Analyzers = append(doc.Analyzers, a.Name)
		doc.Counts[a.Name] = 0
	}
	sort.Strings(doc.Analyzers)
	add := func(diags []Diagnostic, baselined bool) {
		for _, d := range diags {
			doc.Counts[d.Analyzer]++
			doc.Findings = append(doc.Findings, Finding{
				Analyzer:  d.Analyzer,
				File:      filepath.ToSlash(d.Pos.Filename),
				Line:      d.Pos.Line,
				Column:    d.Pos.Column,
				Message:   d.Message,
				Baselined: baselined,
			})
		}
	}
	add(fresh, false)
	add(baselined, true)
	sort.Slice(doc.Findings, func(i, j int) bool {
		a, b := doc.Findings[i], doc.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return doc
}
