package lint

import (
	"go/ast"
	"go/token"
)

// NilObs enforces internal/obs's documented nil-receiver contract:
// uninstrumented runs pass nil instrument bundles and every call site
// stays unconditional, so *every* exported method of a nil-safe type must
// begin with the guard —
//
//	func (c *Counter) Add(n int64) {
//		if c == nil || n < 0 {
//			return
//		}
//		...
//
// The contract is opt-in per type and self-consistent: a type becomes
// nil-safe the moment any of its pointer-receiver methods carries a nil
// guard, and from then on each exported pointer-receiver method must
// either (a) open with a guard — an if statement testing the receiver
// against nil before any receiver field is touched — or (b) be field-free,
// touching the receiver only through its own (guarded) methods, like
// Counter.Inc delegating to Add. One forgotten guard turns a documented
// no-op into a crash exactly when observability is disabled — the
// configuration that otherwise never runs in tests.
//
// The analyzer runs on packages named "obs". Test files are exempt.
var NilObs = &Analyzer{
	Name: "nilobs",
	Doc: "exported pointer-receiver methods of nil-safe obs types must open with the " +
		"documented nil-receiver guard (or touch the receiver only through guarded methods)",
	Run: runNilObs,
}

func runNilObs(pass *Pass) error {
	if pass.Pkg.Name != "obs" {
		return nil
	}
	type method struct {
		fd   *ast.FuncDecl
		file *ast.File
		recv string // receiver identifier ("c" in (c *Counter))
	}
	byType := map[string][]method{}
	var order []string
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			// Only pointer receivers can be nil.
			if _, ok := fd.Recv.List[0].Type.(*ast.StarExpr); !ok {
				continue
			}
			typeName := receiverTypeName(fd.Recv)
			if typeName == "" {
				continue
			}
			recvName := ""
			if names := fd.Recv.List[0].Names; len(names) > 0 {
				recvName = names[0].Name
			}
			if _, seen := byType[typeName]; !seen {
				order = append(order, typeName)
			}
			byType[typeName] = append(byType[typeName], method{fd: fd, file: f, recv: recvName})
		}
	}
	for _, typeName := range order {
		methods := byType[typeName]
		nilSafe := false
		for _, m := range methods {
			if m.recv != "" && m.recv != "_" && opensWithNilGuard(m.fd, m.recv) {
				nilSafe = true
				break
			}
		}
		if !nilSafe {
			continue
		}
		for _, m := range methods {
			if !isExportedName(m.fd.Name.Name) {
				continue
			}
			if m.recv == "" || m.recv == "_" {
				// An unnamed receiver cannot touch fields; trivially safe.
				continue
			}
			if opensWithNilGuard(m.fd, m.recv) || fieldFree(m.fd, m.recv) {
				continue
			}
			pass.ReportRangef(m.file, m.fd.Name,
				"exported method (*%s).%s lacks the nil-receiver guard its type promises; "+
					"open with `if %s == nil` before touching receiver fields",
				typeName, m.fd.Name.Name, m.recv)
		}
	}
	return nil
}

// opensWithNilGuard reports whether a nil test on the receiver appears in
// the method's top-level statements before the first statement that
// accesses a receiver field directly.
func opensWithNilGuard(fd *ast.FuncDecl, recv string) bool {
	for _, stmt := range fd.Body.List {
		if ifs, ok := stmt.(*ast.IfStmt); ok && condTestsNil(ifs.Cond, recv) {
			return true
		}
		if accessesField(stmt, recv) {
			return false
		}
	}
	return false
}

// condTestsNil reports whether the condition compares the receiver
// identifier against nil anywhere (covering `r == nil || ...` chains).
func condTestsNil(cond ast.Expr, recv string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
			return !found
		}
		if isIdentNamed(b.X, recv) && isIdentNamed(b.Y, "nil") {
			found = true
		}
		if isIdentNamed(b.Y, recv) && isIdentNamed(b.X, "nil") {
			found = true
		}
		return !found
	})
	return found
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

// fieldFree reports whether the method never dereferences a receiver
// field: every `recv.X` selector is itself the function of a call (a
// method call on the receiver, which carries its own guard).
func fieldFree(fd *ast.FuncDecl, recv string) bool {
	return !accessesField(fd.Body, recv)
}

// accessesField reports whether any `recv.field` selector occurs in n
// outside method-call position.
func accessesField(n ast.Node, recv string) bool {
	callFuns := map[ast.Expr]bool{}
	ast.Inspect(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok {
			callFuns[call.Fun] = true
		}
		return true
	})
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		sel, ok := c.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		if isIdentNamed(sel.X, recv) && !callFuns[ast.Expr(sel)] {
			found = true
		}
		return !found
	})
	return found
}
