// Package lint is HCC-MF's custom analyzer suite. It mechanically enforces
// the determinism invariants the reproduction's timing and convergence
// claims rest on — invariants that were previously enforced only by
// reviewer vigilance:
//
//   - simtime: simulated-platform packages must never read the wall clock;
//     all time flows through simengine.Sim.
//   - seededrand: library code must never use math/rand's seed-global
//     top-level functions; randomness comes from an explicitly seeded
//     generator threaded through config.
//   - panicpolicy: exported API paths of library packages return errors
//     instead of panicking, unless the panic is a justified internal
//     invariant.
//   - raceguard: Hogwild-style intentional races stay quarantined in
//     files that reference the raceflag package.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer / Pass /
// Diagnostic) but is built on the stdlib go/parser alone, so the module
// stays dependency-free. Analyzers are purely syntactic: they resolve
// package identifiers through each file's import table rather than
// go/types, which is sufficient for the patterns they police and keeps
// them runnable on any tree that parses.
//
// Findings are suppressed only by a *justified* annotation comment:
//
//	// lint:allow <analyzer> — <why this specific site is safe>
//	// lint:invariant <why violating this would be a programmer bug>
//
// A bare "lint:allow simtime" with no justification does not suppress;
// the annotation is part of the reviewable record, not an escape hatch.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzer is one named check, in the shape of x/tools' analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Package is a parsed directory of Go source, the unit an Analyzer runs on.
type Package struct {
	// Name is the package name from the first non-test file ("mf").
	Name string
	// Dir is the directory holding the sources, relative to the load
	// root when possible ("internal/mf").
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	// Filename maps each parsed file back to its path on disk.
	Filename map[*ast.File]string
}

// IsTestFile reports whether f was parsed from a _test.go file.
func (p *Package) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Filename[f], "_test.go")
}

// Pass carries one (analyzer, package) run, again mirroring x/tools.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// allowRe matches a justified suppression: the analyzer name followed by a
// non-empty reason. A bare "lint:allow simtime" is not enough.
var allowRe = regexp.MustCompile(`lint:allow\s+([a-z]+)\s+\S`)

// invariantRe matches a justified invariant annotation for panicpolicy.
var invariantRe = regexp.MustCompile(`lint:invariant\s+\S`)

// Reportf files a diagnostic at pos unless a justified lint:allow comment
// for this analyzer covers that line (same line or the line above).
func (p *Pass) Reportf(file *ast.File, pos token.Pos, format string, args ...any) {
	if p.allowedAt(file, pos, p.Analyzer.Name) {
		return
	}
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowedAt reports whether a justified "lint:allow <name> <reason>"
// comment sits on pos's line or the line immediately above it.
func (p *Pass) allowedAt(file *ast.File, pos token.Pos, name string) bool {
	line := p.Pkg.Fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			cl := p.Pkg.Fset.Position(c.Pos()).Line
			if cl != line && cl != line-1 {
				continue
			}
			if m := allowRe.FindStringSubmatch(c.Text); m != nil && m[1] == name {
				return true
			}
		}
	}
	return false
}

// HasInvariantComment reports whether a justified lint:invariant comment
// covers pos (same line, the line above) or appears in doc.
func (p *Pass) HasInvariantComment(file *ast.File, pos token.Pos, doc *ast.CommentGroup) bool {
	if doc != nil && invariantRe.MatchString(doc.Text()) {
		return true
	}
	line := p.Pkg.Fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			cl := p.Pkg.Fset.Position(c.Pos()).Line
			if (cl == line || cl == line-1) && invariantRe.MatchString(c.Text) {
				return true
			}
		}
	}
	return false
}

// ImportName returns the identifier path is referred to by in f, or ""
// when f does not import it. The default name is the last path element
// (the stdlib packages the analyzers care about all follow it).
func ImportName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	return ""
}

// selRef is one use of a package-level identifier through a selector.
type selRef struct {
	name string
	pos  token.Pos
}

// forEachPkgSelector visits every pkgName.<sel> expression in f. Purely
// syntactic: a local variable shadowing the import name would also match,
// which the analyzers accept as a conservative false positive.
func forEachPkgSelector(f *ast.File, pkgName string, fn func(selRef)) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == pkgName {
			fn(selRef{name: sel.Sel.Name, pos: sel.Pos()})
		}
		return true
	})
}

// Load parses every package under each pattern. Patterns follow the go
// tool's shape: "./..." walks recursively, a plain directory loads just
// that directory. testdata, vendor and dot-directories are skipped by the
// recursive walk, matching the go tool.
func Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Clean(strings.TrimSuffix(rest, "/"))
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				base := d.Name()
				if path != root && (base == "testdata" || base == "vendor" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
					return filepath.SkipDir
				}
				if !seen[path] {
					seen[path] = true
					dirs = append(dirs, path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		p := filepath.Clean(pat)
		if !seen[p] {
			seen[p] = true
			dirs = append(dirs, p)
		}
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// loadDir parses the .go files of one directory into a Package, or nil
// when the directory holds no Go source.
func loadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pkg := &Package{Dir: dir, Fset: fset, Filename: map[*ast.File]string{}}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filename[f] = path
		if pkg.Name == "" || !strings.HasSuffix(e.Name(), "_test.go") {
			pkg.Name = f.Name.Name
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// Run executes every analyzer over every package and returns the combined
// findings ordered by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Dir, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// All returns the full HCC-MF analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{SimTime, SeededRand, PanicPolicy, RaceGuard}
}
