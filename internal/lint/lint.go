// Package lint is HCC-MF's custom analyzer suite. It mechanically enforces
// the invariants the reproduction's timing, convergence and serving
// claims rest on — invariants that were previously enforced only by
// reviewer vigilance:
//
//   - simtime: simulated-platform packages must never read the wall clock;
//     all time flows through simengine.Sim.
//   - seededrand: library code must never use math/rand's seed-global
//     top-level functions; randomness comes from an explicitly seeded
//     generator threaded through config.
//   - panicpolicy: exported API paths of library packages return errors
//     instead of panicking, unless the panic is a justified internal
//     invariant.
//   - raceguard: Hogwild-style intentional races stay quarantined in
//     files that reference the raceflag package — followed across package
//     boundaries via the module index.
//   - errflow: error returns of module functions are never silently
//     dropped in statement position.
//   - hotalloc: functions annotated `// lint:hotpath` contain no
//     allocation-inducing constructs (the 0 allocs/op discipline).
//   - goroutinepolicy: every goroutine in library code is provably
//     joined — WaitGroup, channel collection, or a pool-worker drain.
//   - nilobs: obs instrument types that promise nil-receiver safety keep
//     that promise on every exported method.
//   - schemaconst: versioned wire-schema strings are declared exactly
//     once and referenced through that constant.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer / Pass /
// Diagnostic) but is built on the stdlib go/parser alone, so the module
// stays dependency-free. Load parses the whole module into a Module — a
// cross-package index of packages, functions and methods keyed by import
// path — so analyzers can follow calls across package boundaries without
// go/types. Analyzers stay syntactic: they resolve package identifiers
// through each file's import table, which is sufficient for the patterns
// they police and keeps them runnable on any tree that parses. A file
// that does not parse is itself reported as a finding (analyzer "load")
// rather than aborting the run: one broken file still yields findings
// for the rest of the tree.
//
// Findings are suppressed only by a *justified* annotation comment:
//
//	// lint:allow <analyzer> — <why this specific site is safe>
//	// lint:invariant <why violating this would be a programmer bug>
//
// A bare "lint:allow simtime" with no justification does not suppress;
// the annotation is part of the reviewable record, not an escape hatch.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// LoadAnalyzer names the pseudo-analyzer parse failures are reported
// under, so a broken file flows through the same finding/baseline
// machinery as a real invariant violation.
const LoadAnalyzer = "load"

// Analyzer is one named check, in the shape of x/tools' analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Package is a parsed directory of Go source, the unit an Analyzer runs on.
type Package struct {
	// Name is the package name from the first non-test file ("mf").
	Name string
	// Dir is the directory holding the sources, relative to the load
	// root when possible ("internal/mf").
	Dir string
	// ImportPath is the module-qualified import path ("hccmf/internal/mf"),
	// derived from the nearest enclosing go.mod. Falls back to Dir when no
	// module file is found.
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	// Filename maps each parsed file back to its path on disk.
	Filename map[*ast.File]string

	funcs   map[string]*FuncRef
	methods map[string]*FuncRef
}

// IsTestFile reports whether f was parsed from a _test.go file.
func (p *Package) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Filename[f], "_test.go")
}

// FuncRef locates one function or method declaration inside a module.
type FuncRef struct {
	Pkg  *Package
	File *ast.File
	Decl *ast.FuncDecl
}

// Func returns the package's top-level function of the given name (from a
// non-test file, with a body), or nil.
func (p *Package) Func(name string) *FuncRef { return p.funcs[name] }

// Method returns the method name on receiver type recv ("Cluster",
// "Tracer" — the bare type name without a star), or nil.
func (p *Package) Method(recv, name string) *FuncRef { return p.methods[recv+"."+name] }

// index builds the package's function and method tables. Test files are
// excluded: following a call into test-only code is never load-bearing
// for the invariants the suite polices.
func (p *Package) index() {
	p.funcs = map[string]*FuncRef{}
	p.methods = map[string]*FuncRef{}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ref := &FuncRef{Pkg: p, File: f, Decl: fd}
			if fd.Recv == nil {
				p.funcs[fd.Name.Name] = ref
				continue
			}
			if recv := receiverTypeName(fd.Recv); recv != "" {
				p.methods[recv+"."+fd.Name.Name] = ref
			}
		}
	}
}

// receiverTypeName resolves the bare type name of a method receiver
// ("*Cluster" and "Cluster" both yield "Cluster"; generic receivers drop
// their type arguments).
func receiverTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// Module is the unit Load produces and Run consumes: every loaded package
// plus the cross-package index analyzers use to follow calls over package
// boundaries.
type Module struct {
	// Path is the module path from go.mod ("hccmf"), or "" when no module
	// file encloses the loaded directories.
	Path string
	// Root is the absolute directory holding go.mod ("" without one).
	Root string
	// Pkgs are the loaded packages, sorted by directory.
	Pkgs []*Package
	// ParseErrors carries per-file parse failures as diagnostics under
	// LoadAnalyzer. The failing files are excluded from their package;
	// everything else is analyzed normally.
	ParseErrors []Diagnostic

	byImport map[string]*Package

	// schemaIdx memoizes the schemaconst analyzer's module-wide constant
	// index (built lazily on first use; Run is sequential).
	schemaIdx *schemaIndex
}

// Package returns the loaded package with the given import path, or nil.
func (m *Module) Package(importPath string) *Package { return m.byImport[importPath] }

// ImportedPackage resolves the selector base name local (as used in
// `local.Sym` inside f) through f's import table to a package loaded in
// this module. Returns nil for stdlib imports, unloaded packages, or
// names that are not imports of f.
func (m *Module) ImportedPackage(f *ast.File, local string) *Package {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == local {
			return m.byImport[path]
		}
	}
	return nil
}

// Func returns the named top-level function of the package with the given
// import path, or nil when either is unknown.
func (m *Module) Func(importPath, name string) *FuncRef {
	if p := m.byImport[importPath]; p != nil {
		return p.Func(name)
	}
	return nil
}

// Pass carries one (analyzer, package) run, again mirroring x/tools.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Module is the whole loaded module, for cross-package resolution.
	Module *Module
	report func(Diagnostic)
}

// allowRe matches a justified suppression: the analyzer name followed by a
// non-empty reason. A bare "lint:allow simtime" is not enough.
var allowRe = regexp.MustCompile(`lint:allow\s+([a-z]+)\s+\S`)

// invariantRe matches a justified invariant annotation for panicpolicy.
var invariantRe = regexp.MustCompile(`lint:invariant\s+\S`)

// allowsAnalyzer reports whether the comment text carries a justified
// "lint:allow <name> <reason>" for the named analyzer. A comment may
// carry several allow annotations; each needs its own reason.
func allowsAnalyzer(text, name string) bool {
	for _, m := range allowRe.FindAllStringSubmatch(text, -1) {
		if m[1] == name {
			return true
		}
	}
	return false
}

// hasInvariantText reports whether the comment text carries a justified
// lint:invariant annotation.
func hasInvariantText(text string) bool { return invariantRe.MatchString(text) }

// Reportf files a diagnostic at pos unless a justified lint:allow comment
// for this analyzer covers that line (same line or the line above).
func (p *Pass) Reportf(file *ast.File, pos token.Pos, format string, args ...any) {
	line := p.Pkg.Fset.Position(pos).Line
	p.reportAt(file, pos, line, line, format, args...)
}

// ReportRangef files a diagnostic at n's position unless a justified
// lint:allow comment for this analyzer covers the node: the line above
// it, or any line the node spans — so an end-of-line annotation on the
// last line of a multi-line statement suppresses too.
func (p *Pass) ReportRangef(file *ast.File, n ast.Node, format string, args ...any) {
	start := p.Pkg.Fset.Position(n.Pos()).Line
	end := p.Pkg.Fset.Position(n.End()).Line
	p.reportAt(file, n.Pos(), start, end, format, args...)
}

func (p *Pass) reportAt(file *ast.File, pos token.Pos, startLine, endLine int, format string, args ...any) {
	if p.allowedAt(file, startLine, endLine, p.Analyzer.Name) {
		return
	}
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowedAt reports whether a justified "lint:allow <name> <reason>"
// comment sits on any line in [startLine-1, endLine].
func (p *Pass) allowedAt(file *ast.File, startLine, endLine int, name string) bool {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			cl := p.Pkg.Fset.Position(c.Pos()).Line
			if cl < startLine-1 || cl > endLine {
				continue
			}
			if allowsAnalyzer(c.Text, name) {
				return true
			}
		}
	}
	return false
}

// HasInvariantComment reports whether a justified lint:invariant comment
// covers pos (same line, the line above) or appears in doc.
func (p *Pass) HasInvariantComment(file *ast.File, pos token.Pos, doc *ast.CommentGroup) bool {
	if doc != nil && hasInvariantText(doc.Text()) {
		return true
	}
	line := p.Pkg.Fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			cl := p.Pkg.Fset.Position(c.Pos()).Line
			if (cl == line || cl == line-1) && hasInvariantText(c.Text) {
				return true
			}
		}
	}
	return false
}

// ImportName returns the identifier path is referred to by in f, or ""
// when f does not import it. The default name is the last path element
// (the stdlib packages the analyzers care about all follow it).
func ImportName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	return ""
}

// selRef is one use of a package-level identifier through a selector.
type selRef struct {
	name string
	pos  token.Pos
}

// forEachPkgSelector visits every pkgName.<sel> expression in f. A
// selector whose base identifier resolves to a function-scope (or
// package-level) redeclaration shadowing the import name is skipped:
// `rand := newLocal(); rand.Intn(3)` is not a use of package math/rand.
// Identifiers declared in *other* files of the package stay unresolved by
// go/parser and still match — a conservative false positive the analyzers
// accept.
func forEachPkgSelector(f *ast.File, pkgName string, fn func(selRef)) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != pkgName {
			return true
		}
		if obj := id.Obj; obj != nil && obj.Kind != ast.Pkg && obj.Kind != ast.Bad {
			return true // shadowed by a local declaration
		}
		fn(selRef{name: sel.Sel.Name, pos: sel.Pos()})
		return true
	})
}

// Load parses every package under each pattern into a Module. Patterns
// follow the go tool's shape: "./..." walks recursively, a plain
// directory loads just that directory. testdata, vendor and
// dot-directories are skipped by the recursive walk, matching the go
// tool. Files that fail to parse become LoadAnalyzer diagnostics in
// Module.ParseErrors instead of aborting the load.
func Load(patterns ...string) (*Module, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Clean(strings.TrimSuffix(rest, "/"))
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				base := d.Name()
				if path != root && (base == "testdata" || base == "vendor" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
					return filepath.SkipDir
				}
				if !seen[path] {
					seen[path] = true
					dirs = append(dirs, path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		p := filepath.Clean(pat)
		if !seen[p] {
			seen[p] = true
			dirs = append(dirs, p)
		}
	}
	sort.Strings(dirs)

	mod := &Module{byImport: map[string]*Package{}}
	modCache := map[string][2]string{} // dir -> {root, module path}
	for _, dir := range dirs {
		pkg, perrs, err := loadDir(dir)
		if err != nil {
			return nil, err
		}
		mod.ParseErrors = append(mod.ParseErrors, perrs...)
		if pkg == nil {
			continue
		}
		root, path := findModule(dir, modCache)
		pkg.ImportPath = importPathFor(dir, root, path)
		if mod.Path == "" && path != "" {
			mod.Path, mod.Root = path, root
		}
		pkg.index()
		mod.Pkgs = append(mod.Pkgs, pkg)
		mod.byImport[pkg.ImportPath] = pkg
	}
	return mod, nil
}

// findModule walks up from dir looking for a go.mod and returns the
// directory holding it plus the declared module path ("", "" without
// one). Results are memoized per directory.
func findModule(dir string, cache map[string][2]string) (root, path string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", ""
	}
	if got, ok := cache[abs]; ok {
		return got[0], got[1]
	}
	cur := abs
	for {
		data, err := os.ReadFile(filepath.Join(cur, "go.mod"))
		if err == nil {
			path = moduleLine(string(data))
			if path != "" {
				cache[abs] = [2]string{cur, path}
				return cur, path
			}
		}
		parent := filepath.Dir(cur)
		if parent == cur {
			cache[abs] = [2]string{}
			return "", ""
		}
		cur = parent
	}
}

// moduleLine extracts the module path from go.mod content.
func moduleLine(content string) string {
	for _, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest
			}
		}
	}
	return ""
}

// importPathFor maps a loaded directory to its module-qualified import
// path, falling back to the slash-cleaned directory outside any module.
func importPathFor(dir, root, modPath string) string {
	if modPath == "" {
		return filepath.ToSlash(filepath.Clean(dir))
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filepath.ToSlash(filepath.Clean(dir))
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filepath.Clean(dir))
	}
	if rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

// loadDir parses the .go files of one directory into a Package, or nil
// when the directory holds no (parsable) Go source. Parse failures are
// returned as LoadAnalyzer diagnostics; only I/O failures are errors.
func loadDir(dir string) (*Package, []Diagnostic, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	pkg := &Package{Dir: dir, Fset: fset, Filename: map[*ast.File]string{}}
	var perrs []Diagnostic
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			perrs = append(perrs, parseDiagnostics(path, err)...)
			continue
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filename[f] = path
		if pkg.Name == "" || !strings.HasSuffix(e.Name(), "_test.go") {
			pkg.Name = f.Name.Name
		}
	}
	if len(pkg.Files) == 0 {
		return nil, perrs, nil
	}
	return pkg, perrs, nil
}

// maxParseDiagsPerFile bounds how many syntax errors one broken file
// contributes: a missing brace cascades, and the first few errors carry
// all the signal.
const maxParseDiagsPerFile = 3

// parseDiagnostics converts a parse failure into LoadAnalyzer findings.
func parseDiagnostics(path string, err error) []Diagnostic {
	var out []Diagnostic
	if list, ok := err.(scanner.ErrorList); ok {
		for i, e := range list {
			if i == maxParseDiagsPerFile {
				out = append(out, Diagnostic{
					Pos:      token.Position{Filename: path, Line: e.Pos.Line, Column: e.Pos.Column},
					Analyzer: LoadAnalyzer,
					Message:  fmt.Sprintf("... and %d more syntax errors", len(list)-maxParseDiagsPerFile),
				})
				break
			}
			out = append(out, Diagnostic{
				Pos:      token.Position{Filename: e.Pos.Filename, Line: e.Pos.Line, Column: e.Pos.Column},
				Analyzer: LoadAnalyzer,
				Message:  "syntax error: " + e.Msg,
			})
		}
		return out
	}
	return []Diagnostic{{
		Pos:      token.Position{Filename: path, Line: 1, Column: 1},
		Analyzer: LoadAnalyzer,
		Message:  err.Error(),
	}}
}

// Run executes every analyzer over every package of the module and
// returns the combined findings — including the module's parse errors —
// ordered by position.
func Run(mod *Module, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags := append([]Diagnostic(nil), mod.ParseErrors...)
	for _, pkg := range mod.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Module:   mod,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Dir, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// All returns the full HCC-MF analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		SimTime, SeededRand, PanicPolicy, RaceGuard,
		ErrFlow, HotAlloc, GoroutinePolicy, NilObs, SchemaConst,
	}
}
