package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The module loader must derive module-qualified import paths from go.mod
// and index functions so analyzers can follow calls across packages.
func TestLoadBuildsModuleIndex(t *testing.T) {
	mod, err := Load("testdata/src/errflow/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if mod.Path != "hccmf" {
		t.Fatalf("module path = %q, want hccmf", mod.Path)
	}
	if len(mod.Pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(mod.Pkgs))
	}
	const helperPath = "hccmf/internal/lint/testdata/src/errflow/helper"
	helper := mod.Package(helperPath)
	if helper == nil {
		t.Fatalf("Package(%q) = nil; loaded: %v", helperPath, importPaths(mod))
	}
	if helper.Name != "helper" {
		t.Errorf("helper package name = %q", helper.Name)
	}
	if ref := mod.Func(helperPath, "Write"); ref == nil {
		t.Errorf("cross-package Func lookup of helper.Write failed")
	} else if ref.Pkg != helper {
		t.Errorf("Func ref resolved into wrong package %q", ref.Pkg.ImportPath)
	}
	if mod.Func(helperPath, "NoSuchFunc") != nil {
		t.Errorf("unknown function resolved to a ref")
	}
}

// ImportedPackage must resolve a file's selector base through its import
// table, honoring renames, and return nil for out-of-module imports.
func TestImportedPackage(t *testing.T) {
	mod, err := Load("testdata/src/errflow/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	consumer := mod.Package("hccmf/internal/lint/testdata/src/errflow/consumer")
	if consumer == nil {
		t.Fatalf("consumer package not loaded")
	}
	var file = consumer.Files[0]
	for _, f := range consumer.Files {
		if strings.HasSuffix(consumer.Filename[f], "consumer.go") {
			file = f
		}
	}
	if p := mod.ImportedPackage(file, "helper"); p == nil || p.Name != "helper" {
		t.Errorf("ImportedPackage(helper) = %v", p)
	}
	if p := mod.ImportedPackage(file, "nosuch"); p != nil {
		t.Errorf("ImportedPackage(nosuch) = %q, want nil", p.ImportPath)
	}
}

// Method lookup must key on the bare receiver type name, star or not.
func TestPackageMethodIndex(t *testing.T) {
	mod, err := Load("testdata/src/nilobs/obs")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	pkg := mod.Pkgs[0]
	if ref := pkg.Method("Counter", "Add"); ref == nil {
		t.Errorf("Method(Counter, Add) = nil")
	}
	if ref := pkg.Method("Counter", "Nope"); ref != nil {
		t.Errorf("Method(Counter, Nope) resolved")
	}
}

// A file that fails to parse becomes LoadAnalyzer diagnostics; the rest
// of the directory still loads and analyzes.
func TestLoadCollectsParseErrors(t *testing.T) {
	dir := t.TempDir()
	good := "package broken\n\n// Fine parses.\nfunc Fine() int { return 1 }\n"
	bad := "package broken\n\nfunc Broken() {\n\tif {\n"
	if err := os.WriteFile(filepath.Join(dir, "good.go"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(mod.ParseErrors) == 0 {
		t.Fatalf("no parse-error diagnostics for broken file")
	}
	for _, d := range mod.ParseErrors {
		if d.Analyzer != LoadAnalyzer {
			t.Errorf("parse diagnostic under analyzer %q, want %q", d.Analyzer, LoadAnalyzer)
		}
		if !strings.HasSuffix(filepath.ToSlash(d.Pos.Filename), "bad.go") {
			t.Errorf("parse diagnostic filed against %s", d.Pos.Filename)
		}
	}
	if len(mod.Pkgs) != 1 {
		t.Fatalf("got %d packages, want 1 (good file should still load)", len(mod.Pkgs))
	}
	if mod.Pkgs[0].Func("Fine") == nil {
		t.Errorf("good file's function missing from index")
	}
	// Run surfaces the parse errors alongside analyzer findings.
	diags, err := Run(mod, All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	found := false
	for _, d := range diags {
		if d.Analyzer == LoadAnalyzer {
			found = true
		}
	}
	if !found {
		t.Errorf("Run dropped the parse-error diagnostics")
	}
}

// A cascade of syntax errors in one file is capped at
// maxParseDiagsPerFile plus a summary line.
func TestParseErrorsCappedPerFile(t *testing.T) {
	dir := t.TempDir()
	src := "package broken\n\nfunc A() { if }\nfunc B() { if }\nfunc C() { if }\nfunc D() { if }\nfunc E() { if }\nfunc F() { if }\n"
	if err := os.WriteFile(filepath.Join(dir, "cascade.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(mod.ParseErrors) == 0 {
		t.Fatalf("no diagnostics for cascade file")
	}
	if got := len(mod.ParseErrors); got > maxParseDiagsPerFile+1 {
		t.Fatalf("got %d parse diagnostics, want <= %d", got, maxParseDiagsPerFile+1)
	}
	last := mod.ParseErrors[len(mod.ParseErrors)-1]
	if !strings.Contains(last.Message, "more syntax errors") {
		t.Errorf("capped cascade missing summary line; last = %q", last.Message)
	}
}

// The recursive pattern walk must skip testdata, vendor and hidden
// directories, matching the go tool.
func TestLoadSkipsTestdataInWalk(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "pkg")
	skip := filepath.Join(sub, "testdata")
	if err := os.MkdirAll(skip, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "a.go"), []byte("package pkg\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(skip, "b.go"), []byte("package fixture\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := Load(filepath.Join(dir, "..."))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range mod.Pkgs {
		if strings.Contains(filepath.ToSlash(p.Dir), "testdata") {
			t.Errorf("walk descended into %s", p.Dir)
		}
	}
}

func importPaths(mod *Module) []string {
	var out []string
	for _, p := range mod.Pkgs {
		out = append(out, p.ImportPath)
	}
	return out
}
