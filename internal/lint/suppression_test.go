package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The allow grammar demands a reason: "lint:allow <analyzer> <reason>".
func TestAllowsAnalyzerGrammar(t *testing.T) {
	cases := []struct {
		text, analyzer string
		want           bool
	}{
		{"// lint:allow simtime timers are simulated here", "simtime", true},
		{"// lint:allow simtime timers are simulated here", "seededrand", false},
		{"// lint:allow simtime", "simtime", false},        // bare: no reason
		{"// lint:allow simtime   ", "simtime", false},     // whitespace is not a reason
		{"// lint:allow simtimer extra", "simtime", false}, // wrong analyzer name
		{"// lint:allowsimtime reason", "simtime", false},  // missing separator
		{"/* lint:allow hotalloc cold branch */", "hotalloc", true},
		{"// lint:allow hotalloc cold branch lint:allow raceguard disjoint blocks", "raceguard", true},
		{"// lint:allow hotalloc cold branch lint:allow raceguard disjoint blocks", "hotalloc", true},
		{"// lint:allow hotalloc x lint:allow raceguard", "raceguard", false}, // second allow bare
		{"", "simtime", false},
	}
	for _, c := range cases {
		if got := allowsAnalyzer(c.text, c.analyzer); got != c.want {
			t.Errorf("allowsAnalyzer(%q, %q) = %v, want %v", c.text, c.analyzer, got, c.want)
		}
	}
}

func TestInvariantGrammar(t *testing.T) {
	cases := []struct {
		text string
		want bool
	}{
		{"// lint:invariant reaching this is a programmer bug", true},
		{"// lint:invariant", false},
		{"// lint:invariant   ", false},
		{"// an unrelated comment", false},
	}
	for _, c := range cases {
		if got := hasInvariantText(c.text); got != c.want {
			t.Errorf("hasInvariantText(%q) = %v, want %v", c.text, c.want, c.want)
		}
	}
}

// loadSnippet parses one source string as a single-file package in a
// temp dir and returns the module.
func loadSnippet(t *testing.T, src string) *Module {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snippet.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return mod
}

func runOn(t *testing.T, mod *Module, a *Analyzer) []Diagnostic {
	t.Helper()
	diags, err := Run(mod, []*Analyzer{a})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return diags
}

// An end-of-line allow on the LAST line of a multi-line statement must
// suppress a range-reported finding whose position is the first line.
func TestAllowOnLastLineOfMultiLineStatement(t *testing.T) {
	src := `package lib

// Leak spawns an unjoined goroutine across several lines.
func Leak() {
	go func() {
		_ = 1
	}() // lint:allow goroutinepolicy suppression from the closing line must reach the whole statement
}
`
	if diags := runOn(t, loadSnippet(t, src), GoroutinePolicy); len(diags) != 0 {
		t.Errorf("allow on closing line did not suppress: %v", diags)
	}
	// Without the annotation the same snippet is a finding.
	bare := strings.Replace(src, " // lint:allow goroutinepolicy suppression from the closing line must reach the whole statement", "", 1)
	if diags := runOn(t, loadSnippet(t, bare), GoroutinePolicy); len(diags) != 1 {
		t.Errorf("unsuppressed snippet: got %d findings, want 1", len(diags))
	}
}

// A bare lint:allow with no reason must NOT suppress.
func TestBareAllowDoesNotSuppress(t *testing.T) {
	src := `package lib

// Leak spawns an unjoined goroutine.
func Leak() {
	go func() {}() // lint:allow goroutinepolicy
}
`
	if diags := runOn(t, loadSnippet(t, src), GoroutinePolicy); len(diags) != 1 {
		t.Errorf("bare allow suppressed anyway: got %d findings, want 1", len(diags))
	}
}

// An allow naming a different analyzer must not suppress this one.
func TestAllowForWrongAnalyzerDoesNotSuppress(t *testing.T) {
	src := `package lib

// Leak spawns an unjoined goroutine.
func Leak() {
	go func() {}() // lint:allow hotalloc justified for a different analyzer
}
`
	if diags := runOn(t, loadSnippet(t, src), GoroutinePolicy); len(diags) != 1 {
		t.Errorf("wrong-analyzer allow suppressed: got %d findings, want 1", len(diags))
	}
}

// lint:invariant inside a declaration's doc group must cover panics in
// the body (panicpolicy's documented contract).
func TestInvariantInDocGroup(t *testing.T) {
	src := `package lib

// Mangle panics on impossible state.
//
// lint:invariant impossible state means the builder above is broken.
func Mangle(n int) int {
	if n < 0 {
		panic("impossible")
	}
	return n
}
`
	if diags := runOn(t, loadSnippet(t, src), PanicPolicy); len(diags) != 0 {
		t.Errorf("doc-group invariant did not cover the panic: %v", diags)
	}
}

// FuzzSuppressionGrammar hammers the allow/invariant comment parsers with
// arbitrary text: they must never panic, and a positive allow must
// actually contain the marker and the analyzer name.
func FuzzSuppressionGrammar(f *testing.F) {
	f.Add("// lint:allow simtime reason", "simtime")
	f.Add("// lint:allow simtime", "simtime")
	f.Add("lint:allow", "hotalloc")
	f.Add("// lint:invariant why", "raceguard")
	f.Add("lint:allow \t raceguard x", "raceguard")
	f.Add("// lint:allow a b lint:allow c d", "c")
	f.Add(strings.Repeat("lint:allow x y ", 50), "x")
	f.Fuzz(func(t *testing.T, text, analyzer string) {
		got := allowsAnalyzer(text, analyzer)
		if got {
			if !strings.Contains(text, "lint:allow") {
				t.Fatalf("allow matched text without marker: %q", text)
			}
			if !strings.Contains(text, analyzer) {
				t.Fatalf("allow matched text without analyzer name %q: %q", analyzer, text)
			}
		}
		inv := hasInvariantText(text)
		if inv && !strings.Contains(text, "lint:invariant") {
			t.Fatalf("invariant matched text without marker: %q", text)
		}
	})
}
