package lint

import (
	"go/ast"
)

// simTimePackages are the simulated-platform packages: every duration that
// reaches a regenerated table must come from simengine.Sim's virtual clock,
// so reading the wall clock here silently invalidates the reproduction.
var simTimePackages = map[string]bool{
	"simengine":   true,
	"device":      true,
	"bus":         true,
	"costmodel":   true,
	"ps":          true,
	"comm":        true,
	"trace":       true,
	"experiments": true,
	"schedule":    true,
}

// wallClockFuncs are the package time functions that read or wait on the
// real clock. Units and arithmetic (time.Duration, time.Millisecond) stay
// legal — they describe simulated durations.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
}

// obsWallClockFuncs are the internal/obs entry points that construct a
// wall-clock reader. The observability layer is wall-clock-aware by design
// (it times real execution), but a simulated-platform package that builds
// its own obs.WallClock has smuggled the real clock past the injection
// points; the observer's clock must arrive pre-wired from outside.
var obsWallClockFuncs = map[string]bool{
	"WallClock": true,
}

// SimTime forbids wall-clock reads in the simulated-platform packages.
// Both calls (time.Now()) and value references (f := time.Sleep) are
// flagged: handing the wall clock to an injection point is how it leaks.
// The same applies to obs.WallClock — instrumented sim packages may call
// an injected observer but never mint a real clock themselves. Test files
// are exempt — the invariant protects reported timings, and tests may
// legitimately bound their own runtime.
var SimTime = &Analyzer{
	Name: "simtime",
	Doc: "forbid wall-clock calls (time.Now/Since/Sleep/Tick/... and obs.WallClock) in simulated-platform packages; " +
		"all time must flow through simengine.Sim",
	Run: runSimTime,
}

func runSimTime(pass *Pass) error {
	if !simTimePackages[pass.Pkg.Name] {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		timeName := ImportName(f, "time")
		obsName := ImportName(f, "hccmf/internal/obs")
		if timeName == "" && obsName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch {
			case timeName != "" && id.Name == timeName && wallClockFuncs[sel.Sel.Name]:
				pass.Reportf(f, sel.Pos(),
					"wall-clock time.%s in simulated-platform package %q; use simengine.Sim virtual time",
					sel.Sel.Name, pass.Pkg.Name)
			case obsName != "" && id.Name == obsName && obsWallClockFuncs[sel.Sel.Name]:
				pass.Reportf(f, sel.Pos(),
					"obs.%s mints a wall clock in simulated-platform package %q; accept an injected observer instead",
					sel.Sel.Name, pass.Pkg.Name)
			}
			return true
		})
	}
	return nil
}
