package lint

import (
	"go/ast"
)

// simTimePackages are the simulated-platform packages: every duration that
// reaches a regenerated table must come from simengine.Sim's virtual clock,
// so reading the wall clock here silently invalidates the reproduction.
var simTimePackages = map[string]bool{
	"simengine":   true,
	"device":      true,
	"bus":         true,
	"costmodel":   true,
	"ps":          true,
	"comm":        true,
	"trace":       true,
	"experiments": true,
}

// wallClockFuncs are the package time functions that read or wait on the
// real clock. Units and arithmetic (time.Duration, time.Millisecond) stay
// legal — they describe simulated durations.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
}

// SimTime forbids wall-clock reads in the simulated-platform packages.
// Both calls (time.Now()) and value references (f := time.Sleep) are
// flagged: handing the wall clock to an injection point is how it leaks.
// Test files are exempt — the invariant protects reported timings, and
// tests may legitimately bound their own runtime.
var SimTime = &Analyzer{
	Name: "simtime",
	Doc: "forbid wall-clock calls (time.Now/Since/Sleep/Tick/...) in simulated-platform packages; " +
		"all time must flow through simengine.Sim",
	Run: runSimTime,
}

func runSimTime(pass *Pass) error {
	if !simTimePackages[pass.Pkg.Name] {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		timeName := ImportName(f, "time")
		if timeName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != timeName || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			pass.Reportf(f, sel.Pos(),
				"wall-clock time.%s in simulated-platform package %q; use simengine.Sim virtual time",
				sel.Sel.Name, pass.Pkg.Name)
			return true
		})
	}
	return nil
}
