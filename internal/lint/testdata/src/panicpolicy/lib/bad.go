// Package lib is a fixture for panicpolicy: a library package whose
// exported API panics without justification.
package lib

import "fmt"

// Explode panics on bad input with no invariant justification.
func Explode(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("lib: negative %d", n)) // want "panic in exported lib.Explode"
	}
	return n
}

// Bare shows that an annotation without a reason does not suppress: the
// justification is the point.
func Bare(n int) int {
	if n == 0 {
		// lint:invariant
		panic("lib: zero") // want "panic in exported lib.Bare"
	}
	return n
}

// Nested panics inside a closure still belong to the exported path.
func Nested(f func() int) func() int {
	return func() int {
		if f == nil {
			panic("lib: nil f") // want "panic in exported lib.Nested"
		}
		return f()
	}
}
