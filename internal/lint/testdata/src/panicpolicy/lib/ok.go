package lib

import "fmt"

// Checked returns an error, the preferred shape for user-reachable misuse.
func Checked(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("lib: negative %d", n)
	}
	return n, nil
}

// Guarded documents a true internal invariant at the panic site.
func Guarded(state int) int {
	if state > 3 {
		// lint:invariant state is a closed enum maintained by this package; >3 means memory corruption.
		panic(fmt.Sprintf("lib: impossible state %d", state))
	}
	return state
}

// Declared carries the justification in its doc comment instead.
//
// lint:invariant callers hold the schedule lock; reentrancy would corrupt the event heap.
func Declared() {
	panic("lib: reentrant call")
}

// MustChecked trades the error for a panic by naming convention, like
// regexp.MustCompile.
func MustChecked(n int) int {
	v, err := Checked(n)
	if err != nil {
		panic(err)
	}
	return v
}

// unexported helpers may panic freely; the policy covers the exported
// surface.
func clamp(n int) int {
	if n < 0 {
		panic("lib: clamp misuse")
	}
	return n
}
