// Command main is a fixture: package main is not library API, so the
// panic policy does not apply.
package main

// Run may panic; a CLI crash is its own error report.
func Run(args []string) {
	if len(args) == 0 {
		panic("main: no args")
	}
}

func main() {
	Run([]string{"x"})
}
