// Package caller launches mf's shared updater from another package —
// the cross-package paths raceguard follows through the module index.
package caller

import mf "hccmf/internal/lint/testdata/src/raceguardx/mf"

// Direct hands the cross-package updater straight to go.
func Direct(f *mf.Factors, entries []mf.Rating, h mf.HyperParams) {
	go mf.TrainEntries(f, entries, h) // want "shared-factor updater mf.TrainEntries"
}

// viaWorker wraps the updater behind an innocent-looking local function.
func viaWorker(f *mf.Factors, entries []mf.Rating, h mf.HyperParams) {
	mf.TrainEntries(f, entries, h)
}

// Indirect launches the local worker; the analyzer follows one level in.
func Indirect(f *mf.Factors, entries []mf.Rating, h mf.HyperParams) {
	go viaWorker(f, entries, h) // want "worker viaWorker calls shared-factor updater mf.TrainEntries"
}

// Synchronous calls are not goroutines; no finding.
func Synchronous(f *mf.Factors, entries []mf.Rating, h mf.HyperParams) {
	mf.TrainEntries(f, entries, h)
}

// Allowed is a justified disjoint-by-construction launch.
func Allowed(f *mf.Factors, entries []mf.Rating, h mf.HyperParams) {
	go mf.TrainEntries(f, entries, h) // lint:allow raceguard fixture demonstrates a disjoint-by-construction launch
}
