// Package mf is the cross-package raceguard fixture stub, mirroring the
// real package's shared-updater surface.
package mf

// Factors stands in for the shared factor matrices.
type Factors struct{ P []float32 }

// HyperParams is the SGD step configuration.
type HyperParams struct{ Gamma float32 }

// Rating is one training entry.
type Rating struct {
	U, I int32
	V    float32
}

// TrainEntries updates shared factors in place — the updater raceguard
// tracks across package boundaries.
func TrainEntries(f *Factors, entries []Rating, h HyperParams) {
	for range entries {
		f.P[0] += h.Gamma
	}
}
