package beta

// Test files pin literal bytes on purpose: golden comparisons must break
// when a schema changes, so inline literals here are exempt.
func goldenSchema() string {
	return "hccmf-fixture/v1"
}
