// Package beta trips schemaconst: it re-declares alpha's schema and
// inlines schema literals.
package beta

// DupSchema re-declares a schema that alpha already owns.
const DupSchema = "hccmf-fixture/v1" // want "already declared as alpha.Schema"

// Fresh is a distinct schema; its first declaration is canonical.
const Fresh = "hccmf-beta/v2"

// Inline returns a declared schema as a raw literal.
func Inline() string {
	return "hccmf-fixture/v1" // want "inline schema literal"
}

// Unpinned inlines a schema no constant declares anywhere.
func Unpinned() string {
	return "hccmf-loose/v9" // want "declare it once as a named constant"
}

// Other is not a schema string.
func Other() string { return "hccmf/plain" }
