// Package alpha declares the canonical schema constant of the
// schemaconst fixture tree; the declaration itself draws no finding.
package alpha

// Schema tags the fixture document format.
const Schema = "hccmf-fixture/v1"

// Tag returns the canonical tag through the constant.
func Tag() string { return Schema }
