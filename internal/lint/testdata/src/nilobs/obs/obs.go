// Package obs is the nilobs fixture: the nil-receiver contract is opt-in
// per type — one guarded method binds every exported pointer-receiver
// method of that type.
package obs

// Counter opted in: Add carries the guard.
type Counter struct{ n int64 }

// Add opens with the documented guard.
func (c *Counter) Add(d int64) {
	if c == nil || d < 0 {
		return
	}
	c.n += d
}

// Inc is field-free: it touches the receiver only through the guarded
// Add, so it inherits nil-safety without its own guard.
func (c *Counter) Inc() { c.Add(1) }

// Value touches the field with no guard.
func (c *Counter) Value() int64 { // want "Value lacks the nil-receiver guard"
	return c.n
}

// reset is unexported; the contract binds only the exported surface.
func (c *Counter) reset() { c.n = 0 }

// Gauge never opted in: unguarded methods are legal because the type
// makes no nil-safety promise.
type Gauge struct{ v float64 }

// Set is unguarded and fine.
func (g *Gauge) Set(v float64) { g.v = v }

// Meter opted in but Snapshot guards after reading a field: the guard
// must come first.
type Meter struct{ total int64 }

// Observe opens with the guard.
func (m *Meter) Observe(v int64) {
	if m == nil {
		return
	}
	m.total += v
}

// Snapshot reads the field before testing nil.
func (m *Meter) Snapshot() int64 { // want "Snapshot lacks the nil-receiver guard"
	t := m.total
	if m == nil {
		return 0
	}
	return t
}
