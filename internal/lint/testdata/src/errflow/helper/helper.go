// Package helper is the errflow fixture's cross-package callee: the
// consumer package drops errors returned from here.
package helper

// Write pretends to persist something and can fail.
func Write() error { return nil }

// Pure returns no error; statement-position calls are fine.
func Pure() int { return 0 }
