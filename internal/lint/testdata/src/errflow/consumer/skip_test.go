package consumer

// Test files are exempt: dropped errors here draw no findings.
func dropInTest() {
	save()
}
