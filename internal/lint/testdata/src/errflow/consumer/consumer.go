// Package consumer is the errflow fixture: module functions whose error
// returns are dropped in statement position, same-package and across the
// package boundary.
package consumer

import helper "hccmf/internal/lint/testdata/src/errflow/helper"

// save pretends to persist and can fail.
func save() error { return nil }

// Use exercises every resolution and exemption path.
func Use() {
	save()         // want "save returns an error that is silently dropped"
	helper.Write() // want "helper.Write returns an error that is silently dropped"
	helper.Pure()
	_ = save()
	if err := save(); err != nil {
		_ = err
	}
	defer save()
	save() // lint:allow errflow fixture demonstrates a justified drop
	f := save
	f()
}
