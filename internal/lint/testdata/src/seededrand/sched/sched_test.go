package sched

import "math/rand"

// Tests are exempt: scratch randomness in a test does not touch the
// reproducibility of shipped runs.
func fuzzInput() int {
	return rand.Intn(100)
}
