package sched

import "math/rand"

// generator mimics a local generator type whose variable shadows the
// import name.
type generator struct{ state int }

// Intn is the local method the shadowed selector resolves to.
func (generator) Intn(n int) int { return n }

// Shadowed redeclares rand as a function-scope value: rand.Intn below is
// the local's method, not math/rand's global generator.
func Shadowed(seed int64, n int) int {
	src := rand.NewSource(seed)
	_ = src
	rand := generator{}
	return rand.Intn(n)
}
