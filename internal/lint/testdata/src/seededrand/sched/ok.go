package sched

import "math/rand"

// Seeded is the sanctioned pattern: an explicitly seeded generator
// threaded through from config. Constructors on the package are fine;
// methods on the instance are fine.
func Seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(n, func(i, j int) {})
	return r.Intn(n)
}
