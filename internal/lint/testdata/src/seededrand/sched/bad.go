// Package sched is a fixture for seededrand: library code drawing from
// math/rand's implicit global generator.
package sched

import "math/rand"

// Pick breaks bit-reproducibility three ways.
func Pick(n int) int {
	rand.Seed(42)                      // want "global rand.Seed"
	rand.Shuffle(n, func(i, j int) {}) // want "global rand.Shuffle"
	return rand.Intn(n)                // want "global rand.Intn"
}

// Weight uses the global float stream.
func Weight() float64 {
	return rand.Float64() // want "global rand.Float64"
}
