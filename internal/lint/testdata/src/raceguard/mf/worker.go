package mf

// sweepLike drains entries into the shared factors; launching it as a
// goroutine is the Hogwild pattern even though the declaration itself is
// innocent.
func sweepLike(f *Factors, entries []Rating, h HyperParams) {
	TrainEntries(f, entries, h)
}

// drain touches nothing shared.
func drain(ch chan int) {
	for range ch {
	}
}

// LaunchDirect hands the shared-factor updater straight to go.
func LaunchDirect(f *Factors, entries []Rating, h HyperParams) {
	go TrainEntries(f, entries, h) // want "shared-factor updater TrainEntries"
}

// LaunchWorker starts a named worker whose body calls the updater.
func LaunchWorker(f *Factors, entries []Rating, h HyperParams) {
	go sweepLike(f, entries, h) // want "goroutine worker sweepLike"
}

// LaunchDrain starts a worker that shares nothing; no diagnostic.
func LaunchDrain(ch chan int) {
	go drain(ch)
}

// LaunchPooled starts a worker declared in quarantined territory (its
// file references the race gate); the quarantine travels with the
// declaration.
func LaunchPooled(f *Factors, entries []Rating, h HyperParams) {
	go pooledWorker(f, entries, h)
}
