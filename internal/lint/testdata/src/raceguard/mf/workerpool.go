package mf

// pooledWorker is the persistent worker-pool sweep loop: lock-free factor
// updates are intentional here, gated on raceflag.Enabled in tests, which
// quarantines this file for raceguard.
func pooledWorker(f *Factors, entries []Rating, h HyperParams) {
	TrainEntries(f, entries, h)
}
