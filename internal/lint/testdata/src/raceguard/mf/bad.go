package mf

import "sync"

// Sweep writes a captured slice from goroutines with no synchronization
// and no quarantine marker.
func Sweep(shared []float32) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shared[w] = 1 // want "captured slice shared"
		}(w)
	}
	wg.Wait()
}

// Fan launches the shared-factor updater concurrently without declaring
// itself Hogwild.
func Fan(f *Factors, entries []Rating) {
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			TrainEntries(f, entries, HyperParams{}) // want "shared-factor updater TrainEntries"
		}()
	}
	wg.Wait()
}

// Deep writes through a captured struct field; the leftmost base decides.
func Deep(f *Factors) {
	go func() {
		f.P[0] = 0 // want "captured slice f"
	}()
}
