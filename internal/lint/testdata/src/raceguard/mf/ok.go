package mf

import "sync"

// Local writes only goroutine-local state; nothing is shared.
func Local() {
	go func() {
		buf := make([]float32, 8)
		buf[0] = 1
	}()
}

// Locked guards its shared write with a mutex; locked goroutine bodies
// are presumed synchronized.
func Locked(shared []float32, mu *sync.Mutex) {
	go func() {
		mu.Lock()
		defer mu.Unlock()
		shared[0] = 1
	}()
}

// Disjoint justifies a write that is exclusive by construction.
func Disjoint(sums []float64) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// lint:allow raceguard — each goroutine owns sums[w] exclusively; wg.Wait orders the reads.
			sums[w] = float64(w)
		}(w)
	}
	wg.Wait()
}
