package mf

import "sync"

// Hogwild is intentionally lock-free: races on hot rows are the
// algorithm. Tests gate these paths on raceflag.Enabled, which marks this
// file as quarantined territory for raceguard.
func Hogwild(f *Factors, entries []Rating, h HyperParams) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			TrainEntries(f, entries, h)
		}()
	}
	wg.Wait()
}
