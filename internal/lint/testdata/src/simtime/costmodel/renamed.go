package costmodel

import clock "time"

// Renamed imports do not hide the wall clock.
func Stamp() clock.Time {
	return clock.Now() // want "wall-clock time.Now"
}
