package costmodel

import "time"

// Test files may read the wall clock: the invariant protects reported
// timings, not test-runtime bookkeeping.
func testOnlyDeadline() time.Time {
	return time.Now().Add(time.Second)
}
