package costmodel

import "time"

// Defaulted shows the justified escape hatch: a production default behind
// an injection point, annotated so review sees exactly why it is safe.
func Defaulted(sleep func(time.Duration)) func(time.Duration) {
	if sleep == nil {
		// lint:allow simtime — real-execution default; simulated runs inject a virtual clock here.
		sleep = time.Sleep
	}
	return sleep
}
