package costmodel

import watch "hccmf/internal/obs"

// MintRenamed leaks the wall clock through a renamed import; references
// are as dangerous as calls.
func MintRenamed() func() float64 {
	clock := watch.WallClock // want "obs.WallClock mints a wall clock"
	return clock()
}
