// Package costmodel is a fixture: its name puts it in the simulated-
// platform set, so wall-clock reads must be flagged.
package costmodel

import (
	"time"
)

// Measure leaks the wall clock into a simulated-platform package.
func Measure() time.Duration {
	start := time.Now() // want "wall-clock time.Now"
	work()
	return time.Since(start) // want "wall-clock time.Since"
}

// Pace sleeps on the real clock.
func Pace(d time.Duration) {
	time.Sleep(d)  // want "wall-clock time.Sleep"
	<-time.Tick(d) // want "wall-clock time.Tick"
}

// Handoff hands the wall clock to an injection point; references are as
// dangerous as calls.
func Handoff() func(time.Duration) {
	return time.Sleep // want "wall-clock time.Sleep"
}

// Budget is fine: durations are units of simulated time, not clock reads.
func Budget() time.Duration {
	return 3 * time.Millisecond
}

func work() {}
