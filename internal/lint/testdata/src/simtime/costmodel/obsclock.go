package costmodel

import "hccmf/internal/obs"

// MintClock builds a wall-clock reader inside a simulated-platform
// package — exactly the leak the injected-observer design prevents.
func MintClock() func() float64 {
	return obs.WallClock() // want "obs.WallClock mints a wall clock"
}

// UseInjected is the sanctioned pattern: the observer arrives pre-wired
// with its clock, and the sim package only calls nil-safe methods on it.
func UseInjected(o *obs.Observer) {
	span := o.Span(obs.ProcReal, "w0", "ps", "pull")
	_ = span
}
