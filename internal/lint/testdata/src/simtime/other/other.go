// Package other is outside the simulated-platform set; wall-clock use is
// legal here (CLI mains time their own startup, loaders log progress).
package other

import "time"

// Uptime may read the real clock: this package's durations never reach a
// regenerated table.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}
