// Package hot is the hotalloc fixture: functions annotated lint:hotpath
// must contain no allocation-inducing constructs.
package hot

import "fmt"

type item struct{ id int }

// Scan is a clean hot kernel: amortized self-append into the caller's
// buffer and parameter-append on return.
//
// lint:hotpath
func Scan(buf []item, n int) []item {
	out := buf[:0]
	for i := 0; i < n; i++ {
		out = append(out, item{id: i})
	}
	return append(buf, out...)
}

// Bad trips every construct the analyzer polices.
//
// lint:hotpath
func Bad(n int) []item {
	tmp := make([]item, 0, n) // want "calls make"
	box := any(n)             // want "boxes a value into an interface"
	_ = box
	_ = interface{}(n) // want "boxes a value into an interface"
	fmt.Println(n)     // want "calls fmt.Println"
	go func() {        // want "spawns a goroutine closure"
		_ = n
	}()
	var other []item
	tmp = append(other, item{id: n}) // want "appends into a fresh slice"
	return tmp
}

// Cold is unannotated: the same constructs draw no findings.
func Cold(n int) []item {
	return make([]item, n)
}

// Allowed shows a justified cold branch inside a hot function.
//
// lint:hotpath
func Allowed(n int) []item {
	return make([]item, n) // lint:allow hotalloc fixture demonstrates a justified cold resize branch
}
