// Package pool is the goroutinepolicy fixture's cross-package worker:
// launching pool.Worker is the sanctioned persistent-pool shape.
package pool

// Worker drains its task channel until closed.
func Worker(tasks chan int) {
	for range tasks {
	}
}
