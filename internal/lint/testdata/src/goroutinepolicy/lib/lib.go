// Package lib is the goroutinepolicy fixture: goroutines in library code
// must be joined or be pool workers draining a channel.
package lib

import (
	"sync"

	pool "hccmf/internal/lint/testdata/src/goroutinepolicy/pool"
)

// Leak spawns a goroutine nobody observes.
func Leak() {
	go func() {}() // want "not provably joined"
}

// Joined waits on a WaitGroup.
func Joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

// Collected receives the goroutine's result.
func Collected() int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return <-ch
}

// Pooled launches a same-package worker that drains a channel.
func Pooled(tasks chan int) {
	go drain(tasks)
}

func drain(tasks chan int) {
	for range tasks {
	}
}

// CrossPooled launches a cross-package pool worker, resolved through the
// module index.
func CrossPooled(tasks chan int) {
	go pool.Worker(tasks)
}

// Fire is a justified fire-and-forget.
func Fire() {
	go func() {}() // lint:allow goroutinepolicy fixture demonstrates a justified fire-and-forget
}
