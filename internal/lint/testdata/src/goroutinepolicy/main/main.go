// Package main is exempt from goroutinepolicy: a daemon owns its own
// goroutine lifetimes.
package main

func main() {
	go func() {}()
	select {}
}
