// Package linttest drives lint analyzers over testdata fixtures the way
// golang.org/x/tools/go/analysis/analysistest does: fixture source marks
// each expected finding with a trailing comment
//
//	time.Now() // want "wall-clock"
//
// whose quoted (or backquoted) text is a regexp that must match a
// diagnostic reported on that line. Unmatched expectations and unexpected
// diagnostics both fail the test.
package linttest

import (
	"go/token"
	"regexp"
	"testing"

	"hccmf/internal/lint"
)

// wantRe extracts the expectation regexp from a fixture comment. Both
// `// want "..."` and `// want `+"`...`"+“ forms are accepted.
var wantRe = regexp.MustCompile("//\\s*want\\s+(?:\"([^\"]*)\"|`([^`]*)`)")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the single fixture package at dir (relative to the test's
// working directory), runs the analyzer over it, and checks the reported
// diagnostics against the fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	mod, err := lint.Load(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(mod.Pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", dir, len(mod.Pkgs))
	}
	check(t, a, mod, dir)
}

// RunTree loads every package under root (recursively, "root/..." style)
// into one module and runs the analyzer over all of them, so fixtures can
// exercise cross-package resolution: a helper package declaring the
// callee, a consumer package carrying the want comments.
func RunTree(t *testing.T, a *lint.Analyzer, root string) {
	t.Helper()
	mod, err := lint.Load(root + "/...")
	if err != nil {
		t.Fatalf("loading fixture tree %s: %v", root, err)
	}
	if len(mod.Pkgs) == 0 {
		t.Fatalf("fixture tree %s: no packages loaded", root)
	}
	check(t, a, mod, root)
}

func check(t *testing.T, a *lint.Analyzer, mod *lint.Module, dir string) {
	t.Helper()
	var wants []*expectation
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pkg.Fset.Position(c.Pos()), pat, err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	diags, err := lint.Run(mod, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	for _, d := range diags {
		if !claim(wants, d.Pos, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unhit expectation on the diagnostic's line whose
// pattern matches the message.
func claim(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}
