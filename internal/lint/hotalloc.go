package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// HotAlloc polices the 0 allocs/op discipline of the training and serving
// hot paths. A function opts in with a doc-comment annotation:
//
//	// scanRange scores items [lo,hi) ...
//	//
//	// lint:hotpath
//	func scanRange(...) []Item { ... }
//
// and the analyzer then flags every allocation-inducing construct in its
// body:
//
//   - `go func(){...}` closures (a closure + stack allocation per call —
//     the shape the persistent worker pools replaced)
//   - calls through the fmt package (boxing the arguments + formatting
//     buffers)
//   - make and new (fresh heap allocation; preallocate in setup instead)
//   - append that is not the amortized self-append `s = append(s, x)`
//     (or `return append(param, x)`, which hands growth to the caller)
//   - explicit interface boxing via any(...) / interface{}(...)
//
// The annotation documents the same contract the AllocsPerRun guard tests
// in internal/mf and internal/recommend enforce at runtime; the analyzer
// catches the regression at review time, on every build, without running
// a benchmark. Cold setup branches inside an annotated function carry a
// per-site `lint:allow hotalloc <reason>`. Test files are exempt.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flag allocation-inducing constructs (go closures, fmt, make/new, non-amortized append, " +
		"interface boxing) inside functions annotated // lint:hotpath",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		fmtName := ImportName(f, "fmt")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotBody(pass, f, fd, fmtName)
		}
	}
	return nil
}

// isHotpath reports the lint:hotpath doc annotation.
func isHotpath(fd *ast.FuncDecl) bool {
	return fd.Doc != nil && strings.Contains(fd.Doc.Text(), "lint:hotpath")
}

func checkHotBody(pass *Pass, f *ast.File, fd *ast.FuncDecl, fmtName string) {
	amortized := amortizedAppends(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if _, ok := n.Call.Fun.(*ast.FuncLit); ok {
				pass.ReportRangef(f, n,
					"hotpath %s spawns a goroutine closure (allocates per call); use a persistent worker pool",
					fd.Name.Name)
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				switch {
				case isBuiltinName(fun, "make") || isBuiltinName(fun, "new"):
					pass.ReportRangef(f, n,
						"hotpath %s calls %s (allocates); preallocate in setup and reuse",
						fd.Name.Name, fun.Name)
				case isBuiltinName(fun, "append") && !amortized[n]:
					pass.ReportRangef(f, n,
						"hotpath %s appends into a fresh slice; use the amortized s = append(s, ...) form over a preallocated buffer",
						fd.Name.Name)
				case isBuiltinName(fun, "any") && len(n.Args) == 1:
					pass.ReportRangef(f, n,
						"hotpath %s boxes a value into an interface; keep hot-path data concrete",
						fd.Name.Name)
				}
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok && fmtName != "" && id.Name == fmtName && (id.Obj == nil || id.Obj.Kind == ast.Pkg) {
					pass.ReportRangef(f, n,
						"hotpath %s calls fmt.%s (boxes arguments and allocates buffers); move formatting off the hot path",
						fd.Name.Name, fun.Sel.Name)
				}
			case *ast.InterfaceType:
				pass.ReportRangef(f, n,
					"hotpath %s boxes a value into an interface; keep hot-path data concrete",
					fd.Name.Name)
			}
		}
		return true
	})
}

// isBuiltinName reports whether the identifier names the given builtin
// and is not shadowed by a local declaration.
func isBuiltinName(id *ast.Ident, name string) bool {
	return id.Name == name && (id.Obj == nil || id.Obj.Kind == ast.Bad)
}

// amortizedAppends collects append calls in the two shapes that do not
// put a fresh backing array on the steady-state path: the classic
// `s = append(s, ...)` (including `s := append(s, ...)` re-slices) and
// `return append(param, ...)` where the base is one of the function's
// own slice parameters (the caller owns the buffer and its growth).
func amortizedAppends(fd *ast.FuncDecl) map[*ast.CallExpr]bool {
	params := map[string]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				params[name.Name] = true
			}
		}
	}
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				fun, ok := call.Fun.(*ast.Ident)
				if !ok || !isBuiltinName(fun, "append") {
					continue
				}
				lhs, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if base, ok := call.Args[0].(*ast.Ident); ok && base.Name == lhs.Name && (n.Tok == token.ASSIGN || n.Tok == token.DEFINE) {
					out[call] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				call, ok := res.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				fun, ok := call.Fun.(*ast.Ident)
				if !ok || !isBuiltinName(fun, "append") {
					continue
				}
				if base, ok := call.Args[0].(*ast.Ident); ok && params[base.Name] {
					out[call] = true
				}
			}
		}
		return true
	})
	return out
}
