package lint

import (
	"go/ast"
	"strings"
)

// sharedUpdaters are mf functions that write shared factor slices on
// behalf of the caller. Calling one from a goroutine is exactly the
// Hogwild pattern, so it is held to the same quarantine as a direct
// shared-slice write.
var sharedUpdaters = map[string]bool{
	"TrainEntries": true,
	"TrainEntry":   true,
}

// RaceGuard keeps Hogwild's intentional data races quarantined. In
// package mf it flags goroutine bodies that write captured (shared)
// slices by index, or that call a shared-factor updater, when nothing
// marks the race as intentional. A file or enclosing function that
// references raceflag — the package that gates those paths under the race
// detector — is the quarantine marker; a per-site "lint:allow raceguard"
// with a justification covers writes that are disjoint by construction
// rather than racy. Goroutine bodies that take a mutex are assumed
// synchronized. Purely syntactic: `go func(){...}` literals are inspected
// directly, and `go worker(...)` on a named same-package function follows
// one level into the worker's body (the persistent worker-pool pattern) —
// a worker that calls a shared-factor updater is held to the same
// quarantine unless its own file or doc references raceflag. The point is
// that every NEW concurrent write path in mf must either declare itself
// Hogwild (reference raceflag) or justify itself.
var RaceGuard = &Analyzer{
	Name: "raceguard",
	Doc: "flag unsynchronized shared-slice writes in mf goroutines outside " +
		"raceflag-referencing files/functions; Hogwild races stay quarantined",
	Run: runRaceGuard,
}

func runRaceGuard(pass *Pass) error {
	if pass.Pkg.Name != "mf" {
		return nil
	}
	// Index top-level functions (and their files) so `go worker(...)` can
	// follow the call one level into the worker's declaration.
	decls := map[string]*ast.FuncDecl{}
	declFile := map[string]*ast.File{}
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Body != nil {
				decls[fd.Name.Name] = fd
				declFile[fd.Name.Name] = f
			}
		}
	}
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) || fileReferencesRaceflag(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Doc != nil && strings.Contains(fd.Doc.Text(), "raceflag") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				switch fun := g.Call.Fun.(type) {
				case *ast.FuncLit:
					checkGoroutineBody(pass, f, fun)
				case *ast.Ident:
					checkGoroutineTarget(pass, f, g, fun, decls, declFile)
				}
				return true
			})
		}
	}
	return nil
}

// checkGoroutineTarget handles `go worker(...)` on a named function: the
// updater itself launched directly, or a same-package worker whose body
// calls one. The worker's own file or doc referencing raceflag quarantines
// it (the worker-pool files declare their Hogwild nature where the sweep
// loop lives).
func checkGoroutineTarget(pass *Pass, f *ast.File, g *ast.GoStmt, id *ast.Ident, decls map[string]*ast.FuncDecl, declFile map[string]*ast.File) {
	if sharedUpdaters[id.Name] {
		pass.Reportf(f, g.Pos(),
			"goroutine calls shared-factor updater %s; Hogwild paths must reference raceflag (file or function doc) to stay quarantined",
			id.Name)
		return
	}
	fd := decls[id.Name]
	if fd == nil {
		return
	}
	if df := declFile[id.Name]; df != nil && fileReferencesRaceflag(df) {
		return
	}
	if fd.Doc != nil && strings.Contains(fd.Doc.Text(), "raceflag") {
		return
	}
	calls := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if cid, ok := call.Fun.(*ast.Ident); ok && sharedUpdaters[cid.Name] {
				calls = cid.Name
				return false
			}
		}
		return calls == ""
	})
	if calls != "" {
		pass.Reportf(f, g.Pos(),
			"goroutine worker %s calls shared-factor updater %s; quarantine the worker behind raceflag or justify with lint:allow raceguard",
			id.Name, calls)
	}
}

// fileReferencesRaceflag reports whether the file imports raceflag, names
// it in an identifier, or discusses it in a comment. Any of the three
// marks the file's concurrency as deliberate Hogwild territory.
func fileReferencesRaceflag(f *ast.File) bool {
	if ImportName(f, "hccmf/internal/raceflag") != "" {
		return true
	}
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "raceflag" {
			found = true
			return false
		}
		return !found
	})
	if found {
		return true
	}
	for _, cg := range f.Comments {
		if strings.Contains(cg.Text(), "raceflag") {
			return true
		}
	}
	return false
}

// checkGoroutineBody flags shared writes inside one `go func(){...}` body.
func checkGoroutineBody(pass *Pass, f *ast.File, lit *ast.FuncLit) {
	// A goroutine that takes a lock is presumed to guard its writes.
	locked := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
			locked = true
			return false
		}
		return !locked
	})
	if locked {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				idx, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if base, captured := capturedBase(idx.X, lit); captured {
					pass.Reportf(f, idx.Pos(),
						"goroutine writes captured slice %s[...] without synchronization; quarantine behind raceflag or justify with lint:allow raceguard",
						base)
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && sharedUpdaters[id.Name] {
				pass.Reportf(f, n.Pos(),
					"goroutine calls shared-factor updater %s; Hogwild paths must reference raceflag (file or function doc) to stay quarantined",
					id.Name)
			}
		}
		return true
	})
}

// capturedBase resolves the leftmost identifier of a slice expression and
// reports whether it is declared outside the function literal (captured,
// hence shared between goroutines). Unresolvable identifiers — package
// level declarations or names from other files — count as captured.
func capturedBase(x ast.Expr, lit *ast.FuncLit) (string, bool) {
	for {
		switch e := x.(type) {
		case *ast.SelectorExpr:
			x = e.X
			continue
		case *ast.IndexExpr:
			x = e.X
			continue
		case *ast.ParenExpr:
			x = e.X
			continue
		case *ast.Ident:
			if e.Obj == nil {
				return e.Name, true
			}
			if d, ok := e.Obj.Decl.(ast.Node); ok {
				inside := d.Pos() >= lit.Pos() && d.End() <= lit.End()
				return e.Name, !inside
			}
			return e.Name, true
		default:
			return "", false
		}
	}
}
