package lint

import (
	"go/ast"
	"strings"
)

// sharedUpdaters are mf functions that write shared factor slices on
// behalf of the caller. Calling one from a goroutine is exactly the
// Hogwild pattern, so it is held to the same quarantine as a direct
// shared-slice write.
var sharedUpdaters = map[string]bool{
	"TrainEntries": true,
	"TrainEntry":   true,
}

// RaceGuard keeps Hogwild's intentional data races quarantined — now
// across the whole module, not just package mf. A goroutine that calls a
// shared-factor updater (TrainEntries/TrainEntry, unqualified inside mf
// or as mf.TrainEntries from any other package, resolved through the
// module's import index) is flagged unless something marks the race as
// intentional: the file or enclosing function references raceflag — the
// package that gates those paths under the race detector — or a per-site
// "lint:allow raceguard <reason>" covers a write that is disjoint by
// construction rather than racy. Inside package mf, goroutine closures
// that write captured (shared) slices by index are additionally flagged.
//
// Resolution is purely syntactic but module-aware: `go func(){...}`
// literals are inspected directly, and `go worker(...)` on a named
// function — same package through the package index, `pkg.Worker`
// across packages through the module index — follows one level into the
// worker's body. A worker that calls a shared-factor updater is held to
// the same quarantine unless its own file or doc references raceflag.
// The point is that every NEW concurrent write path to the shared
// factors, wherever it is launched from, must either declare itself
// Hogwild (reference raceflag) or justify itself.
var RaceGuard = &Analyzer{
	Name: "raceguard",
	Doc: "flag goroutines that reach shared-factor updaters (directly, via closures, or " +
		"through workers followed cross-package) outside raceflag-referencing files/functions",
	Run: runRaceGuard,
}

func runRaceGuard(pass *Pass) error {
	inMF := pass.Pkg.Name == "mf"
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) || fileReferencesRaceflag(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Doc != nil && strings.Contains(fd.Doc.Text(), "raceflag") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineBody(pass, f, lit, inMF)
					return true
				}
				checkGoroutineTarget(pass, f, g)
				return true
			})
		}
	}
	return nil
}

// checkGoroutineTarget handles `go worker(...)` on a named function: the
// updater itself launched directly, or a worker — resolved same-package
// or cross-package through the module index — whose body calls one. The
// worker's own file or doc referencing raceflag quarantines it (the
// worker-pool files declare their Hogwild nature where the sweep loop
// lives).
func checkGoroutineTarget(pass *Pass, f *ast.File, g *ast.GoStmt) {
	if name := updaterCallIn(pass.Module, pass.Pkg, f, g.Call); name != "" {
		pass.ReportRangef(f, g,
			"goroutine calls shared-factor updater %s; Hogwild paths must reference raceflag (file or function doc) to stay quarantined",
			name)
		return
	}
	ref := resolveGoTarget(pass, f, g)
	if ref == nil {
		return
	}
	if fileReferencesRaceflag(ref.File) {
		return
	}
	if ref.Decl.Doc != nil && strings.Contains(ref.Decl.Doc.Text(), "raceflag") {
		return
	}
	calls := ""
	ast.Inspect(ref.Decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name := updaterCallIn(pass.Module, ref.Pkg, ref.File, call); name != "" {
				calls = name
				return false
			}
		}
		return calls == ""
	})
	if calls != "" {
		pass.ReportRangef(f, g,
			"goroutine worker %s calls shared-factor updater %s; quarantine the worker behind raceflag or justify with lint:allow raceguard",
			workerLabel(pass, ref), calls)
	}
}

// resolveGoTarget resolves the function a go statement launches — a plain
// identifier through the package index, a pkg.Worker selector through the
// module index. Method values and shadowed names resolve to nil.
func resolveGoTarget(pass *Pass, f *ast.File, g *ast.GoStmt) *FuncRef {
	switch fun := g.Call.Fun.(type) {
	case *ast.Ident:
		if obj := fun.Obj; obj != nil && obj.Kind != ast.Fun && obj.Kind != ast.Bad {
			return nil
		}
		return pass.Pkg.Func(fun.Name)
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := id.Obj; obj != nil && obj.Kind != ast.Pkg && obj.Kind != ast.Bad {
			return nil
		}
		if p := pass.Module.ImportedPackage(f, id.Name); p != nil {
			return p.Func(fun.Sel.Name)
		}
	}
	return nil
}

// workerLabel renders the followed worker for a finding message,
// package-qualified when the go statement crossed a package boundary.
func workerLabel(pass *Pass, ref *FuncRef) string {
	if ref.Pkg == pass.Pkg {
		return ref.Decl.Name.Name
	}
	return ref.Pkg.Name + "." + ref.Decl.Name.Name
}

// updaterCallIn reports the shared-factor updater a call invokes, as seen
// from file f of package pkg: an unqualified TrainEntries/TrainEntry
// inside package mf itself, or a selector that resolves through f's
// imports to a loaded package named mf declaring the function. Returns ""
// for anything else (including locally shadowed names).
func updaterCallIn(mod *Module, pkg *Package, f *ast.File, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if pkg.Name != "mf" || !sharedUpdaters[fun.Name] {
			return ""
		}
		if obj := fun.Obj; obj != nil && obj.Kind != ast.Fun && obj.Kind != ast.Bad {
			return ""
		}
		return fun.Name
	case *ast.SelectorExpr:
		if !sharedUpdaters[fun.Sel.Name] {
			return ""
		}
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return ""
		}
		if obj := id.Obj; obj != nil && obj.Kind != ast.Pkg && obj.Kind != ast.Bad {
			return ""
		}
		if p := mod.ImportedPackage(f, id.Name); p != nil && p.Name == "mf" && p.Func(fun.Sel.Name) != nil {
			return id.Name + "." + fun.Sel.Name
		}
	}
	return ""
}

// fileReferencesRaceflag reports whether the file imports raceflag, names
// it in an identifier, or discusses it in a comment. Any of the three
// marks the file's concurrency as deliberate Hogwild territory.
func fileReferencesRaceflag(f *ast.File) bool {
	if ImportName(f, "hccmf/internal/raceflag") != "" {
		return true
	}
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "raceflag" {
			found = true
			return false
		}
		return !found
	})
	if found {
		return true
	}
	for _, cg := range f.Comments {
		if strings.Contains(cg.Text(), "raceflag") {
			return true
		}
	}
	return false
}

// checkGoroutineBody flags shared writes inside one `go func(){...}`
// body: updater calls from any package, captured-slice index writes only
// inside package mf (where the shared factor slices live).
func checkGoroutineBody(pass *Pass, f *ast.File, lit *ast.FuncLit, inMF bool) {
	// A goroutine that takes a lock is presumed to guard its writes.
	locked := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
			locked = true
			return false
		}
		return !locked
	})
	if locked {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if !inMF {
				return true
			}
			for _, lhs := range n.Lhs {
				idx, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if base, captured := capturedBase(idx.X, lit); captured {
					pass.Reportf(f, idx.Pos(),
						"goroutine writes captured slice %s[...] without synchronization; quarantine behind raceflag or justify with lint:allow raceguard",
						base)
				}
			}
		case *ast.CallExpr:
			if name := updaterCallIn(pass.Module, pass.Pkg, f, n); name != "" {
				pass.Reportf(f, n.Pos(),
					"goroutine calls shared-factor updater %s; Hogwild paths must reference raceflag (file or function doc) to stay quarantined",
					name)
			}
		}
		return true
	})
}

// capturedBase resolves the leftmost identifier of a slice expression and
// reports whether it is declared outside the function literal (captured,
// hence shared between goroutines). Unresolvable identifiers — package
// level declarations or names from other files — count as captured.
func capturedBase(x ast.Expr, lit *ast.FuncLit) (string, bool) {
	for {
		switch e := x.(type) {
		case *ast.SelectorExpr:
			x = e.X
			continue
		case *ast.IndexExpr:
			x = e.X
			continue
		case *ast.ParenExpr:
			x = e.X
			continue
		case *ast.Ident:
			if e.Obj == nil {
				return e.Name, true
			}
			if d, ok := e.Obj.Decl.(ast.Node); ok {
				inside := d.Pos() >= lit.Pos() && d.End() <= lit.End()
				return e.Name, !inside
			}
			return e.Name, true
		default:
			return "", false
		}
	}
}
