package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// ErrFlow flags statement-position calls whose callee returns an error
// that the caller silently drops:
//
//	dataset.WriteBinary(w, m)      // finding: error discarded
//	_ = dataset.WriteBinary(w, m)  // explicit discard, allowed
//	defer f.Close()                // defer is conventional, allowed
//
// The class of bug this polices is PR 6's silent binary→text fallback: an
// error return that nobody looked at turned a corrupted model file into
// quietly-wrong recommendations. Resolution is module-aware and purely
// syntactic: same-package calls resolve through the package function
// index, `pkg.Func(...)` calls resolve through the module's cross-package
// index, so every function this module itself declares is covered.
// Method calls and out-of-module callees are skipped — without go/types
// their result lists are unknowable.
//
// Example trees (examples/) are exempt: they trade rigor for brevity by
// design. Test files are exempt.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc: "flag silently dropped error returns of module functions in statement position; " +
		"handle the error or discard it explicitly with _ =",
	Run: runErrFlow,
}

func runErrFlow(pass *Pass) error {
	if dirHasElement(pass.Pkg.Dir, "examples") {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			ref := resolveCall(pass, f, call)
			if ref == nil || !returnsError(ref.Decl) {
				return true
			}
			pass.ReportRangef(f, stmt,
				"%s returns an error that is silently dropped; handle it or discard explicitly with _ =",
				calleeLabel(pass, ref))
			return true
		})
	}
	return nil
}

// resolveCall resolves a call expression to a function declared in this
// module: a plain identifier through the package index, a pkg.Func
// selector through the module's import-path index. Shadowed names and
// method calls resolve to nil.
func resolveCall(pass *Pass, f *ast.File, call *ast.CallExpr) *FuncRef {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj := fun.Obj; obj != nil && obj.Kind != ast.Fun && obj.Kind != ast.Bad {
			return nil // func-valued variable or other local shadow
		}
		return pass.Pkg.Func(fun.Name)
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := id.Obj; obj != nil && obj.Kind != ast.Pkg && obj.Kind != ast.Bad {
			return nil // method call on a local value
		}
		if p := pass.Module.ImportedPackage(f, id.Name); p != nil {
			return p.Func(fun.Sel.Name)
		}
	}
	return nil
}

// returnsError reports whether the declaration's result list includes a
// plain `error`.
func returnsError(fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		if id, ok := field.Type.(*ast.Ident); ok && id.Name == "error" {
			return true
		}
	}
	return false
}

// calleeLabel renders the resolved callee for a finding message,
// qualified by package when the call crossed a package boundary.
func calleeLabel(pass *Pass, ref *FuncRef) string {
	if ref.Pkg == pass.Pkg {
		return ref.Decl.Name.Name
	}
	return ref.Pkg.Name + "." + ref.Decl.Name.Name
}

// dirHasElement reports whether the slash-cleaned directory path contains
// the given path element.
func dirHasElement(dir, elem string) bool {
	for _, part := range strings.Split(filepath.ToSlash(dir), "/") {
		if part == elem {
			return true
		}
	}
	return false
}
