package lint_test

import (
	"testing"

	"hccmf/internal/lint"
	"hccmf/internal/lint/linttest"
)

func TestSimTime(t *testing.T) {
	linttest.Run(t, lint.SimTime, "testdata/src/simtime/costmodel")
}

func TestSimTimeIgnoresOtherPackages(t *testing.T) {
	linttest.Run(t, lint.SimTime, "testdata/src/simtime/other")
}

func TestSeededRand(t *testing.T) {
	linttest.Run(t, lint.SeededRand, "testdata/src/seededrand/sched")
}

func TestPanicPolicy(t *testing.T) {
	linttest.Run(t, lint.PanicPolicy, "testdata/src/panicpolicy/lib")
}

func TestPanicPolicyIgnoresMain(t *testing.T) {
	linttest.Run(t, lint.PanicPolicy, "testdata/src/panicpolicy/main")
}

func TestRaceGuard(t *testing.T) {
	linttest.Run(t, lint.RaceGuard, "testdata/src/raceguard/mf")
}

func TestRaceGuardCrossPackage(t *testing.T) {
	linttest.RunTree(t, lint.RaceGuard, "testdata/src/raceguardx")
}

func TestSeededRandSkipsShadowedImport(t *testing.T) {
	// shadow.go lives in the same fixture package as TestSeededRand's
	// files; the dedicated run here documents the shadow case on its own.
	linttest.Run(t, lint.SeededRand, "testdata/src/seededrand/sched")
}

func TestErrFlow(t *testing.T) {
	linttest.RunTree(t, lint.ErrFlow, "testdata/src/errflow")
}

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, lint.HotAlloc, "testdata/src/hotalloc/hot")
}

func TestGoroutinePolicy(t *testing.T) {
	linttest.RunTree(t, lint.GoroutinePolicy, "testdata/src/goroutinepolicy")
}

func TestNilObs(t *testing.T) {
	linttest.Run(t, lint.NilObs, "testdata/src/nilobs/obs")
}

func TestSchemaConst(t *testing.T) {
	linttest.RunTree(t, lint.SchemaConst, "testdata/src/schemaconst")
}
