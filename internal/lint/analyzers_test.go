package lint_test

import (
	"testing"

	"hccmf/internal/lint"
	"hccmf/internal/lint/linttest"
)

func TestSimTime(t *testing.T) {
	linttest.Run(t, lint.SimTime, "testdata/src/simtime/costmodel")
}

func TestSimTimeIgnoresOtherPackages(t *testing.T) {
	linttest.Run(t, lint.SimTime, "testdata/src/simtime/other")
}

func TestSeededRand(t *testing.T) {
	linttest.Run(t, lint.SeededRand, "testdata/src/seededrand/sched")
}

func TestPanicPolicy(t *testing.T) {
	linttest.Run(t, lint.PanicPolicy, "testdata/src/panicpolicy/lib")
}

func TestPanicPolicyIgnoresMain(t *testing.T) {
	linttest.Run(t, lint.PanicPolicy, "testdata/src/panicpolicy/main")
}

func TestRaceGuard(t *testing.T) {
	linttest.Run(t, lint.RaceGuard, "testdata/src/raceguard/mf")
}
