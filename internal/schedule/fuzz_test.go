package schedule

import (
	"math"
	"testing"
)

// FuzzResolve drives the re-solve entry point with arbitrary measurement
// vectors. The contract under fuzzing: Resolve either rejects the input
// with an error, or returns a share vector that is NaN-free, strictly
// positive, sums to 1, and predicts a makespan no worse than the current
// one. The seed corpus covers the interesting shapes by hand: zeros,
// single worker, all-equal, and an extreme spread.
func FuzzResolve(f *testing.F) {
	f.Add(float64(1), float64(1), float64(1), float64(1), uint8(4))      // all-equal
	f.Add(float64(1), float64(0), float64(1), float64(1), uint8(4))      // zero time
	f.Add(float64(3.5), float64(0), float64(0), float64(0), uint8(1))    // single worker
	f.Add(float64(1e-9), float64(1e9), float64(1), float64(1), uint8(4)) // extreme spread
	f.Add(math.NaN(), float64(1), float64(1), float64(1), uint8(3))      // NaN time
	f.Add(math.Inf(1), float64(1), float64(1), float64(1), uint8(2))     // Inf time
	f.Add(float64(-1), float64(1), float64(1), float64(1), uint8(3))     // negative time
	f.Add(float64(0.25), float64(0.5), float64(0.75), float64(1), uint8(4))
	f.Fuzz(func(t *testing.T, t0, t1, t2, t3 float64, n uint8) {
		p := int(n%4) + 1
		seconds := []float64{t0, t1, t2, t3}[:p]
		shares := make([]float64, p)
		for i := range shares {
			shares[i] = 1 / float64(p)
		}
		next, pred, err := Resolve(shares, seconds)
		if err != nil {
			if next != nil {
				t.Fatalf("error %v still returned shares %v", err, next)
			}
			return
		}
		if len(next) != p {
			t.Fatalf("%d shares for %d workers", len(next), p)
		}
		var sum float64
		for i, s := range next {
			if math.IsNaN(s) || math.IsInf(s, 0) || s <= 0 {
				t.Fatalf("share[%d] = %v from seconds %v", i, s, seconds)
			}
			sum += s
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("shares sum to %v from seconds %v", sum, seconds)
		}
		cur := 0.0
		for _, s := range seconds {
			cur = math.Max(cur, s)
		}
		if math.IsNaN(pred) || pred <= 0 || pred > cur*(1+1e-9) {
			t.Fatalf("predicted makespan %v vs current %v from seconds %v", pred, cur, seconds)
		}
	})
}
