// Drift study — the Ma & Rusu static-vs-dynamic crossover, reproduced on
// a closed-form throughput model so hccmf-sim can chart it and
// EXPERIMENTS.md can record it without a GPU in sight.
//
// The model: worker i starts at Rate0_i entries/second and drifts
// linearly to Rate0_i·Factor_i by the final epoch (Factor < 1 is a
// worker slowing down — thermal throttling, a co-tenant, a degrading
// link; Factor > 1 a worker warming up). One epoch's wall time under
// share vector x is max_i x_i/rate_i(e) — the bulk-synchronous barrier
// waits for the slowest worker. The static schedule keeps the DP0 split
// of the *initial* rates for the whole run, which is exactly what the
// paper's one-shot calibration does; the adaptive schedule feeds each
// epoch's times into the Rebalancer and pays RebalanceCost seconds for
// every re-shard it triggers.
//
// The crossover is the epoch where the adaptive schedule's cumulative
// time (re-shard costs included) first dips below the static schedule's:
// before it, adaptivity has only paid; after it, the drift has grown
// faster than the re-shard bill.

package schedule

import "fmt"

// DriftWorker describes one worker's throughput trajectory.
type DriftWorker struct {
	// Name labels the worker in reports.
	Name string
	// Rate0 is the initial throughput (entries/second, any consistent
	// unit — only ratios matter).
	Rate0 float64
	// Factor scales Rate0 by the final epoch; the rate interpolates
	// linearly in between. 1 means no drift.
	Factor float64
}

// DriftStudy configures one static-vs-adaptive comparison.
type DriftStudy struct {
	// Epochs is the run length.
	Epochs int
	// Workers is the heterogeneous device set.
	Workers []DriftWorker
	// Policy tunes the adaptive schedule (Policy Off degenerates the
	// adaptive run to the static one).
	Policy Config
	// RebalanceCost is the seconds one re-shard costs the adaptive run
	// (row migration, shard rebuild). The static run never pays it.
	RebalanceCost float64
}

// DriftResult is the study's outcome.
type DriftResult struct {
	// StaticTotal and AdaptiveTotal are the cumulative run times.
	StaticTotal, AdaptiveTotal float64
	// StaticEpochs and AdaptiveEpochs are the per-epoch times (the
	// adaptive entries include the re-shard cost of the preceding
	// boundary).
	StaticEpochs, AdaptiveEpochs []float64
	// Rebalances counts the adaptive run's re-shards.
	Rebalances int
	// CrossoverEpoch is the first epoch whose cumulative adaptive time is
	// below the cumulative static time, or -1 when the adaptive run never
	// catches up within the horizon.
	CrossoverEpoch int
}

// SimulateDrift runs the closed-form study. It is deterministic: the
// model has no noise, so the same study always yields the same result.
func SimulateDrift(study DriftStudy) (DriftResult, error) {
	p := len(study.Workers)
	if p == 0 {
		return DriftResult{}, fmt.Errorf("schedule: drift study has no workers")
	}
	if study.Epochs <= 0 {
		return DriftResult{}, fmt.Errorf("schedule: drift study epochs = %d", study.Epochs)
	}
	rates0 := make([]float64, p)
	for i, w := range study.Workers {
		if !isFinitePos(w.Rate0) {
			return DriftResult{}, fmt.Errorf("schedule: worker %q rate0 = %v", w.Name, w.Rate0)
		}
		if !isFinitePos(w.Factor) {
			return DriftResult{}, fmt.Errorf("schedule: worker %q drift factor = %v", w.Name, w.Factor)
		}
		rates0[i] = w.Rate0
	}
	// Both runs start from the calibrated split: DP0 on the initial rates.
	var sum float64
	for _, r := range rates0 {
		sum += r
	}
	static := make([]float64, p)
	for i, r := range rates0 {
		static[i] = r / sum
	}
	adaptive := append([]float64(nil), static...)

	res := DriftResult{CrossoverEpoch: -1}
	reb := New(study.Policy)
	loads := make([]WorkerLoad, p)
	for e := 0; e < study.Epochs; e++ {
		rates := driftRates(study, e)
		res.StaticEpochs = append(res.StaticEpochs, epochTime(static, rates))
		res.StaticTotal += res.StaticEpochs[e]

		at := epochTime(adaptive, rates)
		for i := range loads {
			loads[i] = WorkerLoad{
				Name:    study.Workers[i].Name,
				Share:   adaptive[i],
				Seconds: adaptive[i] / rates[i],
			}
		}
		if d := reb.Step(e, loads); d.Rebalance {
			copy(adaptive, d.Shares)
			at += study.RebalanceCost
			res.Rebalances++
		}
		res.AdaptiveEpochs = append(res.AdaptiveEpochs, at)
		res.AdaptiveTotal += at
		if res.CrossoverEpoch < 0 && res.AdaptiveTotal < res.StaticTotal {
			res.CrossoverEpoch = e
		}
	}
	return res, nil
}

// driftRates interpolates every worker's rate at epoch e.
func driftRates(study DriftStudy, e int) []float64 {
	frac := 0.0
	if study.Epochs > 1 {
		frac = float64(e) / float64(study.Epochs-1)
	}
	rates := make([]float64, len(study.Workers))
	for i, w := range study.Workers {
		rates[i] = w.Rate0 * (1 + (w.Factor-1)*frac)
	}
	return rates
}

// epochTime is the barrier time of one epoch: the slowest worker's
// share/rate.
func epochTime(shares, rates []float64) float64 {
	var worst float64
	for i := range shares {
		if t := shares[i] / rates[i]; t > worst {
			worst = t
		}
	}
	return worst
}
