package schedule

import (
	"math"
	"math/rand"
	"testing"
)

// TestResolveEqualWorkers pins the identity case: equal shares and equal
// times re-solve to the same split.
func TestResolveEqualWorkers(t *testing.T) {
	shares := []float64{0.25, 0.25, 0.25, 0.25}
	seconds := []float64{2, 2, 2, 2}
	next, pred, err := Resolve(shares, seconds)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range next {
		if math.Abs(s-0.25) > 1e-12 {
			t.Fatalf("share[%d] = %v, want 0.25", i, s)
		}
	}
	if math.Abs(pred-2) > 1e-12 {
		t.Fatalf("predicted makespan %v, want 2", pred)
	}
}

// TestResolveStraggler pins the straggler case: a worker twice as slow as
// its peers gives up half its share and the predicted makespan drops.
func TestResolveStraggler(t *testing.T) {
	shares := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	seconds := []float64{2, 1, 1} // worker 0 runs at half speed
	next, pred, err := Resolve(shares, seconds)
	if err != nil {
		t.Fatal(err)
	}
	// Rates are 1/6, 1/3, 1/3 → shares 1/5, 2/5, 2/5.
	want := []float64{0.2, 0.4, 0.4}
	for i := range next {
		if math.Abs(next[i]-want[i]) > 1e-12 {
			t.Fatalf("shares = %v, want %v", next, want)
		}
	}
	if wantPred := 1 / (1.0/6 + 1.0/3 + 1.0/3); math.Abs(pred-wantPred) > 1e-12 {
		t.Fatalf("predicted makespan %v, want %v", pred, wantPred)
	}
	if pred >= 2 {
		t.Fatalf("predicted makespan %v did not improve on current 2", pred)
	}
}

// TestResolveSingleWorker: one worker keeps everything and the makespan is
// its own time.
func TestResolveSingleWorker(t *testing.T) {
	next, pred, err := Resolve([]float64{1}, []float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(next) != 1 || next[0] != 1 {
		t.Fatalf("shares = %v, want [1]", next)
	}
	if math.Abs(pred-3.5) > 1e-12 {
		t.Fatalf("predicted makespan %v, want 3.5", pred)
	}
}

// TestResolveRejectsBadInputs: every malformed input is a descriptive
// error, never a NaN-laden share vector.
func TestResolveRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name    string
		shares  []float64
		seconds []float64
	}{
		{"empty", nil, nil},
		{"length mismatch", []float64{0.5, 0.5}, []float64{1}},
		{"zero seconds", []float64{0.5, 0.5}, []float64{1, 0}},
		{"negative seconds", []float64{0.5, 0.5}, []float64{1, -1}},
		{"nan seconds", []float64{0.5, 0.5}, []float64{1, math.NaN()}},
		{"inf seconds", []float64{0.5, 0.5}, []float64{1, math.Inf(1)}},
		{"zero share", []float64{0, 1}, []float64{1, 1}},
		{"shares do not sum to 1", []float64{0.5, 0.2}, []float64{1, 1}},
	}
	for _, tc := range cases {
		if _, _, err := Resolve(tc.shares, tc.seconds); err == nil {
			t.Errorf("%s: Resolve accepted shares=%v seconds=%v", tc.name, tc.shares, tc.seconds)
		}
	}
}

// TestResolveNeverIncreasesPredictedMakespan is the property the whole
// policy rests on: for any valid measurement, the re-solved split's
// predicted makespan 1/Σ(x_i/t_i) never exceeds the current makespan
// max_i t_i (Σx_i = 1 makes the harmonic combination a lower envelope).
// A re-solve can therefore only promise improvement, and the hysteresis
// gate decides whether the promise is worth a re-shard.
func TestResolveNeverIncreasesPredictedMakespan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		p := 1 + rng.Intn(8)
		shares := make([]float64, p)
		seconds := make([]float64, p)
		var sum float64
		for i := range shares {
			shares[i] = 1e-3 + rng.Float64()
			sum += shares[i]
			// Spread times over six orders of magnitude.
			seconds[i] = math.Pow(10, -3+6*rng.Float64())
		}
		for i := range shares {
			shares[i] /= sum
		}
		next, pred, err := Resolve(shares, seconds)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		cur := 0.0
		for _, s := range seconds {
			cur = math.Max(cur, s)
		}
		if pred > cur*(1+1e-12) {
			t.Fatalf("trial %d: predicted makespan %v exceeds current %v (shares=%v seconds=%v)",
				trial, pred, cur, shares, seconds)
		}
		// The prediction must be self-consistent: evaluating the new
		// shares at the measured rates reproduces it.
		if eval := PredictedMakespan(shares, seconds, next); math.Abs(eval-pred) > 1e-9*pred {
			t.Fatalf("trial %d: PredictedMakespan %v disagrees with Resolve %v", trial, eval, pred)
		}
		var nsum float64
		for i, s := range next {
			if !isFinitePos(s) {
				t.Fatalf("trial %d: share[%d] = %v", trial, i, s)
			}
			nsum += s
		}
		if math.Abs(nsum-1) > 1e-9 {
			t.Fatalf("trial %d: shares sum to %v", trial, nsum)
		}
	}
}

// TestRebalancerHysteresis: a mild imbalance below the threshold keeps the
// split; a straggler beyond it triggers exactly one re-shard and then
// cools down.
func TestRebalancerHysteresis(t *testing.T) {
	r := New(Config{Policy: Throughput, Hysteresis: 0.15, MinEpochs: 1})
	balanced := []WorkerLoad{
		{Name: "a", Share: 0.5, Seconds: 1.00},
		{Name: "b", Share: 0.5, Seconds: 1.05},
	}
	if d := r.Step(0, balanced); d.Rebalance {
		t.Fatalf("mild 5%% imbalance re-sharded: %+v", d)
	} else if d.Reason != "within hysteresis" {
		t.Fatalf("reason = %q, want within hysteresis", d.Reason)
	}
	straggler := []WorkerLoad{
		{Name: "a", Share: 0.5, Seconds: 3},
		{Name: "b", Share: 0.5, Seconds: 1},
	}
	d := r.Step(1, straggler)
	if !d.Rebalance {
		t.Fatalf("3x straggler kept the split: %+v", d)
	}
	if d.Shares[0] >= d.Shares[1] {
		t.Fatalf("straggler kept the bigger share: %v", d.Shares)
	}
	if d.Gain <= 0.15 {
		t.Fatalf("gain %v should exceed hysteresis", d.Gain)
	}
}

// TestRebalancerCooldown: MinEpochs spaces re-shards out even under a
// persistent trigger, and Force bypasses the gate.
func TestRebalancerCooldown(t *testing.T) {
	r := New(Config{Policy: Throughput, Hysteresis: 0.05, MinEpochs: 3})
	loads := []WorkerLoad{
		{Name: "a", Share: 0.5, Seconds: 3},
		{Name: "b", Share: 0.5, Seconds: 1},
	}
	if d := r.Step(0, loads); d.Rebalance || d.Reason != "cooldown" {
		t.Fatalf("epoch 0 inside warmup re-sharded: %+v", d)
	}
	if d := r.Step(2, loads); !d.Rebalance {
		t.Fatalf("epoch 2 past warmup kept the split: %+v", d)
	}
	if d := r.Step(3, loads); d.Rebalance || d.Reason != "cooldown" {
		t.Fatalf("epoch 3 inside cooldown re-sharded: %+v", d)
	}
	r.Force()
	if d := r.Step(4, loads); !d.Rebalance || d.Reason != "forced" {
		t.Fatalf("forced step kept the split: %+v", d)
	}
	// The force flag is one-shot.
	if d := r.Step(5, loads); d.Rebalance {
		t.Fatalf("force leaked into the next step: %+v", d)
	}
}

// TestRebalancerMeasureHook: an injected Measure overrides the observed
// seconds, the determinism seam the golden test builds on.
func TestRebalancerMeasureHook(t *testing.T) {
	r := New(Config{
		Policy: Throughput, MinEpochs: 1,
		Measure: func(epoch int, loads []WorkerLoad) []float64 {
			return []float64{4, 1} // contradicts the observed seconds below
		},
	})
	loads := []WorkerLoad{
		{Name: "a", Share: 0.5, Seconds: 1},
		{Name: "b", Share: 0.5, Seconds: 1},
	}
	d := r.Step(0, loads)
	if !d.Rebalance {
		t.Fatalf("hook measurement ignored: %+v", d)
	}
	if d.Shares[0] >= d.Shares[1] {
		t.Fatalf("hook straggler kept the bigger share: %v", d.Shares)
	}
}

// TestRebalancerMinShare: an extreme straggler is floored, not starved.
func TestRebalancerMinShare(t *testing.T) {
	r := New(Config{Policy: Throughput, MinEpochs: 1, MinShare: 0.05})
	loads := []WorkerLoad{
		{Name: "slow", Share: 0.5, Seconds: 1000},
		{Name: "fast", Share: 0.5, Seconds: 1},
	}
	d := r.Step(0, loads)
	if !d.Rebalance {
		t.Fatalf("extreme straggler kept the split: %+v", d)
	}
	if d.Shares[0] < 0.05-1e-9 {
		t.Fatalf("straggler starved below the floor: %v", d.Shares)
	}
}

// TestNilRebalancer: Policy Off yields a nil rebalancer whose methods are
// inert — the static path costs one nil check.
func TestNilRebalancer(t *testing.T) {
	r := New(Config{})
	if r != nil {
		t.Fatal("Off policy built a rebalancer")
	}
	r.Force()
	if d := r.Step(0, nil); d.Rebalance || d.Reason != "off" {
		t.Fatalf("nil rebalancer decided %+v", d)
	}
}

// TestSimulateDriftCrossover reproduces the Ma & Rusu shape: under
// throughput drift the adaptive schedule pays re-shard costs early, then
// overtakes the static split and finishes the run faster.
func TestSimulateDriftCrossover(t *testing.T) {
	res, err := SimulateDrift(DriftStudy{
		Epochs: 30,
		Workers: []DriftWorker{
			{Name: "gpu0", Rate0: 8, Factor: 0.25}, // throttles to a quarter
			{Name: "gpu1", Rate0: 8, Factor: 1},
			{Name: "cpu0", Rate0: 2, Factor: 1},
		},
		Policy:        Config{Policy: Throughput, Hysteresis: 0.10, MinEpochs: 2},
		RebalanceCost: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalances == 0 {
		t.Fatal("drift never triggered a re-shard")
	}
	if res.AdaptiveTotal >= res.StaticTotal {
		t.Fatalf("adaptive %v did not beat static %v", res.AdaptiveTotal, res.StaticTotal)
	}
	if res.CrossoverEpoch < 0 {
		t.Fatal("no crossover epoch recorded")
	}
	// Determinism: the closed-form model has no noise.
	again, err := SimulateDrift(DriftStudy{
		Epochs: 30,
		Workers: []DriftWorker{
			{Name: "gpu0", Rate0: 8, Factor: 0.25},
			{Name: "gpu1", Rate0: 8, Factor: 1},
			{Name: "cpu0", Rate0: 2, Factor: 1},
		},
		Policy:        Config{Policy: Throughput, Hysteresis: 0.10, MinEpochs: 2},
		RebalanceCost: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.AdaptiveTotal != res.AdaptiveTotal || again.CrossoverEpoch != res.CrossoverEpoch {
		t.Fatalf("drift study not deterministic: %+v vs %+v", res, again)
	}
}

// TestSimulateDriftNoDrift: with stable rates the adaptive run never
// re-shards and matches the static run exactly.
func TestSimulateDriftNoDrift(t *testing.T) {
	res, err := SimulateDrift(DriftStudy{
		Epochs: 10,
		Workers: []DriftWorker{
			{Name: "a", Rate0: 4, Factor: 1},
			{Name: "b", Rate0: 1, Factor: 1},
		},
		Policy:        Config{Policy: Throughput},
		RebalanceCost: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalances != 0 {
		t.Fatalf("stable rates triggered %d re-shards", res.Rebalances)
	}
	if res.AdaptiveTotal != res.StaticTotal {
		t.Fatalf("adaptive %v != static %v without drift", res.AdaptiveTotal, res.StaticTotal)
	}
}
