// Package schedule closes the loop from observed per-worker throughput
// back into the data partition. The paper computes its DP0/DP1/DP2 split
// once from calibrated device rates and never revisits it; Ma & Rusu's
// heterogeneous CPU+GPU SGD study (PAPERS.md) shows any static split loses
// to dynamic scheduling once device throughput drifts — a straggling
// worker, a post-eviction hull, a thermal-throttled GPU. This package is
// the dynamic half: an epoch-boundary rebalancer that turns measured
// per-worker epoch seconds into a fresh share vector via the same
// proportional math DP1 uses, guarded by hysteresis so a healthy cluster
// never re-shards on noise.
//
// The package is pure: no clocks, no goroutines, no I/O. Measurements
// come in as plain float64 seconds (whatever clock the caller's observer
// was built with — wall for real runs, virtual for simulations, an
// injected Measure hook for byte-reproducible golden runs), and decisions
// come out as a share vector. Determinism therefore reduces to the
// inputs: the same measured seconds always produce the same shares.
package schedule

import (
	"fmt"
	"math"
)

// Policy selects the rebalancing behaviour.
type Policy int

const (
	// Off disables rebalancing: the planner's static split holds for the
	// whole run (the paper's behaviour).
	Off Policy = iota
	// Throughput re-solves the split at every epoch boundary from each
	// worker's effective throughput (share/seconds), re-sharding when the
	// predicted makespan gain exceeds the hysteresis threshold.
	Throughput
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Off:
		return "off"
	case Throughput:
		return "throughput"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Defaults for Config's zero-valued knobs.
const (
	// DefaultHysteresis is the predicted relative makespan gain below
	// which the current split is kept. 15% absorbs scheduler jitter and
	// cache-warmth noise on a shared host while still reacting to a real
	// straggler (a 2× slowdown of one of four equal workers predicts a
	// ~27% gain) within one epoch.
	DefaultHysteresis = 0.15
	// DefaultMinEpochs is the minimum number of epochs between re-shards.
	// Two epochs of observation let the post-reshard measurement settle
	// (the first epoch after a re-shard pays one-off cache misses).
	DefaultMinEpochs = 2
	// DefaultMinShare floors every worker's share so no worker is starved
	// to an empty row range (the ps runtime requires RowLo < RowHi).
	DefaultMinShare = 0.01
)

// WorkerLoad is one worker's observed load for one epoch, fed to the
// rebalancer by the runtime at the sync barrier.
type WorkerLoad struct {
	// Name identifies the worker in traces and Measure hooks.
	Name string
	// Share is the worker's current fraction of the training data.
	Share float64
	// Updates is the number of rating entries the worker processed this
	// epoch (its shard size — known from the assignment, not measured).
	Updates int64
	// Seconds is the worker's measured epoch time on the caller's clock:
	// pull + compute + push, the span the worker spends off the barrier.
	Seconds float64
}

// MeasureFunc overrides the measured per-worker seconds; it receives the
// epoch and the loads (whose Seconds carry the runtime's measurement) and
// returns the seconds the re-solve should use, one per load. Golden tests
// and simulations inject deterministic drift models here; production runs
// leave it nil and use the observed spans.
type MeasureFunc func(epoch int, loads []WorkerLoad) []float64

// Config tunes the rebalancer. The zero value is Policy Off; a
// Policy-Throughput config with zero knobs gets the documented defaults.
type Config struct {
	// Policy selects static (Off) or adaptive (Throughput) scheduling.
	Policy Policy
	// Hysteresis is the predicted relative makespan gain that must be
	// exceeded before a re-shard happens (0 → DefaultHysteresis). A
	// re-shard moves factor rows and rebuilds shards, so it must promise
	// more than it costs.
	Hysteresis float64
	// MinEpochs is the minimum number of epochs between re-shards
	// (0 → DefaultMinEpochs); it also delays the first re-shard so at
	// least that many epochs of measurement exist.
	MinEpochs int
	// MinShare floors every worker's share (0 → DefaultMinShare).
	MinShare float64
	// Measure, when non-nil, replaces the observed seconds (see
	// MeasureFunc).
	Measure MeasureFunc
}

// Enabled reports whether the config asks for rebalancing at all.
func (c Config) Enabled() bool { return c.Policy != Off }

func (c Config) hysteresis() float64 {
	if c.Hysteresis > 0 {
		return c.Hysteresis
	}
	return DefaultHysteresis
}

func (c Config) minEpochs() int {
	if c.MinEpochs > 0 {
		return c.MinEpochs
	}
	return DefaultMinEpochs
}

func (c Config) minShare() float64 {
	if c.MinShare > 0 {
		return c.MinShare
	}
	return DefaultMinShare
}

// Decision is the outcome of one rebalancer step.
type Decision struct {
	// Rebalance reports whether the runtime should re-shard now.
	Rebalance bool
	// Shares is the new share vector when Rebalance is true (nil
	// otherwise). It sums to 1 and respects the MinShare floor.
	Shares []float64
	// CurrentMakespan is the slowest worker's measured seconds.
	CurrentMakespan float64
	// PredictedMakespan is the equalized epoch time the new shares
	// predict (every worker finishing together at its measured rate).
	PredictedMakespan float64
	// Gain is the predicted relative makespan reduction,
	// 1 − Predicted/Current; the hysteresis threshold gates on it.
	Gain float64
	// Reason explains a kept split ("off", "cooldown", "within
	// hysteresis", a measurement error) or records "rebalance"/"forced".
	Reason string
}

// Rebalancer holds the per-run state of the adaptive policy: the cooldown
// clock and the post-eviction force flag. Shares travel in and out of
// Step on every call (evictions change the worker roster mid-run, so the
// rebalancer never caches the assignment).
type Rebalancer struct {
	cfg   Config
	last  int // epoch of the last re-shard, -1 before the first
	force bool
}

// New builds a rebalancer for the config. Returns nil when the policy is
// Off — the runtime treats a nil rebalancer as "never rebalance", so the
// static path stays branch-free.
func New(cfg Config) *Rebalancer {
	if !cfg.Enabled() {
		return nil
	}
	return &Rebalancer{cfg: cfg, last: -1}
}

// Force makes the next Step bypass the hysteresis and cooldown gates (it
// still requires valid measurements). The eviction path calls it: an heir
// that just absorbed a dead worker's rows is imbalanced by construction,
// and waiting out a cooldown would train lopsided epochs for no reason.
// No-op on nil.
func (r *Rebalancer) Force() {
	if r == nil {
		return
	}
	r.force = true
}

// Step consumes one epoch's loads and decides whether to re-shard.
// epoch is 0-based. No-op (Reason "off") on a nil rebalancer.
func (r *Rebalancer) Step(epoch int, loads []WorkerLoad) Decision {
	if r == nil {
		return Decision{Reason: "off"}
	}
	shares := make([]float64, len(loads))
	seconds := make([]float64, len(loads))
	for i, l := range loads {
		shares[i] = l.Share
		seconds[i] = l.Seconds
	}
	if r.cfg.Measure != nil {
		seconds = r.cfg.Measure(epoch, loads)
		if len(seconds) != len(loads) {
			return Decision{Reason: fmt.Sprintf("measure returned %d seconds for %d workers", len(seconds), len(loads))}
		}
	}
	next, pred, err := resolve(shares, seconds, r.cfg.minShare())
	if err != nil {
		return Decision{Reason: err.Error()}
	}
	cur := maxOf(seconds)
	d := Decision{
		Shares:            next,
		CurrentMakespan:   cur,
		PredictedMakespan: pred,
		Gain:              1 - pred/cur,
	}
	switch {
	case r.force:
		d.Rebalance = true
		d.Reason = "forced"
	case epoch-r.last < r.cfg.minEpochs():
		d.Shares = nil
		d.Reason = "cooldown"
	case d.Gain <= r.cfg.hysteresis():
		d.Shares = nil
		d.Reason = "within hysteresis"
	default:
		d.Rebalance = true
		d.Reason = "rebalance"
	}
	if d.Rebalance {
		r.last = epoch
		r.force = false
	}
	return d
}

// Resolve is the pure re-solve entry point: given the current share
// vector and each worker's measured seconds for it, it returns the share
// vector that equalizes finish times at the measured effective rates
// (share'_i ∝ share_i/t_i — exactly DP0 applied to the observed rates)
// and the makespan that split predicts, 1/Σ(share_i/t_i).
//
// Because Σ share_i = 1, the predicted makespan is a weighted harmonic
// combination of the measured times and can never exceed max_i t_i: one
// re-solve step never increases the predicted makespan (the property test
// pins this). Iterated per epoch the split converges to the equal-finish
// split even when workers carry fixed per-epoch overheads that a single
// proportional solve cannot see.
//
// Inputs must be finite and positive and the shares must sum to ~1; a
// violation returns a descriptive error and no shares. MinShare flooring
// is the caller's concern (Config.MinShare); Resolve itself is exact.
func Resolve(shares, seconds []float64) ([]float64, float64, error) {
	return resolve(shares, seconds, 0)
}

// resolve implements Resolve with an optional share floor: every output
// share is raised to at least minShare (then renormalised), keeping each
// worker schedulable.
func resolve(shares, seconds []float64, minShare float64) ([]float64, float64, error) {
	p := len(shares)
	if p == 0 {
		return nil, 0, fmt.Errorf("schedule: no workers")
	}
	if len(seconds) != p {
		return nil, 0, fmt.Errorf("schedule: %d seconds for %d workers", len(seconds), p)
	}
	var shareSum float64
	for i := 0; i < p; i++ {
		if !isFinitePos(shares[i]) {
			return nil, 0, fmt.Errorf("schedule: share[%d] = %v, must be finite and positive", i, shares[i])
		}
		if !isFinitePos(seconds[i]) {
			return nil, 0, fmt.Errorf("schedule: seconds[%d] = %v, must be finite and positive", i, seconds[i])
		}
		shareSum += shares[i]
	}
	if math.Abs(shareSum-1) > 1e-6 {
		return nil, 0, fmt.Errorf("schedule: shares sum to %v, want 1", shareSum)
	}
	// Effective rate of worker i is share_i/t_i (fraction of the data per
	// second). The equalizing split gives each worker its rate's fraction
	// of the total, and every worker then takes 1/Σrates seconds.
	rates := make([]float64, p)
	var rateSum float64
	for i := 0; i < p; i++ {
		rates[i] = shares[i] / seconds[i]
		rateSum += rates[i]
	}
	pred := 1 / rateSum
	if !isFinitePos(rateSum) || !isFinitePos(pred) {
		// Inputs at the float range edges (subnormal rates, near-max
		// seconds) can push the harmonic sum over a cliff; reject rather
		// than emit shares whose prediction is meaningless.
		return nil, 0, fmt.Errorf("schedule: degenerate rate sum %v", rateSum)
	}
	next := make([]float64, p)
	for i := 0; i < p; i++ {
		next[i] = rates[i] / rateSum
	}
	if minShare > 0 {
		// Never floor past feasibility: p floors must leave room for the
		// fast workers' remainder.
		if lim := 1 / float64(2*p); minShare > lim {
			minShare = lim
		}
		// Waterfill: floored workers hold exactly minShare and the rest
		// scale to the remaining mass. Scaling can push another worker
		// under the floor, so iterate; the floored set only grows, so p
		// rounds suffice.
		for iter := 0; iter < p; iter++ {
			var flooredTotal, freeSum float64
			anyBelow := false
			for _, s := range next {
				if s <= minShare {
					flooredTotal += minShare
					anyBelow = anyBelow || s < minShare
				} else {
					freeSum += s
				}
			}
			if !anyBelow || freeSum == 0 {
				break
			}
			scale := (1 - flooredTotal) / freeSum
			for i := range next {
				if next[i] <= minShare {
					next[i] = minShare
				} else {
					next[i] *= scale
				}
			}
		}
	}
	return next, pred, nil
}

// PredictedMakespan evaluates a candidate share vector against measured
// (shares, seconds): worker i's predicted time is seconds_i scaled by
// next_i/shares_i, and the makespan is the slowest worker's.
func PredictedMakespan(shares, seconds, next []float64) float64 {
	var worst float64
	for i := range next {
		if t := seconds[i] * next[i] / shares[i]; t > worst {
			worst = t
		}
	}
	return worst
}

func isFinitePos(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

func maxOf(v []float64) float64 {
	worst := math.Inf(-1)
	for _, x := range v {
		if x > worst {
			worst = x
		}
	}
	return worst
}
