package recommend

import (
	"sort"
	"testing"

	"hccmf/internal/sparse"
)

// naiveTopN is the oracle: score every unseen item, full-sort by the
// documented order (descending score, ascending ID on ties), take the
// first n. The heap-based TopN and the Service paths must match it
// exactly on every randomized model.
func naiveTopN(model Scorer, seen *seenSet, u int32, items, n int) []Item {
	all := make([]Item, 0, items)
	for i := 0; i < items; i++ {
		if seen.has(u, int32(i)) {
			continue
		}
		all = append(all, Item{ID: int32(i), Score: model.Predict(u, int32(i))})
	}
	sort.Slice(all, func(a, b int) bool { return weaker(all[b], all[a]) })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

func equalItems(a, b []Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTopNMatchesNaiveReference drives randomized models — including
// heavily quantized scores (many duplicates) and users with every item
// seen — through TopN, TopNInto, Service.TopNInto and Service.TopNBatch,
// comparing each against the full-sort oracle.
func TestTopNMatchesNaiveReference(t *testing.T) {
	rng := sparse.NewRand(77)
	for trial := 0; trial < 30; trial++ {
		users := 2 + rng.Intn(6)
		items := 1 + rng.Intn(60)
		// Quantize scores coarsely so duplicate scores are the norm, not
		// the exception: levels ∈ {0..3} with ~15 items per level.
		levels := 1 + rng.Intn(4)
		s := newTable(users, items, func(u, i int) float32 {
			return float32(int(rng.Uint64() % uint64(levels)))
		})
		r, err := New(s, users, items)
		if err != nil {
			t.Fatal(err)
		}
		svc, err := NewService(s, users, items, ServiceConfig{Workers: 3, Shards: 1 + rng.Intn(5), MaxN: items + 2})
		if err != nil {
			t.Fatal(err)
		}
		// Random seen interactions; user 0 of every trial has seen
		// everything, so its top-N must be empty.
		train := sparse.NewCOO(users, items, 0)
		for c := 0; c < users*items/3; c++ {
			train.Add(int32(rng.Intn(users)), int32(rng.Intn(items)), 1)
		}
		for i := 0; i < items; i++ {
			train.Add(0, int32(i), 1)
		}
		if err := r.MarkSeen(train); err != nil {
			t.Fatal(err)
		}
		if err := svc.MarkSeen(train); err != nil {
			t.Fatal(err)
		}

		n := 1 + rng.Intn(items+2)
		allUsers := make([]int32, users)
		bufs := make([][]Item, users)
		for u := range allUsers {
			allUsers[u] = int32(u)
			bufs[u] = make([]Item, 0, n)
		}
		if err := svc.TopNBatch(allUsers, n, bufs); err != nil {
			t.Fatal(err)
		}
		svcBuf := make([]Item, 0, n)
		for u := 0; u < users; u++ {
			want := naiveTopN(s, &r.seen, int32(u), items, n)
			got, err := r.TopN(int32(u), n)
			if err != nil {
				t.Fatal(err)
			}
			if !equalItems(got, want) {
				t.Fatalf("trial %d user %d n=%d: TopN %v != oracle %v", trial, u, n, got, want)
			}
			if u == 0 && len(got) != 0 {
				t.Fatalf("trial %d: all-seen user got items %v", trial, got)
			}
			sgot, err := svc.TopNInto(int32(u), n, svcBuf)
			if err != nil {
				t.Fatal(err)
			}
			if !equalItems(sgot, want) {
				t.Fatalf("trial %d user %d n=%d: Service.TopNInto %v != oracle %v", trial, u, n, sgot, want)
			}
			if !equalItems(bufs[u], want) {
				t.Fatalf("trial %d user %d n=%d: Service.TopNBatch %v != oracle %v", trial, u, n, bufs[u], want)
			}
		}
		svc.Close()
	}
}
