package recommend

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"hccmf/internal/mf"
	"hccmf/internal/sparse"
)

func testService(t *testing.T, users, items, k int, cfg ServiceConfig) (*Service, *mf.Factors) {
	t.Helper()
	f := mf.NewFactorsInit(users, items, k, 3.5, sparse.NewRand(11))
	svc, err := NewService(f, users, items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc, f
}

func TestServiceValidation(t *testing.T) {
	svc, _ := testService(t, 10, 20, 4, ServiceConfig{Workers: 2, MaxN: 5})
	if _, err := NewService(nil, 1, 1, ServiceConfig{}); err == nil {
		t.Fatal("nil model accepted")
	}
	buf := make([]Item, 0, 5)
	if _, err := svc.TopNInto(-1, 3, buf); err == nil {
		t.Fatal("negative user accepted")
	}
	if _, err := svc.TopNInto(10, 3, buf); err == nil {
		t.Fatal("out-of-range user accepted")
	}
	if _, err := svc.TopNInto(0, 0, buf); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := svc.TopNInto(0, 6, buf); err == nil {
		t.Fatal("n beyond MaxN accepted")
	}
	if err := svc.TopNBatch([]int32{0, 99}, 3, make([][]Item, 2)); err == nil {
		t.Fatal("batch with bad user accepted")
	}
	if err := svc.TopNBatch([]int32{0, 1}, 3, make([][]Item, 1)); err == nil {
		t.Fatal("batch with short buffer list accepted")
	}
	if err := svc.Reload(nil, 10, 20); err == nil {
		t.Fatal("nil reload accepted")
	}
	if err := svc.Reload(svc.model.Load().s, 11, 20); err == nil {
		t.Fatal("dim-mismatched reload accepted")
	}
}

// TestServiceMatchesRecommender: the sharded pool path must return exactly
// what the single-threaded Recommender returns, for several shard counts.
func TestServiceMatchesRecommender(t *testing.T) {
	const users, items, k = 40, 123, 8
	f := mf.NewFactorsInit(users, items, k, 3.5, sparse.NewRand(21))
	train := sparse.NewCOO(users, items, 0)
	rng := sparse.NewRand(22)
	for c := 0; c < 300; c++ {
		train.Add(int32(rng.Intn(users)), int32(rng.Intn(items)), 1)
	}
	ref, _ := New(f, users, items)
	if err := ref.MarkSeen(train); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 7, 16} {
		svc, err := NewService(f, users, items, ServiceConfig{Workers: 3, Shards: shards, MaxN: 20})
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.MarkSeen(train); err != nil {
			t.Fatal(err)
		}
		buf := make([]Item, 0, 10)
		for u := int32(0); u < users; u++ {
			want, err := ref.TopN(u, 10)
			if err != nil {
				t.Fatal(err)
			}
			got, err := svc.TopNInto(u, 10, buf)
			if err != nil {
				t.Fatal(err)
			}
			if !equalItems(got, want) {
				t.Fatalf("shards=%d user %d: service %v != recommender %v", shards, u, got, want)
			}
		}
		svc.Close()
	}
}

// TestServiceReloadBitIdentical is the regression test the serving layer
// is pinned by: a no-op reload (same bytes round-tripped through the model
// persistence format) must leave every score bit-identical.
func TestServiceReloadBitIdentical(t *testing.T) {
	const users, items, k, n = 30, 80, 8, 10
	svc, f := testService(t, users, items, k, ServiceConfig{Workers: 2, Shards: 3, MaxN: n})

	before := make([][]Item, users)
	buf := make([]Item, 0, n)
	for u := int32(0); u < users; u++ {
		got, err := svc.TopNInto(u, n, buf)
		if err != nil {
			t.Fatal(err)
		}
		before[u] = append([]Item(nil), got...)
	}

	// Round-trip the model through WriteFactors/ReadFactors — exactly what
	// the daemon's /reload does with the file on disk.
	var disk bytes.Buffer
	if err := mf.WriteFactors(&disk, f); err != nil {
		t.Fatal(err)
	}
	reloaded, err := mf.ReadFactors(&disk)
	if err != nil {
		t.Fatal(err)
	}
	gen := svc.Generation()
	if err := svc.Reload(reloaded, reloaded.M, reloaded.N); err != nil {
		t.Fatal(err)
	}
	if svc.Generation() != gen+1 {
		t.Fatalf("generation %d after reload, want %d", svc.Generation(), gen+1)
	}

	for u := int32(0); u < users; u++ {
		got, err := svc.TopNInto(u, n, buf)
		if err != nil {
			t.Fatal(err)
		}
		for idx := range before[u] {
			if got[idx].ID != before[u][idx].ID ||
				math.Float32bits(got[idx].Score) != math.Float32bits(before[u][idx].Score) {
				t.Fatalf("user %d rank %d: %+v after no-op reload, want bit-identical %+v",
					u, idx, got[idx], before[u][idx])
			}
		}
	}
}

// TestServiceConcurrentQueriesAndReload exercises the request path under
// -race: concurrent single and batch queries interleaved with reloads and
// a correctness check that every response comes entirely from one of the
// two models (no torn reads across the atomic swap).
func TestServiceConcurrentQueriesAndReload(t *testing.T) {
	const users, items, k, n = 20, 60, 4, 5
	svc, f := testService(t, users, items, k, ServiceConfig{Workers: 4, Shards: 2, MaxN: n})
	f2 := f.Clone()
	for i := range f2.P {
		f2.P[i] *= 2
	}

	ref1, _ := New(f, users, items)
	ref2, _ := New(f2, users, items)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]Item, 0, n)
			usersBatch := []int32{1, 3, 5}
			bufs := [][]Item{make([]Item, 0, n), make([]Item, 0, n), make([]Item, 0, n)}
			for iter := 0; iter < 200; iter++ {
				u := int32((g*7 + iter) % users)
				got, err := svc.TopNInto(u, n, buf)
				if err != nil {
					t.Error(err)
					return
				}
				w1, _ := ref1.TopN(u, n)
				w2, _ := ref2.TopN(u, n)
				if !equalItems(got, w1) && !equalItems(got, w2) {
					t.Errorf("user %d: response %v matches neither model (%v / %v)", u, got, w1, w2)
					return
				}
				if err := svc.TopNBatch(usersBatch, n, bufs); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < 100; iter++ {
			m := f
			if iter%2 == 0 {
				m = f2
			}
			if err := svc.Reload(m, users, items); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}
