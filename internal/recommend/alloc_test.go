package recommend

import (
	"runtime/debug"
	"testing"

	"hccmf/internal/mf"
	"hccmf/internal/raceflag"
	"hccmf/internal/sparse"
)

// Steady-state allocation guards for the serving hot path, the same
// discipline internal/mf/alloc_test.go applies to training: after warm-up
// (pool construction, sync.Pool fills), scoring a request must not
// allocate at all. The race detector changes allocation behaviour, so
// these run only in normal builds.

func skipAllocGuardUnderRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("allocation guards measure normal builds; -race changes allocation behaviour")
	}
}

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	// GC off for the window: a collection mid-measurement drains the
	// sync.Pool and the runtime's parked-goroutine caches, charging one-time
	// refills to the op under measurement.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	fn() // warm-up
	var avg float64
	for attempt := 0; attempt < 5; attempt++ {
		if avg = testing.AllocsPerRun(10, fn); avg == 0 {
			return
		}
	}
	t.Fatalf("%s: %v allocs/op in steady state, want 0", name, avg)
}

// servingModel builds a trained-shaped factor model and seen set sized
// like a small production shard.
func servingModel(t *testing.T, users, items, k int) (*mf.Factors, *sparse.COO) {
	t.Helper()
	rng := sparse.NewRand(3)
	f := mf.NewFactorsInit(users, items, k, 3.5, rng)
	train := sparse.NewCOO(users, items, 0)
	for c := 0; c < users*4; c++ {
		train.Add(int32(rng.Intn(users)), int32(rng.Intn(items)), 1)
	}
	return f, train
}

func TestTopNIntoZeroAllocs(t *testing.T) {
	skipAllocGuardUnderRace(t)
	f, train := servingModel(t, 200, 500, 16)
	r, err := New(f, 200, 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.MarkSeen(train); err != nil {
		t.Fatal(err)
	}
	const n = 10
	buf := make([]Item, 0, n)
	var u int32
	assertZeroAllocs(t, "Recommender.TopNInto", func() {
		if _, err := r.TopNInto(u%200, n, buf); err != nil {
			t.Fatal(err)
		}
		u++
	})
}

func TestServiceTopNIntoZeroAllocs(t *testing.T) {
	skipAllocGuardUnderRace(t)
	f, train := servingModel(t, 200, 500, 16)
	svc, err := NewService(f, 200, 500, ServiceConfig{Workers: 4, Shards: 4, MaxN: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.MarkSeen(train); err != nil {
		t.Fatal(err)
	}
	const n = 10
	buf := make([]Item, 0, n)
	var u int32
	assertZeroAllocs(t, "Service.TopNInto", func() {
		if _, err := svc.TopNInto(u%200, n, buf); err != nil {
			t.Fatal(err)
		}
		u++
	})
}

func TestServiceTopNBatchZeroAllocs(t *testing.T) {
	skipAllocGuardUnderRace(t)
	f, train := servingModel(t, 200, 500, 16)
	svc, err := NewService(f, 200, 500, ServiceConfig{Workers: 4, Shards: 4, MaxN: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.MarkSeen(train); err != nil {
		t.Fatal(err)
	}
	const n, batch = 10, 32
	users := make([]int32, batch)
	bufs := make([][]Item, batch)
	for i := range users {
		users[i] = int32(i * 5)
		bufs[i] = make([]Item, 0, n)
	}
	assertZeroAllocs(t, "Service.TopNBatch", func() {
		if err := svc.TopNBatch(users, n, bufs); err != nil {
			t.Fatal(err)
		}
	})
}
