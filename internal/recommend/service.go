package recommend

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hccmf/internal/sparse"
)

// Service is the request-path serving engine behind hccmf-serve: a
// read-mostly top-N scorer designed for heavy concurrent traffic.
//
//   - Sharding: the item axis is cut into contiguous ranges, the same
//     single-backing-array view pattern as sparse.RowShards — the model's
//     Q rows already live in one flat array, and each shard is just an
//     index range [lo,hi) over it, so a single-user query fans its scan
//     across shards with no per-shard copies.
//   - Persistent worker pool: a fixed set of goroutines drains a task
//     channel (the internal/mf sweep-pool pattern). Tasks are sent by
//     value; nothing on the request path spawns goroutines.
//   - Bounded heaps in caller buffers: shard scans and merges build their
//     heaps inside preallocated buffers, so the steady-state scoring path
//     is 0 allocs/op (enforced by alloc_test.go).
//   - Hot reload: the model lives behind an atomic pointer. Reload
//     validates dimensions and swaps the pointer; every request loads the
//     pointer exactly once, so a request never mixes two models.
//
// MarkSeen is not safe to call concurrently with queries: load the seen
// set before serving traffic (the daemon does this at startup).
type Service struct {
	users, items int
	maxN         int
	nshards      int
	bounds       []int32 // len nshards+1; shard s scans [bounds[s], bounds[s+1])
	workers      int

	model atomic.Pointer[modelBox]
	gen   atomic.Int64
	seen  seenSet

	tasks   chan serveTask
	queries sync.Pool // *query
}

// modelBox wraps the Scorer so the atomic pointer has a concrete type.
type modelBox struct{ s Scorer }

// ServiceConfig sizes a Service. Zero values pick defaults.
type ServiceConfig struct {
	// Workers is the size of the persistent scoring pool (default
	// GOMAXPROCS).
	Workers int
	// Shards is the number of item ranges a single-user query fans out
	// over (default Workers).
	Shards int
	// MaxN caps the per-request n; it sizes the preallocated per-shard
	// heaps (default 100).
	MaxN int
}

// serveTask is one unit of scoring work: scan items [lo,hi) for user u
// into the n-bounded heap at *dst. Sent by value; the worker writes the
// resulting slice header back through dst and signals wg.
type serveTask struct {
	model  Scorer
	seen   []int32
	u      int32
	lo, hi int32
	n      int
	dst    *[]Item
	wg     *sync.WaitGroup
}

// serveWorker drains tasks until the channel is closed. Top-level function
// (not a closure) so pool construction allocates only the goroutines.
//
// lint:hotpath
func serveWorker(tasks <-chan serveTask) {
	for t := range tasks {
		*t.dst = scanRange(t.model, t.u, t.seen, t.lo, t.hi, t.n, (*t.dst)[:0])
		t.wg.Done()
	}
}

// query is the pooled per-request state: one bounded heap per shard. The
// heaps are preallocated at MaxN capacity so a request allocates nothing.
type query struct {
	wg    sync.WaitGroup
	parts [][]Item
}

// NewService builds the serving engine for a model covering users×items.
func NewService(model Scorer, users, items int, cfg ServiceConfig) (*Service, error) {
	if model == nil {
		return nil, fmt.Errorf("recommend: nil model")
	}
	if users <= 0 || items <= 0 {
		return nil, fmt.Errorf("recommend: dims %dx%d", users, items)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = workers
	}
	if nshards > items {
		nshards = items
	}
	maxN := cfg.MaxN
	if maxN <= 0 {
		maxN = 100
	}
	s := &Service{
		users: users, items: items,
		maxN: maxN, nshards: nshards, workers: workers,
		seen:  newSeenSet(users),
		tasks: make(chan serveTask, workers),
	}
	// Equal-width contiguous item ranges; the last shard absorbs the
	// remainder. bounds is the shard analogue of a CSR row prefix.
	s.bounds = make([]int32, nshards+1)
	for i := 0; i <= nshards; i++ {
		s.bounds[i] = int32(i * items / nshards)
	}
	s.model.Store(&modelBox{s: model})
	s.gen.Store(1)
	s.queries.New = func() any {
		q := &query{parts: make([][]Item, nshards)}
		for i := range q.parts {
			q.parts[i] = make([]Item, 0, maxN)
		}
		return q
	}
	for i := 0; i < workers; i++ {
		go serveWorker(s.tasks)
	}
	return s, nil
}

// Close stops the worker pool. Queries must not be in flight or issued
// after Close.
func (s *Service) Close() { close(s.tasks) }

// Users reports the model's user count.
func (s *Service) Users() int { return s.users }

// Items reports the model's item count.
func (s *Service) Items() int { return s.items }

// MaxN reports the per-request n cap.
func (s *Service) MaxN() int { return s.maxN }

// Generation reports the model generation, incremented by every Reload.
func (s *Service) Generation() int64 { return s.gen.Load() }

// MarkSeen loads already-rated interactions for seen-item exclusion. Not
// concurrency-safe with queries; call before serving.
func (s *Service) MarkSeen(train *sparse.COO) error {
	return s.seen.mark(train, s.users, s.items)
}

// Reload atomically swaps in a new model of identical dimensions.
// In-flight requests keep scoring against the model they started with;
// requests beginning after Reload returns see the new one.
func (s *Service) Reload(model Scorer, users, items int) error {
	if model == nil {
		return fmt.Errorf("recommend: reload with nil model")
	}
	if users != s.users || items != s.items {
		return fmt.Errorf("recommend: reload dims %dx%d do not match service %dx%d",
			users, items, s.users, s.items)
	}
	s.model.Store(&modelBox{s: model})
	s.gen.Add(1)
	return nil
}

// TopNInto answers a single-user query, fanning the item scan across the
// service's shards on the persistent pool and merging the shard heaps
// best-first into buf. With cap(buf) >= n the call allocates nothing in
// steady state. The returned slice aliases buf.
//
// lint:hotpath
func (s *Service) TopNInto(u int32, n int, buf []Item) ([]Item, error) {
	if err := s.checkQuery(u, n); err != nil {
		return nil, err
	}
	model := s.model.Load().s
	seen := s.seen.rows[u]
	q := s.queries.Get().(*query)
	q.wg.Add(s.nshards)
	for i := 0; i < s.nshards; i++ {
		s.tasks <- serveTask{
			model: model, seen: seen, u: u,
			lo: s.bounds[i], hi: s.bounds[i+1],
			n: n, dst: &q.parts[i], wg: &q.wg,
		}
	}
	q.wg.Wait()
	out := buf[:0]
	for _, part := range q.parts {
		for _, it := range part {
			out = pushBounded(out, n, it)
		}
	}
	s.queries.Put(q)
	sortDesc(out)
	return out, nil
}

// TopNBatch answers a multi-user query: one task per user on the
// persistent pool, each scanning the full item range into the caller's
// row buffer bufs[i] (heap built in place, then sorted best-first). With
// cap(bufs[i]) >= n the call allocates nothing in steady state. Row i of
// bufs is re-sliced to user i's results. Validation happens before any
// task is dispatched, and errors name the offending user.
//
// lint:hotpath
func (s *Service) TopNBatch(users []int32, n int, bufs [][]Item) error {
	if len(bufs) < len(users) {
		return fmt.Errorf("recommend: batch of %d users with %d result buffers", len(users), len(bufs)) // lint:allow hotalloc validation error path, never taken in steady state
	}
	for i, u := range users {
		if err := s.checkQuery(u, n); err != nil {
			return fmt.Errorf("recommend: batch user %d (index %d): %w", u, i, err) // lint:allow hotalloc validation error path, never taken in steady state
		}
	}
	model := s.model.Load().s
	q := s.queries.Get().(*query)
	q.wg.Add(len(users))
	for i, u := range users {
		bufs[i] = bufs[i][:0]
		s.tasks <- serveTask{
			model: model, seen: s.seen.rows[u], u: u,
			lo: 0, hi: int32(s.items),
			n: n, dst: &bufs[i], wg: &q.wg,
		}
	}
	q.wg.Wait()
	s.queries.Put(q)
	for i := range users {
		sortDesc(bufs[i])
	}
	return nil
}

func (s *Service) checkQuery(u int32, n int) error {
	if u < 0 || int(u) >= s.users {
		return fmt.Errorf("recommend: user %d out of range [0,%d)", u, s.users)
	}
	if n <= 0 {
		return fmt.Errorf("recommend: n = %d", n)
	}
	if n > s.maxN {
		return fmt.Errorf("recommend: n = %d exceeds the service cap %d", n, s.maxN)
	}
	return nil
}
