package recommend

import (
	"sort"
	"strings"
	"testing"

	"hccmf/internal/mf"
	"hccmf/internal/sparse"
)

// tableScorer predicts from a fixed dense table, making expected rankings
// exact.
type tableScorer struct {
	items  int
	scores []float32 // row-major users×items
}

func (s *tableScorer) Predict(u, i int32) float32 {
	return s.scores[int(u)*s.items+int(i)]
}

func newTable(users, items int, fill func(u, i int) float32) *tableScorer {
	s := &tableScorer{items: items, scores: make([]float32, users*items)}
	for u := 0; u < users; u++ {
		for i := 0; i < items; i++ {
			s.scores[u*items+i] = fill(u, i)
		}
	}
	return s
}

func TestTopNExactOrder(t *testing.T) {
	// Score = item id → top-3 must be the three largest ids, descending.
	s := newTable(2, 10, func(u, i int) float32 { return float32(i) })
	r, err := New(s, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	top, err := r.TopN(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{9, 8, 7}
	for idx, it := range top {
		if it.ID != want[idx] {
			t.Fatalf("top = %+v, want ids %v", top, want)
		}
	}
	if top[0].Score != 9 {
		t.Fatalf("score = %v", top[0].Score)
	}
}

func TestTopNExcludesSeen(t *testing.T) {
	s := newTable(1, 6, func(u, i int) float32 { return float32(i) })
	r, err := New(s, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	train := sparse.NewCOO(1, 6, 2)
	train.Add(0, 5, 1)
	train.Add(0, 4, 1)
	if err := r.MarkSeen(train); err != nil {
		t.Fatal(err)
	}
	top, err := r.TopN(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if top[0].ID != 3 || top[1].ID != 2 {
		t.Fatalf("seen items not excluded: %+v", top)
	}
}

func TestMarkSeenDedupsAndValidates(t *testing.T) {
	s := newTable(2, 4, func(u, i int) float32 { return 0 })
	r, _ := New(s, 2, 4)
	train := sparse.NewCOO(2, 4, 3)
	train.Add(0, 2, 1)
	train.Add(0, 2, 2) // duplicate rating
	train.Add(0, 1, 1)
	if err := r.MarkSeen(train); err != nil {
		t.Fatal(err)
	}
	if len(r.seen.rows[0]) != 2 {
		t.Fatalf("seen = %v, want deduped 2", r.seen.rows[0])
	}
	if !r.hasSeen(0, 2) || r.hasSeen(0, 3) || r.hasSeen(1, 2) {
		t.Fatal("hasSeen wrong")
	}
	wrong := sparse.NewCOO(3, 4, 0)
	if err := r.MarkSeen(wrong); err == nil {
		t.Fatal("mismatched matrix accepted")
	}
}

func TestTopNMoreThanAvailable(t *testing.T) {
	s := newTable(1, 3, func(u, i int) float32 { return float32(i) })
	r, _ := New(s, 1, 3)
	top, err := r.TopN(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("got %d items", len(top))
	}
	if !sort.SliceIsSorted(top, func(a, b int) bool { return top[a].Score > top[b].Score }) {
		t.Fatalf("not sorted: %+v", top)
	}
}

func TestTopNValidation(t *testing.T) {
	s := newTable(2, 2, func(u, i int) float32 { return 0 })
	r, _ := New(s, 2, 2)
	if _, err := r.TopN(-1, 1); err == nil {
		t.Fatal("negative user accepted")
	}
	if _, err := r.TopN(2, 1); err == nil {
		t.Fatal("out-of-range user accepted")
	}
	if _, err := r.TopN(0, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := New(nil, 1, 1); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := New(s, 0, 1); err == nil {
		t.Fatal("zero users accepted")
	}
}

func TestTopNBatchMatchesSingle(t *testing.T) {
	s := newTable(8, 20, func(u, i int) float32 { return float32((u*7 + i*3) % 13) })
	r, _ := New(s, 8, 20)
	users := []int32{0, 3, 5, 7}
	batch, err := r.TopNBatch(users, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for idx, u := range users {
		single, err := r.TopN(u, 5)
		if err != nil {
			t.Fatal(err)
		}
		for j := range single {
			if batch[idx][j].Score != single[j].Score {
				t.Fatalf("batch diverges for user %d", u)
			}
		}
	}
}

func TestHitRateAndRecallPerfectModel(t *testing.T) {
	// A model that scores exactly the held-out items highest must achieve
	// hit rate and recall 1.
	const users, items = 5, 30
	test := sparse.NewCOO(users, items, users)
	held := map[int]int{0: 7, 1: 12, 2: 3, 3: 29, 4: 0}
	for u, i := range held {
		test.Add(int32(u), int32(i), 5)
	}
	s := newTable(users, items, func(u, i int) float32 {
		if held[u] == i {
			return 100
		}
		return float32(i % 7)
	})
	r, _ := New(s, users, items)
	hr, err := r.HitRateAtN(test, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hr != 1 {
		t.Fatalf("hit rate = %v, want 1", hr)
	}
	rec, err := r.RecallAtN(test, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rec != 1 {
		t.Fatalf("recall = %v, want 1", rec)
	}
}

func TestHitRateRandomModelIsLow(t *testing.T) {
	const users, items = 40, 200
	rng := sparse.NewRand(9)
	test := sparse.NewCOO(users, items, users)
	for u := 0; u < users; u++ {
		test.Add(int32(u), int32(rng.Intn(items)), 5)
	}
	// Constant scorer: top-N is arbitrary (first N item ids).
	s := newTable(users, items, func(u, i int) float32 { return float32(items - i) })
	r, _ := New(s, users, items)
	hr, err := r.HitRateAtN(test, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 10 of 200 items → expect ~5% hits, certainly below 30%.
	if hr > 0.3 {
		t.Fatalf("uninformed model hit rate %v suspiciously high", hr)
	}
}

func TestEvalValidation(t *testing.T) {
	s := newTable(2, 2, func(u, i int) float32 { return 0 })
	r, _ := New(s, 2, 2)
	bad := sparse.NewCOO(3, 2, 0)
	if _, err := r.HitRateAtN(bad, 1, 1); err == nil {
		t.Fatal("mismatched test matrix accepted")
	}
	empty := sparse.NewCOO(2, 2, 0)
	if _, err := r.HitRateAtN(empty, 1, 1); err == nil {
		t.Fatal("empty test set accepted")
	}
	if _, err := r.RecallAtN(bad, 1, 1); err == nil {
		t.Fatal("mismatched recall matrix accepted")
	}
	if _, err := r.RecallAtN(empty, 1, 1); err == nil {
		t.Fatal("empty recall set accepted")
	}
}

// TestTopNTieOrderGolden pins the tie-breaking contract on a tie-heavy
// model: scores are quantized to three levels, so nearly every rank
// decision is a tie, and the expected order is computable by hand —
// descending score, ascending item ID within a score level.
func TestTopNTieOrderGolden(t *testing.T) {
	// 12 items, score = 2 - (i % 3): items ≡0 (mod 3) score 2, ≡1 score 1,
	// ≡2 score 0.
	s := newTable(1, 12, func(u, i int) float32 { return float32(2 - i%3) })
	r, err := New(s, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 3, 6, 9, 1, 4, 7} // all four score-2 ids, then score-1 ids
	top, err := r.TopN(0, len(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != len(want) {
		t.Fatalf("got %d items, want %d", len(top), len(want))
	}
	for idx, it := range top {
		if it.ID != want[idx] {
			t.Fatalf("tie order drifted at rank %d: got %+v, want ids %v", idx, top, want)
		}
	}
	// The same query through the batch path and a buffer-reusing call must
	// agree bit for bit.
	batch, err := r.TopNBatch([]int32{0, 0}, len(want), 2)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Item, 0, len(want))
	into, err := r.TopNInto(0, len(want), buf)
	if err != nil {
		t.Fatal(err)
	}
	for idx := range want {
		if batch[0][idx] != top[idx] || batch[1][idx] != top[idx] || into[idx] != top[idx] {
			t.Fatalf("paths disagree at rank %d: single %+v batch %+v into %+v",
				idx, top[idx], batch[0][idx], into[idx])
		}
	}
}

// TestMarkSeenIncrementalEqualsMerged: marking two COO halves in two calls
// must leave exactly the state of marking the merged COO once.
func TestMarkSeenIncrementalEqualsMerged(t *testing.T) {
	const users, items = 20, 30
	rng := sparse.NewRand(5)
	a := sparse.NewCOO(users, items, 0)
	b := sparse.NewCOO(users, items, 0)
	merged := sparse.NewCOO(users, items, 0)
	for c := 0; c < 200; c++ {
		u, i := int32(rng.Intn(users)), int32(rng.Intn(items))
		if c%2 == 0 {
			a.Add(u, i, 1)
		} else {
			b.Add(u, i, 1)
		}
		merged.Add(u, i, 1)
	}
	// Overlap: some items rated in both halves must still dedup.
	a.Add(3, 7, 1)
	b.Add(3, 7, 1)
	merged.Add(3, 7, 1)
	merged.Add(3, 7, 1)

	s := newTable(users, items, func(u, i int) float32 { return 0 })
	two, _ := New(s, users, items)
	if err := two.MarkSeen(a); err != nil {
		t.Fatal(err)
	}
	if err := two.MarkSeen(b); err != nil {
		t.Fatal(err)
	}
	one, _ := New(s, users, items)
	if err := one.MarkSeen(merged); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < users; u++ {
		got, want := two.seen.rows[u], one.seen.rows[u]
		if len(got) != len(want) {
			t.Fatalf("user %d: two-call seen %v != one-call %v", u, got, want)
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("user %d: two-call seen %v != one-call %v", u, got, want)
			}
		}
		if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) {
			t.Fatalf("user %d: seen not sorted: %v", u, got)
		}
	}
}

// TestTopNBatchReportsFailingUser: an out-of-range user in a batch must
// surface an error naming that user, and the other users' results must
// still be present.
func TestTopNBatchReportsFailingUser(t *testing.T) {
	s := newTable(4, 6, func(u, i int) float32 { return float32(i) })
	r, _ := New(s, 4, 6)
	users := []int32{0, 9, 2} // 9 is out of range
	out, err := r.TopNBatch(users, 2, 2)
	if err == nil {
		t.Fatal("out-of-range batch user accepted")
	}
	if !strings.Contains(err.Error(), "user 9") || !strings.Contains(err.Error(), "index 1") {
		t.Fatalf("error does not identify the failing user: %v", err)
	}
	if out == nil || out[0] == nil || out[2] == nil {
		t.Fatalf("partial results discarded: %v", out)
	}
	if out[1] != nil {
		t.Fatalf("failed user has results: %v", out[1])
	}
}

// End-to-end with a real trained model: recommendations from a factor
// model trained on planted structure beat chance.
func TestRecommenderWithTrainedFactors(t *testing.T) {
	rng := sparse.NewRand(13)
	const users, items, k = 120, 80, 8
	// Plant structure and train.
	pf := make([]float32, users*k)
	qf := make([]float32, items*k)
	for i := range pf {
		pf[i] = 0.5 + rng.Float32()
	}
	for i := range qf {
		qf[i] = 0.5 + rng.Float32()
	}
	all := sparse.NewCOO(users, items, 6000)
	for c := 0; c < 6000; c++ {
		u, i := rng.Intn(users), rng.Intn(items)
		var dot float32
		for f := 0; f < k; f++ {
			dot += pf[u*k+f] * qf[i*k+f]
		}
		all.Add(int32(u), int32(i), dot)
	}
	all.Shuffle(rng)
	train, test, err := all.SplitTrainTest(rng, 0.2)
	if err != nil {
		t.Fatal(err)
	}

	f := mf.NewFactorsInit(users, items, k, train.MeanRating(), rng)
	h := mf.HyperParams{Gamma: 0.01, Lambda1: 0.005, Lambda2: 0.005}
	for e := 0; e < 30; e++ {
		mf.TrainEntries(f, train.Entries, h)
	}
	r, err := New(f, users, items)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.MarkSeen(train); err != nil {
		t.Fatal(err)
	}
	hr, err := r.HitRateAtN(test, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Chance for ~10 held-out-ish items in top-10 of 80 is low; a trained
	// model should clear 25% comfortably.
	if hr < 0.25 {
		t.Fatalf("trained model hit rate %v barely beats chance", hr)
	}
}
