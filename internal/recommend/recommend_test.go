package recommend

import (
	"sort"
	"testing"

	"hccmf/internal/mf"
	"hccmf/internal/sparse"
)

// tableScorer predicts from a fixed dense table, making expected rankings
// exact.
type tableScorer struct {
	items  int
	scores []float32 // row-major users×items
}

func (s *tableScorer) Predict(u, i int32) float32 {
	return s.scores[int(u)*s.items+int(i)]
}

func newTable(users, items int, fill func(u, i int) float32) *tableScorer {
	s := &tableScorer{items: items, scores: make([]float32, users*items)}
	for u := 0; u < users; u++ {
		for i := 0; i < items; i++ {
			s.scores[u*items+i] = fill(u, i)
		}
	}
	return s
}

func TestTopNExactOrder(t *testing.T) {
	// Score = item id → top-3 must be the three largest ids, descending.
	s := newTable(2, 10, func(u, i int) float32 { return float32(i) })
	r, err := New(s, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	top, err := r.TopN(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{9, 8, 7}
	for idx, it := range top {
		if it.ID != want[idx] {
			t.Fatalf("top = %+v, want ids %v", top, want)
		}
	}
	if top[0].Score != 9 {
		t.Fatalf("score = %v", top[0].Score)
	}
}

func TestTopNExcludesSeen(t *testing.T) {
	s := newTable(1, 6, func(u, i int) float32 { return float32(i) })
	r, err := New(s, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	train := sparse.NewCOO(1, 6, 2)
	train.Add(0, 5, 1)
	train.Add(0, 4, 1)
	if err := r.MarkSeen(train); err != nil {
		t.Fatal(err)
	}
	top, err := r.TopN(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if top[0].ID != 3 || top[1].ID != 2 {
		t.Fatalf("seen items not excluded: %+v", top)
	}
}

func TestMarkSeenDedupsAndValidates(t *testing.T) {
	s := newTable(2, 4, func(u, i int) float32 { return 0 })
	r, _ := New(s, 2, 4)
	train := sparse.NewCOO(2, 4, 3)
	train.Add(0, 2, 1)
	train.Add(0, 2, 2) // duplicate rating
	train.Add(0, 1, 1)
	if err := r.MarkSeen(train); err != nil {
		t.Fatal(err)
	}
	if len(r.seen[0]) != 2 {
		t.Fatalf("seen = %v, want deduped 2", r.seen[0])
	}
	if !r.hasSeen(0, 2) || r.hasSeen(0, 3) || r.hasSeen(1, 2) {
		t.Fatal("hasSeen wrong")
	}
	wrong := sparse.NewCOO(3, 4, 0)
	if err := r.MarkSeen(wrong); err == nil {
		t.Fatal("mismatched matrix accepted")
	}
}

func TestTopNMoreThanAvailable(t *testing.T) {
	s := newTable(1, 3, func(u, i int) float32 { return float32(i) })
	r, _ := New(s, 1, 3)
	top, err := r.TopN(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("got %d items", len(top))
	}
	if !sort.SliceIsSorted(top, func(a, b int) bool { return top[a].Score > top[b].Score }) {
		t.Fatalf("not sorted: %+v", top)
	}
}

func TestTopNValidation(t *testing.T) {
	s := newTable(2, 2, func(u, i int) float32 { return 0 })
	r, _ := New(s, 2, 2)
	if _, err := r.TopN(-1, 1); err == nil {
		t.Fatal("negative user accepted")
	}
	if _, err := r.TopN(2, 1); err == nil {
		t.Fatal("out-of-range user accepted")
	}
	if _, err := r.TopN(0, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := New(nil, 1, 1); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := New(s, 0, 1); err == nil {
		t.Fatal("zero users accepted")
	}
}

func TestTopNBatchMatchesSingle(t *testing.T) {
	s := newTable(8, 20, func(u, i int) float32 { return float32((u*7 + i*3) % 13) })
	r, _ := New(s, 8, 20)
	users := []int32{0, 3, 5, 7}
	batch, err := r.TopNBatch(users, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for idx, u := range users {
		single, err := r.TopN(u, 5)
		if err != nil {
			t.Fatal(err)
		}
		for j := range single {
			if batch[idx][j].Score != single[j].Score {
				t.Fatalf("batch diverges for user %d", u)
			}
		}
	}
}

func TestHitRateAndRecallPerfectModel(t *testing.T) {
	// A model that scores exactly the held-out items highest must achieve
	// hit rate and recall 1.
	const users, items = 5, 30
	test := sparse.NewCOO(users, items, users)
	held := map[int]int{0: 7, 1: 12, 2: 3, 3: 29, 4: 0}
	for u, i := range held {
		test.Add(int32(u), int32(i), 5)
	}
	s := newTable(users, items, func(u, i int) float32 {
		if held[u] == i {
			return 100
		}
		return float32(i % 7)
	})
	r, _ := New(s, users, items)
	hr, err := r.HitRateAtN(test, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hr != 1 {
		t.Fatalf("hit rate = %v, want 1", hr)
	}
	rec, err := r.RecallAtN(test, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rec != 1 {
		t.Fatalf("recall = %v, want 1", rec)
	}
}

func TestHitRateRandomModelIsLow(t *testing.T) {
	const users, items = 40, 200
	rng := sparse.NewRand(9)
	test := sparse.NewCOO(users, items, users)
	for u := 0; u < users; u++ {
		test.Add(int32(u), int32(rng.Intn(items)), 5)
	}
	// Constant scorer: top-N is arbitrary (first N item ids).
	s := newTable(users, items, func(u, i int) float32 { return float32(items - i) })
	r, _ := New(s, users, items)
	hr, err := r.HitRateAtN(test, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 10 of 200 items → expect ~5% hits, certainly below 30%.
	if hr > 0.3 {
		t.Fatalf("uninformed model hit rate %v suspiciously high", hr)
	}
}

func TestEvalValidation(t *testing.T) {
	s := newTable(2, 2, func(u, i int) float32 { return 0 })
	r, _ := New(s, 2, 2)
	bad := sparse.NewCOO(3, 2, 0)
	if _, err := r.HitRateAtN(bad, 1, 1); err == nil {
		t.Fatal("mismatched test matrix accepted")
	}
	empty := sparse.NewCOO(2, 2, 0)
	if _, err := r.HitRateAtN(empty, 1, 1); err == nil {
		t.Fatal("empty test set accepted")
	}
	if _, err := r.RecallAtN(bad, 1, 1); err == nil {
		t.Fatal("mismatched recall matrix accepted")
	}
	if _, err := r.RecallAtN(empty, 1, 1); err == nil {
		t.Fatal("empty recall set accepted")
	}
}

// End-to-end with a real trained model: recommendations from a factor
// model trained on planted structure beat chance.
func TestRecommenderWithTrainedFactors(t *testing.T) {
	rng := sparse.NewRand(13)
	const users, items, k = 120, 80, 8
	// Plant structure and train.
	pf := make([]float32, users*k)
	qf := make([]float32, items*k)
	for i := range pf {
		pf[i] = 0.5 + rng.Float32()
	}
	for i := range qf {
		qf[i] = 0.5 + rng.Float32()
	}
	all := sparse.NewCOO(users, items, 6000)
	for c := 0; c < 6000; c++ {
		u, i := rng.Intn(users), rng.Intn(items)
		var dot float32
		for f := 0; f < k; f++ {
			dot += pf[u*k+f] * qf[i*k+f]
		}
		all.Add(int32(u), int32(i), dot)
	}
	all.Shuffle(rng)
	train, test, err := all.SplitTrainTest(rng, 0.2)
	if err != nil {
		t.Fatal(err)
	}

	f := mf.NewFactorsInit(users, items, k, train.MeanRating(), rng)
	h := mf.HyperParams{Gamma: 0.01, Lambda1: 0.005, Lambda2: 0.005}
	for e := 0; e < 30; e++ {
		mf.TrainEntries(f, train.Entries, h)
	}
	r, err := New(f, users, items)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.MarkSeen(train); err != nil {
		t.Fatal(err)
	}
	hr, err := r.HitRateAtN(test, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Chance for ~10 held-out-ish items in top-10 of 80 is low; a trained
	// model should clear 25% comfortably.
	if hr < 0.25 {
		t.Fatalf("trained model hit rate %v barely beats chance", hr)
	}
}
