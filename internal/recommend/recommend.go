// Package recommend turns trained factor models into what the paper's
// introduction says MF is for: recommendations. It provides top-N item
// retrieval over any prediction model (plain or biased factors), seen-item
// exclusion, parallel batch scoring, the standard ranking metrics
// (hit-rate@N, recall@N) for offline evaluation, and the Service type —
// the request-path engine behind the hccmf-serve daemon.
//
// Ordering contract: top-N results are fully deterministic. Items are
// ranked by descending score, and equal scores break ties by ascending
// item ID — in the bounded heap, in eviction decisions, and in the final
// ordering — so serving responses and HitRateAtN are reproducible across
// refactors and worker counts.
package recommend

import (
	"fmt"
	"sort"
	"sync"

	"hccmf/internal/sparse"
)

// Scorer predicts a rating for a (user, item) pair. *mf.Factors and
// *mf.BiasedFactors both satisfy it.
type Scorer interface {
	Predict(u, i int32) float32
}

// Item is one scored recommendation.
type Item struct {
	ID    int32   `json:"id"`
	Score float32 `json:"score"`
}

// weaker is the single ordering predicate of the package: a sorts below b
// (is evicted first, ranks later) when its score is lower, or when the
// scores are equal and its ID is larger. Every heap operation and the
// final descending sort consult only this function, which is what makes
// equal-score results come back in ascending item-ID order everywhere.
func weaker(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// The bounded top-N heap is a manual min-heap (weakest element at the
// root) stored in a plain []Item, usually the caller's result buffer.
// container/heap is deliberately not used: its interface{} Push/Pop box
// every Item, which puts one allocation per candidate on the serving hot
// path. These sift routines allocate nothing.

func siftUp(h []Item, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !weaker(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func siftDown(h []Item, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && weaker(h[r], h[l]) {
			m = r
		}
		if !weaker(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// pushBounded offers it to the n-bounded heap h: below capacity it is
// inserted; at capacity it replaces the root if and only if the root is
// weaker. Appends stay within the caller's buffer capacity when cap(h)>=n.
func pushBounded(h []Item, n int, it Item) []Item {
	if len(h) < n {
		h = append(h, it)
		siftUp(h, len(h)-1)
		return h
	}
	if weaker(h[0], it) {
		h[0] = it
		siftDown(h, 0)
	}
	return h
}

// sortDesc orders a bounded heap best-first in place (heapsort): the
// weakest root is swapped to the end and the prefix re-sifted, so the
// final order is descending score with ascending-ID ties.
//
// lint:hotpath
func sortDesc(h []Item) {
	for end := len(h) - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		siftDown(h[:end], 0)
	}
}

// scanRange scores items [lo,hi) of the given user against model, skips
// the sorted seen list with a merging cursor (seen is sorted ascending,
// and so is the scan), and maintains the n-bounded heap in h. It is the
// shared scan kernel of Recommender.TopN and the Service shard workers,
// and allocates nothing when cap(h) >= n.
//
// lint:hotpath
func scanRange(model Scorer, u int32, seen []int32, lo, hi int32, n int, h []Item) []Item {
	// Lower-bound the seen cursor at lo so a shard scan skips the prefix.
	c, top := 0, len(seen)
	for c < top {
		mid := (c + top) / 2
		if seen[mid] < lo {
			c = mid + 1
		} else {
			top = mid
		}
	}
	for i := lo; i < hi; i++ {
		if c < len(seen) && seen[c] == i {
			c++
			continue
		}
		h = pushBounded(h, n, Item{ID: i, Score: model.Predict(u, i)})
	}
	return h
}

// seenSet tracks, per user, the sorted deduplicated list of already-rated
// items. Recommender and Service both embed one. mark is incremental: a
// call only re-sorts the rows it touched, so repeated MarkSeen calls cost
// O(touched·s log s), not O(users·s log s).
type seenSet struct {
	rows [][]int32
	// dirty/touched are mark's scratch: dirty flags a row already recorded
	// in touched this call; both are reset before mark returns.
	dirty   []bool
	touched []int32
}

func newSeenSet(users int) seenSet {
	return seenSet{rows: make([][]int32, users)}
}

// mark appends the interactions of train and re-sorts/dedups exactly the
// rows this call touched.
func (ss *seenSet) mark(train *sparse.COO, users, items int) error {
	if train.Rows != users || train.Cols != items {
		return fmt.Errorf("recommend: matrix %dx%d does not match model %dx%d",
			train.Rows, train.Cols, users, items)
	}
	if ss.dirty == nil {
		ss.dirty = make([]bool, users)
	}
	touched := ss.touched[:0]
	for _, e := range train.Entries {
		if !ss.dirty[e.U] {
			ss.dirty[e.U] = true
			touched = append(touched, e.U)
		}
		ss.rows[e.U] = append(ss.rows[e.U], e.I)
	}
	for _, u := range touched {
		ss.dirty[u] = false
		s := ss.rows[u]
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		out := s[:0]
		var prev int32 = -1
		for _, v := range s {
			if v != prev {
				out = append(out, v)
				prev = v
			}
		}
		ss.rows[u] = out
	}
	ss.touched = touched[:0]
	return nil
}

// has reports whether user u already rated item i (binary search).
func (ss *seenSet) has(u, i int32) bool {
	s := ss.rows[u]
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == i
}

// Recommender serves top-N queries against a model.
type Recommender struct {
	model Scorer
	users int
	items int
	seen  seenSet
}

// New builds a recommender for a model covering users×items.
func New(model Scorer, users, items int) (*Recommender, error) {
	if model == nil {
		return nil, fmt.Errorf("recommend: nil model")
	}
	if users <= 0 || items <= 0 {
		return nil, fmt.Errorf("recommend: dims %dx%d", users, items)
	}
	return &Recommender{model: model, users: users, items: items,
		seen: newSeenSet(users)}, nil
}

// MarkSeen records the training interactions so TopN never recommends an
// item the user has already rated. May be called multiple times; each call
// re-processes only the users present in train, so incremental marking of
// a few users is cheap regardless of the model's total user count.
func (r *Recommender) MarkSeen(train *sparse.COO) error {
	return r.seen.mark(train, r.users, r.items)
}

// hasSeen reports whether user u already rated item i.
func (r *Recommender) hasSeen(u, i int32) bool { return r.seen.has(u, i) }

// TopN returns the user's n highest-scored unseen items, best first
// (descending score, ascending item ID among equal scores).
func (r *Recommender) TopN(u int32, n int) ([]Item, error) {
	if n <= 0 {
		return nil, fmt.Errorf("recommend: n = %d", n)
	}
	return r.TopNInto(u, n, make([]Item, 0, n))
}

// TopNInto is TopN writing into the caller's buffer: the bounded heap is
// built in buf[:0] and sorted best-first in place. With cap(buf) >= n the
// call performs no allocations, which is what keeps the serving hot path
// at 0 allocs/op. The returned slice aliases buf.
//
// lint:hotpath
func (r *Recommender) TopNInto(u int32, n int, buf []Item) ([]Item, error) {
	if u < 0 || int(u) >= r.users {
		return nil, fmt.Errorf("recommend: user %d out of range [0,%d)", u, r.users) // lint:allow hotalloc validation error path, never taken in steady state
	}
	if n <= 0 {
		return nil, fmt.Errorf("recommend: n = %d", n) // lint:allow hotalloc validation error path, never taken in steady state
	}
	h := scanRange(r.model, u, r.seen.rows[u], 0, int32(r.items), n, buf[:0])
	sortDesc(h)
	return h, nil
}

// TopNBatch scores many users on a fixed pool of workers goroutines
// draining an index channel (no goroutine-per-user fan-out); results are
// indexed like users. On error the partial results are returned alongside
// an error identifying the first failing user in index order.
func (r *Recommender) TopNBatch(users []int32, n, workers int) ([][]Item, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(users) {
		workers = len(users)
	}
	out := make([][]Item, len(users))
	errs := make([]error, len(users))
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = r.TopN(users[i], n)
			}
		}()
	}
	for i := range users {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return out, fmt.Errorf("recommend: batch user %d (index %d): %w", users[i], i, err)
		}
	}
	return out, nil
}

// HitRateAtN evaluates the recommender against held-out interactions: the
// fraction of test users for whom at least one held-out item appears in
// their top-N. Users with no test interactions are skipped.
func (r *Recommender) HitRateAtN(test *sparse.COO, n, workers int) (float64, error) {
	users, heldOut, err := r.heldOutUsers(test)
	if err != nil {
		return 0, err
	}
	recs, err := r.TopNBatch(users, n, workers)
	if err != nil {
		return 0, err
	}
	hits := 0
	for idx, u := range users {
		for _, item := range recs[idx] {
			if heldOut[u][item.ID] {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(users)), nil
}

// RecallAtN is the average, over test users, of the fraction of each
// user's held-out items retrieved in their top-N.
func (r *Recommender) RecallAtN(test *sparse.COO, n, workers int) (float64, error) {
	users, heldOut, err := r.heldOutUsers(test)
	if err != nil {
		return 0, err
	}
	recs, err := r.TopNBatch(users, n, workers)
	if err != nil {
		return 0, err
	}
	var sum float64
	for idx, u := range users {
		found := 0
		for _, item := range recs[idx] {
			if heldOut[u][item.ID] {
				found++
			}
		}
		sum += float64(found) / float64(len(heldOut[u]))
	}
	return sum / float64(len(users)), nil
}

// heldOutUsers indexes a test matrix by user for the ranking metrics.
func (r *Recommender) heldOutUsers(test *sparse.COO) ([]int32, map[int32]map[int32]bool, error) {
	if test.Rows != r.users || test.Cols != r.items {
		return nil, nil, fmt.Errorf("recommend: test matrix %dx%d does not match model", test.Rows, test.Cols)
	}
	heldOut := make(map[int32]map[int32]bool)
	for _, e := range test.Entries {
		m, ok := heldOut[e.U]
		if !ok {
			m = make(map[int32]bool)
			heldOut[e.U] = m
		}
		m[e.I] = true
	}
	if len(heldOut) == 0 {
		return nil, nil, fmt.Errorf("recommend: empty test set")
	}
	users := make([]int32, 0, len(heldOut))
	for u := range heldOut {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })
	return users, heldOut, nil
}
