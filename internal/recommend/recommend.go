// Package recommend turns trained factor models into what the paper's
// introduction says MF is for: recommendations. It provides top-N item
// retrieval over any prediction model (plain or biased factors), seen-item
// exclusion, parallel batch scoring, and the standard ranking metrics
// (hit-rate@N, recall@N) for offline evaluation.
package recommend

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"

	"hccmf/internal/sparse"
)

// Scorer predicts a rating for a (user, item) pair. *mf.Factors and
// *mf.BiasedFactors both satisfy it.
type Scorer interface {
	Predict(u, i int32) float32
}

// Item is one scored recommendation.
type Item struct {
	ID    int32
	Score float32
}

// Recommender serves top-N queries against a model.
type Recommender struct {
	model Scorer
	users int
	items int
	// seen[u] is the sorted list of items user u has already rated.
	seen [][]int32
}

// New builds a recommender for a model covering users×items.
func New(model Scorer, users, items int) (*Recommender, error) {
	if model == nil {
		return nil, fmt.Errorf("recommend: nil model")
	}
	if users <= 0 || items <= 0 {
		return nil, fmt.Errorf("recommend: dims %dx%d", users, items)
	}
	return &Recommender{model: model, users: users, items: items,
		seen: make([][]int32, users)}, nil
}

// MarkSeen records the training interactions so TopN never recommends an
// item the user has already rated. May be called multiple times.
func (r *Recommender) MarkSeen(train *sparse.COO) error {
	if train.Rows != r.users || train.Cols != r.items {
		return fmt.Errorf("recommend: matrix %dx%d does not match model %dx%d",
			train.Rows, train.Cols, r.users, r.items)
	}
	for _, e := range train.Entries {
		r.seen[e.U] = append(r.seen[e.U], e.I)
	}
	for u := range r.seen {
		s := r.seen[u]
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		// Dedup in place.
		out := s[:0]
		var prev int32 = -1
		for _, v := range s {
			if v != prev {
				out = append(out, v)
				prev = v
			}
		}
		r.seen[u] = out
	}
	return nil
}

// hasSeen reports whether user u already rated item i.
func (r *Recommender) hasSeen(u, i int32) bool {
	s := r.seen[u]
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == i
}

// itemHeap is a min-heap on score, so the root is the weakest of the
// current top-N and cheap to evict.
type itemHeap []Item

func (h itemHeap) Len() int            { return len(h) }
func (h itemHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// TopN returns the user's n highest-scored unseen items, best first.
func (r *Recommender) TopN(u int32, n int) ([]Item, error) {
	if u < 0 || int(u) >= r.users {
		return nil, fmt.Errorf("recommend: user %d out of range [0,%d)", u, r.users)
	}
	if n <= 0 {
		return nil, fmt.Errorf("recommend: n = %d", n)
	}
	h := make(itemHeap, 0, n+1)
	for i := 0; i < r.items; i++ {
		item := int32(i)
		if r.hasSeen(u, item) {
			continue
		}
		score := r.model.Predict(u, item)
		if len(h) < n {
			heap.Push(&h, Item{ID: item, Score: score})
			continue
		}
		if score > h[0].Score {
			h[0] = Item{ID: item, Score: score}
			heap.Fix(&h, 0)
		}
	}
	// Extract in descending score order.
	out := make([]Item, len(h))
	for idx := len(h) - 1; idx >= 0; idx-- {
		out[idx] = heap.Pop(&h).(Item)
	}
	return out, nil
}

// TopNBatch scores many users with up to workers goroutines; results are
// indexed like users.
func (r *Recommender) TopNBatch(users []int32, n, workers int) ([][]Item, error) {
	if workers < 1 {
		workers = 1
	}
	out := make([][]Item, len(users))
	errs := make([]error, len(users))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for idx, u := range users {
		wg.Add(1)
		sem <- struct{}{}
		go func(idx int, u int32) {
			defer wg.Done()
			defer func() { <-sem }()
			out[idx], errs[idx] = r.TopN(u, n)
		}(idx, u)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// HitRateAtN evaluates the recommender against held-out interactions: the
// fraction of test users for whom at least one held-out item appears in
// their top-N. Users with no test interactions are skipped.
func (r *Recommender) HitRateAtN(test *sparse.COO, n, workers int) (float64, error) {
	if test.Rows != r.users || test.Cols != r.items {
		return 0, fmt.Errorf("recommend: test matrix %dx%d does not match model", test.Rows, test.Cols)
	}
	heldOut := make(map[int32]map[int32]bool)
	for _, e := range test.Entries {
		m, ok := heldOut[e.U]
		if !ok {
			m = make(map[int32]bool)
			heldOut[e.U] = m
		}
		m[e.I] = true
	}
	if len(heldOut) == 0 {
		return 0, fmt.Errorf("recommend: empty test set")
	}
	users := make([]int32, 0, len(heldOut))
	for u := range heldOut {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })
	recs, err := r.TopNBatch(users, n, workers)
	if err != nil {
		return 0, err
	}
	hits := 0
	for idx, u := range users {
		for _, item := range recs[idx] {
			if heldOut[u][item.ID] {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(users)), nil
}

// RecallAtN is the average, over test users, of the fraction of each
// user's held-out items retrieved in their top-N.
func (r *Recommender) RecallAtN(test *sparse.COO, n, workers int) (float64, error) {
	if test.Rows != r.users || test.Cols != r.items {
		return 0, fmt.Errorf("recommend: test matrix %dx%d does not match model", test.Rows, test.Cols)
	}
	heldOut := make(map[int32]map[int32]bool)
	for _, e := range test.Entries {
		m, ok := heldOut[e.U]
		if !ok {
			m = make(map[int32]bool)
			heldOut[e.U] = m
		}
		m[e.I] = true
	}
	if len(heldOut) == 0 {
		return 0, fmt.Errorf("recommend: empty test set")
	}
	users := make([]int32, 0, len(heldOut))
	for u := range heldOut {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })
	recs, err := r.TopNBatch(users, n, workers)
	if err != nil {
		return 0, err
	}
	var sum float64
	for idx, u := range users {
		found := 0
		for _, item := range recs[idx] {
			if heldOut[u][item.ID] {
				found++
			}
		}
		sum += float64(found) / float64(len(heldOut[u]))
	}
	return sum / float64(len(users)), nil
}
