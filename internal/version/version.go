// Package version carries the build identity stamped into every hccmf
// binary at link time:
//
//	go build -ldflags "-X hccmf/internal/version.Version=v1.2.3" ./cmd/...
//
// One stamp point covers all binaries; unstamped builds report "dev". CI
// stamps releases with the commit that built them (see
// .github/workflows/ci.yml).
package version

import "runtime"

// Version is the stamped build version.
var Version = "dev"

// String renders the version together with the toolchain that built it,
// the canonical -version output.
func String() string { return Version + " (" + runtime.Version() + ")" }
