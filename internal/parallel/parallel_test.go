package parallel

import (
	"sync"
	"testing"
)

// collect runs Chunks and returns the ranges fn received, in ascending
// order (ranges are disjoint, so sorting by lo is unambiguous).
func collect(n, minChunk, workers int) [][2]int {
	var mu sync.Mutex
	var got [][2]int
	Chunks(n, minChunk, workers, func(lo, hi int) {
		mu.Lock()
		got = append(got, [2]int{lo, hi})
		mu.Unlock()
	})
	// insertion sort; the slice is tiny
	for i := 1; i < len(got); i++ {
		for j := i; j > 0 && got[j][0] < got[j-1][0]; j-- {
			got[j], got[j-1] = got[j-1], got[j]
		}
	}
	return got
}

func TestChunksCoversRangeExactly(t *testing.T) {
	for _, tc := range []struct{ n, minChunk, workers int }{
		{0, 1, 4}, {1, 1, 4}, {10, 1, 4}, {10, 3, 4}, {100, 7, 8},
		{1000, 1, 1}, {1000, 500, 16}, {5, 100, 8},
	} {
		got := collect(tc.n, tc.minChunk, tc.workers)
		pos := 0
		for _, r := range got {
			if r[0] != pos {
				t.Fatalf("n=%d minChunk=%d workers=%d: gap/overlap at %d (ranges %v)",
					tc.n, tc.minChunk, tc.workers, pos, got)
			}
			if r[1] < r[0] {
				t.Fatalf("inverted range %v", r)
			}
			pos = r[1]
		}
		if pos != tc.n {
			t.Fatalf("n=%d minChunk=%d workers=%d: covered [0,%d), want [0,%d)",
				tc.n, tc.minChunk, tc.workers, pos, tc.n)
		}
	}
}

func TestChunksClampsWorkers(t *testing.T) {
	// 250 elements at minChunk 100 support at most ceil(250/100)=3 ranges.
	if got := collect(250, 100, 8); len(got) > 3 {
		t.Fatalf("got %d ranges, want <= 3: %v", len(got), got)
	}
	// Below one minChunk everything must run as a single inline range.
	if got := collect(50, 100, 8); len(got) != 1 || got[0] != [2]int{0, 50} {
		t.Fatalf("tiny input not inline: %v", got)
	}
	// n == 0 still calls fn once with an empty range (codec contract).
	if got := collect(0, 100, 8); len(got) != 1 || got[0] != [2]int{0, 0} {
		t.Fatalf("empty input: %v", got)
	}
}

func TestChunksInlineOnOneWorker(t *testing.T) {
	// With workers=1 fn must run on the caller's goroutine: a write to a
	// captured local without synchronisation is race-free only then.
	total := 0
	Chunks(1_000_000, 1, 1, func(lo, hi int) { total += hi - lo })
	if total != 1_000_000 {
		t.Fatalf("total %d", total)
	}
}
