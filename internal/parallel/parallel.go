// Package parallel provides the chunked worker fan-out used by HCC-MF's
// CPU-side data plane: the fp16 transport codec and the dataset ingestion
// pipeline both split an index range across a bounded number of
// goroutines. Centralising the helper keeps the clamping policy in one
// place — spawning more goroutines than there are minChunk-sized pieces
// of work only buys scheduler overhead.
package parallel

import "sync"

// Chunks splits [0, n) into contiguous half-open ranges and calls fn on
// each of them, using at most workers goroutines. The worker count is
// clamped to ceil(n/minChunk), so a tiny input never fans out further
// than its useful parallelism; with an effective worker count of one
// (workers <= 1, n < minChunk, or n == 0) fn runs inline as fn(0, n) on
// the caller's goroutine. fn must be safe to call concurrently on
// disjoint ranges. Chunks returns only after every range completes.
func Chunks(n, minChunk, workers int, fn func(lo, hi int)) {
	if minChunk < 1 {
		minChunk = 1
	}
	if useful := (n + minChunk - 1) / minChunk; workers > useful {
		workers = useful
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
