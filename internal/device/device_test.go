package device

import (
	"math"
	"testing"
)

func TestKindString(t *testing.T) {
	if CPU.String() != "cpu" || GPU.String() != "gpu" {
		t.Fatal("kind strings wrong")
	}
	if Kind(5).String() != "Kind(5)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestXeon6242CalibrationPoints(t *testing.T) {
	d24 := Xeon6242(24)
	if got := d24.UpdateRate("netflix"); got != 348790567 {
		t.Fatalf("24T netflix rate = %v", got)
	}
	if got := d24.UpdateRate("r2"); got != 266293289 {
		t.Fatalf("24T r2 rate = %v", got)
	}
	d16 := Xeon6242(16)
	if got := d16.UpdateRate("netflix"); math.Abs(got-272502189.3) > 1 {
		t.Fatalf("16T netflix rate = %v", got)
	}
	if d24.Kind != CPU || d16.Threads != 16 {
		t.Fatal("metadata wrong")
	}
}

func TestXeon6242ScalingMonotone(t *testing.T) {
	prev := 0.0
	for _, th := range []int{4, 8, 10, 16, 20, 24} {
		r := Xeon6242(th).UpdateRate("netflix")
		if r <= prev {
			t.Fatalf("rate not monotone in threads: %d threads → %v", th, r)
		}
		prev = r
	}
	// Sublinear: 10T should beat 10/24 of the 24T rate.
	r10 := Xeon6242(10).UpdateRate("netflix")
	r24 := Xeon6242(24).UpdateRate("netflix")
	if r10 <= r24*10/24 {
		t.Fatalf("thread scaling not sublinear: r10=%v r24=%v", r10, r24)
	}
}

func TestXeon6242WeakenedNameAndBandwidth(t *testing.T) {
	d := Xeon6242(10)
	if d.Name != "6242l-10T" {
		t.Fatalf("10T name = %q, want 6242l prefix", d.Name)
	}
	// Table 2: 39.3 GB/s at 10 threads, 67.3 at full.
	if math.Abs(d.MemBandwidth-39.3e9) > 1e6 {
		t.Fatalf("10T bandwidth = %v", d.MemBandwidth)
	}
	if math.Abs(Xeon6242(24).MemBandwidth-67.3e9) > 1e6 {
		t.Fatal("24T bandwidth wrong")
	}
}

func TestXeon6242Validation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("0 threads did not panic")
		}
	}()
	Xeon6242(0)
}

func TestGPUProfiles(t *testing.T) {
	g1 := RTX2080()
	g2 := RTX2080Super()
	if g1.UpdateRate("netflix") != 918333483.2 {
		t.Fatalf("2080 netflix = %v", g1.UpdateRate("netflix"))
	}
	if g2.UpdateRate("netflix") != 1052866849 {
		t.Fatalf("2080S netflix = %v", g2.UpdateRate("netflix"))
	}
	if !g1.HasCopyEngine || !g2.HasCopyEngine {
		t.Fatal("GPUs must expose copy engines")
	}
	if g1.Kind != GPU || g2.Kind != GPU {
		t.Fatal("kind wrong")
	}
	// Table 4's striking R2 slowdown must be preserved.
	if r := g1.UpdateRate("r2") / g1.UpdateRate("netflix"); r > 0.5 {
		t.Fatalf("2080 r2/netflix ratio = %v, want the paper's ~0.37", r)
	}
}

func TestUnknownDatasetFallsBack(t *testing.T) {
	d := RTX2080()
	if got := d.UpdateRate("custom-data"); got != d.UpdateRate("netflix") {
		t.Fatalf("fallback rate = %v", got)
	}
}

func TestV100FasterThan2080S(t *testing.T) {
	v := TeslaV100()
	s := RTX2080Super()
	for _, ds := range []string{"netflix", "r1", "r2", "ml-20m"} {
		if v.UpdateRate(ds) <= s.UpdateRate(ds) {
			t.Fatalf("V100 not faster on %s", ds)
		}
	}
	// Figure 3(b): V100 costs > 3x the 6242+2080S combo parts.
	combo := Xeon6242(16).PriceUSD + s.PriceUSD
	if v.PriceUSD < 2.5*combo*0.9 {
		t.Fatalf("V100 price %v vs combo %v does not reproduce the economics claim", v.PriceUSD, combo)
	}
}

func TestEffectiveRateLoadDependence(t *testing.T) {
	g := RTX2080()
	full := g.EffectiveRate("netflix", 1)
	part := g.EffectiveRate("netflix", 0.3)
	if full != g.UpdateRate("netflix") {
		t.Fatalf("share-1 rate = %v, want calibration %v", full, g.UpdateRate("netflix"))
	}
	if part <= full {
		t.Fatal("GPU rate must rise for smaller shares (Table 2)")
	}
	// CPUs lose efficiency on small shards (fixed per-epoch costs stop
	// amortising) but never below the floor.
	c := Xeon6242(16)
	if c.EffectiveRate("netflix", 0.3) >= c.UpdateRate("netflix") {
		t.Fatal("CPU rate must drop for small shares")
	}
	if c.EffectiveRate("netflix", 0.01) < 0.7*c.UpdateRate("netflix") {
		t.Fatal("CPU rate fell below the efficiency floor")
	}
	if c.EffectiveRate("netflix", 1) != c.UpdateRate("netflix") {
		t.Fatal("share-1 CPU rate must equal calibration")
	}
	// Degenerate shares clamp.
	if g.EffectiveRate("netflix", 0) != full {
		t.Fatal("share 0 should clamp to calibration")
	}
	if g.EffectiveRate("netflix", 2) != full {
		t.Fatal("share >1 should clamp")
	}
}

func TestEffectiveBandwidthConsistent(t *testing.T) {
	d := RTX2080()
	const k = 32
	want := d.UpdateRate("netflix") * float64(16*k+4)
	if got := d.EffectiveBandwidth("netflix", k); got != want {
		t.Fatalf("EffectiveBandwidth = %v, want %v", got, want)
	}
}

func TestDeviceString(t *testing.T) {
	d := Xeon6242(16)
	if s := d.String(); s != "6242-16T(cpu,16T)" {
		t.Fatalf("String = %q", s)
	}
}
