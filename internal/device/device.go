// Package device models the processors of the paper's test platform: two
// Intel Xeon Gold 6242 CPUs, an NVIDIA RTX 2080, an RTX 2080 Super, and
// (for the motivation experiments of Figure 3) a Tesla V100.
//
// Since this reproduction has no access to the physical parts, every device
// carries calibration data taken from the paper's own measurements:
// per-dataset SGD update rates from Table 4 ("computing power",
// updates/second over a 20-epoch run) and runtime memory bandwidths from
// Table 2. The simulated platform replays those rates, so all timing
// results inherit the paper's processor ratios.
package device

import (
	"fmt"
	"math"
)

// Kind distinguishes processor classes.
type Kind int

const (
	// CPU is a multicore host processor.
	CPU Kind = iota
	// GPU is a discrete accelerator reached over PCIe.
	GPU
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case GPU:
		return "gpu"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Device is one processor with its calibrated performance profile.
type Device struct {
	Name    string
	Kind    Kind
	Threads int // configured worker threads (CPU cores×HT or GPU resident threads)

	// MemBandwidth is the measured runtime memory bandwidth in bytes/s
	// (Table 2), the B_i of the paper's cost model Eq. 2.
	MemBandwidth float64

	// PriceUSD is the launch street price used for Figure 3(b).
	PriceUSD float64

	// HasCopyEngine reports whether the device can overlap transfers with
	// compute (GPU copy engines; CPUs only via an integrated GPU's BLT
	// engine — Strategy 3 in Section 3.4).
	HasCopyEngine bool

	// rates maps dataset name → measured updates/second (Table 4).
	rates map[string]float64
	// baseRate is the fallback updates/second for unknown datasets
	// (the Netflix calibration point).
	baseRate float64
}

// UpdateRate reports the device's calibrated SGD throughput in rating
// updates per second when training the named dataset. Unknown datasets fall
// back to the Netflix calibration point scaled by a working-set factor
// identical for all devices (so ratios stay honest).
func (d *Device) UpdateRate(dataset string) float64 {
	if r, ok := d.rates[dataset]; ok {
		return r
	}
	return d.baseRate
}

// Load-dependence of collaborative throughput. Two opposing effects make
// DP0's proportional split imbalanced (the gap Algorithm 1 closes,
// Figure 8):
//
//   - gpuLoadBias: GPU memory bandwidth rises slightly when the assigned
//     share shrinks (Table 2 measures 2080: 378.6 → 388.8 GB/s going from
//     the whole input to a DP0 share), so GPUs finish a touch early.
//   - cpuLoadFloor: CPU workers lose efficiency on small shards — the
//     fixed per-epoch costs (thread-pool dispatch, block-grid setup) stop
//     amortising — so CPUs become the stragglers. This is why the paper's
//     Figure 9 sees ordinary workers contribute >80% but never 100% of
//     their standalone power.
const (
	gpuLoadBias  = 0.04
	cpuLoadFloor = 0.85
)

// EffectiveRate reports the update rate when the device is assigned the
// given share of the input data (share ∈ (0,1]). Calibration rates were
// measured at share 1 ("IW" in Table 2), so the factor is 1 there.
func (d *Device) EffectiveRate(dataset string, share float64) float64 {
	r := d.UpdateRate(dataset)
	if share <= 0 || share > 1 {
		share = 1
	}
	if d.Kind == GPU {
		r *= 1 + gpuLoadBias*(1-share)
	} else {
		r *= cpuLoadFloor + (1-cpuLoadFloor)*share
	}
	return r
}

// RuntimeBandwidth reports the measured memory bandwidth when the device
// holds the given share of the input, reproducing Table 2's observation:
// GPU bandwidth rises slightly on smaller working sets while CPU bandwidth
// is flat.
func (d *Device) RuntimeBandwidth(share float64) float64 {
	if share <= 0 || share > 1 {
		share = 1
	}
	if d.Kind == GPU {
		return d.MemBandwidth * (1 + gpuLoadBias*(1-share))
	}
	return d.MemBandwidth
}

// EffectiveBandwidth reports the memory traffic the device sustains while
// updating the named dataset, in bytes/s: rate × (16k+4) for the model's
// per-update traffic. It is the B_i that makes the paper's Eq. 2 agree
// with the measured update rates.
func (d *Device) EffectiveBandwidth(dataset string, k int) float64 {
	return d.UpdateRate(dataset) * float64(16*k+4)
}

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("%s(%s,%dT)", d.Name, d.Kind, d.Threads)
}

const gb = 1e9

// Dataset keys of the calibration tables (matching package dataset names).
const (
	dsNetflix = "netflix"
	dsR1      = "r1"
	dsR1Star  = "r1star"
	dsR2      = "r2"
	dsML20M   = "ml-20m"
)

// Xeon6242 returns an Intel Xeon Gold 6242 configured with the given
// thread count. The paper uses 24T (full), 16T (overall-performance runs)
// and 10T (the deliberately weakened "6242l" used to add heterogeneity).
// Rates for the measured 24T/16T points come straight from Table 4; other
// thread counts scale by the empirical exponent fitted between them.
func Xeon6242(threads int) *Device {
	if threads < 1 {
		// lint:invariant thread counts are validated at the CLI boundary (hccmf-sim parseWorker) and fixed in presets elsewhere; non-positive is a wiring bug.
		panic("device: Xeon6242 needs ≥1 thread")
	}
	// Table 4 measured updates/s at 24 threads.
	base := map[string]float64{
		dsNetflix: 348790567,
		dsR1:      190891071,
		dsR1Star:  190891071, // R1* shares R1's profile (same dims, denser)
		dsR2:      266293289,
		dsML20M:   261609815,
	}
	at16 := map[string]float64{
		dsNetflix: 272502189.3,
		dsR1:      191469060.9,
		dsR1Star:  191469060.9,
		dsR2:      212851540,
		dsML20M:   250860330,
	}
	// Thread scaling exponent fitted on the Netflix pair; sublinear because
	// SGD on CPUs is bandwidth-bound before it is core-bound.
	alpha := math.Log(at16[dsNetflix]/base[dsNetflix]) / math.Log(16.0/24.0)
	scale := math.Pow(float64(threads)/24.0, alpha)

	rates := make(map[string]float64, len(base))
	for ds, r := range base {
		switch threads {
		case 24:
			rates[ds] = r
		case 16:
			rates[ds] = at16[ds]
		default:
			rates[ds] = r * scale
		}
	}
	// Memory bandwidth: 67.3 GB/s measured at full threads (Table 2),
	// 39.3 GB/s at the 10-thread configuration; interpolate linearly on
	// threads between those two anchors.
	var bw float64
	switch {
	case threads >= 24:
		bw = 67.3 * gb
	case threads <= 10:
		bw = 39.3 * gb * float64(threads) / 10
	default:
		bw = (39.3 + (67.3-39.3)*float64(threads-10)/14.0) * gb
	}
	name := "6242"
	if threads <= 10 {
		name = "6242l" // the paper's label for the weakened CPU
	}
	return &Device{
		Name:         fmt.Sprintf("%s-%dT", name, threads),
		Kind:         CPU,
		Threads:      threads,
		MemBandwidth: bw,
		PriceUSD:     2529,
		rates:        rates,
		baseRate:     rates[dsNetflix],
	}
}

// RTX2080 returns the NVIDIA GeForce RTX 2080 profile (41216 resident
// threads in the paper's configuration).
func RTX2080() *Device {
	rates := map[string]float64{
		dsNetflix: 918333483.2,
		dsR1:      801190194,
		dsR1Star:  801190194,
		dsR2:      339096219.3,
		dsML20M:   835890148.7,
	}
	return &Device{
		Name: "2080", Kind: GPU, Threads: 41216,
		MemBandwidth:  378.6 * gb,
		PriceUSD:      699,
		HasCopyEngine: true,
		rates:         rates,
		baseRate:      rates[dsNetflix],
	}
}

// RTX2080Super returns the NVIDIA GeForce RTX 2080 Super profile (43008
// resident threads).
func RTX2080Super() *Device {
	rates := map[string]float64{
		dsNetflix: 1052866849,
		dsR1:      939313585.8,
		dsR1Star:  939313585.8,
		dsR2:      354261902.7,
		dsML20M:   905200490.3,
	}
	return &Device{
		Name: "2080S", Kind: GPU, Threads: 43008,
		MemBandwidth:  407.0 * gb,
		PriceUSD:      719,
		HasCopyEngine: true,
		rates:         rates,
		baseRate:      rates[dsNetflix],
	}
}

// TeslaV100 returns the Tesla V100 profile used only in the Figure 3
// motivation study. The paper reports no Table 4 row for it; rates scale
// the 2080S profile by the ratio that reproduces Figure 3(a)'s "6242-2080S
// is close to V100" observation.
func TeslaV100() *Device {
	const v100Over2080S = 1.33
	s := RTX2080Super()
	rates := make(map[string]float64, len(s.rates))
	for ds, r := range s.rates {
		rates[ds] = r * v100Over2080S
	}
	return &Device{
		Name: "V100", Kind: GPU, Threads: 5120 * 16,
		MemBandwidth:  900 * gb, // HBM2
		PriceUSD:      8999,
		HasCopyEngine: true,
		rates:         rates,
		baseRate:      rates[dsNetflix],
	}
}
