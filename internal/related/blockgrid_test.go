package related

import (
	"sync"
	"testing"

	"hccmf/internal/mf"
	"hccmf/internal/sparse"
)

func TestBlockCollaborativeConverges(t *testing.T) {
	m := lowRank(t, 120, 90, 6000, 21)
	e := &BlockCollaborative{Workers: 4}
	f := mf.NewFactorsInit(m.Rows, m.Cols, 8, m.MeanRating(), sparse.NewRand(22))
	h := mf.HyperParams{Gamma: 0.01, Lambda1: 0.005, Lambda2: 0.005}
	before := mf.RMSE(f, m.Entries)
	for ep := 0; ep < 25; ep++ {
		e.Epoch(f, m, h)
	}
	after := mf.RMSE(f, m.Entries)
	if after >= before || after > 0.4 {
		t.Fatalf("block-collab RMSE %v → %v", before, after)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Name() != "block-collab-4" {
		t.Fatalf("Name = %q", e.Name())
	}
	// Every block hand-off goes through the global lock: at least one
	// acquisition per block per epoch.
	minAcq := int64(25 * 5 * 5)
	if e.LockAcquisitions < minAcq {
		t.Fatalf("lock acquisitions = %d, want ≥ %d", e.LockAcquisitions, minAcq)
	}
}

func TestBlockCollaborativeSingleWorkerIsSerial(t *testing.T) {
	m := lowRank(t, 40, 30, 800, 23)
	f1 := mf.NewFactorsInit(m.Rows, m.Cols, 4, m.MeanRating(), sparse.NewRand(1))
	f2 := f1.Clone()
	h := mf.HyperParams{Gamma: 0.01}
	(&BlockCollaborative{Workers: 1}).Epoch(f1, m, h)
	mf.Serial{}.Epoch(f2, m, h)
	for i := range f1.P {
		if f1.P[i] != f2.P[i] {
			t.Fatal("1-worker block-collab diverged from serial")
		}
	}
}

func TestBlockCollaborativeTinyMatrixFallsBack(t *testing.T) {
	m := sparse.NewCOO(2, 2, 2)
	m.Add(0, 0, 1)
	m.Add(1, 1, 2)
	f := mf.NewFactorsInit(2, 2, 2, 1.5, sparse.NewRand(1))
	(&BlockCollaborative{Workers: 4}).Epoch(f, m, mf.HyperParams{Gamma: 0.01})
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

// The Section 3.3 communication argument, quantified: on tall matrices the
// block grid moves (p+1)(m+n)/(2pn) times the row grid's Q-only traffic —
// approaching (m+n)/2n ≈ 14x on the Netflix shape as p grows, because the
// block grid must ship P rows around while the row grid never moves P.
func TestBlockGridTrafficExceedsRowGrid(t *testing.T) {
	const m, n, k = 480190, 17771, 128 // Netflix shape
	for _, p := range []int{2, 4, 8} {
		grid, err := BlockGridTraffic(m, n, k, p+1)
		if err != nil {
			t.Fatal(err)
		}
		row, err := RowGridQOnlyTraffic(n, k, p)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(grid) / float64(row)
		if ratio < 10 {
			t.Fatalf("p=%d: block grid only %vx the row grid traffic", p, ratio)
		}
		// Closed form check.
		want := float64(p+1) * float64(m+n) / (2 * float64(p) * float64(n))
		if diff := ratio/want - 1; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("p=%d: ratio %v, closed form %v", p, ratio, want)
		}
	}
}

func TestTrafficValidation(t *testing.T) {
	if _, err := BlockGridTraffic(0, 1, 1, 1); err == nil {
		t.Fatal("zero m accepted")
	}
	if _, err := RowGridQOnlyTraffic(1, 0, 1); err == nil {
		t.Fatal("zero k accepted")
	}
}

// Exclusivity invariant under concurrency: the scheduler never admits two
// blocks sharing a row or column.
func TestExclusiveSchedulerInvariant(t *testing.T) {
	const side = 6
	s := newExclusiveScheduler(side, side)
	var mu chanCounter
	done := make(chan int, 16)
	for w := 0; w < 6; w++ {
		go func() {
			count := 0
			for {
				idx, _, ok := s.acquire()
				if !ok {
					done <- count
					return
				}
				if !mu.enter(idx/side, idx%side) {
					t.Error("two in-flight blocks share a row or column")
				}
				count++
				mu.leave(idx/side, idx%side)
				s.release(idx)
			}
		}()
	}
	total := 0
	for w := 0; w < 6; w++ {
		total += <-done
	}
	if total != side*side {
		t.Fatalf("processed %d blocks, want %d", total, side*side)
	}
}

// chanCounter tracks in-flight row/column usage.
type chanCounter struct {
	mu   sync.Mutex
	rows [16]int
	cols [16]int
}

func (c *chanCounter) enter(r, col int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rows[r]++
	c.cols[col]++
	return c.rows[r] <= 1 && c.cols[col] <= 1
}

func (c *chanCounter) leave(r, col int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rows[r]--
	c.cols[col]--
}
