package related

import (
	"math"
	"testing"

	"hccmf/internal/mf"
	"hccmf/internal/sparse"
)

// lowRank builds a trainable synthetic matrix.
func lowRank(t testing.TB, rows, cols, nnz int, seed uint64) *sparse.COO {
	t.Helper()
	rng := sparse.NewRand(seed)
	const rank = 4
	pf := make([]float32, rows*rank)
	qf := make([]float32, cols*rank)
	for i := range pf {
		pf[i] = 0.5 + rng.Float32()
	}
	for i := range qf {
		qf[i] = 0.5 + rng.Float32()
	}
	m := sparse.NewCOO(rows, cols, nnz)
	for c := 0; c < nnz; c++ {
		u, i := rng.Intn(rows), rng.Intn(cols)
		var dot float32
		for f := 0; f < rank; f++ {
			dot += pf[u*rank+f] * qf[i*rank+f]
		}
		m.Add(int32(u), int32(i), dot+0.05*(rng.Float32()-0.5))
	}
	m.Shuffle(rng)
	return m
}

func TestDSGDConverges(t *testing.T) {
	m := lowRank(t, 120, 90, 6000, 1)
	e := &DSGD{Workers: 4}
	f := mf.NewFactorsInit(m.Rows, m.Cols, 8, m.MeanRating(), sparse.NewRand(2))
	h := mf.HyperParams{Gamma: 0.01, Lambda1: 0.005, Lambda2: 0.005}
	before := mf.RMSE(f, m.Entries)
	for ep := 0; ep < 25; ep++ {
		e.Epoch(f, m, h)
	}
	after := mf.RMSE(f, m.Entries)
	if after >= before || after > 0.4 {
		t.Fatalf("DSGD RMSE %v → %v", before, after)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Name() != "dsgd-4" {
		t.Fatalf("Name = %q", e.Name())
	}
}

func TestDSGDSingleWorkerIsSerial(t *testing.T) {
	m := lowRank(t, 40, 30, 800, 3)
	f1 := mf.NewFactorsInit(m.Rows, m.Cols, 4, m.MeanRating(), sparse.NewRand(1))
	f2 := f1.Clone()
	h := mf.HyperParams{Gamma: 0.01}
	(&DSGD{Workers: 1}).Epoch(f1, m, h)
	mf.Serial{}.Epoch(f2, m, h)
	for i := range f1.P {
		if f1.P[i] != f2.P[i] {
			t.Fatal("1-worker DSGD diverged from serial")
		}
	}
}

func TestDSGDStrataAreConflictFree(t *testing.T) {
	// The rotation property itself: in any sub-epoch, the p blocks share
	// no block-row and no block-column.
	const p = 5
	for s := 0; s < p; s++ {
		rows := map[int]bool{}
		cols := map[int]bool{}
		for w := 0; w < p; w++ {
			bc := (w + s) % p
			if rows[w] || cols[bc] {
				t.Fatalf("stratum %d has a conflict at worker %d", s, w)
			}
			rows[w] = true
			cols[bc] = true
		}
	}
}

func TestEpochMakespanCritique(t *testing.T) {
	// The paper's Section 5 point: equal split on heterogeneous rates is
	// gated by the slowest processor.
	rates := []float64{1052866849, 918333483, 348790567, 204000000}
	const nnz = 99072112
	dsgd, err := EpochMakespan(nnz, rates)
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := BalancedMakespan(nnz, rates)
	if err != nil {
		t.Fatal(err)
	}
	if dsgd <= balanced {
		t.Fatalf("DSGD %v not worse than balanced %v", dsgd, balanced)
	}
	// Closed forms: nnz/(p·min) vs nnz/Σ.
	wantDSGD := float64(nnz) / (4 * 204000000)
	if math.Abs(dsgd-wantDSGD) > 1e-9 {
		t.Fatalf("makespan = %v, want %v", dsgd, wantDSGD)
	}
	// On this platform the slowdown is ~3x — the buckets effect.
	if ratio := dsgd / balanced; ratio < 2 || ratio > 5 {
		t.Fatalf("heterogeneity penalty = %vx", ratio)
	}
}

func TestMakespanValidation(t *testing.T) {
	if _, err := EpochMakespan(10, nil); err == nil {
		t.Fatal("empty rates accepted")
	}
	if _, err := EpochMakespan(10, []float64{0}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := BalancedMakespan(10, nil); err == nil {
		t.Fatal("empty rates accepted")
	}
	if _, err := BalancedMakespan(10, []float64{-1}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestNOMADConvergesAndCounts(t *testing.T) {
	// Unlike the Hogwild engines, NOMAD is genuinely race-free: P rows are
	// worker-owned and Q travels inside channel-passed tokens, so this
	// test runs under -race too.
	m := lowRank(t, 100, 60, 5000, 5)
	f := mf.NewFactorsInit(m.Rows, m.Cols, 8, m.MeanRating(), sparse.NewRand(6))
	h := mf.HyperParams{Gamma: 0.01, Lambda1: 0.005, Lambda2: 0.005}
	before := mf.RMSE(f, m.Entries)
	n := &NOMAD{Workers: 4}
	const epochs = 25
	stats, err := n.Run(f, m, h, epochs)
	if err != nil {
		t.Fatal(err)
	}
	after := mf.RMSE(f, m.Entries)
	if after >= before || after > 0.5 {
		t.Fatalf("NOMAD RMSE %v → %v", before, after)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every column makes epochs·p hops: message count is exact.
	want := int64(epochs) * 4 * int64(m.Cols)
	if stats.Messages != want {
		t.Fatalf("messages = %d, want %d", stats.Messages, want)
	}
	if stats.BusBytes != want*8*4 {
		t.Fatalf("bus bytes = %d", stats.BusBytes)
	}
	if n.Name() != "nomad-4" {
		t.Fatalf("Name = %q", n.Name())
	}
}

func TestNOMADSingleWorker(t *testing.T) {
	m := lowRank(t, 50, 30, 1000, 7)
	f := mf.NewFactorsInit(m.Rows, m.Cols, 4, m.MeanRating(), sparse.NewRand(8))
	h := mf.HyperParams{Gamma: 0.01}
	stats, err := (&NOMAD{Workers: 1}).Run(f, m, h, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != int64(10*m.Cols) {
		t.Fatalf("messages = %d", stats.Messages)
	}
	if rmse := mf.RMSE(f, m.Entries); rmse > 0.5 {
		t.Fatalf("single-worker NOMAD RMSE %v", rmse)
	}
}

func TestNOMADValidation(t *testing.T) {
	m := lowRank(t, 10, 10, 50, 9)
	f := mf.NewFactors(10, 10, 4)
	if _, err := (&NOMAD{Workers: 2}).Run(f, m, mf.HyperParams{}, 0); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

// The paper's communication critique, quantified. NOMAD's raw feature
// bytes are the same order as HCC-MF's Q-only pull/push (n·p·k vs
// 2·n·p·k per epoch) — the overhead the paper objects to is *granularity*:
// the bytes arrive in n·p per-column messages per epoch instead of 2·p
// bulk transfers, so per-message latency and kernel crossings dominate,
// which is exactly what the COMM-P measurements of Table 5 price at ~6.6×.
func TestNOMADTrafficGranularity(t *testing.T) {
	m := lowRank(t, 100, 60, 5000, 10)
	f := mf.NewFactorsInit(m.Rows, m.Cols, 8, m.MeanRating(), sparse.NewRand(11))
	h := mf.HyperParams{Gamma: 0.01}
	const p, epochs = 4, 5
	stats, err := (&NOMAD{Workers: p}).Run(f, m, h, epochs)
	if err != nil {
		t.Fatal(err)
	}
	// Same order of bytes as HCC Q-only (within 4x either way).
	hccBytes := int64(epochs) * p * 2 * int64(m.Cols) * 8 * 4
	if stats.BusBytes < hccBytes/4 || stats.BusBytes > hccBytes*4 {
		t.Fatalf("NOMAD bytes %d not the same order as HCC's %d", stats.BusBytes, hccBytes)
	}
	// But in vastly more messages: n·p per epoch vs HCC's 2·p.
	hccMessages := int64(epochs) * p * 2
	if stats.Messages < 25*hccMessages {
		t.Fatalf("NOMAD messages %d vs HCC %d: granularity story broken",
			stats.Messages, hccMessages)
	}
	// Average message size is a single column: k floats.
	if avg := stats.BusBytes / stats.Messages; avg != 8*4 {
		t.Fatalf("average message = %d bytes, want one k=8 column (32)", avg)
	}
}
