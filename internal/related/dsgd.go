// Package related implements the distributed SGD-MF systems the paper
// positions HCC-MF against (Section 5): DSGD's stratified rotation
// (Gemulla et al., reference [7]) and NOMAD's asynchronous column passing
// (Yun et al., reference [29]). Both really train, so the paper's
// critiques become measurable: DSGD's equal row split straggles on
// heterogeneous processors (the "buckets effect"), and NOMAD's per-column
// message passing moves far more feature data than HCC-MF's epoch-level
// pull/push.
package related

import (
	"fmt"
	"sync"

	"hccmf/internal/mf"
	"hccmf/internal/sparse"
)

// DSGD is stratified SGD: the rating matrix is tiled into a p×p block
// grid; a sub-epoch assigns worker i the block (i, (i+s) mod p), so the
// p concurrent blocks share no rows or columns and need no locks; a
// barrier separates sub-epochs and an epoch is p sub-epochs (every block
// trained once).
//
// Faithful to the original — and to the paper's critique — the row grid
// is an *equal* split: DSGD has no notion of heterogeneous worker speed,
// so the slowest processor gates every sub-epoch.
type DSGD struct {
	// Workers is the number of parallel workers p.
	Workers int

	grid *sparse.BlockGridded
	src  *sparse.COO
}

// Name identifies the system in reports.
func (d *DSGD) Name() string { return fmt.Sprintf("dsgd-%d", d.Workers) }

// Epoch implements mf.Engine: p sub-epochs with rotating strata.
func (d *DSGD) Epoch(f *mf.Factors, train *sparse.COO, h mf.HyperParams) {
	p := d.Workers
	if p < 1 {
		p = 1
	}
	if p > train.Rows {
		p = train.Rows
	}
	if p > train.Cols {
		p = train.Cols
	}
	if p == 1 {
		mf.TrainEntries(f, train.Entries, h)
		return
	}
	grid := d.cachedGrid(train, p)
	if grid == nil {
		mf.TrainEntries(f, train.Entries, h)
		return
	}
	for s := 0; s < p; s++ {
		var wg sync.WaitGroup
		for w := 0; w < p; w++ {
			block := grid.Blocks[w*p+(w+s)%p]
			wg.Add(1)
			go func(entries []sparse.Rating) {
				defer wg.Done()
				// lint:allow raceguard each stratum is a diagonal of the block grid: blocks share no rows or columns, so factor updates are disjoint by construction.
				mf.TrainEntries(f, entries, h)
			}(block.Entries)
		}
		wg.Wait() // the stratum barrier
	}
}

func (d *DSGD) cachedGrid(train *sparse.COO, p int) *sparse.BlockGridded {
	if d.grid != nil && d.src == train && d.grid.NBR == p {
		return d.grid
	}
	g, err := sparse.NewBlockGrid(train, p, p)
	if err != nil {
		return nil
	}
	d.grid, d.src = g, train
	return g
}

// EpochMakespan models one DSGD epoch on heterogeneous workers with the
// given update rates: each of the p sub-epochs costs the *maximum* block
// time across workers (the barrier), with blocks sized by the equal row
// split — nnz/p² per block on average, all processed at each worker's own
// rate. Returns the epoch time in seconds.
//
// This is the quantitative form of the paper's Section 5 critique: with
// rates r_1..r_p, DSGD's epoch ≈ p · (nnz/p²) / min(r) = nnz/(p·min(r)),
// while a load-balanced split achieves nnz/Σr.
func EpochMakespan(nnz int64, rates []float64) (float64, error) {
	p := len(rates)
	if p == 0 {
		return 0, fmt.Errorf("related: no workers")
	}
	minRate := rates[0]
	for i, r := range rates {
		if r <= 0 {
			return 0, fmt.Errorf("related: rate[%d] = %v", i, r)
		}
		if r < minRate {
			minRate = r
		}
	}
	blockNNZ := float64(nnz) / float64(p*p)
	return float64(p) * blockNNZ / minRate, nil
}

// BalancedMakespan is the load-balanced reference: nnz/Σrates.
func BalancedMakespan(nnz int64, rates []float64) (float64, error) {
	if len(rates) == 0 {
		return 0, fmt.Errorf("related: no workers")
	}
	var sum float64
	for i, r := range rates {
		if r <= 0 {
			return 0, fmt.Errorf("related: rate[%d] = %v", i, r)
		}
		sum += r
	}
	return float64(nnz) / sum, nil
}
