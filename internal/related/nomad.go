package related

import (
	"fmt"
	"sync"

	"hccmf/internal/mf"
	"hccmf/internal/sparse"
)

// NOMAD (Non-locking stOchastic Multi-machine Alternating Descent) trains
// MF without locks or epochs-level barriers by circulating *column
// ownership*: each worker owns a fixed row block; item columns travel
// between workers as tokens carrying the column's current q vector. A
// worker receiving column j trains all of its local ratings for item j
// against its own P rows and the token's q, then forwards the token.
//
// The implementation reproduces the properties the paper critiques
// (Section 5):
//
//   - the lock-free mechanism is "completely supported by the transmission
//     of parameter messages": every hop moves k floats, so the per-epoch
//     feature traffic is n·p·k parameters versus HCC-MF's n·k per worker
//     epoch-level pull/push — same order, but NOMAD pays it in n·p tiny
//     messages whose per-message overhead a batched pull amortises;
//   - workers never conflict on q (single token) but progress is gated by
//     token circulation, so an unbalanced rating distribution starves
//     some workers while others drown.
type NOMAD struct {
	// Workers is the number of concurrent workers.
	Workers int
	// QueueCap bounds each worker's token inbox (default 4·columns/p).
	QueueCap int
}

// Name identifies the system in reports.
func (n *NOMAD) Name() string { return fmt.Sprintf("nomad-%d", n.Workers) }

// Stats accounts one Run.
type Stats struct {
	// Messages is the number of column-token hops.
	Messages int64
	// BusBytes is the feature payload moved: Messages · k · 4.
	BusBytes int64
}

// token is one circulating column with its live q vector.
type token struct {
	col int32
	q   []float32
}

// Run trains for the given number of logical epochs: every column makes
// `epochs` full tours of the worker ring. The factors' Q rows are the
// token payloads during the run and are written back on completion; P rows
// are owned per worker (equal row split, as in the original).
func (n *NOMAD) Run(f *mf.Factors, train *sparse.COO, h mf.HyperParams, epochs int) (Stats, error) {
	p := n.Workers
	if p < 1 {
		p = 1
	}
	if epochs < 1 {
		return Stats{}, fmt.Errorf("related: epochs = %d", epochs)
	}
	if p > train.Rows {
		p = train.Rows
	}

	// Equal row split; bucket each worker's entries by column for O(1)
	// token service.
	perWorkerCol := make([]map[int32][]sparse.Rating, p)
	for w := 0; w < p; w++ {
		perWorkerCol[w] = make(map[int32][]sparse.Rating)
	}
	rowOf := func(u int32) int {
		w := int(int64(u) * int64(p) / int64(train.Rows))
		if w >= p {
			w = p - 1
		}
		return w
	}
	for _, e := range train.Entries {
		w := rowOf(e.U)
		perWorkerCol[w][e.I] = append(perWorkerCol[w][e.I], e)
	}

	queueCap := n.QueueCap
	if queueCap <= 0 {
		queueCap = 4 * (train.Cols/p + 1)
	}
	inboxes := make([]chan token, p)
	for w := range inboxes {
		inboxes[w] = make(chan token, train.Cols+queueCap)
	}

	// Seed: columns start round-robin across workers, each carrying its
	// q vector out of the shared factors.
	k := f.K
	for j := 0; j < train.Cols; j++ {
		q := make([]float32, k)
		copy(q, f.QRow(int32(j)))
		inboxes[j%p] <- token{col: int32(j), q: q}
	}

	// A column retires after epochs·p hops (one tour visits every worker
	// once); its q is written back to the shared factors on retirement.
	// Inbox buffers hold every live token, so forwards never block and
	// the ring can be closed safely once the last column retires.
	hopBudget := epochs * p
	hops := make([]int, train.Cols)
	live := train.Cols
	var stats Stats
	var mu sync.Mutex

	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			myCols := perWorkerCol[w]
			for tok := range inboxes[w] {
				// Train this worker's ratings of the column against the
				// live q. P rows are worker-owned: no cross-worker races.
				for _, e := range myCols[tok.col] {
					mf.UpdateOne(f.PRow(e.U), tok.q, e.V, h)
				}
				mu.Lock()
				stats.Messages++
				hops[tok.col]++
				retire := hops[tok.col] >= hopBudget
				if retire {
					live--
				}
				last := live == 0
				mu.Unlock()
				if retire {
					copy(f.Q[int(tok.col)*k:(int(tok.col)+1)*k], tok.q)
					if last {
						for _, ch := range inboxes {
							close(ch)
						}
					}
					continue
				}
				inboxes[(w+1)%p] <- tok
			}
		}(w)
	}
	wg.Wait()
	stats.BusBytes = stats.Messages * int64(k) * 4
	return stats, nil
}
