package related

import (
	"fmt"
	"sync"

	"hccmf/internal/mf"
	"hccmf/internal/sparse"
)

// BlockCollaborative is the design HCC-MF's Section 3.3 decides *against*:
// extending FPSGD/cuMF_SGD's exclusive block scheduling across workers. A
// global (p+1)×(p+1) block grid is guarded by one lock-protected scheduler;
// a worker acquires a free block — one sharing no block-row or block-column
// with any in-flight block — trains it against the shared factors directly
// (exclusivity makes this race-free), and releases it. An epoch visits
// every block exactly once.
//
// It converges like FPSGD and needs no server, but two properties justify
// the paper's choice of the row grid:
//
//   - every block acquisition must move that block's P rows *and* Q
//     columns, so distributed-memory traffic is BlockGridTraffic —
//     (g)·(m+n)·k parameters per epoch for a g×g grid versus the row
//     grid's ~2·p·n·k with Q-only (see the tests);
//   - the scheduler's global lock is on the critical path of every block
//     hand-off, the "global locks" cost the paper's Section 5 points at.
type BlockCollaborative struct {
	// Workers is the number of concurrent workers.
	Workers int
	// GridExtra widens the grid beyond the minimum Workers+1 per side.
	GridExtra int

	grid *sparse.BlockGridded
	src  *sparse.COO
	// LockAcquisitions counts scheduler entries across all epochs — the
	// global-lock pressure metric.
	LockAcquisitions int64
}

// Name identifies the engine.
func (b *BlockCollaborative) Name() string {
	return fmt.Sprintf("block-collab-%d", b.Workers)
}

// Epoch implements mf.Engine.
func (b *BlockCollaborative) Epoch(f *mf.Factors, train *sparse.COO, h mf.HyperParams) {
	p := b.Workers
	if p < 1 {
		p = 1
	}
	side := p + 1 + b.GridExtra
	if side > train.Rows {
		side = train.Rows
	}
	if side > train.Cols {
		side = train.Cols
	}
	if p == 1 || side < 2 {
		mf.TrainEntries(f, train.Entries, h)
		return
	}
	grid := b.cachedGrid(train, side)
	if grid == nil {
		mf.TrainEntries(f, train.Entries, h)
		return
	}
	sched := newExclusiveScheduler(grid.NBR, grid.NBC)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx, acquisitions, ok := sched.acquire()
				if !ok {
					return
				}
				b.addAcquisitions(acquisitions)
				// lint:allow raceguard the exclusive scheduler hands each worker a block whose row/col range no other in-flight block shares, so updates are disjoint by construction.
				mf.TrainEntries(f, grid.Blocks[idx].Entries, h)
				sched.release(idx)
			}
		}()
	}
	wg.Wait()
}

var lockCounterMu sync.Mutex

func (b *BlockCollaborative) addAcquisitions(n int64) {
	lockCounterMu.Lock()
	b.LockAcquisitions += n
	lockCounterMu.Unlock()
}

func (b *BlockCollaborative) cachedGrid(train *sparse.COO, side int) *sparse.BlockGridded {
	if b.grid != nil && b.src == train && b.grid.NBR == side {
		return b.grid
	}
	g, err := sparse.NewBlockGrid(train, side, side)
	if err != nil {
		return nil
	}
	b.grid, b.src = g, train
	return g
}

// exclusiveScheduler is the global lock the paper objects to: every block
// hand-off serialises through it.
type exclusiveScheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	nbr     int
	nbc     int
	done    []bool
	rowBusy []bool
	colBusy []bool
	left    int
}

func newExclusiveScheduler(nbr, nbc int) *exclusiveScheduler {
	s := &exclusiveScheduler{
		nbr: nbr, nbc: nbc,
		done:    make([]bool, nbr*nbc),
		rowBusy: make([]bool, nbr),
		colBusy: make([]bool, nbc),
		left:    nbr * nbc,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// acquire returns a free, undone block, the number of lock entries it
// needed (1 + wake-ups), and ok=false when the epoch has drained.
func (s *exclusiveScheduler) acquire() (int, int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := int64(1)
	for {
		if s.left == 0 {
			return 0, entries, false
		}
		for br := 0; br < s.nbr; br++ {
			if s.rowBusy[br] {
				continue
			}
			for bc := 0; bc < s.nbc; bc++ {
				if s.colBusy[bc] || s.done[br*s.nbc+bc] {
					continue
				}
				idx := br*s.nbc + bc
				s.done[idx] = true
				s.rowBusy[br] = true
				s.colBusy[bc] = true
				s.left--
				return idx, entries, true
			}
		}
		entries++
		s.cond.Wait()
	}
}

func (s *exclusiveScheduler) release(idx int) {
	s.mu.Lock()
	s.rowBusy[idx/s.nbc] = false
	s.colBusy[idx%s.nbc] = false
	s.mu.Unlock()
	s.cond.Broadcast()
}

// BlockGridTraffic reports the distributed-memory feature traffic of one
// block-grid epoch in parameters: each of the g² blocks moves its m/g P
// rows and n/g Q columns to whichever worker trains it, so the epoch total
// is g·(m+n)·k — growing with the grid side, which itself must grow with
// the worker count.
func BlockGridTraffic(m, n, k, gridSide int) (int64, error) {
	if m <= 0 || n <= 0 || k <= 0 || gridSide <= 0 {
		return 0, fmt.Errorf("related: invalid traffic args m=%d n=%d k=%d g=%d", m, n, k, gridSide)
	}
	return int64(gridSide) * int64(m+n) * int64(k), nil
}

// RowGridQOnlyTraffic is HCC-MF's counterpart under the row grid with
// Strategy 1: each of p workers pulls and pushes Q once per epoch —
// 2·p·n·k parameters, independent of m.
func RowGridQOnlyTraffic(n, k, workers int) (int64, error) {
	if n <= 0 || k <= 0 || workers <= 0 {
		return 0, fmt.Errorf("related: invalid traffic args n=%d k=%d p=%d", n, k, workers)
	}
	return 2 * int64(workers) * int64(n) * int64(k), nil
}
