package bus

import (
	"testing"

	"hccmf/internal/simengine"
)

func TestTypeStrings(t *testing.T) {
	cases := map[Type]string{
		PCIe3x16: "pcie3-x16", UPI: "upi", QPI: "qpi", Local: "local",
		Type(9): "bus.Type(9)",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(ty), got, want)
		}
	}
}

func TestBandwidthsMatchPaper(t *testing.T) {
	// Section 3.3: x16 PCIe Gen3 ≈ 16 GB/s vs QPI 16–20.8 GB/s.
	if PCIe3x16.Bandwidth() != 16e9 {
		t.Fatalf("PCIe = %v", PCIe3x16.Bandwidth())
	}
	if UPI.Bandwidth() != 20.8e9 {
		t.Fatalf("UPI = %v", UPI.Bandwidth())
	}
	if QPI.Bandwidth() != 16e9 {
		t.Fatalf("QPI = %v", QPI.Bandwidth())
	}
	if Local.Bandwidth() <= UPI.Bandwidth() {
		t.Fatal("local memory path must beat any external channel")
	}
}

func TestBandwidthUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown type did not panic")
		}
	}()
	Type(42).Bandwidth()
}

func TestNewChannel(t *testing.T) {
	s := simengine.New()
	ch := NewChannel(s, "gpu0-pcie", PCIe3x16)
	if ch.Type != PCIe3x16 {
		t.Fatal("type not stored")
	}
	if ch.Link.Bandwidth() != 16e9 {
		t.Fatalf("link bandwidth = %v", ch.Link.Bandwidth())
	}
	if ch.Link.Name() != "gpu0-pcie" {
		t.Fatalf("link name = %q", ch.Link.Name())
	}
}

func TestChannelsAreIndependent(t *testing.T) {
	s := simengine.New()
	a := NewChannel(s, "a", PCIe3x16)
	b := NewChannel(s, "b", PCIe3x16)
	var ta, tb float64
	s.Go("wa", func(p *simengine.Proc) {
		a.Link.Transfer(p, 16e9)
		ta = s.Now()
	})
	s.Go("wb", func(p *simengine.Proc) {
		b.Link.Transfer(p, 16e9)
		tb = s.Now()
	})
	s.Run()
	if ta != 1 || tb != 1 {
		t.Fatalf("independent channels contended: %v %v", ta, tb)
	}
}
