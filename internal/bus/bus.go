// Package bus models the interconnects of a multi-CPU/GPU machine
// (paper Figure 2): PCIe 3.0 x16 lanes between GPUs and their host CPU,
// Intel UPI/QPI hops between sockets, and the local memory path a worker
// time-sharing the server's own CPU uses. Each physical channel becomes a
// processor-sharing simengine.Link, so independent channels move data in
// parallel while transfers on the same channel contend — exactly the
// property HCC-MF's parallel pull/push design exploits.
package bus

import (
	"fmt"

	"hccmf/internal/simengine"
)

// Type enumerates the interconnect technologies in the modelled platform.
type Type int

const (
	// PCIe3x16 is a PCI Express 3.0 x16 slot (discrete GPU attach).
	PCIe3x16 Type = iota
	// UPI is an Intel Ultra Path Interconnect hop (socket to socket).
	UPI
	// QPI is the older Intel QuickPath Interconnect hop.
	QPI
	// Local is the degenerate "channel" of a worker running on the
	// server's own CPU: a shared-memory copy at memory bandwidth.
	Local
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case PCIe3x16:
		return "pcie3-x16"
	case UPI:
		return "upi"
	case QPI:
		return "qpi"
	case Local:
		return "local"
	default:
		return fmt.Sprintf("bus.Type(%d)", int(t))
	}
}

const gb = 1e9

// Bandwidth reports the effective unidirectional bandwidth of the channel
// type in bytes/second. Values follow Section 3.3 of the paper: PCIe 3.0
// x16 ≈ 16 GB/s, UPI ≈ 20.8 GB/s, QPI ≈ 16 GB/s; Local uses a
// memory-copy figure well above any external channel.
func (t Type) Bandwidth() float64 {
	switch t {
	case PCIe3x16:
		return 16 * gb
	case UPI:
		return 20.8 * gb
	case QPI:
		return 16 * gb
	case Local:
		return 60 * gb
	default:
		// lint:invariant BusType is a closed enum defined in this package; an unknown value is a missed switch arm, not user input.
		panic(fmt.Sprintf("bus: unknown type %d", int(t)))
	}
}

// Channel is one physical interconnect instance materialised in a
// simulation.
type Channel struct {
	Type Type
	Link *simengine.Link
}

// NewChannel creates a simulation link for one physical channel. Each call
// models a distinct set of lanes: two GPUs on their own x16 slots get two
// independent channels, as in the paper's platform.
func NewChannel(sim *simengine.Sim, name string, t Type) *Channel {
	return &Channel{Type: t, Link: sim.NewLink(name, t.Bandwidth())}
}
