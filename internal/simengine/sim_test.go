package simengine

import (
	"math"
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("final time = %v", s.Now())
	}
}

func TestSameTimeEventsRunInScheduleOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time order = %v", order)
		}
	}
}

func TestScheduleNegativePanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.Schedule(-1, func() {})
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	s := New()
	ran := 0
	s.Schedule(1, func() { ran++ })
	s.Schedule(5, func() { ran++ })
	s.RunUntil(2)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if s.Now() != 1 {
		t.Fatalf("Now = %v, want 1", s.Now())
	}
	s.Run()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2 after Run", ran)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var times []Time
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(2, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v", times)
	}
}

func TestProcessDelay(t *testing.T) {
	s := New()
	var marks []Time
	s.Go("worker", func(p *Proc) {
		marks = append(marks, s.Now())
		p.Delay(2.5)
		marks = append(marks, s.Now())
		p.Delay(1.5)
		marks = append(marks, s.Now())
	})
	s.Run()
	want := []Time{0, 2.5, 4}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestTwoProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := New()
		var log []string
		s.Go("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Delay(2)
				log = append(log, "a")
			}
		})
		s.Go("b", func(p *Proc) {
			for i := 0; i < 2; i++ {
				p.Delay(3)
				log = append(log, "b")
			}
		})
		s.Run()
		return log
	}
	first := run()
	// t=2,3,4,6,6; at the t=6 tie b wins because its wake event was
	// scheduled at t=3, before a's at t=4 (FIFO among equal times).
	want := []string{"a", "b", "a", "b", "a"}
	if len(first) != len(want) {
		t.Fatalf("log = %v", first)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("log = %v, want %v", first, want)
		}
	}
	for trial := 0; trial < 20; trial++ {
		got := run()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("nondeterministic interleaving on trial %d: %v", trial, got)
			}
		}
	}
}

func TestProcName(t *testing.T) {
	s := New()
	s.Go("gpu0", func(p *Proc) {
		if p.Name() != "gpu0" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Sim() != s {
			t.Error("Sim() does not return owner")
		}
	})
	s.Run()
}

func TestSignalBroadcast(t *testing.T) {
	s := New()
	sig := s.NewSignal()
	woken := 0
	for i := 0; i < 3; i++ {
		s.Go("waiter", func(p *Proc) {
			sig.Wait(p)
			woken++
		})
	}
	s.Go("firer", func(p *Proc) {
		p.Delay(5)
		if sig.NWaiting() != 3 {
			t.Errorf("NWaiting = %d, want 3", sig.NWaiting())
		}
		sig.Fire()
	})
	s.Run()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
	if s.Now() != 5 {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestSignalReusableAfterFire(t *testing.T) {
	s := New()
	sig := s.NewSignal()
	count := 0
	s.Go("waiter", func(p *Proc) {
		sig.Wait(p)
		count++
		sig.Wait(p)
		count++
	})
	s.Go("firer", func(p *Proc) {
		p.Delay(1)
		sig.Fire()
		p.Delay(1)
		sig.Fire()
	})
	s.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	s := New()
	res := s.NewResource(1)
	var inside int
	var maxInside int
	for i := 0; i < 4; i++ {
		s.Go("p", func(p *Proc) {
			res.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Delay(1)
			inside--
			res.Release()
		})
	}
	s.Run()
	if maxInside != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxInside)
	}
	if s.Now() != 4 {
		t.Fatalf("serialised time = %v, want 4", s.Now())
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	s := New()
	res := s.NewResource(2)
	for i := 0; i < 4; i++ {
		s.Go("p", func(p *Proc) {
			res.Acquire(p)
			p.Delay(1)
			res.Release()
		})
	}
	s.Run()
	if s.Now() != 2 {
		t.Fatalf("capacity-2 time = %v, want 2", s.Now())
	}
}

func TestResourceFIFO(t *testing.T) {
	s := New()
	res := s.NewResource(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Go("p", func(p *Proc) {
			p.Delay(float64(i) * 0.001) // arrive in index order
			res.Acquire(p)
			order = append(order, i)
			p.Delay(1)
			res.Release()
		})
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("admission order = %v", order)
		}
	}
}

func TestResourceReleaseWithoutAcquirePanics(t *testing.T) {
	s := New()
	res := s.NewResource(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	res.Release()
}

func TestResourceCapacityValidation(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	s.NewResource(0)
}

func TestResourceCounters(t *testing.T) {
	s := New()
	res := s.NewResource(1)
	s.Go("holder", func(p *Proc) {
		res.Acquire(p)
		p.Delay(10)
		res.Release()
	})
	s.Go("waiter", func(p *Proc) {
		p.Delay(1)
		res.Acquire(p)
		res.Release()
	})
	s.Go("checker", func(p *Proc) {
		p.Delay(2)
		if res.InUse() != 1 {
			t.Errorf("InUse = %d, want 1", res.InUse())
		}
		if res.QueueLen() != 1 {
			t.Errorf("QueueLen = %d, want 1", res.QueueLen())
		}
	})
	s.Run()
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	sig := s.NewSignal()
	s.Go("stuck", func(p *Proc) {
		sig.Wait(p) // never fired
	})
	defer func() {
		if recover() == nil {
			t.Fatal("deadlocked simulation did not panic")
		}
	}()
	s.Run()
}

func TestDelayValidation(t *testing.T) {
	s := New()
	s.Go("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Delay(NaN) did not panic")
			}
			panic("unwind") // keep the process accounting honest
		}()
		p.Delay(math.NaN())
	})
	defer func() { recover() }()
	s.Run()
}
