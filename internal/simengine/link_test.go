package simengine

import (
	"math"
	"testing"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestLinkSingleTransfer(t *testing.T) {
	s := New()
	l := s.NewLink("pcie", 100) // 100 B/s
	var done Time
	s.Go("w", func(p *Proc) {
		l.Transfer(p, 250)
		done = s.Now()
	})
	s.Run()
	if !almost(done, 2.5) {
		t.Fatalf("transfer time = %v, want 2.5", done)
	}
	if !almost(l.BytesMoved(), 250) {
		t.Fatalf("BytesMoved = %v", l.BytesMoved())
	}
	if !almost(l.BusyTime(), 2.5) {
		t.Fatalf("BusyTime = %v", l.BusyTime())
	}
}

func TestLinkZeroSizeImmediate(t *testing.T) {
	s := New()
	l := s.NewLink("x", 10)
	var done Time = -1
	s.Go("w", func(p *Proc) {
		l.Transfer(p, 0)
		done = s.Now()
	})
	s.Run()
	if done != 0 {
		t.Fatalf("zero transfer finished at %v", done)
	}
}

func TestLinkFairSharing(t *testing.T) {
	// Two equal transfers sharing a link take twice as long.
	s := New()
	l := s.NewLink("x", 100)
	var t1, t2 Time
	s.Go("a", func(p *Proc) {
		l.Transfer(p, 100)
		t1 = s.Now()
	})
	s.Go("b", func(p *Proc) {
		l.Transfer(p, 100)
		t2 = s.Now()
	})
	s.Run()
	if !almost(t1, 2) || !almost(t2, 2) {
		t.Fatalf("shared transfers finished at %v, %v; want 2, 2", t1, t2)
	}
}

func TestLinkUnequalSharing(t *testing.T) {
	// A 100B and a 300B transfer start together on a 100 B/s link.
	// Phase 1: both at 50 B/s; the small one finishes at t=2 (the big one
	// has 200B left). Phase 2: big one alone at 100 B/s, finishes at t=4.
	s := New()
	l := s.NewLink("x", 100)
	var small, big Time
	s.Go("small", func(p *Proc) {
		l.Transfer(p, 100)
		small = s.Now()
	})
	s.Go("big", func(p *Proc) {
		l.Transfer(p, 300)
		big = s.Now()
	})
	s.Run()
	if !almost(small, 2) {
		t.Fatalf("small finished at %v, want 2", small)
	}
	if !almost(big, 4) {
		t.Fatalf("big finished at %v, want 4", big)
	}
}

func TestLinkLateArrivalSlowsExisting(t *testing.T) {
	// 200B transfer starts at t=0 on a 100 B/s link; at t=1 (100B left) a
	// 50B transfer arrives. Phase 2 at 50 B/s each: newcomer done at t=2,
	// original has 50B left, finishes alone at t=2.5.
	s := New()
	l := s.NewLink("x", 100)
	var first, second Time
	s.Go("first", func(p *Proc) {
		l.Transfer(p, 200)
		first = s.Now()
	})
	s.Go("second", func(p *Proc) {
		p.Delay(1)
		l.Transfer(p, 50)
		second = s.Now()
	})
	s.Run()
	if !almost(second, 2) {
		t.Fatalf("second finished at %v, want 2", second)
	}
	if !almost(first, 2.5) {
		t.Fatalf("first finished at %v, want 2.5", first)
	}
}

func TestLinkSequentialTransfersNoInterference(t *testing.T) {
	s := New()
	l := s.NewLink("x", 10)
	var marks []Time
	s.Go("w", func(p *Proc) {
		l.Transfer(p, 10)
		marks = append(marks, s.Now())
		l.Transfer(p, 20)
		marks = append(marks, s.Now())
	})
	s.Run()
	if !almost(marks[0], 1) || !almost(marks[1], 3) {
		t.Fatalf("marks = %v, want [1 3]", marks)
	}
}

func TestLinkUtilization(t *testing.T) {
	s := New()
	l := s.NewLink("x", 100)
	s.Go("w", func(p *Proc) {
		l.Transfer(p, 100) // busy 0..1
		p.Delay(1)         // idle 1..2
		l.Transfer(p, 100) // busy 2..3
	})
	s.Run()
	if !almost(l.Utilization(), 2.0/3.0) {
		t.Fatalf("Utilization = %v, want 2/3", l.Utilization())
	}
}

func TestLinkManyConcurrentTransfers(t *testing.T) {
	// n identical transfers of size B on bandwidth BW all complete at
	// n*B/BW regardless of n.
	const n = 10
	s := New()
	l := s.NewLink("x", 1000)
	var finish []Time
	for i := 0; i < n; i++ {
		s.Go("w", func(p *Proc) {
			l.Transfer(p, 100)
			finish = append(finish, s.Now())
		})
	}
	s.Run()
	if len(finish) != n {
		t.Fatalf("finished %d, want %d", len(finish), n)
	}
	for _, f := range finish {
		if !almost(f, 1) {
			t.Fatalf("finish times = %v, want all 1", finish)
		}
	}
	if l.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain", l.InFlight())
	}
}

func TestLinkLargeTransferPrecision(t *testing.T) {
	// Multi-gigabyte transfer at PCIe bandwidth must not leave the event
	// loop spinning on float residue.
	s := New()
	l := s.NewLink("pcie3", 16e9)
	var done Time
	s.Go("w", func(p *Proc) {
		l.Transfer(p, 64e9)
		done = s.Now()
	})
	s.Run()
	if !almost(done, 4) {
		t.Fatalf("64GB over 16GB/s = %v s, want 4", done)
	}
}

func TestLinkValidation(t *testing.T) {
	s := New()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-bandwidth link did not panic")
			}
		}()
		s.NewLink("bad", 0)
	}()
	l := s.NewLink("ok", 10)
	s.Go("w", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative transfer did not panic")
			}
			panic("unwind")
		}()
		l.Transfer(p, -5)
	})
	defer func() { recover() }()
	s.Run()
}

func TestTwoLinksIndependent(t *testing.T) {
	// Transfers on different links do not contend — the paper's Figure 2
	// point that independent QPI and PCIe channels move data in parallel.
	s := New()
	pcie := s.NewLink("pcie", 100)
	qpi := s.NewLink("qpi", 100)
	var a, b Time
	s.Go("gpu", func(p *Proc) {
		pcie.Transfer(p, 100)
		a = s.Now()
	})
	s.Go("cpu", func(p *Proc) {
		qpi.Transfer(p, 100)
		b = s.Now()
	})
	s.Run()
	if !almost(a, 1) || !almost(b, 1) {
		t.Fatalf("independent links interfered: %v, %v", a, b)
	}
}
