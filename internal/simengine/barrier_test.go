package simengine

import "testing"

func TestBarrierReleasesTogether(t *testing.T) {
	s := New()
	b := s.NewBarrier(3)
	var release []Time
	for i := 0; i < 3; i++ {
		i := i
		s.Go("p", func(p *Proc) {
			p.Delay(float64(i + 1)) // arrive at t=1,2,3
			b.Arrive(p)
			release = append(release, s.Now())
		})
	}
	s.Run()
	if len(release) != 3 {
		t.Fatalf("released %d", len(release))
	}
	for _, r := range release {
		if r != 3 {
			t.Fatalf("release times = %v, want all 3", release)
		}
	}
	if b.Rounds() != 1 {
		t.Fatalf("Rounds = %d", b.Rounds())
	}
}

func TestBarrierReusableAcrossRounds(t *testing.T) {
	s := New()
	b := s.NewBarrier(2)
	var log []Time
	for i := 0; i < 2; i++ {
		i := i
		s.Go("p", func(p *Proc) {
			for round := 0; round < 3; round++ {
				p.Delay(float64(i+1) * 0.5)
				b.Arrive(p)
				if i == 0 {
					log = append(log, s.Now())
				}
			}
		})
	}
	s.Run()
	if b.Rounds() != 3 {
		t.Fatalf("Rounds = %d, want 3", b.Rounds())
	}
	if len(log) != 3 {
		t.Fatalf("log = %v", log)
	}
	for r := 1; r < 3; r++ {
		if log[r] <= log[r-1] {
			t.Fatalf("rounds not progressing: %v", log)
		}
	}
}

func TestBarrierSingleParty(t *testing.T) {
	s := New()
	b := s.NewBarrier(1)
	done := false
	s.Go("p", func(p *Proc) {
		b.Arrive(p) // must not block
		done = true
	})
	s.Run()
	if !done {
		t.Fatal("single-party barrier blocked")
	}
}

func TestBarrierValidation(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	s.NewBarrier(0)
}
