package simengine

import "fmt"

// Barrier is a reusable n-party synchronisation point: the first n−1
// processes to Arrive block; the n-th releases everyone and the barrier
// resets for the next round. HCC-MF's epoch loop uses one to model the
// bulk-synchronous boundary between sync and the next epoch's pulls.
type Barrier struct {
	sim     *Sim
	parties int
	arrived int
	sig     *Signal
	rounds  int
}

// NewBarrier creates a barrier for the given number of parties (≥1).
func (s *Sim) NewBarrier(parties int) *Barrier {
	if parties < 1 {
		// lint:invariant simulation-kernel contract: a barrier with no parties could never release; topology is code, not input.
		panic("simengine: barrier needs ≥1 party")
	}
	return &Barrier{sim: s, parties: parties, sig: s.NewSignal()}
}

// Arrive blocks p until all parties of the current round have arrived.
func (b *Barrier) Arrive(p *Proc) {
	b.arrived++
	if b.arrived > b.parties {
		// lint:invariant barrier overfull means a process arrived twice in one phase — a scheduling bug that must fail loudly, not converge to a wrong timing.
		panic(fmt.Sprintf("simengine: barrier overfull (%d/%d)", b.arrived, b.parties))
	}
	if b.arrived == b.parties {
		b.arrived = 0
		b.rounds++
		b.sig.Fire()
		return
	}
	b.sig.Wait(p)
}

// Rounds reports completed barrier rounds.
func (b *Barrier) Rounds() int { return b.rounds }
