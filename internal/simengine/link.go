package simengine

import (
	"fmt"
	"math"
)

// Link models a bandwidth-shared communication channel (a PCIe lane group,
// a UPI/QPI hop, a memory bus) with a processor-sharing service discipline:
// when n transfers are in flight each proceeds at Bandwidth/n. This matches
// how concurrent DMA engines and bus masters split a physical channel and
// is the contention model the paper's communication analysis assumes.
type Link struct {
	sim       *Sim
	name      string
	bandwidth float64 // bytes per simulated second

	active     map[*transfer]struct{}
	lastUpdate Time
	generation uint64 // invalidates stale completion events

	// accounting
	bytesMoved float64
	busyTime   Time
}

type transfer struct {
	remaining float64
	owner     *Proc
}

// NewLink creates a link with the given bandwidth in bytes/second.
func (s *Sim) NewLink(name string, bandwidthBytesPerSec float64) *Link {
	if bandwidthBytesPerSec <= 0 || math.IsNaN(bandwidthBytesPerSec) {
		// lint:invariant link bandwidths are platform constants; a non-positive value would make transfer time undefined.
		panic(fmt.Sprintf("simengine: link %q bandwidth %v", name, bandwidthBytesPerSec))
	}
	return &Link{
		sim:       s,
		name:      name,
		bandwidth: bandwidthBytesPerSec,
		active:    make(map[*transfer]struct{}),
	}
}

// Name reports the link name.
func (l *Link) Name() string { return l.name }

// Bandwidth reports the configured bandwidth in bytes/second.
func (l *Link) Bandwidth() float64 { return l.bandwidth }

// BytesMoved reports the total bytes completed over the link.
func (l *Link) BytesMoved() float64 { return l.bytesMoved }

// BusyTime reports the total simulated time during which at least one
// transfer was in flight.
func (l *Link) BusyTime() Time { return l.busyTime }

// Utilization reports BusyTime divided by elapsed simulation time.
func (l *Link) Utilization() float64 {
	if l.sim.Now() == 0 {
		return 0
	}
	return l.busyTime / l.sim.Now()
}

// Transfer moves size bytes over the link on behalf of process p, blocking
// p until the transfer completes under processor sharing. Zero-size
// transfers complete immediately.
func (l *Link) Transfer(p *Proc, size float64) {
	if size < 0 || math.IsNaN(size) {
		// lint:invariant a negative transfer size can only come from a broken byte-count computation in the caller.
		panic(fmt.Sprintf("simengine: transfer of %v bytes", size))
	}
	if size == 0 {
		return
	}
	l.advance()
	tr := &transfer{remaining: size, owner: p}
	l.active[tr] = struct{}{}
	l.reschedule()
	p.yield() // woken by the completion event
}

// advance applies elapsed time to every active transfer.
func (l *Link) advance() {
	now := l.sim.Now()
	elapsed := now - l.lastUpdate
	if elapsed > 0 && len(l.active) > 0 {
		rate := l.bandwidth / float64(len(l.active))
		for tr := range l.active {
			moved := rate * elapsed
			if moved > tr.remaining {
				moved = tr.remaining
			}
			tr.remaining -= moved
			l.bytesMoved += moved
		}
		l.busyTime += elapsed
	}
	l.lastUpdate = now
}

// reschedule plans the next completion event for the current active set.
func (l *Link) reschedule() {
	l.generation++
	if len(l.active) == 0 {
		return
	}
	gen := l.generation
	minRem := math.Inf(1)
	for tr := range l.active {
		if tr.remaining < minRem {
			minRem = tr.remaining
		}
	}
	perTransferRate := l.bandwidth / float64(len(l.active))
	delay := minRem / perTransferRate
	l.sim.Schedule(delay, func() {
		if gen != l.generation {
			return // membership changed; a newer event is queued
		}
		l.complete()
	})
}

// complete finishes every transfer that has drained and wakes its owner.
func (l *Link) complete() {
	l.advance()
	// Completion tolerance: float residue from the delay arithmetic
	// (remaining/rate, then rate*elapsed) can leave a few micro-bytes on
	// large transfers. The tolerance must cover the largest residue the
	// clock can fail to resolve — one ulp of `now` worth of bandwidth —
	// or a residual transfer whose finish delay rounds to zero would spin
	// the event loop forever.
	eps := 1e-3 + l.bandwidth*4*ulp(l.sim.Now())
	for tr := range l.active {
		if tr.remaining <= eps {
			delete(l.active, tr)
			owner := tr.owner
			l.sim.Schedule(0, owner.resume)
		}
	}
	l.reschedule()
}

// ulp reports the distance from t to the next representable float64.
func ulp(t float64) float64 {
	next := math.Nextafter(math.Abs(t), math.Inf(1))
	return next - math.Abs(t)
}

// InFlight reports the number of active transfers.
func (l *Link) InFlight() int { return len(l.active) }
