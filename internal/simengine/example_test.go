package simengine_test

import (
	"fmt"

	"hccmf/internal/simengine"
)

// A two-worker epoch: both pull over their own channels, compute, then
// synchronize through the server's single sync thread.
func Example() {
	sim := simengine.New()
	pcie := sim.NewLink("pcie", 16e9) // 16 GB/s
	upi := sim.NewLink("upi", 20.8e9)
	server := sim.NewResource(1)

	worker := func(name string, link *simengine.Link, computeSec float64) {
		sim.Go(name, func(p *simengine.Proc) {
			link.Transfer(p, 64e6) // pull 64 MB of features
			p.Delay(computeSec)
			link.Transfer(p, 64e6) // push
			server.Acquire(p)
			p.Delay(0.002) // server folds the push
			server.Release()
			fmt.Printf("%s done at %.4fs\n", name, sim.Now())
		})
	}
	worker("gpu", pcie, 0.050)
	worker("cpu", upi, 0.060)
	sim.Run()
	// Output:
	// gpu done at 0.0600s
	// cpu done at 0.0682s
}
