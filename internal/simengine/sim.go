// Package simengine is a deterministic discrete-event simulation core. It
// provides a virtual clock with an event queue, lightweight processes
// (goroutines that the scheduler runs one at a time, so simulations are
// reproducible), counted resources, condition signals, and bandwidth-shared
// links with a processor-sharing service model.
//
// HCC-MF uses it to model the paper's multi-CPU/GPU workstation: workers
// and the parameter server are processes, PCIe/UPI interconnects are
// links, and the server's sync thread is a unit-capacity resource.
package simengine

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in seconds.
type Time = float64

// event is one scheduled callback.
type event struct {
	t   Time
	seq uint64 // tie-break so same-time events run in schedule order
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is one simulation instance. Not safe for concurrent use from outside
// its own processes (which is by design: determinism).
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64

	// paused is signalled by a process when it blocks or finishes,
	// returning control to the event loop.
	paused chan struct{}

	running   bool
	processes int // live (started, unfinished) processes

	// procPanic carries a panic out of a process goroutine so it resurfaces
	// on the event loop (and therefore in the caller of Run).
	procPanic interface{}
}

// New returns an empty simulation at time 0.
func New() *Sim {
	return &Sim{paused: make(chan struct{})}
}

// Now reports the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Schedule runs fn at now+delay. Negative delays panic: the past is fixed.
func (s *Sim) Schedule(delay Time, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		// lint:invariant a negative delay would reorder the event heap; delays are computed from nonnegative model terms.
		panic(fmt.Sprintf("simengine: schedule with invalid delay %v", delay))
	}
	s.seq++
	heap.Push(&s.events, &event{t: s.now + delay, seq: s.seq, fn: fn})
}

// Run executes events until the queue is empty. It panics if a process is
// still blocked when the queue drains (deadlock in the modelled system).
func (s *Sim) Run() {
	s.RunUntil(math.Inf(1))
}

// RunUntil executes events with time ≤ limit. Events beyond the limit stay
// queued. It panics on deadlock (live processes but no runnable events).
func (s *Sim) RunUntil(limit Time) {
	if s.running {
		// lint:invariant reentrancy guard: nested Run would interleave two event loops on one clock.
		panic("simengine: Run called reentrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	for len(s.events) > 0 {
		next := s.events[0]
		if next.t > limit {
			return
		}
		heap.Pop(&s.events)
		if next.t < s.now {
			// lint:invariant the event heap yielded a time before now — engine corruption, never input.
			panic(fmt.Sprintf("simengine: time went backwards %v -> %v", s.now, next.t))
		}
		s.now = next.t
		next.fn()
	}
	if s.processes > 0 {
		// lint:invariant blocked processes with an empty event queue is a deadlocked process graph; returning silently would report a truncated simulated time.
		panic(fmt.Sprintf("simengine: deadlock: %d process(es) blocked with no pending events", s.processes))
	}
}

// Proc is the handle a process body uses to interact with simulated time.
// All Proc methods must be called only from inside the process's own
// body function.
type Proc struct {
	sim  *Sim
	name string
	wake chan struct{}
}

// Name reports the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Sim returns the owning simulation.
func (p *Proc) Sim() *Sim { return p.sim }

// Go starts a new process whose body begins executing at the current
// simulated time (strictly: at the next event dispatch). The body runs in
// its own goroutine but only ever concurrently with the event loop's
// bookkeeping, never with another process.
func (s *Sim) Go(name string, body func(p *Proc)) {
	p := &Proc{sim: s, name: name, wake: make(chan struct{})}
	s.processes++
	s.Schedule(0, func() {
		// lint:allow goroutinepolicy the process goroutine is joined by the event loop: every exit path sends on s.paused, received by waitPaused below and by Run's dispatch loop.
		go func() {
			defer func() {
				if r := recover(); r != nil {
					s.procPanic = r
				}
				s.processes--
				s.paused <- struct{}{}
			}()
			body(p)
		}()
		s.waitPaused() // wait until the body blocks or finishes
	})
}

// yield returns control to the event loop and blocks until the next wake.
func (p *Proc) yield() {
	p.sim.paused <- struct{}{}
	<-p.wake
}

// resume hands control to the process and waits for it to pause again.
// Must run on the event-loop side.
func (p *Proc) resume() {
	p.wake <- struct{}{}
	p.sim.waitPaused()
}

// waitPaused blocks until the active process yields or finishes, then
// re-raises any panic that escaped its body.
func (s *Sim) waitPaused() {
	<-s.paused
	if s.procPanic != nil {
		r := s.procPanic
		s.procPanic = nil
		panic(r)
	}
}

// Delay suspends the process for d simulated seconds.
func (p *Proc) Delay(d Time) {
	if d < 0 || math.IsNaN(d) {
		// lint:invariant see Schedule: a negative delay is a caller computation bug.
		panic(fmt.Sprintf("simengine: Delay(%v)", d))
	}
	p.sim.Schedule(d, p.resume)
	p.yield()
}

// Signal is a broadcast condition: processes Wait on it, Fire wakes all
// current waiters. A Signal may be reused after firing.
type Signal struct {
	sim     *Sim
	waiters []*Proc
}

// NewSignal creates a signal bound to the simulation.
func (s *Sim) NewSignal() *Signal { return &Signal{sim: s} }

// Wait blocks the calling process until the next Fire.
func (sig *Signal) Wait(p *Proc) {
	sig.waiters = append(sig.waiters, p)
	p.yield()
}

// Fire wakes every currently waiting process (in wait order) at the
// current time. Callable from event callbacks or process bodies.
func (sig *Signal) Fire() {
	ws := sig.waiters
	sig.waiters = nil
	for _, w := range ws {
		w := w
		sig.sim.Schedule(0, w.resume)
	}
}

// NWaiting reports the number of processes blocked on the signal.
func (sig *Signal) NWaiting() int { return len(sig.waiters) }

// Resource is a counted resource with FIFO admission.
type Resource struct {
	sim      *Sim
	capacity int
	inUse    int
	queue    []*Proc
}

// NewResource creates a resource with the given capacity (≥1).
func (s *Sim) NewResource(capacity int) *Resource {
	if capacity < 1 {
		// lint:invariant resource capacities are platform constants >= 1.
		panic("simengine: resource capacity must be ≥ 1")
	}
	return &Resource{sim: s, capacity: capacity}
}

// Acquire blocks the process until a unit is available, then takes it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.inUse++
		return
	}
	r.queue = append(r.queue, p)
	p.yield()
	// Ownership was transferred by Release before the wake.
}

// Release returns a unit, admitting the head waiter if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		// lint:invariant Release without Acquire is an unbalanced critical section in a simulated process.
		panic("simengine: Release without Acquire")
	}
	if len(r.queue) > 0 {
		head := r.queue[0]
		r.queue = r.queue[1:]
		// The unit passes directly to the waiter; inUse stays constant.
		r.sim.Schedule(0, head.resume)
		return
	}
	r.inUse--
}

// InUse reports currently held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports processes waiting for the resource.
func (r *Resource) QueueLen() int { return len(r.queue) }
