package simengine

import (
	"testing"
	"testing/quick"
)

// Property: under any random schedule of transfers, the link conserves
// bytes (BytesMoved equals the sum of requested sizes) and every transfer
// completes no earlier than its solo time.
func TestLinkConservationProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rng := seed
		next := func() uint32 {
			rng = rng*1664525 + 1013904223
			return rng
		}
		s := New()
		l := s.NewLink("x", 1000)
		const n = 12
		var total float64
		ok := true
		for i := 0; i < n; i++ {
			size := float64(next()%10000) + 1
			start := float64(next() % 50)
			total += size
			s.Go("w", func(p *Proc) {
				p.Delay(start)
				t0 := s.Now()
				l.Transfer(p, size)
				elapsed := s.Now() - t0
				solo := size / l.Bandwidth()
				if elapsed < solo*(1-1e-9) {
					ok = false
				}
			})
		}
		s.Run()
		if l.InFlight() != 0 {
			return false
		}
		moved := l.BytesMoved()
		return ok && moved > total*(1-1e-6) && moved < total*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a resource never admits more holders than its capacity, under
// random hold times.
func TestResourceCapacityProperty(t *testing.T) {
	f := func(seed uint32, capRaw uint8) bool {
		capacity := int(capRaw%4) + 1
		rng := seed
		next := func() uint32 {
			rng = rng*1664525 + 1013904223
			return rng
		}
		s := New()
		res := s.NewResource(capacity)
		holders, maxHolders := 0, 0
		for i := 0; i < 10; i++ {
			hold := float64(next()%20) + 1
			arrive := float64(next() % 30)
			s.Go("p", func(p *Proc) {
				p.Delay(arrive)
				res.Acquire(p)
				holders++
				if holders > maxHolders {
					maxHolders = holders
				}
				p.Delay(hold)
				holders--
				res.Release()
			})
		}
		s.Run()
		return maxHolders <= capacity && holders == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the simulated clock never moves backwards across an arbitrary
// event mix.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rng := seed
		next := func() uint32 {
			rng = rng*1664525 + 1013904223
			return rng
		}
		s := New()
		last := 0.0
		monotone := true
		var schedule func(depth int)
		schedule = func(depth int) {
			if depth > 3 {
				return
			}
			for i := 0; i < 3; i++ {
				d := float64(next() % 100)
				s.Schedule(d, func() {
					if s.Now() < last {
						monotone = false
					}
					last = s.Now()
					schedule(depth + 1)
				})
			}
		}
		schedule(0)
		s.Run()
		return monotone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
