// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4). Each experiment is a pure function returning a
// typed result with a Format method that prints rows shaped like the
// paper's; cmd/hccmf-bench and the repository's bench_test.go both drive
// these functions, so the benchmark harness and the CLI cannot drift
// apart.
//
// Absolute numbers come from the simulated platform (calibrated with the
// paper's own measurements — see internal/device), so the *shape* of every
// result is the reproduction target: who wins, by what factor, where the
// crossovers fall.
package experiments

import (
	"fmt"

	"hccmf/internal/core"
	"hccmf/internal/dataset"
)

// Epochs is the training length of all timing experiments (the paper
// reports 20-epoch totals).
const Epochs = 20

// K is the latent dimension of all timing experiments (cuMF_SGD's 128).
const K = 128

// hccRun executes one simulated HCC-MF run and returns the result.
func hccRun(plat core.Platform, spec dataset.Spec, opts core.PlanOptions, epochs int) (*core.Result, error) {
	return core.Run(core.RunConfig{
		Spec:     spec,
		Platform: plat,
		Epochs:   epochs,
		Plan:     opts,
	})
}

// seconds formats a duration column.
func seconds(v float64) string { return fmt.Sprintf("%10.4f", v) }
