package experiments

import (
	"fmt"
	"strings"

	"hccmf/internal/bus"
	"hccmf/internal/comm"
	"hccmf/internal/core"
	"hccmf/internal/dataset"
	"hccmf/internal/device"
)

// Fig3Row is one bar of Figure 3(a): a platform configuration and its
// 20-epoch Netflix training time (plus the 3(b) price).
type Fig3Row struct {
	Name     string
	Kind     string // "cpu", "gpu", "good-collab", "bad-collab"
	TimeSec  float64
	PriceUSD float64
}

// Figure3Result reproduces Figure 3: the motivation study showing that
// collaborative computing beats single processors when configured well,
// can be destroyed by misconfiguration, and is cheaper than buying a
// bigger GPU.
type Figure3Result struct {
	Rows []Fig3Row
}

// Figure3 runs the motivation experiments on the Netflix shape.
func Figure3() (*Figure3Result, error) {
	spec := dataset.Netflix
	res := &Figure3Result{}

	// Standalone processors (modified FPSGD / cuMF_SGD rates).
	singles := []struct {
		label string
		dev   *device.Device
	}{
		{"Intel Xeon Gold 6242", device.Xeon6242(24)},
		{"RTX 2080", device.RTX2080()},
		{"RTX 2080S", device.RTX2080Super()},
		{"Tesla V100", device.TeslaV100()},
	}
	for _, s := range singles {
		kind := "cpu"
		if s.dev.Kind == device.GPU {
			kind = "gpu"
		}
		res.Rows = append(res.Rows, Fig3Row{
			Name:     s.label,
			Kind:     kind,
			TimeSec:  core.SimulateStandalone(s.dev, spec, Epochs),
			PriceUSD: s.dev.PriceUSD,
		})
	}

	// Good collaborations: carefully planned two-worker platforms.
	combos := []struct {
		label   string
		workers []core.WorkerSpec
		price   float64
	}{
		{"6242-2080",
			[]core.WorkerSpec{
				{Device: device.Xeon6242(24), Bus: bus.UPI},
				{Device: device.RTX2080(), Bus: bus.PCIe3x16},
			},
			device.Xeon6242(24).PriceUSD + device.RTX2080().PriceUSD},
		{"6242-2080S",
			[]core.WorkerSpec{
				{Device: device.Xeon6242(24), Bus: bus.UPI},
				{Device: device.RTX2080Super(), Bus: bus.PCIe3x16},
			},
			device.Xeon6242(24).PriceUSD + device.RTX2080Super().PriceUSD},
		{"2080-2080S",
			[]core.WorkerSpec{
				{Device: device.RTX2080(), Bus: bus.PCIe3x16},
				{Device: device.RTX2080Super(), Bus: bus.PCIe3x16},
			},
			device.RTX2080().PriceUSD + device.RTX2080Super().PriceUSD},
	}
	for _, c := range combos {
		plat := core.Platform{Server: device.Xeon6242(16), Workers: c.workers}
		r, err := hccRun(plat, spec, core.PlanOptions{K: K}, Epochs)
		if err != nil {
			return nil, fmt.Errorf("figure3 %s: %v", c.label, err)
		}
		res.Rows = append(res.Rows, Fig3Row{
			Name: c.label, Kind: "good-collab",
			TimeSec: r.Sim.TotalTime, PriceUSD: c.price,
		})
	}

	// Bad collaborations on the 6242-2080S pair.
	badPlat := core.Platform{Server: device.Xeon6242(16), Workers: combos[1].workers}

	// i) Bad communication: naive full P&Q in FP32 over a slow message
	// transport — no strategy at all.
	naive := comm.Strategy{Encoding: comm.FP32, Streams: 1}
	r, err := hccRun(badPlat, spec, core.PlanOptions{K: K,
		ForceStrategy: &naive, TransportFactor: MessageTransportFactor}, Epochs)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Fig3Row{
		Name: "6242-2080S (Bad communication)", Kind: "bad-collab",
		TimeSec: r.Sim.TotalTime, PriceUSD: combos[1].price,
	})

	// ii) Unbalanced data: the CPU gets the GPU's share and vice versa.
	r, err = hccRun(badPlat, spec, core.PlanOptions{K: K,
		ForceShares: []float64{0.75, 0.25}}, Epochs)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Fig3Row{
		Name: "6242-2080S (Unbalanced data)", Kind: "bad-collab",
		TimeSec: r.Sim.TotalTime, PriceUSD: combos[1].price,
	})

	// iii) Bad thread configuration: the CPU worker runs with 6 threads
	// but keeps the data share planned for 24.
	badThreads := core.Platform{Server: device.Xeon6242(16), Workers: []core.WorkerSpec{
		{Device: device.Xeon6242(6), Bus: bus.UPI},
		{Device: device.RTX2080Super(), Bus: bus.PCIe3x16},
	}}
	full24 := device.Xeon6242(24).UpdateRate(spec.Name)
	gpu := device.RTX2080Super().UpdateRate(spec.Name)
	r, err = hccRun(badThreads, spec, core.PlanOptions{K: K,
		ForceShares: []float64{full24 / (full24 + gpu), gpu / (full24 + gpu)}}, Epochs)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Fig3Row{
		Name: "6242-2080S (Bad threads conf)", Kind: "bad-collab",
		TimeSec: r.Sim.TotalTime, PriceUSD: combos[1].price,
	})
	return res, nil
}

// MessageTransportFactor is COMM-P's slowdown relative to COMM, calibrated
// from Table 5 (Netflix P&Q: 21.82s vs 3.29s ≈ 6.6×) — the cost of the
// marshal/kernel-crossing/unmarshal path the shared-memory design avoids.
const MessageTransportFactor = 6.6

// Find returns the row with the given name (nil if absent).
func (r *Figure3Result) Find(name string) *Fig3Row {
	for i := range r.Rows {
		if r.Rows[i].Name == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// Format renders both panels of Figure 3.
func (r *Figure3Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 3(a): SGD-based MF on different platforms (Netflix, 20 epochs)\n")
	fmt.Fprintf(&b, "%-36s %-12s %12s %10s\n", "platform", "kind", "time(s)", "price($)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-36s %-12s %12.3f %10.0f\n", row.Name, row.Kind, row.TimeSec, row.PriceUSD)
	}
	return b.String()
}
