package experiments

import (
	"fmt"
	"strings"

	"hccmf/internal/bus"
	"hccmf/internal/core"
	"hccmf/internal/dataset"
	"hccmf/internal/device"
)

// Table6Row is one configuration of the limitation study.
type Table6Row struct {
	System  string // "HCC" or "CuMF_SGD"
	Workers string
	Pull    float64
	Compute float64
	Push    float64
	Cost    float64
}

// Table6Result reproduces Table 6: on MovieLens-20m, whose communication
// cost rivals its computation cost, adding a second GPU barely helps.
type Table6Result struct {
	Rows []Table6Row
}

// Table6 runs the ML-20m limitation study.
func Table6() (*Table6Result, error) {
	spec := dataset.MovieLens20M
	res := &Table6Result{}
	server := device.Xeon6242(16)

	configs := []struct {
		label   string
		workers []core.WorkerSpec
	}{
		{"2080S", []core.WorkerSpec{
			{Device: device.RTX2080Super(), Bus: bus.PCIe3x16},
		}},
		{"2080S-2080", []core.WorkerSpec{
			{Device: device.RTX2080Super(), Bus: bus.PCIe3x16},
			{Device: device.RTX2080(), Bus: bus.PCIe3x16},
		}},
	}
	for _, c := range configs {
		plat := core.Platform{Server: server, Workers: c.workers}
		r, err := hccRun(plat, spec, core.PlanOptions{K: K}, Epochs)
		if err != nil {
			return nil, fmt.Errorf("table6 %s: %v", c.label, err)
		}
		// Report the slowest worker's phase profile, as the paper's rows do.
		var pull, comp, push float64
		for _, row := range r.Sim.Trace.Rows() {
			if row.Pull > pull {
				pull = row.Pull
			}
			if row.Compute > comp {
				comp = row.Compute
			}
			if v := row.Push + row.Sync; v > push {
				push = v
			}
		}
		res.Rows = append(res.Rows, Table6Row{
			System: "HCC", Workers: c.label,
			Pull: pull, Compute: comp, Push: push,
			Cost: r.Sim.TotalTime,
		})
	}
	// Standalone cuMF_SGD on the 2080S.
	res.Rows = append(res.Rows, Table6Row{
		System: "CuMF_SGD", Workers: "2080S",
		Cost: core.SimulateStandalone(device.RTX2080Super(), spec, Epochs),
	})
	return res, nil
}

// Row returns the row for a system/workers pair (nil if absent).
func (r *Table6Result) Row(system, workers string) *Table6Row {
	for i := range r.Rows {
		if r.Rows[i].System == system && r.Rows[i].Workers == workers {
			return &r.Rows[i]
		}
	}
	return nil
}

// Format renders the table.
func (r *Table6Result) Format() string {
	var b strings.Builder
	b.WriteString("Table 6: limitation shown with MovieLens-20m (20 epochs)\n")
	fmt.Fprintf(&b, "%-10s %-12s %10s %10s %10s %10s\n",
		"system", "worker", "pull(s)", "comp(s)", "push(s)", "cost(s)")
	for _, row := range r.Rows {
		pull, comp, push := "N/A", "N/A", "N/A"
		if row.System == "HCC" {
			pull = fmt.Sprintf("%10.4f", row.Pull)
			comp = fmt.Sprintf("%10.4f", row.Compute)
			push = fmt.Sprintf("%10.4f", row.Push)
		}
		fmt.Fprintf(&b, "%-10s %-12s %10s %10s %10s %10.4f\n",
			row.System, row.Workers, pull, comp, push, row.Cost)
	}
	return b.String()
}
