package experiments

import (
	"fmt"
	"strings"

	"hccmf/internal/device"
	"hccmf/internal/partition"
)

// Table2Row is one worker column of Table 2: runtime memory bandwidth when
// processing the whole input alone ("IW") versus its DP0 share.
type Table2Row struct {
	Worker   string
	IWGBs    float64
	DP0GBs   float64
	DP0Share float64
}

// Table2Result reproduces Table 2.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 measures the modelled runtime bandwidths of the heterogeneity
// platform's workers under IW and DP0 data assignments.
func Table2() (*Table2Result, error) {
	devs := []*device.Device{
		device.Xeon6242(24),
		device.Xeon6242(10),
		device.RTX2080(),
		device.RTX2080Super(),
	}
	rates := make([]float64, len(devs))
	for i, d := range devs {
		rates[i] = d.UpdateRate("netflix")
	}
	shares, err := partition.DP0(rates)
	if err != nil {
		return nil, err
	}
	res := &Table2Result{}
	for i, d := range devs {
		res.Rows = append(res.Rows, Table2Row{
			Worker:   d.Name,
			IWGBs:    d.RuntimeBandwidth(1) / 1e9,
			DP0GBs:   d.RuntimeBandwidth(shares[i]) / 1e9,
			DP0Share: shares[i],
		})
	}
	return res, nil
}

// Format renders the table in the paper's orientation.
func (r *Table2Result) Format() string {
	var b strings.Builder
	b.WriteString("Table 2: Memory bandwidth (GB/s) of different data partitions\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %10s\n", "worker", "IW", "DP0", "share")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %10.2f %10.2f %10.3f\n", row.Worker, row.IWGBs, row.DP0GBs, row.DP0Share)
	}
	return b.String()
}
