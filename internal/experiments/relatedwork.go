package experiments

import (
	"fmt"
	"strings"

	"hccmf/internal/core"
	"hccmf/internal/dataset"
	"hccmf/internal/mf"
	"hccmf/internal/related"
	"hccmf/internal/sparse"
)

// RelatedWorkResult quantifies the paper's Section 5 comparisons against
// DSGD and NOMAD on the heterogeneous platform.
type RelatedWorkResult struct {
	// DSGDEpoch and HCCEpoch are one-epoch times on the Netflix shape
	// with the paper platform's rates; HeterogeneityPenalty is their ratio
	// (DSGD's equal split vs HCC's balanced partition).
	DSGDEpoch, HCCEpoch  float64
	HeterogeneityPenalty float64

	// NOMADMessages / HCCMessages per Netflix epoch at the platform's
	// worker count, and the byte totals; granularity is the message-count
	// ratio.
	NOMADMessages, HCCMessages int64
	NOMADBytes, HCCBytes       int64
	Granularity                float64

	// Real-training parity on a small instance: all three systems' final
	// RMSE (convergence equivalence).
	HCCRMSE, DSGDRMSE, NOMADRMSE float64
}

// RelatedWork runs the comparison study.
func RelatedWork() (*RelatedWorkResult, error) {
	res := &RelatedWorkResult{}
	spec := dataset.Netflix
	plat := core.PaperPlatformHetero()
	rates := plat.Rates(spec.Name)
	p := len(rates)

	// 1) Makespan: DSGD's equal split vs the balanced reference.
	var err error
	res.DSGDEpoch, err = related.EpochMakespan(spec.NNZ, rates)
	if err != nil {
		return nil, err
	}
	res.HCCEpoch, err = related.BalancedMakespan(spec.NNZ, rates)
	if err != nil {
		return nil, err
	}
	res.HeterogeneityPenalty = res.DSGDEpoch / res.HCCEpoch

	// 2) Communication granularity per epoch (analytic, k = the timing
	// studies' 128): NOMAD circulates every column through every worker;
	// HCC-MF pulls and pushes Q once per worker.
	res.NOMADMessages = int64(spec.N) * int64(p)
	res.NOMADBytes = res.NOMADMessages * int64(K) * 4
	res.HCCMessages = int64(2 * p)
	res.HCCBytes = int64(2*p) * int64(spec.N) * int64(K) * 2 // half-Q
	res.Granularity = float64(res.NOMADMessages) / float64(res.HCCMessages)

	// 3) Convergence parity, really trained on a scaled instance.
	small, err := spec.Scaled(0.002)
	if err != nil {
		return nil, err
	}
	ds, err := dataset.Generate(small, 21)
	if err != nil {
		return nil, err
	}
	const epochs, k = 15, 8
	h := mf.HyperParams{Gamma: small.Params.Gamma,
		Lambda1: small.Params.Lambda1, Lambda2: small.Params.Lambda2}

	hccRes, err := core.Run(core.RunConfig{
		Spec: spec, Platform: plat, Epochs: epochs,
		MaterializeScale: 0.002, RealK: k, Seed: 21,
	})
	if err != nil {
		return nil, err
	}
	res.HCCRMSE = hccRes.FinalRMSE

	fd := mf.NewFactorsInit(ds.Train.Rows, ds.Train.Cols, k, ds.Train.MeanRating(), sparse.NewRand(22))
	dsgd := &related.DSGD{Workers: 4}
	for e := 0; e < epochs; e++ {
		dsgd.Epoch(fd, ds.Train, h)
	}
	res.DSGDRMSE = mf.RMSE(fd, ds.Test.Entries)

	fn := mf.NewFactorsInit(ds.Train.Rows, ds.Train.Cols, k, ds.Train.MeanRating(), sparse.NewRand(22))
	if _, err := (&related.NOMAD{Workers: 4}).Run(fn, ds.Train, h, epochs); err != nil {
		return nil, err
	}
	res.NOMADRMSE = mf.RMSE(fn, ds.Test.Entries)
	return res, nil
}

// Format renders the comparison.
func (r *RelatedWorkResult) Format() string {
	var b strings.Builder
	b.WriteString("Related work (paper Section 5), quantified on the Netflix shape\n")
	fmt.Fprintf(&b, "  DSGD equal-split epoch   : %.4fs (balanced: %.4fs) → %.2fx buckets-effect penalty\n",
		r.DSGDEpoch, r.HCCEpoch, r.HeterogeneityPenalty)
	fmt.Fprintf(&b, "  NOMAD per-epoch comm     : %d messages / %.1f MiB\n",
		r.NOMADMessages, float64(r.NOMADBytes)/(1<<20))
	fmt.Fprintf(&b, "  HCC-MF per-epoch comm    : %d transfers / %.1f MiB (half-Q)\n",
		r.HCCMessages, float64(r.HCCBytes)/(1<<20))
	fmt.Fprintf(&b, "  message granularity gap  : %.0fx\n", r.Granularity)
	fmt.Fprintf(&b, "  convergence parity (RMSE): HCC %.4f, DSGD %.4f, NOMAD %.4f\n",
		r.HCCRMSE, r.DSGDRMSE, r.NOMADRMSE)
	return b.String()
}
