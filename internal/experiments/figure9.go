package experiments

import (
	"fmt"
	"strings"

	"hccmf/internal/comm"
	"hccmf/internal/core"
	"hccmf/internal/dataset"
)

// Fig9Step is one bar segment of Figure 9: the computing power after
// adding the n-th worker, with the ideal stack for comparison.
type Fig9Step struct {
	Workers      int
	AddedWorker  string
	HCCPower     float64
	DeltaPower   float64 // contribution of the newly added worker
	IdealPower   float64
	Contribution float64 // delta / the new worker's standalone power
}

// Fig9Series is one dataset's build-up.
type Fig9Series struct {
	Dataset string
	Steps   []Fig9Step
}

// Figure9Result reproduces Figure 9 (utilization under different system
// scales).
type Figure9Result struct {
	Series []Fig9Series
}

// Figure9 adds workers one by one (in the paper's stacking order: 2080S,
// 6242, 2080, 6242l) and records the computing-power growth.
func Figure9() (*Figure9Result, error) {
	plat := core.PaperPlatformHetero()
	res := &Figure9Result{}
	// R1* runs synchronously with DP2 (as in Figure 8), which keeps the
	// time-shared fourth worker in play — matching the paper's 4-bar
	// stack in Figure 9(d).
	syncOnly := comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 1}
	for _, spec := range []dataset.Spec{
		dataset.Netflix, dataset.YahooR2, dataset.YahooR1, dataset.YahooR1Star,
	} {
		opts := core.PlanOptions{K: K}
		if spec.Name == dataset.YahooR1Star.Name {
			opts.ForceStrategy = &syncOnly
		}
		series := Fig9Series{Dataset: spec.Name}
		prevPower := 0.0
		for n := 1; n <= len(plat.Workers); n++ {
			sub := plat.FirstWorkers(n)
			r, err := hccRun(sub, spec, opts, Epochs)
			if err != nil {
				return nil, fmt.Errorf("figure9 %s/%dw: %v", spec.Name, n, err)
			}
			added := sub.Workers[n-1]
			standalone := added.Device.UpdateRate(spec.Name)
			step := Fig9Step{
				Workers:      n,
				AddedWorker:  added.Name(),
				HCCPower:     r.Power,
				DeltaPower:   r.Power - prevPower,
				IdealPower:   r.IdealPower,
				Contribution: (r.Power - prevPower) / standalone,
			}
			// The planner may drop the time-shared worker (async mode), in
			// which case adding it changes nothing; record the honest
			// delta either way.
			series.Steps = append(series.Steps, step)
			prevPower = r.Power
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// SeriesFor returns the series for a dataset (nil if absent).
func (r *Figure9Result) SeriesFor(ds string) *Fig9Series {
	for i := range r.Series {
		if r.Series[i].Dataset == ds {
			return &r.Series[i]
		}
	}
	return nil
}

// Format renders all series.
func (r *Figure9Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 9: computing power as workers are added (updates/s)\n")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "-- %s\n", s.Dataset)
		fmt.Fprintf(&b, "   %2s %-12s %12s %12s %12s %8s\n",
			"n", "added", "HCC", "delta", "ideal", "contrib")
		for _, st := range s.Steps {
			fmt.Fprintf(&b, "   %2d %-12s %12.3g %12.3g %12.3g %7.0f%%\n",
				st.Workers, st.AddedWorker, st.HCCPower, st.DeltaPower,
				st.IdealPower, st.Contribution*100)
		}
	}
	return b.String()
}
