package experiments

import (
	"fmt"
	"strings"

	"hccmf/internal/comm"
	"hccmf/internal/core"
	"hccmf/internal/dataset"
	"hccmf/internal/partition"
	"hccmf/internal/trace"
)

// Fig8Bar is one horizontal bar of Figure 8: the cumulative 20-epoch phase
// times (taken from the slowest worker per phase) plus the total cost for
// one partition strategy.
type Fig8Bar struct {
	Strategy partition.Strategy
	Pull     float64
	Compute  float64
	Push     float64 // includes server sync, as the paper's "push" bars do
	Total    float64
	// PerWorker carries the full trace rows for detailed inspection.
	PerWorker []trace.Row
}

// Fig8Panel is one subfigure: a dataset × worker-count pair comparing two
// strategies.
type Fig8Panel struct {
	Dataset string
	Workers int
	Bars    []Fig8Bar
}

// Figure8Result reproduces Figure 8's six panels.
type Figure8Result struct {
	Panels []Fig8Panel
}

// Figure8 runs the data-partition-strategy study: DP0 vs DP1 on Netflix
// and R2 (synchronisation negligible), DP1 vs DP2 on R1* (synchronisation
// material; transfers forced synchronous because DP2 is the synchronous-
// mode remedy).
func Figure8() (*Figure8Result, error) {
	res := &Figure8Result{}
	plat := core.PaperPlatformHetero()
	syncOnly := comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 1}

	type study struct {
		spec       dataset.Spec
		strategies []partition.Strategy
		force      *comm.Strategy
	}
	studies := []study{
		{dataset.Netflix, []partition.Strategy{partition.DP0Strategy, partition.DP1Strategy}, nil},
		{dataset.YahooR2, []partition.Strategy{partition.DP0Strategy, partition.DP1Strategy}, nil},
		{dataset.YahooR1Star, []partition.Strategy{partition.DP1Strategy, partition.DP2Strategy}, &syncOnly},
	}
	for _, st := range studies {
		for _, workers := range []int{3, 4} {
			panel := Fig8Panel{Dataset: st.spec.Name, Workers: workers}
			for _, ps := range st.strategies {
				ps := ps
				opts := core.PlanOptions{K: K, ForcePartition: &ps, ForceStrategy: st.force}
				r, err := hccRun(plat.FirstWorkers(workers), st.spec, opts, Epochs)
				if err != nil {
					return nil, fmt.Errorf("figure8 %s/%dw/%v: %v", st.spec.Name, workers, ps, err)
				}
				bar := Fig8Bar{Strategy: ps, Total: r.Sim.TotalTime, PerWorker: r.Sim.Trace.Rows()}
				for _, row := range bar.PerWorker {
					if row.Pull > bar.Pull {
						bar.Pull = row.Pull
					}
					if row.Compute > bar.Compute {
						bar.Compute = row.Compute
					}
					if v := row.Push + row.Sync; v > bar.Push {
						bar.Push = v
					}
				}
				panel.Bars = append(panel.Bars, bar)
			}
			res.Panels = append(res.Panels, panel)
		}
	}
	return res, nil
}

// Panel returns the panel for a dataset and worker count (nil if absent).
func (r *Figure8Result) Panel(ds string, workers int) *Fig8Panel {
	for i := range r.Panels {
		if r.Panels[i].Dataset == ds && r.Panels[i].Workers == workers {
			return &r.Panels[i]
		}
	}
	return nil
}

// Bar returns the bar for a strategy (nil if absent).
func (p *Fig8Panel) Bar(s partition.Strategy) *Fig8Bar {
	for i := range p.Bars {
		if p.Bars[i].Strategy == s {
			return &p.Bars[i]
		}
	}
	return nil
}

// Format renders all panels.
func (r *Figure8Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 8: 20-epoch time by data partition strategy\n")
	for _, p := range r.Panels {
		fmt.Fprintf(&b, "-- %s, %d workers\n", p.Dataset, p.Workers)
		fmt.Fprintf(&b, "   %-5s %10s %10s %10s %10s\n", "strat", "pull(s)", "comp(s)", "push(s)", "total(s)")
		for _, bar := range p.Bars {
			fmt.Fprintf(&b, "   %-5s %s %s %s %s\n", bar.Strategy,
				seconds(bar.Pull), seconds(bar.Compute), seconds(bar.Push), seconds(bar.Total))
		}
	}
	return b.String()
}
