package experiments

import (
	"fmt"
	"math"
	"strings"

	"hccmf/internal/baselines"
	"hccmf/internal/core"
	"hccmf/internal/dataset"
	"hccmf/internal/device"
	"hccmf/internal/metrics"
)

// Fig7Curves holds one dataset's convergence comparison: HCC-MF against
// the FPSGD and cuMF_SGD baselines, all really trained, with simulated
// full-size clocks on the time axis.
type Fig7Curves struct {
	Dataset string
	HCC     *metrics.Curve
	FPSGD   *metrics.Curve
	CuMF    *metrics.Curve
	// TargetRMSE is the common convergence target used for the speedup
	// comparison of Figure 7(d–f).
	TargetRMSE float64
	// SpeedupVsFPSGD and SpeedupVsCuMF are HCC-MF's time-to-target
	// advantages (the paper's 3.1x / 2.9x style numbers).
	SpeedupVsFPSGD float64
	SpeedupVsCuMF  float64
}

// Figure7Result reproduces Figure 7.
type Figure7Result struct {
	Curves []Fig7Curves
}

// Figure7 trains HCC-MF, FPSGD and cuMF_SGD for real on scaled instances
// of Netflix, R1 and R2, recording RMSE per epoch (Figure 7 a–c) and the
// time-to-target speedups (d–f). scale shrinks the materialised data;
// epochs/k/seed control the training runs.
func Figure7(scale float64, epochs, k int, seed uint64) (*Figure7Result, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("figure7: scale %v", scale)
	}
	if epochs < 2 {
		return nil, fmt.Errorf("figure7: epochs %d", epochs)
	}
	res := &Figure7Result{}
	for _, spec := range []dataset.Spec{dataset.Netflix, dataset.YahooR1, dataset.YahooR2} {
		hccRes, err := core.Run(core.RunConfig{
			Spec:             spec,
			Platform:         core.PaperPlatformOverall(),
			Epochs:           epochs,
			Plan:             core.PlanOptions{K: K},
			MaterializeScale: scale,
			RealK:            k,
			Seed:             seed,
		})
		if err != nil {
			return nil, fmt.Errorf("figure7 hcc %s: %v", spec.Name, err)
		}
		fp, err := baselines.FPSGD(24).TrainCurve(spec, scale, epochs, k, seed)
		if err != nil {
			return nil, fmt.Errorf("figure7 fpsgd %s: %v", spec.Name, err)
		}
		cu, err := baselines.CuMFSGD(device.RTX2080Super()).TrainCurve(spec, scale, epochs, k, seed)
		if err != nil {
			return nil, fmt.Errorf("figure7 cumf %s: %v", spec.Name, err)
		}

		c := Fig7Curves{Dataset: spec.Name, HCC: hccRes.Curve, FPSGD: fp, CuMF: cu}
		// TargetRMSE records the worst of the three finals (each curve
		// demonstrably crosses it); speedups use the robust median over
		// the whole shared descent rather than that single target, which
		// sits on an epoch boundary and flips with the seed.
		c.TargetRMSE = math.Max(c.HCC.Final(), math.Max(fp.Final(), cu.Final())) * 1.02
		c.SpeedupVsFPSGD = speedupVs(c.HCC, fp, c.TargetRMSE)
		c.SpeedupVsCuMF = speedupVs(c.HCC, cu, c.TargetRMSE)
		res.Curves = append(res.Curves, c)
	}
	return res, nil
}

// speedupVs prefers the robust median-over-shared-descent speedup and
// falls back to the single-target ratio when the curves never share an
// RMSE band (HCC sometimes sits below a baseline's entire descent after
// one epoch, which is a win the median cannot express).
func speedupVs(hcc, base *metrics.Curve, target float64) float64 {
	if s, ok := metrics.RobustSpeedup(hcc, base, 9); ok {
		return s
	}
	if s, ok := metrics.Speedup(hcc, base, target); ok {
		return s
	}
	return 0
}

// CurvesFor returns the comparison for a dataset (nil if absent).
func (r *Figure7Result) CurvesFor(ds string) *Fig7Curves {
	for i := range r.Curves {
		if r.Curves[i].Dataset == ds {
			return &r.Curves[i]
		}
	}
	return nil
}

// Format renders final RMSEs and speedups (full curves via each Curve's
// own Format).
func (r *Figure7Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 7: convergence and training-speed comparison\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %12s %12s\n",
		"dataset", "HCC rmse", "FPSGD", "CuMF_SGD", "vs FPSGD", "vs CuMF")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "%-10s %10.4f %10.4f %10.4f %11.2fx %11.2fx\n",
			c.Dataset, c.HCC.Final(), c.FPSGD.Final(), c.CuMF.Final(),
			c.SpeedupVsFPSGD, c.SpeedupVsCuMF)
	}
	return b.String()
}
