package experiments

import (
	"fmt"
	"strings"

	"hccmf/internal/core"
	"hccmf/internal/dataset"
	"hccmf/internal/device"
)

// Table4Row is one dataset line of Table 4: standalone computing power per
// processor, the ideal sum, HCC-MF's achieved power and utilization.
type Table4Row struct {
	Dataset     string
	PerDevice   map[string]float64
	Ideal       float64
	HCC         float64
	Utilization float64
}

// Table4Result reproduces Table 4 ("computing power" of 20-epoch training).
type Table4Result struct {
	Devices []string
	Rows    []Table4Row
}

// Table4 runs HCC-MF on the overall-performance platform for each dataset
// and reports Eq. 8 computing powers.
func Table4() (*Table4Result, error) {
	devs := []*device.Device{
		device.Xeon6242(24),
		device.Xeon6242(16),
		device.RTX2080(),
		device.RTX2080Super(),
	}
	res := &Table4Result{}
	for _, d := range devs {
		res.Devices = append(res.Devices, d.Name)
	}
	plat := core.PaperPlatformOverall()
	for _, spec := range []dataset.Spec{
		dataset.Netflix, dataset.YahooR1, dataset.YahooR2, dataset.MovieLens20M,
	} {
		r, err := hccRun(plat, spec, core.PlanOptions{K: K}, Epochs)
		if err != nil {
			return nil, fmt.Errorf("table4 %s: %v", spec.Name, err)
		}
		row := Table4Row{
			Dataset:   spec.Name,
			PerDevice: make(map[string]float64, len(devs)),
			HCC:       r.Power,
		}
		for _, d := range devs {
			p := d.UpdateRate(spec.Name)
			row.PerDevice[d.Name] = p
			row.Ideal += p
		}
		row.Utilization = row.HCC / row.Ideal
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the table in the paper's column order.
func (r *Table4Result) Format() string {
	var b strings.Builder
	b.WriteString("Table 4: HCC-MF's computing power over 20-epoch training (updates/s)\n")
	fmt.Fprintf(&b, "%-10s", "dataset")
	for _, d := range r.Devices {
		fmt.Fprintf(&b, " %12s", d)
	}
	fmt.Fprintf(&b, " %12s %12s %6s\n", "Ideal", "HCC", "util")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s", row.Dataset)
		for _, d := range r.Devices {
			fmt.Fprintf(&b, " %12.3g", row.PerDevice[d])
		}
		fmt.Fprintf(&b, " %12.3g %12.3g %5.0f%%\n", row.Ideal, row.HCC, row.Utilization*100)
	}
	return b.String()
}
