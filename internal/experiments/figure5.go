package experiments

import (
	"fmt"
	"strings"

	"hccmf/internal/comm"
	"hccmf/internal/core"
	"hccmf/internal/dataset"
	"hccmf/internal/partition"
)

// Fig5Diagram is one timing-sequence panel: a configuration label, its
// steady-state epoch time, and the ASCII Gantt of its second epoch.
type Fig5Diagram struct {
	Label     string
	EpochTime float64
	Gantt     string
}

// Figure5Result reproduces Figure 5's three timing sequences on the
// sync-heavy R1* shape: the original unoptimised run, the optimised run
// ignoring synchronisation (DP1), and the optimised run considering it
// (DP2).
type Figure5Result struct {
	Diagrams []Fig5Diagram
}

// Figure5 renders the three timing sequences.
func Figure5() (*Figure5Result, error) {
	plat := core.PaperPlatformHetero()
	spec := dataset.YahooR1Star

	naive := comm.Strategy{Encoding: comm.FP32, Streams: 1}
	tuned := comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 1}
	dp0 := partition.DP0Strategy
	dp1 := partition.DP1Strategy

	configs := []struct {
		label string
		opts  core.PlanOptions
	}{
		{"original (no optimisation)",
			core.PlanOptions{K: K, ForceStrategy: &naive, ForcePartition: &dp0}},
		{"optimised, sync ignored (DP1)",
			core.PlanOptions{K: K, ForceStrategy: &tuned, ForcePartition: &dp1}},
		{"optimised, sync considered (DP2)",
			core.PlanOptions{K: K, ForceStrategy: &tuned}},
	}
	res := &Figure5Result{}
	for _, c := range configs {
		plan, err := core.PlanRun(plat, spec, c.opts)
		if err != nil {
			return nil, fmt.Errorf("figure5 %s: %v", c.label, err)
		}
		sim, err := core.SimulateRun(plat, spec, plan, 3)
		if err != nil {
			return nil, fmt.Errorf("figure5 %s: %v", c.label, err)
		}
		// Render the second epoch (steady state, past the first pull).
		from := sim.EpochTimes[0]
		to := from + sim.EpochTimes[1]
		res.Diagrams = append(res.Diagrams, Fig5Diagram{
			Label:     c.label,
			EpochTime: sim.EpochTimes[1],
			Gantt:     sim.Timeline.Gantt(from, to, 96),
		})
	}
	return res, nil
}

// Format renders all three panels.
func (r *Figure5Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 5: timing sequences of one training epoch (R1* shape)\n")
	for _, d := range r.Diagrams {
		fmt.Fprintf(&b, "\n-- %s — epoch %.4fs\n%s", d.Label, d.EpochTime, d.Gantt)
	}
	return b.String()
}
