package experiments

import (
	"testing"

	"hccmf/internal/metrics"
	"hccmf/internal/raceflag"
)

func maxf(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func minf(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Figure 7 really trains three systems on three datasets; keep the test
// instance small but meaningful.
func TestFigure7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("real training study; skipped in -short")
	}
	if raceflag.Enabled {
		t.Skip("R1 trains with intentionally lock-free async streams; skipped under -race")
	}
	r, err := Figure7(0.001, 20, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 3 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	for _, c := range r.Curves {
		for _, curve := range []struct {
			name string
			pts  int
		}{
			{"HCC", len(c.HCC.Points)},
			{"FPSGD", len(c.FPSGD.Points)},
			{"CuMF", len(c.CuMF.Points)},
		} {
			if curve.pts != 21 { // epoch-0 anchor + 20 epochs
				t.Fatalf("%s/%s has %d points", c.Dataset, curve.name, curve.pts)
			}
		}
		// Convergence: every method descends below its first-epoch RMSE at
		// some point, and never blows up. (On the scaled R1 instance the
		// held-out curve dips then drifts slightly upward — the same
		// fluctuation the paper's Figure 7(b) shows — so the minimum, not
		// the final point, carries the descent claim.)
		for _, m := range []struct {
			name  string
			curve *metrics.Curve
		}{{"HCC", c.HCC}, {"FPSGD", c.FPSGD}, {"CuMF", c.CuMF}} {
			first := m.curve.Points[0].RMSE
			min := first
			for _, pt := range m.curve.Points {
				if pt.RMSE < min {
					min = pt.RMSE
				}
			}
			if min >= first {
				t.Fatalf("%s/%s never descended below its first epoch", c.Dataset, m.name)
			}
			if m.curve.Final() > 1.1*first {
				t.Fatalf("%s/%s diverged: %v → %v", c.Dataset, m.name, first, m.curve.Final())
			}
		}
		// The paper's equivalence claim: all three systems converge to
		// comparable RMSE.
		if hi, lo := maxf(c.HCC.Final(), c.FPSGD.Final(), c.CuMF.Final()),
			minf(c.HCC.Final(), c.FPSGD.Final(), c.CuMF.Final()); hi > 1.25*lo {
			t.Fatalf("%s: final RMSEs diverge: %v vs %v", c.Dataset, hi, lo)
		}
		// Figure 7(d–f): HCC reaches the common target faster than both
		// baselines (speedups > 1).
		if c.SpeedupVsFPSGD <= 1 {
			t.Fatalf("%s: HCC speedup vs FPSGD = %v", c.Dataset, c.SpeedupVsFPSGD)
		}
		if c.SpeedupVsCuMF <= 1 {
			t.Fatalf("%s: HCC speedup vs CuMF = %v", c.Dataset, c.SpeedupVsCuMF)
		}
	}
	// Shape of the headline: speedup vs CPU baseline exceeds... on R2 the
	// paper reports 2.9x vs CuMF and 3.1x vs FPSGD; our calibrated ratios
	// must put both clearly above 2.
	r2 := r.CurvesFor("r2")
	if r2.SpeedupVsCuMF < 2 {
		t.Fatalf("r2 speedup vs CuMF = %v, paper 2.9x", r2.SpeedupVsCuMF)
	}
	if out := r.Format(); len(out) < 100 {
		t.Fatalf("Format too small: %q", out)
	}
}

func TestFigure7Validation(t *testing.T) {
	if _, err := Figure7(0, 10, 8, 1); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := Figure7(2, 10, 8, 1); err == nil {
		t.Fatal("scale > 1 accepted")
	}
	if _, err := Figure7(0.001, 1, 8, 1); err == nil {
		t.Fatal("1 epoch accepted")
	}
}
