package experiments

import (
	"fmt"
	"strings"

	"hccmf/internal/comm"
	"hccmf/internal/core"
	"hccmf/internal/dataset"
)

// Table5Cell is one (transport, strategy, dataset) measurement.
type Table5Cell struct {
	Transport string // "COMM" or "COMM-P"
	Strategy  string // "P&Q", "Q", "half-Q"
	Dataset   string
	TimeSec   float64
	Speedup   float64 // vs the same transport's P&Q row
}

// Table5Result reproduces Table 5 (communication time of 20 epochs).
type Table5Result struct {
	Cells []Table5Cell
}

// Table5 computes the total bus time all workers spend pulling and pushing
// over a 20-epoch run under each communication strategy and transport. The
// COMM-P baseline pays the calibrated message-path slowdown.
func Table5() (*Table5Result, error) {
	plat := core.PaperPlatformHetero()
	strategies := []struct {
		label string
		s     comm.Strategy
	}{
		{"P&Q", comm.Strategy{Encoding: comm.FP32, Streams: 1}},
		{"Q", comm.Strategy{QOnly: true, Encoding: comm.FP32, Streams: 1}},
		{"half-Q", comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 1}},
	}
	transports := []struct {
		label  string
		factor float64
	}{
		{"COMM", 1},
		{"COMM-P", MessageTransportFactor},
	}
	res := &Table5Result{}
	for _, tr := range transports {
		for _, spec := range []dataset.Spec{dataset.Netflix, dataset.YahooR1, dataset.YahooR2} {
			var pqTime float64
			for _, st := range strategies {
				t, err := commTime(plat, spec, st.s, tr.factor)
				if err != nil {
					return nil, err
				}
				if st.label == "P&Q" {
					pqTime = t
				}
				res.Cells = append(res.Cells, Table5Cell{
					Transport: tr.label, Strategy: st.label, Dataset: spec.Name,
					TimeSec: t, Speedup: pqTime / t,
				})
			}
		}
	}
	return res, nil
}

// commTime sums every worker's pull+push channel time across the run.
// Partition shares (for the final P-rows push) come from DP0 on the
// calibrated rates; transfers on distinct channels overlap, but the
// paper's Table 5 reports the summed cost, which is what a worker-count-
// independent comparison of strategies needs.
func commTime(plat core.Platform, spec dataset.Spec, strat comm.Strategy, factor float64) (float64, error) {
	forced := strat
	plan, err := core.PlanRun(plat, spec, core.PlanOptions{K: K, ForceStrategy: &forced})
	if err != nil {
		return 0, err
	}
	var total float64
	for i, w := range plan.Platform.Workers {
		ownedRows := int(plan.Partition[i]*float64(plan.M) + 0.5)
		bytes := strat.RunBytes(plan.K, plan.M, plan.N, ownedRows, Epochs)
		total += float64(bytes) * factor / w.Bus.Bandwidth()
	}
	return total, nil
}

// Cell returns the cell for a transport/strategy/dataset triple (nil if
// absent).
func (r *Table5Result) Cell(transport, strategy, ds string) *Table5Cell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Transport == transport && c.Strategy == strategy && c.Dataset == ds {
			return c
		}
	}
	return nil
}

// Format renders the table grouped like the paper's.
func (r *Table5Result) Format() string {
	var b strings.Builder
	b.WriteString("Table 5: communication time of 20 epochs\n")
	fmt.Fprintf(&b, "%-8s %-8s %-10s %12s %9s\n", "module", "strategy", "dataset", "time(s)", "speedup")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-8s %-8s %-10s %12.6f %8.1fx\n",
			c.Transport, c.Strategy, c.Dataset, c.TimeSec, c.Speedup)
	}
	return b.String()
}
