package experiments

import (
	"strings"
	"testing"

	"hccmf/internal/partition"
)

// Figure 3: the motivation claims.
func TestFigure3Shapes(t *testing.T) {
	r, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		row := r.Find(name)
		if row == nil {
			t.Fatalf("missing row %q", name)
		}
		return row.TimeSec
	}
	cpu := get("Intel Xeon Gold 6242")
	g2080 := get("RTX 2080")
	g2080s := get("RTX 2080S")
	v100 := get("Tesla V100")
	combo := get("6242-2080S")

	// Paper footnote: ~5.5s CPU, ~2.25s 2080.
	if cpu < 4.5 || cpu > 7 {
		t.Fatalf("6242 time = %v, paper ~5.5s", cpu)
	}
	if g2080 < 1.9 || g2080 > 2.6 {
		t.Fatalf("2080 time = %v, paper ~2.25s", g2080)
	}
	// Collaboration beats both of its members.
	if combo >= g2080s || combo >= cpu {
		t.Fatalf("good collaboration (%v) does not beat members (%v, %v)", combo, g2080s, cpu)
	}
	// The headline economics: 6242-2080S close to V100 at ~1/3 the price.
	if combo > 1.25*v100 {
		t.Fatalf("6242-2080S (%v) not close to V100 (%v)", combo, v100)
	}
	comboRow := r.Find("6242-2080S")
	v100Row := r.Find("Tesla V100")
	if comboRow.PriceUSD > 0.45*v100Row.PriceUSD {
		t.Fatalf("combo price %v not well below V100 %v", comboRow.PriceUSD, v100Row.PriceUSD)
	}
	// Every bad collaboration is worse than the good one — and bad
	// communication is worse than the best standalone member.
	for _, bad := range []string{
		"6242-2080S (Bad communication)",
		"6242-2080S (Unbalanced data)",
		"6242-2080S (Bad threads conf)",
	} {
		if get(bad) <= combo {
			t.Fatalf("%s (%v) not worse than good collaboration (%v)", bad, get(bad), combo)
		}
	}
	if get("6242-2080S (Bad communication)") <= g2080s {
		t.Fatal("bad communication should cancel out collaboration entirely")
	}
}

// Table 2: GPU bandwidth rises slightly under DP0, CPU stays flat.
func TestTable2Shapes(t *testing.T) {
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		switch row.Worker {
		case "6242-24T", "6242l-10T":
			if row.DP0GBs != row.IWGBs {
				t.Fatalf("CPU %s bandwidth changed: %v vs %v", row.Worker, row.DP0GBs, row.IWGBs)
			}
		default:
			if row.DP0GBs <= row.IWGBs {
				t.Fatalf("GPU %s bandwidth did not rise under DP0", row.Worker)
			}
			if row.DP0GBs > 1.05*row.IWGBs {
				t.Fatalf("GPU %s bandwidth rise too large: %v vs %v", row.Worker, row.DP0GBs, row.IWGBs)
			}
		}
	}
	// Paper's measured anchors.
	if r.Rows[0].IWGBs != 67.3 || r.Rows[1].IWGBs != 39.3 {
		t.Fatalf("CPU anchors wrong: %v, %v", r.Rows[0].IWGBs, r.Rows[1].IWGBs)
	}
}

// Table 4: utilization bands.
func TestTable4Shapes(t *testing.T) {
	r, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	util := map[string]float64{}
	for _, row := range r.Rows {
		util[row.Dataset] = row.Utilization
		if row.HCC >= row.Ideal {
			t.Fatalf("%s: HCC power exceeds ideal", row.Dataset)
		}
	}
	// Paper: Netflix 86%, R2 88% (high band); R1 62%, ML-20m 46% (low).
	for _, ds := range []string{"netflix", "r2"} {
		if util[ds] < 0.80 {
			t.Fatalf("%s utilization %v below the paper's high band", ds, util[ds])
		}
	}
	for _, ds := range []string{"r1", "ml-20m"} {
		if util[ds] > 0.70 {
			t.Fatalf("%s utilization %v above the paper's low band", ds, util[ds])
		}
		if util[ds] < 0.30 {
			t.Fatalf("%s utilization %v collapsed", ds, util[ds])
		}
	}
	if util["netflix"] < util["ml-20m"] || util["r2"] < util["r1"] {
		t.Fatal("utilization ordering inverted")
	}
}

// Figure 8: DP1 beats DP0 where sync is negligible; DP2 beats DP1 where it
// is not.
func TestFigure8Shapes(t *testing.T) {
	r, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Panels) != 6 {
		t.Fatalf("panels = %d", len(r.Panels))
	}
	for _, ds := range []string{"netflix", "r2"} {
		for _, w := range []int{3, 4} {
			p := r.Panel(ds, w)
			if p == nil {
				t.Fatalf("missing panel %s/%d", ds, w)
			}
			dp0 := p.Bar(partition.DP0Strategy)
			dp1 := p.Bar(partition.DP1Strategy)
			if dp0 == nil || dp1 == nil {
				t.Fatalf("panel %s/%d missing bars", ds, w)
			}
			saving := 1 - dp1.Total/dp0.Total
			if saving <= 0.02 || saving > 0.30 {
				t.Fatalf("%s/%dw: DP1 saving %.1f%% outside the paper's ~10-12%% shape", ds, w, saving*100)
			}
		}
	}
	for _, w := range []int{3, 4} {
		p := r.Panel("r1star", w)
		dp1 := p.Bar(partition.DP1Strategy)
		dp2 := p.Bar(partition.DP2Strategy)
		if dp2.Total >= dp1.Total {
			t.Fatalf("r1star/%dw: DP2 (%v) not better than DP1 (%v)", w, dp2.Total, dp1.Total)
		}
		// DP2's compute is deliberately unbalanced (the staggered loads).
		if dp2.Compute <= dp1.Compute {
			t.Fatalf("r1star/%dw: DP2 max compute should exceed DP1's balanced one", w)
		}
	}
}

// Table 5: strategy and transport orderings.
func TestTable5Shapes(t *testing.T) {
	r, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 18 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	for _, ds := range []string{"netflix", "r1", "r2"} {
		for _, tr := range []string{"COMM", "COMM-P"} {
			pq := r.Cell(tr, "P&Q", ds)
			q := r.Cell(tr, "Q", ds)
			hq := r.Cell(tr, "half-Q", ds)
			if pq == nil || q == nil || hq == nil {
				t.Fatalf("missing cells for %s/%s", tr, ds)
			}
			if !(pq.TimeSec > q.TimeSec && q.TimeSec > hq.TimeSec) {
				t.Fatalf("%s/%s: strategy ordering broken: %v %v %v", tr, ds, pq.TimeSec, q.TimeSec, hq.TimeSec)
			}
		}
		// COMM beats COMM-P under every strategy.
		for _, st := range []string{"P&Q", "Q", "half-Q"} {
			if r.Cell("COMM", st, ds).TimeSec >= r.Cell("COMM-P", st, ds).TimeSec {
				t.Fatalf("COMM not faster than COMM-P for %s/%s", st, ds)
			}
		}
	}
	// Theoretical Q-only speedups from the paper: R1 ≈ 2.5–2.9, R2 ≈ 6–7.5,
	// Netflix an order of magnitude.
	if s := r.Cell("COMM", "Q", "r1").Speedup; s < 2 || s > 4 {
		t.Fatalf("r1 Q speedup = %v, paper ~2.9x", s)
	}
	if s := r.Cell("COMM", "Q", "r2").Speedup; s < 5 || s > 10 {
		t.Fatalf("r2 Q speedup = %v, paper ~7.5x", s)
	}
	if s := r.Cell("COMM", "Q", "netflix").Speedup; s < 12 || s > 30 {
		t.Fatalf("netflix Q speedup = %v, paper ~18x", s)
	}
	// FP16 halves traffic exactly in the model.
	if s := r.Cell("COMM", "half-Q", "r2").Speedup / r.Cell("COMM", "Q", "r2").Speedup; s < 1.99 || s > 2.01 {
		t.Fatalf("fp16 factor = %v", s)
	}
}

// Figure 9: power grows with workers on the compute-bound datasets.
func TestFigure9Shapes(t *testing.T) {
	r, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"netflix", "r2"} {
		s := r.SeriesFor(ds)
		if s == nil || len(s.Steps) != 4 {
			t.Fatalf("series %s malformed", ds)
		}
		for i := 1; i < len(s.Steps); i++ {
			if s.Steps[i].HCCPower <= s.Steps[i-1].HCCPower {
				t.Fatalf("%s: power did not grow at step %d", ds, i+1)
			}
		}
		// Ordinary workers contribute >50% of their standalone power
		// (paper: >80%; our framework-overhead model is more pessimistic
		// for CPUs but must stay in the same regime).
		for _, st := range s.Steps[:3] {
			if st.Contribution < 0.5 {
				t.Fatalf("%s: worker %s contribution %v too low", ds, st.AddedWorker, st.Contribution)
			}
		}
	}
	// R1 still gains workers overall despite heavy communication.
	s := r.SeriesFor("r1")
	if s.Steps[len(s.Steps)-1].HCCPower <= s.Steps[0].HCCPower {
		t.Fatal("r1: full platform not faster than single worker")
	}
}

// Table 6: the ML-20m limitation — a second GPU helps far less than 2x.
func TestTable6Shapes(t *testing.T) {
	r, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	single := r.Row("HCC", "2080S")
	double := r.Row("HCC", "2080S-2080")
	cumf := r.Row("CuMF_SGD", "2080S")
	if single == nil || double == nil || cumf == nil {
		t.Fatal("missing rows")
	}
	// Single-worker HCC ≈ cuMF standalone (the paper's identical 0.559s).
	if single.Cost < cumf.Cost || single.Cost > 1.15*cumf.Cost {
		t.Fatalf("single HCC %v vs cuMF %v: want near-equality", single.Cost, cumf.Cost)
	}
	// Two GPUs help, but nowhere near 2x (paper: 0.559 → 0.449, 1.24x).
	speedup := single.Cost / double.Cost
	if speedup <= 1.05 {
		t.Fatalf("second GPU did not help at all: %vx", speedup)
	}
	if speedup >= 1.9 {
		t.Fatalf("second GPU speedup %vx too good — the limitation vanished", speedup)
	}
	// Communication does not shrink with more workers (the root cause).
	if double.Pull < 0.9*single.Pull {
		t.Fatalf("pull time shrank with workers: %v vs %v", double.Pull, single.Pull)
	}
}

func TestFormatsNonEmpty(t *testing.T) {
	f3, _ := Figure3()
	t2, _ := Table2()
	t6, _ := Table6()
	for _, s := range []string{f3.Format(), t2.Format(), t6.Format()} {
		if !strings.Contains(s, "\n") || len(s) < 50 {
			t.Fatalf("format output too small: %q", s)
		}
	}
}

// Figure 5: the three timing sequences order correctly and the Gantt
// renders every phase.
func TestFigure5Shapes(t *testing.T) {
	r, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Diagrams) != 3 {
		t.Fatalf("diagrams = %d", len(r.Diagrams))
	}
	orig, dp1, dp2 := r.Diagrams[0], r.Diagrams[1], r.Diagrams[2]
	if !(orig.EpochTime > dp1.EpochTime && dp1.EpochTime > dp2.EpochTime) {
		t.Fatalf("epoch ordering broken: %v, %v, %v",
			orig.EpochTime, dp1.EpochTime, dp2.EpochTime)
	}
	for _, d := range r.Diagrams {
		for _, glyph := range []string{"<", "#", ">", "S"} {
			if !strings.Contains(d.Gantt, glyph) {
				t.Fatalf("%s gantt missing %q:\n%s", d.Label, glyph, d.Gantt)
			}
		}
	}
}
