package experiments

import (
	"strings"
	"testing"

	"hccmf/internal/raceflag"
)

func TestRelatedWorkShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("real training; skipped in -short")
	}
	if raceflag.Enabled {
		t.Skip("HCC leg uses lock-free kernels; skipped under -race")
	}
	r, err := RelatedWork()
	if err != nil {
		t.Fatal(err)
	}
	// Section 5's buckets effect: DSGD's equal split pays a multiple on
	// the heterogeneous platform.
	if r.HeterogeneityPenalty < 1.5 {
		t.Fatalf("DSGD heterogeneity penalty %v too small", r.HeterogeneityPenalty)
	}
	// NOMAD's per-column messaging is orders of magnitude finer-grained.
	if r.Granularity < 1000 {
		t.Fatalf("granularity gap %v too small", r.Granularity)
	}
	if r.NOMADMessages <= r.HCCMessages {
		t.Fatal("message ordering wrong")
	}
	// All three converge to comparable RMSE (within 25%).
	worst := r.HCCRMSE
	best := r.HCCRMSE
	for _, v := range []float64{r.DSGDRMSE, r.NOMADRMSE} {
		if v > worst {
			worst = v
		}
		if v < best {
			best = v
		}
	}
	if best <= 0 || worst > 1.25*best {
		t.Fatalf("convergence parity broken: HCC %v DSGD %v NOMAD %v",
			r.HCCRMSE, r.DSGDRMSE, r.NOMADRMSE)
	}
	if out := r.Format(); !strings.Contains(out, "buckets-effect") {
		t.Fatalf("Format output: %q", out)
	}
}
