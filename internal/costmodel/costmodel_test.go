package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

var testProblem = Problem{M: 480190, N: 17771, NNZ: 99072112, K: 32}

func mkWorker(name string, rate, busBW float64) Worker {
	return Worker{
		Name: name, Rate: rate, BusBW: busBW,
		CommBytes: testProblem.FeatureFloats() * BytesPerFloat,
		Streams:   1,
	}
}

func TestFeatureFloats(t *testing.T) {
	p := Problem{M: 100, N: 50, K: 8}
	if got := p.FeatureFloats(); got != 8*150 {
		t.Fatalf("FeatureFloats = %v", got)
	}
}

func TestComputeTime(t *testing.T) {
	if got := ComputeTime(0.5, 1000, 100); got != 5 {
		t.Fatalf("ComputeTime = %v, want 5", got)
	}
	if got := ComputeTime(0, 1000, 100); got != 0 {
		t.Fatalf("ComputeTime(0) = %v", got)
	}
}

func TestComputeTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate did not panic")
		}
	}()
	ComputeTime(1, 100, 0)
}

func TestTransferTimeStreams(t *testing.T) {
	w := Worker{Name: "w", Rate: 1, BusBW: 100, CommBytes: 400, Streams: 1}
	if got := w.TransferTime(); got != 4 {
		t.Fatalf("1-stream transfer = %v, want 4", got)
	}
	w.Streams = 4
	if got := w.TransferTime(); got != 1 {
		t.Fatalf("4-stream transfer = %v, want 1 (1/streams)", got)
	}
	w.Streams = 0 // treated as synchronous
	if got := w.TransferTime(); got != 4 {
		t.Fatalf("0-stream transfer = %v, want 4", got)
	}
}

func TestWorkerTimeComposition(t *testing.T) {
	w := Worker{Name: "w", Rate: 1000, BusBW: 100, CommBytes: 200, Streams: 1}
	// compute: 0.5*10000/1000 = 5; transfers: 2*200/100 = 4.
	if got := w.WorkerTime(0.5, 10000); got != 9 {
		t.Fatalf("WorkerTime = %v, want 9", got)
	}
}

func TestComputeTimeFullAndProcessorShare(t *testing.T) {
	// A 2080-class GPU: ~10 TFLOP/s, ~380 GB/s.
	const flops, memBW = 10e12, 378.6e9
	const k = 128
	share := ProcessorTermShare(k, flops, memBW)
	// The paper's P_i ≫ B_i claim: the processor term is under 2% of the
	// per-update cost, which is why Eq. 2 drops it.
	if share > 0.02 {
		t.Fatalf("processor term share = %v, paper expects negligible", share)
	}
	full := ComputeTimeFull(0.5, 1000000, k, flops, memBW)
	reduced := ComputeTime(0.5, 1000000, memBW/float64(16*k+4))
	if full <= reduced {
		t.Fatal("full model must exceed the reduced one")
	}
	if (full-reduced)/reduced > 0.02 {
		t.Fatalf("dropping the term changes compute time by %v", (full-reduced)/reduced)
	}
}

func TestComputeTimeFullValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero flops did not panic")
		}
	}()
	ComputeTimeFull(1, 1, 8, 0, 1)
}

func TestProcessorTermShareValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bandwidth did not panic")
		}
	}()
	ProcessorTermShare(8, 1, 0)
}

func TestSyncTimePerWorker(t *testing.T) {
	s := Server{MemBW: 300}
	if got := SyncTimePerWorker(testProblem, s, 100); got != 1 {
		t.Fatalf("SyncTimePerWorker = %v, want 1", got)
	}
}

func TestEpochTimeBalancedHidesSync(t *testing.T) {
	// Big compute, fast server: the ratio clears λ and sync is dropped.
	workers := []Worker{
		mkWorker("a", 1e9, 16e9),
		mkWorker("b", 1e9, 16e9),
	}
	srv := Server{MemBW: 67.3e9}
	est, err := EpochTime(testProblem, srv, workers, []float64{0.5, 0.5}, len(workers), DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	if !est.SyncHidden {
		t.Fatalf("sync not hidden: ratio = %v", est.SyncRatio)
	}
	if est.Total != est.MaxWorker {
		t.Fatalf("Total = %v, want MaxWorker %v", est.Total, est.MaxWorker)
	}
}

func TestEpochTimeSmallComputeExposesSync(t *testing.T) {
	// Tiny nnz relative to dimensions: sync dominates.
	p := Problem{M: 2000000, N: 1000000, NNZ: 1000000, K: 128}
	payload := p.FeatureFloats() * BytesPerFloat
	workers := []Worker{
		{Name: "a", Rate: 1e9, BusBW: 16e9, CommBytes: payload, Streams: 1},
		{Name: "b", Rate: 1e9, BusBW: 16e9, CommBytes: payload, Streams: 1},
	}
	srv := Server{MemBW: 67.3e9}
	est, err := EpochTime(p, srv, workers, []float64{0.5, 0.5}, len(workers), DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	if est.SyncHidden {
		t.Fatalf("sync unexpectedly hidden: ratio = %v", est.SyncRatio)
	}
	if est.Total <= est.MaxWorker {
		t.Fatal("Total does not include sync term")
	}
	wantTotal := est.MaxWorker + est.SyncTotal
	if math.Abs(est.Total-wantTotal) > 1e-12 {
		t.Fatalf("Total = %v, want %v", est.Total, wantTotal)
	}
}

func TestEpochTimeValidation(t *testing.T) {
	srv := Server{MemBW: 1e9}
	w := []Worker{mkWorker("a", 1e9, 16e9)}
	if _, err := EpochTime(testProblem, srv, nil, nil, 0, 10); err == nil {
		t.Fatal("no workers accepted")
	}
	if _, err := EpochTime(testProblem, srv, w, []float64{0.5, 0.5}, 1, 10); err == nil {
		t.Fatal("mismatched partition accepted")
	}
	if _, err := EpochTime(testProblem, srv, w, []float64{0.5}, 1, 10); err == nil {
		t.Fatal("shares not summing to 1 accepted")
	}
	if _, err := EpochTime(testProblem, srv, w, []float64{-1}, 1, 10); err == nil {
		t.Fatal("negative share accepted")
	}
}

func TestEpochTimeZeroExposedSyncs(t *testing.T) {
	w := []Worker{mkWorker("a", 1e9, 16e9)}
	srv := Server{MemBW: 1e9}
	est, err := EpochTime(testProblem, srv, w, []float64{1}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(est.SyncRatio, 1) || !est.SyncHidden {
		t.Fatalf("zero syncs: ratio = %v hidden = %v", est.SyncRatio, est.SyncHidden)
	}
}

func TestEpochTimeMaxIsMax(t *testing.T) {
	f := func(r1, r2, x1raw uint32) bool {
		rate1 := 1e8 + float64(r1%1000)*1e6
		rate2 := 1e8 + float64(r2%1000)*1e6
		x1 := 0.001 + 0.998*float64(x1raw%1000)/1000.0
		workers := []Worker{mkWorker("a", rate1, 16e9), mkWorker("b", rate2, 16e9)}
		srv := Server{MemBW: 67e9}
		est, err := EpochTime(testProblem, srv, workers, []float64{x1, 1 - x1}, 2, 10)
		if err != nil {
			return false
		}
		m := math.Max(est.PerWorker[0], est.PerWorker[1])
		return est.MaxWorker == m && est.Total >= est.MaxWorker
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCommComputeRatio(t *testing.T) {
	w := Worker{Name: "w", Rate: 1000, BusBW: 100, CommBytes: 100, Streams: 1}
	// compute(x=1, nnz=1000) = 1s; comm = 2*1 = 2s; ratio 2.
	if got := CommComputeRatio(w, 1, 1000); got != 2 {
		t.Fatalf("ratio = %v, want 2", got)
	}
	if got := CommComputeRatio(w, 0, 1000); !math.IsInf(got, 1) {
		t.Fatalf("ratio with no compute = %v, want +Inf", got)
	}
}

// The paper's own diagnostic: Netflix communication is far below compute,
// ML-20m's is comparable.
func TestPaperDimRatioDiagnostic(t *testing.T) {
	netflix := Problem{M: 480190, N: 17771, NNZ: 99072112, K: 32}
	ml := Problem{M: 138494, N: 131263, NNZ: 20000260, K: 32}
	mk := func(p Problem) Worker {
		return Worker{Name: "gpu", Rate: 1e9, BusBW: 16e9,
			CommBytes: p.FeatureFloats() * BytesPerFloat, Streams: 1}
	}
	rNet := CommComputeRatio(mk(netflix), 0.5, netflix.NNZ)
	rML := CommComputeRatio(mk(ml), 0.5, ml.NNZ)
	if rNet >= rML {
		t.Fatalf("netflix comm ratio %v should be below ml-20m %v", rNet, rML)
	}
	if rML < 0.2 {
		t.Fatalf("ml-20m comm ratio %v should be substantial", rML)
	}
}
