// Package costmodel implements the paper's time-cost model of one HCC-MF
// training epoch (Section 3.2, Equations 1–5):
//
//	T = max_i { T_pull,i + T_c,i + T_push,i } + T_sync
//
// with per-worker compute time x_i·nnz/rate_i, transfer time
// bytes/B_bus,i per direction, and a server-side synchronisation term of
// 3·k(m+n)·4 bytes of memory traffic per synchronised worker. The model is
// piecewise: when max_i{T_i}/T_sync ≥ λ the synchronisation term is
// dropped (DP1 territory), otherwise it must be paid or hidden (DP2
// territory).
package costmodel

import (
	"fmt"
	"math"
)

// DefaultLambda is the paper's threshold (λ=10 in their experiments) above
// which synchronisation overhead is ignored.
const DefaultLambda = 10.0

// BytesPerFloat is the FP32 element size the model assumes.
const BytesPerFloat = 4

// Problem describes the training problem the model is evaluated on.
type Problem struct {
	M, N int   // rating matrix dimensions
	NNZ  int64 // stored ratings
	K    int   // latent dimension
}

// FeatureFloats reports the number of float parameters in P plus Q:
// k(m+n), the per-direction transfer volume without any communication
// strategy.
func (p Problem) FeatureFloats() float64 {
	return float64(p.K) * float64(p.M+p.N)
}

// Worker is one processor's calibrated profile as the model sees it.
type Worker struct {
	Name string
	// Rate is the worker's SGD throughput in updates/second.
	Rate float64
	// BusBW is the bandwidth of the worker↔server channel in bytes/s.
	BusBW float64
	// CommBytes is the per-direction feature payload in bytes after the
	// active communication strategy (P&Q, Q-only, half-Q …).
	CommBytes float64
	// Streams is the number of async pull-compute-push pipelines
	// (Strategy 3); 1 means synchronous transfers.
	Streams int
}

// Server is the parameter server's profile.
type Server struct {
	// MemBW is the server CPU's memory bandwidth in bytes/s (B_server).
	MemBW float64
}

// ComputeTime is T_c,i = x_i·nnz/rate for share x of the problem.
func ComputeTime(x float64, nnz int64, rate float64) float64 {
	if rate <= 0 {
		// lint:invariant update rates are calibrated device-profile constants; a non-positive rate is a corrupted profile, never user input.
		panic(fmt.Sprintf("costmodel: rate %v", rate))
	}
	return x * float64(nnz) / rate
}

// ComputeTimeFull is the unreduced per-worker compute model the paper
// writes before its simplification: each update costs 7k/P_i FLOP time
// plus (16k+4)/B_i memory time, so
//
//	T_c,i = x·nnz · (7k/P_i + (16k+4)/B_i).
//
// The paper drops the 7k/P_i term because P_i ≫ B_i on every processor it
// measures; ProcessorTermShare quantifies that claim.
func ComputeTimeFull(x float64, nnz int64, k int, flops, memBW float64) float64 {
	if flops <= 0 || memBW <= 0 {
		// lint:invariant see ComputeTime: flops/memBW are calibrated device-profile constants.
		panic(fmt.Sprintf("costmodel: flops %v memBW %v", flops, memBW))
	}
	perUpdate := 7*float64(k)/flops + float64(16*k+4)/memBW
	return x * float64(nnz) * perUpdate
}

// ProcessorTermShare reports the fraction of ComputeTimeFull contributed
// by the 7k/P_i processor term — the quantity the paper argues is
// negligible (P_i ≫ B_i). flops in FLOP/s, memBW in bytes/s.
func ProcessorTermShare(k int, flops, memBW float64) float64 {
	if flops <= 0 || memBW <= 0 {
		// lint:invariant see ComputeTime: flops/memBW are calibrated device-profile constants.
		panic(fmt.Sprintf("costmodel: flops %v memBW %v", flops, memBW))
	}
	proc := 7 * float64(k) / flops
	mem := float64(16*k+4) / memBW
	return proc / (proc + mem)
}

// TransferTime is the one-direction pull (or push) time of a worker. With
// s>1 async streams the exposed transfer cost shrinks to 1/s of the
// payload time, the paper's Figure 6 claim.
func (w Worker) TransferTime() float64 {
	if w.BusBW <= 0 {
		// lint:invariant bus bandwidths are constants from the bus package; zero bandwidth is a broken platform definition.
		panic(fmt.Sprintf("costmodel: worker %q bus bandwidth %v", w.Name, w.BusBW))
	}
	t := w.CommBytes / w.BusBW
	if w.Streams > 1 {
		t /= float64(w.Streams)
	}
	return t
}

// WorkerTime is T_i = T_pull + T_c + T_push for share x.
func (w Worker) WorkerTime(x float64, nnz int64) float64 {
	return ComputeTime(x, nnz, w.Rate) + 2*w.TransferTime()
}

// SyncTimePerWorker is the server-side time to fold one worker's push into
// the global feature matrices: three reads/writes of k(m+n) floats at the
// server's memory bandwidth (Eq. 3, the multiply-add term dropped because
// P_server ≫ B_server).
func SyncTimePerWorker(p Problem, s Server, commBytes float64) float64 {
	if s.MemBW <= 0 {
		// lint:invariant server memory bandwidth is a device-profile constant; non-positive means the profile is corrupt.
		panic(fmt.Sprintf("costmodel: server memory bandwidth %v", s.MemBW))
	}
	_ = p
	return 3 * commBytes / s.MemBW
}

// Estimate is the model's decomposition of one epoch.
type Estimate struct {
	// PerWorker is T_i for each worker under the given partition.
	PerWorker []float64
	// MaxWorker is max_i T_i.
	MaxWorker float64
	// SyncTotal is the t·T_sync term: the synchronisations exposed after
	// the slowest worker finishes.
	SyncTotal float64
	// SyncRatio is MaxWorker / SyncTotal (∞ when SyncTotal is zero).
	SyncRatio float64
	// SyncHidden reports whether the ratio clears λ and the piecewise
	// model drops the sync term.
	SyncHidden bool
	// Total is the epoch estimate T.
	Total float64
}

// EpochTime evaluates the full piecewise model (Eq. 5) for a partition x
// over the workers. exposedSyncs is the t of Eq. 3: how many workers'
// synchronisations land after the slowest worker (p for a balanced DP0/DP1
// schedule, 1 when DP2 has hidden all but the last).
func EpochTime(p Problem, s Server, workers []Worker, x []float64, exposedSyncs int, lambda float64) (Estimate, error) {
	if len(workers) == 0 {
		return Estimate{}, fmt.Errorf("costmodel: no workers")
	}
	if len(x) != len(workers) {
		return Estimate{}, fmt.Errorf("costmodel: partition has %d shares for %d workers", len(x), len(workers))
	}
	var sum float64
	for i, xi := range x {
		if xi < 0 {
			return Estimate{}, fmt.Errorf("costmodel: negative share x[%d]=%v", i, xi)
		}
		sum += xi
	}
	if math.Abs(sum-1) > 1e-6 {
		return Estimate{}, fmt.Errorf("costmodel: shares sum to %v, want 1", sum)
	}
	if lambda <= 0 {
		lambda = DefaultLambda
	}
	if exposedSyncs < 0 {
		exposedSyncs = 0
	}

	est := Estimate{PerWorker: make([]float64, len(workers))}
	for i, w := range workers {
		ti := w.WorkerTime(x[i], p.NNZ)
		est.PerWorker[i] = ti
		if ti > est.MaxWorker {
			est.MaxWorker = ti
		}
	}
	var syncOne float64
	for _, w := range workers {
		// Sync volume follows each worker's own strategy payload.
		syncOne += SyncTimePerWorker(p, s, w.CommBytes)
	}
	syncOne /= float64(len(workers))
	est.SyncTotal = float64(exposedSyncs) * syncOne

	if est.SyncTotal <= 0 {
		est.SyncRatio = math.Inf(1)
	} else {
		est.SyncRatio = est.MaxWorker / est.SyncTotal
	}
	est.SyncHidden = est.SyncRatio >= lambda
	if est.SyncHidden {
		est.Total = est.MaxWorker
	} else {
		est.Total = est.MaxWorker + est.SyncTotal
	}
	return est, nil
}

// CommComputeRatio reports the paper's Section 3.4 diagnostic: the ratio
// of communication to computation for a worker holding share x. Ratios
// near or above 1 mean collaboration cannot pay off (the ML-20m
// limitation).
func CommComputeRatio(w Worker, x float64, nnz int64) float64 {
	c := ComputeTime(x, nnz, w.Rate)
	if c == 0 {
		return math.Inf(1)
	}
	return 2 * w.TransferTime() / c
}
