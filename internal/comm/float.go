package comm

import (
	"encoding/binary"
	"math"
)

func putFloat32(b []byte, v float32) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(v))
}

func getFloat32(b []byte) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b))
}
