package comm_test

import (
	"fmt"

	"hccmf/internal/comm"
)

// Strategy selection for the Netflix shape: Q-only plus FP16 cuts a
// worker's 20-epoch feature traffic by more than an order of magnitude.
func ExampleStrategy_RunBytes() {
	const k, m, n, owned, epochs = 128, 480190, 17771, 120000, 20
	naive := comm.Strategy{Encoding: comm.FP32, Streams: 1}
	tuned := comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 1}
	nb := naive.RunBytes(k, m, n, owned, epochs)
	tb := tuned.RunBytes(k, m, n, owned, epochs)
	fmt.Printf("%s: %.1f GB\n", naive, float64(nb)/1e9)
	fmt.Printf("%s: %.1f GB (%.0fx less)\n", tuned, float64(tb)/1e9, float64(nb)/float64(tb))
	// Output:
	// P&Q: 10.2 GB
	// half-Q: 0.2 GB (48x less)
}

func ExampleChoose() {
	s := comm.Choose(128, 480190, 17771, 99072112, 4)
	fmt.Println(s)
	// Output:
	// half-Q
}
