package comm

import (
	"fmt"
	"sync"
	"time"
)

// FaultSpec configures deterministic fault injection on a Transport. Rates
// are per-transfer probabilities in [0, 1]; the injected fault sequence is
// driven by a seeded generator, so a single-goroutine caller sees an exactly
// reproducible schedule and concurrent callers a reproducible aggregate.
type FaultSpec struct {
	// Transient is the probability a transfer fails outright before any
	// data moves (a dropped message, a reset connection).
	Transient float64
	// Truncate is the probability a transfer is cut mid-payload: a prefix
	// of the data crosses (and is charged to BusBytes) before the error.
	Truncate float64
	// Delay is the probability of a latency spike of DelayFor.
	Delay float64
	// DelayFor is the spike duration (default 1ms when Delay > 0; see
	// Normalized).
	DelayFor time.Duration
	// Seed drives the fault schedule.
	Seed uint64
	// Sleep realises an injected delay; nil uses time.Sleep. Tests and
	// simulated runs inject a virtual clock here so fault schedules stay
	// inside simengine time.
	Sleep func(time.Duration)
}

// Active reports whether the spec injects anything at all.
func (s FaultSpec) Active() bool {
	return s.Transient > 0 || s.Truncate > 0 || s.Delay > 0
}

// Normalized returns the spec with documented defaults applied: DelayFor
// becomes 1ms when Delay > 0 and no duration was set. Every construction
// path goes through this one function so a spec describes the same fault
// schedule no matter which decorated transport it lands on — previously
// the default was applied only inside NewFaulty, so code that read
// spec.DelayFor before wrapping (or compared specs across stacks) saw 0
// where the injector would sleep 1ms.
func (s FaultSpec) Normalized() FaultSpec {
	if s.Delay > 0 && s.DelayFor <= 0 {
		s.DelayFor = time.Millisecond
	}
	return s
}

// Validate checks that every rate is a probability.
func (s FaultSpec) Validate() error {
	for _, r := range [...]struct {
		name string
		rate float64
	}{{"Transient", s.Transient}, {"Truncate", s.Truncate}, {"Delay", s.Delay}} {
		if r.rate < 0 || r.rate > 1 {
			return fmt.Errorf("comm: fault rate %s = %v, want a probability in [0,1]", r.name, r.rate)
		}
	}
	return nil
}

// FaultCounts tallies the faults a Faulty transport has injected.
type FaultCounts struct {
	Transient int
	Truncated int
	Delayed   int
}

// Faulty wraps a Transport and injects transient errors, payload
// truncation, and latency spikes at the configured rates. It exists so the
// parameter server's retry and eviction paths are testable without a real
// lossy link: production deployments of ps-lite-style parameter servers
// assume exactly these failure modes.
type Faulty struct {
	inner Transport
	spec  FaultSpec

	mu     sync.Mutex
	state  uint64
	counts FaultCounts
}

// NewFaulty wraps inner with fault injection per spec. The spec's rates
// arrive from CLI flags (-fault-rate, -fault-trunc), so validation
// failures are returned, not panicked.
func NewFaulty(inner Transport, spec FaultSpec) (*Faulty, error) {
	if inner == nil {
		return nil, fmt.Errorf("comm: NewFaulty needs a transport")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.Normalized()
	if spec.Sleep == nil {
		// lint:allow simtime — real-execution default for injected latency spikes; simulated runs and tests supply a virtual clock via FaultSpec.Sleep.
		spec.Sleep = time.Sleep
	}
	return &Faulty{inner: inner, spec: spec, state: spec.Seed}, nil
}

// Name implements Transport.
func (f *Faulty) Name() string { return f.inner.Name() + "+faulty" }

// CopiesPerTransfer implements Transport.
func (f *Faulty) CopiesPerTransfer() int { return f.inner.CopiesPerTransfer() }

// Unwrap implements Unwrapper.
func (f *Faulty) Unwrap() Transport { return f.inner }

// Pull implements Transport.
func (f *Faulty) Pull(dst, src []float32, x Xfer) (TransferStats, error) {
	return f.transfer("pull", dst, src, x, f.inner.Pull)
}

// Push implements Transport.
func (f *Faulty) Push(dst, src []float32, x Xfer) (TransferStats, error) {
	return f.transfer("push", dst, src, x, f.inner.Push)
}

// RemoteAddr implements Remote by forwarding (empty for in-process bases).
func (f *Faulty) RemoteAddr() string {
	if r, ok := f.inner.(Remote); ok {
		return r.RemoteAddr()
	}
	return ""
}

// SyncShard implements Remote: sync uploads traverse the same lossy link
// as pulls and pushes, so they draw from the same fault schedule.
func (f *Faulty) SyncShard(src []float32, x Xfer) (TransferStats, error) {
	r, ok := f.inner.(Remote)
	if !ok {
		return TransferStats{}, fmt.Errorf("comm: %s is not a remote transport", f.inner.Name())
	}
	return f.transfer("sync", nil, src, x, func(_, src []float32, x Xfer) (TransferStats, error) {
		return r.SyncShard(src, x)
	})
}

// Counts reports the faults injected so far.
func (f *Faulty) Counts() FaultCounts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

func (f *Faulty) transfer(dir string, dst, src []float32, x Xfer,
	op func(dst, src []float32, x Xfer) (TransferStats, error)) (TransferStats, error) {
	delayed, transient, cut := f.decide(len(src))
	if delayed {
		f.spec.Sleep(f.spec.DelayFor)
	}
	if transient {
		return TransferStats{}, fmt.Errorf("comm: injected transient %s failure", dir)
	}
	if cut >= 0 {
		// The prefix crossed the bus before the cut; charge it honestly.
		// The shard operand shrinks with the payload so a wire transport
		// still sees a self-consistent (shard, payload) pair.
		cutDst := dst
		if cutDst != nil {
			cutDst = dst[:cut]
		}
		st, err := op(cutDst, src[:cut], x.truncated(cut))
		if err != nil {
			return st, err
		}
		return st, fmt.Errorf("comm: injected truncation: %s cut at %d/%d params", dir, cut, len(src))
	}
	return op(dst, src, x)
}

// decide draws this transfer's fate. cut is -1 when the payload survives
// intact, else the number of leading params that cross before the cut.
func (f *Faulty) decide(n int) (delayed, transient bool, cut int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cut = -1
	if f.roll() < f.spec.Delay {
		delayed = true
		f.counts.Delayed++
	}
	if f.roll() < f.spec.Transient {
		transient = true
		f.counts.Transient++
		return
	}
	if n > 1 && f.roll() < f.spec.Truncate {
		cut = 1 + int(f.next()%uint64(n-1))
		f.counts.Truncated++
	}
	return
}

// next advances the splitmix64 generator; roll maps it to [0, 1).
func (f *Faulty) next() uint64 {
	f.state += 0x9e3779b97f4a7c15
	z := f.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (f *Faulty) roll() float64 {
	return float64(f.next()>>11) / (1 << 53)
}
