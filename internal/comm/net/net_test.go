package commnet

import (
	"context"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hccmf/internal/comm"
)

// newPair starts a loopback server and a dialer against it. Dims are small:
// P holds M·K = 12 params, Q holds N·K = 8.
func newPair(t *testing.T, scfg ServerConfig) (*Server, *Dialer) {
	t.Helper()
	s, err := Listen("127.0.0.1:0", scfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	d := &Dialer{Addr: s.Addr(), M: 6, N: 4, K: 2, OpTimeout: 5 * time.Second}
	t.Cleanup(func() { _ = d.Close() })
	return s, d
}

func seq(n int, scale float32) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = scale * float32(i+1)
	}
	return v
}

func bitsEqual(t *testing.T, what string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: param %d = %v, want %v (bit-exact)", what, i, got[i], want[i])
		}
	}
}

func TestPullPushRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		enc  comm.Encoding
	}{{"fp32", comm.FP32}, {"fp16", comm.FP16}} {
		t.Run(tc.name, func(t *testing.T) {
			s, d := newPair(t, ServerConfig{})
			global := seq(8, 0.1)
			// The cluster's publish is always full precision.
			st, err := d.SyncShard(global, comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32})
			if err != nil {
				t.Fatal(err)
			}
			if st.Handshakes != 1 || st.Frames < 4 || st.WireBytes == 0 {
				t.Fatalf("first op stats %+v, want the handshake accounted", st)
			}

			// Pull must hand back roundtrip_enc(store) — the in-process
			// transports' numeric contract.
			dst := make([]float32, 8)
			st, err = d.Pull(dst, nil, comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: tc.enc})
			if err != nil {
				t.Fatal(err)
			}
			want := append([]float32(nil), global...)
			if tc.enc == comm.FP16 {
				fp16RoundTrip(want)
			}
			bitsEqual(t, "pull", dst, want)
			if st.Handshakes != 0 {
				t.Fatalf("second op re-handshook: %+v", st)
			}
			if st.BusBytes != int64(8*tc.enc.BytesPerParam()) {
				t.Fatalf("BusBytes = %d, want logical %d", st.BusBytes, 8*tc.enc.BytesPerParam())
			}
			if st.Copies != 3 {
				t.Fatalf("Copies = %d, want 3", st.Copies)
			}

			// Push: the server's store and the local dst must both equal the
			// decode of the wire bytes.
			src := seq(12, 0.3)
			dst = make([]float32, 12)
			if _, err := d.Push(dst, src, comm.Xfer{Shard: comm.WorkerShard(comm.MatrixP, 1, 0, 12), Enc: tc.enc}); err != nil {
				t.Fatal(err)
			}
			want = append(want[:0:0], src...)
			if tc.enc == comm.FP16 {
				fp16RoundTrip(want)
			}
			bitsEqual(t, "push dst", dst, want)
			stored, ok := s.Shard(uint8(comm.MatrixP), 1)
			if !ok {
				t.Fatal("push did not land in the store")
			}
			bitsEqual(t, "push store", stored[:12], want)
		})
	}
}

// fp16 declined by the server must not change a single bit of what the
// strategy sees: the round trip moves from the wire to the endpoints.
func TestFP16NegotiationBitIdentical(t *testing.T) {
	_, dYes := newPair(t, ServerConfig{})
	_, dNo := newPair(t, ServerConfig{NoFP16: true})

	global := seq(8, 0.07)
	x := comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32}
	for _, d := range []*Dialer{dYes, dNo} {
		if _, err := d.SyncShard(global, x); err != nil {
			t.Fatal(err)
		}
	}

	pull := comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP16}
	a, b := make([]float32, 8), make([]float32, 8)
	stYes, err := dYes.Pull(a, nil, pull)
	if err != nil {
		t.Fatal(err)
	}
	stNo, err := dNo.Pull(b, nil, pull)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "negotiated vs declined pull", b, a)
	if stYes.WireBytes >= stNo.WireBytes {
		t.Fatalf("fp16 wire (%d bytes) not smaller than declined fp32 wire (%d bytes)",
			stYes.WireBytes, stNo.WireBytes)
	}
	if stYes.BusBytes != stNo.BusBytes {
		t.Fatalf("logical BusBytes differ across negotiation: %d vs %d", stYes.BusBytes, stNo.BusBytes)
	}

	src := seq(12, 0.11)
	push := comm.Xfer{Shard: comm.WorkerShard(comm.MatrixP, 0, 0, 12), Enc: comm.FP16}
	pa, pb := make([]float32, 12), make([]float32, 12)
	if _, err := dYes.Push(pa, src, push); err != nil {
		t.Fatal(err)
	}
	if _, err := dNo.Push(pb, src, push); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "negotiated vs declined push", pb, pa)
}

// One worker's stream of operations reuses one connection.
func TestConnectionReuse(t *testing.T) {
	s, d := newPair(t, ServerConfig{})
	var total comm.TransferStats
	global := seq(8, 0.2)
	for i := 0; i < 10; i++ {
		st, err := d.SyncShard(global, comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32})
		if err != nil {
			t.Fatal(err)
		}
		total.Add(st)
	}
	if total.Handshakes != 1 {
		t.Fatalf("10 ops cost %d handshakes, want 1", total.Handshakes)
	}
	if got := s.Stats().Conns; got != 1 {
		t.Fatalf("server saw %d connections, want 1", got)
	}
}

// An application-level error frame must not poison the connection: the
// stream stays framed and the next operation reuses it.
func TestErrorFrameKeepsConnection(t *testing.T) {
	s, d := newPair(t, ServerConfig{})
	dst := make([]float32, 8)
	_, err := d.Pull(dst, nil, comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32})
	if err == nil || !strings.Contains(err.Error(), "not published") {
		t.Fatalf("pull of unpublished shard: %v", err)
	}
	st, err := d.SyncShard(seq(8, 1), comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32})
	if err != nil {
		t.Fatalf("connection did not survive an error frame: %v", err)
	}
	if st.Handshakes != 0 || s.Stats().Conns != 1 {
		t.Fatalf("error frame forced a redial: %+v, conns=%d", st, s.Stats().Conns)
	}
	if got := s.Stats().Errors; got != 1 {
		t.Fatalf("server accounted %d error frames, want 1", got)
	}
}

// The server fixes its dimensions on first contact; a mismatched worker is
// turned away at handshake.
func TestDimsMismatchRejected(t *testing.T) {
	s, d := newPair(t, ServerConfig{})
	if _, err := d.SyncShard(seq(8, 1), comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32}); err != nil {
		t.Fatal(err)
	}
	bad := &Dialer{Addr: s.Addr(), M: 7, N: 4, K: 2, OpTimeout: 5 * time.Second}
	defer func() { _ = bad.Close() }()
	_, err := bad.SyncShard(seq(8, 1), comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32})
	if err == nil || !strings.Contains(err.Error(), "rejected handshake") {
		t.Fatalf("mismatched dims accepted: %v", err)
	}
}

// A stalled server must not hang a transfer: the per-op deadline fires.
func TestOpDeadlineAgainstStalledServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			// Swallow everything, answer nothing.
			go func(c net.Conn) { _, _ = io.Copy(io.Discard, c); _ = c.Close() }(c)
		}
	}()
	d := &Dialer{Addr: ln.Addr().String(), M: 6, N: 4, K: 2, OpTimeout: 200 * time.Millisecond}
	defer func() { _ = d.Close() }()
	start := time.Now()
	_, err = d.Pull(make([]float32, 8), nil, comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32})
	if err == nil {
		t.Fatal("pull against a mute server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}

// A context deadline sooner than OpTimeout wins.
func TestContextDeadlineOverridesOpTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { _, _ = io.Copy(io.Discard, c); _ = c.Close() }(c)
		}
	}()
	d := &Dialer{Addr: ln.Addr().String(), M: 6, N: 4, K: 2, OpTimeout: time.Hour}
	defer func() { _ = d.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = d.Pull(make([]float32, 8), nil,
		comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32, Ctx: ctx})
	if err == nil {
		t.Fatal("pull under an expired context deadline succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("context deadline took %v to cut the transfer", elapsed)
	}
}

// A cancelled context stops the transfer before it touches the wire.
func TestCancelledContextShortCircuits(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The address is never dialled: nothing listens here and no error about
	// refused connections may surface.
	d := &Dialer{Addr: "127.0.0.1:1", M: 6, N: 4, K: 2}
	_, err := d.Pull(make([]float32, 8), nil,
		comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32, Ctx: ctx})
	if err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("cancelled context: %v", err)
	}
}

func TestClosedTransportRefusesTransfers(t *testing.T) {
	_, d := newPair(t, ServerConfig{})
	if _, err := d.SyncShard(seq(8, 1), comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32}); err != nil {
		t.Fatal(err)
	}
	if err := comm.CloseTransport(d); err != nil {
		t.Fatal(err)
	}
	_, err := d.Pull(make([]float32, 8), nil, comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32})
	if err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("closed transport served a transfer: %v", err)
	}
}

// Concurrent workers each ride their own pooled connection; the store ends
// consistent. Run with -race.
func TestConcurrentTransfers(t *testing.T) {
	s, err := Listen("127.0.0.1:0", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	d := &Dialer{Addr: s.Addr(), M: 32, N: 16, K: 4, OpTimeout: 10 * time.Second}
	t.Cleanup(func() { _ = d.Close() })

	if _, err := d.SyncShard(seq(64, 0.01), comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 64), Enc: comm.FP32}); err != nil {
		t.Fatal(err)
	}
	const workers, ops = 8, 20
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := seq(128, float32(w+1))
			dst := make([]float32, 128)
			pulled := make([]float32, 64)
			for i := 0; i < ops; i++ {
				if _, err := d.Push(dst, src, comm.Xfer{Shard: comm.WorkerShard(comm.MatrixP, w, 0, 128), Enc: comm.FP32}); err != nil {
					errs[w] = err
					return
				}
				if _, err := d.Pull(pulled, nil, comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 64), Enc: comm.FP32}); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w := 0; w < workers; w++ {
		stored, ok := s.Shard(uint8(comm.MatrixP), w)
		if !ok {
			t.Fatalf("worker %d shard missing", w)
		}
		bitsEqual(t, "concurrent store", stored, seq(128, float32(w+1)))
	}
}

// The registry must build a working TCP transport, and the capability
// helpers must see it through the canonical decorator stack.
func TestRegistryBuildsTCPTransport(t *testing.T) {
	s, _ := newPair(t, ServerConfig{})
	tr, err := comm.New(comm.Spec{Kind: Kind, Addr: s.Addr(), M: 6, N: 4, K: 2, OpTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	stack := comm.NewRetrying(tr, comm.RetryPolicy{Attempts: 2})
	rem, ok := comm.AsRemote(stack)
	if !ok {
		t.Fatal("registry transport lost the Remote capability under decoration")
	}
	if rem.RemoteAddr() != s.Addr() {
		t.Fatalf("RemoteAddr = %q, want %q", rem.RemoteAddr(), s.Addr())
	}
	if _, err := rem.SyncShard(seq(8, 1), comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32}); err != nil {
		t.Fatal(err)
	}
	if err := comm.CloseTransport(stack); err != nil {
		t.Fatal(err)
	}

	if _, err := comm.New(comm.Spec{Kind: Kind, M: 6, N: 4, K: 2}); err == nil {
		t.Fatal("tcp transport built without an address")
	}
	if _, err := comm.New(comm.Spec{Kind: Kind, Addr: "127.0.0.1:1"}); err == nil {
		t.Fatal("tcp transport built without dims")
	}
}

// Close drains: it returns promptly with idle connections parked, and the
// listener stops accepting.
func TestServerGracefulClose(t *testing.T) {
	s, d := newPair(t, ServerConfig{})
	if _, err := d.SyncShard(seq(8, 1), comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on an idle pooled connection")
	}
	if _, err := net.DialTimeout("tcp", s.Addr(), time.Second); err == nil {
		t.Fatal("listener still accepting after Close")
	}
}
