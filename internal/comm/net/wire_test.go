package commnet

import (
	"bytes"
	"strings"
	"testing"

	"hccmf/internal/comm"
)

func TestFrameRoundTrip(t *testing.T) {
	src := []float32{1.5, -2.25, 0, 3e-5, 42}
	for _, enc := range []comm.Encoding{comm.FP32, comm.FP16} {
		f := Frame{
			Op:      OpPush,
			Shard:   comm.WorkerShard(comm.MatrixP, 3, 10, 15),
			Enc:     enc,
			Payload: encodePayload(nil, src, enc),
		}
		buf := appendFrame(nil, &f)
		got, n, err := DecodeFrame(buf, 1<<16)
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		if n != len(buf) {
			t.Fatalf("%v: consumed %d of %d bytes", enc, n, len(buf))
		}
		if got.Op != f.Op || got.Shard != f.Shard || got.Enc != f.Enc {
			t.Fatalf("%v: header mangled: %+v", enc, got)
		}
		dst := make([]float32, len(src))
		if _, err := payloadParams(got.Shard, got.Enc, len(got.Payload)); err != nil {
			t.Fatal(err)
		}
		decodePayload(dst, got.Payload, got.Enc)
		for i := range src {
			want := src[i]
			if enc == comm.FP16 {
				want = fp16RoundTripOne(src[i])
			}
			if dst[i] != want {
				t.Fatalf("%v: param %d = %v, want %v", enc, i, dst[i], want)
			}
		}
	}
}

func fp16RoundTripOne(v float32) float32 {
	one := []float32{v}
	fp16RoundTrip(one)
	return one[0]
}

func TestFrameStreamRoundTrip(t *testing.T) {
	// Frames written back to back must read back one at a time (the
	// connection is a byte stream, not a datagram socket).
	var buf bytes.Buffer
	frames := []Frame{
		{Op: OpHello, Payload: helloPayload(4, 5, 2, true)},
		{Op: OpPull, Shard: comm.GlobalShard(comm.MatrixQ, 0, 10), Enc: comm.FP16},
		{Op: OpAck},
	}
	var scratch []byte
	for i := range frames {
		var err error
		scratch, _, err = writeFrame(&buf, scratch, &frames[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range frames {
		got, _, err := readFrame(&buf, maxHandshakePayload)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Op != frames[i].Op {
			t.Fatalf("frame %d op = %v, want %v", i, got.Op, frames[i].Op)
		}
	}
}

func TestDecodeFrameRejectsMalformed(t *testing.T) {
	valid := appendFrame(nil, &Frame{
		Op:      OpData,
		Shard:   comm.GlobalShard(comm.MatrixQ, 0, 2),
		Enc:     comm.FP32,
		Payload: make([]byte, 8),
	})
	mutate := func(fn func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		fn(b)
		return b
	}
	cases := []struct {
		name string
		buf  []byte
		want string
	}{
		{"short", valid[:10], "short frame"},
		{"magic", mutate(func(b []byte) { b[0] = 'X' }), "bad magic"},
		{"version", mutate(func(b []byte) { b[4] = 9 }), "wire version"},
		{"op-zero", mutate(func(b []byte) { b[5] = 0 }), "unknown op"},
		{"op-high", mutate(func(b []byte) { b[5] = 200 }), "unknown op"},
		{"matrix", mutate(func(b []byte) { b[6] = 7 }), "unknown matrix"},
		{"encoding", mutate(func(b []byte) { b[7] = 5 }), "unknown encoding"},
		{"owner", mutate(func(b []byte) { b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0x00 }), "owner"},
		{"range", mutate(func(b []byte) { b[12], b[15] = 0x10, 0xff }), "shard range"},
		{"length", mutate(func(b []byte) { b[20] = 0xff }), "exceeds limit"},
		{"truncated", valid[:len(valid)-3], "truncated"},
	}
	for _, tc := range cases {
		_, _, err := DecodeFrame(tc.buf, 1<<16)
		if err == nil {
			t.Fatalf("%s: malformed frame accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestDecodeHeaderBoundsAllocation(t *testing.T) {
	// A hostile length field must be rejected against maxPayload before
	// any buffer is sized from it.
	f := Frame{Op: OpData, Shard: comm.GlobalShard(comm.MatrixQ, 0, 1<<20), Enc: comm.FP32}
	hdr := appendFrame(nil, &f)[:headerSize]
	hdr[20], hdr[21], hdr[22], hdr[23] = 0x7f, 0xff, 0xff, 0xff
	if _, _, err := decodeHeader(hdr, 1<<16); err == nil {
		t.Fatal("2GB payload length accepted against a 64KB limit")
	}
}

func TestHelloPayloadRoundTrip(t *testing.T) {
	m, n, k, fp16, err := parseHello(helloPayload(480189, 17770, 128, true))
	if err != nil {
		t.Fatal(err)
	}
	if m != 480189 || n != 17770 || k != 128 || !fp16 {
		t.Fatalf("parsed %d %d %d %v", m, n, k, fp16)
	}
	if _, _, _, _, err := parseHello([]byte{1, 2}); err == nil {
		t.Fatal("short hello accepted")
	}
	if _, _, _, _, err := parseHello(helloPayload(0, 5, 5, false)); err == nil {
		t.Fatal("zero dimension accepted")
	}
}

func TestPayloadParamsValidates(t *testing.T) {
	sh := comm.GlobalShard(comm.MatrixQ, 0, 4)
	if _, err := payloadParams(sh, comm.FP32, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := payloadParams(sh, comm.FP32, 15); err == nil {
		t.Fatal("ragged payload accepted")
	}
	if _, err := payloadParams(sh, comm.FP32, 20); err == nil {
		t.Fatal("payload/shard mismatch accepted")
	}
	if _, err := payloadParams(sh, comm.FP16, 8); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaConstant(t *testing.T) {
	if WireSchema != "hccmf-wire/v1" {
		t.Fatalf("WireSchema = %q", WireSchema)
	}
	if wireVersion != 1 {
		t.Fatalf("wireVersion = %d does not match %s", wireVersion, WireSchema)
	}
}
