package commnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ServerConfig tunes a listener.
type ServerConfig struct {
	// NoFP16 declines the fp16 capability at handshake; clients fall back
	// to fp32 framing (and apply the fp16 round trip locally, so the
	// strategy's numeric contract is unchanged).
	NoFP16 bool
	// IdleTimeout bounds how long a connection may sit between frames;
	// zero means DefaultIdleTimeout. It protects the drain path: a client
	// that went away without closing cannot hold a handler forever.
	IdleTimeout time.Duration
	// Logf receives connection-level diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// DefaultIdleTimeout is the per-connection inter-frame read deadline.
const DefaultIdleTimeout = 5 * time.Minute

// ServerStats is a snapshot of a server's lifetime counters.
type ServerStats struct {
	Conns  int64
	Frames int64
	Pulls  int64
	Pushes int64
	Syncs  int64
	Errors int64
}

// storeKey addresses one shard buffer: a matrix and its owner (a worker's
// push buffer, or the global copy at owner −1).
type storeKey struct {
	matrix uint8
	owner  int
}

// Server owns the parameter shards and answers hccmf-wire/v1 requests. It
// is passive by design: the training cluster (fold, sync, eviction) runs
// in the worker process, publishes the authoritative global factors after
// every sync barrier, and the server's job is to hold the bytes and serve
// them — which is exactly what keeps a two-process run bit-identical to an
// in-process one.
type Server struct {
	ln  net.Listener
	cfg ServerConfig

	mu sync.Mutex
	// m, n, k are fixed by the first handshake; later hellos must agree.
	m, n, k int
	store   map[storeKey][]float32
	conns   map[net.Conn]struct{}
	closed  bool
	stats   ServerStats

	wg sync.WaitGroup
}

// Listen starts a server on addr ("127.0.0.1:0" picks a free port).
func Listen(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("commnet: listen %s: %w", addr, err)
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	s := &Server{
		ln:    ln,
		cfg:   cfg,
		store: make(map[storeKey][]float32),
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	// lint:allow goroutinepolicy accept loop is joined by Close via s.wg.Wait; it exits when the listener is closed.
	go s.acceptLoop()
	return s, nil
}

// Addr reports the bound address (with the real port after :0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats snapshots the lifetime counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close drains and shuts down: the listener stops accepting, handlers
// finish the frame they are serving (blocked idle reads are unblocked by
// an immediate read deadline), and Close returns once every handler has
// exited. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	// Unblock handlers parked between frames; in-flight responses still
	// complete (only the read side is expired).
	for c := range s.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			// Listener closed (drain) or fatal; either way stop accepting.
			if !errors.Is(err, net.ErrClosed) {
				s.logf("commnet: accept: %v", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.stats.Conns++
		s.wg.Add(1)
		s.mu.Unlock()
		// lint:allow goroutinepolicy per-connection handlers are joined by Close via s.wg.Wait; drain expires their read deadlines.
		go s.handle(conn)
	}
}

// draining reports whether Close has begun.
func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	_ = conn.Close()
}

// handle serves one connection: handshake, then request frames until the
// peer closes, errors, or the server drains.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)

	_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	hello, _, err := readFrame(conn, maxHandshakePayload)
	if err != nil || hello.Op != OpHello {
		s.logf("commnet: %s: bad handshake: op=%v err=%v", conn.RemoteAddr(), hello.Op, err)
		s.replyError(conn, fmt.Sprintf("want hello frame (%s)", WireSchema))
		return
	}
	m, n, k, wantFP16, err := parseHello(hello.Payload)
	if err == nil {
		err = s.adoptDims(m, n, k)
	}
	if err != nil {
		s.logf("commnet: %s: handshake rejected: %v", conn.RemoteAddr(), err)
		s.replyError(conn, err.Error())
		return
	}
	fp16OK := wantFP16 && !s.cfg.NoFP16
	var caps byte
	if fp16OK {
		caps = helloCapFP16
	}
	var scratch []byte
	scratch, _, err = writeFrame(conn, scratch, &Frame{Op: OpHelloOK, Payload: []byte{caps}})
	if err != nil {
		s.logf("commnet: %s: %v", conn.RemoteAddr(), err)
		return
	}
	s.countFrames(2)

	// Any payload is bounded by the largest matrix in fp32.
	maxPayload := 4 * maxInt(m, n) * k
	for {
		if s.draining() {
			return
		}
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		req, _, err := readFrame(conn, maxPayload)
		if err != nil {
			// EOF and expired drain deadlines are normal ends; protocol
			// violations are worth a diagnostic but either way the
			// stream's framing can no longer be trusted.
			if !s.draining() {
				s.logf("commnet: %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		s.countFrames(1)
		var resp Frame
		switch req.Op {
		case OpPull:
			resp = s.servePull(req)
		case OpPush:
			resp = s.servePush(req)
		default:
			resp = errorFrame(fmt.Sprintf("unexpected %v frame", req.Op))
		}
		if resp.Op == OpError {
			s.countError()
		}
		scratch, _, err = writeFrame(conn, scratch, &resp)
		if err != nil {
			s.logf("commnet: %s: %v", conn.RemoteAddr(), err)
			return
		}
		s.countFrames(1)
	}
}

// adoptDims fixes the server's dimensions on first contact and verifies
// every later client agrees — a mismatched worker would corrupt shards.
func (s *Server) adoptDims(m, n, k int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == 0 {
		s.m, s.n, s.k = m, n, k
		return nil
	}
	if s.m != m || s.n != n || s.k != k {
		return fmt.Errorf("commnet: dims %dx%dx%d, server fixed at %dx%dx%d", m, n, k, s.m, s.n, s.k)
	}
	return nil
}

// matrixSize reports the flat float32 length of a matrix under the fixed
// dims (callers hold s.mu).
func (s *Server) matrixSize(m uint8) int {
	if m == 1 { // MatrixP
		return s.m * s.k
	}
	return s.n * s.k
}

// servePull answers a pull request from the store.
func (s *Server) servePull(req Frame) Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Pulls++
	key := storeKey{matrix: uint8(req.Shard.Matrix), owner: req.Shard.Owner}
	buf, ok := s.store[key]
	if !ok {
		return errorFrame(fmt.Sprintf("shard %v not published", req.Shard))
	}
	if req.Shard.Hi > len(buf) {
		return errorFrame(fmt.Sprintf("shard %v outside matrix of %d params", req.Shard, len(buf)))
	}
	payload := encodePayload(make([]byte, 0, req.Shard.Params()*req.Enc.BytesPerParam()),
		buf[req.Shard.Lo:req.Shard.Hi], req.Enc)
	return Frame{Op: OpData, Shard: req.Shard, Enc: req.Enc, Payload: payload}
}

// servePush lands a push (owner ≥ 0) or a sync publish (owner −1) in the
// store. The write happens only after the complete payload validated, so
// a retried push after a truncated or reset attempt is idempotent — the
// store never holds a half-applied transfer.
func (s *Server) servePush(req Frame) Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Shard.Owner < 0 {
		s.stats.Syncs++
	} else {
		s.stats.Pushes++
	}
	size := s.matrixSize(uint8(req.Shard.Matrix))
	if req.Shard.Hi > size {
		return errorFrame(fmt.Sprintf("shard %v outside matrix of %d params", req.Shard, size))
	}
	if _, err := payloadParams(req.Shard, req.Enc, len(req.Payload)); err != nil {
		return errorFrame(err.Error())
	}
	key := storeKey{matrix: uint8(req.Shard.Matrix), owner: req.Shard.Owner}
	buf, ok := s.store[key]
	if !ok {
		buf = make([]float32, size)
		s.store[key] = buf
	}
	decodePayload(buf[req.Shard.Lo:req.Shard.Hi], req.Payload, req.Enc)
	return Frame{Op: OpAck, Shard: req.Shard, Enc: req.Enc}
}

// Shard returns a copy of a stored shard buffer (tests and diagnostics).
func (s *Server) Shard(matrix uint8, owner int) ([]float32, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, ok := s.store[storeKey{matrix: matrix, owner: owner}]
	if !ok {
		return nil, false
	}
	out := make([]float32, len(buf))
	copy(out, buf)
	return out, true
}

func (s *Server) countFrames(n int64) {
	s.mu.Lock()
	s.stats.Frames += n
	s.mu.Unlock()
}

func (s *Server) countError() {
	s.mu.Lock()
	s.stats.Errors++
	s.mu.Unlock()
}

// replyError best-effort sends an error frame during handshake failure.
func (s *Server) replyError(conn net.Conn, msg string) {
	_, _, _ = writeFrame(conn, nil, &Frame{Op: OpError, Payload: []byte(msg)})
}

func errorFrame(msg string) Frame {
	return Frame{Op: OpError, Payload: []byte(msg)}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
