package commnet

import (
	"bytes"
	"testing"

	"hccmf/internal/comm"
)

// FuzzDecodeFrame drives the frame parser with arbitrary bytes. Malformed
// input must come back as an error — never a panic, and never an
// allocation beyond the declared payload limit.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(appendFrame(nil, &Frame{Op: OpHello, Payload: helloPayload(120, 80, 8, true)}))
	f.Add(appendFrame(nil, &Frame{
		Op:      OpPush,
		Shard:   comm.WorkerShard(comm.MatrixP, 2, 4, 8),
		Enc:     comm.FP16,
		Payload: encodePayload(nil, []float32{1, 2, 3, 4}, comm.FP16),
	}))
	f.Add(appendFrame(nil, &Frame{Op: OpPull, Shard: comm.GlobalShard(comm.MatrixQ, 0, 64), Enc: comm.FP32}))
	f.Add(appendFrame(nil, &Frame{Op: OpAck}))
	f.Add([]byte("HCWF"))
	corrupt := appendFrame(nil, &Frame{Op: OpData, Shard: comm.GlobalShard(comm.MatrixQ, 0, 2), Enc: comm.FP32, Payload: make([]byte, 8)})
	corrupt[20] = 0xee // hostile payload length
	f.Add(corrupt)

	const maxPayload = 1 << 12
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data, maxPayload)
		if err != nil {
			return
		}
		if n < headerSize || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if len(fr.Payload) > maxPayload {
			t.Fatalf("payload %d bytes exceeds the declared limit %d", len(fr.Payload), maxPayload)
		}
		if !validOp(fr.Op) || fr.Shard.Lo > fr.Shard.Hi || fr.Shard.Owner < comm.GlobalOwner {
			t.Fatalf("invalid frame accepted: %+v", fr)
		}
		// An accepted frame must survive a re-encode/re-decode round trip.
		again, m, err := DecodeFrame(appendFrame(nil, &fr), maxPayload)
		if err != nil {
			t.Fatalf("re-decode of accepted frame: %v", err)
		}
		if m != n || again.Op != fr.Op || again.Shard != fr.Shard || again.Enc != fr.Enc ||
			!bytes.Equal(again.Payload, fr.Payload) {
			t.Fatalf("round trip changed the frame: %+v vs %+v", again, fr)
		}

		// The stream reader shares the validation path and must agree.
		sf, sn, serr := readFrame(bytes.NewReader(data), maxPayload)
		if serr != nil {
			t.Fatalf("readFrame rejected what DecodeFrame accepted: %v", serr)
		}
		if sn != n || sf.Op != fr.Op || sf.Shard != fr.Shard {
			t.Fatalf("stream decode disagrees: %+v vs %+v", sf, fr)
		}
	})
}
