// Package commnet implements the hccmf-wire/v1 protocol: a TCP transport
// for the parameter server, so COMM-P's message-passing path finally spans
// real process (and machine) boundaries instead of being modelled between
// goroutines.
//
// Every exchange is a length-prefixed frame:
//
//	offset size  field
//	0      4     magic "HCWF"
//	4      1     schema version (1)
//	5      1     op (hello, hello-ok, pull, data, push, ack, error)
//	6      1     matrix (0 = Q, 1 = P)
//	7      1     encoding (0 = fp32, 1 = fp16)
//	8      4     shard owner (int32 big-endian; -1 = the global copy)
//	12     4     shard lo (flat float32 element offset)
//	16     4     shard hi
//	20     4     payload length in bytes
//	24     …     payload
//
// All integers are big-endian. A connection starts with a hello/hello-ok
// handshake carrying the factor dimensions (m, n, k) and the fp16
// capability bit; after that the client issues pull (→ data) and push
// (→ ack) requests. Feature payloads are raw little-endian float32 or, when
// both ends negotiated it, IEEE binary16 from internal/fp16 — halving the
// octets on the wire exactly like the in-process Strategy 2 halves bus
// bytes. Either side answers a malformed or unserviceable request with an
// error frame whose payload is the message text; the stream stays framed,
// so the connection survives an application-level error.
//
// The package deliberately lives OUTSIDE the simtime invariant (its name is
// not in the analyzer's sim set): socket deadlines need the wall clock.
// Everything that reaches the cost model still flows through
// comm.TransferStats, where BusBytes stays the logical payload volume and
// the real octets land in WireBytes.
package commnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"hccmf/internal/comm"
	"hccmf/internal/fp16"
)

// WireSchema is the versioned name of the framing protocol; the handshake
// rejects peers speaking any other version.
const WireSchema = "hccmf-wire/v1"

// wireVersion is the version octet matching WireSchema.
const wireVersion = 1

// magic opens every frame.
var magic = [4]byte{'H', 'C', 'W', 'F'}

// headerSize is the fixed frame prefix, payload excluded.
const headerSize = 24

// Op is the frame operation.
type Op uint8

const (
	// OpHello opens a connection: payload = m, n, k (uint32 each) plus one
	// capability byte (bit 0: client can decode fp16 payloads).
	OpHello Op = 1
	// OpHelloOK accepts a hello: payload = one capability byte (bit 0:
	// server accepted fp16 payloads on this connection).
	OpHelloOK Op = 2
	// OpPull requests the shard named in the header; no payload.
	OpPull Op = 3
	// OpData answers a pull with the shard's payload.
	OpData Op = 4
	// OpPush uploads the payload into the shard named in the header. An
	// owner ≥ 0 targets that worker's push buffer; owner −1 overwrites the
	// server's authoritative global copy (the cluster's sync publish).
	OpPush Op = 5
	// OpAck answers a successful push; no payload.
	OpAck Op = 6
	// OpError answers any request that failed; payload = message text.
	OpError Op = 7
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpHello:
		return "hello"
	case OpHelloOK:
		return "hello-ok"
	case OpPull:
		return "pull"
	case OpData:
		return "data"
	case OpPush:
		return "push"
	case OpAck:
		return "ack"
	case OpError:
		return "error"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

func validOp(o Op) bool { return o >= OpHello && o <= OpError }

// Frame is one decoded protocol frame.
type Frame struct {
	Op      Op
	Shard   comm.Shard
	Enc     comm.Encoding
	Payload []byte
}

// maxHandshakePayload bounds hello/hello-ok payloads: 12 dimension bytes
// plus one capability byte, with room for future capability bytes.
const maxHandshakePayload = 64

// helloCapFP16 is the capability bit for fp16 payload compression.
const helloCapFP16 = 1

// appendFrame serialises f onto buf and returns the extended slice.
// Callers reuse buf across frames, so the steady-state transfer path
// allocates nothing.
func appendFrame(buf []byte, f *Frame) []byte {
	var hdr [headerSize]byte
	copy(hdr[0:4], magic[:])
	hdr[4] = wireVersion
	hdr[5] = byte(f.Op)
	hdr[6] = byte(f.Shard.Matrix)
	hdr[7] = byte(f.Enc)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(int32(f.Shard.Owner)))
	binary.BigEndian.PutUint32(hdr[12:16], uint32(f.Shard.Lo))
	binary.BigEndian.PutUint32(hdr[16:20], uint32(f.Shard.Hi))
	binary.BigEndian.PutUint32(hdr[20:24], uint32(len(f.Payload)))
	buf = append(buf, hdr[:]...)
	return append(buf, f.Payload...)
}

// writeFrame sends one frame, reporting the octets written.
func writeFrame(w io.Writer, buf []byte, f *Frame) (scratch []byte, n int, err error) {
	buf = appendFrame(buf[:0], f)
	n, err = w.Write(buf)
	if err != nil {
		return buf, n, fmt.Errorf("commnet: write %s frame: %w", f.Op, err)
	}
	return buf, n, nil
}

// decodeHeader validates the fixed prefix and returns the frame skeleton
// plus its declared payload length. maxPayload caps what the caller is
// willing to allocate/read — a malformed or hostile length field must
// error here, before any allocation.
func decodeHeader(hdr []byte, maxPayload int) (Frame, int, error) {
	var f Frame
	if len(hdr) < headerSize {
		return f, 0, fmt.Errorf("commnet: short header: %d bytes", len(hdr))
	}
	if [4]byte(hdr[0:4]) != magic {
		return f, 0, fmt.Errorf("commnet: bad magic %q (want %s)", hdr[0:4], WireSchema)
	}
	if hdr[4] != wireVersion {
		return f, 0, fmt.Errorf("commnet: wire version %d, want %d (%s)", hdr[4], wireVersion, WireSchema)
	}
	f.Op = Op(hdr[5])
	if !validOp(f.Op) {
		return f, 0, fmt.Errorf("commnet: unknown op %d", hdr[5])
	}
	if hdr[6] > uint8(comm.MatrixP) {
		return f, 0, fmt.Errorf("commnet: unknown matrix %d", hdr[6])
	}
	f.Shard.Matrix = comm.Matrix(hdr[6])
	if hdr[7] > uint8(comm.FP16) {
		return f, 0, fmt.Errorf("commnet: unknown encoding %d", hdr[7])
	}
	f.Enc = comm.Encoding(hdr[7])
	f.Shard.Owner = int(int32(binary.BigEndian.Uint32(hdr[8:12])))
	if f.Shard.Owner < comm.GlobalOwner {
		return f, 0, fmt.Errorf("commnet: shard owner %d", f.Shard.Owner)
	}
	f.Shard.Lo = int(binary.BigEndian.Uint32(hdr[12:16]))
	f.Shard.Hi = int(binary.BigEndian.Uint32(hdr[16:20]))
	if f.Shard.Lo > f.Shard.Hi {
		return f, 0, fmt.Errorf("commnet: shard range [%d,%d)", f.Shard.Lo, f.Shard.Hi)
	}
	n := int(binary.BigEndian.Uint32(hdr[20:24]))
	if n > maxPayload {
		return f, 0, fmt.Errorf("commnet: payload %d bytes exceeds limit %d", n, maxPayload)
	}
	return f, n, nil
}

// readFrame reads one complete frame. maxPayload bounds the allocation
// (see decodeHeader); the returned byte count is the octets consumed.
func readFrame(r io.Reader, maxPayload int) (Frame, int, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, 0, fmt.Errorf("commnet: read frame header: %w", err)
	}
	f, n, err := decodeHeader(hdr[:], maxPayload)
	if err != nil {
		return Frame{}, headerSize, err
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, headerSize, fmt.Errorf("commnet: read %s payload (%d bytes): %w", f.Op, n, err)
		}
	}
	return f, headerSize + n, nil
}

// DecodeFrame parses one frame from a byte buffer — the fuzzable entry
// point sharing readFrame's validation. It returns the frame and the bytes
// consumed.
func DecodeFrame(buf []byte, maxPayload int) (Frame, int, error) {
	if len(buf) < headerSize {
		return Frame{}, 0, fmt.Errorf("commnet: short frame: %d bytes", len(buf))
	}
	f, n, err := decodeHeader(buf[:headerSize], maxPayload)
	if err != nil {
		return Frame{}, 0, err
	}
	if len(buf) < headerSize+n {
		return Frame{}, 0, fmt.Errorf("commnet: frame truncated: %d of %d payload bytes", len(buf)-headerSize, n)
	}
	if n > 0 {
		f.Payload = buf[headerSize : headerSize+n]
	}
	return f, headerSize + n, nil
}

// payloadParams reports how many float32 parameters a data/push payload of
// plen bytes carries under enc, validating it against the shard range.
func payloadParams(sh comm.Shard, enc comm.Encoding, plen int) (int, error) {
	bpp := enc.BytesPerParam()
	if plen%bpp != 0 {
		return 0, fmt.Errorf("commnet: %d payload bytes not a multiple of %d (%v)", plen, bpp, enc)
	}
	params := plen / bpp
	if params != sh.Params() {
		return 0, fmt.Errorf("commnet: payload carries %d params for shard %v (%d params)", params, sh, sh.Params())
	}
	return params, nil
}

// encodePayload appends src under enc to buf.
func encodePayload(buf []byte, src []float32, enc comm.Encoding) []byte {
	switch enc {
	case comm.FP16:
		for _, v := range src {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(fp16.FromFloat32(v)))
		}
	default:
		for _, v := range src {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	}
	return buf
}

// decodePayload fills dst from a wire payload under enc. len(dst) must
// already match (payloadParams validated it).
func decodePayload(dst []float32, payload []byte, enc comm.Encoding) {
	switch enc {
	case comm.FP16:
		for i := range dst {
			dst[i] = fp16.Bits16(binary.LittleEndian.Uint16(payload[2*i:])).ToFloat32()
		}
	default:
		for i := range dst {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
		}
	}
}

// helloPayload encodes the handshake dimensions and capability bits.
func helloPayload(m, n, k int, fp16 bool) []byte {
	buf := make([]byte, 13)
	binary.BigEndian.PutUint32(buf[0:4], uint32(m))
	binary.BigEndian.PutUint32(buf[4:8], uint32(n))
	binary.BigEndian.PutUint32(buf[8:12], uint32(k))
	if fp16 {
		buf[12] = helloCapFP16
	}
	return buf
}

// parseHello decodes a hello payload.
func parseHello(payload []byte) (m, n, k int, fp16 bool, err error) {
	if len(payload) < 13 {
		return 0, 0, 0, false, fmt.Errorf("commnet: hello payload %d bytes, want ≥13", len(payload))
	}
	m = int(binary.BigEndian.Uint32(payload[0:4]))
	n = int(binary.BigEndian.Uint32(payload[4:8]))
	k = int(binary.BigEndian.Uint32(payload[8:12]))
	if m <= 0 || n <= 0 || k <= 0 {
		return 0, 0, 0, false, fmt.Errorf("commnet: hello dims m=%d n=%d k=%d", m, n, k)
	}
	return m, n, k, payload[12]&helloCapFP16 != 0, nil
}
