package commnet

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"hccmf/internal/comm"
)

// flakyProxy sits between a Dialer and a Server, forwarding bytes but
// cutting the server→client direction once a connection's byte budget runs
// out — with SO_LINGER 0, so the client sees a hard TCP reset mid-frame,
// exactly what a killed hccmf-ps process produces.
type flakyProxy struct {
	ln      net.Listener
	backend string
	// budget returns the server→client byte allowance for the i-th
	// connection (0-based); negative means unlimited.
	budget func(i int) int

	mu    sync.Mutex
	conns int
	wg    sync.WaitGroup
}

func startProxy(t *testing.T, backend string, budget func(i int) int) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln, backend: backend, budget: budget}
	p.wg.Add(1)
	go p.serve()
	t.Cleanup(func() {
		_ = ln.Close()
		p.wg.Wait()
	})
	return p
}

func (p *flakyProxy) addr() string { return p.ln.Addr().String() }

func (p *flakyProxy) serve() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		i := p.conns
		p.conns++
		p.mu.Unlock()
		p.wg.Add(1)
		go p.pipe(client, p.budget(i))
	}
}

func (p *flakyProxy) pipe(client net.Conn, budget int) {
	defer p.wg.Done()
	server, err := net.Dial("tcp", p.backend)
	if err != nil {
		_ = client.Close()
		return
	}
	abort := func() {
		// RST instead of FIN: a crashed peer does not say goodbye.
		if tc, ok := client.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
		_ = client.Close()
		_ = server.Close()
	}
	done := make(chan struct{}, 2)
	go func() { _, _ = io.Copy(server, client); done <- struct{}{} }()
	go func() {
		if budget < 0 {
			_, _ = io.Copy(client, server)
		} else {
			_, _ = io.CopyN(client, server, int64(budget))
			abort()
		}
		done <- struct{}{}
	}()
	<-done
	_ = client.Close()
	_ = server.Close()
	<-done
}

// handshakeRespBytes is the server→client cost of a handshake: one
// hello-ok frame (header + capability byte).
const handshakeRespBytes = headerSize + 1

// Resets and truncated frames on the wire must surface as transfer errors
// that comm.Retrying absorbs: the retried operation lands idempotently and
// the recovered state is bit-identical to a clean exchange.
func TestRetryingRecoversFromResetsAndTruncation(t *testing.T) {
	s, err := Listen("127.0.0.1:0", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	// Connection 0 dies right after the handshake (reset before the ack),
	// connection 1 dies 5 bytes into the ack frame (truncation), and
	// connection 2 behaves.
	budgets := []int{handshakeRespBytes, handshakeRespBytes + 5, -1}
	p := startProxy(t, s.Addr(), func(i int) int {
		if i < len(budgets) {
			return budgets[i]
		}
		return -1
	})

	d := &Dialer{Addr: p.addr(), M: 6, N: 4, K: 2, OpTimeout: 5 * time.Second}
	t.Cleanup(func() { _ = d.Close() })
	tr := comm.NewRetrying(d, comm.RetryPolicy{Attempts: 4})
	rem, ok := comm.AsRemote(tr)
	if !ok {
		t.Fatal("retrying lost the Remote capability")
	}

	global := seq(8, 0.09)
	st, err := rem.SyncShard(global, comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32})
	if err != nil {
		t.Fatalf("retrying did not absorb the faults: %v", err)
	}
	if st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2 (reset + truncation)", st.Retries)
	}
	if st.Handshakes != 3 {
		t.Fatalf("Handshakes = %d, want 3 (each attempt redialled)", st.Handshakes)
	}

	// The store took the publish exactly once-effectively: pulling it back
	// returns the published bits.
	dst := make([]float32, 8)
	if _, err := tr.Pull(dst, nil, comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32}); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "post-chaos pull", dst, global)
}

// A reset mid-payload of a pull response must never leak a half-filled
// destination: dst is written only after the complete frame validated.
func TestTruncatedPullLeavesDstUntouched(t *testing.T) {
	s, err := Listen("127.0.0.1:0", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	seed := &Dialer{Addr: s.Addr(), M: 6, N: 4, K: 2, OpTimeout: 5 * time.Second}
	if _, err := seed.SyncShard(seq(8, 0.5), comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32}); err != nil {
		t.Fatal(err)
	}
	_ = seed.Close()

	// Allow the handshake plus half the data frame, then cut.
	p := startProxy(t, s.Addr(), func(i int) int { return handshakeRespBytes + headerSize + 16 })
	d := &Dialer{Addr: p.addr(), M: 6, N: 4, K: 2, OpTimeout: 5 * time.Second}
	t.Cleanup(func() { _ = d.Close() })

	dst := make([]float32, 8)
	for i := range dst {
		dst[i] = -99
	}
	if _, err := d.Pull(dst, nil, comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32}); err == nil {
		t.Fatal("truncated pull reported success")
	}
	for i, v := range dst {
		if v != -99 {
			t.Fatalf("dst[%d] = %v: truncated pull partially wrote the destination", i, v)
		}
	}
}

// Killing the server mid-run turns into a prompt, clean transfer error —
// never a hang — and the pooled connection is not reused afterwards.
func TestServerKilledMidRunFailsCleanly(t *testing.T) {
	s, d := newPair(t, ServerConfig{})
	d.OpTimeout = 2 * time.Second
	if _, err := d.SyncShard(seq(8, 1), comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := d.Pull(make([]float32, 8), nil, comm.Xfer{Shard: comm.GlobalShard(comm.MatrixQ, 0, 8), Enc: comm.FP32})
	if err == nil {
		t.Fatal("pull against a killed server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("dead server took %v to surface", elapsed)
	}
}
