package commnet

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"hccmf/internal/comm"
	"hccmf/internal/fp16"
)

// Kind is the registry name of the TCP transport; importing this package
// (for side effects) makes `-transport tcp` resolvable through comm.New.
const Kind = "tcp"

func init() {
	comm.Register(Kind, func(spec comm.Spec) (comm.Transport, error) {
		if spec.Addr == "" {
			return nil, fmt.Errorf("commnet: the %q transport needs a server address", Kind)
		}
		if spec.M <= 0 || spec.N <= 0 || spec.K <= 0 {
			return nil, fmt.Errorf("commnet: the %q transport needs factor dims, got m=%d n=%d k=%d",
				Kind, spec.M, spec.N, spec.K)
		}
		return &Dialer{Addr: spec.Addr, M: spec.M, N: spec.N, K: spec.K, OpTimeout: spec.OpTimeout}, nil
	})
}

// DefaultOpTimeout bounds one wire operation (dial, handshake, pull, push)
// when neither the Dialer nor the transfer's context says otherwise.
const DefaultOpTimeout = 10 * time.Second

// Dialer is the client side of hccmf-wire/v1: a comm.Transport whose
// server-side buffers live in an hccmf-ps process. Connections are pooled
// and reused across transfers; concurrent workers each hold their own
// connection while an operation is in flight. Every operation runs under a
// deadline — the transfer context's, when it is sooner than OpTimeout —
// and a connection that sees a transport-level error is discarded so the
// next attempt (typically a comm.Retrying redial) starts clean.
type Dialer struct {
	// Addr is the hccmf-ps endpoint.
	Addr string
	// M, N, K are the factor dims declared at handshake.
	M, N, K int
	// OpTimeout bounds each operation; zero means DefaultOpTimeout.
	OpTimeout time.Duration
	// NoFP16 stops the client from offering fp16 payload compression.
	NoFP16 bool

	mu     sync.Mutex
	idle   []*wireConn
	closed bool
}

// wireConn is one pooled connection with its negotiated capabilities and
// reusable buffers.
type wireConn struct {
	c      net.Conn
	br     *bufio.Reader
	fp16OK bool
	// scratch holds an outgoing payload; frame holds the assembled frame
	// (header + payload). Both are reused so steady-state transfers do
	// not allocate per operation.
	scratch []byte
	frame   []byte
}

// Name implements comm.Transport.
func (d *Dialer) Name() string { return "TCP" }

// CopiesPerTransfer implements comm.Transport: marshal into the frame,
// the kernel socket crossing, and unmarshal on the far side — the same
// three passes as the in-process COMM-P baseline it distributes.
func (d *Dialer) CopiesPerTransfer() int { return 3 }

// RemoteAddr implements comm.Remote.
func (d *Dialer) RemoteAddr() string { return d.Addr }

// Close implements io.Closer: drops every pooled connection and refuses
// further transfers. Reach it through comm.CloseTransport, which sees
// through decorators.
func (d *Dialer) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	var first error
	for _, wc := range d.idle {
		if err := wc.c.Close(); err != nil && first == nil {
			first = err
		}
	}
	d.idle = nil
	return first
}

func (d *Dialer) timeout() time.Duration {
	if d.OpTimeout > 0 {
		return d.OpTimeout
	}
	return DefaultOpTimeout
}

// opDeadline resolves the operation deadline: OpTimeout from now, or the
// transfer context's deadline when that is sooner.
func (d *Dialer) opDeadline(x comm.Xfer) time.Time {
	t := time.Now().Add(d.timeout())
	if x.Ctx != nil {
		if dl, ok := x.Ctx.Deadline(); ok && dl.Before(t) {
			t = dl
		}
	}
	return t
}

// maxPayload bounds any frame this client will accept: the largest matrix
// in fp32.
func (d *Dialer) maxPayload() int {
	return 4 * maxInt(d.M, d.N) * d.K
}

// conn returns a pooled connection or dials (and handshakes) a fresh one,
// accounting the handshake in st.
func (d *Dialer) conn(deadline time.Time, st *comm.TransferStats) (*wireConn, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, fmt.Errorf("commnet: transport closed")
	}
	if n := len(d.idle); n > 0 {
		wc := d.idle[n-1]
		d.idle = d.idle[:n-1]
		d.mu.Unlock()
		return wc, nil
	}
	d.mu.Unlock()

	c, err := net.DialTimeout("tcp", d.Addr, time.Until(deadline))
	if err != nil {
		return nil, fmt.Errorf("commnet: dial %s: %w", d.Addr, err)
	}
	st.Handshakes++
	wc := &wireConn{c: c, br: bufio.NewReader(c)}
	if err := d.handshake(wc, deadline, st); err != nil {
		_ = c.Close()
		return nil, err
	}
	return wc, nil
}

// handshake runs hello/hello-ok and records the negotiated capabilities.
func (d *Dialer) handshake(wc *wireConn, deadline time.Time, st *comm.TransferStats) error {
	_ = wc.c.SetDeadline(deadline)
	hello := Frame{Op: OpHello, Payload: helloPayload(d.M, d.N, d.K, !d.NoFP16)}
	scratch, n, err := writeFrame(wc.c, wc.scratch, &hello)
	wc.scratch = scratch
	st.Frames++
	st.WireBytes += int64(n)
	if err != nil {
		return err
	}
	resp, rn, err := readFrame(wc.br, maxHandshakePayload)
	st.Frames++
	st.WireBytes += int64(rn)
	if err != nil {
		return fmt.Errorf("commnet: handshake with %s: %w", d.Addr, err)
	}
	switch resp.Op {
	case OpHelloOK:
		if len(resp.Payload) < 1 {
			return fmt.Errorf("commnet: hello-ok without capability byte")
		}
		wc.fp16OK = resp.Payload[0]&helloCapFP16 != 0
		return nil
	case OpError:
		return fmt.Errorf("commnet: server rejected handshake: %s", resp.Payload)
	default:
		return fmt.Errorf("commnet: handshake answered with %v frame", resp.Op)
	}
}

// putConn returns a healthy connection to the pool.
func (d *Dialer) putConn(wc *wireConn) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		_ = wc.c.Close()
		return
	}
	d.idle = append(d.idle, wc)
	d.mu.Unlock()
}

// Pull implements comm.Transport: the shard named by x is served from the
// remote store (src, the in-process convenience slice, is ignored).
func (d *Dialer) Pull(dst, src []float32, x comm.Xfer) (comm.TransferStats, error) {
	var st comm.TransferStats
	err := d.roundTrip(x, len(dst), &st, func(wc *wireConn, wireEnc comm.Encoding) (Frame, error) {
		return Frame{Op: OpPull, Shard: x.Shard, Enc: wireEnc}, nil
	}, func(wc *wireConn, wireEnc comm.Encoding, resp Frame) error {
		if resp.Op != OpData {
			return fmt.Errorf("commnet: pull answered with %v frame", resp.Op)
		}
		if _, err := payloadParams(x.Shard, wireEnc, len(resp.Payload)); err != nil {
			return err
		}
		decodePayload(dst, resp.Payload, wireEnc)
		if wireEnc != x.Enc {
			// fp16 was declined on the wire; apply the round trip locally
			// so the strategy's numeric contract (dst = roundtrip(global))
			// holds bit-for-bit regardless of negotiation.
			fp16RoundTrip(dst)
		}
		return nil
	})
	return st, err
}

// Push implements comm.Transport: src lands in the remote shard, and dst
// receives the encode/decode round trip of src — the same bytes the wire
// carried, matching the in-process transports exactly.
func (d *Dialer) Push(dst, src []float32, x comm.Xfer) (comm.TransferStats, error) {
	var st comm.TransferStats
	err := d.roundTrip(x, len(src), &st, func(wc *wireConn, wireEnc comm.Encoding) (Frame, error) {
		if len(dst) != len(src) {
			return Frame{}, fmt.Errorf("commnet: length mismatch dst=%d src=%d", len(dst), len(src))
		}
		payloadSrc := src
		if wireEnc != x.Enc {
			// fp16 declined: round-trip locally, ship full precision of
			// the rounded values so the store equals dst.
			copy(dst, src)
			fp16RoundTrip(dst)
			payloadSrc = dst
		}
		wc.scratch = appendFramePayload(wc.scratch[:0], payloadSrc, wireEnc)
		f := Frame{Op: OpPush, Shard: x.Shard, Enc: wireEnc, Payload: wc.scratch}
		if wireEnc == x.Enc {
			// dst = decode(wire bytes): exactly what the server stores.
			decodePayload(dst, f.Payload, wireEnc)
		}
		return f, nil
	}, func(wc *wireConn, wireEnc comm.Encoding, resp Frame) error {
		if resp.Op != OpAck {
			return fmt.Errorf("commnet: push answered with %v frame", resp.Op)
		}
		return nil
	})
	return st, err
}

// SyncShard implements comm.Remote: uploads authoritative bytes into the
// store (the cluster's post-sync publish). No local destination — the
// caller's slice already is the authority.
func (d *Dialer) SyncShard(src []float32, x comm.Xfer) (comm.TransferStats, error) {
	var st comm.TransferStats
	err := d.roundTrip(x, len(src), &st, func(wc *wireConn, wireEnc comm.Encoding) (Frame, error) {
		wc.scratch = appendFramePayload(wc.scratch[:0], src, wireEnc)
		return Frame{Op: OpPush, Shard: x.Shard, Enc: wireEnc, Payload: wc.scratch}, nil
	}, func(wc *wireConn, wireEnc comm.Encoding, resp Frame) error {
		if resp.Op != OpAck {
			return fmt.Errorf("commnet: sync answered with %v frame", resp.Op)
		}
		return nil
	})
	return st, err
}

// roundTrip is the shared request/response engine: resolve a connection,
// apply the deadline, negotiate the wire encoding, exchange one frame
// pair, and account stats. params is the logical transfer size for
// validation and BusBytes. The connection is pooled again only after a
// fully clean exchange; any error discards it so retries start fresh.
func (d *Dialer) roundTrip(x comm.Xfer, params int, st *comm.TransferStats,
	build func(wc *wireConn, wireEnc comm.Encoding) (Frame, error),
	handle func(wc *wireConn, wireEnc comm.Encoding, resp Frame) error) error {
	if err := x.Err(); err != nil {
		return fmt.Errorf("commnet: transfer cancelled: %w", err)
	}
	if x.Shard.Params() != params {
		return fmt.Errorf("commnet: %d params for shard %v (%d params)", params, x.Shard, x.Shard.Params())
	}
	deadline := d.opDeadline(x)
	wc, err := d.conn(deadline, st)
	if err != nil {
		return err
	}
	clean := false
	defer func() {
		if clean {
			d.putConn(wc)
		} else {
			_ = wc.c.Close()
		}
	}()
	_ = wc.c.SetDeadline(deadline)

	wireEnc := x.Enc
	if wireEnc == comm.FP16 && !wc.fp16OK {
		wireEnc = comm.FP32
	}
	req, err := build(wc, wireEnc)
	if err != nil {
		clean = true // nothing touched the wire
		return err
	}
	// req.Payload may alias wc.scratch, so the frame is assembled into a
	// separate reused buffer.
	wc.frame = appendFrame(wc.frame[:0], &req)
	n, err := wc.c.Write(wc.frame)
	st.Frames++
	st.WireBytes += int64(n)
	if err != nil {
		return fmt.Errorf("commnet: write %s frame: %w", req.Op, err)
	}
	resp, rn, err := readFrame(wc.br, d.maxPayload())
	st.Frames++
	st.WireBytes += int64(rn)
	if err != nil {
		return err
	}
	if resp.Op == OpError {
		// An application-level refusal leaves the stream framed; the
		// connection is still good.
		clean = true
		return fmt.Errorf("commnet: server: %s", resp.Payload)
	}
	if err := handle(wc, wireEnc, resp); err != nil {
		return err
	}
	st.BusBytes += int64(params) * int64(x.Enc.BytesPerParam())
	st.Copies += d.CopiesPerTransfer()
	clean = true
	return nil
}

// appendFramePayload encodes src under enc onto buf (reused scratch).
func appendFramePayload(buf []byte, src []float32, enc comm.Encoding) []byte {
	return encodePayload(buf, src, enc)
}

// fp16RoundTrip quantises v through binary16 in place — the exact bits a
// wire-compressed transfer would have produced.
func fp16RoundTrip(v []float32) {
	for i, f := range v {
		v[i] = fp16.FromFloat32(f).ToFloat32()
	}
}
