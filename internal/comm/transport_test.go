package comm

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
)

func payload(n int) []float32 {
	src := make([]float32, n)
	for i := range src {
		src[i] = float32(i%997)/31.0 - 11
	}
	return src
}

// shared builds the COMM transport through the registry, the only
// remaining construction path.
func shared(workers int) Transport {
	return MustNew(Spec{Kind: KindShared, Workers: workers})
}

func message() Transport {
	return MustNew(Spec{Kind: KindMessage})
}

func testTransportRoundTrip(t *testing.T, tr Transport) {
	t.Helper()
	src := payload(1000)
	dst := make([]float32, len(src))

	stats, err := tr.Pull(dst, src, Xfer{Shard: GlobalShard(MatrixQ, 0, len(src)), Enc: FP32})
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("%s fp32 pull corrupted index %d", tr.Name(), i)
		}
	}
	if stats.BusBytes != int64(4*len(src)) {
		t.Fatalf("%s fp32 BusBytes = %d", tr.Name(), stats.BusBytes)
	}
	if stats.Copies != tr.CopiesPerTransfer() {
		t.Fatalf("%s Copies = %d, want %d", tr.Name(), stats.Copies, tr.CopiesPerTransfer())
	}

	dst16 := make([]float32, len(src))
	stats16, err := tr.Push(dst16, src, Xfer{Shard: WorkerShard(MatrixQ, 0, 0, len(src)), Enc: FP16})
	if err != nil {
		t.Fatal(err)
	}
	if stats16.BusBytes != int64(2*len(src)) {
		t.Fatalf("%s fp16 BusBytes = %d, want half of fp32", tr.Name(), stats16.BusBytes)
	}
	for i := range src {
		rel := math.Abs(float64(dst16[i]-src[i])) / (math.Abs(float64(src[i])) + 1e-6)
		if rel > 1e-3 {
			t.Fatalf("%s fp16 index %d: %v → %v", tr.Name(), i, src[i], dst16[i])
		}
	}
}

func TestSharedMemRoundTrip(t *testing.T) { testTransportRoundTrip(t, shared(2)) }
func TestMessageRoundTrip(t *testing.T)   { testTransportRoundTrip(t, message()) }

func TestSharedMemLengthMismatch(t *testing.T) {
	tr := shared(1)
	if _, err := tr.Pull(make([]float32, 2), make([]float32, 3), Xfer{Enc: FP32}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestMessageLengthMismatch(t *testing.T) {
	tr := message()
	if _, err := tr.Push(make([]float32, 2), make([]float32, 3), Xfer{Enc: FP32}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSharedMemClampsWorkers(t *testing.T) {
	// The registry clamps a zero worker count instead of panicking: specs
	// arrive from CLI flags, and a sizing hint is not worth crashing over.
	tr := shared(0)
	dst, src := make([]float32, 4), payload(4)
	if _, err := tr.Pull(dst, src, Xfer{Enc: FP32}); err != nil {
		t.Fatalf("clamped transport unusable: %v", err)
	}
}

func TestCopyCounts(t *testing.T) {
	if shared(1).CopiesPerTransfer() != 1 {
		t.Fatal("COMM must be single-copy")
	}
	if message().CopiesPerTransfer() != 3 {
		t.Fatal("COMM-P must be triple-copy")
	}
}

func TestTransferStatsAdd(t *testing.T) {
	a := TransferStats{BusBytes: 10, Copies: 1, Frames: 2, Handshakes: 1, WireBytes: 100}
	a.Add(TransferStats{BusBytes: 5, Copies: 3, Frames: 3, Handshakes: 1, WireBytes: 50})
	if a.BusBytes != 15 || a.Copies != 4 {
		t.Fatalf("Add = %+v", a)
	}
	if a.Frames != 5 || a.Handshakes != 2 || a.WireBytes != 150 {
		t.Fatalf("wire fields not accumulated: %+v", a)
	}
}

func TestRegistryResolvesKinds(t *testing.T) {
	kinds := Kinds()
	for _, want := range []string{KindShared, KindMessage} {
		found := false
		for _, k := range kinds {
			if k == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Kinds() = %v, missing %q", kinds, want)
		}
	}
	if tr := MustNew(Spec{}); tr.Name() != "COMM" {
		t.Fatalf("empty kind resolved to %q, want the COMM default", tr.Name())
	}
	if _, err := New(Spec{Kind: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRegistryRegisterValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register with nil constructor did not panic")
		}
	}()
	Register("bogus", nil)
}

func TestShardNaming(t *testing.T) {
	g := GlobalShard(MatrixQ, 8, 40)
	if g.Owner != GlobalOwner || g.Params() != 32 {
		t.Fatalf("GlobalShard = %+v", g)
	}
	if got := g.String(); got != "Q/global[8:40]" {
		t.Fatalf("String = %q", got)
	}
	w := WorkerShard(MatrixP, 3, 0, 16)
	if got := w.String(); got != "P/worker3[0:16]" {
		t.Fatalf("String = %q", got)
	}
	if MatrixP.String() != "P" || MatrixQ.String() != "Q" {
		t.Fatal("Matrix stringer broken")
	}
}

func TestXferCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dst, src := make([]float32, 4), make([]float32, 4)
	for _, tr := range []Transport{shared(1), message()} {
		if _, err := tr.Pull(dst, src, Xfer{Enc: FP32, Ctx: ctx}); err == nil {
			t.Fatalf("%s accepted a cancelled transfer", tr.Name())
		} else if !strings.Contains(err.Error(), "cancelled") {
			t.Fatalf("%s error = %v", tr.Name(), err)
		}
	}
	if (Xfer{}).Err() != nil {
		t.Fatal("nil-context Xfer reported an error")
	}
}

// fakeRemote is an in-memory stand-in for a wire transport: it implements
// the Remote and Close capabilities so the helpers are testable without a
// socket.
type fakeRemote struct {
	SharedMem
	addr   string
	synced []Shard
	closed bool
}

func (f *fakeRemote) Name() string       { return "fake-remote" }
func (f *fakeRemote) RemoteAddr() string { return f.addr }
func (f *fakeRemote) Close() error       { f.closed = true; return nil }
func (f *fakeRemote) SyncShard(src []float32, x Xfer) (TransferStats, error) {
	if err := x.Err(); err != nil {
		return TransferStats{}, err
	}
	f.synced = append(f.synced, x.Shard)
	return TransferStats{BusBytes: int64(len(src)) * int64(x.Enc.BytesPerParam())}, nil
}

func TestCapabilityHelpersSeeThroughDecorators(t *testing.T) {
	base := &fakeRemote{addr: "127.0.0.1:9"}
	f, err := NewFaulty(base, FaultSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stack := NewObserved(NewRetrying(f, RetryPolicy{Attempts: 2}),
		nil, func(string, TransferStats, float64, bool) {})

	if Base(stack) != Transport(base) {
		t.Fatal("Base did not unwrap to the innermost transport")
	}
	rem, ok := AsRemote(stack)
	if !ok {
		t.Fatal("AsRemote missed a remote base under decorators")
	}
	if rem.RemoteAddr() != "127.0.0.1:9" {
		t.Fatalf("RemoteAddr = %q", rem.RemoteAddr())
	}
	src := payload(16)
	if _, err := rem.SyncShard(src, Xfer{Shard: GlobalShard(MatrixQ, 0, 16), Enc: FP32}); err != nil {
		t.Fatal(err)
	}
	if len(base.synced) != 1 || base.synced[0] != GlobalShard(MatrixQ, 0, 16) {
		t.Fatalf("SyncShard not forwarded: %+v", base.synced)
	}
	if err := CloseTransport(stack); err != nil {
		t.Fatal(err)
	}
	if !base.closed {
		t.Fatal("CloseTransport did not reach the base")
	}
}

func TestInProcessTransportsAreNotRemote(t *testing.T) {
	stack := NewRetrying(shared(1), RetryPolicy{Attempts: 2})
	if _, ok := AsRemote(stack); ok {
		t.Fatal("COMM stack claimed the Remote capability")
	}
	if _, err := stack.SyncShard(nil, Xfer{}); err == nil {
		t.Fatal("SyncShard on a non-remote base must error")
	}
	if err := CloseTransport(stack); err != nil {
		t.Fatal("closing a resource-free transport must be a no-op")
	}
}

func TestSharedMemConcurrentWorkers(t *testing.T) {
	// Distinct workers pulling concurrently from the same source must each
	// get intact data (COMM's buffers are per-worker; the shared source is
	// read-only during pulls).
	tr := shared(8)
	src := payload(4096)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]float32, len(src))
			if _, err := tr.Pull(dst, src, Xfer{Enc: FP32}); err != nil {
				errs <- err
				return
			}
			for i := range src {
				if dst[i] != src[i] {
					errs <- errIndex(i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errIndex int

func (e errIndex) Error() string { return "corrupted index" }

func TestMarshalUnmarshalErrors(t *testing.T) {
	if err := unmarshal(make([]float32, 2), make([]byte, 7), FP32); err == nil {
		t.Fatal("bad fp32 wire size accepted")
	}
	if err := unmarshal(make([]float32, 2), make([]byte, 3), FP16); err == nil {
		t.Fatal("bad fp16 wire size accepted")
	}
	if _, err := marshal(nil, Encoding(9)); err == nil {
		t.Fatal("unknown encoding accepted by marshal")
	}
	if err := unmarshal(nil, nil, Encoding(9)); err == nil {
		t.Fatal("unknown encoding accepted by unmarshal")
	}
	if _, err := sharedCopy(make([]float32, 1), make([]float32, 1), Xfer{Enc: Encoding(9)}); err == nil {
		t.Fatal("unknown encoding accepted by sharedCopy")
	}
}

func BenchmarkSharedMemPullFP32(b *testing.B) { benchTransport(b, shared(1), FP32) }
func BenchmarkSharedMemPullFP16(b *testing.B) { benchTransport(b, shared(1), FP16) }
func BenchmarkMessagePullFP32(b *testing.B)   { benchTransport(b, message(), FP32) }

func benchTransport(b *testing.B, tr Transport, enc Encoding) {
	src := payload(1 << 16)
	dst := make([]float32, len(src))
	x := Xfer{Shard: GlobalShard(MatrixQ, 0, len(src)), Enc: enc}
	b.SetBytes(int64(4 * len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Pull(dst, src, x); err != nil {
			b.Fatal(err)
		}
	}
}
