package comm

import (
	"math"
	"sync"
	"testing"
)

func payload(n int) []float32 {
	src := make([]float32, n)
	for i := range src {
		src[i] = float32(i%997)/31.0 - 11
	}
	return src
}

func testTransportRoundTrip(t *testing.T, tr Transport) {
	t.Helper()
	src := payload(1000)
	dst := make([]float32, len(src))

	stats, err := tr.Pull(dst, src, FP32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("%s fp32 pull corrupted index %d", tr.Name(), i)
		}
	}
	if stats.BusBytes != int64(4*len(src)) {
		t.Fatalf("%s fp32 BusBytes = %d", tr.Name(), stats.BusBytes)
	}
	if stats.Copies != tr.CopiesPerTransfer() {
		t.Fatalf("%s Copies = %d, want %d", tr.Name(), stats.Copies, tr.CopiesPerTransfer())
	}

	dst16 := make([]float32, len(src))
	stats16, err := tr.Push(dst16, src, FP16)
	if err != nil {
		t.Fatal(err)
	}
	if stats16.BusBytes != int64(2*len(src)) {
		t.Fatalf("%s fp16 BusBytes = %d, want half of fp32", tr.Name(), stats16.BusBytes)
	}
	for i := range src {
		rel := math.Abs(float64(dst16[i]-src[i])) / (math.Abs(float64(src[i])) + 1e-6)
		if rel > 1e-3 {
			t.Fatalf("%s fp16 index %d: %v → %v", tr.Name(), i, src[i], dst16[i])
		}
	}
}

func TestSharedMemRoundTrip(t *testing.T) { testTransportRoundTrip(t, NewSharedMem(2)) }
func TestMessageRoundTrip(t *testing.T)   { testTransportRoundTrip(t, NewMessage()) }

func TestSharedMemLengthMismatch(t *testing.T) {
	tr := NewSharedMem(1)
	if _, err := tr.Pull(make([]float32, 2), make([]float32, 3), FP32); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestMessageLengthMismatch(t *testing.T) {
	tr := NewMessage()
	if _, err := tr.Push(make([]float32, 2), make([]float32, 3), FP32); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSharedMemNeedsWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSharedMem(0) did not panic")
		}
	}()
	NewSharedMem(0)
}

func TestCopyCounts(t *testing.T) {
	if NewSharedMem(1).CopiesPerTransfer() != 1 {
		t.Fatal("COMM must be single-copy")
	}
	if NewMessage().CopiesPerTransfer() != 3 {
		t.Fatal("COMM-P must be triple-copy")
	}
}

func TestTransferStatsAdd(t *testing.T) {
	a := TransferStats{BusBytes: 10, Copies: 1}
	a.Add(TransferStats{BusBytes: 5, Copies: 3})
	if a.BusBytes != 15 || a.Copies != 4 {
		t.Fatalf("Add = %+v", a)
	}
}

func TestSharedMemConcurrentWorkers(t *testing.T) {
	// Distinct workers pulling concurrently from the same source must each
	// get intact data (COMM's buffers are per-worker; the shared source is
	// read-only during pulls).
	tr := NewSharedMem(8)
	src := payload(4096)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]float32, len(src))
			if _, err := tr.Pull(dst, src, FP32); err != nil {
				errs <- err
				return
			}
			for i := range src {
				if dst[i] != src[i] {
					errs <- errIndex(i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errIndex int

func (e errIndex) Error() string { return "corrupted index" }

func TestMarshalUnmarshalErrors(t *testing.T) {
	if err := unmarshal(make([]float32, 2), make([]byte, 7), FP32); err == nil {
		t.Fatal("bad fp32 wire size accepted")
	}
	if err := unmarshal(make([]float32, 2), make([]byte, 3), FP16); err == nil {
		t.Fatal("bad fp16 wire size accepted")
	}
	if _, err := marshal(nil, Encoding(9)); err == nil {
		t.Fatal("unknown encoding accepted by marshal")
	}
	if err := unmarshal(nil, nil, Encoding(9)); err == nil {
		t.Fatal("unknown encoding accepted by unmarshal")
	}
	if _, err := sharedCopy(make([]float32, 1), make([]float32, 1), Encoding(9)); err == nil {
		t.Fatal("unknown encoding accepted by sharedCopy")
	}
}

func BenchmarkSharedMemPullFP32(b *testing.B) { benchTransport(b, NewSharedMem(1), FP32) }
func BenchmarkSharedMemPullFP16(b *testing.B) { benchTransport(b, NewSharedMem(1), FP16) }
func BenchmarkMessagePullFP32(b *testing.B)   { benchTransport(b, NewMessage(), FP32) }

func benchTransport(b *testing.B, tr Transport, enc Encoding) {
	src := payload(1 << 16)
	dst := make([]float32, len(src))
	b.SetBytes(int64(4 * len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Pull(dst, src, enc); err != nil {
			b.Fatal(err)
		}
	}
}
