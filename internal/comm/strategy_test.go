package comm

import (
	"math"
	"testing"
)

const (
	netflixM = 480190
	netflixN = 17771
)

func TestEncodingBytes(t *testing.T) {
	if FP32.BytesPerParam() != 4 || FP16.BytesPerParam() != 2 {
		t.Fatal("encoding sizes wrong")
	}
	if FP32.String() != "fp32" || FP16.String() != "fp16" {
		t.Fatal("encoding names wrong")
	}
}

func TestStrategyStrings(t *testing.T) {
	cases := []struct {
		s    Strategy
		want string
	}{
		{Strategy{Encoding: FP32, Streams: 1}, "P&Q"},
		{Strategy{QOnly: true, Encoding: FP32, Streams: 1}, "Q"},
		{Strategy{QOnly: true, Encoding: FP16, Streams: 1}, "half-Q"},
		{Strategy{Encoding: FP16, Streams: 1}, "half-P&Q"},
		{Strategy{QOnly: true, Encoding: FP16, Streams: 4}, "half-Q/async-4"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestPullPushParamsPQ(t *testing.T) {
	s := Strategy{Encoding: FP32, Streams: 1}
	const k, m, n, epochs = 32, 100, 50, 10
	for e := 0; e < epochs; e++ {
		if got := s.PullParams(k, m, n, e, epochs); got != int64(k*(m+n)) {
			t.Fatalf("epoch %d pull = %d", e, got)
		}
		if got := s.PushParams(k, m, n, m/2, e, epochs); got != int64(k*(m+n)) {
			t.Fatalf("epoch %d push = %d", e, got)
		}
	}
}

func TestPullPushParamsQOnly(t *testing.T) {
	s := Strategy{QOnly: true, Encoding: FP32, Streams: 1}
	const k, m, n, epochs, owned = 32, 100, 50, 10, 25
	// P never travels on pulls: workers receive their rows during
	// preprocessing.
	if got := s.PullParams(k, m, n, 0, epochs); got != int64(k*n) {
		t.Fatalf("first pull = %d, want %d", got, k*n)
	}
	if got := s.PullParams(k, m, n, 3, epochs); got != int64(k*n) {
		t.Fatalf("mid pull = %d, want %d", got, k*n)
	}
	if got := s.PushParams(k, m, n, owned, 3, epochs); got != int64(k*n) {
		t.Fatalf("mid push = %d, want %d", got, k*n)
	}
	// Last push adds the worker's own P rows so the server owns the model.
	if got := s.PushParams(k, m, n, owned, epochs-1, epochs); got != int64(k*(n+owned)) {
		t.Fatalf("last push = %d, want %d", got, k*(n+owned))
	}
}

func TestRunBytesRatiosMatchPaperShape(t *testing.T) {
	// On Netflix (m ≫ n), Q-only must cut traffic by an order of
	// magnitude, and FP16 must halve whatever it is applied to.
	const k, epochs = 32, 20
	const owned = netflixM / 4
	pq := Strategy{Encoding: FP32, Streams: 1}.RunBytes(k, netflixM, netflixN, owned, epochs)
	q := Strategy{QOnly: true, Encoding: FP32, Streams: 1}.RunBytes(k, netflixM, netflixN, owned, epochs)
	halfQ := Strategy{QOnly: true, Encoding: FP16, Streams: 1}.RunBytes(k, netflixM, netflixN, owned, epochs)

	speedupQ := float64(pq) / float64(q)
	if speedupQ < 10 || speedupQ > 30 {
		t.Fatalf("Q-only traffic reduction = %.1fx, want O(20x) on Netflix", speedupQ)
	}
	if r := float64(q) / float64(halfQ); math.Abs(r-2) > 1e-9 {
		t.Fatalf("FP16 reduction = %v, want exactly 2", r)
	}
}

func TestRunBytesSquareMatrixBound(t *testing.T) {
	// With m = n the Q-only lower bound is 1/2 (paper Section 3.4).
	const k, m, n, epochs = 16, 1000, 1000, 40
	pq := Strategy{Encoding: FP32, Streams: 1}.RunBytes(k, m, n, m/2, epochs)
	q := Strategy{QOnly: true, Encoding: FP32, Streams: 1}.RunBytes(k, m, n, m/2, epochs)
	ratio := float64(pq) / float64(q)
	if ratio > 2.0+1e-9 {
		t.Fatalf("square-matrix Q-only ratio = %v, must not exceed 2", ratio)
	}
	if ratio < 1.8 {
		t.Fatalf("square-matrix Q-only ratio = %v, want ≈ 2", ratio)
	}
}

func TestEffectiveStreams(t *testing.T) {
	s := Strategy{Streams: 4}
	if s.EffectiveStreams(true) != 4 {
		t.Fatal("copy engine should enable streams")
	}
	if s.EffectiveStreams(false) != 1 {
		t.Fatal("no copy engine must disable overlap")
	}
	if (Strategy{Streams: 1}).EffectiveStreams(true) != 1 {
		t.Fatal("streams=1 is synchronous")
	}
}

func TestChoose(t *testing.T) {
	// Netflix-like: tall, dense in ratio terms → Q-only+FP16, no streams.
	s := Choose(32, netflixM, netflixN, 99072112, 4)
	if !s.QOnly || s.Encoding != FP16 {
		t.Fatalf("Choose(netflix) = %+v", s)
	}
	// Netflix: nnz/n ≈ 5574 ≥ 1000, transfers already negligible.
	if s.Streams != 1 {
		t.Fatalf("netflix should not need async streams, got %d", s.Streams)
	}
}

func TestChooseMatchesPaperPerDataset(t *testing.T) {
	cases := []struct {
		name        string
		m, n        int
		nnz         int64
		wantStreams bool
	}{
		{"netflix", 480190, 17771, 99072112, false},
		{"r1", 1948883, 1101750, 115579437, true},
		{"r2", 1000000, 136736, 383838609, false},
		{"ml-20m", 138494, 131263, 20000260, true},
	}
	for _, c := range cases {
		s := Choose(32, c.m, c.n, c.nnz, 4)
		got := s.Streams > 1
		if got != c.wantStreams {
			t.Errorf("%s: streams enabled = %v, want %v", c.name, got, c.wantStreams)
		}
	}
}
