package comm

import (
	"sync"
	"testing"
	"time"
)

func TestObservedReportsEveryTransfer(t *testing.T) {
	type obs struct {
		op     string
		stats  TransferStats
		failed bool
	}
	var (
		mu   sync.Mutex
		seen []obs
	)
	tr := NewObserved(shared(1), nil, func(op string, st TransferStats, seconds float64, failed bool) {
		mu.Lock()
		seen = append(seen, obs{op, st, failed})
		mu.Unlock()
	})
	if tr.Name() != "COMM" || tr.CopiesPerTransfer() != 1 {
		t.Fatalf("observation must be transparent: name=%q copies=%d", tr.Name(), tr.CopiesPerTransfer())
	}
	dst, src := make([]float32, 8), make([]float32, 8)
	if _, err := tr.Pull(dst, src, Xfer{Enc: FP32}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Push(dst, src, Xfer{Enc: FP32}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("observations = %d, want 2", len(seen))
	}
	if seen[0].op != "pull" || seen[1].op != "push" {
		t.Fatalf("ops = %q, %q", seen[0].op, seen[1].op)
	}
	for _, o := range seen {
		if o.failed || o.stats.BusBytes != 32 || o.stats.Copies != 1 {
			t.Fatalf("observation = %+v", o)
		}
	}
}

func TestObservedTimesWithInjectedClock(t *testing.T) {
	// The decorator mints no clock of its own: a nil now reports 0s, an
	// injected one times each transfer with two samples.
	var untimed float64 = -1
	tr := NewObserved(shared(1), nil, func(_ string, _ TransferStats, seconds float64, _ bool) {
		untimed = seconds
	})
	dst, src := make([]float32, 4), make([]float32, 4)
	if _, err := tr.Pull(dst, src, Xfer{Enc: FP32}); err != nil {
		t.Fatal(err)
	}
	if untimed != 0 {
		t.Fatalf("untimed observation reported %vs, want 0", untimed)
	}

	fake := time.Unix(0, 0)
	clock := func() time.Time {
		fake = fake.Add(250 * time.Millisecond)
		return fake
	}
	var timed float64
	tr = NewObserved(shared(1), clock, func(_ string, _ TransferStats, seconds float64, _ bool) {
		timed = seconds
	})
	if _, err := tr.Pull(dst, src, Xfer{Enc: FP32}); err != nil {
		t.Fatal(err)
	}
	if timed != 0.25 {
		t.Fatalf("timed observation = %vs, want 0.25 (one clock step)", timed)
	}
}

func TestObservedReportsFailures(t *testing.T) {
	faulty, err := NewFaulty(shared(1), FaultSpec{Transient: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var failures, total int
	tr := NewObserved(faulty, nil, func(op string, st TransferStats, seconds float64, failed bool) {
		total++
		if failed {
			failures++
		}
	})
	dst, src := make([]float32, 4), make([]float32, 4)
	if _, err := tr.Pull(dst, src, Xfer{Enc: FP32}); err == nil {
		t.Fatal("expected injected failure")
	}
	if total != 1 || failures != 1 {
		t.Fatalf("total=%d failures=%d, want 1/1", total, failures)
	}
}

func TestObservedRetryFolding(t *testing.T) {
	// Observed outside Retrying: one observation per logical operation,
	// retries folded into the stats.
	faulty, err := NewFaulty(shared(1), FaultSpec{Transient: 0.5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var observations int
	var retries int
	tr := NewObserved(NewRetrying(faulty, RetryPolicy{Attempts: 8}), nil,
		func(op string, st TransferStats, seconds float64, failed bool) {
			observations++
			retries += st.Retries
			if failed {
				t.Fatalf("op %s failed despite 8 attempts", op)
			}
		})
	dst, src := make([]float32, 4), make([]float32, 4)
	for i := 0; i < 20; i++ {
		if _, err := tr.Pull(dst, src, Xfer{Enc: FP32}); err != nil {
			t.Fatal(err)
		}
	}
	if observations != 20 {
		t.Fatalf("observations = %d, want 20 (one per logical pull)", observations)
	}
	if retries == 0 {
		t.Fatal("expected some folded retries at 50% transient rate")
	}
}

func TestObservedNilCallbackPassthrough(t *testing.T) {
	inner := shared(1)
	if got := NewObserved(inner, nil, nil); got != inner {
		t.Fatal("nil callback must return the inner transport unchanged")
	}
}

func TestObservedSyncOp(t *testing.T) {
	base := &fakeRemote{addr: "127.0.0.1:1"}
	var ops []string
	tr := NewObserved(base, nil, func(op string, _ TransferStats, _ float64, _ bool) {
		ops = append(ops, op)
	})
	rem, ok := AsRemote(tr)
	if !ok {
		t.Fatal("observed remote lost the capability")
	}
	if _, err := rem.SyncShard(make([]float32, 4), Xfer{Shard: GlobalShard(MatrixQ, 0, 4), Enc: FP32}); err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0] != "sync" {
		t.Fatalf("ops = %v, want [sync]", ops)
	}
}
