package comm

// TransferObserverFunc receives one completed (or finally failed) transfer:
// the operation ("pull" or "push"), the accumulated stats, and whether it
// failed. Implementations must be safe for concurrent use by distinct
// workers and should not block — they run on the transfer path.
type TransferObserverFunc func(op string, stats TransferStats, failed bool)

// Observed decorates a Transport, reporting every Pull/Push outcome to a
// callback. The decorator itself holds no clock and allocates nothing per
// transfer, so it is legal inside the simulated-time packages; whatever
// timing the callback's owner wants comes from the clock it closed over
// (see internal/obs). Wrap Observed OUTSIDE Retrying so one observation is
// one logical operation with its retries already folded into the stats.
type Observed struct {
	inner Transport
	fn    TransferObserverFunc
}

// NewObserved wraps inner so fn sees every transfer. A nil fn returns
// inner unchanged — uninstrumented stacks pay nothing.
func NewObserved(inner Transport, fn TransferObserverFunc) Transport {
	if inner == nil {
		// lint:invariant a nil inner transport is a wiring bug in the decorator stack, never user input; every config path constructs the transport first.
		panic("comm: NewObserved needs a transport")
	}
	if fn == nil {
		return inner
	}
	return &Observed{inner: inner, fn: fn}
}

// Name implements Transport. Observation is transparent: the stack keeps
// the inner transport's reported name.
func (o *Observed) Name() string { return o.inner.Name() }

// CopiesPerTransfer implements Transport.
func (o *Observed) CopiesPerTransfer() int { return o.inner.CopiesPerTransfer() }

// Pull implements Transport.
func (o *Observed) Pull(dst, src []float32, enc Encoding) (TransferStats, error) {
	st, err := o.inner.Pull(dst, src, enc)
	o.fn("pull", st, err != nil)
	return st, err
}

// Push implements Transport.
func (o *Observed) Push(dst, src []float32, enc Encoding) (TransferStats, error) {
	st, err := o.inner.Push(dst, src, enc)
	o.fn("push", st, err != nil)
	return st, err
}
