package comm

import (
	"fmt"
	"time"
)

// TransferObserverFunc receives one completed (or finally failed) transfer:
// the operation ("pull", "push", or "sync"), the accumulated stats, the
// wall-clock seconds the operation took (0 when the decorator has no
// clock), and whether it failed. Implementations must be safe for
// concurrent use by distinct workers and should not block — they run on
// the transfer path.
type TransferObserverFunc func(op string, stats TransferStats, seconds float64, failed bool)

// Observed decorates a Transport, reporting every Pull/Push outcome to a
// callback. The decorator itself mints no clock and allocates nothing per
// transfer, so it is legal inside the simulated-time packages: timing
// comes from the injected now function — nil for untimed in-process
// stacks, the observer's clock (see internal/obs) for wire stacks whose
// latency is worth a histogram. Wrap Observed OUTSIDE Retrying so one
// observation is one logical operation with its retries already folded
// into the stats.
type Observed struct {
	inner Transport
	now   func() time.Time
	fn    TransferObserverFunc
}

// NewObserved wraps inner so fn sees every transfer, timed by now (nil for
// untimed observation). A nil fn returns inner unchanged — uninstrumented
// stacks pay nothing.
func NewObserved(inner Transport, now func() time.Time, fn TransferObserverFunc) Transport {
	if inner == nil {
		// lint:invariant a nil inner transport is a wiring bug in the decorator stack, never user input; every config path constructs the transport first.
		panic("comm: NewObserved needs a transport")
	}
	if fn == nil {
		return inner
	}
	return &Observed{inner: inner, now: now, fn: fn}
}

// Name implements Transport. Observation is transparent: the stack keeps
// the inner transport's reported name.
func (o *Observed) Name() string { return o.inner.Name() }

// CopiesPerTransfer implements Transport.
func (o *Observed) CopiesPerTransfer() int { return o.inner.CopiesPerTransfer() }

// Unwrap implements Unwrapper.
func (o *Observed) Unwrap() Transport { return o.inner }

// Pull implements Transport.
func (o *Observed) Pull(dst, src []float32, x Xfer) (TransferStats, error) {
	return o.observe("pull", func() (TransferStats, error) { return o.inner.Pull(dst, src, x) })
}

// Push implements Transport.
func (o *Observed) Push(dst, src []float32, x Xfer) (TransferStats, error) {
	return o.observe("push", func() (TransferStats, error) { return o.inner.Push(dst, src, x) })
}

// RemoteAddr implements Remote by forwarding (empty for in-process bases).
func (o *Observed) RemoteAddr() string {
	if r, ok := o.inner.(Remote); ok {
		return r.RemoteAddr()
	}
	return ""
}

// SyncShard implements Remote; sync uploads are observed as op "sync".
func (o *Observed) SyncShard(src []float32, x Xfer) (TransferStats, error) {
	r, ok := o.inner.(Remote)
	if !ok {
		return TransferStats{}, fmt.Errorf("comm: %s is not a remote transport", o.inner.Name())
	}
	return o.observe("sync", func() (TransferStats, error) { return r.SyncShard(src, x) })
}

func (o *Observed) observe(op string, run func() (TransferStats, error)) (TransferStats, error) {
	var start time.Time
	if o.now != nil {
		start = o.now()
	}
	st, err := run()
	var seconds float64
	if o.now != nil {
		seconds = o.now().Sub(start).Seconds()
	}
	o.fn(op, st, seconds, err != nil)
	return st, err
}
