package comm

import (
	"fmt"
	"sync"

	"hccmf/internal/fp16"
)

// TransferStats accounts one pull or push: bytes that crossed the
// worker↔server channel, and how many times the payload was copied through
// memory end to end. COMM's shared buffers need one copy; COMM-P's
// marshal/send/unmarshal path needs three. The simulated platform charges
// bus time from BusBytes and memory time from Copies. Retries counts
// failed attempts a Retrying decorator repeated; their bus traffic (e.g. a
// truncated payload's prefix) stays in BusBytes, so the cost model can
// charge the waste of a lossy link.
type TransferStats struct {
	BusBytes int64
	Copies   int
	Retries  int
}

// Add accumulates other into s.
func (s *TransferStats) Add(other TransferStats) {
	s.BusBytes += other.BusBytes
	s.Copies += other.Copies
	s.Retries += other.Retries
}

// Transport moves float32 feature vectors between a worker and the server.
// Implementations must be safe for concurrent use by distinct workers.
type Transport interface {
	// Name identifies the transport ("COMM", "COMM-P").
	Name() string
	// Pull copies src (server-side global data) into dst (worker-local).
	Pull(dst, src []float32, enc Encoding) (TransferStats, error)
	// Push copies src (worker-local data) into dst (server-side buffer).
	Push(dst, src []float32, enc Encoding) (TransferStats, error)
	// CopiesPerTransfer reports the end-to-end memory copy count of the
	// transport's data path, the quantity the paper minimises.
	CopiesPerTransfer() int
}

// SharedMem is the paper's COMM module: a pull buffer on the server mapped
// into every worker's address space and a push buffer per worker mapped
// into the server's. Because both sides address the same physical pages,
// a transfer is a single memcpy (plus an in-register FP16 stage when
// Strategy 2 is active) and point-to-point transfers bypass the kernel.
type SharedMem struct {
	// workers records the sizing hint; FP16 staging buffers come from a
	// shared pool (stagePool) so steady-state transfers allocate nothing.
	workers int
}

// NewSharedMem creates the COMM transport for the given worker count.
func NewSharedMem(workers int) *SharedMem {
	if workers < 1 {
		// lint:invariant worker counts derive from the platform topology validated by core before transports are built; zero workers is a wiring bug.
		panic("comm: SharedMem needs ≥1 worker")
	}
	return &SharedMem{workers: workers}
}

// Name implements Transport.
func (s *SharedMem) Name() string { return "COMM" }

// CopiesPerTransfer implements Transport: shared mappings mean the single
// copy from source buffer to destination buffer.
func (s *SharedMem) CopiesPerTransfer() int { return 1 }

// Pull implements Transport.
func (s *SharedMem) Pull(dst, src []float32, enc Encoding) (TransferStats, error) {
	return sharedCopy(dst, src, enc)
}

// Push implements Transport.
func (s *SharedMem) Push(dst, src []float32, enc Encoding) (TransferStats, error) {
	return sharedCopy(dst, src, enc)
}

// stagePool recycles FP16 staging buffers: transfers run every epoch on
// every worker, and the paper's implementation goes out of its way to
// avoid "temporary memory creation and release" on the hot path.
var stagePool = sync.Pool{
	New: func() interface{} { return new([]fp16.Bits16) },
}

func stageBuffer(n int) *[]fp16.Bits16 {
	buf := stagePool.Get().(*[]fp16.Bits16)
	if cap(*buf) < n {
		*buf = make([]fp16.Bits16, n)
	}
	*buf = (*buf)[:n]
	return buf
}

func sharedCopy(dst, src []float32, enc Encoding) (TransferStats, error) {
	if len(dst) != len(src) {
		return TransferStats{}, fmt.Errorf("comm: length mismatch dst=%d src=%d", len(dst), len(src))
	}
	switch enc {
	case FP32:
		copy(dst, src)
	case FP16:
		// The wire carries binary16; both endpoints convert in
		// registers while streaming through the shared buffer, so it is
		// still one pass over memory.
		staged := stageBuffer(len(src))
		fp16.EncodeSlice(*staged, src)
		fp16.DecodeSlice(dst, *staged)
		stagePool.Put(staged)
	default:
		return TransferStats{}, fmt.Errorf("comm: unknown encoding %v", enc)
	}
	return TransferStats{
		BusBytes: int64(len(src)) * int64(enc.BytesPerParam()),
		Copies:   1,
	}, nil
}

// Message is the COMM-P baseline modelled on ps-lite: every transfer
// marshals the payload into a fresh message buffer, hands it through a
// channel (the kernel/IPC crossing), and unmarshals on the far side —
// three passes over the data with a temporary allocation per message,
// exactly the overheads Table 5 measures against COMM.
type Message struct {
	// mailbox carries marshalled payloads; its buffering models the
	// store-and-forward queue of the message layer.
	mailbox chan []byte
}

// NewMessage creates the COMM-P transport.
func NewMessage() *Message {
	return &Message{mailbox: make(chan []byte, 1)}
}

// Name implements Transport.
func (m *Message) Name() string { return "COMM-P" }

// CopiesPerTransfer implements Transport: marshal, queue hand-off, and
// unmarshal each traverse the payload.
func (m *Message) CopiesPerTransfer() int { return 3 }

// Pull implements Transport.
func (m *Message) Pull(dst, src []float32, enc Encoding) (TransferStats, error) {
	return m.send(dst, src, enc)
}

// Push implements Transport.
func (m *Message) Push(dst, src []float32, enc Encoding) (TransferStats, error) {
	return m.send(dst, src, enc)
}

func (m *Message) send(dst, src []float32, enc Encoding) (TransferStats, error) {
	if len(dst) != len(src) {
		return TransferStats{}, fmt.Errorf("comm: length mismatch dst=%d src=%d", len(dst), len(src))
	}
	// Marshal: copy 1 (fresh temporary per message — ps-lite allocates).
	wire, err := marshal(src, enc)
	if err != nil {
		return TransferStats{}, err
	}
	// Queue hand-off: copy 2 (the IPC/kernel crossing; modelled as a copy
	// into a second buffer so the cost structure is honest even though a
	// Go channel could share the backing array).
	crossed := make([]byte, len(wire))
	copy(crossed, wire)
	m.mailbox <- crossed
	received := <-m.mailbox
	// Unmarshal: copy 3.
	if err := unmarshal(dst, received, enc); err != nil {
		return TransferStats{}, err
	}
	return TransferStats{
		BusBytes: int64(len(wire)),
		Copies:   3,
	}, nil
}

func marshal(src []float32, enc Encoding) ([]byte, error) {
	switch enc {
	case FP32:
		out := make([]byte, 4*len(src))
		for i, v := range src {
			putFloat32(out[4*i:], v)
		}
		return out, nil
	case FP16:
		out := make([]byte, 2*len(src))
		for i, v := range src {
			h := fp16.FromFloat32(v)
			out[2*i] = byte(h)
			out[2*i+1] = byte(h >> 8)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("comm: unknown encoding %v", enc)
	}
}

func unmarshal(dst []float32, wire []byte, enc Encoding) error {
	switch enc {
	case FP32:
		if len(wire) != 4*len(dst) {
			return fmt.Errorf("comm: wire size %d for %d params", len(wire), len(dst))
		}
		for i := range dst {
			dst[i] = getFloat32(wire[4*i:])
		}
		return nil
	case FP16:
		if len(wire) != 2*len(dst) {
			return fmt.Errorf("comm: wire size %d for %d params", len(wire), len(dst))
		}
		for i := range dst {
			h := fp16.Bits16(wire[2*i]) | fp16.Bits16(wire[2*i+1])<<8
			dst[i] = h.ToFloat32()
		}
		return nil
	default:
		return fmt.Errorf("comm: unknown encoding %v", enc)
	}
}
