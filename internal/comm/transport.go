package comm

import (
	"context"
	"fmt"
	"sync"

	"hccmf/internal/fp16"
)

// TransferStats accounts one pull or push: bytes that crossed the
// worker↔server channel, and how many times the payload was copied through
// memory end to end. COMM's shared buffers need one copy; COMM-P's
// marshal/send/unmarshal path needs three. The simulated platform charges
// bus time from BusBytes and memory time from Copies. Retries counts
// failed attempts a Retrying decorator repeated; their bus traffic (e.g. a
// truncated payload's prefix) stays in BusBytes, so the cost model can
// charge the waste of a lossy link.
//
// The wire-level fields (Frames, Handshakes, WireBytes) are populated only
// by transports that put real octets on a real link (internal/comm/net);
// in-process transports leave them zero. BusBytes remains the *logical*
// payload volume — k·rows·BytesPerParam — on every transport, so the cost
// model's bus charge is transport-independent and framing overhead is
// never double-counted into simulated bus time.
type TransferStats struct {
	BusBytes int64
	Copies   int
	Retries  int
	// Frames counts protocol frames exchanged (requests, responses,
	// handshake frames) on a wire transport.
	Frames int
	// Handshakes counts connection establishments (dial + hello exchange)
	// this transfer triggered; steady-state transfers reuse pooled
	// connections and report zero.
	Handshakes int
	// WireBytes counts the octets that actually crossed the socket —
	// frame headers, handshake payloads, and the (possibly fp16-
	// compressed) payload bytes.
	WireBytes int64
}

// Add accumulates other into s.
func (s *TransferStats) Add(other TransferStats) {
	s.BusBytes += other.BusBytes
	s.Copies += other.Copies
	s.Retries += other.Retries
	s.Frames += other.Frames
	s.Handshakes += other.Handshakes
	s.WireBytes += other.WireBytes
}

// Matrix identifies which factor matrix a Shard addresses.
type Matrix uint8

const (
	// MatrixQ is the item-feature matrix (n×k), the payload that travels
	// every epoch.
	MatrixQ Matrix = iota
	// MatrixP is the user-feature matrix (m×k).
	MatrixP
)

// String implements fmt.Stringer.
func (m Matrix) String() string {
	switch m {
	case MatrixQ:
		return "Q"
	case MatrixP:
		return "P"
	default:
		return fmt.Sprintf("Matrix(%d)", uint8(m))
	}
}

// GlobalOwner is the Shard.Owner value naming the server's global copy of
// a matrix, as opposed to a worker's push buffer.
const GlobalOwner = -1

// Shard names the parameter block one transfer moves: which matrix, whose
// buffer (a worker's push shard or the global copy), and the flat float32
// element range [Lo, Hi) within that matrix. In-process transports, where
// caller-supplied dst/src slices already address the right memory, treat
// the shard as documentation; a wire transport uses it to tell the remote
// store which rows the payload is.
type Shard struct {
	Matrix Matrix
	// Owner is the worker index owning a push buffer, or GlobalOwner for
	// the server's global copy.
	Owner int
	// Lo, Hi delimit the flat element range [Lo, Hi) in the matrix's
	// row-major float32 array (row r of a k-wide matrix spans
	// [r·k, (r+1)·k)).
	Lo, Hi int
}

// Params reports the number of float32 parameters the shard spans.
func (sh Shard) Params() int { return sh.Hi - sh.Lo }

// String implements fmt.Stringer.
func (sh Shard) String() string {
	if sh.Owner == GlobalOwner {
		return fmt.Sprintf("%v/global[%d:%d]", sh.Matrix, sh.Lo, sh.Hi)
	}
	return fmt.Sprintf("%v/worker%d[%d:%d]", sh.Matrix, sh.Owner, sh.Lo, sh.Hi)
}

// GlobalShard names the global copy of matrix m over elements [lo, hi).
func GlobalShard(m Matrix, lo, hi int) Shard {
	return Shard{Matrix: m, Owner: GlobalOwner, Lo: lo, Hi: hi}
}

// WorkerShard names worker owner's push buffer of matrix m over [lo, hi).
func WorkerShard(m Matrix, owner, lo, hi int) Shard {
	return Shard{Matrix: m, Owner: owner, Lo: lo, Hi: hi}
}

// Xfer describes one transfer: the shard operand naming which rows move,
// the wire encoding, and an optional context carrying a deadline or
// cancellation. The zero value (unspecified shard, FP32, no deadline) is
// valid for in-process transports, which address memory through the
// caller's dst/src slices alone.
type Xfer struct {
	Shard Shard
	Enc   Encoding
	// Ctx, when non-nil, bounds the transfer: wire transports apply its
	// deadline to the socket and all transports fail fast when it is
	// already cancelled. A nil Ctx means no deadline.
	Ctx context.Context
}

// Err reports the context's cancellation state (nil for a nil Ctx).
func (x Xfer) Err() error {
	if x.Ctx == nil {
		return nil
	}
	return x.Ctx.Err()
}

// truncated returns the Xfer describing the leading cut params of x's
// transfer: the shard range shrinks with the payload, so a wire transport
// still sees a self-consistent (shard, payload) pair for the prefix that
// crossed before an injected cut.
func (x Xfer) truncated(cut int) Xfer {
	if x.Shard.Hi > x.Shard.Lo+cut {
		x.Shard.Hi = x.Shard.Lo + cut
	}
	return x
}

// Transport moves float32 feature vectors between a worker and the server.
// Implementations must be safe for concurrent use by distinct workers.
//
// Optional capabilities live on side interfaces rather than here: a
// transport that owns OS resources implements io.Closer (release it with
// CloseTransport, which sees through decorators), and one whose
// server-side buffers live in another process implements Remote.
type Transport interface {
	// Name identifies the transport ("COMM", "COMM-P", "TCP").
	Name() string
	// Pull copies the shard named by x (server-side global data) into dst
	// (worker-local). In-process transports read the caller-shared src;
	// remote transports serve the shard from the remote store and ignore
	// src (which may be nil).
	Pull(dst, src []float32, x Xfer) (TransferStats, error)
	// Push copies src (worker-local data) into the shard named by x and
	// into dst (the server-side buffer the caller folds from). dst always
	// receives the encode/decode round trip of src under x.Enc, exactly
	// what came out of the wire.
	Push(dst, src []float32, x Xfer) (TransferStats, error)
	// CopiesPerTransfer reports the end-to-end memory copy count of the
	// transport's data path, the quantity the paper minimises.
	CopiesPerTransfer() int
}

// Remote is the optional capability of transports whose server-side
// buffers live in another OS process. The parameter-server cluster uses it
// to publish the authoritative global shards after each sync, so the next
// epoch's Pulls are served from the remote store; in-process transports
// share the caller's address space and never need it. Resolve the
// capability with AsRemote — decorators forward these methods, so a
// decorated remote stack retries/faults/observes SyncShard like any other
// transfer.
type Remote interface {
	// RemoteAddr reports the server endpoint the transport is bound to.
	RemoteAddr() string
	// SyncShard uploads src as the authoritative bytes of the shard named
	// by x, overwriting the remote store.
	SyncShard(src []float32, x Xfer) (TransferStats, error)
}

// Unwrapper is implemented by decorators; capability helpers use it to
// reach the base transport.
type Unwrapper interface {
	Unwrap() Transport
}

// Base unwraps decorators down to the innermost transport.
func Base(t Transport) Transport {
	for {
		u, ok := t.(Unwrapper)
		if !ok {
			return t
		}
		t = u.Unwrap()
	}
}

// AsRemote resolves the Remote capability of a (possibly decorated)
// transport stack. The check is against the base transport — decorators
// implement Remote unconditionally to forward it, so asserting on the
// outermost layer alone would claim every decorated stack is remote.
func AsRemote(t Transport) (Remote, bool) {
	if _, ok := Base(t).(Remote); !ok {
		return nil, false
	}
	r, ok := t.(Remote)
	return r, ok
}

// CloseTransport releases the base transport's OS resources (network
// connections), seeing through decorators, which own none of their own.
// In-process transports are resource-free; closing them is a no-op.
func CloseTransport(t Transport) error {
	if c, ok := Base(t).(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// SharedMem is the paper's COMM module: a pull buffer on the server mapped
// into every worker's address space and a push buffer per worker mapped
// into the server's. Because both sides address the same physical pages,
// a transfer is a single memcpy (plus an in-register FP16 stage when
// Strategy 2 is active) and point-to-point transfers bypass the kernel.
// Construct it through the registry (New with KindShared).
type SharedMem struct {
	// workers records the sizing hint; FP16 staging buffers come from a
	// shared pool (stagePool) so steady-state transfers allocate nothing.
	workers int
}

// newSharedMem creates the COMM transport for the given worker count
// (clamped to ≥1).
func newSharedMem(workers int) *SharedMem {
	if workers < 1 {
		workers = 1
	}
	return &SharedMem{workers: workers}
}

// Name implements Transport.
func (s *SharedMem) Name() string { return "COMM" }

// CopiesPerTransfer implements Transport: shared mappings mean the single
// copy from source buffer to destination buffer.
func (s *SharedMem) CopiesPerTransfer() int { return 1 }

// Pull implements Transport.
func (s *SharedMem) Pull(dst, src []float32, x Xfer) (TransferStats, error) {
	return sharedCopy(dst, src, x)
}

// Push implements Transport.
func (s *SharedMem) Push(dst, src []float32, x Xfer) (TransferStats, error) {
	return sharedCopy(dst, src, x)
}

// stagePool recycles FP16 staging buffers: transfers run every epoch on
// every worker, and the paper's implementation goes out of its way to
// avoid "temporary memory creation and release" on the hot path.
var stagePool = sync.Pool{
	New: func() interface{} { return new([]fp16.Bits16) },
}

func stageBuffer(n int) *[]fp16.Bits16 {
	buf := stagePool.Get().(*[]fp16.Bits16)
	if cap(*buf) < n {
		*buf = make([]fp16.Bits16, n)
	}
	*buf = (*buf)[:n]
	return buf
}

func sharedCopy(dst, src []float32, x Xfer) (TransferStats, error) {
	if err := x.Err(); err != nil {
		return TransferStats{}, fmt.Errorf("comm: transfer cancelled: %w", err)
	}
	if len(dst) != len(src) {
		return TransferStats{}, fmt.Errorf("comm: length mismatch dst=%d src=%d", len(dst), len(src))
	}
	switch x.Enc {
	case FP32:
		copy(dst, src)
	case FP16:
		// The wire carries binary16; both endpoints convert in
		// registers while streaming through the shared buffer, so it is
		// still one pass over memory.
		staged := stageBuffer(len(src))
		fp16.EncodeSlice(*staged, src)
		fp16.DecodeSlice(dst, *staged)
		stagePool.Put(staged)
	default:
		return TransferStats{}, fmt.Errorf("comm: unknown encoding %v", x.Enc)
	}
	return TransferStats{
		BusBytes: int64(len(src)) * int64(x.Enc.BytesPerParam()),
		Copies:   1,
	}, nil
}

// Message is the COMM-P baseline modelled on ps-lite: every transfer
// marshals the payload into a fresh message buffer, hands it through a
// channel (the kernel/IPC crossing), and unmarshals on the far side —
// three passes over the data with a temporary allocation per message,
// exactly the overheads Table 5 measures against COMM. Construct it
// through the registry (New with KindMessage).
type Message struct {
	// mailbox carries marshalled payloads; its buffering models the
	// store-and-forward queue of the message layer.
	mailbox chan []byte
}

// newMessage creates the COMM-P transport.
func newMessage() *Message {
	return &Message{mailbox: make(chan []byte, 1)}
}

// Name implements Transport.
func (m *Message) Name() string { return "COMM-P" }

// CopiesPerTransfer implements Transport: marshal, queue hand-off, and
// unmarshal each traverse the payload.
func (m *Message) CopiesPerTransfer() int { return 3 }

// Pull implements Transport.
func (m *Message) Pull(dst, src []float32, x Xfer) (TransferStats, error) {
	return m.send(dst, src, x)
}

// Push implements Transport.
func (m *Message) Push(dst, src []float32, x Xfer) (TransferStats, error) {
	return m.send(dst, src, x)
}

func (m *Message) send(dst, src []float32, x Xfer) (TransferStats, error) {
	if err := x.Err(); err != nil {
		return TransferStats{}, fmt.Errorf("comm: transfer cancelled: %w", err)
	}
	if len(dst) != len(src) {
		return TransferStats{}, fmt.Errorf("comm: length mismatch dst=%d src=%d", len(dst), len(src))
	}
	// Marshal: copy 1 (fresh temporary per message — ps-lite allocates).
	wire, err := marshal(src, x.Enc)
	if err != nil {
		return TransferStats{}, err
	}
	// Queue hand-off: copy 2 (the IPC/kernel crossing; modelled as a copy
	// into a second buffer so the cost structure is honest even though a
	// Go channel could share the backing array).
	crossed := make([]byte, len(wire))
	copy(crossed, wire)
	m.mailbox <- crossed
	received := <-m.mailbox
	// Unmarshal: copy 3.
	if err := unmarshal(dst, received, x.Enc); err != nil {
		return TransferStats{}, err
	}
	return TransferStats{
		BusBytes: int64(len(wire)),
		Copies:   3,
	}, nil
}

func marshal(src []float32, enc Encoding) ([]byte, error) {
	switch enc {
	case FP32:
		out := make([]byte, 4*len(src))
		for i, v := range src {
			putFloat32(out[4*i:], v)
		}
		return out, nil
	case FP16:
		out := make([]byte, 2*len(src))
		for i, v := range src {
			h := fp16.FromFloat32(v)
			out[2*i] = byte(h)
			out[2*i+1] = byte(h >> 8)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("comm: unknown encoding %v", enc)
	}
}

func unmarshal(dst []float32, wire []byte, enc Encoding) error {
	switch enc {
	case FP32:
		if len(wire) != 4*len(dst) {
			return fmt.Errorf("comm: wire size %d for %d params", len(wire), len(dst))
		}
		for i := range dst {
			dst[i] = getFloat32(wire[4*i:])
		}
		return nil
	case FP16:
		if len(wire) != 2*len(dst) {
			return fmt.Errorf("comm: wire size %d for %d params", len(wire), len(dst))
		}
		for i := range dst {
			h := fp16.Bits16(wire[2*i]) | fp16.Bits16(wire[2*i+1])<<8
			dst[i] = h.ToFloat32()
		}
		return nil
	default:
		return fmt.Errorf("comm: unknown encoding %v", enc)
	}
}
